// Quickstart: a sixty-second tour of the relaxsched public API.
//
// It builds a small random graph, solves SSSP four ways (exact Dijkstra,
// Delta-stepping, relaxed sequential-model Dijkstra, parallel MultiQueue),
// sorts a slice with the BST-insertion incremental algorithm, triangulates
// a point set, and runs the sorting DAG through a relaxed scheduler to show
// the extra-step accounting from the paper.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"relaxsched"
)

func main() {
	// --- SSSP four ways -------------------------------------------------
	g := relaxsched.RandomGraph(20000, 100000, 100, 1)
	exact := relaxsched.Dijkstra(g, 0)
	fmt.Printf("Dijkstra:        reached %d vertices, %d pops\n", exact.Reached, exact.Pops)

	ds := relaxsched.DeltaStepping(g, 0, 16)
	fmt.Printf("Delta-stepping:  %d pops (same distances: %v)\n",
		ds.Pops, equal(exact.Dist, ds.Dist))

	mq := relaxsched.NewMultiQueue(g.NumNodes, 8, 2, true /* hashed: DecreaseKey */, 7)
	rel, err := relaxsched.RelaxedSSSP(g, 0, mq)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Relaxed (model): %d pops, overhead %.4f (Theorem 6.1 regime)\n",
		rel.Pops, rel.Overhead())

	par := relaxsched.ParallelSSSP(g, 0, 4, 2, 42)
	fmt.Printf("Parallel x4:     %d tasks processed, overhead %.4f\n",
		par.Processed, par.Overhead())

	// --- Incremental sorting under a relaxed scheduler ------------------
	keys := make([]int64, 10000)
	for i := range keys {
		keys[i] = int64((i*2654435761 + 12345) % 1000003)
	}
	sorted := relaxsched.BSTSort(keys)
	fmt.Printf("BST sort:        first=%d last=%d sorted=%v\n",
		sorted[0], sorted[len(sorted)-1], isSorted(sorted))

	dag := relaxsched.BSTSortDAG(keys)
	run, err := relaxsched.RunIncremental(dag,
		relaxsched.NewKRelaxedScheduler(dag.N, 8), relaxsched.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Relaxed sorting: %d tasks, %d extra steps (k=8 adversary; Theorem 3.3 says O(k^4 log n))\n",
		run.Processed, run.ExtraSteps)

	// --- Delaunay triangulation -----------------------------------------
	pts := make([]relaxsched.Point, 500)
	for i := range pts {
		pts[i] = relaxsched.Point{
			X: float64((i*48271)%99991) / 99991,
			Y: float64((i*69621)%99989) / 99989,
		}
	}
	tris, err := relaxsched.Triangulate(pts, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Delaunay:        %d points -> %d triangles\n", len(pts), len(tris))

	// --- Measuring a scheduler's actual relaxation ----------------------
	aud := relaxsched.NewAuditor(relaxsched.NewMultiQueue(5000, 8, 2, false, 3), 256)
	for i := 0; i < 5000; i++ {
		aud.Insert(i, int64(i))
	}
	for {
		task, _, ok := aud.ApproxGetMin()
		if !ok {
			break
		}
		aud.DeleteTask(task)
	}
	rep := aud.Report()
	fmt.Printf("MultiQueue(8q):  mean rank %.2f, max rank %d, max inversions %d\n",
		rep.MeanRank, rep.MaxRank, rep.MaxInv)
}

func equal(a, b []int64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func isSorted(a []int64) bool {
	for i := 1; i < len(a); i++ {
		if a[i-1] > a[i] {
			return false
		}
	}
	return true
}
