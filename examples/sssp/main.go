// Example sssp: parallel single-source shortest paths over a relaxed
// MultiQueue scheduler, on the paper's three input families (Section 7).
//
// The program generates a random, a road-like and a social-like graph,
// runs the concurrent SSSP at several thread counts, and prints the
// relaxation overhead (tasks processed / reachable vertices) and wall
// time — a miniature of Figure 1. Supply -dimacs FILE to use a real
// DIMACS .gr graph (e.g. the USA road network) instead of the generated
// road family.
//
// Run with:
//
//	go run ./examples/sssp [-n 100000] [-threads 8] [-dimacs path.gr]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"relaxsched"
)

func main() {
	var (
		n      = flag.Int("n", 100000, "approximate node count for generated graphs")
		maxT   = flag.Int("threads", runtime.NumCPU(), "maximum thread count")
		dimacs = flag.String("dimacs", "", "optional DIMACS .gr file replacing the road family")
	)
	flag.Parse()

	type family struct {
		name string
		g    *relaxsched.Graph
	}
	side := 1
	for side*side < *n/4 {
		side++
	}
	families := []family{
		{"random", relaxsched.RandomGraph(*n, 5**n, 100, 1)},
		{"road", relaxsched.RoadGraph(side, side, 10000, 100, 2)},
		{"social", relaxsched.SocialGraph(*n, 8, 100, 3)},
	}
	if *dimacs != "" {
		f, err := os.Open(*dimacs)
		if err != nil {
			log.Fatal(err)
		}
		g, err := relaxsched.ParseDIMACS(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		families[1] = family{"dimacs", g}
	}

	for _, fam := range families {
		start := time.Now()
		exact := relaxsched.Dijkstra(fam.g, 0)
		seqTime := time.Since(start)
		fmt.Printf("\n%s: %d nodes, %d arcs, %d reachable, sequential Dijkstra %v\n",
			fam.name, fam.g.NumNodes, fam.g.NumEdges(), exact.Reached, seqTime.Round(time.Millisecond))
		fmt.Printf("%8s %12s %10s %10s\n", "threads", "processed", "overhead", "time")
		for threads := 1; threads <= *maxT; threads *= 2 {
			start = time.Now()
			res := relaxsched.ParallelSSSP(fam.g, 0, threads, 2, uint64(threads))
			elapsed := time.Since(start)
			for v := range exact.Dist {
				if res.Dist[v] != exact.Dist[v] {
					log.Fatalf("%s: distance mismatch at %d", fam.name, v)
				}
			}
			fmt.Printf("%8d %12d %10.4f %10v\n",
				threads, res.Processed, res.Overhead(), elapsed.Round(time.Millisecond))
		}
	}
}
