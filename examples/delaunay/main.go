// Example delaunay: relaxed-order incremental mesh triangulation.
//
// The program generates random points, extracts the dependency DAG of the
// randomized incremental Delaunay algorithm (Section 3 of the paper),
// executes it through a relaxed scheduler — counting the wasted work the
// paper's Theorem 3.3 bounds — and re-builds the mesh in the relaxed
// processing order, verifying that out-of-order execution produces the
// exact same Delaunay triangulation. It then triangulates the same points
// with worker goroutines over a concurrent relaxed queue
// (ParallelTriangulate, whose dependencies are discovered during
// execution) and verifies that mesh too. Optionally writes the mesh as
// SVG.
//
// Run with:
//
//	go run ./examples/delaunay [-n 2000] [-k 8] [-threads 4] [-svg mesh.svg]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"relaxsched"
)

func main() {
	var (
		n       = flag.Int("n", 2000, "number of points")
		k       = flag.Int("k", 8, "scheduler relaxation factor")
		threads = flag.Int("threads", 4, "workers for the parallel triangulation")
		svg     = flag.String("svg", "", "write the triangulation as SVG to this file")
	)
	flag.Parse()

	// Deterministic pseudo-random points in the unit square.
	pts := make([]relaxsched.Point, *n)
	state := uint64(0x9e3779b97f4a7c15)
	next := func() float64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return float64(state%(1<<53)) / (1 << 53)
	}
	for i := range pts {
		pts[i] = relaxsched.Point{X: next(), Y: next()}
	}

	// Sequential randomized incremental run -> dependency DAG.
	dag, err := relaxsched.DelaunayDAG(pts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("points: %d, dependency edges: %d\n", dag.N, dag.NumDeps())

	// Relaxed execution through an adversarial k-relaxed scheduler.
	var order []int
	run, err := relaxsched.RunIncremental(dag, relaxsched.NewKRelaxedScheduler(dag.N, *k),
		relaxsched.RunOptions{OnProcess: func(label int) { order = append(order, label) }})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("relaxed run (k=%d): %d steps for %d tasks -> %d extra steps (%.2f%% overhead)\n",
		*k, run.Steps, run.Processed, run.ExtraSteps,
		100*(run.Overhead()-1))

	// Rebuild the mesh in the relaxed order; Delaunay triangulations are
	// unique for points in general position, so the mesh must match the
	// sequential one.
	seqTris, err := relaxsched.Triangulate(pts, nil)
	if err != nil {
		log.Fatal(err)
	}
	relTris, err := relaxsched.Triangulate(pts, order)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mesh: %d triangles sequentially, %d via relaxed order\n",
		len(seqTris), len(relTris))
	if len(seqTris) != len(relTris) {
		log.Fatal("relaxed-order mesh differs from sequential mesh")
	}

	// True parallel triangulation: goroutines over a concurrent relaxed
	// queue, dependencies discovered on line (a racing cavity claim blocks
	// and retries). The mesh must again be the unique Delaunay one.
	parTris, pres, err := relaxsched.ParallelTriangulate(pts, nil, relaxsched.ParallelDelaunayOptions{ExecOptions: relaxsched.ExecOptions{Threads: *threads, QueueMultiplier: 2, Seed: 42}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel x%d:  %d pops for %d insertions -> %d blocked retries; mesh matches: %v\n",
		*threads, pres.Pops, pres.Inserted, pres.Blocked, relaxsched.MeshesEqual(parTris, seqTris))
	if !relaxsched.MeshesEqual(parTris, seqTris) {
		log.Fatal("parallel mesh differs from sequential mesh")
	}

	if *svg != "" {
		if err := writeSVG(*svg, pts, relTris); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *svg)
	}
}

func writeSVG(path string, pts []relaxsched.Point, tris []relaxsched.Triangle) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	const size = 800.0
	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		size, size, size, size)
	for _, t := range tris {
		a, b, c := pts[t.A], pts[t.B], pts[t.C]
		fmt.Fprintf(w,
			`<polygon points="%.2f,%.2f %.2f,%.2f %.2f,%.2f" fill="none" stroke="steelblue" stroke-width="0.5"/>`+"\n",
			a.X*size, (1-a.Y)*size, b.X*size, (1-b.Y)*size, c.X*size, (1-c.Y)*size)
	}
	fmt.Fprintln(w, `</svg>`)
	if err := w.Flush(); err != nil {
		return err
	}
	return nil
}
