// Example sorting: comparison sorting by BST insertion under every
// scheduler family in the library.
//
// The program builds the sorting dependency DAG for a random key sequence
// and executes it through each scheduler, printing the extra steps (the
// paper's wasted-work metric) and the audited relaxation the scheduler
// actually exhibited. It demonstrates both the Theorem 3.3 upper-bound
// regime (adversarial k-relaxed) and the Theorem 5.1 lower-bound regime
// (MultiQueue).
//
// Run with:
//
//	go run ./examples/sorting [-n 20000]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"relaxsched"
)

func main() {
	n := flag.Int("n", 20000, "number of keys")
	flag.Parse()

	keys := make([]int64, *n)
	state := uint64(12345)
	for i := range keys {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		keys[i] = int64(state % (1 << 40))
	}
	dag := relaxsched.BSTSortDAG(keys)
	fmt.Printf("keys: %d, BST parent edges: %d\n\n", dag.N, dag.NumDeps())
	fmt.Printf("%-16s %12s %12s %10s %10s\n",
		"scheduler", "extra-steps", "adj-inv", "mean-rank", "max-rank")

	schedulers := []struct {
		name string
		mk   func() relaxsched.Scheduler
	}{
		{"exact", func() relaxsched.Scheduler { return relaxsched.NewExactScheduler(dag.N) }},
		{"k-relaxed k=4", func() relaxsched.Scheduler { return relaxsched.NewKRelaxedScheduler(dag.N, 4) }},
		{"k-relaxed k=16", func() relaxsched.Scheduler { return relaxsched.NewKRelaxedScheduler(dag.N, 16) }},
		{"random-k k=16", func() relaxsched.Scheduler { return relaxsched.NewRandomKScheduler(dag.N, 16, 7) }},
		{"batch k=8", func() relaxsched.Scheduler { return relaxsched.NewBatchScheduler(dag.N, 8) }},
		{"multiqueue 8q", func() relaxsched.Scheduler { return relaxsched.NewMultiQueue(dag.N, 8, 2, false, 7) }},
		{"spraylist p=8", func() relaxsched.Scheduler { return relaxsched.NewSprayList(dag.N, 8, 7) }},
	}
	for _, s := range schedulers {
		aud := relaxsched.NewAuditor(s.mk(), 4096)
		res, err := relaxsched.RunIncremental(dag, aud, relaxsched.RunOptions{})
		if err != nil {
			log.Fatalf("%s: %v", s.name, err)
		}
		rep := aud.Report()
		fmt.Printf("%-16s %12d %12d %10.2f %10d\n",
			s.name, res.ExtraSteps, res.AdjacentInversions, rep.MeanRank, rep.MaxRank)
	}

	fmt.Printf("\nTheorem 5.1 floor for the MultiQueue: (1/8) ln n = %.1f extra steps\n",
		math.Log(float64(*n))/8)
	fmt.Println("Theorem 3.3 ceiling for k-relaxed:   O(k^4 log n) extra steps")
}
