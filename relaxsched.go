package relaxsched

import (
	"io"

	"relaxsched/internal/bnb"
	"relaxsched/internal/bstsort"
	"relaxsched/internal/core"
	"relaxsched/internal/cq"
	"relaxsched/internal/delaunay"
	"relaxsched/internal/engine"
	"relaxsched/internal/geom"
	"relaxsched/internal/graph"
	"relaxsched/internal/mis"
	"relaxsched/internal/multiqueue"
	"relaxsched/internal/sched"
	"relaxsched/internal/spraylist"
	"relaxsched/internal/sssp"
	"relaxsched/internal/txn"
)

// Scheduler is the sequential relaxed-scheduler model of the paper
// (Section 2): a priority multiset with approximate minimum retrieval.
// Lower priorities are returned first.
type Scheduler = sched.Scheduler

// DecreaseKeyer is implemented by schedulers that can lower a pending
// task's priority in place (required by relaxed SSSP).
type DecreaseKeyer = sched.DecreaseKeyer

// AuditReport summarizes the measured rank and fairness behaviour of a
// scheduler wrapped by NewAuditor.
type AuditReport = sched.Report

// NewExactScheduler returns a strict (k = 1) scheduler over task ids
// [0, n).
func NewExactScheduler(n int) Scheduler { return sched.NewExact(n) }

// NewKRelaxedScheduler returns the adversarial k-relaxed scheduler: it
// respects RankBound and Fairness but otherwise maximizes priority
// inversions. Use it to measure worst-case relaxation costs.
func NewKRelaxedScheduler(n, k int) Scheduler { return sched.NewKRelaxed(n, k) }

// NewRandomKScheduler returns a benign k-relaxed scheduler that serves a
// uniformly random task among the k smallest.
func NewRandomKScheduler(n, k int, seed uint64) Scheduler { return sched.NewRandomK(n, k, seed) }

// NewBatchScheduler returns the deterministic k-LSM-style batch scheduler;
// it is (2k-1)-relaxed in the paper's model.
func NewBatchScheduler(n, k int) Scheduler { return sched.NewBatch(n, k) }

// NewMultiQueue returns a sequential-model MultiQueue with q internal
// queues and c-choice probing (classic configuration: c = 2). With hashed
// insertion (hashed = true) it supports DecreaseKey and can drive
// RelaxedSSSP.
//
// Deprecated: Use NewMultiQueueWith, whose options struct names each knob.
func NewMultiQueue(n, q, c int, hashed bool, seed uint64) Scheduler {
	return NewMultiQueueWith(MultiQueueOptions{N: n, Queues: q, Choices: c, Hashed: hashed, Seed: seed})
}

// MultiQueueOptions configure NewMultiQueueWith.
type MultiQueueOptions struct {
	// N is the task-id capacity: the scheduler holds ids in [0, N).
	N int
	// Queues is the number of internal queues.
	Queues int
	// Choices is the probe width of each pop (classic configuration: 2).
	Choices int
	// Hashed routes each id to a fixed queue by hash instead of a random
	// one, enabling DecreaseKey (required by RelaxedSSSP).
	Hashed bool
	// Seed drives queue selection.
	Seed uint64
}

// NewMultiQueueWith returns a sequential-model MultiQueue (the paper's
// Section 2 structure under the Section 7 implementation's parameters).
func NewMultiQueueWith(opts MultiQueueOptions) Scheduler {
	policy := multiqueue.RandomQueue
	if opts.Hashed {
		policy = multiqueue.HashedQueue
	}
	return multiqueue.New(opts.N, opts.Queues, opts.Choices, policy, opts.Seed)
}

// NewSprayList returns a sequential-model SprayList tuned for p simulated
// threads.
//
// Deprecated: Use NewSprayListWith, whose options struct names each knob.
func NewSprayList(n, p int, seed uint64) Scheduler {
	return NewSprayListWith(SprayListOptions{N: n, Threads: p, Seed: seed})
}

// SprayListOptions configure NewSprayListWith.
type SprayListOptions struct {
	// N is the task-id capacity: the scheduler holds ids in [0, N).
	N int
	// Threads is the simulated thread count the spray heights are tuned
	// for.
	Threads int
	// Seed drives the spray randomness.
	Seed uint64
}

// NewSprayListWith returns a sequential-model SprayList (lazy skip list
// with spray-height pops).
func NewSprayListWith(opts SprayListOptions) Scheduler {
	return spraylist.New(opts.N, opts.Threads, opts.Seed)
}

// Auditor wraps a scheduler and measures the rank of every returned task
// and the inversions suffered by the minimum, i.e. the empirical
// relaxation factor.
type Auditor = sched.Auditor

// NewAuditor wraps inner with rank/fairness measurement. histWidth bounds
// the rank histogram.
func NewAuditor(inner Scheduler, histWidth int) *Auditor { return sched.NewAuditor(inner, histWidth) }

// TopKStreamOptions configure a streaming top-k execution: worker count,
// queue multiplier, concurrent queue Backend, BatchSize (applied on both
// the worker and the producer side), Seed, the number of declared
// Producers, and an optional per-job Execute body.
type TopKStreamOptions = sched.StreamOptions

// TopKStreamResult summarizes a finished streaming execution: executed job
// count, the priorities in global execution order, and the mean/max rank
// error of that order against the true priority order.
type TopKStreamResult = sched.StreamResult

// TopKStream is a live streaming execution: workers drain jobs in relaxed
// priority order while JobProducer handles stream more in.
type TopKStream = sched.TopKStream

// JobProducer streams prioritized jobs into a TopKStream from a single
// goroutine: Push feeds jobs (buffered per BatchSize, Flush forces
// visibility), Close marks the arrival stream finished. Push after Close
// panics; Close is idempotent.
type JobProducer = sched.JobProducer

// NewTopKStream opens the engine to external producers — the open-system
// counterpart of the closed-world parallel paths, whose tasks are all born
// inside workers via spawning. It launches the worker pool immediately;
// create exactly opts.Producers handles with NewProducer, stream and close
// each, then Wait for the result. Termination is "all producers closed AND
// all streamed jobs executed".
func NewTopKStream(opts TopKStreamOptions) (*TopKStream, error) { return sched.NewTopKStream(opts) }

// StreamTopKOptions configure StreamTopK: the embedded TopKStreamOptions
// plus JobsPerProducer and the per-producer arrival Rate in jobs/sec
// (0 = unthrottled).
type StreamTopKOptions = sched.TopKRunOptions

// StreamTopK runs the self-driving streaming top-k benchmark: Producers
// goroutines emit JobsPerProducer jobs each with distinct random priorities
// at the configured arrival rate, workers execute in relaxed priority
// order, and every job is verified to execute exactly once. The result's
// rank error measures how far the executed order strayed from the true
// priority order — the open-system analogue of the sequential model's
// RankBound.
func StreamTopK(opts StreamTopKOptions) (TopKStreamResult, error) { return sched.ParallelTopK(opts) }

// DAG is a dependency DAG over tasks labelled 0..N-1 in priority order.
type DAG = core.DAG

// NewDAG returns a DAG over n tasks with no dependencies.
func NewDAG(n int) *DAG { return core.NewDAG(n) }

// RunOptions configures RunIncremental.
type RunOptions = core.Options

// RunResult reports the steps, extra steps and inversions of a relaxed
// incremental execution.
type RunResult = core.Result

// RunIncremental executes the task set described by dag through s
// (Algorithm 2 of the paper) and returns the wasted-work accounting.
func RunIncremental(dag *DAG, s Scheduler, opts RunOptions) (RunResult, error) {
	return core.Run(dag, s, opts)
}

// ExecOptions are the engine knobs shared by every parallel execution
// path: queue Backend and QueueMultiplier, Threads, BatchSize, Seed,
// IdleStrategy, Deadline, MaxBlockedRetries, StallTimeout/OnStall and the
// fault Injector. Every parallel options struct (ParallelSSSPOptions,
// ParallelRunOptions, ParallelBnBOptions, ParallelMISOptions,
// ParallelDelaunayOptions, TopKStreamOptions, ParallelTxnOptions) embeds
// ExecOptions instead of re-declaring these fields, so the engine plumbing
// is configured identically everywhere:
//
//	relaxsched.ParallelSSSPWith(g, 0, relaxsched.ParallelSSSPOptions{
//		ExecOptions: relaxsched.ExecOptions{Threads: 8, QueueMultiplier: 2},
//	})
//
// Migration note: before this redesign each struct declared the fields
// directly, so keyed literals like ParallelSSSPOptions{Threads: 8} must
// become the nested form above. Field *reads* are unaffected — embedding
// promotes the fields, so opts.Threads still works.
type ExecOptions = engine.ExecOptions

// IdleStrategy selects the workers' empty-queue behavior (see ExecOptions):
// IdlePark (the default) parks idle workers on an event-driven wakeup lot,
// IdleSpin keeps the legacy bounded-sleep polling loop.
type IdleStrategy = engine.IdleStrategy

const (
	// IdlePark parks idle workers; an idle execution consumes no CPU.
	IdlePark = engine.IdlePark
	// IdleSpin polls with bounded sleeps (benchmark baseline).
	IdleSpin = engine.IdleSpin
)

// QueueBackend names a concurrent relaxed-queue implementation used by the
// parallel execution paths (RunIncrementalParallel, ParallelSSSP). The zero
// value selects the default backend.
type QueueBackend = cq.Backend

const (
	// BackendMultiQueue is the lock-per-queue MultiQueue with 2-choice pops
	// (the paper's Section 7 structure; the default).
	BackendMultiQueue = cq.MultiQueueBackend
	// BackendSprayList is the lazy lock-based skip list with spray-height
	// pops (SprayList, PPoPP 2015).
	BackendSprayList = cq.SprayListBackend
	// BackendLockFree is the lock-free MultiQueue: each internal queue is
	// an immutable pairing heap behind one atomic root pointer
	// (Treiber-style), and pops CAS-steal the cached top. No operation
	// ever holds a lock, so a preempted worker cannot block the others.
	BackendLockFree = cq.LockFreeBackend
	// BackendExact is the strict-order control: one binary heap behind one
	// mutex, relaxation factor exactly 1. Use it to price relaxation
	// against strict ordering on the same worker/engine harness.
	BackendExact = cq.ExactBackend
)

// QueueBackends returns every available concurrent queue backend, default
// first.
func QueueBackends() []QueueBackend { return cq.Backends() }

// ParallelRunOptions configure RunIncrementalParallel. Its Backend field
// selects the concurrent queue implementation; its BatchSize field sets
// how many labels a worker moves per queue operation (<= 1 disables
// batching).
type ParallelRunOptions = core.ParallelOptions

// RunIncrementalParallel executes the task set with worker goroutines over
// a concurrent relaxed queue — the concurrent analogue of Algorithm 2.
// Blocked tasks are re-inserted, and every pop counts as a step, so
// ExtraSteps again measures speculation waste.
func RunIncrementalParallel(dag *DAG, opts ParallelRunOptions) (RunResult, error) {
	return core.ParallelRun(dag, opts)
}

// Graph is a weighted directed graph in CSR form.
type Graph = graph.Graph

// GraphBuilder accumulates arcs and builds a Graph.
type GraphBuilder = graph.Builder

// NewGraphBuilder returns a builder for a graph with n nodes.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// RandomGraph generates an undirected uniform G(n, m) graph with weights
// in [1, maxW].
//
// Deprecated: Use RandomGraphWith, whose options struct names each knob.
func RandomGraph(n, m int, maxW int64, seed uint64) *Graph {
	return RandomGraphWith(RandomGraphOptions{N: n, M: m, MaxWeight: maxW, Seed: seed})
}

// RandomGraphOptions configure RandomGraphWith: N nodes, M undirected
// edges, weights uniform in [1, MaxWeight], generation driven by Seed.
type RandomGraphOptions struct {
	N         int
	M         int
	MaxWeight int64
	Seed      uint64
}

// RandomGraphWith generates an undirected uniform G(n, m) graph.
func RandomGraphWith(opts RandomGraphOptions) *Graph {
	return graph.Random(opts.N, opts.M, opts.MaxWeight, opts.Seed)
}

// RoadGraph generates a road-network-like grid graph (high diameter,
// distance-like weights in [1, maxW], dropPerMille/1000 of the vertical
// edges removed).
//
// Deprecated: Use RoadGraphWith, whose options struct names each knob.
func RoadGraph(width, height int, maxW int64, dropPerMille int, seed uint64) *Graph {
	return RoadGraphWith(RoadGraphOptions{
		Width: width, Height: height, MaxWeight: maxW,
		DropPerMille: dropPerMille, Seed: seed,
	})
}

// RoadGraphOptions configure RoadGraphWith: a Width x Height grid with
// distance-like weights in [1, MaxWeight] and DropPerMille/1000 of the
// vertical edges removed (raising the diameter, as in road networks).
type RoadGraphOptions struct {
	Width        int
	Height       int
	MaxWeight    int64
	DropPerMille int
	Seed         uint64
}

// RoadGraphWith generates a road-network-like grid graph.
func RoadGraphWith(opts RoadGraphOptions) *Graph {
	return graph.Road(opts.Width, opts.Height, opts.MaxWeight, opts.DropPerMille, opts.Seed)
}

// SocialGraph generates a social-network-like preferential-attachment
// graph with deg edges per arriving node and weights in [1, maxW].
//
// Deprecated: Use SocialGraphWith, whose options struct names each knob.
func SocialGraph(n, deg int, maxW int64, seed uint64) *Graph {
	return SocialGraphWith(SocialGraphOptions{N: n, Degree: deg, MaxWeight: maxW, Seed: seed})
}

// SocialGraphOptions configure SocialGraphWith: N nodes arriving with
// Degree preferential-attachment edges each, weights in [1, MaxWeight].
type SocialGraphOptions struct {
	N         int
	Degree    int
	MaxWeight int64
	Seed      uint64
}

// SocialGraphWith generates a social-network-like preferential-attachment
// graph.
func SocialGraphWith(opts SocialGraphOptions) *Graph {
	return graph.Social(opts.N, opts.Degree, opts.MaxWeight, opts.Seed)
}

// ParseDIMACS reads a graph in the DIMACS shortest-path ".gr" format.
func ParseDIMACS(r io.Reader) (*Graph, error) { return graph.ParseDIMACS(r) }

// WriteDIMACS writes a graph in the DIMACS ".gr" format.
func WriteDIMACS(w io.Writer, g *Graph) error { return graph.WriteDIMACS(w, g) }

// SSSPResult is the output of the sequential SSSP variants.
type SSSPResult = sssp.Result

// ParallelSSSPResult is the output of ParallelSSSP.
type ParallelSSSPResult = sssp.ParallelResult

// InfDistance is the distance reported for unreachable vertices.
const InfDistance = sssp.Inf

// Dijkstra computes exact shortest paths from src.
func Dijkstra(g *Graph, src int) SSSPResult { return sssp.Dijkstra(g, src) }

// DeltaStepping computes exact shortest paths with a monotone bucket queue
// of width delta.
func DeltaStepping(g *Graph, src int, delta int64) SSSPResult {
	return sssp.DeltaStepping(g, src, delta)
}

// DijkstraTree computes exact shortest paths and the shortest-path tree:
// parents[v] is v's predecessor on a shortest path (-1 for the source and
// for unreachable vertices).
func DijkstraTree(g *Graph, src int) (SSSPResult, []int32) { return sssp.DijkstraTree(g, src) }

// ShortestPathTo reconstructs the path from src to v out of a parent array
// returned by DijkstraTree; nil if unreachable.
func ShortestPathTo(parents []int32, src, v int) []int { return sssp.PathTo(parents, src, v) }

// RelaxedSSSP runs the paper's Algorithm 3: Dijkstra through a relaxed
// scheduler supporting DecreaseKey (e.g. NewMultiQueue with hashed = true,
// NewSprayList, or NewKRelaxedScheduler). The pop count in the result is
// the quantity Theorem 6.1 bounds.
func RelaxedSSSP(g *Graph, src int, q Scheduler) (SSSPResult, error) {
	rq, ok := q.(sssp.RelaxedScheduler)
	if !ok {
		return SSSPResult{}, errNoDecreaseKey
	}
	return sssp.Relaxed(g, src, rq)
}

type noDecreaseKeyError struct{}

func (noDecreaseKeyError) Error() string {
	return "relaxsched: scheduler does not support DecreaseKey"
}

var errNoDecreaseKey = noDecreaseKeyError{}

// ParallelSSSP runs SSSP with the given number of goroutines over a
// concurrent MultiQueue with queueMultiplier queues per thread (the
// paper's Section 7 implementation).
//
// Deprecated: Use ParallelSSSPWith, whose options struct names each knob
// and exposes the full ExecOptions surface (backend selection, batching,
// deadlines).
func ParallelSSSP(g *Graph, src, threads, queueMultiplier int, seed uint64) ParallelSSSPResult {
	return ParallelSSSPWith(g, src, ParallelSSSPOptions{ExecOptions: ExecOptions{
		Threads:         threads,
		QueueMultiplier: queueMultiplier,
		Seed:            seed,
	}})
}

// ParallelSSSPOptions configure ParallelSSSPWith; the Backend field selects
// the concurrent queue implementation and the BatchSize field the number
// of (vertex, dist) pairs a worker moves per queue operation (<= 1 runs
// the paper's per-element protocol).
type ParallelSSSPOptions = sssp.ParallelOptions

// ParallelSSSPWith runs SSSP with worker goroutines over the selected
// concurrent relaxed-queue backend. Like ParallelSSSP it panics on invalid
// options (Threads or QueueMultiplier < 1, unknown Backend); validate
// runtime input with QueueBackend.Valid first.
func ParallelSSSPWith(g *Graph, src int, opts ParallelSSSPOptions) ParallelSSSPResult {
	return sssp.ParallelWith(g, src, opts)
}

// Point is a point in the plane.
type Point = geom.Point

// Triangle is one triangle of a Delaunay mesh, as indices into the input
// point slice.
type Triangle = delaunay.Triangle

// Triangulate computes the Delaunay triangulation of points (incremental
// Bowyer-Watson with exact predicates). Pass a non-nil order to control
// the insertion sequence.
func Triangulate(points []Point, order []int) ([]Triangle, error) {
	return delaunay.Triangulate(points, order)
}

// DelaunayDAG runs the sequential randomized incremental triangulation in
// label order and returns the dependency DAG used by the paper's framework
// (points should be pre-shuffled for a random order).
func DelaunayDAG(points []Point) (*DAG, error) {
	dag, _, err := delaunay.BuildDAG(points)
	return dag, err
}

// ParallelDelaunayOptions configure ParallelTriangulate: worker count,
// queue multiplier, concurrent queue Backend, BatchSize and Seed.
type ParallelDelaunayOptions = delaunay.ParallelOptions

// ParallelDelaunayResult is the wasted-work accounting of a parallel
// triangulation: Pops, Inserted, Blocked (cavity claims lost to racing
// insertions and re-inserted — this workload's extra steps) and Tris.
type ParallelDelaunayResult = delaunay.ParallelResult

// ParallelTriangulate computes the Delaunay triangulation with worker
// goroutines over a concurrent relaxed queue — the engine workload whose
// dependency DAG is discovered *during* execution: an insertion locates
// its conflict triangle through the history of destroyed triangles, claims
// the Bowyer-Watson cavity via per-triangle atomic claim states, and is
// re-inserted when a racing insertion owns part of it. Insertions are
// prioritized by permutation index (order as in Triangulate; nil = 0..n-1).
// For points in general position the mesh equals Triangulate's for any
// schedule — compare with MeshesEqual, as triangle order differs.
func ParallelTriangulate(points []Point, order []int, opts ParallelDelaunayOptions) ([]Triangle, ParallelDelaunayResult, error) {
	return delaunay.ParallelTriangulate(points, order, opts)
}

// MeshesEqual reports whether two meshes contain the same triangles,
// ignoring order and vertex rotation.
func MeshesEqual(a, b []Triangle) bool { return delaunay.MeshesEqual(a, b) }

// BSTSort sorts keys by binary-search-tree insertion (the paper's
// comparison-sorting incremental algorithm).
func BSTSort(keys []int64) []int64 { return bstsort.Sort(keys) }

// BSTSortDAG returns the ancestor dependency DAG of the BST built by
// inserting keys in order.
func BSTSortDAG(keys []int64) *DAG {
	dag, _ := bstsort.BuildDAG(keys)
	return dag
}

// GreedyWorkload is a random-order greedy-iterative task system over a
// graph (vertices in a random permutation; a vertex depends on its
// earlier-ordered neighbours).
type GreedyWorkload = mis.Workload

// NewGreedyWorkload draws the random vertex order for g from seed and
// builds the dependency DAG.
func NewGreedyWorkload(g *Graph, seed uint64) *GreedyWorkload { return mis.NewWorkload(g, seed) }

// GreedyMIS computes the greedy maximal independent set of the workload's
// permutation through the given scheduler; the result is scheduler-
// independent, only the wasted work varies.
func GreedyMIS(w *GreedyWorkload, s Scheduler) ([]bool, RunResult, error) {
	return mis.GreedyMIS(w, s)
}

// GreedyColoring computes the greedy (first-fit) coloring of the
// workload's permutation through the given scheduler.
func GreedyColoring(w *GreedyWorkload, s Scheduler) ([]int32, RunResult, error) {
	return mis.GreedyColoring(w, s)
}

// ParallelMISOptions configure ParallelGreedyMIS and
// ParallelGreedyColoring: just the embedded ExecOptions — unlike
// ParallelRunOptions there is no OnProcess hook, because the serialized
// processing callback is the algorithm itself here.
type ParallelMISOptions = mis.ParallelOptions

// ParallelGreedyMIS computes the greedy maximal independent set of the
// workload's permutation with worker goroutines over a concurrent relaxed
// queue (the generic engine's static-DAG workload). The set is identical to
// the sequential greedy one; only the wasted work varies.
func ParallelGreedyMIS(w *GreedyWorkload, opts ParallelMISOptions) ([]bool, RunResult, error) {
	return mis.ParallelGreedyMIS(w, opts)
}

// ParallelGreedyColoring computes the greedy (first-fit) coloring of the
// workload's permutation with worker goroutines; the colors match the
// sequential greedy coloring.
func ParallelGreedyColoring(w *GreedyWorkload, opts ParallelMISOptions) ([]int32, RunResult, error) {
	return mis.ParallelGreedyColoring(w, opts)
}

// VerifyMIS checks independence and maximality.
func VerifyMIS(g *Graph, inMIS []bool) error { return mis.VerifyMIS(g, inMIS) }

// VerifyColoring checks that a coloring is proper and complete.
func VerifyColoring(g *Graph, colors []int32) error { return mis.VerifyColoring(g, colors) }

// BnBTree describes a synthetic branch-and-bound search tree (Karp-Zhang
// style parallel backtracking, the origin of relaxed scheduling).
type BnBTree = bnb.Tree

// BnBResult summarizes a branch-and-bound run.
type BnBResult = bnb.Result

// BranchAndBound performs best-first branch-and-bound through the given
// scheduler; relaxation may expand extra nodes but never changes the
// optimum. budget caps scheduler slots (size the scheduler accordingly).
func BranchAndBound(t BnBTree, s Scheduler, budget int) (BnBResult, error) {
	return bnb.Run(t, s, budget)
}

// ParallelBnBOptions configure ParallelBranchAndBound: worker count, queue
// multiplier, concurrent queue Backend, BatchSize, Seed and the node
// Budget.
type ParallelBnBOptions = bnb.ParallelOptions

// ParallelBranchAndBound performs best-first branch-and-bound with worker
// goroutines over a concurrent relaxed queue — the Karp-Zhang dynamic-task
// workload on the generic engine. The optimum is deterministic; expanded
// and pruned counts vary with scheduling.
func ParallelBranchAndBound(t BnBTree, opts ParallelBnBOptions) (BnBResult, error) {
	return bnb.ParallelRun(t, opts)
}

// TxnConfig parameterizes the transactional-model simulation.
type TxnConfig = txn.Config

// TxnResult reports commits, aborts and makespan of a transactional
// simulation.
type TxnResult = txn.Result

// SimulateTransactions runs the paper's transactional model (Section 4)
// over the dependency DAG: concurrent optimistic execution where a
// transaction aborts iff it runs concurrently with a dependency.
func SimulateTransactions(dag *DAG, cfg TxnConfig) (TxnResult, error) {
	return txn.Simulate(dag, cfg)
}

// TxnWorkloadSpec describes a generated transactional workload: Txns
// transactions over Keys records, keys drawn Zipf(Skew), OpsPerTxn
// operations per transaction at ReadFrac reads, deterministically from
// Seed. The same spec drives both the sequential model oracle
// (SimulateTransactionSpec) and the real parallel execution
// (ParallelTransactions).
type TxnWorkloadSpec = txn.WorkloadSpec

// SimulateTransactionSpec runs the Section 4 transactional model over the
// spec's conflict DAG — the sequential oracle for the parallel OCC
// executor: same generated transactions, same conflict structure, cost
// model instead of real execution.
func SimulateTransactionSpec(spec TxnWorkloadSpec, cfg TxnConfig) (TxnResult, error) {
	return txn.SimulateSpec(spec, cfg)
}

// ParallelTxnOptions configure ParallelTransactions: the embedded engine
// ExecOptions plus the number of external Producer goroutines (0 = seed
// the whole stream through the frontier instead).
type ParallelTxnOptions = txn.ParallelOptions

// ParallelTxnResult reports a finished parallel transactional run:
// commit/abort/start counts plus the contention-management counters
// (promotions to split mode, phase-fence reconciliations, split-path
// delta deposits) and the quarantine count when retries are capped.
type ParallelTxnResult = txn.ParallelResult

// ParallelTransactions executes the generated OCC workload on the engine:
// worker goroutines run one optimistic attempt per pop (re-insertion is
// the retry loop), a contention detector promotes hot records to
// split/phased handling with per-worker commutative deltas reconciled at
// phase fences, and the finished run is certified serializable by
// replaying its commit log in ticket order before the result is returned.
func ParallelTransactions(spec TxnWorkloadSpec, opts ParallelTxnOptions) (ParallelTxnResult, error) {
	return txn.ParallelRun(spec, opts)
}
