// Package loader type-checks Go packages for the relaxlint analyzers
// without any dependency beyond the standard library: it shells out to
// `go list -deps -json` for build-system truth (which files, which imports,
// dependency order) and runs go/parser + go/types over the result.
//
// Standard-library dependencies are type-checked from source in the same
// sweep — `go list -deps` emits every package after its dependencies, so a
// single forward pass with a map-backed importer resolves everything. That
// trades a couple of seconds of stdlib checking for zero external
// dependencies and no reliance on compiler export data, which is exactly
// the trade an offline, vendorless lint module wants. Type errors in
// standard-library packages are tolerated (assembly-backed or cgo-backed
// declarations may be missing); errors in the target module's packages are
// reported and fail the load.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// PkgPath is the package's import path.
	PkgPath string
	// Dir is the package's source directory.
	Dir string
	// Standard reports a standard-library package (not linted, only
	// imported).
	Standard bool
	// GoFiles are the parsed file names (build-tag-filtered by go list).
	GoFiles []string
	// Files are the parsed syntax trees, parallel to GoFiles.
	Files []*ast.File
	// Types is the type-checked package (possibly incomplete for Standard
	// packages with assembly or cgo parts).
	Types *types.Package
	// TypesInfo holds type-checker results for Files; nil for Standard
	// packages (they are imported, not analyzed).
	TypesInfo *types.Info
	// Errors are the parse and type errors encountered (non-Standard
	// packages only; Standard errors are tolerated and dropped).
	Errors []error
}

// Config parameterizes a Load.
type Config struct {
	// Dir is the directory to run the build system in — the target module
	// root. Empty means the current directory.
	Dir string
	// IncludeStd keeps standard-library packages in the returned slice
	// (they are always loaded as import dependencies; this only controls
	// whether callers see them). relaxlint leaves it false.
	IncludeStd bool
}

// listPkg mirrors the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Standard   bool
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Result is a completed load: the requested packages plus shared state.
type Result struct {
	Fset       *token.FileSet
	Packages   []*Package
	Sizes      types.Sizes
	ModulePath string
	// byPath indexes every loaded package (stdlib included) by import path.
	byPath map[string]*Package
}

// Lookup returns the loaded package with the given import path, or nil.
func (r *Result) Lookup(path string) *Package { return r.byPath[path] }

// Load lists patterns (plus their full dependency closure) under cfg.Dir
// and type-checks everything in dependency order.
func Load(cfg Config, patterns ...string) (*Result, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	goarch, err := goEnv(cfg.Dir, "GOARCH")
	if err != nil {
		return nil, err
	}
	sizes := types.SizesFor("gc", goarch)
	if sizes == nil {
		sizes = types.SizesFor("gc", "amd64")
	}
	modPath, err := goList(cfg.Dir, "-m")
	if err != nil {
		// Not in a module (GOPATH mode); leave the module path empty.
		modPath = ""
	}

	args := append([]string{"list", "-e", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	dec := json.NewDecoder(out)
	var listed []*listPkg
	for {
		lp := new(listPkg)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("loader: decoding go list output: %v", err)
		}
		listed = append(listed, lp)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("loader: go list: %v\n%s", err, stderr.String())
	}

	res := &Result{
		Fset:       token.NewFileSet(),
		Sizes:      sizes,
		ModulePath: strings.TrimSpace(modPath),
		byPath:     make(map[string]*Package, len(listed)),
	}
	// go list -deps emits dependencies before dependents, so one forward
	// pass suffices: by the time a package is checked, everything it
	// imports is in byPath.
	for _, lp := range listed {
		if lp.ImportPath == "unsafe" {
			res.byPath["unsafe"] = &Package{PkgPath: "unsafe", Standard: true, Types: types.Unsafe}
			continue
		}
		pkg, err := res.check(lp)
		if err != nil {
			return nil, err
		}
		res.byPath[lp.ImportPath] = pkg
		if !pkg.Standard || cfg.IncludeStd {
			res.Packages = append(res.Packages, pkg)
		}
	}
	return res, nil
}

// check parses and type-checks one listed package against the already
// loaded dependency set.
func (r *Result) check(lp *listPkg) (*Package, error) {
	pkg := &Package{
		PkgPath:  lp.ImportPath,
		Dir:      lp.Dir,
		Standard: lp.Standard,
	}
	if lp.Error != nil && !lp.Standard {
		pkg.Errors = append(pkg.Errors, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err))
	}
	files := lp.GoFiles
	if lp.Standard {
		// Cgo-backed declarations live in CgoFiles; parsing them raw keeps
		// the exported surface complete enough to import. (Unresolved C.*
		// references surface as tolerated type errors.)
		files = append(append([]string{}, files...), lp.CgoFiles...)
	}
	for _, f := range files {
		path := f
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, f)
		}
		af, err := parser.ParseFile(r.Fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if lp.Standard {
				continue
			}
			pkg.Errors = append(pkg.Errors, err)
			continue
		}
		pkg.GoFiles = append(pkg.GoFiles, path)
		pkg.Files = append(pkg.Files, af)
	}

	var info *types.Info
	if !lp.Standard {
		info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
			Instances:  make(map[*ast.Ident]types.Instance),
		}
		pkg.TypesInfo = info
	}
	conf := types.Config{
		Importer:    &mapImporter{res: r, importMap: lp.ImportMap},
		Sizes:       r.Sizes,
		FakeImportC: true,
		Error: func(err error) {
			if !lp.Standard {
				pkg.Errors = append(pkg.Errors, err)
			}
		},
	}
	tpkg, _ := conf.Check(lp.ImportPath, r.Fset, pkg.Files, info)
	// Check returns a usable (if possibly incomplete) package even on
	// errors; keep it so dependents can still resolve what did check.
	pkg.Types = tpkg
	return pkg, nil
}

// mapImporter resolves imports against the already loaded set, applying
// the importing package's vendor/ImportMap translation first.
type mapImporter struct {
	res       *Result
	importMap map[string]string
	fallback  types.Importer
}

func (m *mapImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p := m.res.byPath[path]; p != nil && p.Types != nil {
		return p.Types, nil
	}
	// Last resort (should not happen with -deps ordering): the compiler
	// export-data importer.
	if m.fallback == nil {
		m.fallback = importer.Default()
	}
	return m.fallback.Import(path)
}

// goEnv returns one `go env` value under dir.
func goEnv(dir, key string) (string, error) {
	cmd := exec.Command("go", "env", key)
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("loader: go env %s: %v", key, err)
	}
	return strings.TrimSpace(string(out)), nil
}

// goList runs `go list args...` under dir and returns trimmed stdout.
func goList(dir string, args ...string) (string, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(string(out)), nil
}
