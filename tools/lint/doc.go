// Package lint is the root of the relaxlint module: a self-contained static
// analysis suite that machine-checks this repository's concurrency
// invariants — the assumptions that previously lived in comments and
// hand-counted pad arrays.
//
// # Layout
//
//	analysis/      minimal mirror of golang.org/x/tools/go/analysis
//	               (Analyzer, Pass, Diagnostic — identical field names)
//	analysistest/  golden-file test runner (// want "regex" comments)
//	loader/        go list + go/parser + go/types package loader
//	relax/         the five analyzers (padcheck, atomiconly, pinregion,
//	               spinbound, conformance) and the //relax: marker parsing
//	cmd/relaxlint/ the multichecker driver CI runs over ./...
//
// The module is deliberately standard-library-only: the production module
// must stay dependency-free, and the linters must build in offline,
// vendorless environments. The analysis/analysistest/loader packages mirror
// the x/tools API surface one-to-one so a later migration onto a pinned
// x/tools release is an import rewrite, not a port.
//
// # The //relax: markers
//
// Analyzers read four comment markers, written like //go: directives (no
// space after the slashes):
//
//	//relax:padded
//	    On a struct type declaration: the struct claims cache-line
//	    padding even without a literal `_ [N]byte` field. padcheck then
//	    enforces that its size is a multiple of 64 bytes. Structs with a
//	    blank `_ [N]byte` field are checked automatically, marker or not,
//	    and every such pad must end exactly on a 64-byte boundary so the
//	    payload before it owns its line.
//
//	//relax:hotpath
//	    On a function declaration: the body must stay allocation- and
//	    blocking-free. pinregion forbids make/new/&T{} allocation,
//	    channel operations, select, goroutine launches, time.Now/Sleep/
//	    Since, fmt calls, mutex Lock/RLock/Wait and os/syscall calls
//	    inside it. The same rules apply between an epoch Enter() and its
//	    Exit() without any marker.
//
//	//relax:owner
//	    On a function declaration: the body is a single-owner region
//	    (pre-publication construction, post-join teardown) where plain
//	    access to atomically-accessed fields is intentional; atomiconly
//	    skips it.
//
//	//relax:allow <analyzer>: <reason>
//	    On the offending line or the line directly above it: suppress
//	    that analyzer's finding here. The reason is mandatory — an allow
//	    without one is itself a diagnostic — so every suppression stays
//	    an auditable record of why the exception is safe.
//
// # Running locally
//
// From the repository root:
//
//	scripts/lint.sh            # gofmt + vet + staticcheck + relaxlint
//
// or directly:
//
//	go -C tools/lint test ./...                         # analyzer suite
//	go -C tools/lint build -o /tmp/relaxlint ./cmd/relaxlint
//	/tmp/relaxlint -dir . ./...                         # lint the repo
//
// The driver exits 1 on findings, 2 on load errors, 0 when clean. CI runs
// exactly this in the lint job; a finding is fixed or carries an
// //relax:allow with a reason, never ignored.
package lint
