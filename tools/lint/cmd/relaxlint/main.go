// Command relaxlint runs the relax analyzer suite (padcheck, atomiconly,
// pinregion, spinbound, conformance) over a module and exits non-zero on
// findings. It is the CI entry point; scripts/lint.sh wraps it for local
// runs.
//
// Usage:
//
//	relaxlint [-dir path] [-grid file] [-ci file] [packages...]
//
// -dir is the target module root (default "."). -grid and -ci point the
// conformance analyzer at the engine grid test file and the CI workflow;
// they default to the repository's canonical locations under -dir and are
// disabled ("" or missing file) gracefully. Patterns default to ./... .
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"relaxsched/tools/lint/analysis"
	"relaxsched/tools/lint/loader"
	"relaxsched/tools/lint/relax"
)

func main() {
	dir := flag.String("dir", ".", "target module root")
	grid := flag.String("grid", "", "engine conformance grid test file (default <dir>/internal/engine/engine_test.go)")
	ci := flag.String("ci", "", "CI workflow file for the -race matrix check (default <dir>/.github/workflows/ci.yml)")
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	if *grid == "" {
		*grid = filepath.Join(*dir, "internal", "engine", "engine_test.go")
	}
	if *ci == "" {
		*ci = filepath.Join(*dir, ".github", "workflows", "ci.yml")
	}
	// A missing default file disables its check rather than erroring: the
	// suite must be runnable on any module, not only this repository.
	relax.ConformanceGridFile = fileOrEmpty(*grid)
	relax.ConformanceCIFile = fileOrEmpty(*ci)

	res, err := loader.Load(loader.Config{Dir: *dir}, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "relaxlint: %v\n", err)
		os.Exit(2)
	}
	relax.ConformanceModulePath = res.ModulePath

	broken := false
	for _, pkg := range res.Packages {
		for _, e := range pkg.Errors {
			fmt.Fprintf(os.Stderr, "relaxlint: %s: %v\n", pkg.PkgPath, e)
			broken = true
		}
	}
	if broken {
		os.Exit(2)
	}

	var diags []diag
	for _, pkg := range res.Packages {
		for _, a := range relax.Analyzers() {
			pass := &analysis.Pass{
				Analyzer:   a,
				Fset:       res.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				TypesInfo:  pkg.TypesInfo,
				TypesSizes: res.Sizes,
				Report:     func(d analysis.Diagnostic) { diags = append(diags, diag{a.Name, d}) },
			}
			if _, err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "relaxlint: %s on %s: %v\n", a.Name, pkg.PkgPath, err)
				broken = true
			}
			_ = pass
		}
	}
	if broken {
		os.Exit(2)
	}

	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := res.Fset.Position(diags[i].d.Pos), res.Fset.Position(diags[j].d.Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Line < pj.Line
	})
	for _, d := range diags {
		pos := res.Fset.Position(d.d.Pos)
		fmt.Printf("%s: %s: %s\n", pos, d.analyzer, d.d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "relaxlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

type diag struct {
	analyzer string
	d        analysis.Diagnostic
}

// fileOrEmpty returns path if it exists, else "".
func fileOrEmpty(path string) string {
	if _, err := os.Stat(path); err != nil {
		return ""
	}
	return path
}
