// Package analysistest runs an analyzer over golden test packages and
// checks its diagnostics against // want "regex" comments, mirroring the
// golang.org/x/tools/go/analysis/analysistest convention: each expectation
// comment names one or more quoted regexes that must match diagnostics
// reported on that line, every expectation must be met, and every
// diagnostic must be expected.
//
// Test packages live under <testdata>/src/<name>/ as plain directories (no
// module). Imports resolve against sibling testdata packages first and fall
// back to the standard library, type-checked from source.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"relaxsched/tools/lint/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run loads each named package from <testdata>/src/<name>, applies the
// analyzer, and reports mismatches between diagnostics and // want
// expectations as test errors.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgNames ...string) {
	t.Helper()
	ld := newLoader(testdata)
	for _, name := range pkgNames {
		pkg, err := ld.load(name)
		if err != nil {
			t.Errorf("%s: loading %s: %v", a.Name, name, err)
			continue
		}
		for _, e := range pkg.errs {
			t.Errorf("%s: %s: type error in testdata: %v", a.Name, name, e)
		}
		if len(pkg.errs) > 0 {
			continue
		}
		runOne(t, ld, a, pkg)
	}
}

func runOne(t *testing.T, ld *loader, a *analysis.Analyzer, pkg *tpkg) {
	t.Helper()
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       ld.fset,
		Files:      pkg.files,
		Pkg:        pkg.types,
		TypesInfo:  pkg.info,
		TypesSizes: ld.sizes,
		Report:     func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Errorf("%s: %s: analyzer error: %v", a.Name, pkg.path, err)
		return
	}

	wants := collectWants(t, ld.fset, pkg.files)
	matched := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if matched[i] {
				continue
			}
			pos := ld.fset.Position(d.Pos)
			if pos.Filename == w.file && pos.Line == w.line && w.rx.MatchString(d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: %s:%d: no diagnostic matching %q", a.Name, filepath.Base(w.file), w.line, w.rx)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			pos := ld.fset.Position(d.Pos)
			t.Errorf("%s: %s:%d: unexpected diagnostic: %s", a.Name, filepath.Base(pos.Filename), pos.Line, d.Message)
		}
	}
}

// want is one expectation: a regex that must match a diagnostic on a line.
type want struct {
	file string
	line int
	rx   *regexp.Regexp
}

// wantRE extracts the quoted regexes of a // want comment.
var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// collectWants parses every // want "rx" ["rx" ...] comment in the files.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []want {
	t.Helper()
	var out []want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range splitQuoted(m[1]) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Errorf("%s:%d: bad want pattern %s: %v", filepath.Base(pos.Filename), pos.Line, q, err)
						continue
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", filepath.Base(pos.Filename), pos.Line, pat, err)
						continue
					}
					out = append(out, want{file: pos.Filename, line: pos.Line, rx: rx})
				}
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		return out[i].line < out[j].line
	})
	return out
}

// splitQuoted splits a want payload into quoted tokens. Both double-quoted
// (with escapes) and backquoted patterns are accepted, as in x/tools.
func splitQuoted(s string) []string {
	var out []string
	for {
		start := strings.IndexAny(s, "\"`")
		if start < 0 {
			return out
		}
		q := s[start]
		i := start + 1
		for i < len(s) {
			if q == '"' && s[i] == '\\' {
				i += 2
				continue
			}
			if s[i] == q {
				break
			}
			i++
		}
		if i >= len(s) {
			return out
		}
		out = append(out, s[start:i+1])
		s = s[i+1:]
	}
}

// tpkg is one loaded testdata package.
type tpkg struct {
	path  string
	files []*ast.File
	types *types.Package
	info  *types.Info
	errs  []error
}

// loader loads testdata packages with sibling-then-stdlib import
// resolution. Standard-library packages are type-checked from source (the
// "source" compiler importer), so the tests run in offline, vendorless
// environments.
type loader struct {
	testdata string
	fset     *token.FileSet
	sizes    types.Sizes
	std      types.Importer
	pkgs     map[string]*tpkg
}

func newLoader(testdata string) *loader {
	fset := token.NewFileSet()
	sizes := types.SizesFor("gc", runtime.GOARCH)
	if sizes == nil {
		sizes = types.SizesFor("gc", "amd64")
	}
	return &loader{
		testdata: testdata,
		fset:     fset,
		sizes:    sizes,
		std:      importer.ForCompiler(fset, "source", nil),
		pkgs:     make(map[string]*tpkg),
	}
}

func (ld *loader) load(name string) (*tpkg, error) {
	if p, ok := ld.pkgs[name]; ok {
		return p, nil
	}
	dir := filepath.Join(ld.testdata, "src", filepath.FromSlash(name))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &tpkg{path: name}
	ld.pkgs[name] = pkg // pre-register: import cycles surface as type errors
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pkg.files = append(pkg.files, f)
	}
	if len(pkg.files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	pkg.info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			if st, err := os.Stat(filepath.Join(ld.testdata, "src", filepath.FromSlash(path))); err == nil && st.IsDir() {
				p, err := ld.load(path)
				if err != nil {
					return nil, err
				}
				if len(p.errs) > 0 {
					return nil, fmt.Errorf("testdata dependency %s has type errors: %v", path, p.errs[0])
				}
				return p.types, nil
			}
			return ld.std.Import(path)
		}),
		Sizes: ld.sizes,
		Error: func(err error) { pkg.errs = append(pkg.errs, err) },
	}
	pkg.types, _ = conf.Check(name, ld.fset, pkg.files, pkg.info)
	return pkg, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
