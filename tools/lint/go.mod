// The lint suite is its own module so the root module stays stdlib-only:
// nothing in the production import graph may grow an external dependency
// just because the linters needed one.
//
// The module is deliberately self-contained (stdlib only): the analysis,
// analysistest and loader packages mirror the golang.org/x/tools/go/analysis
// API surface one-to-one, so the suite builds in vendorless/offline
// environments today and migrating onto a pinned x/tools release later is a
// mechanical import rewrite (see doc.go).
module relaxsched/tools/lint

go 1.24
