package relax

import (
	"go/ast"
	"go/constant"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"strings"

	"relaxsched/tools/lint/analysis"
)

// Conformance configuration — set by the driver (from flags) or by tests.
// Empty values disable the corresponding check, so the analyzer degrades
// gracefully when run outside the repository layout.
var (
	// ConformanceGridFile is the path of the engine conformance grid test
	// file; every workload-defining package must be imported there.
	ConformanceGridFile string
	// ConformanceCIFile is the path of the CI workflow; its -race matrix
	// must cover every workload-defining package.
	ConformanceCIFile string
	// ConformanceModulePath is the module path stripped from package paths
	// when matching CI matrix entries.
	ConformanceModulePath string
)

// ConformanceAnalyzer cross-checks registration points: cq backends against
// the registry, workloads against the conformance grid and the CI -race
// matrix.
var ConformanceAnalyzer = &analysis.Analyzer{
	Name: "conformance",
	Doc: `check that every backend and workload is wired into the conformance grids

Three wiring points are verified:

  1. every constant of the cq Backend type appears as a registry entry —
     an unregistered backend compiles but silently never runs under
     cqtest or the engine grid (Backends() derives from the registry);
  2. every package that defines an engine.Workload implementation is
     imported by the engine conformance grid test file, whose grids range
     over cq.Backends() x workloads; and
  3. the CI -race matrix covers every workload-defining package.

The grid file, CI file and module path are configured by the driver; unset
paths disable their check.`,
	Run: runConformance,
}

func runConformance(pass *analysis.Pass) (interface{}, error) {
	m := collectMarkers(pass)
	checkBackendRegistry(pass, m)
	checkWorkloadWiring(pass, m)
	return nil, nil
}

// checkBackendRegistry verifies (in the package that declares both) that
// every Backend-typed constant's value appears in the registry literal.
func checkBackendRegistry(pass *analysis.Pass, m *markers) {
	backendType := pass.Pkg.Scope().Lookup("Backend")
	registryVar := pass.Pkg.Scope().Lookup("registry")
	if backendType == nil || registryVar == nil {
		return
	}
	tn, ok := backendType.(*types.TypeName)
	if !ok {
		return
	}

	// Collect the constant values registered in the registry literal.
	registered := make(map[string]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			vs, ok := n.(*ast.ValueSpec)
			if !ok {
				return true
			}
			for i, name := range vs.Names {
				if pass.TypesInfo.Defs[name] != registryVar || i >= len(vs.Values) {
					continue
				}
				cl, ok := vs.Values[i].(*ast.CompositeLit)
				if !ok {
					continue
				}
				for _, elt := range cl.Elts {
					entry, ok := elt.(*ast.CompositeLit)
					if !ok || len(entry.Elts) == 0 {
						continue
					}
					for _, field := range entry.Elts {
						fe := field
						if kv, ok := field.(*ast.KeyValueExpr); ok {
							fe = kv.Value
						}
						if tv, ok := pass.TypesInfo.Types[fe]; ok && tv.Value != nil &&
							types.Identical(tv.Type, tn.Type()) {
							registered[constant.StringVal(tv.Value)] = true
						}
					}
				}
			}
			return true
		})
	}
	if len(registered) == 0 {
		return
	}

	// Every Backend-typed constant must be registered (aliases share the
	// value of their target, so value matching handles DefaultBackend).
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					c, ok := pass.TypesInfo.Defs[name].(*types.Const)
					if !ok || !types.Identical(c.Type(), tn.Type()) {
						continue
					}
					if !registered[constant.StringVal(c.Val())] {
						reportUnlessAllowed(pass, m, name.Pos(),
							"backend %s (%s) is not in the registry: it will never run under cqtest or the engine grid",
							name.Name, constant.StringVal(c.Val()))
					}
				}
			}
		}
	}
}

// checkWorkloadWiring verifies that packages defining engine.Workload
// implementations are imported by the grid file and covered by the CI
// -race matrix.
func checkWorkloadWiring(pass *analysis.Pass, m *markers) {
	iface := workloadInterface(pass.Pkg)
	if iface == nil {
		return
	}
	var impls []*types.TypeName
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		t := tn.Type()
		if types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface) {
			impls = append(impls, tn)
		}
	}
	if len(impls) == 0 {
		return
	}

	if ConformanceGridFile != "" {
		imports, err := fileImports(ConformanceGridFile)
		if err != nil {
			pass.Reportf(impls[0].Pos(), "conformance grid file %s unreadable: %v", ConformanceGridFile, err)
		} else if !imports[pass.Pkg.Path()] {
			reportUnlessAllowed(pass, m, impls[0].Pos(),
				"package %s defines engine.Workload implementation %s but is not imported by the conformance grid (%s)",
				pass.Pkg.Path(), impls[0].Name(), ConformanceGridFile)
		}
	}

	if ConformanceCIFile != "" {
		covered, err := ciRaceCovers(ConformanceCIFile, relPkgPath(pass.Pkg.Path()))
		if err != nil {
			pass.Reportf(impls[0].Pos(), "CI file %s unreadable: %v", ConformanceCIFile, err)
		} else if !covered {
			reportUnlessAllowed(pass, m, impls[0].Pos(),
				"package %s defines engine.Workload implementation %s but the CI -race matrix (%s) does not cover it",
				pass.Pkg.Path(), impls[0].Name(), ConformanceCIFile)
		}
	}
}

// workloadInterface finds the Workload interface exported by an imported
// package named engine; nil when the package doesn't import one.
func workloadInterface(pkg *types.Package) *types.Interface {
	for _, imp := range pkg.Imports() {
		if imp.Name() != "engine" {
			continue
		}
		tn, ok := imp.Scope().Lookup("Workload").(*types.TypeName)
		if !ok {
			continue
		}
		if iface, ok := tn.Type().Underlying().(*types.Interface); ok {
			return iface
		}
	}
	return nil
}

// relPkgPath strips the configured module prefix for CI matrix matching.
func relPkgPath(pkgPath string) string {
	if ConformanceModulePath != "" {
		if rel, ok := strings.CutPrefix(pkgPath, ConformanceModulePath+"/"); ok {
			return rel
		}
	}
	return pkgPath
}

// fileImports parses just the import clause of one file.
func fileImports(path string) (map[string]bool, error) {
	f, err := parser.ParseFile(token.NewFileSet(), path, nil, parser.ImportsOnly)
	if err != nil {
		return nil, err
	}
	out := make(map[string]bool, len(f.Imports))
	for _, imp := range f.Imports {
		out[strings.Trim(imp.Path.Value, `"`)] = true
	}
	return out, nil
}

// ciRaceCovers reports whether any -race invocation line in the CI file
// covers the package (./pkg, ./pkg/ or an ancestor ./x/... pattern).
func ciRaceCovers(path, rel string) (bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.Contains(line, "-race") {
			continue
		}
		for _, tok := range strings.Fields(line) {
			pat, ok := strings.CutPrefix(tok, "./")
			if !ok {
				continue
			}
			if sub, wild := strings.CutSuffix(pat, "/..."); wild {
				if rel == sub || strings.HasPrefix(rel, sub+"/") {
					return true, nil
				}
				continue
			}
			pat = strings.TrimSuffix(pat, "/")
			if rel == pat {
				return true, nil
			}
		}
	}
	return false, nil
}
