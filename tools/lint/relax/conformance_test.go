package relax_test

import (
	"path/filepath"
	"testing"

	"relaxsched/tools/lint/analysistest"
	"relaxsched/tools/lint/relax"
)

func TestConformance(t *testing.T) {
	td := analysistest.TestData()
	relax.ConformanceGridFile = filepath.Join(td, "grid.go")
	relax.ConformanceCIFile = filepath.Join(td, "ci.yml")
	relax.ConformanceModulePath = ""
	defer func() {
		relax.ConformanceGridFile, relax.ConformanceCIFile = "", ""
	}()
	analysistest.Run(t, td, relax.ConformanceAnalyzer, "cqreg", "confgood", "confbad")
}
