package relax

import (
	"go/ast"
	"go/types"
	"strings"

	"relaxsched/tools/lint/analysis"
)

// SpinboundAnalyzer requires every CAS/TryLock retry loop to carry an
// escape: a loop bound, a backoff, or a park.
var SpinboundAnalyzer = &analysis.Analyzer{
	Name: "spinbound",
	Doc: `check that CAS/TryLock retry loops are bounded or back off

A for loop whose body performs a CompareAndSwap (method or sync/atomic
function form) or a TryLock is a spin loop. Under contention an unbounded
bare spin burns a core, floods the coherence fabric, and — per the
scheduler model in the source paper — can starve the very thread holding
the state it waits on. Every such loop must exhibit an escape hatch:

  - a loop condition (for i := 0; i < n; ... bounded attempts), or
  - a call to a backoff/parking facility in the body
    (runtime.Gosched, time.Sleep, a park.Lot method, anything whose name
    contains "backoff"/"park"/"wait"), or
  - a blocking fallback (a plain Lock() after the Try phase), or
  - a monotone-progress break (lock-free CAS loops where each failure
    certifies another thread's progress) — those are not starvation but
    must be annotated //relax:allow spinbound: <reason> to stay auditable.`,
	Run: runSpinbound,
}

func runSpinbound(pass *analysis.Pass) (interface{}, error) {
	m := collectMarkers(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok {
				return true
			}
			// A loop with a condition is self-bounding (the condition is the
			// escape; bounded-attempt loops land here).
			if loop.Cond != nil {
				return true
			}
			spin, what := spinsInLoop(pass, loop)
			if !spin {
				return true
			}
			if hasEscape(pass, loop) {
				return true
			}
			reportUnlessAllowed(pass, m, loop.For,
				"unbounded spin loop around %s with no backoff/park/bound (add an escape, or annotate //relax:allow spinbound: <why each retry makes progress>)",
				what)
			return true
		})
	}
	return nil, nil
}

// spinsInLoop reports whether the loop body (excluding nested loops and
// closures) performs a CAS or TryLock, and names the first one found.
func spinsInLoop(pass *analysis.Pass, loop *ast.ForStmt) (bool, string) {
	found := ""
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			// A nested loop is its own spin site; don't blame the outer one.
			return false
		case *ast.CallExpr:
			if name := casOrTryName(pass, x); name != "" {
				found = name
			}
		}
		return true
	})
	return found != "", found
}

// casOrTryName classifies a call as CAS/TryLock and returns a display name.
func casOrTryName(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	name := sel.Sel.Name
	switch {
	case strings.HasPrefix(name, "CompareAndSwap"):
		return name
	case name == "TryLock", name == "TryRLock":
		return name
	}
	return ""
}

// hasEscape reports whether the loop body contains a recognized escape:
// scheduling yield, sleep, park, named backoff, a blocking Lock fallback,
// or a wait on a condition/parker.
func hasEscape(pass *analysis.Pass, loop *ast.ForStmt) bool {
	escaped := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if escaped {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			// Local helpers count when their name signals intent.
			if id, ok := call.Fun.(*ast.Ident); ok && nameSignalsEscape(id.Name) {
				escaped = true
			}
			return true
		}
		name := sel.Sel.Name
		if nameSignalsEscape(name) {
			escaped = true
			return false
		}
		// Qualified forms: runtime.Gosched, time.Sleep, and blocking
		// Lock()/RLock() fallbacks after the Try phase.
		if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
			switch {
			case fn.Pkg().Path() == "runtime" && fn.Name() == "Gosched":
				escaped = true
			case fn.Pkg().Path() == "time" && fn.Name() == "Sleep":
				escaped = true
			case (fn.Name() == "Lock" || fn.Name() == "RLock") && fn.Type().(*types.Signature).Recv() != nil:
				escaped = true
			}
		}
		return !escaped
	})
	return escaped
}

// nameSignalsEscape matches identifiers whose name declares a
// backoff/park/wait intent.
func nameSignalsEscape(name string) bool {
	l := strings.ToLower(name)
	for _, sig := range [...]string{"backoff", "park", "wait", "yield", "gosched", "sleep"} {
		if strings.Contains(l, sig) {
			return true
		}
	}
	return false
}
