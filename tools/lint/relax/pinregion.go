package relax

import (
	"go/ast"
	"go/token"
	"go/types"

	"relaxsched/tools/lint/analysis"
)

// PinregionAnalyzer forbids blocking and allocating operations inside epoch
// pin regions and //relax:hotpath functions.
var PinregionAnalyzer = &analysis.Analyzer{
	Name: "pinregion",
	Doc: `check that epoch-pinned regions and hotpath functions stay non-blocking

Two region kinds are enforced:

  1. the statements between an epoch pin (slot.Enter()) and the matching
     slot.Exit() inside one function body, and
  2. the whole body of any function marked //relax:hotpath.

Inside a region the following are diagnosed: heap allocation (new, make,
&T{...} composite literals), channel operations (send, receive, close,
select), goroutine launches, time.Now/Since/Sleep, any fmt call, mutex
acquisition (Lock/RLock on sync types), and known-blocking os/syscall
calls. append is deliberately permitted: amortized growth against a
pre-sized buffer is the repo's sanctioned pattern for batch drains.

A pinned thread that blocks stalls epoch advancement for every other
thread (reclamation stops; memory grows); a hotpath that allocates turns
the paper's per-op tail into a GC artifact. Intentional exceptions carry
//relax:allow pinregion: <reason>.`,
	Run: runPinregion,
}

func runPinregion(pass *analysis.Pass) (interface{}, error) {
	m := collectMarkers(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if m.nodeMarked(markerHotpath, fd.Doc, fd) {
				checkRegion(pass, m, fd.Body, "hotpath function "+fd.Name.Name)
				continue
			}
			checkPinSpans(pass, m, fd.Body)
		}
	}
	return nil, nil
}

// checkPinSpans finds Enter/Exit pairs at each block level and checks the
// statements lexically between them. The matching is lexical, not
// control-flow-aware: an Enter whose Exit lives in a deferred call pins the
// whole rest of the block.
func checkPinSpans(pass *analysis.Pass, m *markers, body *ast.BlockStmt) {
	var walkBlock func(b *ast.BlockStmt)
	walkBlock = func(b *ast.BlockStmt) {
		pinnedFrom := -1
		for i, stmt := range b.List {
			enter, exit, deferred := pinStmtKind(pass, stmt)
			switch {
			case enter && pinnedFrom < 0:
				pinnedFrom = i + 1
				if deferred {
					// defer slot.Enter() makes no sense; treat as unpinned.
					pinnedFrom = -1
				}
			case exit && pinnedFrom >= 0 && !deferred:
				for _, s := range b.List[pinnedFrom:i] {
					checkRegion(pass, m, s, "epoch pin region")
				}
				pinnedFrom = -1
			case exit && pinnedFrom >= 0 && deferred:
				// defer slot.Exit() directly after Enter: the rest of the
				// block is the pin region.
				for _, s := range b.List[pinnedFrom:] {
					if s == stmt {
						continue
					}
					checkRegion(pass, m, s, "epoch pin region")
				}
				pinnedFrom = -1
			}
		}
		if pinnedFrom >= 0 {
			// Enter with no lexical Exit in this block: conservatively treat
			// the remainder as pinned.
			for _, s := range b.List[pinnedFrom:] {
				checkRegion(pass, m, s, "epoch pin region")
			}
		}
		// Recurse into nested blocks outside any pin span (spans inside them
		// are found by the recursion; statements inside a span were already
		// checked wholesale above).
		for _, stmt := range b.List {
			ast.Inspect(stmt, func(n ast.Node) bool {
				if nb, ok := n.(*ast.BlockStmt); ok && nb != b {
					walkBlock(nb)
					return false
				}
				return true
			})
		}
	}
	walkBlock(body)
}

// pinStmtKind classifies a statement as an epoch pin enter/exit call.
// It matches <expr>.Enter() / <expr>.Exit() where the method is declared on
// a type from a package named "epoch" — method-set matching rather than a
// hardcoded type name, so renames inside the epoch package stay covered.
func pinStmtKind(pass *analysis.Pass, stmt ast.Stmt) (enter, exit, deferred bool) {
	var call *ast.CallExpr
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		call, _ = s.X.(*ast.CallExpr)
	case *ast.DeferStmt:
		call = s.Call
		deferred = true
	}
	if call == nil {
		return false, false, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false, false, false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Name() != "epoch" {
		return false, false, false
	}
	switch fn.Name() {
	case "Enter":
		return true, false, deferred
	case "Exit":
		return false, true, deferred
	}
	return false, false, false
}

// checkRegion reports every forbidden operation under node.
func checkRegion(pass *analysis.Pass, m *markers, node ast.Node, where string) {
	ast.Inspect(node, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			// A closure merely defined here runs later (or elsewhere); its
			// body is not part of this region.
			return false
		case *ast.GoStmt:
			reportUnlessAllowed(pass, m, x.Pos(), "goroutine launch in %s", where)
			return false
		case *ast.SelectStmt:
			reportUnlessAllowed(pass, m, x.Select, "select in %s (blocks the pinned/hot thread)", where)
			return false
		case *ast.SendStmt:
			reportUnlessAllowed(pass, m, x.Arrow, "channel send in %s", where)
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				reportUnlessAllowed(pass, m, x.OpPos, "channel receive in %s", where)
			} else if x.Op == token.AND {
				if _, ok := x.X.(*ast.CompositeLit); ok {
					reportUnlessAllowed(pass, m, x.Pos(), "heap allocation (&composite literal) in %s", where)
				}
			}
		case *ast.CallExpr:
			checkRegionCall(pass, m, x, where)
		}
		return true
	})
}

// checkRegionCall classifies one call inside a region.
func checkRegionCall(pass *analysis.Pass, m *markers, call *ast.CallExpr, where string) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		switch fun.Name {
		case "make", "new", "close":
			if _, isBuiltin := pass.TypesInfo.Uses[fun].(*types.Builtin); isBuiltin {
				verb := map[string]string{
					"make":  "heap allocation (make)",
					"new":   "heap allocation (new)",
					"close": "channel close",
				}[fun.Name]
				reportUnlessAllowed(pass, m, call.Pos(), "%s in %s", verb, where)
			}
		}
	case *ast.SelectorExpr:
		obj := pass.TypesInfo.Uses[fun.Sel]
		fn, ok := obj.(*types.Func)
		if !ok {
			return
		}
		pkg := fn.Pkg()
		if pkg == nil {
			return
		}
		switch pkg.Path() {
		case "time":
			switch fn.Name() {
			case "Now", "Since", "Sleep", "After", "Tick":
				reportUnlessAllowed(pass, m, call.Pos(), "time.%s in %s", fn.Name(), where)
			}
		case "fmt":
			reportUnlessAllowed(pass, m, call.Pos(), "fmt.%s in %s (allocates and may lock stdout)", fn.Name(), where)
		case "os", "syscall":
			// Package-level calls into os/syscall from a pin region are
			// blocking until proven otherwise.
			reportUnlessAllowed(pass, m, call.Pos(), "%s.%s call in %s (potentially blocking syscall)", pkg.Name(), fn.Name(), where)
		case "sync":
			if recvIsSyncLocker(fn) {
				switch fn.Name() {
				case "Lock", "RLock":
					reportUnlessAllowed(pass, m, call.Pos(), "%s.%s() mutex acquisition in %s", recvTypeName(fn), fn.Name(), where)
				case "Wait":
					reportUnlessAllowed(pass, m, call.Pos(), "%s.Wait() in %s (blocks)", recvTypeName(fn), where)
				}
			}
		}
	}
}

// recvIsSyncLocker reports whether fn is a method on a sync type.
func recvIsSyncLocker(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// recvTypeName names fn's receiver type for diagnostics.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "sync"
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return "sync." + n.Obj().Name()
	}
	return "sync"
}
