// grid.go stands in for the engine conformance grid test file: conformance
// checks that workload-defining packages are imported here. It is never
// compiled (testdata is invisible to the go tool); only its import clause
// is parsed.
package grid

import (
	_ "confgood"
)
