// Package confgood defines a workload that IS wired into the grid file and
// the CI -race matrix — the clean case.
package confgood

import "engine"

type W struct{}

func (W) Frontier(emit func(value, priority int64))             {}
func (W) TryExecute(ctx *engine.Ctx, value, priority int64) int { return 0 }
