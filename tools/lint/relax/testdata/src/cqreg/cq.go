package cqreg

type Backend string

const (
	GoodBackend Backend = "good"
	LostBackend Backend = "lost" // want `backend LostBackend \(lost\) is not in the registry`
	//relax:allow conformance: experimental backend, registered behind a build tag elsewhere
	HiddenBackend Backend = "hidden"
)

// DefaultBackend aliases a registered value, so value matching clears it.
const DefaultBackend = GoodBackend

var registry = []struct {
	name  Backend
	build func() int
}{
	{GoodBackend, func() int { return 0 }},
}
