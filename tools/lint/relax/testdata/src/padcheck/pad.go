package padcheck

import "sync/atomic"

// BadTail ends at 72 bytes: the trailing payload spills onto a new line.
type BadTail struct { // want `padded struct BadTail is 72 bytes, not a multiple of 64`
	n atomic.Int64
	_ [56]byte
	m int64
}

// BadPad is the mis-sized-pad case: 24 bytes of payload closed out by a
// pad computed for 16.
type BadPad struct { // want `padded struct BadPad is 80 bytes, not a multiple of 64`
	head [3]int64
	_    [48]byte // want `pad field ends at offset 72, not on a 64-byte boundary \(field starts at 24; use _ \[40\]byte\)`
	tail int64
}

// Good is exactly one line.
type Good struct {
	n atomic.Int64
	_ [56]byte
}

// Unpadded structs are not padcheck's business.
type Unpadded struct {
	a, b, c int64
}

//relax:padded
type MarkedBad struct { // want `padded struct MarkedBad is 8 bytes, not a multiple of 64`
	n int64
}

//relax:padded
type MarkedGood struct {
	n int64
	_ [56]byte
}

//relax:allow padcheck: the tail field intentionally shares the next owner's line
type Allowed struct {
	n    int64
	_    [56]byte
	tail int64
}

//relax:allow padcheck
type NoReason struct { // want `//relax:allow padcheck without a reason`
	n    int64
	_    [56]byte
	tail int64
}
