package pinregion

import (
	"fmt"
	"time"

	"epoch"
)

type node struct{ next *node }

// badPin is the alloc-under-pin case.
func badPin(s *epoch.Slot) *node {
	s.Enter()
	n := &node{} // want `heap allocation \(&composite literal\) in epoch pin region`
	s.Exit()
	return n
}

func badPinMake(s *epoch.Slot) []int {
	s.Enter()
	xs := make([]int, 4) // want `heap allocation \(make\) in epoch pin region`
	s.Exit()
	return xs
}

// goodPin only dereferences shared nodes — exactly what a pin is for.
func goodPin(s *epoch.Slot, n *node) *node {
	s.Enter()
	m := n.next
	s.Exit()
	return m
}

// afterExit allocates only once the pin is released.
func afterExit(s *epoch.Slot) *node {
	s.Enter()
	s.Exit()
	return &node{}
}

//relax:hotpath
func badHot(ch chan int) {
	t := time.Now() // want `time.Now in hotpath function badHot`
	fmt.Println(t)  // want `fmt.Println in hotpath function badHot`
	ch <- 1         // want `channel send in hotpath function badHot`
}

//relax:hotpath
func goodHot(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func allowedPin(s *epoch.Slot) []int {
	s.Enter()
	xs := make([]int, 4) //relax:allow pinregion: buffer is preallocated in the real code; stub keeps the shape
	s.Exit()
	return xs
}
