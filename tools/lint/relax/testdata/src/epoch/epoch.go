// Package epoch is a stub of the real reclamation package: pinregion
// matches Enter/Exit methods of any type declared in a package named epoch.
package epoch

type Slot struct{ pinned bool }

func (s *Slot) Enter() { s.pinned = true }
func (s *Slot) Exit()  { s.pinned = false }
