// Package confbad defines a workload that is wired into neither the grid
// file nor the CI -race matrix.
package confbad

import "engine"

type W struct{} // want `not imported by the conformance grid` `CI -race matrix .* does not cover it`

func (W) Frontier(emit func(value, priority int64))             {}
func (W) TryExecute(ctx *engine.Ctx, value, priority int64) int { return 0 }
