// Package engine is a stub of the real engine: conformance looks for the
// Workload interface of an imported package named engine.
package engine

type Ctx struct{}

type Workload interface {
	Frontier(emit func(value, priority int64))
	TryExecute(ctx *Ctx, value, priority int64) int
}
