package atomiconly

import "sync/atomic"

type counter struct {
	n      atomic.Int64
	legacy int64
	plain  int64
}

// good uses the sanctioned forms: method calls on the typed field,
// address-of for the legacy one.
func good(c *counter) int64 {
	c.n.Add(1)
	return c.n.Load() + atomic.LoadInt64(&c.legacy)
}

func badTyped(c *counter) atomic.Int64 {
	return c.n // want `plain access to atomic-typed field atomiconly.n`
}

func badTypedWrite(c *counter) {
	c.n = atomic.Int64{} // want `plain access to atomic-typed field atomiconly.n`
}

func badLegacy(c *counter) int64 {
	atomic.AddInt64(&c.legacy, 1)
	return c.legacy // want `plain access to atomically-updated field atomiconly.legacy`
}

// untracked fields stay untracked: plain is never touched atomically.
func negative(c *counter) int64 {
	c.plain = 7
	return c.plain
}

//relax:owner
func initCounter(c *counter) {
	c.legacy = 0
	c.n = atomic.Int64{}
}

func allowed(c *counter) int64 {
	return c.legacy //relax:allow atomiconly: single-goroutine teardown read after workers joined
}
