package spinbound

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// badCAS is the unbounded-CAS-loop case.
func badCAS(v *atomic.Int64) {
	for { // want `unbounded spin loop around CompareAndSwap with no backoff/park/bound`
		cur := v.Load()
		if v.CompareAndSwap(cur, cur+1) {
			return
		}
	}
}

func badTry(mu *sync.Mutex) {
	for { // want `unbounded spin loop around TryLock with no backoff/park/bound`
		if mu.TryLock() {
			return
		}
	}
}

// goodBounded carries its bound in the loop condition.
func goodBounded(v *atomic.Int64) bool {
	for i := 0; i < 8; i++ {
		cur := v.Load()
		if v.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
	return false
}

// goodYield backs off through the scheduler on every miss.
func goodYield(v *atomic.Int64) {
	for {
		cur := v.Load()
		if v.CompareAndSwap(cur, cur+1) {
			return
		}
		runtime.Gosched()
	}
}

// goodFallback eventually blocks on the lock instead of spinning.
func goodFallback(mu *sync.Mutex) {
	for {
		if mu.TryLock() {
			return
		}
		mu.Lock()
		return
	}
}

func allowed(v *atomic.Int64) {
	//relax:allow spinbound: monotone counter demo — each failed CAS certifies another increment committed
	for {
		cur := v.Load()
		if v.CompareAndSwap(cur, cur+1) {
			return
		}
	}
}
