package relax

import (
	"go/ast"
	"go/token"
	"go/types"

	"relaxsched/tools/lint/analysis"
)

// AtomiconlyAnalyzer forbids plain (non-atomic) access to fields that are
// elsewhere accessed atomically.
var AtomiconlyAnalyzer = &analysis.Analyzer{
	Name: "atomiconly",
	Doc: `check that atomically-accessed fields are never touched with plain loads/stores

Two classes of field are tracked:

  1. fields declared with a sync/atomic type (atomic.Int64, atomic.Uint64,
     atomic.Bool, atomic.Pointer[T], ...): the only legal uses are method
     calls on the field (f.x.Load()) and taking its address; a plain copy
     or assignment of the value is a data race waiting for a reorder.
  2. legacy fields passed by address to sync/atomic functions
     (atomic.AddInt64(&f.x, 1)): every other access to the same field in
     the package must also go through sync/atomic (or be an address-of).

Functions marked //relax:owner are exempt: they declare single-owner
regions (pre-publication construction, owner-exclusive teardown) where
plain access is intentional. Everything else needs an explicit
//relax:allow atomiconly: <reason>.`,
	Run: runAtomiconly,
}

func runAtomiconly(pass *analysis.Pass) (interface{}, error) {
	m := collectMarkers(pass)

	// Pass 1: find every field passed by address to a sync/atomic function
	// ("legacy" atomics over plain integer fields).
	legacy := make(map[types.Object]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isAtomicFuncCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if fv := selectedField(pass, un.X); fv != nil {
					legacy[fv] = true
				}
			}
			return true
		})
	}

	// Pass 2: inside every non-owner function body, flag plain accesses to
	// atomic.*-typed fields and to legacy fields.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if m.nodeMarked(markerOwner, fd.Doc, fd) {
				continue
			}
			checkAtomicUses(pass, m, fd.Body, legacy)
		}
	}
	return nil, nil
}

// checkAtomicUses walks one function body with an explicit parent stack and
// reports field selections whose immediate context is a plain load or store.
func checkAtomicUses(pass *analysis.Pass, m *markers, body *ast.BlockStmt, legacy map[types.Object]bool) {
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fv := selectedField(pass, sel)
		if fv == nil {
			return true
		}
		isAtomicTyped := isAtomicType(fv.Type())
		if !isAtomicTyped && !legacy[fv] {
			return true
		}
		if plainAccessContext(pass, stack, sel, isAtomicTyped) {
			kind := "atomically-updated"
			if isAtomicTyped {
				kind = "atomic-typed"
			}
			reportUnlessAllowed(pass, m, sel.Sel.Pos(),
				"plain access to %s field %s.%s (use sync/atomic, or mark the function //relax:owner)",
				kind, fieldOwnerName(fv), fv.Name())
		}
		return true
	})
}

// plainAccessContext inspects the parent chain of a tracked field selection
// and reports whether the use is a plain load/store (true) as opposed to an
// allowed context: address-of, or — for atomic.* typed fields — a method
// call hanging off the field.
func plainAccessContext(pass *analysis.Pass, stack []ast.Node, sel *ast.SelectorExpr, atomicTyped bool) bool {
	// stack[len-1] == sel; the parent is at len-2.
	if len(stack) < 2 {
		return true
	}
	parent := stack[len(stack)-2]
	switch p := parent.(type) {
	case *ast.UnaryExpr:
		if p.Op == token.AND && p.X == sel {
			return false // &f.x — handing the field to an atomic helper
		}
	case *ast.SelectorExpr:
		// f.x.Load(): our selection is the X of a further selection. For an
		// atomic.* typed field any further selection is a method (the types
		// export no fields), which is exactly the sanctioned use.
		if atomicTyped && p.X == sel {
			return false
		}
	case *ast.StarExpr:
		// *(&f.x) style indirection is still a plain access; fall through.
	}
	return true
}

// isAtomicFuncCall reports whether call invokes a function from sync/atomic
// (atomic.AddInt64, atomic.CompareAndSwapUint64, ...).
func isAtomicFuncCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "sync/atomic"
}

// selectedField resolves expr to a struct field object, or nil.
func selectedField(pass *analysis.Pass, expr ast.Expr) *types.Var {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s := pass.TypesInfo.Selections[sel]; s != nil && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	return nil
}

// isAtomicType reports whether t (or the pointee/element it names) is a
// type declared in sync/atomic.
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// fieldOwnerName names the struct a field belongs to, best-effort, for
// diagnostics.
func fieldOwnerName(fv *types.Var) string {
	if fv.Pkg() != nil {
		return fv.Pkg().Name()
	}
	return "?"
}
