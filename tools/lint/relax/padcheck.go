package relax

import (
	"go/ast"
	"go/types"

	"relaxsched/tools/lint/analysis"
)

// cacheLine is the padding granule every padded struct must respect. The
// repo targets 64-byte lines throughout (Intel/AMD and most arm64 server
// parts); if that ever becomes configurable it should flow from one place —
// here.
const cacheLine = 64

// PadcheckAnalyzer verifies cache-line padding arithmetic with types.Sizes
// instead of comment arithmetic.
var PadcheckAnalyzer = &analysis.Analyzer{
	Name: "padcheck",
	Doc: `check that cache-line-padded structs actually pad to cache lines

A struct is "padded" if it contains a blank pad field (_ [N]byte) or carries
a //relax:padded marker. For every padded struct, padcheck computes the real
layout with types.Sizes and enforces:

  1. the struct's total size is a multiple of 64 bytes, and
  2. every blank pad field ends exactly on a 64-byte boundary, so the
     payload before it owns its cache line(s) and the field after it starts
     a fresh line.

Diagnostics include the correct pad length so fixes are mechanical.`,
	Run: runPadcheck,
}

func runPadcheck(pass *analysis.Pass) (interface{}, error) {
	m := collectMarkers(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil && len(gd.Specs) == 1 {
					doc = gd.Doc
				}
				checkStruct(pass, m, ts, st, m.nodeMarked(markerPadded, doc, ts))
			}
		}
	}
	return nil, nil
}

// checkStruct applies the two pad rules to one struct declaration.
func checkStruct(pass *analysis.Pass, m *markers, ts *ast.TypeSpec, st *ast.StructType, marked bool) {
	obj := pass.TypesInfo.Defs[ts.Name]
	if obj == nil {
		return
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return
	}
	// For generic structs, check the declared (uninstantiated) form; sizes
	// of type-parameter-dependent layouts are not computable, so guard the
	// Sizes calls with recover below.
	under, ok := named.Underlying().(*types.Struct)
	if !ok || under.NumFields() == 0 {
		return
	}

	// Index the blank pad fields ("_ [N]byte") by field number.
	padIdx := make(map[int]bool)
	fieldNo := 0
	for _, fld := range st.Fields.List {
		n := len(fld.Names)
		if n == 0 {
			n = 1 // embedded field
		}
		for i := 0; i < n; i++ {
			if len(fld.Names) > 0 && fld.Names[i].Name == "_" && isByteArray(pass, fld.Type) {
				padIdx[fieldNo] = true
			}
			fieldNo++
		}
	}
	if len(padIdx) == 0 && !marked {
		return
	}

	size, offsets, ok := structLayout(pass.TypesSizes, under)
	if !ok {
		// Type-parameter-dependent layout: nothing checkable at the generic
		// declaration. Instantiations in non-generic contexts are covered by
		// the concrete structs that embed them.
		return
	}

	// Rule 1: whole struct ends on a line boundary.
	if size%cacheLine != 0 {
		deficit := cacheLine - size%cacheLine
		reportUnlessAllowed(pass, m, ts.Name.Pos(),
			"padded struct %s is %d bytes, not a multiple of %d (add %d bytes of pad, e.g. grow the final pad by %d)",
			ts.Name.Name, size, cacheLine, deficit, deficit)
	}

	// Rule 2: each pad field must end on a line boundary, so the payload it
	// closes owns its cache line(s).
	fieldNo = 0
	for _, fld := range st.Fields.List {
		n := len(fld.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			if padIdx[fieldNo] {
				fv := under.Field(fieldNo)
				end := offsets[fieldNo] + sizeOf(pass.TypesSizes, fv.Type())
				if end%cacheLine != 0 {
					want := padLenFor(offsets[fieldNo])
					pos := fld.Names[i].Pos()
					reportUnlessAllowed(pass, m, pos,
						"pad field ends at offset %d, not on a %d-byte boundary (field starts at %d; use _ [%d]byte)",
						end, cacheLine, offsets[fieldNo], want)
				}
			}
			fieldNo++
		}
	}
}

// structLayout returns (size, offsets, ok); ok is false when the layout is
// not computable (type-parameter-dependent fields).
func structLayout(sizes types.Sizes, st *types.Struct) (size int64, offsets []int64, ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	fields := make([]*types.Var, st.NumFields())
	for i := range fields {
		fields[i] = st.Field(i)
	}
	return sizes.Sizeof(st), sizes.Offsetsof(fields), true
}

func sizeOf(sizes types.Sizes, t types.Type) (n int64) {
	defer func() {
		if recover() != nil {
			n = 0
		}
	}()
	return sizes.Sizeof(t)
}

// padLenFor computes the byte-array length that makes a pad starting at
// offset end exactly on the next line boundary. A pad that already starts
// on a boundary is isolating the next field, so a full line is the
// idiomatic suggestion.
func padLenFor(offset int64) int64 {
	return cacheLine - offset%cacheLine
}

// isByteArray reports whether expr denotes an [N]byte array type.
func isByteArray(pass *analysis.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok {
		return false
	}
	arr, ok := tv.Type.Underlying().(*types.Array)
	if !ok {
		return false
	}
	basic, ok := arr.Elem().Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Uint8
}
