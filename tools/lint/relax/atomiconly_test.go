package relax_test

import (
	"testing"

	"relaxsched/tools/lint/analysistest"
	"relaxsched/tools/lint/relax"
)

func TestAtomiconly(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), relax.AtomiconlyAnalyzer, "atomiconly")
}
