// Package relax is the relaxlint analyzer suite: machine-checked versions
// of the concurrency invariants this repository used to keep in comments.
//
// Five analyzers ship (see their Doc strings and the module's doc.go):
//
//   - padcheck    — cache-line padding arithmetic, from types.Sizes
//   - atomiconly  — atomic fields are never accessed non-atomically
//   - pinregion   — no blocking/allocating ops under an epoch pin or in a
//     //relax:hotpath function
//   - spinbound   — CAS/TryLock retry loops carry a bound or a backoff
//   - conformance — registered backends and engine workloads appear in the
//     conformance grids and the CI -race matrix
//
// # Markers
//
// The analyzers read four //relax: comment markers (no space after //, like
// //go: directives):
//
//	//relax:padded            mark a struct as cache-line padded even
//	                          without a `_ [N]byte` field (padcheck then
//	                          enforces its size)
//	//relax:hotpath           mark a function as allocation- and
//	                          blocking-free (pinregion enforces the body)
//	//relax:owner             mark a function as a single-owner region:
//	                          atomiconly permits plain access to atomic
//	                          fields inside it (pre-publication init,
//	                          owner-exclusive teardown)
//	//relax:allow <analyzer>: <reason>
//	                          suppress one analyzer's findings at this
//	                          line (or this declaration). The reason is
//	                          mandatory — suppressions are audit records.
package relax

import (
	"go/ast"
	"go/token"
	"strings"

	"relaxsched/tools/lint/analysis"
)

// Marker names.
const (
	markerPadded  = "padded"
	markerHotpath = "hotpath"
	markerOwner   = "owner"
	markerAllow   = "allow"
)

// allowance is one parsed //relax:allow comment.
type allowance struct {
	analyzer string
	reason   string
	line     int // line the comment is on
	file     *token.File
}

// markers indexes every //relax: comment of one package.
type markers struct {
	fset *token.FileSet
	// allows maps "filename:line" of both the comment's own line and the
	// line above it (a marker on its own line covers the next line).
	allows map[string]allowance
	// marked maps comment-bearing lines to the set of bare markers
	// (padded/hotpath/owner) present there.
	marked map[string]map[string]bool
}

// collectMarkers scans every comment in the pass for //relax: directives.
func collectMarkers(pass *analysis.Pass) *markers {
	m := &markers{
		fset:   pass.Fset,
		allows: make(map[string]allowance),
		marked: make(map[string]map[string]bool),
	}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//relax:")
				if !ok {
					// Also accept the marker at the tail of a wider comment
					// ("// ... //relax:allow spinbound: reason").
					if i := strings.Index(c.Text, "//relax:"); i >= 0 {
						text = c.Text[i+len("//relax:"):]
					} else {
						continue
					}
				}
				pos := pass.Fset.Position(c.Pos())
				key := posKey(pos.Filename, pos.Line)
				name, rest, _ := strings.Cut(text, " ")
				name = strings.TrimSpace(name)
				switch name {
				case markerAllow:
					an, reason, _ := strings.Cut(rest, ":")
					m.allows[key] = allowance{
						analyzer: strings.TrimSpace(an),
						reason:   strings.TrimSpace(reason),
						line:     pos.Line,
					}
				case markerPadded, markerHotpath, markerOwner:
					if m.marked[key] == nil {
						m.marked[key] = make(map[string]bool)
					}
					m.marked[key][name] = true
				}
			}
		}
	}
	return m
}

func posKey(file string, line int) string {
	// file:line as a map key; line numbers fit well under 7 digits.
	var b strings.Builder
	b.WriteString(file)
	b.WriteByte(':')
	for _, d := range itoa(line) {
		b.WriteByte(d)
	}
	return b.String()
}

func itoa(n int) []byte {
	if n == 0 {
		return []byte{'0'}
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return buf[i:]
}

// allowedAt reports whether an //relax:allow for the analyzer covers the
// given position: on the same line, or on a line of its own directly above.
// An allow with an empty reason does not suppress — the missing audit trail
// is itself reported by the caller via reportUnlessAllowed.
func (m *markers) allowedAt(analyzer string, pos token.Pos) (allowance, bool) {
	p := m.fset.Position(pos)
	for _, line := range [...]int{p.Line, p.Line - 1} {
		if a, ok := m.allows[posKey(p.Filename, line)]; ok && a.analyzer == analyzer {
			return a, true
		}
	}
	return allowance{}, false
}

// reportUnlessAllowed emits the diagnostic unless a well-formed
// //relax:allow covers pos; a reason-less allow is converted into its own
// diagnostic so suppressions can never silently rot.
func reportUnlessAllowed(pass *analysis.Pass, m *markers, pos token.Pos, format string, args ...interface{}) {
	if a, ok := m.allowedAt(pass.Analyzer.Name, pos); ok {
		if a.reason == "" {
			pass.Reportf(pos, "//relax:allow %s without a reason (suppressions must carry an audit reason: `//relax:allow %s: <why>`)",
				pass.Analyzer.Name, pass.Analyzer.Name)
		}
		return
	}
	pass.Reportf(pos, format, args...)
}

// nodeMarked reports whether node (or its doc comment) carries the given
// bare marker: the marker may sit on the node's first line, the line above
// it, or any line of the doc comment group.
func (m *markers) nodeMarked(marker string, doc *ast.CommentGroup, node ast.Node) bool {
	p := m.fset.Position(node.Pos())
	if m.marked[posKey(p.Filename, p.Line)][marker] || m.marked[posKey(p.Filename, p.Line-1)][marker] {
		return true
	}
	if doc != nil {
		start := m.fset.Position(doc.Pos()).Line
		end := m.fset.Position(doc.End()).Line
		for line := start; line <= end; line++ {
			if m.marked[posKey(p.Filename, line)][marker] {
				return true
			}
		}
	}
	return false
}

// Analyzers returns the full relaxlint suite, in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		PadcheckAnalyzer,
		AtomiconlyAnalyzer,
		PinregionAnalyzer,
		SpinboundAnalyzer,
		ConformanceAnalyzer,
	}
}
