package relax_test

import (
	"testing"

	"relaxsched/tools/lint/analysistest"
	"relaxsched/tools/lint/relax"
)

func TestPinregion(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), relax.PinregionAnalyzer, "pinregion")
}
