// Package analysis is a minimal, dependency-free mirror of the
// golang.org/x/tools/go/analysis framework: an Analyzer bundles a named
// check, a Pass hands it one type-checked package, and Report emits
// position-anchored diagnostics.
//
// Only the subset the relaxlint suite needs is implemented — single-pass
// analyzers over syntax plus go/types information, no Facts, no
// SuggestedFixes — but the field and method names match x/tools exactly, so
// swapping this package for the real one is an import rewrite, not a port.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one analysis function: its name, documentation, and
// entry point.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //relax:allow
	// suppressions. It must be a valid identifier.
	Name string
	// Doc is the analyzer's documentation: first sentence summary, then
	// details.
	Doc string
	// Run applies the analyzer to one package. It may report diagnostics
	// through pass.Report and may return a result for the driver (unused by
	// relaxlint's analyzers, kept for API compatibility).
	Run func(*Pass) (interface{}, error)
}

func (a *Analyzer) String() string { return a.Name }

// Pass provides one analyzer run with the syntax trees, type information
// and reporting sink for a single package.
type Pass struct {
	// Analyzer is the analyzer being run.
	Analyzer *Analyzer
	// Fset maps token positions to file locations for every file in Files.
	Fset *token.FileSet
	// Files are the package's parsed syntax trees, with comments.
	Files []*ast.File
	// Pkg is the package's type information.
	Pkg *types.Package
	// TypesInfo holds the type-checker's results for Files.
	TypesInfo *types.Info
	// TypesSizes describes the target architecture's memory layout —
	// padcheck's source of truth for struct offsets and sizes.
	TypesSizes types.Sizes
	// Report emits one diagnostic. The driver owns collection and exit
	// status.
	Report func(Diagnostic)
}

// Reportf emits a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position and a message. Category is the
// reporting analyzer's name (filled by the driver when empty).
type Diagnostic struct {
	Pos      token.Pos
	Category string
	Message  string
}
