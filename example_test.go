package relaxsched_test

import (
	"fmt"

	"relaxsched"
)

// ExampleBSTSort demonstrates the incremental comparison-sorting
// algorithm.
func ExampleBSTSort() {
	fmt.Println(relaxsched.BSTSort([]int64{5, 1, 4, 2, 3}))
	// Output: [1 2 3 4 5]
}

// ExampleRunIncremental executes a dependency chain through a relaxed
// scheduler and reports the wasted work.
func ExampleRunIncremental() {
	dag := relaxsched.NewDAG(4)
	dag.AddDep(0, 1)
	dag.AddDep(1, 2)
	dag.AddDep(2, 3)
	// An exact scheduler never wastes steps, even on a chain.
	res, err := relaxsched.RunIncremental(dag, relaxsched.NewExactScheduler(4),
		relaxsched.RunOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("steps=%d extra=%d\n", res.Steps, res.ExtraSteps)
	// Output: steps=4 extra=0
}

// ExampleDijkstra computes shortest paths on a tiny weighted graph.
func ExampleDijkstra() {
	b := relaxsched.NewGraphBuilder(3)
	b.AddArc(0, 1, 2)
	b.AddArc(1, 2, 2)
	b.AddArc(0, 2, 10)
	g := b.Build()
	res := relaxsched.Dijkstra(g, 0)
	fmt.Println(res.Dist)
	// Output: [0 2 4]
}

// ExampleTriangulate computes the Delaunay triangulation of a square.
func ExampleTriangulate() {
	square := []relaxsched.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 0, Y: 1}}
	tris, err := relaxsched.Triangulate(square, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(tris), "triangles")
	// Output: 2 triangles
}

// ExampleNewAuditor measures the relaxation a MultiQueue actually
// exhibits.
func ExampleNewAuditor() {
	aud := relaxsched.NewAuditor(relaxsched.NewExactScheduler(3), 8)
	for i := 0; i < 3; i++ {
		aud.Insert(i, int64(i))
	}
	for {
		task, _, ok := aud.ApproxGetMin()
		if !ok {
			break
		}
		aud.DeleteTask(task)
	}
	rep := aud.Report()
	fmt.Printf("max rank %d, max inversions %d\n", rep.MaxRank, rep.MaxInv)
	// Output: max rank 1, max inversions 0
}
