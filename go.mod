module relaxsched

go 1.24
