// Benchmarks, one per table and figure of the paper (see DESIGN.md's
// per-experiment index). Each benchmark runs the same experiment driver as
// cmd/relaxbench at a reduced scale and reports the headline metric of the
// corresponding plot via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates every row family the paper reports. For full-scale numbers
// use: go run ./cmd/relaxbench -scale 1 all (recorded in EXPERIMENTS.md).
package relaxsched_test

import (
	"fmt"
	"testing"

	"relaxsched"
	"relaxsched/internal/experiments"
)

// benchConfig is sized so a single iteration takes well under a second.
func benchConfig() experiments.Config {
	return experiments.Config{Seed: 42, Trials: 1, GraphScale: 32, MaxThreads: 8}
}

// BenchmarkGraphGen regenerates the input-statistics table (Section 7's
// sample-graph list).
func BenchmarkGraphGen(b *testing.B) {
	c := benchConfig()
	var road experiments.GraphRow
	for i := 0; i < b.N; i++ {
		res := experiments.Graphs(c)
		road = res.Rows[1]
	}
	b.ReportMetric(float64(road.HopDiameter), "road-hop-diam")
	b.ReportMetric(road.DmaxOverWmin, "road-dmax/wmin")
}

// BenchmarkFig1Overhead regenerates Figure 1 (left): SSSP relaxation
// overhead vs. threads. The reported metrics are the overheads at the
// highest thread count.
func BenchmarkFig1Overhead(b *testing.B) {
	c := benchConfig()
	var last experiments.Fig1Result
	for i := 0; i < b.N; i++ {
		last = experiments.Fig1(c)
	}
	for _, row := range last.Rows {
		if row.Threads == c.MaxThreads {
			b.ReportMetric(row.Overhead, row.Graph+"-overhead")
		}
	}
}

// BenchmarkFig1Speedup regenerates Figure 1 (right): SSSP speedup vs.
// threads.
func BenchmarkFig1Speedup(b *testing.B) {
	c := benchConfig()
	var last experiments.Fig1Result
	for i := 0; i < b.N; i++ {
		last = experiments.Fig1(c)
	}
	for _, row := range last.Rows {
		if row.Threads == c.MaxThreads {
			b.ReportMetric(row.Speedup, row.Graph+"-speedup")
		}
	}
}

// BenchmarkFig2 regenerates Figure 2: overhead vs. queue multiplier at a
// fixed thread count; the reported metric is the road overhead at the
// largest multiplier (the paper's most relaxation-sensitive point).
func BenchmarkFig2(b *testing.B) {
	c := benchConfig()
	var last experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		last = experiments.Fig2(c, []int{4})
	}
	for _, row := range last.Rows {
		if row.Graph == "road" && row.Multiplier == 8 {
			b.ReportMetric(row.Overhead, "road-mult8-overhead")
		}
	}
}

// BenchmarkThm33 regenerates the Theorem 3.3 table: extra steps under the
// adversarial k-relaxed scheduler; reports the log-fit quality of the
// n-sweep (1.0 = perfectly logarithmic growth).
func BenchmarkThm33(b *testing.B) {
	c := benchConfig()
	var last experiments.Thm33Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Thm33(c)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.LogFitR2[experiments.AlgoSort], "sort-logfit-r2")
	b.ReportMetric(last.LogFitR2[experiments.AlgoDelaunay], "delaunay-logfit-r2")
}

// BenchmarkThm51 regenerates the Theorem 5.1 / Claim 1 lower-bound table;
// reports the measured adjacent-inversion rate (Claim 1 floor: 0.125).
func BenchmarkThm51(b *testing.B) {
	c := benchConfig()
	var last experiments.Thm51Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Thm51(c)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	row := last.Rows[len(last.Rows)-1]
	b.ReportMetric(row.InvRate, "inv-rate")
	b.ReportMetric(row.ExtraSteps/row.LowerBound, "extra/floor")
}

// BenchmarkThm61 regenerates the Theorem 6.1 table: relaxed SSSP pop
// counts; reports extra pops per unit of k^2*dmax/wmin for the road family
// at the largest k (the theorem's leading term).
func BenchmarkThm61(b *testing.B) {
	c := benchConfig()
	var last experiments.Thm61Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Thm61(c)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, row := range last.Rows {
		if row.Graph == "road" && row.Scheduler == "k-relaxed" && row.K == 64 {
			b.ReportMetric(row.ExtraPops, "road-k64-extra-pops")
		}
	}
}

// BenchmarkThm43 regenerates the Theorem 4.3 transactional-abort table;
// reports the log-fit quality of the abort growth.
func BenchmarkThm43(b *testing.B) {
	c := benchConfig()
	var last experiments.Thm43Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Thm43(c)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.LogFitR2, "aborts-logfit-r2")
}

// BenchmarkParInc runs the parallel incremental execution extension;
// reports the wasted-pop rate of the Delaunay DAG at the highest thread
// count.
func BenchmarkParInc(b *testing.B) {
	c := benchConfig()
	var last experiments.ParIncResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.ParInc(c)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, row := range last.Rows {
		if row.Algo == experiments.AlgoDelaunay && row.Threads == c.MaxThreads {
			b.ReportMetric(row.ExtraRate, "delaunay-extra/n")
		}
	}
}

// BenchmarkIterative runs the greedy MIS / coloring extension (the
// future-work generalization named in the paper's conclusion); reports
// MIS extra steps per ln n at the largest n.
func BenchmarkIterative(b *testing.B) {
	c := benchConfig()
	var last experiments.IterativeResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.Iterative(c)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, row := range last.Rows {
		if row.Algo == "greedy-mis" && row.Scheduler == "k-relaxed" {
			b.ReportMetric(row.PerLogN, "mis-extra/ln(n)")
		}
	}
}

// BenchmarkBnB runs the Karp-Zhang branch-and-bound extension; reports
// the work overhead of the k=64 adversarial scheduler over exact
// best-first search.
func BenchmarkBnB(b *testing.B) {
	c := benchConfig()
	var last experiments.BnBResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.BnB(c)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, row := range last.Rows {
		if row.Scheduler == "k-relaxed" && row.K == 64 {
			b.ReportMetric(row.Overhead, "k64-work-overhead")
		}
	}
}

// BenchmarkAblation runs the scheduler-family comparison (the extension
// table in DESIGN.md); reports the MultiQueue mean rank at 2 choices.
func BenchmarkAblation(b *testing.B) {
	c := benchConfig()
	var last experiments.AblationResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.Ablation(c)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, row := range last.Rows {
		if row.Scheduler == "mq8-c2" {
			b.ReportMetric(row.MeanRank, "mq8-c2-mean-rank")
		}
	}
}

// BenchmarkParallelSSSP sweeps the parallel engine's two hot-path axes —
// queue backend and worker batch size — on one road-like graph, so
// `go test -bench=ParallelSSSP` shows the batch amortization before/after
// locally. Batch 1 is the per-element PR-1 protocol; larger batches
// amortize one lock acquisition or CAS per batch. The reported metric is
// pops per second of wall time (the same ops/sec the batchsweep experiment
// records in BENCH_PR2.json).
func BenchmarkParallelSSSP(b *testing.B) {
	g := relaxsched.RoadGraph(120, 120, 1000, 100, 7)
	for _, backend := range relaxsched.QueueBackends() {
		for _, batch := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("%s/batch%d", backend, batch), func(b *testing.B) {
				var popped int64
				for i := 0; i < b.N; i++ {
					res := relaxsched.ParallelSSSPWith(g, 0, relaxsched.ParallelSSSPOptions{ExecOptions: relaxsched.ExecOptions{Threads: 4, QueueMultiplier: 2, Backend: backend, BatchSize: batch, Seed: uint64(i)}})
					popped += res.Popped
				}
				b.ReportMetric(float64(popped)/b.Elapsed().Seconds(), "pops/sec")
			})
		}
	}
}

// BenchmarkBatchSweep regenerates the batchsweep experiment (the
// BENCH_PR2.json trajectory) at benchmark scale; the reported metrics are
// the road-graph ops/sec of the default backend unbatched vs. at the
// largest batch, i.e. the headline amortization win.
func BenchmarkBatchSweep(b *testing.B) {
	c := benchConfig()
	var last experiments.BatchSweepResult
	for i := 0; i < b.N; i++ {
		last = experiments.BatchSweep(c)
	}
	maxBatch := experiments.BatchSweepSizes[len(experiments.BatchSweepSizes)-1]
	for _, row := range last.Rows {
		if row.Threads == c.MaxThreads && row.Graph == "road" && row.Backend == "multiqueue" {
			switch row.Batch {
			case 1:
				b.ReportMetric(row.OpsPerSec, "unbatched-ops/sec")
			case maxBatch:
				b.ReportMetric(row.OpsPerSec, fmt.Sprintf("batch%d-ops/sec", maxBatch))
			}
		}
	}
}

// BenchmarkBackends compares the concurrent queue backends head-to-head on
// parallel SSSP (the cq design axis); the reported metrics are each
// backend's road-graph overhead and ops/sec at the highest thread count.
func BenchmarkBackends(b *testing.B) {
	c := benchConfig()
	var last experiments.BackendsResult
	for i := 0; i < b.N; i++ {
		last = experiments.Backends(c)
	}
	for _, row := range last.Rows {
		if row.Threads == c.MaxThreads && row.Graph == "road" {
			b.ReportMetric(row.Overhead, row.Backend+"-overhead")
			b.ReportMetric(row.OpsPerSec, row.Backend+"-ops/sec")
		}
	}
}
