// Package relaxsched is a library for executing incremental algorithms
// through relaxed priority schedulers, reproducing "Efficiency Guarantees
// for Parallel Incremental Algorithms under Relaxed Schedulers" (Alistarh,
// Koval, Nadiradze; SPAA 2019).
//
// # Overview
//
// Many classic algorithms — Dijkstra's single-source shortest paths,
// Delaunay mesh triangulation, sorting by BST insertion — are incremental:
// a sequence of small tasks updates shared state, in a priority order.
// Exact concurrent priority queues serialize on their head, so scalable
// schedulers relax the order: a k-relaxed scheduler returns one of the k
// highest-priority tasks (RankBound) and never starves the top task for
// more than k-1 steps (Fairness). This library provides:
//
//   - the relaxed scheduler model and several implementations: an exact
//     heap-backed scheduler, an adversarial k-relaxed scheduler, a uniform
//     top-k scheduler, a deterministic k-LSM-style batch scheduler, the
//     MultiQueue, and a SprayList;
//   - a pluggable concurrent relaxed-queue layer (internal/cq) with three
//     backends — the lock-per-queue MultiQueue with 2-choice pops, a lazy
//     lock-based skip list with spray-height pops, and a lock-free
//     MultiQueue of mutable pairing-heap shards (a pop privatizes a whole
//     shard by swapping its root to nil, harvests minima in place, and
//     republishes the remainder; detached nodes are retired through
//     epoch-based reclamation, internal/epoch, and reused from per-worker
//     free lists so steady-state operation allocates nothing) — selectable
//     on every parallel path via a QueueBackend, plus a batch layer
//     (PushBatch/PopBatch) that amortizes one lock acquisition or CAS over
//     a whole batch of pairs, a handle layer (Handle/HandleQueue) through
//     which workers pin per-worker state — on the lock-free backend a
//     handle carries an epoch slot and a home shard, giving shard-affine
//     placement with two-choice stealing (ablated against uniform
//     placement by the affinity experiment) — and a shared conformance,
//     allocation and race-stress suite (cqtest) that any future backend
//     must pass through the singleton, batch and handle paths;
//   - a generic parallel relaxed-execution engine (internal/engine) that
//     every concurrent path is a thin workload over: the engine owns the
//     worker loops (singleton and batch-amortized), the Ctx.Spawn task
//     production protocol and the in-flight termination counters
//     (internal/inflight), while a workload only implements Frontier and
//     TryExecute. The layer stack is workloads -> engine -> cq backends:
//     static-DAG execution (RunIncrementalParallel), parallel SSSP
//     (ParallelSSSPWith), best-first branch-and-bound with an atomic
//     incumbent (ParallelBranchAndBound, the Karp-Zhang dynamic-spawning
//     workload), greedy MIS/coloring over a random permutation
//     (ParallelGreedyMIS, ParallelGreedyColoring) and parallel Delaunay
//     triangulation (ParallelTriangulate) all ride the same loop, with its
//     own conformance suite (enginetest) run against every backend.
//     Delaunay is the first workload with *on-line dependency discovery*:
//     instead of a pre-built or seeded DAG, an insertion finds its
//     conflicts during execution — it claims its Bowyer-Watson cavity
//     through per-triangle atomic claim states and reports Blocked when a
//     racing insertion owns part of it, while destroyed triangles carry
//     redirects so later insertions re-locate by the Guibas-Knuth history
//     walk; the mesh is verified equal to the sequential Triangulate
//     output (MeshesEqual). Since PR 5 the engine is also an *open system*:
//     external Producer handles (engine.Start + NewProducer) stream
//     prioritized tasks into the queue from outside the worker pool while
//     workers drain, with termination redefined as "all producers closed
//     and in-flight quiescent" (the producer tallies join internal/
//     inflight's provably safe double scan);
//   - a streaming top-k job scheduler on top of the external producers
//     (NewTopKStream for a caller-driven stream with JobProducer handles,
//     StreamTopK for the self-driving benchmark): producer goroutines emit
//     prioritized jobs at a configurable arrival rate, workers execute in
//     relaxed priority order, every job is verified to execute exactly
//     once, and the result reports the rank error of the executed order
//     against the true priority order;
//   - fault-tolerant execution as an engine contract (since PR 7):
//     cancellation and deadlines drain gracefully to a partial result
//     marked Interrupted (anytime branch-and-bound incumbents, anytime
//     SSSP upper bounds, at-most-once streaming drain), a panicking task
//     is quarantined into Result.Failures instead of crashing or wedging
//     the run, a retry cap quarantines livelocked Blocked tasks, and a
//     stall watchdog snapshots per-worker state when global progress
//     stops; internal/fault is the seeded chaos injector behind the
//     enginetest.ChaosConformance suite and the chaos experiment;
//   - a rank/fairness Auditor measuring the relaxation any scheduler
//     actually achieves;
//   - the generic relaxed execution framework for incremental algorithms
//     with dependency DAGs and extra-step (wasted work) accounting;
//   - two randomized incremental algorithms with dependency extraction:
//     comparison sorting by BST insertion, and 2D Delaunay triangulation
//     (Bowyer-Watson with a conflict graph and exact predicates);
//   - SSSP four ways: Dijkstra, Delta-stepping, relaxed sequential-model
//     Dijkstra (the paper's Algorithm 3), and a parallel goroutine
//     implementation over any concurrent queue backend, with optional
//     batch-amortized workers (per-worker buffers flushed batch-at-a-time)
//     and contention-free termination detection (cache-padded per-worker
//     in-flight counters, internal/inflight);
//   - a transactional-model simulator (aborts under optimistic concurrent
//     execution, Section 4 of the paper) and, since PR 10, a real OCC
//     transactional engine workload (ParallelTransactions): a sharded
//     versioned KV store hammered by Zipf-skewed transactions, one
//     optimistic attempt per TryExecute with the engine re-insert as the
//     retry loop, a contention detector that promotes hot records to
//     Doppel-style split/phased handling (per-worker commutative deltas
//     reconciled at phase fences), and post-run serializability
//     certification by replaying the commit log in ticket order — the
//     same TxnWorkloadSpec drives the sequential Section 4 model as the
//     conformance oracle (SimulateTransactionSpec);
//   - graph generators (uniform random, road-like grid, social-like
//     preferential attachment) and a DIMACS ".gr" parser.
//
// # Quick start
//
//	g := relaxsched.RandomGraph(100000, 500000, 100, 1)
//	res := relaxsched.ParallelSSSP(g, 0, 8, 2, 42)
//	fmt.Printf("overhead %.3f\n", res.Overhead())
//
// To run the same computation over a different concurrent queue design,
// with workers moving 32 pairs per queue operation — the engine plumbing
// lives in the shared ExecOptions struct every parallel options type
// embeds:
//
//	res = relaxsched.ParallelSSSPWith(g, 0, relaxsched.ParallelSSSPOptions{
//		ExecOptions: relaxsched.ExecOptions{
//			Threads: 8, QueueMultiplier: 2,
//			Backend: relaxsched.BackendLockFree, BatchSize: 32, Seed: 42,
//		},
//	})
//
// See examples/ for runnable programs and cmd/relaxbench for the
// experiment harness that regenerates every table and figure of the paper
// and records per-PR benchmark trajectories (BENCH_*.json; see the README
// section "Recording benchmark trajectories"; `relaxbench compare OLD NEW`
// diffs two of them). To add a parallel workload, implement engine.Workload
// and call engine.Run — see the README section "Adding a parallel
// workload".
package relaxsched
