// Command relaxbench regenerates every table and figure of "Efficiency
// Guarantees for Parallel Incremental Algorithms under Relaxed Schedulers"
// (SPAA 2019) from this repository's implementations.
//
// Usage:
//
//	relaxbench [flags] <experiment> [<experiment>...]
//
// Experiments:
//
//	graphs        input-family statistics (Section 7 sample graphs)
//	fig1          Figure 1: SSSP overhead and speedup vs. thread count
//	fig1-overhead Figure 1 left only
//	fig1-speedup  Figure 1 right only
//	fig2          Figure 2: overhead vs. queue multiplier
//	backends      concurrent queue backends head-to-head on parallel SSSP
//	batchsweep    batch size x backend x threads on parallel SSSP
//	thm33         Theorem 3.3: extra steps vs. n and k (adversarial)
//	thm51         Theorem 5.1 / Claim 1: MultiQueue lower bound
//	thm61         Theorem 6.1: relaxed SSSP pop counts
//	thm43         Theorem 4.3: transactional aborts
//	ablation      scheduler-family comparison (extension)
//	parinc        parallel incremental execution wasted work (extension)
//	iterative     greedy MIS / coloring under relaxed schedulers (extension)
//	bnb           Karp-Zhang branch-and-bound under relaxation (extension)
//	parbnb        parallel branch-and-bound: backends x threads (extension)
//	parmis        parallel greedy MIS / coloring: backends x threads (extension)
//	pardelaunay   parallel Delaunay triangulation: backends x threads,
//	              mesh verified against the sequential result (extension)
//	stream        streaming top-k job scheduler: external producers emit
//	              prioritized jobs at a configurable arrival rate while
//	              workers drain — backends x threads x arrival rates, with
//	              the rank error of the executed order vs. the true
//	              priority order and the p50/p99/p999 sojourn-latency
//	              quantiles per row (extension)
//	affinity      shard-affine vs. uniform handle placement on the
//	              lock-free backend: a pure queue microbenchmark isolating
//	              the home-shard cache-locality effect (extension)
//	chaos         engine throughput under seeded fault injection (worker
//	              stalls, forced re-insertions, poisoned tasks) vs. the
//	              fault-free baseline, with every run's books verified
//	              against the injector's ground truth (extension)
//	idlecost      idle CPU cost and wake-up latency of the engine's idle
//	              strategies: a stream held idle under parking vs. spinning
//	              workers, then hit with a burst — process CPU over the
//	              quiet window next to the burst's sojourn-latency
//	              quantiles (extension)
//	all           everything above
//
// The compare subcommand diffs two recorded trajectories:
//
//	relaxbench compare [-threshold PCT] OLD.json NEW.json
//
// printing per-experiment throughput deltas (rows matched by their identity
// columns) and exiting nonzero on malformed input — so BENCH_PR3.json vs
// BENCH_PR4.json is a one-liner. With -threshold PCT it also exits nonzero
// when any matched row regresses OpsPerSec by strictly more than PCT
// percent, which is how CI gates on recorded trajectories.
//
// Flags control workload scale; -scale 1 is the full-size run used in
// EXPERIMENTS.md, larger values shrink the workloads proportionally.
// -backend runs the parallel experiments on a specific concurrent queue
// (the backends and batchsweep experiments always sweep all of them), and
// -json replaces the text tables with one machine-readable JSON object per
// experiment on stdout. -out FILE additionally writes the same JSON-lines
// stream to FILE regardless of -json, which is how the per-PR BENCH_*.json
// trajectories at the repository root are recorded (see scripts/bench.sh).
//
// -cpuprofile FILE and -memprofile FILE capture pprof profiles of the
// selected experiments (the CPU profile spans every experiment run; the
// heap profile is written after the last one), so hot-path work on the
// queue backends can be profiled without ad-hoc patching:
//
//	relaxbench -scale 64 -cpuprofile cpu.pprof backends
//	go tool pprof cpu.pprof
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"relaxsched/internal/cq"
	"relaxsched/internal/experiments"
)

func main() {
	var (
		scale      = flag.Int("scale", 1, "divide default workload sizes by this factor")
		trials     = flag.Int("trials", 3, "repetitions averaged per row")
		seed       = flag.Uint64("seed", 42, "workload random seed")
		maxThreads = flag.Int("maxthreads", 0, "cap the thread sweep (0 = NumCPU)")
		backend    = flag.String("backend", "", fmt.Sprintf("concurrent queue backend for parallel experiments (%v; empty = default)", cq.Backends()))
		jsonOut    = flag.Bool("json", false, "emit one JSON object per experiment instead of text tables")
		outPath    = flag.String("out", "", "also write the JSON-lines stream to this file (e.g. BENCH_PR2.json)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile spanning all selected experiments to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile (after the last experiment) to this file")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: relaxbench [flags] <experiment> [<experiment>...]\n       relaxbench compare [-threshold PCT] OLD.json NEW.json\nrun 'go doc relaxsched/cmd/relaxbench' for the experiment list\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	if flag.Arg(0) == "compare" {
		cmp := flag.NewFlagSet("compare", flag.ExitOnError)
		threshold := cmp.Float64("threshold", -1, "exit nonzero when any matched row regresses OpsPerSec by more than this percentage (negative = report only)")
		cmp.Usage = func() {
			fmt.Fprintln(os.Stderr, compareUsage)
			cmp.PrintDefaults()
		}
		cmp.Parse(flag.Args()[1:])
		if cmp.NArg() != 2 {
			fmt.Fprintln(os.Stderr, compareUsage)
			os.Exit(2)
		}
		if err := compareThreshold(cmp.Arg(0), cmp.Arg(1), *threshold, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "relaxbench: compare: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if !cq.Backend(*backend).Valid() {
		fmt.Fprintf(os.Stderr, "relaxbench: unknown backend %q (have %v)\n", *backend, cq.Backends())
		os.Exit(2)
	}
	cfg := experiments.Config{
		Seed:       *seed,
		Trials:     *trials,
		GraphScale: *scale,
		MaxThreads: *maxThreads,
		Backend:    cq.Backend(*backend),
	}
	// Validate every experiment name before touching the -out file: a typo
	// must not truncate a previously recorded trajectory.
	for _, exp := range flag.Args() {
		if !knownExperiment(exp) {
			fmt.Fprintf(os.Stderr, "relaxbench: unknown experiment %q\n", exp)
			os.Exit(2)
		}
	}
	out := output{json: *jsonOut, w: os.Stdout}
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "relaxbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		out.record = f
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "relaxbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "relaxbench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	for _, exp := range flag.Args() {
		if err := run(exp, cfg, out); err != nil {
			fmt.Fprintf(os.Stderr, "relaxbench: %v\n", err)
			os.Exit(1)
		}
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "relaxbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // settle live-heap accounting before the snapshot
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "relaxbench: memprofile: %v\n", err)
			os.Exit(1)
		}
	}
}

// output selects between human-readable tables and machine-readable JSON
// on stdout; record, if non-nil, additionally receives the JSON-lines
// stream (the per-PR benchmark-trajectory file).
type output struct {
	json   bool
	w      io.Writer
	record io.Writer
}

// renderable is any experiment result that can print itself as a table.
type renderable interface {
	Render(w io.Writer) error
}

// emit writes one experiment result: a titled text table, or in JSON mode a
// single {"experiment": ..., "rows"/...: ...} object per line, so `relaxbench
// -json all` produces a JSON-lines stream. The record file, when set,
// always receives the JSON form.
func (o output) emit(name, title string, res renderable) error {
	if err := o.recordJSON(name, res); err != nil {
		return err
	}
	if o.json {
		return encodeJSON(o.w, name, res)
	}
	fmt.Fprintf(o.w, "\n== %s ==\n\n", title)
	return res.Render(o.w)
}

func (o output) emitJSON(name string, result any) error {
	if err := o.recordJSON(name, result); err != nil {
		return err
	}
	return encodeJSON(o.w, name, result)
}

func (o output) recordJSON(name string, result any) error {
	if o.record == nil {
		return nil
	}
	return encodeJSON(o.record, name, result)
}

func encodeJSON(w io.Writer, name string, result any) error {
	return json.NewEncoder(w).Encode(struct {
		Experiment string `json:"experiment"`
		Result     any    `json:"result"`
	}{Experiment: name, Result: result})
}

// experimentSpec couples an experiment driver with its table title.
type experimentSpec struct {
	title string
	run   func(experiments.Config) (renderable, error)
}

// noErr adapts an error-free experiment driver to the common shape.
func noErr[R renderable](f func(experiments.Config) R) func(experiments.Config) (renderable, error) {
	return func(c experiments.Config) (renderable, error) { return f(c), nil }
}

// withErr adapts a fallible experiment driver to the common shape.
func withErr[R renderable](f func(experiments.Config) (R, error)) func(experiments.Config) (renderable, error) {
	return func(c experiments.Config) (renderable, error) { return f(c) }
}

// experimentTable maps experiment names to drivers; fig1 and its variants
// are dispatched separately (one sweep renders two tables).
var experimentTable = map[string]experimentSpec{
	"graphs":      {"Input families (Section 7 sample graphs)", noErr(experiments.Graphs)},
	"fig2":        {"Figure 2: SSSP relaxation overhead vs. queue multiplier", noErr(func(c experiments.Config) experiments.Fig2Result { return experiments.Fig2(c, nil) })},
	"backends":    {"Concurrent queue backends head-to-head (parallel SSSP)", noErr(experiments.Backends)},
	"batchsweep":  {"Batch amortization: batch size x backend x threads (parallel SSSP)", noErr(experiments.BatchSweep)},
	"thm33":       {"Theorem 3.3: extra steps under the adversarial k-relaxed scheduler", withErr(experiments.Thm33)},
	"thm51":       {"Theorem 5.1 / Claim 1: MultiQueue lower bound (extra steps >= (1/8) ln n)", withErr(experiments.Thm51)},
	"thm61":       {"Theorem 6.1: relaxed SSSP pops <= n + O(k^2 dmax/wmin)", withErr(experiments.Thm61)},
	"thm43":       {"Theorem 4.3: transactional aborts O(k^2 (C+k)^2 log n)", withErr(experiments.Thm43)},
	"ablation":    {"Ablation: scheduler families on identical workloads", withErr(experiments.Ablation)},
	"parinc":      {"Extension: parallel incremental execution (goroutines over concurrent relaxed queues)", withErr(experiments.ParInc)},
	"iterative":   {"Extension: greedy iterative algorithms (MIS, coloring) under relaxed schedulers", withErr(experiments.Iterative)},
	"bnb":         {"Extension: Karp-Zhang branch-and-bound under relaxed schedulers", withErr(experiments.BnB)},
	"parbnb":      {"Extension: parallel branch-and-bound (engine workload, backends x threads)", withErr(experiments.ParBnB)},
	"parmis":      {"Extension: parallel greedy MIS / coloring (engine workload, backends x threads)", withErr(experiments.ParMIS)},
	"pardelaunay": {"Extension: parallel Delaunay triangulation (on-line DAG discovery, backends x threads)", withErr(experiments.ParDelaunay)},
	"stream":      {"Extension: streaming top-k job scheduler (external producers, backends x threads x arrival rates)", withErr(experiments.Stream)},
	"affinity":    {"Extension: shard-affine vs. uniform handle placement (lock-free backend microbenchmark)", noErr(experiments.Affinity)},
	"chaos":       {"Extension: fault-injection overhead (seeded stalls, forced blocks, poisoned tasks; backends x threads)", withErr(experiments.Chaos)},
	"txn":         {"Extension: OCC transactional workload (self-certifying serializability; backends x Zipf skews x threads)", withErr(experiments.Txn)},
	"idlecost":    {"Extension: idle CPU cost and wake-up latency of the parking vs. spinning idle strategies", withErr(experiments.IdleCost)},
}

// allOrder is the order `relaxbench all` runs experiments in.
var allOrder = []string{"graphs", "fig1", "fig2", "backends", "batchsweep", "thm33", "thm51", "thm61", "thm43", "ablation", "parinc", "iterative", "bnb", "parbnb", "parmis", "pardelaunay", "stream", "affinity", "chaos", "idlecost", "txn"}

// knownExperiment reports whether exp is a name run can dispatch.
func knownExperiment(exp string) bool {
	switch exp {
	case "fig1", "fig1-overhead", "fig1-speedup", "all":
		return true
	}
	_, ok := experimentTable[exp]
	return ok
}

func run(exp string, cfg experiments.Config, out output) error {
	switch exp {
	case "fig1":
		return runFig1(cfg, out, true, true)
	case "fig1-overhead":
		return runFig1(cfg, out, true, false)
	case "fig1-speedup":
		return runFig1(cfg, out, false, true)
	case "all":
		for _, e := range allOrder {
			if err := run(e, cfg, out); err != nil {
				return fmt.Errorf("%s: %w", e, err)
			}
		}
		return nil
	}
	spec, ok := experimentTable[exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	res, err := spec.run(cfg)
	if err != nil {
		return err
	}
	return out.emit(exp, spec.title, res)
}

// runFig1 handles Figure 1's two tables (left: overheads, right: speedups)
// sharing one sweep.
func runFig1(cfg experiments.Config, out output, overheads, speedups bool) error {
	res := experiments.Fig1(cfg)
	name := "fig1"
	switch {
	case overheads && !speedups:
		name = "fig1-overhead"
	case speedups && !overheads:
		name = "fig1-speedup"
	}
	if out.json {
		return out.emitJSON(name, res)
	}
	if err := out.recordJSON(name, res); err != nil {
		return err
	}
	if overheads {
		fmt.Fprintf(out.w, "\n== %s ==\n\n", "Figure 1 (left): SSSP relaxation overhead vs. threads (queues = 2x threads)")
		if err := res.RenderOverheads(out.w); err != nil {
			return err
		}
	}
	if speedups {
		fmt.Fprintf(out.w, "\n== %s ==\n\n", "Figure 1 (right): SSSP speedup vs. threads")
		if err := res.RenderSpeedups(out.w); err != nil {
			return err
		}
	}
	return nil
}
