// Command relaxbench regenerates every table and figure of "Efficiency
// Guarantees for Parallel Incremental Algorithms under Relaxed Schedulers"
// (SPAA 2019) from this repository's implementations.
//
// Usage:
//
//	relaxbench [flags] <experiment>
//
// Experiments:
//
//	graphs        input-family statistics (Section 7 sample graphs)
//	fig1          Figure 1: SSSP overhead and speedup vs. thread count
//	fig1-overhead Figure 1 left only
//	fig1-speedup  Figure 1 right only
//	fig2          Figure 2: overhead vs. queue multiplier
//	thm33         Theorem 3.3: extra steps vs. n and k (adversarial)
//	thm51         Theorem 5.1 / Claim 1: MultiQueue lower bound
//	thm61         Theorem 6.1: relaxed SSSP pop counts
//	thm43         Theorem 4.3: transactional aborts
//	ablation      scheduler-family comparison (extension)
//	parinc        parallel incremental execution wasted work (extension)
//	iterative     greedy MIS / coloring under relaxed schedulers (extension)
//	bnb           Karp-Zhang branch-and-bound under relaxation (extension)
//	all           everything above
//
// Flags control workload scale; -scale 1 is the full-size run used in
// EXPERIMENTS.md, larger values shrink the workloads proportionally.
package main

import (
	"flag"
	"fmt"
	"os"

	"relaxsched/internal/experiments"
)

func main() {
	var (
		scale      = flag.Int("scale", 1, "divide default workload sizes by this factor")
		trials     = flag.Int("trials", 3, "repetitions averaged per row")
		seed       = flag.Uint64("seed", 42, "workload random seed")
		maxThreads = flag.Int("maxthreads", 0, "cap the thread sweep (0 = NumCPU)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: relaxbench [flags] <experiment>\nrun 'go doc relaxsched/cmd/relaxbench' for the experiment list\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	cfg := experiments.Config{
		Seed:       *seed,
		Trials:     *trials,
		GraphScale: *scale,
		MaxThreads: *maxThreads,
	}
	if err := run(flag.Arg(0), cfg); err != nil {
		fmt.Fprintf(os.Stderr, "relaxbench: %v\n", err)
		os.Exit(1)
	}
}

func run(exp string, cfg experiments.Config) error {
	switch exp {
	case "graphs":
		return runGraphs(cfg)
	case "fig1":
		return runFig1(cfg, true, true)
	case "fig1-overhead":
		return runFig1(cfg, true, false)
	case "fig1-speedup":
		return runFig1(cfg, false, true)
	case "fig2":
		return runFig2(cfg)
	case "thm33":
		return runThm33(cfg)
	case "thm51":
		return runThm51(cfg)
	case "thm61":
		return runThm61(cfg)
	case "thm43":
		return runThm43(cfg)
	case "ablation":
		return runAblation(cfg)
	case "parinc":
		return runParInc(cfg)
	case "iterative":
		return runIterative(cfg)
	case "bnb":
		return runBnB(cfg)
	case "all":
		for _, e := range []string{"graphs", "fig1", "fig2", "thm33", "thm51", "thm61", "thm43", "ablation", "parinc", "iterative", "bnb"} {
			if err := run(e, cfg); err != nil {
				return fmt.Errorf("%s: %w", e, err)
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}

func section(title string) {
	fmt.Printf("\n== %s ==\n\n", title)
}

func runGraphs(cfg experiments.Config) error {
	section("Input families (Section 7 sample graphs)")
	res := experiments.Graphs(cfg)
	return res.Render(os.Stdout)
}

func runFig1(cfg experiments.Config, overheads, speedups bool) error {
	res := experiments.Fig1(cfg)
	if overheads {
		section("Figure 1 (left): SSSP relaxation overhead vs. threads (queues = 2x threads)")
		if err := res.RenderOverheads(os.Stdout); err != nil {
			return err
		}
	}
	if speedups {
		section("Figure 1 (right): SSSP speedup vs. threads")
		if err := res.RenderSpeedups(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

func runFig2(cfg experiments.Config) error {
	section("Figure 2: SSSP relaxation overhead vs. queue multiplier")
	res := experiments.Fig2(cfg, nil)
	return res.Render(os.Stdout)
}

func runThm33(cfg experiments.Config) error {
	section("Theorem 3.3: extra steps under the adversarial k-relaxed scheduler")
	res, err := experiments.Thm33(cfg)
	if err != nil {
		return err
	}
	return res.Render(os.Stdout)
}

func runThm51(cfg experiments.Config) error {
	section("Theorem 5.1 / Claim 1: MultiQueue lower bound (extra steps >= (1/8) ln n)")
	res, err := experiments.Thm51(cfg)
	if err != nil {
		return err
	}
	return res.Render(os.Stdout)
}

func runThm61(cfg experiments.Config) error {
	section("Theorem 6.1: relaxed SSSP pops <= n + O(k^2 dmax/wmin)")
	res, err := experiments.Thm61(cfg)
	if err != nil {
		return err
	}
	return res.Render(os.Stdout)
}

func runThm43(cfg experiments.Config) error {
	section("Theorem 4.3: transactional aborts O(k^2 (C+k)^2 log n)")
	res, err := experiments.Thm43(cfg)
	if err != nil {
		return err
	}
	return res.Render(os.Stdout)
}

func runAblation(cfg experiments.Config) error {
	section("Ablation: scheduler families on identical workloads")
	res, err := experiments.Ablation(cfg)
	if err != nil {
		return err
	}
	return res.Render(os.Stdout)
}

func runBnB(cfg experiments.Config) error {
	section("Extension: Karp-Zhang branch-and-bound under relaxed schedulers")
	res, err := experiments.BnB(cfg)
	if err != nil {
		return err
	}
	return res.Render(os.Stdout)
}

func runIterative(cfg experiments.Config) error {
	section("Extension: greedy iterative algorithms (MIS, coloring) under relaxed schedulers")
	res, err := experiments.Iterative(cfg)
	if err != nil {
		return err
	}
	return res.Render(os.Stdout)
}

func runParInc(cfg experiments.Config) error {
	section("Extension: parallel incremental execution (goroutines over a concurrent MultiQueue)")
	res, err := experiments.ParInc(cfg)
	if err != nil {
		return err
	}
	return res.Render(os.Stdout)
}
