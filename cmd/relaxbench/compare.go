package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"relaxsched/internal/stats"
)

// compareUsage documents the compare subcommand.
const compareUsage = `usage: relaxbench compare [-threshold PCT] OLD.json NEW.json

Diffs two benchmark-trajectory files (JSON-lines as written by -out, e.g.
BENCH_PR3.json vs BENCH_PR4.json) and prints per-experiment throughput
deltas for every row carrying an OpsPerSec metric. Rows are matched by
their identity columns (graph, backend, algo, scheduler, placement, idle
strategy, threads, n, k, batch, producers, rate, Zipf skew, fault-plan
columns); rows
present on only one side are
listed as added or removed. When both sides record the host environment
(NumCPU / GOMAXPROCS) and matched rows disagree, compare prints a warning:
throughput deltas across different core counts reflect hardware at least
as much as code.
Exits nonzero on malformed input.

With -threshold PCT (>= 0), compare also exits nonzero when any matched
row's OpsPerSec regressed by strictly more than PCT percent — the CI
regression gate. A row that regresses by exactly PCT passes.`

// trajectoryLine is one recorded experiment of a BENCH_*.json file.
type trajectoryLine struct {
	Experiment string          `json:"experiment"`
	Result     json.RawMessage `json:"result"`
}

// identityFields are the row columns that name a configuration (as opposed
// to measuring it), in display order. Integer-valued identity fields are
// part of the key; everything else numeric is a metric.
var identityFields = []string{"Graph", "Backend", "Algo", "Scheduler", "Placement", "Strategy", "Threads", "N", "K", "Batch", "BatchSize", "Depth", "Producers", "Rate", "StallEvery", "BlockEvery", "Poison", "Skew"}

// rowKey builds the identity key of one row: the concatenation of its
// identity columns. Rows from the two trajectories match when their keys
// are equal within the same experiment.
func rowKey(row map[string]any) string {
	var parts []string
	for _, f := range identityFields {
		v, ok := row[f]
		if !ok {
			continue
		}
		switch x := v.(type) {
		case string:
			parts = append(parts, fmt.Sprintf("%s=%s", strings.ToLower(f), x))
		case float64:
			parts = append(parts, fmt.Sprintf("%s=%d", strings.ToLower(f), int64(x)))
		}
	}
	if len(parts) == 0 {
		return "(single row)"
	}
	return strings.Join(parts, " ")
}

// readTrajectory parses one JSON-lines trajectory file into experiment
// order and per-experiment raw results. Duplicate experiment names keep the
// last occurrence (matching how -out overwrites a rerun's file).
func readTrajectory(path string) (order []string, byName map[string]json.RawMessage, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	byName = make(map[string]json.RawMessage)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var tl trajectoryLine
		if err := json.Unmarshal([]byte(line), &tl); err != nil {
			return nil, nil, fmt.Errorf("%s:%d: not a trajectory line: %w", path, lineNo, err)
		}
		if tl.Experiment == "" {
			return nil, nil, fmt.Errorf("%s:%d: missing \"experiment\" field", path, lineNo)
		}
		if _, seen := byName[tl.Experiment]; !seen {
			order = append(order, tl.Experiment)
		}
		byName[tl.Experiment] = tl.Result
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(byName) == 0 {
		return nil, nil, fmt.Errorf("%s: no experiments recorded", path)
	}
	return order, byName, nil
}

// rowsOf extracts the row maps of one recorded experiment result. Results
// without a Rows array (e.g. fig1's two-table shape) yield nil — the
// comparator skips them rather than guessing.
func rowsOf(raw json.RawMessage) []map[string]any {
	var result map[string]any
	if err := json.Unmarshal(raw, &result); err != nil {
		return nil
	}
	rows, ok := result["Rows"].([]any)
	if !ok {
		return nil
	}
	var out []map[string]any
	for _, r := range rows {
		if m, ok := r.(map[string]any); ok {
			out = append(out, m)
		}
	}
	return out
}

// regression is one matched row whose throughput dropped beyond the
// threshold.
type regression struct {
	experiment string
	key        string
	pct        float64
}

// compare diffs two trajectory files and writes the per-experiment
// throughput-delta tables to w, with compareThreshold disabled.
func compare(oldPath, newPath string, w io.Writer) error {
	return compareThreshold(oldPath, newPath, -1, w)
}

// compareThreshold diffs two trajectory files and writes the
// per-experiment throughput-delta tables to w. An error (malformed file,
// no comparable data) is returned for the caller to exit nonzero on.
// A non-negative threshold additionally turns regressions into errors:
// any matched row whose OpsPerSec dropped by strictly more than threshold
// percent fails the comparison (after all tables are rendered, so the
// report is complete either way).
func compareThreshold(oldPath, newPath string, threshold float64, w io.Writer) error {
	_, oldByName, err := readTrajectory(oldPath)
	if err != nil {
		return err
	}
	newOrder, newByName, err := readTrajectory(newPath)
	if err != nil {
		return err
	}

	compared := 0
	var regressions []regression
	hostWarned := make(map[string]bool) // one warning per old/new host pairing
	for _, name := range newOrder {
		oldRaw, inOld := oldByName[name]
		if !inOld {
			fmt.Fprintf(w, "\n== %s: only in %s ==\n", name, newPath)
			continue
		}
		oldRows, newRows := rowsOf(oldRaw), rowsOf(newByName[name])
		if oldRows == nil || newRows == nil {
			fmt.Fprintf(w, "\n== %s: no row data to compare ==\n", name)
			continue
		}
		oldByKey := make(map[string]map[string]any, len(oldRows))
		for _, r := range oldRows {
			oldByKey[rowKey(r)] = r
		}
		t := stats.NewTable("row", "old ops/sec", "new ops/sec", "delta")
		matched := 0
		for _, nr := range newRows {
			key := rowKey(nr)
			or, ok := oldByKey[key]
			if !ok {
				t.AddRow(key, "-", metricCell(nr), "added")
				continue
			}
			matched++
			delete(oldByKey, key)
			if warning, ok := hostMismatch(or, nr); ok && !hostWarned[warning] {
				hostWarned[warning] = true
				fmt.Fprintf(w, "\nwarning: %s — throughput deltas may reflect hardware, not code\n", warning)
			}
			oldOps, okOld := metric(or)
			newOps, okNew := metric(nr)
			if !okOld || !okNew {
				continue // row matched but carries no throughput metric
			}
			t.AddRow(key, oldOps, newOps, deltaCell(oldOps, newOps))
			if threshold >= 0 && oldOps > 0 {
				if pct := (oldOps - newOps) / oldOps * 100; pct > threshold {
					regressions = append(regressions, regression{experiment: name, key: key, pct: pct})
				}
			}
		}
		for key, or := range oldByKey {
			t.AddRow(key, metricCell(or), "-", "removed")
		}
		fmt.Fprintf(w, "\n== %s: %d rows matched ==\n\n", name, matched)
		// Metric-free experiments (e.g. parinc's extra-steps rows) still
		// surface coverage changes: added/removed rows render even when no
		// matched row carries OpsPerSec.
		if t.NumRows() == 0 {
			fmt.Fprintf(w, "(rows carry no OpsPerSec metric; nothing to diff)\n")
			continue
		}
		if err := t.Render(w); err != nil {
			return err
		}
		compared++
	}
	if compared == 0 {
		return fmt.Errorf("no comparable rows (throughput deltas or coverage changes) between %s and %s", oldPath, newPath)
	}
	if len(regressions) > 0 {
		fmt.Fprintf(w, "\n== regressions beyond %.4g%% ==\n\n", threshold)
		for _, r := range regressions {
			fmt.Fprintf(w, "  %s: %s: -%.1f%%\n", r.experiment, r.key, r.pct)
		}
		return fmt.Errorf("%d row(s) regressed OpsPerSec by more than %.4g%%", len(regressions), threshold)
	}
	return nil
}

// hostMismatch compares the host-environment columns of two matched rows.
// It reports a human-readable description when both rows carry the fields
// and any value differs; rows recorded before the fields existed (or
// metric-free rows) compare silently.
func hostMismatch(or, nr map[string]any) (string, bool) {
	fields := []string{"NumCPU", "GOMAXPROCS"}
	var diffs []string
	for _, f := range fields {
		ov, okOld := or[f].(float64)
		nv, okNew := nr[f].(float64)
		if okOld && okNew && ov != nv {
			diffs = append(diffs, fmt.Sprintf("%s %d vs %d", f, int(ov), int(nv)))
		}
	}
	if len(diffs) == 0 {
		return "", false
	}
	return "matched rows measured on different hosts (" + strings.Join(diffs, ", ") + ")", true
}

// metric extracts a row's throughput metric.
func metric(row map[string]any) (float64, bool) {
	v, ok := row["OpsPerSec"].(float64)
	return v, ok
}

// metricCell renders a row's metric for the one-sided (added/removed)
// table cells.
func metricCell(row map[string]any) any {
	if v, ok := metric(row); ok {
		return v
	}
	return "-"
}

// deltaCell renders the relative throughput change.
func deltaCell(oldOps, newOps float64) string {
	if oldOps == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (newOps-oldOps)/oldOps*100)
}
