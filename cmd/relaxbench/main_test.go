package main

import (
	"testing"

	"relaxsched/internal/experiments"
)

// smoke runs every experiment dispatch end-to-end at a tiny scale; it is
// the integration test for the whole harness (drivers + rendering).
func TestRunDispatchAllExperiments(t *testing.T) {
	cfg := experiments.Config{Seed: 1, Trials: 1, GraphScale: 128, MaxThreads: 2}
	for _, exp := range []string{
		"graphs", "fig1", "fig1-overhead", "fig1-speedup", "fig2",
		"thm33", "thm51", "thm61", "thm43", "ablation", "parinc", "iterative", "bnb",
	} {
		if err := run(exp, cfg); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nope", experiments.SmokeConfig()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
