package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"testing"

	"relaxsched/internal/cq"
	"relaxsched/internal/experiments"
)

// smoke runs every experiment dispatch end-to-end at a tiny scale; it is
// the integration test for the whole harness (drivers + rendering).
func TestRunDispatchAllExperiments(t *testing.T) {
	cfg := experiments.Config{Seed: 1, Trials: 1, GraphScale: 128, MaxThreads: 2}
	for _, exp := range []string{
		"graphs", "fig1", "fig1-overhead", "fig1-speedup", "fig2", "backends", "batchsweep",
		"thm33", "thm51", "thm61", "thm43", "ablation", "parinc", "iterative", "bnb",
		"parbnb", "parmis", "pardelaunay", "stream", "affinity", "chaos",
	} {
		if err := run(exp, cfg, output{w: io.Discard}); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
}

// The parallel experiments must accept every queue backend.
func TestRunHonorsBackendConfig(t *testing.T) {
	for _, b := range cq.Backends() {
		cfg := experiments.Config{Seed: 1, Trials: 1, GraphScale: 256, MaxThreads: 2, Backend: b}
		for _, exp := range []string{"fig1-overhead", "fig2"} {
			if err := run(exp, cfg, output{w: io.Discard}); err != nil {
				t.Fatalf("%s on %s: %v", exp, b, err)
			}
		}
	}
}

// -json mode must emit one well-formed JSON object per experiment, keyed by
// experiment name.
func TestRunJSONOutput(t *testing.T) {
	cfg := experiments.Config{Seed: 1, Trials: 1, GraphScale: 256, MaxThreads: 2}
	var buf bytes.Buffer
	exps := []string{"graphs", "fig1", "backends", "parinc"}
	for _, exp := range exps {
		if err := run(exp, cfg, output{json: true, w: &buf}); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var seen []string
	for sc.Scan() {
		var env struct {
			Experiment string          `json:"experiment"`
			Result     json.RawMessage `json:"result"`
		}
		if err := json.Unmarshal(sc.Bytes(), &env); err != nil {
			t.Fatalf("bad JSON line: %v\n%s", err, sc.Text())
		}
		if len(env.Result) == 0 || string(env.Result) == "null" {
			t.Fatalf("%s: empty result payload", env.Experiment)
		}
		seen = append(seen, env.Experiment)
	}
	if len(seen) != len(exps) {
		t.Fatalf("got %d JSON objects %v, want %d", len(seen), seen, len(exps))
	}
	for i, exp := range exps {
		if seen[i] != exp {
			t.Fatalf("object %d is %q, want %q", i, seen[i], exp)
		}
	}
}

// The backends experiment must report every registered backend so recorded
// trajectories always compare the full design space.
func TestBackendsExperimentCoversAllBackends(t *testing.T) {
	cfg := experiments.Config{Seed: 1, Trials: 1, GraphScale: 256, MaxThreads: 2}
	res := experiments.Backends(cfg)
	got := map[string]bool{}
	for _, row := range res.Rows {
		got[row.Backend] = true
		if row.OpsPerSec <= 0 {
			t.Fatalf("%s/%s: non-positive ops/sec", row.Graph, row.Backend)
		}
	}
	for _, b := range cq.Backends() {
		if !got[string(b)] {
			t.Fatalf("backend %s missing from results", b)
		}
	}
}

// The record writer must receive the JSON-lines stream even in text mode:
// that is how BENCH_*.json trajectories are captured alongside readable
// output.
func TestRecordStreamAlwaysJSON(t *testing.T) {
	cfg := experiments.Config{Seed: 1, Trials: 1, GraphScale: 512, MaxThreads: 2}
	var text, record bytes.Buffer
	exps := []string{"graphs", "fig1", "batchsweep"}
	for _, exp := range exps {
		if err := run(exp, cfg, output{w: &text, record: &record}); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
	if !bytes.Contains(text.Bytes(), []byte("==")) {
		t.Fatal("stdout lost its text tables when a record writer was set")
	}
	sc := bufio.NewScanner(&record)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var seen []string
	for sc.Scan() {
		var env struct {
			Experiment string          `json:"experiment"`
			Result     json.RawMessage `json:"result"`
		}
		if err := json.Unmarshal(sc.Bytes(), &env); err != nil {
			t.Fatalf("bad JSON line in record stream: %v\n%s", err, sc.Text())
		}
		if len(env.Result) == 0 || string(env.Result) == "null" {
			t.Fatalf("%s: empty result payload in record stream", env.Experiment)
		}
		seen = append(seen, env.Experiment)
	}
	if len(seen) != len(exps) {
		t.Fatalf("record stream has %d objects %v, want %d", len(seen), seen, len(exps))
	}
}

// The batchsweep experiment must cover every backend and carry the
// unbatched baseline, so a recorded trajectory is self-contained.
func TestBatchSweepCoversBackendsAndBaseline(t *testing.T) {
	cfg := experiments.Config{Seed: 1, Trials: 1, GraphScale: 512, MaxThreads: 2}
	res := experiments.BatchSweep(cfg)
	backends := map[string]bool{}
	baseline := false
	for _, row := range res.Rows {
		backends[row.Backend] = true
		if row.Batch == 1 {
			baseline = true
		}
		if row.OpsPerSec <= 0 {
			t.Fatalf("%s/%s batch %d: non-positive ops/sec", row.Graph, row.Backend, row.Batch)
		}
	}
	for _, b := range cq.Backends() {
		if !backends[string(b)] {
			t.Fatalf("backend %s missing from batchsweep", b)
		}
	}
	if !baseline {
		t.Fatal("batchsweep lacks the batch=1 baseline")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nope", experiments.SmokeConfig(), output{w: io.Discard}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// knownExperiment gates -out file creation, so it must accept exactly what
// run dispatches: every table entry, the fig1 variants, and "all".
func TestKnownExperimentMatchesDispatch(t *testing.T) {
	for name := range experimentTable {
		if !knownExperiment(name) {
			t.Errorf("table experiment %q reported unknown", name)
		}
	}
	for _, name := range []string{"fig1", "fig1-overhead", "fig1-speedup", "all"} {
		if !knownExperiment(name) {
			t.Errorf("dispatchable experiment %q reported unknown", name)
		}
	}
	if knownExperiment("nope") {
		t.Error("bogus experiment reported known")
	}
}
