package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"relaxsched/internal/experiments"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const trajOld = `{"experiment":"backends","result":{"Rows":[` +
	`{"Graph":"road","Backend":"multiqueue","Threads":2,"Overhead":1.01,"OpsPerSec":1000000},` +
	`{"Graph":"road","Backend":"spraylist","Threads":2,"Overhead":1.02,"OpsPerSec":500000}]}}
{"experiment":"parinc","result":{"Rows":[{"Algo":"bstsort","Backend":"multiqueue","N":500,"Threads":2,"Extra":3}]}}
`

const trajNew = `{"experiment":"backends","result":{"Rows":[` +
	`{"Graph":"road","Backend":"multiqueue","Threads":2,"Overhead":1.00,"OpsPerSec":1500000},` +
	`{"Graph":"road","Backend":"lockfree","Threads":2,"Overhead":1.03,"OpsPerSec":750000}]}}
{"experiment":"parbnb","result":{"Rows":[{"Backend":"multiqueue","Threads":2,"OpsPerSec":2000000}]}}
`

func TestCompareDeltas(t *testing.T) {
	oldPath := writeTemp(t, "old.json", trajOld)
	newPath := writeTemp(t, "new.json", trajNew)
	var buf bytes.Buffer
	if err := compare(oldPath, newPath, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"+50.0%", // multiqueue row: 1.0M -> 1.5M ops/sec
		"added",  // lockfree row only in NEW
		"removed",
		"only in", // parbnb experiment only in NEW
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("compare output missing %q:\n%s", want, out)
		}
	}
}

// Matched rows that record different host environments must produce a
// visible warning (once per distinct pairing), and rows without the
// columns — trajectories recorded before they existed — must not.
func TestCompareHostMismatchWarning(t *testing.T) {
	oldHost := `{"experiment":"backends","result":{"Rows":[` +
		`{"Graph":"road","Backend":"multiqueue","Threads":2,"OpsPerSec":1000000,"NumCPU":8,"GOMAXPROCS":8},` +
		`{"Graph":"road","Backend":"spraylist","Threads":2,"OpsPerSec":900000,"NumCPU":8,"GOMAXPROCS":8}]}}
`
	newHost := `{"experiment":"backends","result":{"Rows":[` +
		`{"Graph":"road","Backend":"multiqueue","Threads":2,"OpsPerSec":400000,"NumCPU":1,"GOMAXPROCS":1},` +
		`{"Graph":"road","Backend":"spraylist","Threads":2,"OpsPerSec":350000,"NumCPU":1,"GOMAXPROCS":1}]}}
`
	var buf bytes.Buffer
	if err := compare(writeTemp(t, "old.json", oldHost), writeTemp(t, "new.json", newHost), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "NumCPU 8 vs 1") {
		t.Fatalf("compare output missing host-mismatch warning:\n%s", out)
	}
	if strings.Count(out, "warning:") != 1 {
		t.Fatalf("want exactly one warning for one host pairing:\n%s", out)
	}

	// Same hosts: silent.
	buf.Reset()
	if err := compare(writeTemp(t, "same.json", oldHost), writeTemp(t, "same2.json", oldHost), &buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "warning:") {
		t.Fatalf("unexpected warning for identical hosts:\n%s", buf.String())
	}

	// Old trajectory predates the host columns: silent.
	buf.Reset()
	if err := compare(writeTemp(t, "old2.json", trajOld), writeTemp(t, "new2.json", newHost), &buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "warning:") {
		t.Fatalf("unexpected warning when old rows lack host columns:\n%s", buf.String())
	}
}

// TestCompareThreshold drives the regression gate through its three
// regimes: a regression within the threshold passes, one beyond it fails
// (after the full report is still rendered), and a regression of exactly
// the threshold is "by more than PCT" only for smaller PCT — the boundary
// passes.
func TestCompareThreshold(t *testing.T) {
	// multiqueue row: 1.0M -> 0.9M ops/sec = exactly a 10% regression.
	// spraylist row: 0.5M -> 0.6M = improvement, never a regression.
	oldPath := writeTemp(t, "old.json", trajOld)
	newPath := writeTemp(t, "new.json", `{"experiment":"backends","result":{"Rows":[`+
		`{"Graph":"road","Backend":"multiqueue","Threads":2,"Overhead":1.0,"OpsPerSec":900000},`+
		`{"Graph":"road","Backend":"spraylist","Threads":2,"Overhead":1.0,"OpsPerSec":600000}]}}`+"\n")

	t.Run("pass", func(t *testing.T) {
		if err := compareThreshold(oldPath, newPath, 15, io.Discard); err != nil {
			t.Fatalf("10%% regression failed a 15%% threshold: %v", err)
		}
	})
	t.Run("boundary", func(t *testing.T) {
		if err := compareThreshold(oldPath, newPath, 10, io.Discard); err != nil {
			t.Fatalf("exactly-10%% regression failed a 10%% threshold: %v", err)
		}
	})
	t.Run("fail", func(t *testing.T) {
		var buf bytes.Buffer
		err := compareThreshold(oldPath, newPath, 9.5, &buf)
		if err == nil {
			t.Fatal("10% regression passed a 9.5% threshold")
		}
		if !strings.Contains(err.Error(), "regressed") {
			t.Fatalf("unhelpful error: %v", err)
		}
		// The delta tables and the offending row must still be reported.
		for _, want := range []string{"-10.0%", "regressions beyond", "multiqueue"} {
			if !strings.Contains(buf.String(), want) {
				t.Fatalf("failure report missing %q:\n%s", want, buf.String())
			}
		}
	})
	t.Run("disabled", func(t *testing.T) {
		if err := compareThreshold(oldPath, newPath, -1, io.Discard); err != nil {
			t.Fatalf("negative threshold must disable the gate: %v", err)
		}
	})
	t.Run("improvements-never-fail", func(t *testing.T) {
		up := writeTemp(t, "up.json", `{"experiment":"backends","result":{"Rows":[`+
			`{"Graph":"road","Backend":"multiqueue","Threads":2,"OpsPerSec":2000000},`+
			`{"Graph":"road","Backend":"spraylist","Threads":2,"OpsPerSec":2000000}]}}`+"\n")
		if err := compareThreshold(oldPath, up, 0, io.Discard); err != nil {
			t.Fatalf("pure improvement failed a 0%% threshold: %v", err)
		}
	})
}

func TestCompareMalformedInput(t *testing.T) {
	good := writeTemp(t, "good.json", trajOld)
	for name, content := range map[string]string{
		"not-json":      "this is not json\n",
		"no-experiment": `{"result":{"Rows":[]}}` + "\n",
		"empty":         "",
	} {
		bad := writeTemp(t, name+".json", content)
		if err := compare(good, bad, io.Discard); err == nil {
			t.Fatalf("%s accepted as NEW", name)
		}
		if err := compare(bad, good, io.Discard); err == nil {
			t.Fatalf("%s accepted as OLD", name)
		}
	}
	if err := compare(good, filepath.Join(t.TempDir(), "missing.json"), io.Discard); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCompareNoThroughputRows(t *testing.T) {
	// Files that share no experiment with an OpsPerSec metric have nothing
	// to diff; that is an error, not silent success.
	a := writeTemp(t, "a.json", `{"experiment":"graphs","result":{"Families":3}}`+"\n")
	b := writeTemp(t, "b.json", `{"experiment":"graphs","result":{"Families":3}}`+"\n")
	if err := compare(a, b, io.Discard); err == nil {
		t.Fatal("rows-free trajectories compared successfully")
	}
}

// TestCompareRecordedTrajectories closes the loop end-to-end: record two
// tiny trajectories through the real -out pipeline, then diff them.
func TestCompareRecordedTrajectories(t *testing.T) {
	cfg := experiments.Config{Seed: 1, Trials: 1, GraphScale: 4096, MaxThreads: 2}
	dir := t.TempDir()
	paths := make([]string, 2)
	for i, seed := range []uint64{1, 2} {
		cfg.Seed = seed
		paths[i] = filepath.Join(dir, "traj"+string(rune('0'+i))+".json")
		f, err := os.Create(paths[i])
		if err != nil {
			t.Fatal(err)
		}
		for _, exp := range []string{"backends", "parbnb", "parmis"} {
			if err := run(exp, cfg, output{w: io.Discard, record: f}); err != nil {
				t.Fatalf("%s: %v", exp, err)
			}
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := compare(paths[0], paths[1], &buf); err != nil {
		t.Fatal(err)
	}
	for _, exp := range []string{"backends", "parbnb", "parmis"} {
		if !strings.Contains(buf.String(), "== "+exp) {
			t.Fatalf("compare output missing experiment %s:\n%s", exp, buf.String())
		}
	}
}

func TestCompareMetricFreeCoverageChanges(t *testing.T) {
	// Experiments whose rows carry no OpsPerSec (parinc's extra-steps rows)
	// must still surface added/removed rows — a coverage difference between
	// two trajectories may not disappear just because there is no
	// throughput to diff.
	oldPath := writeTemp(t, "old.json", `{"experiment":"parinc","result":{"Rows":[`+
		`{"Algo":"bstsort","Backend":"multiqueue","N":500,"Threads":2,"Extra":3},`+
		`{"Algo":"bstsort","Backend":"multiqueue","N":500,"Threads":4,"Extra":9}]}}`+"\n")
	newPath := writeTemp(t, "new.json", `{"experiment":"parinc","result":{"Rows":[`+
		`{"Algo":"bstsort","Backend":"multiqueue","N":500,"Threads":2,"Extra":4},`+
		`{"Algo":"bstsort","Backend":"lockfree","N":500,"Threads":2,"Extra":5}]}}`+"\n")
	var buf bytes.Buffer
	if err := compare(oldPath, newPath, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "added") || !strings.Contains(out, "removed") {
		t.Fatalf("coverage changes not rendered:\n%s", out)
	}
	if !strings.Contains(out, "1 rows matched") {
		t.Fatalf("matched count missing:\n%s", out)
	}
}
