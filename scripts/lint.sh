#!/usr/bin/env sh
# lint.sh — the local mirror of CI's lint job: gofmt, go vet, staticcheck
# (when installed), and the relaxlint concurrency-invariant analyzers.
# Exits non-zero on the first failing stage.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet (root module)"
go vet ./...

echo "== go vet (tools/lint)"
go -C tools/lint vet ./...

# staticcheck is pinned and installed in CI; locally it may be absent and
# must not be fetched implicitly (offline-friendly), so gate on PATH.
if command -v staticcheck >/dev/null 2>&1; then
    echo "== staticcheck"
    staticcheck ./...
else
    echo "== staticcheck (skipped: not installed; CI runs the pinned version)"
fi

echo "== relaxlint analyzer tests"
go -C tools/lint test ./...

echo "== relaxlint"
bin="$(mktemp -d)/relaxlint"
trap 'rm -rf "$(dirname "$bin")"' EXIT
go -C tools/lint build -o "$bin" ./cmd/relaxlint
"$bin" -dir . ./...

echo "lint OK"
