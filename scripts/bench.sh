#!/bin/sh
# Record this PR's benchmark trajectory: the backends head-to-head, the
# batch-amortization sweep, the parallel-incremental extra-steps rows, the
# engine workloads (parallel branch-and-bound, parallel greedy
# MIS/coloring, parallel Delaunay with on-line dependency discovery, the
# streaming top-k job scheduler), and — new in PR 6 — the shard-affinity
# ablation of the lock-free backend (affine vs. uniform handle placement),
# as a JSON-lines file at the repository root. Rows record the host's
# NumCPU/GOMAXPROCS so cross-machine comparisons warn instead of misleading.
# Override the workload with SCALE / TRIALS / MAXTHREADS, e.g.
#
#   SCALE=16 MAXTHREADS=8 scripts/bench.sh
#
# SCALE divides the full-size workloads (bigger = quicker); MAXTHREADS caps
# the thread sweep (oversubscribing the local core count is fine and still
# exercises contention). TRIALS trades recording time for row stability.
# Diff two recorded trajectories with
#
#   relaxbench compare BENCH_PR3.json BENCH_PR4.json
#
# and gate on regressions with `compare -threshold PCT` (see CI's
# bench-smoke job).
set -eu
cd "$(dirname "$0")/.."

SCALE="${SCALE:-64}"
TRIALS="${TRIALS:-5}"
MAXTHREADS="${MAXTHREADS:-4}"
OUT="${OUT:-BENCH_PR6.json}"

go run ./cmd/relaxbench \
    -scale "$SCALE" -trials "$TRIALS" -maxthreads "$MAXTHREADS" \
    -out "$OUT" backends batchsweep parinc parbnb parmis pardelaunay stream affinity
echo "wrote $OUT" >&2
