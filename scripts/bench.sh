#!/bin/sh
# Record this PR's benchmark trajectory: the backends head-to-head, the
# batch-amortization sweep, the parallel-incremental extra-steps rows, and
# the two engine workloads added in PR 3 (parallel branch-and-bound and
# parallel greedy MIS/coloring), as a JSON-lines file at the repository
# root. Override the workload with SCALE / TRIALS / MAXTHREADS, e.g.
#
#   SCALE=16 MAXTHREADS=8 scripts/bench.sh
#
# SCALE divides the full-size workloads (bigger = quicker); MAXTHREADS caps
# the thread sweep (oversubscribing the local core count is fine and still
# exercises contention). Diff two recorded trajectories with
#
#   relaxbench compare BENCH_PR2.json BENCH_PR3.json
set -eu
cd "$(dirname "$0")/.."

SCALE="${SCALE:-64}"
TRIALS="${TRIALS:-3}"
MAXTHREADS="${MAXTHREADS:-4}"
OUT="${OUT:-BENCH_PR3.json}"

go run ./cmd/relaxbench \
    -scale "$SCALE" -trials "$TRIALS" -maxthreads "$MAXTHREADS" \
    -out "$OUT" backends batchsweep parinc parbnb parmis
echo "wrote $OUT" >&2
