#!/bin/sh
# Record this PR's benchmark trajectory: the backends head-to-head, the
# batch-amortization sweep, the parallel-incremental extra-steps rows, the
# engine workloads (parallel branch-and-bound, parallel greedy
# MIS/coloring, parallel Delaunay with on-line dependency discovery, the
# streaming top-k job scheduler — its rows now carrying p50/p99/p999
# sojourn-latency columns), the shard-affinity ablation of the lock-free
# backend, the fault-injection sweep (seeded stalls, forced re-insertions,
# poisoned tasks vs. the fault-free baseline), and — new in PR 8 — the
# idle-cost rows (parking vs. spinning idle strategies: idle-window CPU
# next to burst wake-up latency), and — new in PR 10 — the OCC
# transactional workload (backends x Zipf skews x threads, every run
# certified serializable by replaying its commit log before the row is
# recorded), as a JSON-lines file at the repository root. Rows record
# the host's NumCPU/GOMAXPROCS so cross-machine comparisons warn instead
# of misleading. Override the workload with
# SCALE / TRIALS / MAXTHREADS, e.g.
#
#   SCALE=16 MAXTHREADS=8 scripts/bench.sh
#
# SCALE divides the full-size workloads (bigger = quicker); MAXTHREADS caps
# the thread sweep (oversubscribing the local core count is fine and still
# exercises contention). TRIALS trades recording time for row stability.
#
# Each experiment runs as its own relaxbench invocation under a BUDGET-
# second wall-clock timeout (default 600). On expiry the process gets
# SIGQUIT, which makes the Go runtime dump every goroutine's stack before
# dying — so a wedged termination protocol (the exact class of bug the
# engine's watchdog and the chaos suite exist to catch) leaves a diagnosis
# in the log, never a silently hung recording job. The partial trajectory
# is discarded; the previous OUT file is only replaced on full success.
#
# Diff two recorded trajectories with
#
#   relaxbench compare BENCH_PR8.json BENCH_PR10.json
#
# and gate on regressions with `compare -threshold PCT` (see CI's
# bench-smoke job).
set -eu
cd "$(dirname "$0")/.."

SCALE="${SCALE:-64}"
TRIALS="${TRIALS:-5}"
MAXTHREADS="${MAXTHREADS:-4}"
OUT="${OUT:-BENCH_PR10.json}"
BUDGET="${BUDGET:-600}"

EXPERIMENTS="backends batchsweep parinc parbnb parmis pardelaunay stream affinity chaos idlecost txn"

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# Build once; per-experiment runs must not pay (or hide a hang inside)
# repeated `go run` compiles.
go build -o "$TMP/relaxbench" ./cmd/relaxbench

# GNU `timeout` sends --signal on expiry and SIGKILLs survivors after
# --kill-after; where it is unavailable (stock macOS), run unbounded.
run_bounded() {
    if command -v timeout >/dev/null 2>&1; then
        timeout --signal=QUIT --kill-after=15 "$BUDGET" "$@"
    else
        "$@"
    fi
}

: > "$TMP/trajectory.json"
for exp in $EXPERIMENTS; do
    echo "recording $exp (budget ${BUDGET}s)" >&2
    run_bounded "$TMP/relaxbench" \
        -scale "$SCALE" -trials "$TRIALS" -maxthreads "$MAXTHREADS" \
        -out "$TMP/$exp.json" "$exp" || {
        status=$?
        echo "bench.sh: $exp failed (exit $status; 131/137 = timed out, goroutine stacks above)" >&2
        exit "$status"
    }
    cat "$TMP/$exp.json" >> "$TMP/trajectory.json"
done
mv "$TMP/trajectory.json" "$OUT"
echo "wrote $OUT" >&2
