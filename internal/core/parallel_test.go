package core

import (
	"sort"
	"testing"
	"testing/quick"

	"relaxsched/internal/cq"
	"relaxsched/internal/engine"
	"relaxsched/internal/rng"
)

func TestParallelRunNoDeps(t *testing.T) {
	d := NewDAG(2000)
	res, err := ParallelRun(d, ParallelOptions{ExecOptions: engine.ExecOptions{Threads: 8, QueueMultiplier: 2, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Processed != 2000 {
		t.Fatalf("processed %d", res.Processed)
	}
	if res.ExtraSteps != 0 {
		t.Fatalf("independent tasks wasted %d steps", res.ExtraSteps)
	}
	if len(res.Order) != 2000 {
		t.Fatalf("order has %d entries", len(res.Order))
	}
}

func TestParallelRunRespectsDependencies(t *testing.T) {
	r := rng.New(3)
	const n = 1500
	d := randomDAG(n, r)
	res, err := ParallelRun(d, ParallelOptions{ExecOptions: engine.ExecOptions{Threads: 8, QueueMultiplier: 2, Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, n)
	for i, l := range res.Order {
		pos[l] = i
	}
	for j := 0; j < n; j++ {
		for _, i := range d.Preds[j] {
			if pos[i] > pos[j] {
				t.Fatalf("task %d processed before ancestor %d", j, i)
			}
		}
	}
}

func TestParallelRunChainIsSerial(t *testing.T) {
	// A chain admits no parallelism; the run must still complete, in
	// exactly sequential order, with (possibly many) wasted steps.
	const n = 300
	res, err := ParallelRun(chainDAG(n), ParallelOptions{ExecOptions: engine.ExecOptions{Threads: 4, QueueMultiplier: 2, Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range res.Order {
		if int(l) != i {
			t.Fatalf("order[%d] = %d", i, l)
		}
	}
}

func TestParallelRunOnProcessSerialized(t *testing.T) {
	// The callback may mutate shared state without extra locking.
	const n = 2000
	r := rng.New(9)
	d := randomDAG(n, r)
	sum := 0
	var seen []int
	res, err := ParallelRun(d, ParallelOptions{ExecOptions: engine.ExecOptions{Threads: 8, QueueMultiplier: 2, Seed: 7}, OnProcess: func(label int) {
		sum += label
		seen = append(seen, label)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Processed != n || len(seen) != n {
		t.Fatalf("processed %d, callback %d", res.Processed, len(seen))
	}
	if want := n * (n - 1) / 2; sum != want {
		t.Fatalf("sum = %d, want %d (lost or duplicated callbacks)", sum, want)
	}
	sort.Ints(seen)
	for i, v := range seen {
		if v != i {
			t.Fatal("callback labels not a permutation")
		}
	}
}

func TestParallelRunSingleThreadMatchesModelSemantics(t *testing.T) {
	// One thread, one queue: pops are exact by priority, so no wasted
	// steps can occur (the minimum pending label is never blocked).
	const n = 500
	r := rng.New(11)
	d := randomDAG(n, r)
	res, err := ParallelRun(d, ParallelOptions{ExecOptions: engine.ExecOptions{Threads: 1, QueueMultiplier: 1, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExtraSteps != 0 {
		t.Fatalf("exact single queue wasted %d steps", res.ExtraSteps)
	}
	for i, l := range res.Order {
		if int(l) != i {
			t.Fatalf("order[%d] = %d", i, l)
		}
	}
}

func TestParallelRunInvalidOptions(t *testing.T) {
	d := NewDAG(5)
	if _, err := ParallelRun(d, ParallelOptions{ExecOptions: engine.ExecOptions{Threads: 0, QueueMultiplier: 1}}); err == nil {
		t.Fatal("Threads 0 accepted")
	}
	if _, err := ParallelRun(d, ParallelOptions{ExecOptions: engine.ExecOptions{Threads: 1, QueueMultiplier: 0}}); err == nil {
		t.Fatal("QueueMultiplier 0 accepted")
	}
	bad := NewDAG(3)
	bad.Preds[1] = append(bad.Preds[1], 2)
	if _, err := ParallelRun(bad, ParallelOptions{ExecOptions: engine.ExecOptions{Threads: 1, QueueMultiplier: 1}}); err == nil {
		t.Fatal("invalid DAG accepted")
	}
}

// Property: parallel runs complete every task exactly once in a
// dependency-respecting order for random DAGs, thread counts and seeds.
func TestParallelRunProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 50 + r.Intn(400)
		d := randomDAG(n, r)
		res, err := ParallelRun(d, ParallelOptions{ExecOptions: engine.ExecOptions{Threads: 1 + r.Intn(8), QueueMultiplier: 1 + r.Intn(3), Seed: seed}})
		if err != nil || res.Processed != int64(n) {
			return false
		}
		pos := make([]int, n)
		for i, l := range res.Order {
			pos[l] = i
		}
		for j := 0; j < n; j++ {
			for _, i := range d.Preds[j] {
				if pos[i] > pos[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkParallelRunRandomDAG(b *testing.B) {
	r := rng.New(1)
	const n = 20000
	d := randomDAG(n, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParallelRun(d, ParallelOptions{ExecOptions: engine.ExecOptions{Threads: 8, QueueMultiplier: 2, Seed: uint64(i)}}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestParallelRunAcrossBackends(t *testing.T) {
	// Every cq backend must drive the runtime to a dependency-respecting
	// completion; only the wasted work may differ.
	r := rng.New(11)
	const n = 1200
	d := randomDAG(n, r)
	for _, backend := range cq.Backends() {
		res, err := ParallelRun(d, ParallelOptions{ExecOptions: engine.ExecOptions{Threads: 4, QueueMultiplier: 2, Backend: backend, Seed: 9}})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if res.Processed != n {
			t.Fatalf("%s: processed %d of %d", backend, res.Processed, n)
		}
		pos := make([]int, n)
		for i, l := range res.Order {
			pos[l] = i
		}
		for j := 0; j < n; j++ {
			for _, i := range d.Preds[j] {
				if pos[i] > pos[j] {
					t.Fatalf("%s: task %d processed before ancestor %d", backend, j, i)
				}
			}
		}
	}
}

func TestParallelRunBatched(t *testing.T) {
	// The batch-amortized path must preserve every guarantee of the
	// singleton path: all tasks processed exactly once, dependency order
	// respected, on every backend and at several batch sizes.
	r := rng.New(21)
	const n = 1500
	d := randomDAG(n, r)
	for _, backend := range cq.Backends() {
		for _, batch := range []int{2, 16, 128} {
			res, err := ParallelRun(d, ParallelOptions{ExecOptions: engine.ExecOptions{Threads: 4, QueueMultiplier: 2, Backend: backend, BatchSize: batch, Seed: 13}})
			if err != nil {
				t.Fatalf("%s/batch%d: %v", backend, batch, err)
			}
			if res.Processed != n {
				t.Fatalf("%s/batch%d: processed %d of %d", backend, batch, res.Processed, n)
			}
			pos := make([]int, n)
			for i, l := range res.Order {
				pos[l] = i
			}
			for j := 0; j < n; j++ {
				for _, i := range d.Preds[j] {
					if pos[i] > pos[j] {
						t.Fatalf("%s/batch%d: task %d processed before ancestor %d", backend, batch, j, i)
					}
				}
			}
		}
	}
}

func TestParallelRunBatchedOnProcessSerialized(t *testing.T) {
	// The OnProcess mutex guarantee must survive batching: callbacks stay
	// serialized and observe a dependency-respecting order.
	const n = 1200
	r := rng.New(31)
	d := randomDAG(n, r)
	processedAt := make([]int, n)
	calls := 0
	res, err := ParallelRun(d, ParallelOptions{ExecOptions: engine.ExecOptions{Threads: 4, QueueMultiplier: 2, BatchSize: 32, Seed: 17}, OnProcess: func(label int) {
		processedAt[label] = calls
		calls++
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Processed != n || calls != n {
		t.Fatalf("processed %d, callbacks %d, want %d", res.Processed, calls, n)
	}
	for j := 0; j < n; j++ {
		for _, i := range d.Preds[j] {
			if processedAt[i] > processedAt[j] {
				t.Fatalf("callback for %d ran before ancestor %d", j, i)
			}
		}
	}
}

func TestParallelRunBatchedChainIsSerial(t *testing.T) {
	// A chain forces every batch to come back almost entirely blocked; the
	// re-insertion buffer must keep all labels live until their turn.
	const n = 200
	res, err := ParallelRun(chainDAG(n), ParallelOptions{ExecOptions: engine.ExecOptions{Threads: 4, QueueMultiplier: 2, BatchSize: 16, Seed: 23}})
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range res.Order {
		if int(l) != i {
			t.Fatalf("order[%d] = %d", i, l)
		}
	}
}

func TestParallelRunUnknownBackend(t *testing.T) {
	_, err := ParallelRun(NewDAG(10), ParallelOptions{ExecOptions: engine.ExecOptions{Threads: 2, QueueMultiplier: 2, Backend: "no-such-queue", Seed: 1}})
	if err == nil {
		t.Fatal("unknown backend accepted")
	}
}
