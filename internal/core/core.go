// Package core implements the paper's generic framework for executing
// incremental algorithms through (relaxed) priority schedulers: Algorithm 1
// (exact execution) and Algorithm 2 (relaxed execution with dependency
// checking), together with the extra-step accounting that all of the
// theoretical results in Sections 3 and 5 are stated in.
//
// An incremental algorithm is presented to the framework as a set of n
// tasks, labelled 0..n-1 in decreasing priority order (label = priority,
// lower is higher priority), plus a dependency DAG: task j depends on task
// i < j if the sequential algorithm must process i before j. For the
// algorithms the paper considers, the DAG is a function of the (random)
// label order only, so it can be computed by one sequential pass (see the
// bstsort and delaunay packages) and then replayed under any scheduler.
//
// The relaxed execution loop (Algorithm 2) repeatedly asks the scheduler
// for a task; if the task still has unprocessed ancestors, the iteration is
// wasted — an "extra step" — and the task remains in the scheduler;
// otherwise the task is removed and processed. The exact execution takes
// exactly n steps, so extra steps measure the cost of relaxation.
package core

import (
	"fmt"

	"relaxsched/internal/sched"
)

// DAG is a dependency DAG over tasks labelled 0..N-1. Preds[j] lists the
// labels of j's immediate predecessors ("ancestors" in the paper); every
// predecessor label must be smaller than j.
type DAG struct {
	N     int
	Preds [][]int32
}

// NewDAG returns an empty DAG over n tasks (no dependencies).
func NewDAG(n int) *DAG {
	return &DAG{N: n, Preds: make([][]int32, n)}
}

// AddDep records that task j depends on task i (i must precede j).
// It panics unless i < j.
func (d *DAG) AddDep(i, j int) {
	if i >= j {
		panic(fmt.Sprintf("core: dependency %d -> %d must go from smaller to larger label", i, j))
	}
	d.Preds[j] = append(d.Preds[j], int32(i))
}

// NumDeps returns the total number of dependency edges.
func (d *DAG) NumDeps() int {
	total := 0
	for _, p := range d.Preds {
		total += len(p)
	}
	return total
}

// Validate checks the DAG's label invariant (all predecessors smaller) and
// returns an error describing the first violation.
func (d *DAG) Validate() error {
	if len(d.Preds) != d.N {
		return fmt.Errorf("core: Preds has %d entries, want %d", len(d.Preds), d.N)
	}
	for j, preds := range d.Preds {
		for _, i := range preds {
			if int(i) >= j || i < 0 {
				return fmt.Errorf("core: task %d has invalid predecessor %d", j, i)
			}
		}
	}
	return nil
}

// Result summarizes one relaxed (or exact) execution.
type Result struct {
	// Steps is the number of loop iterations (ApproxGetMin calls that
	// returned a task). The exact scheduler always yields Steps == N.
	Steps int64
	// ExtraSteps = Steps - N: the paper's measure of wasted work.
	ExtraSteps int64
	// Processed is the number of tasks processed (always N on success).
	Processed int64
	// AdjacentInversions counts labels i such that task i+1 was first
	// returned by the scheduler strictly before task i (the inv_{i,i+1}
	// events of Section 5's lower bound).
	AdjacentInversions int64
	// BlockedByLabel[j] (optional, when CollectPerTask) counts wasted steps
	// charged to returns of task j while it had unprocessed ancestors.
	BlockedByLabel []int64
	// Order (optional, when CollectOrder) is the sequence of labels in
	// processing order.
	Order []int32
}

// Overhead returns Steps / N, the relaxation overhead ratio reported in the
// paper's experiments (1.0 = no wasted work).
func (r Result) Overhead() float64 {
	if r.Processed == 0 {
		return 1
	}
	return float64(r.Steps) / float64(r.Processed)
}

// Options configure a Run.
type Options struct {
	// OnProcess, if non-nil, is invoked for every task in processing order;
	// incremental algorithms use it to apply the task's state update.
	OnProcess func(label int)
	// CollectOrder records the processing order in Result.Order.
	CollectOrder bool
	// CollectPerTask records per-label blocked counts.
	CollectPerTask bool
	// MaxStepsFactor aborts the run (with an error) after
	// MaxStepsFactor * N steps; it guards against schedulers that violate
	// fairness and starve a blocked task forever. 0 means the default of
	// 1000.
	MaxStepsFactor int64
}

// Run executes the task set described by dag through scheduler s, which
// must be empty; tasks are inserted with priority equal to their label
// (Algorithm 2). It returns the execution metrics.
//
// The scheduler's ApproxGetMin is called once per loop iteration; the task
// is deleted and processed only when all its predecessors have been
// processed, matching the paper's model where a speculatively returned but
// blocked task stays in the scheduler.
func Run(dag *DAG, s sched.Scheduler, opts Options) (Result, error) {
	if err := dag.Validate(); err != nil {
		return Result{}, err
	}
	if s.Len() != 0 {
		return Result{}, fmt.Errorf("core: scheduler must start empty, has %d tasks", s.Len())
	}
	n := dag.N
	for i := 0; i < n; i++ {
		s.Insert(i, int64(i))
	}

	// remaining[j] = number of unprocessed predecessors.
	remaining := make([]int32, n)
	succs := make([][]int32, n)
	for j := 0; j < n; j++ {
		remaining[j] = int32(len(dag.Preds[j]))
		for _, i := range dag.Preds[j] {
			succs[i] = append(succs[i], int32(j))
		}
	}

	var res Result
	if opts.CollectPerTask {
		res.BlockedByLabel = make([]int64, n)
	}
	if opts.CollectOrder {
		res.Order = make([]int32, 0, n)
	}
	firstReturn := make([]int64, n)
	for i := range firstReturn {
		firstReturn[i] = -1
	}

	maxFactor := opts.MaxStepsFactor
	if maxFactor == 0 {
		maxFactor = 1000
	}
	maxSteps := maxFactor * int64(n)

	for {
		label, _, ok := s.ApproxGetMin()
		if !ok {
			break
		}
		res.Steps++
		if res.Steps > maxSteps {
			return res, fmt.Errorf("core: exceeded %d steps for %d tasks; scheduler may be starving a task", maxSteps, n)
		}
		if firstReturn[label] < 0 {
			firstReturn[label] = res.Steps
		}
		if remaining[label] > 0 {
			// Blocked: an ancestor is unprocessed. Wasted step.
			if opts.CollectPerTask {
				res.BlockedByLabel[label]++
			}
			continue
		}
		s.DeleteTask(label)
		res.Processed++
		if opts.CollectOrder {
			res.Order = append(res.Order, int32(label))
		}
		if opts.OnProcess != nil {
			opts.OnProcess(label)
		}
		for _, j := range succs[label] {
			remaining[j]--
		}
	}
	if res.Processed != int64(n) {
		return res, fmt.Errorf("core: processed %d of %d tasks (scheduler emptied early)", res.Processed, n)
	}
	res.ExtraSteps = res.Steps - int64(n)
	for i := 0; i+1 < n; i++ {
		if firstReturn[i+1] >= 0 && firstReturn[i+1] < firstReturn[i] {
			res.AdjacentInversions++
		}
	}
	return res, nil
}

// RunExact executes the task set on an exact scheduler (Algorithm 1). It is
// provided as the baseline: the result always has Steps == N and zero extra
// steps, and the processing order is 0..N-1.
func RunExact(dag *DAG, opts Options) (Result, error) {
	return Run(dag, sched.NewExact(dag.N), opts)
}
