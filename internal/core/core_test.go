package core

import (
	"testing"
	"testing/quick"

	"relaxsched/internal/multiqueue"
	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
)

// chainDAG builds the total-order DAG 0 <- 1 <- ... <- n-1 (each task
// depends on its predecessor).
func chainDAG(n int) *DAG {
	d := NewDAG(n)
	for j := 1; j < n; j++ {
		d.AddDep(j-1, j)
	}
	return d
}

// randomDAG gives each task a random predecessor (a random recursive tree).
func randomDAG(n int, r *rng.Xoshiro) *DAG {
	d := NewDAG(n)
	for j := 1; j < n; j++ {
		d.AddDep(r.Intn(j), j)
	}
	return d
}

func TestExactRunNoDeps(t *testing.T) {
	d := NewDAG(100)
	res, err := RunExact(d, Options{CollectOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 100 || res.ExtraSteps != 0 || res.Processed != 100 {
		t.Fatalf("unexpected result: %+v", res)
	}
	for i, l := range res.Order {
		if int(l) != i {
			t.Fatalf("order[%d] = %d", i, l)
		}
	}
	if res.Overhead() != 1 {
		t.Fatalf("overhead = %f", res.Overhead())
	}
}

func TestExactRunChainNoExtraSteps(t *testing.T) {
	// With an exact scheduler, even a full chain causes no wasted work.
	res, err := RunExact(chainDAG(500), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExtraSteps != 0 {
		t.Fatalf("extra steps = %d, want 0", res.ExtraSteps)
	}
}

func TestRelaxedChainHasExtraSteps(t *testing.T) {
	// With a k-relaxed adversarial scheduler on a chain, almost every
	// speculative return is blocked, so extra steps must appear.
	const n = 300
	const k = 8
	res, err := Run(chainDAG(n), sched.NewKRelaxed(n, k), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExtraSteps == 0 {
		t.Fatal("adversarial scheduler on a chain produced no extra steps")
	}
	// Trivial upper bound: the adversary wastes at most k-1 steps per task.
	if res.ExtraSteps > int64(n)*int64(k) {
		t.Fatalf("extra steps = %d exceed trivial bound %d", res.ExtraSteps, n*k)
	}
	if res.Processed != n {
		t.Fatalf("processed = %d", res.Processed)
	}
}

func TestRelaxedRespectsDependencyOrder(t *testing.T) {
	const n = 200
	r := rng.New(5)
	d := randomDAG(n, r)
	res, err := Run(d, sched.NewKRelaxed(n, 16), Options{CollectOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, n)
	for i, l := range res.Order {
		pos[l] = i
	}
	for j := 0; j < n; j++ {
		for _, i := range d.Preds[j] {
			if pos[i] > pos[j] {
				t.Fatalf("task %d processed before its ancestor %d", j, i)
			}
		}
	}
}

func TestBlockedPerTaskAccounting(t *testing.T) {
	const n = 100
	res, err := Run(chainDAG(n), sched.NewKRelaxed(n, 4), Options{CollectPerTask: true})
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, b := range res.BlockedByLabel {
		sum += b
	}
	if sum != res.ExtraSteps {
		t.Fatalf("per-task blocked sum %d != extra steps %d", sum, res.ExtraSteps)
	}
	if res.BlockedByLabel[0] != 0 {
		t.Fatal("task 0 can never be blocked")
	}
}

func TestOnProcessCallbackOrder(t *testing.T) {
	const n = 50
	var seen []int
	_, err := Run(chainDAG(n), sched.NewRandomK(n, 8, 3), Options{
		OnProcess: func(label int) { seen = append(seen, label) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != n {
		t.Fatalf("callback fired %d times", len(seen))
	}
	// A chain forces exactly sequential processing order.
	for i, l := range seen {
		if l != i {
			t.Fatalf("seen[%d] = %d", i, l)
		}
	}
}

func TestAdjacentInversionsExactIsZero(t *testing.T) {
	res, err := RunExact(NewDAG(100), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.AdjacentInversions != 0 {
		t.Fatalf("exact run has %d adjacent inversions", res.AdjacentInversions)
	}
}

func TestAdjacentInversionsUnderMultiQueue(t *testing.T) {
	// Claim 1: under a MultiQueue, Pr[inv_{i,i+1}] >= 1/8, so over n tasks
	// we expect at least ~n/8 adjacent inversions; require a loose n/20.
	const n = 4000
	mq := multiqueue.New(n, 8, 2, multiqueue.RandomQueue, 11)
	res, err := Run(NewDAG(n), mq, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.AdjacentInversions < n/20 {
		t.Fatalf("only %d adjacent inversions for n=%d under MultiQueue", res.AdjacentInversions, n)
	}
}

func TestDAGValidate(t *testing.T) {
	d := NewDAG(3)
	d.AddDep(0, 2)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	d.Preds[1] = append(d.Preds[1], 2) // corrupt: predecessor larger
	if err := d.Validate(); err == nil {
		t.Fatal("Validate accepted invalid DAG")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AddDep(2,1) should panic")
		}
	}()
	d.AddDep(2, 1)
}

func TestRunRejectsNonEmptyScheduler(t *testing.T) {
	s := sched.NewExact(5)
	s.Insert(0, 0)
	if _, err := Run(NewDAG(5), s, Options{}); err == nil {
		t.Fatal("Run accepted non-empty scheduler")
	}
}

func TestNumDeps(t *testing.T) {
	d := chainDAG(10)
	if d.NumDeps() != 9 {
		t.Fatalf("NumDeps = %d", d.NumDeps())
	}
}

// Property: for any random DAG and any scheduler in the family, the relaxed
// run processes all tasks in a dependency-respecting order, and the exact
// run never wastes steps.
func TestRunProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 20 + r.Intn(150)
		d := randomDAG(n, r)
		var s sched.Scheduler
		switch r.Intn(3) {
		case 0:
			s = sched.NewKRelaxed(n, 1+r.Intn(10))
		case 1:
			s = sched.NewRandomK(n, 1+r.Intn(10), seed)
		default:
			s = multiqueue.New(n, 1+r.Intn(6), 2, multiqueue.RandomQueue, seed)
		}
		res, err := Run(d, s, Options{CollectOrder: true})
		if err != nil || res.Processed != int64(n) {
			return false
		}
		pos := make([]int, n)
		for i, l := range res.Order {
			pos[l] = i
		}
		for j := 0; j < n; j++ {
			for _, i := range d.Preds[j] {
				if pos[i] > pos[j] {
					return false
				}
			}
		}
		exact, err := RunExact(d, Options{})
		return err == nil && exact.ExtraSteps == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRunChainKRelaxed(b *testing.B) {
	const n = 10000
	d := chainDAG(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sched.NewKRelaxed(n, 8)
		if _, err := Run(d, s, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
