package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"relaxsched/internal/engine"
)

// ParallelOptions configure a ParallelRun.
type ParallelOptions struct {
	// ExecOptions are the shared engine knobs: queue backend and relaxation
	// multiplier, worker count, batching (pops arrive in batches and
	// re-insertions of blocked tasks accumulate in a per-worker buffer
	// flushed through PushBatch), and seeding.
	engine.ExecOptions
	// OnProcess, if non-nil, is invoked once per task in processing order.
	// Calls are serialized by an internal mutex, so the callback may touch
	// shared algorithm state (e.g. insert into a BST or a mesh) without
	// its own locking; the dependency order is guaranteed.
	OnProcess func(label int)
}

// dagWorkload is the static-DAG workload over the generic engine: every
// label is seeded up-front at priority = label, a popped label is Blocked
// until all its predecessors have been processed, and processing decrements
// the successors' remaining-predecessor counters. Nothing is ever spawned —
// the engine's re-insertion of Blocked pops is exactly Algorithm 2's "task
// stays in the scheduler".
type dagWorkload struct {
	remaining []atomic.Int32
	succs     [][]int32

	// Processing-order collection: each processed task claims the next slot
	// of a pre-sized array via an atomic ticket. Without OnProcess that is
	// the only write shared between workers (and each slot is written
	// exactly once); with OnProcess, ticket claim and callback happen under
	// procMu so the callback observes tasks in slot order.
	order     []int32
	ticket    atomic.Int64
	procMu    sync.Mutex
	onProcess func(label int)
}

func newDAGWorkload(dag *DAG, onProcess func(label int)) *dagWorkload {
	n := dag.N
	w := &dagWorkload{
		remaining: make([]atomic.Int32, n),
		succs:     make([][]int32, n),
		order:     make([]int32, n),
		onProcess: onProcess,
	}
	for j := 0; j < n; j++ {
		w.remaining[j].Store(int32(len(dag.Preds[j])))
		for _, i := range dag.Preds[j] {
			w.succs[i] = append(w.succs[i], int32(j))
		}
	}
	return w
}

func (d *dagWorkload) Frontier(emit func(value, priority int64)) {
	for i := range d.order {
		emit(int64(i), int64(i))
	}
}

func (d *dagWorkload) TryExecute(_ *engine.Ctx, value, _ int64) engine.Status {
	label := int(value)
	if d.remaining[label].Load() > 0 {
		return engine.Blocked
	}
	if d.onProcess != nil {
		d.procMu.Lock()
		d.order[d.ticket.Add(1)-1] = int32(label)
		d.onProcess(label)
		d.procMu.Unlock()
	} else {
		d.order[d.ticket.Add(1)-1] = int32(label)
	}
	for _, j := range d.succs[label] {
		d.remaining[j].Add(-1)
	}
	return engine.Executed
}

// ParallelRun executes the task set concurrently: worker goroutines pop
// labels from a concurrent relaxed queue (any cq backend), process them
// when all their dependencies are satisfied, and re-insert them otherwise.
// It is a thin static-DAG workload over the generic relaxed-execution
// engine (internal/engine), which owns the worker loop, the batching
// buffers and the in-flight termination protocol; see that package for the
// execution model. The serialized-OnProcess guarantee documented on
// ParallelOptions is layered here, in the workload.
//
// The returned Result counts every pop as a step, so ExtraSteps again
// measures wasted work: pops of tasks that could not be processed yet.
// AdjacentInversions is undefined engine-wide for parallel runs
// (first-return order is not well defined across racing workers) and is
// reported as 0.
func ParallelRun(dag *DAG, opts ParallelOptions) (Result, error) {
	if err := dag.Validate(); err != nil {
		return Result{}, err
	}
	wl := newDAGWorkload(dag, opts.OnProcess)
	stats, err := engine.Run(wl, engine.Options{ExecOptions: opts.ExecOptions})
	if err != nil {
		return Result{}, fmt.Errorf("core: %w", err)
	}
	n := int64(dag.N)
	processed := wl.ticket.Load()
	res := Result{
		Steps:     stats.Popped,
		Processed: processed,
		Order:     wl.order[:processed],
	}
	if stats.Failed > 0 {
		// A task (or an OnProcess callback) panicked; the engine contained
		// and quarantined it, so report the failure instead of crashing.
		return res, fmt.Errorf("core: %d tasks quarantined (first: %v)", stats.Failed, stats.Failures[0].Err)
	}
	if processed != n {
		return res, fmt.Errorf("core: parallel run processed %d of %d tasks", processed, n)
	}
	res.ExtraSteps = res.Steps - n
	return res, nil
}
