package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"relaxsched/internal/cq"
	"relaxsched/internal/inflight"
	"relaxsched/internal/rng"
)

// ParallelOptions configure a ParallelRun.
type ParallelOptions struct {
	// Threads is the number of worker goroutines (>= 1).
	Threads int
	// QueueMultiplier is the relaxation multiplier of the concurrent queue
	// (>= 1; the classic MultiQueue configuration is 2, giving
	// Threads * QueueMultiplier internal queues).
	QueueMultiplier int
	// Backend selects the concurrent queue implementation; the zero value
	// is cq.DefaultBackend (the MultiQueue with 2-choice pops).
	Backend cq.Backend
	// BatchSize is the number of labels a worker moves per queue
	// operation: pops arrive in batches and re-insertions of blocked tasks
	// accumulate in a per-worker buffer flushed through PushBatch. Values
	// <= 1 disable batching (one queue operation per label).
	BatchSize int
	// Seed drives the queue randomness.
	Seed uint64
	// OnProcess, if non-nil, is invoked once per task in processing order.
	// Calls are serialized by an internal mutex, so the callback may touch
	// shared algorithm state (e.g. insert into a BST or a mesh) without
	// its own locking; the dependency order is guaranteed.
	OnProcess func(label int)
}

// ParallelRun executes the task set concurrently: worker goroutines pop
// labels from a concurrent relaxed queue (any cq backend), process them
// when all their dependencies are satisfied, and re-insert them otherwise.
// This is the
// concurrent analogue of Algorithm 2 — the regime the paper's Section 4
// transactional model abstracts — with re-insertion playing the role of
// the sequential model's "task stays in the scheduler".
//
// Termination uses cache-padded per-worker in-flight counters (see
// internal/inflight), and processing-order slots are claimed with an
// atomic order ticket, so runs without an OnProcess callback share no
// contended line on the hot path: the only global synchronization left is
// the queue itself. With OnProcess set, callback invocations (and their
// order tickets) serialize under a mutex exactly as documented on the
// option.
//
// The returned Result counts every pop as a step, so ExtraSteps again
// measures wasted work: pops of tasks that could not be processed yet.
// AdjacentInversions is not measured in the concurrent run (first-return
// order is not well defined across racing workers) and is reported as 0.
func ParallelRun(dag *DAG, opts ParallelOptions) (Result, error) {
	if err := dag.Validate(); err != nil {
		return Result{}, err
	}
	if opts.Threads < 1 {
		return Result{}, fmt.Errorf("core: ParallelRun needs Threads >= 1")
	}
	if opts.QueueMultiplier < 1 {
		return Result{}, fmt.Errorf("core: ParallelRun needs QueueMultiplier >= 1")
	}
	mq, err := cq.New(opts.Backend, opts.Threads, opts.QueueMultiplier)
	if err != nil {
		return Result{}, fmt.Errorf("core: %w", err)
	}
	n := dag.N
	remaining := make([]atomic.Int32, n)
	succs := make([][]int32, n)
	for j := 0; j < n; j++ {
		remaining[j].Store(int32(len(dag.Preds[j])))
		for _, i := range dag.Preds[j] {
			succs[i] = append(succs[i], int32(j))
		}
	}

	seedRng := rng.New(opts.Seed)
	for i := 0; i < n; i++ {
		mq.Push(seedRng, int64(i), int64(i))
	}

	counters := inflight.New(opts.Threads)
	counters.ProduceN(0, int64(n)) // the n seed labels pushed above
	var steps atomic.Int64

	// Processing-order collection: each processed task claims the next slot
	// of a pre-sized array via an atomic ticket. Without OnProcess that is
	// the only write shared between workers (and each slot is written
	// exactly once); with OnProcess, ticket claim and callback happen under
	// procMu so the callback observes tasks in slot order.
	order := make([]int32, n)
	var ticket atomic.Int64
	var procMu sync.Mutex

	process := func(label int) {
		if opts.OnProcess != nil {
			procMu.Lock()
			order[ticket.Add(1)-1] = int32(label)
			opts.OnProcess(label)
			procMu.Unlock()
		} else {
			order[ticket.Add(1)-1] = int32(label)
		}
		for _, j := range succs[label] {
			remaining[j].Add(-1)
		}
	}

	var wg sync.WaitGroup
	for t := 0; t < opts.Threads; t++ {
		wg.Add(1)
		go func(w int, r *rng.Xoshiro) {
			defer wg.Done()
			if opts.BatchSize > 1 {
				coreWorkerBatched(mq, counters, remaining, process, w, r, opts.BatchSize, &steps)
			} else {
				coreWorker(mq, counters, remaining, process, w, r, &steps)
			}
		}(t, seedRng.Split())
	}
	wg.Wait()

	processed := ticket.Load()
	res := Result{
		Steps:     steps.Load(),
		Processed: processed,
		Order:     order[:processed],
	}
	if res.Processed != int64(n) {
		return res, fmt.Errorf("core: parallel run processed %d of %d tasks", res.Processed, n)
	}
	res.ExtraSteps = res.Steps - int64(n)
	return res, nil
}

// coreWorker is the per-label (unbatched) worker loop.
func coreWorker(mq cq.BatchQueue, counters *inflight.Counter, remaining []atomic.Int32,
	process func(label int), w int, r *rng.Xoshiro, steps *atomic.Int64) {
	var localSteps int64
	for {
		label64, prio, ok := mq.Pop(r)
		if !ok {
			if counters.Quiescent() {
				break
			}
			runtime.Gosched()
			continue
		}
		localSteps++
		label := int(label64)
		if remaining[label].Load() > 0 {
			// Blocked: a dependency is unprocessed. Re-insert and count the
			// wasted step. Each label has exactly one live copy, carried by
			// this worker between the pop and the re-push.
			mq.Push(r, label64, prio)
			// Yield so this worker does not hot-spin re-popping the same
			// blocked task while its dependencies are mid-flight.
			runtime.Gosched()
			continue
		}
		process(label)
		counters.Complete(w)
	}
	steps.Add(localSteps)
}

// coreWorkerBatched is the batch-amortized worker loop: labels arrive up to
// batch at a time, and blocked labels accumulate in a local re-insertion
// buffer flushed through PushBatch at the end of every round — one
// coordination round per batch, and no blocked label is ever parked
// locally across rounds. That invariant is what makes the bare Quiescent
// check below safe: the buffer is provably empty whenever PopBatch reports
// the queue empty. A label's single live copy stays with this worker
// between the pop and the flush, preserving the no-duplication invariant.
func coreWorkerBatched(mq cq.BatchQueue, counters *inflight.Counter, remaining []atomic.Int32,
	process func(label int), w int, r *rng.Xoshiro, batch int, steps *atomic.Int64) {
	var localSteps int64
	in := make([]cq.Pair, batch)
	out := make([]cq.Pair, 0, batch)
	for {
		k := mq.PopBatch(r, in)
		if k == 0 {
			if counters.Quiescent() {
				break
			}
			runtime.Gosched()
			continue
		}
		blocked := 0
		for _, p := range in[:k] {
			localSteps++
			label := int(p.Value)
			if remaining[label].Load() > 0 {
				out = append(out, p)
				blocked++
				continue
			}
			process(label)
			counters.Complete(w)
		}
		if len(out) > 0 {
			mq.PushBatch(r, out)
			out = out[:0]
		}
		if blocked == k {
			// The whole batch was blocked: yield so this worker does not
			// hot-spin re-popping the same frontier while its dependencies
			// are mid-flight on other workers.
			runtime.Gosched()
		}
	}
	steps.Add(localSteps)
}
