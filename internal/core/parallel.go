package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"relaxsched/internal/cq"
	"relaxsched/internal/rng"
)

// ParallelOptions configure a ParallelRun.
type ParallelOptions struct {
	// Threads is the number of worker goroutines (>= 1).
	Threads int
	// QueueMultiplier is the relaxation multiplier of the concurrent queue
	// (>= 1; the classic MultiQueue configuration is 2, giving
	// Threads * QueueMultiplier internal queues).
	QueueMultiplier int
	// Backend selects the concurrent queue implementation; the zero value
	// is cq.DefaultBackend (the MultiQueue with 2-choice pops).
	Backend cq.Backend
	// Seed drives the queue randomness.
	Seed uint64
	// OnProcess, if non-nil, is invoked once per task in processing order.
	// Calls are serialized by an internal mutex, so the callback may touch
	// shared algorithm state (e.g. insert into a BST or a mesh) without
	// its own locking; the dependency order is guaranteed.
	OnProcess func(label int)
}

// ParallelRun executes the task set concurrently: worker goroutines pop
// labels from a concurrent relaxed queue (any cq backend), process them
// when all their dependencies are satisfied, and re-insert them otherwise.
// This is the
// concurrent analogue of Algorithm 2 — the regime the paper's Section 4
// transactional model abstracts — with re-insertion playing the role of
// the sequential model's "task stays in the scheduler".
//
// The returned Result counts every pop as a step, so ExtraSteps again
// measures wasted work: pops of tasks that could not be processed yet.
// AdjacentInversions is not measured in the concurrent run (first-return
// order is not well defined across racing workers) and is reported as 0.
func ParallelRun(dag *DAG, opts ParallelOptions) (Result, error) {
	if err := dag.Validate(); err != nil {
		return Result{}, err
	}
	if opts.Threads < 1 {
		return Result{}, fmt.Errorf("core: ParallelRun needs Threads >= 1")
	}
	if opts.QueueMultiplier < 1 {
		return Result{}, fmt.Errorf("core: ParallelRun needs QueueMultiplier >= 1")
	}
	mq, err := cq.New(opts.Backend, opts.Threads, opts.QueueMultiplier)
	if err != nil {
		return Result{}, fmt.Errorf("core: %w", err)
	}
	n := dag.N
	remaining := make([]atomic.Int32, n)
	succs := make([][]int32, n)
	for j := 0; j < n; j++ {
		remaining[j].Store(int32(len(dag.Preds[j])))
		for _, i := range dag.Preds[j] {
			succs[i] = append(succs[i], int32(j))
		}
	}

	seedRng := rng.New(opts.Seed)
	for i := 0; i < n; i++ {
		mq.Push(seedRng, int64(i), int64(i))
	}

	var pending atomic.Int64
	pending.Store(int64(n))
	var steps, processedCount atomic.Int64
	var procMu sync.Mutex // serializes OnProcess and order collection
	order := make([]int32, 0, n)

	var wg sync.WaitGroup
	for t := 0; t < opts.Threads; t++ {
		wg.Add(1)
		go func(r *rng.Xoshiro) {
			defer wg.Done()
			var localSteps int64
			for {
				label64, prio, ok := mq.Pop(r)
				if !ok {
					if pending.Load() == 0 {
						break
					}
					runtime.Gosched()
					continue
				}
				localSteps++
				label := int(label64)
				if remaining[label].Load() > 0 {
					// Blocked: a dependency is unprocessed. Re-insert and
					// count the wasted step. Each label has exactly one
					// live copy, carried by this worker between the pop
					// and the re-push.
					mq.Push(r, label64, prio)
					// Yield so this worker does not hot-spin re-popping the
					// same blocked task while its dependencies are mid-flight.
					runtime.Gosched()
					continue
				}
				procMu.Lock()
				order = append(order, int32(label))
				if opts.OnProcess != nil {
					opts.OnProcess(label)
				}
				procMu.Unlock()
				processedCount.Add(1)
				for _, j := range succs[label] {
					remaining[j].Add(-1)
				}
				pending.Add(-1)
			}
			steps.Add(localSteps)
		}(seedRng.Split())
	}
	wg.Wait()

	res := Result{
		Steps:     steps.Load(),
		Processed: processedCount.Load(),
		Order:     order,
	}
	if res.Processed != int64(n) {
		return res, fmt.Errorf("core: parallel run processed %d of %d tasks", res.Processed, n)
	}
	res.ExtraSteps = res.Steps - int64(n)
	return res, nil
}
