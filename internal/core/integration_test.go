package core_test

// Cross-module integration tests: the parallel incremental engine driving
// the real algorithm state updates (BST construction and Delaunay mesh
// building) through its serialized OnProcess callback.

import (
	"testing"

	"relaxsched/internal/bstsort"
	"relaxsched/internal/core"
	"relaxsched/internal/delaunay"
	"relaxsched/internal/engine"
	"relaxsched/internal/geom"
	"relaxsched/internal/rng"
)

func TestParallelRunRebuildsBST(t *testing.T) {
	r := rng.New(41)
	const n = 3000
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(r.Intn(1 << 30))
	}
	dag, seqTree := bstsort.BuildDAG(keys)
	for _, threads := range []int{2, 8} {
		relTree := bstsort.NewTree(keys)
		res, err := core.ParallelRun(dag, core.ParallelOptions{ExecOptions: engine.ExecOptions{Threads: threads, QueueMultiplier: 2, Seed: uint64(threads)}, OnProcess: func(label int) { relTree.Insert(label) }})
		if err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if res.Processed != n {
			t.Fatalf("threads=%d: processed %d", threads, res.Processed)
		}
		if err := bstsort.SameShape(seqTree, relTree); err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
	}
}

func TestParallelRunRebuildsDelaunayMesh(t *testing.T) {
	r := rng.New(43)
	const n = 400
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: r.Float64(), Y: r.Float64()}
	}
	dag, seqTri, err := delaunay.BuildDAG(pts)
	if err != nil {
		t.Fatal(err)
	}
	relTri := delaunay.New(pts)
	insertErr := error(nil)
	res, err := core.ParallelRun(dag, core.ParallelOptions{ExecOptions: engine.ExecOptions{Threads: 6, QueueMultiplier: 2, Seed: 7}, OnProcess: func(label int) {
		if e := relTri.Insert(label); e != nil && insertErr == nil {
			insertErr = e
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if insertErr != nil {
		t.Fatal(insertErr)
	}
	if res.Processed != n {
		t.Fatalf("processed %d", res.Processed)
	}
	if err := relTri.CheckDelaunay(); err != nil {
		t.Fatal(err)
	}
	if len(relTri.Triangles()) != len(seqTri.Triangles()) {
		t.Fatalf("mesh sizes differ: %d vs %d",
			len(relTri.Triangles()), len(seqTri.Triangles()))
	}
}
