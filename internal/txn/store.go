package txn

import (
	"math"
	"runtime"
	"sync/atomic"
)

// Phase-split tuning. heat is a per-record contention integrator sampled on
// every conflict and commit touching the record: a conflict adds
// heatConflict, a commit subtracts heatDecay, so the value tracks the
// abort rate over a sliding window (an EWMA-style integrator — sustained
// conflict pushes it up fast, steady success bleeds it away). A write-side
// conflict observing heat >= promoteHeat promotes the record to split mode;
// a reader blocked on a split record bumps pressure, and the
// reconcilePressure-th blocked read forces the phase fence (reconcile)
// inline.
const (
	heatConflict      = 16
	heatDecay         = 1
	promoteHeat       = 64
	reconcilePressure = 2
)

// record modes (record.mode).
const (
	modeMerged      = 0 // normal OCC: value lives in val, guarded by word
	modeSplit       = 1 // hot: commutative writes go to per-worker cells
	modeReconciling = 2 // phase fence in progress, single reconciler
)

// record is one versioned KV cell, padded to a cache line.
//
// word is the TL2-style version word: version<<1 | lockbit. Every state
// transition that could invalidate a concurrent observation bumps the
// version under the lock bit — installs by committing writers, but also
// promotion (merged → split) and reconciliation (split → merged). That
// single rule is what makes OCC validation sufficient: an observation
// (read value, deferred split write, or lock anchor) is still valid iff
// word is unchanged, because any completed transition changed it and any
// in-flight transition holds the lock bit.
//
// Split mode: cells points at one delta cell per worker; writers is the
// depositors' latch (a shared counter the reconciler waits out, not a
// mutex); pressure counts readers turned away by the split epoch; heat is
// the contention integrator; splitKind pins the single commutative OpKind
// this split epoch accepts — deltas of one kind merge in any order, mixed
// kinds would not commute with each other.
type record struct {
	word      atomic.Uint64
	val       atomic.Int64
	cells     atomic.Pointer[[]deltaCell]
	heat      atomic.Int32
	mode      atomic.Int32
	writers   atomic.Int32
	pressure  atomic.Int32
	splitKind atomic.Int32
	_         [20]byte
}

// deltaCell is one worker's private delta accumulator for a split record,
// padded so depositors never share a cache line. Only the slot matching the
// epoch's splitKind is used.
type deltaCell struct {
	add atomic.Int64
	max atomic.Int64 // math.MinInt64 when empty
	or  atomic.Int64
	_   [40]byte
}

// store is the sharded in-memory KV table: dense int32 keys striped across
// storeShards shards (interleaved, so adjacent hot keys land on different
// shards and different cache-line neighborhoods).
const (
	storeShards    = 16
	storeShardBits = 4
)

type store struct {
	shards  [storeShards][]record
	keys    int
	workers int
}

func newStore(keys, workers int) *store {
	st := &store{keys: keys, workers: workers}
	for s := 0; s < storeShards; s++ {
		n := keys / storeShards
		if s < keys%storeShards {
			n++
		}
		st.shards[s] = make([]record, n)
	}
	return st
}

func (st *store) rec(key int32) *record {
	return &st.shards[key&(storeShards-1)][key>>storeShardBits]
}

// lock claims the record iff its word still matches the observation —
// locking and write validation are the same CAS.
func (r *record) lock(word uint64) bool {
	return r.word.CompareAndSwap(word, word|1)
}

// unlockBump releases the lock, advancing the version.
func (r *record) unlockBump(word uint64) {
	r.word.Store(((word >> 1) + 1) << 1)
}

// unlockRestore releases the lock without a version bump (abort path: the
// value was not touched, so concurrent observations stay valid).
func (r *record) unlockRestore(word uint64) {
	r.word.Store(word)
}

// conflictHeat records a conflict attributed to this record.
func (r *record) conflictHeat() int32 {
	return r.heat.Add(heatConflict)
}

// commitDecay bleeds contention heat on a successful commit touching the
// record. The floor check races benignly: heat may dip slightly below zero,
// which only delays promotion.
func (r *record) commitDecay() {
	if r.heat.Load() > 0 {
		r.heat.Add(-heatDecay)
	}
}

// tryPromote moves a merged record into split mode for the given write
// kind. It takes the record lock (anchored to a fresh observation, one
// attempt — contended promotion just retries on a later conflict), installs
// the per-worker cells, sets the kind and mode, and releases with a version
// bump so every outstanding observation of the merged epoch is invalidated.
func (r *record) tryPromote(kind OpKind, workers int) bool {
	w := r.word.Load()
	if w&1 != 0 || r.mode.Load() != modeMerged {
		return false
	}
	if !r.lock(w) {
		return false
	}
	if r.cells.Load() == nil {
		cells := make([]deltaCell, workers)
		for i := range cells {
			cells[i].max.Store(math.MinInt64)
		}
		r.cells.Store(&cells)
	}
	r.splitKind.Store(int32(kind))
	r.mode.Store(modeSplit)
	r.unlockBump(w)
	return true
}

// tryReconcile is the phase fence: it moves the record split → merged,
// folding every deposited delta into the value. The mode CAS elects a
// single reconciler; the writers latch is then drained (depositors are
// straight-line stores, so the wait is short — Gosched keeps it polite
// under oversubscription), the cells are swapped empty and merged, and the
// version bump publishes the merged value before mode reopens the record,
// so no reader can observe a merged value under a split-epoch version.
func (r *record) tryReconcile() bool {
	if !r.mode.CompareAndSwap(modeSplit, modeReconciling) {
		return false
	}
	for spin := 0; r.writers.Load() != 0; spin++ {
		if spin > 64 {
			runtime.Gosched()
		}
	}
	cells := *r.cells.Load()
	var add, or int64
	mx := int64(math.MinInt64)
	for i := range cells {
		add += cells[i].add.Swap(0)
		if m := cells[i].max.Swap(math.MinInt64); m > mx {
			mx = m
		}
		or |= cells[i].or.Swap(0)
	}
	v := r.val.Load()
	switch OpKind(r.splitKind.Load()) {
	case OpAdd:
		v += add
	case OpMax:
		if mx > v {
			v = mx
		}
	case OpUnion:
		v |= or
	}
	r.val.Store(v)
	// No writer can hold the lock during a split epoch (their lock CAS is
	// anchored to a pre-promotion word), so word is even here.
	w := r.word.Load()
	r.word.Store(((w >> 1) + 1) << 1)
	r.heat.Store(0)
	r.pressure.Store(0)
	r.mode.Store(modeMerged)
	return true
}

// reconcileAll fences every record still split — the end-of-run sweep that
// folds outstanding deltas in before the final state is read.
func (st *store) reconcileAll() (reconciled int64) {
	for s := range st.shards {
		for i := range st.shards[s] {
			r := &st.shards[s][i]
			if r.mode.Load() == modeSplit && r.tryReconcile() {
				reconciled++
			}
		}
	}
	return reconciled
}

// snapshot copies the final values; call only after the run has quiesced
// and reconcileAll has fenced every split record.
func (st *store) snapshot() []int64 {
	out := make([]int64, st.keys)
	for k := 0; k < st.keys; k++ {
		out[k] = st.rec(int32(k)).val.Load()
	}
	return out
}
