// Package txn simulates the paper's transactional execution model
// (Section 4): n labelled transactions run concurrently under a relaxed
// transactional scheduler, and a transaction aborts iff it executes
// concurrently with a transaction it depends on (conflicts are resolved in
// favor of the higher-priority transaction). Theorem 4.3 bounds the
// expected number of aborts by O(k^2 (C+k)^2 log n), where C bounds the
// interval contention.
//
// The simulator is a discrete-event loop. Up to `workers` transactions run
// at a time, each for a random duration in [1, maxDuration] ticks, so the
// interval contention of a transaction is at most
// C = workers * maxDuration. The scheduler enforces the transactional
// RankBound (a transaction with label l becomes available only once at
// most k uncommitted transactions have smaller labels — equivalently, the
// eligible set is the k+1 smallest uncommitted labels) and Fairness (the
// smallest eligible pending label is started after at most k-1 other
// starts). Within those constraints the picker is adversarial: it always
// starts the largest eligible pending label.
//
// Dependencies are given as a core.DAG; the conflict rule uses direct
// predecessor edges: a transaction aborts if a direct predecessor runs
// concurrently with it, or if a direct predecessor is still uncommitted
// when it finishes (it must then retry, which is the transactional
// analogue of the sequential model's wasted steps).
package txn

import (
	"fmt"

	"relaxsched/internal/core"
	"relaxsched/internal/ostree"
)

// Config parameterizes a transactional simulation.
type Config struct {
	// K is the scheduler's relaxation factor (>= 1).
	K int
	// Workers is the number of concurrently running transactions (>= 1).
	Workers int
	// MaxDuration is the maximum transaction duration in ticks (>= 1).
	// Interval contention is bounded by Workers * MaxDuration.
	MaxDuration int
	// Seed drives the duration randomness.
	Seed uint64
	// MaxStartsFactor aborts the simulation after MaxStartsFactor * N
	// transaction starts (guard against livelock); 0 means 1000.
	MaxStartsFactor int64
}

// Counts is the commit/abort tally shared by the model-level simulator
// (Simulate) and the real OCC executor (ParallelRun). Both report the same
// quantities with the same semantics — an "abort" is an execution attempt
// that did not commit and had to be retried — so model predictions and
// measured runs compare field-for-field.
type Counts struct {
	// Commits is the number of committed transactions (= N on success).
	Commits int64
	// Aborts is the number of aborted executions (Theorem 4.3's quantity
	// in the model; failed OCC attempts in the parallel executor).
	Aborts int64
	// Starts = Commits + Aborts: every execution attempt.
	Starts int64
}

// AbortRatio returns Aborts / Commits, the paper's headline overhead
// metric. It is 0 when nothing committed.
func (c Counts) AbortRatio() float64 {
	if c.Commits == 0 {
		return 0
	}
	return float64(c.Aborts) / float64(c.Commits)
}

// Result summarizes a transactional simulation.
type Result struct {
	Counts
	// Ticks is the simulated makespan.
	Ticks int64
}

type running struct {
	label   int32
	endTick int64
	doomed  bool // a dependency ran concurrently
}

// Simulate runs the transactional model over the dependency DAG.
func Simulate(dag *core.DAG, cfg Config) (Result, error) {
	if cfg.K < 1 || cfg.Workers < 1 || cfg.MaxDuration < 1 {
		return Result{}, fmt.Errorf("txn: invalid config %+v", cfg)
	}
	if err := dag.Validate(); err != nil {
		return Result{}, err
	}
	n := dag.N
	maxStarts := cfg.MaxStartsFactor
	if maxStarts == 0 {
		maxStarts = 1000
	}
	maxStarts *= int64(n)

	// succs for concurrent-descendant checks.
	succs := make([][]int32, n)
	for j := 0; j < n; j++ {
		for _, i := range dag.Preds[j] {
			succs[i] = append(succs[i], int32(j))
		}
	}

	committed := make([]bool, n)
	pending := make([]bool, n) // not running, not committed
	for i := range pending {
		pending[i] = true
	}
	isRunning := make([]int32, n) // index into run slice + 1, 0 = not running
	uncommitted := ostree.New(cfg.Seed ^ 0x7ab)
	for i := 0; i < n; i++ {
		uncommitted.Insert(int64(i), int64(i))
	}

	rnd := newDurationRand(cfg.Seed)
	var run []running
	var res Result
	var now int64
	fairWait := 0 // starts since the smallest eligible pending label was passed over

	smallestEligiblePending := func() int {
		limit := cfg.K + 1
		if l := uncommitted.Len(); l < limit {
			limit = l
		}
		for r := 1; r <= limit; r++ {
			_, id := uncommitted.Kth(r)
			if pending[id] {
				return int(id)
			}
		}
		return -1
	}
	largestEligiblePending := func() int {
		limit := cfg.K + 1
		if l := uncommitted.Len(); l < limit {
			limit = l
		}
		for r := limit; r >= 1; r-- {
			_, id := uncommitted.Kth(r)
			if pending[id] {
				return int(id)
			}
		}
		return -1
	}

	start := func(label int) {
		dur := 1 + rnd.Intn(cfg.MaxDuration)
		// Starting a transaction dooms any running descendant (the
		// descendant is now concurrent with a transaction it depends on;
		// the conflict resolves in favor of this higher-priority one).
		for _, s := range succs[label] {
			if ri := isRunning[s]; ri > 0 {
				run[ri-1].doomed = true
			}
		}
		// Symmetrically, if any direct predecessor is currently running,
		// this transaction is doomed from the start.
		doomed := false
		for _, p := range dag.Preds[label] {
			if isRunning[p] > 0 {
				doomed = true
				break
			}
		}
		run = append(run, running{label: int32(label), endTick: now + int64(dur), doomed: doomed})
		isRunning[label] = int32(len(run))
		pending[label] = false
		res.Starts++
	}

	finish := func(idx int) {
		tr := run[idx]
		label := int(tr.label)
		ok := !tr.doomed
		if ok {
			for _, p := range dag.Preds[label] {
				if !committed[p] {
					ok = false // premature execution; retry
					break
				}
			}
		}
		if ok {
			committed[label] = true
			uncommitted.Delete(int64(label), int64(label))
			res.Commits++
		} else {
			pending[label] = true
			res.Aborts++
		}
		// Remove from run slice (swap with last, fix index map).
		last := len(run) - 1
		isRunning[label] = 0
		if idx != last {
			run[idx] = run[last]
			isRunning[run[idx].label] = int32(idx + 1)
		}
		run = run[:last]
	}

	for res.Commits < int64(n) {
		// Fill free worker slots.
		for len(run) < cfg.Workers {
			smallest := smallestEligiblePending()
			if smallest < 0 {
				break // nothing eligible and pending
			}
			pick := largestEligiblePending()
			if fairWait >= cfg.K-1 {
				pick = smallest
			}
			if pick != smallest {
				fairWait++
			} else {
				fairWait = 0
			}
			start(pick)
			if res.Starts > maxStarts {
				return res, fmt.Errorf("txn: exceeded %d starts; livelock?", maxStarts)
			}
		}
		if len(run) == 0 {
			return res, fmt.Errorf("txn: deadlock with %d commits of %d", res.Commits, n)
		}
		// Advance time to the next completion and finish everything due.
		next := run[0].endTick
		for _, tr := range run[1:] {
			if tr.endTick < next {
				next = tr.endTick
			}
		}
		now = next
		for idx := 0; idx < len(run); {
			if run[idx].endTick <= now {
				finish(idx) // finish swaps in a new element at idx
			} else {
				idx++
			}
		}
	}
	res.Ticks = now
	return res, nil
}

// durationRand is a minimal xorshift to avoid importing rng here and
// keep the simulator's randomness isolated from workload randomness.
type durationRand struct{ s uint64 }

func newDurationRand(seed uint64) *durationRand {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &durationRand{s: seed}
}

func (d *durationRand) Intn(n int) int {
	d.s ^= d.s << 13
	d.s ^= d.s >> 7
	d.s ^= d.s << 17
	return int(d.s % uint64(n))
}
