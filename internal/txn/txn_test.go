package txn

import (
	"math"
	"testing"
	"testing/quick"

	"relaxsched/internal/bstsort"
	"relaxsched/internal/core"
	"relaxsched/internal/rng"
)

func chainDAG(n int) *core.DAG {
	d := core.NewDAG(n)
	for j := 1; j < n; j++ {
		d.AddDep(j-1, j)
	}
	return d
}

func randomKeys(n int, seed uint64) []int64 {
	r := rng.New(seed)
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(r.Intn(1 << 30))
	}
	return keys
}

func TestAllCommitNoDeps(t *testing.T) {
	res, err := Simulate(core.NewDAG(500), Config{K: 8, Workers: 4, MaxDuration: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits != 500 {
		t.Fatalf("commits = %d", res.Commits)
	}
	if res.Aborts != 0 {
		t.Fatalf("aborts = %d on an independent task set", res.Aborts)
	}
	if res.Starts != res.Commits+res.Aborts {
		t.Fatal("starts accounting wrong")
	}
}

func TestSerialWorkerNoConcurrencyAborts(t *testing.T) {
	// One worker, k=1 (exact): execution is fully serial in label order,
	// so nothing can ever run concurrently with a dependency.
	dag, _ := bstsort.BuildDAG(randomKeys(300, 2))
	res, err := Simulate(dag, Config{K: 1, Workers: 1, MaxDuration: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborts != 0 {
		t.Fatalf("serial exact execution aborted %d times", res.Aborts)
	}
	if res.Commits != 300 {
		t.Fatalf("commits = %d", res.Commits)
	}
}

func TestChainCausesAborts(t *testing.T) {
	// A chain with relaxed concurrent execution must see conflicts.
	res, err := Simulate(chainDAG(200), Config{K: 4, Workers: 4, MaxDuration: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits != 200 {
		t.Fatalf("commits = %d", res.Commits)
	}
	if res.Aborts == 0 {
		t.Fatal("chain under concurrent relaxed execution produced no aborts")
	}
}

func TestBSTAbortsLogarithmicShape(t *testing.T) {
	// Theorem 4.3: aborts = O(k^2 (C+k)^2 log n). For fixed k, C the
	// aborts should grow like log n, i.e. far sublinearly. Compare n and
	// 8n: abort growth should be well under 8x (allow 4x = log-ish slack).
	cfg := Config{K: 4, Workers: 4, MaxDuration: 2, Seed: 7}
	small, err := Simulate(mustDAG(1000, 11), cfg)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Simulate(mustDAG(8000, 13), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if small.Aborts == 0 {
		t.Skip("no aborts at n=1000; nothing to compare")
	}
	growth := float64(big.Aborts) / float64(small.Aborts)
	if growth > 6 {
		t.Fatalf("aborts grew %.1fx for 8x tasks (small=%d big=%d); not logarithmic",
			growth, small.Aborts, big.Aborts)
	}
	// Sanity on the constant too: aborts should be a small multiple of
	// k^2 (C+k)^2 log n.
	k := float64(cfg.K)
	c := float64(cfg.Workers * cfg.MaxDuration)
	bound := k * k * (c + k) * (c + k) * math.Log(8000)
	if float64(big.Aborts) > bound {
		t.Fatalf("aborts %d exceed theorem envelope %.0f", big.Aborts, bound)
	}
}

func mustDAG(n int, seed uint64) *core.DAG {
	dag, _ := bstsort.BuildDAG(randomKeys(n, seed))
	return dag
}

func TestInvalidConfigs(t *testing.T) {
	dag := core.NewDAG(10)
	for _, cfg := range []Config{
		{K: 0, Workers: 1, MaxDuration: 1},
		{K: 1, Workers: 0, MaxDuration: 1},
		{K: 1, Workers: 1, MaxDuration: 0},
	} {
		if _, err := Simulate(dag, cfg); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
}

func TestInvalidDAGRejected(t *testing.T) {
	dag := core.NewDAG(3)
	dag.Preds[1] = append(dag.Preds[1], 2)
	if _, err := Simulate(dag, Config{K: 1, Workers: 1, MaxDuration: 1}); err == nil {
		t.Fatal("invalid DAG accepted")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	dag := mustDAG(400, 21)
	cfg := Config{K: 4, Workers: 3, MaxDuration: 3, Seed: 9}
	a, err := Simulate(dag, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(dag, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed, different results: %+v vs %+v", a, b)
	}
}

func TestMakespanShrinksWithWorkers(t *testing.T) {
	dag := core.NewDAG(2000) // independent tasks parallelize perfectly
	cfg1 := Config{K: 16, Workers: 1, MaxDuration: 3, Seed: 2}
	cfg8 := Config{K: 16, Workers: 8, MaxDuration: 3, Seed: 2}
	r1, err := Simulate(dag, cfg1)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Simulate(dag, cfg8)
	if err != nil {
		t.Fatal(err)
	}
	if float64(r8.Ticks) > float64(r1.Ticks)/4 {
		t.Fatalf("8 workers not faster: %d vs %d ticks", r8.Ticks, r1.Ticks)
	}
}

// Property: every simulation commits all transactions, never loses any,
// and Starts = Commits + Aborts, across random DAGs and configs.
func TestSimulationCompletesProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 20 + r.Intn(300)
		var dag *core.DAG
		if r.Intn(2) == 0 {
			dag, _ = bstsort.BuildDAG(randomKeys(n, seed))
		} else {
			dag = core.NewDAG(n)
			for j := 1; j < n; j++ {
				if r.Intn(3) > 0 {
					dag.AddDep(r.Intn(j), j)
				}
			}
		}
		cfg := Config{
			K:           1 + r.Intn(8),
			Workers:     1 + r.Intn(6),
			MaxDuration: 1 + r.Intn(4),
			Seed:        seed,
		}
		res, err := Simulate(dag, cfg)
		return err == nil &&
			res.Commits == int64(n) &&
			res.Starts == res.Commits+res.Aborts &&
			res.Ticks > 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAbortRatio(t *testing.T) {
	r := Result{Counts: Counts{Commits: 100, Aborts: 25}}
	if r.AbortRatio() != 0.25 {
		t.Fatalf("ratio = %f", r.AbortRatio())
	}
	if (Result{}).AbortRatio() != 0 {
		t.Fatal("empty ratio")
	}
}

func BenchmarkSimulateBST(b *testing.B) {
	dag := mustDAG(5000, 1)
	cfg := Config{K: 8, Workers: 8, MaxDuration: 2, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(dag, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
