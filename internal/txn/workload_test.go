package txn

import (
	"math"
	"testing"
)

// TestZipfChiSquared draws a large sample from the key generator at each
// benchmark skew and runs a chi-squared goodness-of-fit test against the
// analytic Zipf masses. Keys in the tail are pooled into one bin once the
// expected count per key drops below 5 (the standard applicability rule).
// The generator is deterministic, so this is a fixed computation with a
// generous quantile bound, not a flaky statistical test.
func TestZipfChiSquared(t *testing.T) {
	const keys, draws = 512, 200000
	for _, skew := range []float64{0.6, 0.99, 1.2} {
		g, err := NewGen(WorkloadSpec{
			Txns: draws, Keys: keys, Skew: skew, OpsPerTxn: 1, ReadFrac: 0.5,
			Seed: uint64(math.Float64bits(skew)),
		})
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int64, keys)
		var buf [MaxOps]Op
		for id := 0; id < draws; id++ {
			ops := g.Ops(int64(id), buf[:])
			counts[ops[0].Key]++
		}
		// Expected per-key mass from the same cumulative table the
		// generator samples; the test checks the sampler (Float64 + binary
		// search) against its own target distribution.
		expect := make([]float64, keys)
		prev := 0.0
		for i := 0; i < keys; i++ {
			expect[i] = (g.cum[i] - prev) * draws
			prev = g.cum[i]
		}
		var chi2 float64
		df := -1 // bins - 1
		var poolObs int64
		var poolExp float64
		for i := 0; i < keys; i++ {
			if expect[i] >= 5 {
				d := float64(counts[i]) - expect[i]
				chi2 += d * d / expect[i]
				df++
				continue
			}
			poolObs += counts[i]
			poolExp += expect[i]
		}
		if poolExp > 0 {
			d := float64(poolObs) - poolExp
			chi2 += d * d / poolExp
			df++
		}
		if df < 10 {
			t.Fatalf("skew %v: only %d degrees of freedom, binning broken", skew, df+1)
		}
		// Far-tail bound: chi-squared mean is df, variance 2·df; df + 6
		// standard deviations is far beyond the 99.9th percentile for the
		// df here, so a failure means a generator bug, not bad luck.
		limit := float64(df) + 6*math.Sqrt(2*float64(df))
		if chi2 > limit {
			t.Errorf("skew %v: chi2 = %.1f over %d df exceeds %.1f — key distribution is off", skew, chi2, df, limit)
		}
	}
}

// TestGenDeterministicAndDistinctKeys checks the random-access contract
// (same id, same ops) and the per-transaction distinct-key invariant under
// heavy skew, where redraw collisions are the common case.
func TestGenDeterministicAndDistinctKeys(t *testing.T) {
	g, err := NewGen(WorkloadSpec{Txns: 5000, Keys: 32, Skew: 1.2, OpsPerTxn: 8, ReadFrac: 0.3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	var a, b [MaxOps]Op
	for id := int64(0); id < 5000; id++ {
		ops := g.Ops(id, a[:])
		again := g.Ops(id, b[:])
		if len(ops) != 8 || len(again) != 8 {
			t.Fatalf("txn %d: got %d/%d ops, want 8", id, len(ops), len(again))
		}
		seen := map[int32]bool{}
		for i, op := range ops {
			if op != again[i] {
				t.Fatalf("txn %d: op %d not deterministic: %+v vs %+v", id, i, op, again[i])
			}
			if seen[op.Key] {
				t.Fatalf("txn %d: duplicate key %d", id, op.Key)
			}
			seen[op.Key] = true
			if op.Key < 0 || op.Key >= 32 {
				t.Fatalf("txn %d: key %d out of range", id, op.Key)
			}
		}
	}
}

func TestWorkloadSpecValidate(t *testing.T) {
	good := WorkloadSpec{Txns: 10, Keys: 10, Skew: 0.5, OpsPerTxn: 2, ReadFrac: 0.5}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []WorkloadSpec{
		{Txns: 0, Keys: 10, OpsPerTxn: 1},
		{Txns: 1, Keys: 0, OpsPerTxn: 1},
		{Txns: 1, Keys: 10, OpsPerTxn: 0},
		{Txns: 1, Keys: 10, OpsPerTxn: MaxOps + 1},
		{Txns: 1, Keys: 2, OpsPerTxn: 3},
		{Txns: 1, Keys: 10, OpsPerTxn: 1, ReadFrac: 1.5},
		{Txns: 1, Keys: 10, OpsPerTxn: 1, Skew: -1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: %+v validated", i, s)
		}
	}
}

// TestSimulateSpecOracle runs the model over generated conflict DAGs: all
// transactions must commit, and raising the skew (more conflicts through
// the hot keys) must not lower the model's abort count at fixed scheduler
// parameters.
func TestSimulateSpecOracle(t *testing.T) {
	cfg := Config{K: 8, Workers: 4, MaxDuration: 3, Seed: 7}
	prev := int64(-1)
	for _, skew := range []float64{0, 0.99} {
		spec := WorkloadSpec{Txns: 2000, Keys: 64, Skew: skew, OpsPerTxn: 4, ReadFrac: 0.5, Seed: 11}
		res, err := SimulateSpec(spec, cfg)
		if err != nil {
			t.Fatalf("skew %v: %v", skew, err)
		}
		if res.Commits != 2000 {
			t.Fatalf("skew %v: commits = %d", skew, res.Commits)
		}
		if res.Starts != res.Commits+res.Aborts {
			t.Fatalf("skew %v: starts identity broken: %+v", skew, res.Counts)
		}
		if prev >= 0 && res.Aborts < prev {
			t.Errorf("skew %v: aborts %d fell below uniform's %d — conflict DAG is not denser under skew", skew, res.Aborts, prev)
		}
		prev = res.Aborts
	}
}

// TestConflictDAGEdges spot-checks the conflict rule on a hand-built
// two-key stream via a tiny spec: with one key and all writes, the DAG is
// a chain (each txn depends on the previous writer).
func TestConflictDAGEdges(t *testing.T) {
	dag, err := ConflictDAG(WorkloadSpec{Txns: 50, Keys: 1, Skew: 0, OpsPerTxn: 1, ReadFrac: 0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j < 50; j++ {
		if len(dag.Preds[j]) != 1 || int(dag.Preds[j][0]) != j-1 {
			t.Fatalf("txn %d preds = %v, want [%d]", j, dag.Preds[j], j-1)
		}
	}
}
