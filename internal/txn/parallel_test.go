package txn

import (
	"testing"

	"relaxsched/internal/cq"
	"relaxsched/internal/engine"
)

func execOpts(backend cq.Backend, threads, batch int, seed uint64) engine.ExecOptions {
	return engine.ExecOptions{
		Threads:         threads,
		QueueMultiplier: 2,
		Backend:         backend,
		BatchSize:       batch,
		Seed:            seed,
	}
}

// TestParallelRunAllBackends commits the full stream and certifies it on
// every registered backend, batched and unbatched, at a contended skew.
func TestParallelRunAllBackends(t *testing.T) {
	spec := WorkloadSpec{Txns: 4000, Keys: 128, Skew: 0.99, OpsPerTxn: 4, ReadFrac: 0.5, Seed: 9}
	for _, backend := range cq.Backends() {
		for _, batch := range []int{0, 16} {
			res, err := ParallelRun(spec, ParallelOptions{ExecOptions: execOpts(backend, 4, batch, 21)})
			if err != nil {
				t.Fatalf("%s/batch%d: %v", backend, batch, err)
			}
			if res.Commits != int64(spec.Txns) {
				t.Fatalf("%s/batch%d: commits = %d, want %d", backend, batch, res.Commits, spec.Txns)
			}
			if res.Starts != res.Commits+res.Aborts {
				t.Fatalf("%s/batch%d: starts identity broken: %+v", backend, batch, res.Counts)
			}
		}
	}
}

// TestParallelRunProducers streams the transactions through engine
// producers (the open-system arrival mode) instead of the frontier.
func TestParallelRunProducers(t *testing.T) {
	spec := WorkloadSpec{Txns: 3000, Keys: 64, Skew: 0.99, OpsPerTxn: 3, ReadFrac: 0.4, Seed: 5}
	res, err := ParallelRun(spec, ParallelOptions{
		ExecOptions: execOpts(cq.MultiQueueBackend, 4, 8, 33),
		Producers:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits != int64(spec.Txns) {
		t.Fatalf("commits = %d, want %d", res.Commits, spec.Txns)
	}
}

// TestSplitPathCertifies forces a hot record into split mode up front and
// runs an all-write stream over it: the commutative deltas must take the
// split path (deposits observed) and the ticket-order replay must still
// certify — the phase-fence reconciliation cannot lose or reorder deltas
// in any observable way.
func TestSplitPathCertifies(t *testing.T) {
	spec := WorkloadSpec{Txns: 6000, Keys: 16, Skew: 1.2, OpsPerTxn: 2, ReadFrac: 0, Seed: 17}
	wl, err := NewWorkload(spec, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if !wl.st.rec(0).tryPromote(OpAdd, 4) {
		t.Fatal("could not promote the hot record")
	}
	st, err := engine.Run(wl, engine.Options{ExecOptions: execOpts(cq.MultiQueueBackend, 4, 0, 7)})
	if err != nil {
		t.Fatal(err)
	}
	if err := wl.Certify(); err != nil {
		t.Fatal(err)
	}
	if wl.deposits.n.Load() == 0 {
		t.Error("no split deposits despite a promoted hot record under an all-write stream")
	}
	if st.Executed != int64(spec.Txns) {
		t.Fatalf("executed %d of %d", st.Executed, spec.Txns)
	}
}

// TestContentionPromotes drives the detector deterministically: the hot
// record's contention integrator is charged to the threshold (as a burst
// of conflicts would), and the next commutative writer must flip it to
// split mode, deltas must take the split path, every split record must be
// fenced by the end-of-run sweep, and the run must certify. (Organic
// conflicts can't be relied on in a unit test — on a single-core runner
// the OCC windows essentially never overlap.)
func TestContentionPromotes(t *testing.T) {
	spec := WorkloadSpec{Txns: 20000, Keys: 4, Skew: 1.2, OpsPerTxn: 1, ReadFrac: 0, Seed: 29}
	wl, err := NewWorkload(spec, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < promoteHeat/heatConflict; i++ {
		wl.st.rec(0).conflictHeat()
	}
	st, err := engine.Run(wl, engine.Options{ExecOptions: execOpts(cq.MultiQueueBackend, 4, 0, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if err := wl.Certify(); err != nil {
		t.Fatal(err)
	}
	if st.Executed != int64(spec.Txns) {
		t.Fatalf("executed %d of %d", st.Executed, spec.Txns)
	}
	if got := wl.promotions.n.Load(); got == 0 {
		t.Error("a write on a record at threshold heat never promoted it")
	}
	if wl.deposits.n.Load() == 0 {
		t.Error("record promoted but no delta ever took the split path")
	}
	if wl.reconciles.n.Load() == 0 {
		t.Error("split record never fenced — the end-of-run sweep is broken")
	}
	if mode := wl.st.rec(0).mode.Load(); mode != modeMerged {
		t.Errorf("hot record left in mode %d after certification", mode)
	}
}

// TestPressureForcesFence promotes a record, then runs a read-bearing
// stream: blocked readers must drive the pressure counter to the fence
// threshold and reconcile the record inline — mid-run, not just at the
// end-of-run sweep — and everything must still certify.
func TestPressureForcesFence(t *testing.T) {
	spec := WorkloadSpec{Txns: 10000, Keys: 4, Skew: 1.2, OpsPerTxn: 1, ReadFrac: 0.5, Seed: 31}
	wl, err := NewWorkload(spec, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if !wl.st.rec(0).tryPromote(OpAdd, 4) {
		t.Fatal("could not promote the hot record")
	}
	if _, err := engine.Run(wl, engine.Options{ExecOptions: execOpts(cq.MultiQueueBackend, 4, 0, 13)}); err != nil {
		t.Fatal(err)
	}
	// Snapshot the fence count before Certify runs the end-of-run sweep:
	// the mid-run, reader-driven fences are what this test is about.
	midRun := wl.reconciles.n.Load()
	if err := wl.Certify(); err != nil {
		t.Fatal(err)
	}
	if midRun == 0 {
		t.Error("readers never forced a phase fence: every read of the split record would have blocked to the end of the run")
	}
}

// TestQuarantineAccounting caps OCC retries low under heavy contention:
// whatever the engine gives up on must be counted, the rest must commit,
// and the commit log must still certify.
func TestQuarantineAccounting(t *testing.T) {
	spec := WorkloadSpec{Txns: 5000, Keys: 4, Skew: 1.2, OpsPerTxn: 2, ReadFrac: 0.5, Seed: 41}
	opts := ParallelOptions{ExecOptions: execOpts(cq.MultiQueueBackend, 4, 0, 19)}
	opts.MaxBlockedRetries = 1
	res, err := ParallelRun(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits+res.Quarantined != int64(spec.Txns) {
		t.Fatalf("commits %d + quarantined %d != %d", res.Commits, res.Quarantined, spec.Txns)
	}
}

// TestExactBackendBaseline runs the strict-order control arm: the exact
// backend must produce a correct, certified run too (it is the k = 1
// scheduler, not a special case).
func TestExactBackendBaseline(t *testing.T) {
	spec := WorkloadSpec{Txns: 3000, Keys: 64, Skew: 1.2, OpsPerTxn: 3, ReadFrac: 0.3, Seed: 55}
	res, err := ParallelRun(spec, ParallelOptions{ExecOptions: execOpts(cq.ExactBackend, 4, 0, 61)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits != int64(spec.Txns) {
		t.Fatalf("commits = %d, want %d", res.Commits, spec.Txns)
	}
}

// TestParallelRunValidation covers the option guards.
func TestParallelRunValidation(t *testing.T) {
	spec := WorkloadSpec{Txns: 10, Keys: 10, OpsPerTxn: 1, ReadFrac: 0.5}
	if _, err := ParallelRun(spec, ParallelOptions{}); err == nil {
		t.Error("Threads = 0 accepted")
	}
	bad := ParallelOptions{ExecOptions: execOpts(cq.MultiQueueBackend, 2, 0, 1)}
	bad.Producers = -1
	if _, err := ParallelRun(spec, bad); err == nil {
		t.Error("negative Producers accepted")
	}
	if _, err := ParallelRun(WorkloadSpec{}, ParallelOptions{ExecOptions: execOpts(cq.MultiQueueBackend, 2, 0, 1)}); err == nil {
		t.Error("invalid spec accepted")
	}
}
