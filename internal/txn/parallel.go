package txn

import (
	"fmt"
	"sort"
	"sync/atomic"

	"relaxsched/internal/engine"
)

// This file is the real transactional executor: the sequential model's
// workload run for keeps over the relaxed-execution engine. Transactions
// are the engine's tasks (value = label = priority), TryExecute is one OCC
// attempt, and a validation failure reports Blocked so the engine's
// re-insertion loop — bounded by ExecOptions.MaxBlockedRetries — is the
// retry policy, exactly the role the relaxed scheduler plays in the
// paper's Section 4 model.
//
// The concurrency protocol, in one place:
//
//  1. Read phase: observe (value, version word) per operation. Reads and
//     merged-mode writes record the word; writes to a split record of the
//     matching kind become deferred deposits; anything else (locked
//     record, split record of another kind, reconcile in flight) aborts
//     the attempt.
//  2. Lock the merged-mode write set in key order. The lock CAS is
//     anchored to the observed word, so locking *is* write validation.
//  3. Claim the commit ticket. Because every lock is held across the
//     ticket claim and the install, and every read/split observation is
//     re-validated after the claim, ticket order is a valid serial order —
//     the certification replay below checks exactly that.
//  4. Validate reads and split observations (word unchanged).
//  5. Latch split records (writers counter), re-checking the epoch; then
//     deposit the commutative deltas into this worker's cells and release
//     the latches. Deposits land before any install so a latch failure
//     still aborts cleanly.
//  6. Install merged writes and release locks with a version bump; log
//     the commit (ticket, label, observed read values) to the worker's
//     commit log.
//
// Hot records are promoted to split mode by the contention integrator
// (record.heat) and demoted by the phase fence (record.tryReconcile),
// which blocked readers trigger via the pressure counter — Doppel's
// phased reconciliation with the phase change driven by contention
// instead of a global clock.

// clsRead/clsWrite/clsSplit classify one observed operation.
const (
	clsRead int8 = iota
	clsWrite
	clsSplit
)

// observation is the validation anchor for one operation of one attempt.
type observation struct {
	word uint64
	val  int64
	cls  int8
}

// commitRec is one committed transaction in a worker's commit log: enough
// to replay the run in ticket order and re-check every read.
type commitRec struct {
	ticket int64
	id     int64
	reads  [MaxOps]int64
}

// workerLog is a per-worker commit log, padded so append bookkeeping never
// shares a cache line across workers.
type workerLog struct {
	recs []commitRec
	_    [104]byte
}

// padCounter is a cache-line-isolated atomic counter.
type padCounter struct {
	n atomic.Int64
	_ [56]byte
}

// Workload is the transactional engine workload: a sharded versioned KV
// store plus the deterministic transaction stream of a WorkloadSpec. It
// implements engine.Workload; run it through ParallelRun, or directly via
// engine.Run/engine.Start (the conformance and chaos suites do) and call
// Certify afterwards.
type Workload struct {
	gen     *Gen
	st      *store
	txns    []txnDesc
	workers int
	seeded  bool

	logs []workerLog

	ticket     padCounter
	promotions padCounter
	reconciles padCounter
	deposits   padCounter
}

// txnDesc is one pregenerated transaction.
type txnDesc struct {
	ops [MaxOps]Op
	n   int32
}

// NewWorkload pregenerates the spec's transaction stream and builds the
// store. workers must cover every engine worker index that will run the
// workload (the engine pool size); seeded selects the closed-world mode
// where Frontier emits every transaction up front — with seeded false the
// stream arrives through engine Producer handles instead.
func NewWorkload(spec WorkloadSpec, workers int, seeded bool) (*Workload, error) {
	g, err := NewGen(spec)
	if err != nil {
		return nil, err
	}
	if workers < 1 {
		return nil, fmt.Errorf("txn: workers = %d, want >= 1", workers)
	}
	w := &Workload{
		gen:     g,
		st:      newStore(spec.Keys, workers),
		txns:    make([]txnDesc, spec.Txns),
		workers: workers,
		seeded:  seeded,
		logs:    make([]workerLog, workers),
	}
	for id := range w.txns {
		d := &w.txns[id]
		ops := g.Ops(int64(id), d.ops[:0])
		d.n = int32(len(ops))
	}
	return w, nil
}

// Frontier seeds the closed world: every transaction at priority = label.
func (w *Workload) Frontier(emit func(value, priority int64)) {
	if !w.seeded {
		return
	}
	for id := range w.txns {
		emit(int64(id), int64(id))
	}
}

// TryExecute runs one OCC attempt of transaction value. Executed means
// committed; Blocked means the attempt aborted (conflict, split-epoch
// mismatch or phase fence) and the engine should retry it.
func (w *Workload) TryExecute(ctx *engine.Ctx, value, _ int64) engine.Status {
	d := &w.txns[value]
	n := int(d.n)
	var ob [MaxOps]observation

	// 1: observe.
	for i := 0; i < n; i++ {
		op := d.ops[i]
		r := w.st.rec(op.Key)
		word := r.word.Load()
		if word&1 != 0 {
			if op.Kind != OpRead {
				return w.writeConflict(r, op.Kind)
			}
			r.conflictHeat()
			return engine.Blocked
		}
		mode := r.mode.Load()
		if op.Kind == OpRead {
			if mode != modeMerged {
				return w.blockedSplit(r)
			}
			v := r.val.Load()
			if r.word.Load() != word {
				r.conflictHeat()
				return engine.Blocked
			}
			ob[i] = observation{word: word, val: v, cls: clsRead}
			continue
		}
		switch {
		case mode == modeMerged:
			// Proactive promotion: once the integrator marks the record
			// hot, the next commutative writer to come along flips it to
			// split mode — promotion doesn't wait for the writer that
			// crosses the threshold to itself collide.
			if r.heat.Load() >= promoteHeat && r.tryPromote(op.Kind, w.workers) {
				w.promotions.n.Add(1)
				return engine.Blocked
			}
			ob[i] = observation{word: word, cls: clsWrite}
		case mode == modeSplit && r.splitKind.Load() == int32(op.Kind):
			// Re-load pairs (word, mode): promotion bumps the word, so an
			// unchanged word pins the split epoch the mode belongs to.
			if r.word.Load() != word {
				r.conflictHeat()
				return engine.Blocked
			}
			ob[i] = observation{word: word, cls: clsSplit}
		default:
			// Reconciling, or split for a non-commuting kind: wait the
			// epoch out like a reader would.
			return w.blockedSplit(r)
		}
	}

	// 2: lock merged writes in key order.
	var order [MaxOps]int8
	nw := 0
	for i := 0; i < n; i++ {
		if ob[i].cls == clsWrite {
			order[nw] = int8(i)
			nw++
		}
	}
	for a := 1; a < nw; a++ {
		for b := a; b > 0 && d.ops[order[b]].Key < d.ops[order[b-1]].Key; b-- {
			order[b], order[b-1] = order[b-1], order[b]
		}
	}
	for li := 0; li < nw; li++ {
		i := order[li]
		op := d.ops[i]
		r := w.st.rec(op.Key)
		if !r.lock(ob[i].word) {
			w.unlockPrefix(d, &ob, order[:li])
			return w.writeConflict(r, op.Kind)
		}
	}

	// 3: ticket. Claimed after the locks and before validation, so the
	// lock spans of conflicting committers always order their tickets.
	ticket := w.ticket.n.Add(1) - 1

	// 4: validate.
	for i := 0; i < n; i++ {
		switch ob[i].cls {
		case clsRead:
			r := w.st.rec(d.ops[i].Key)
			if r.word.Load() != ob[i].word {
				w.unlockPrefix(d, &ob, order[:nw])
				r.conflictHeat()
				return engine.Blocked
			}
		case clsSplit:
			r := w.st.rec(d.ops[i].Key)
			if r.word.Load() != ob[i].word || r.mode.Load() != modeSplit {
				w.unlockPrefix(d, &ob, order[:nw])
				r.conflictHeat()
				return engine.Blocked
			}
		}
	}

	// 5: latch and deposit split writes. All latches are taken before any
	// delta lands so a failed re-check aborts with nothing to undo; the
	// latch holds the phase fence open (tryReconcile drains writers), so
	// every deposit is collected by the reconcile that ends this epoch.
	var latched [MaxOps]int8
	nl := 0
	for i := 0; i < n; i++ {
		if ob[i].cls != clsSplit {
			continue
		}
		r := w.st.rec(d.ops[i].Key)
		r.writers.Add(1)
		if r.word.Load() != ob[i].word || r.mode.Load() != modeSplit {
			r.writers.Add(-1)
			for j := 0; j < nl; j++ {
				w.st.rec(d.ops[latched[j]].Key).writers.Add(-1)
			}
			w.unlockPrefix(d, &ob, order[:nw])
			return w.blockedSplit(r)
		}
		latched[nl] = int8(i)
		nl++
	}
	for j := 0; j < nl; j++ {
		i := latched[j]
		op := d.ops[i]
		r := w.st.rec(op.Key)
		cell := &(*r.cells.Load())[ctx.Worker]
		switch op.Kind {
		case OpAdd:
			cell.add.Add(op.Arg)
		case OpMax:
			atomicMax(&cell.max, op.Arg)
		case OpUnion:
			cell.or.Or(op.Arg)
		}
		r.writers.Add(-1)
	}
	if nl > 0 {
		w.deposits.n.Add(int64(nl))
	}

	// 6: install merged writes, release locks, log the commit.
	for li := 0; li < nw; li++ {
		i := order[li]
		op := d.ops[i]
		r := w.st.rec(op.Key)
		r.val.Store(op.apply(r.val.Load()))
		r.unlockBump(ob[i].word)
	}
	for i := 0; i < n; i++ {
		w.st.rec(d.ops[i].Key).commitDecay()
	}
	lg := &w.logs[ctx.Worker]
	cr := commitRec{ticket: ticket, id: value}
	for i := 0; i < n; i++ {
		if ob[i].cls == clsRead {
			cr.reads[i] = ob[i].val
		}
	}
	lg.recs = append(lg.recs, cr)
	return engine.Executed
}

// unlockPrefix releases already-claimed write locks on the abort path,
// restoring the pre-lock words (no version bump: nothing was installed).
func (w *Workload) unlockPrefix(d *txnDesc, ob *[MaxOps]observation, prefix []int8) {
	for _, i := range prefix {
		w.st.rec(d.ops[i].Key).unlockRestore(ob[i].word)
	}
}

// writeConflict books a write-side conflict on r and promotes it to split
// mode once the contention integrator crosses the threshold (only
// commutative write kinds are splittable; reads never promote).
func (w *Workload) writeConflict(r *record, kind OpKind) engine.Status {
	if r.conflictHeat() >= promoteHeat && kind != OpRead {
		if r.tryPromote(kind, w.workers) {
			w.promotions.n.Add(1)
		}
	}
	return engine.Blocked
}

// blockedSplit books an attempt turned away by a split epoch. Enough
// pressure forces the phase fence inline, so blocked readers bound how
// long a record can stay split.
func (w *Workload) blockedSplit(r *record) engine.Status {
	if r.pressure.Add(1) >= reconcilePressure && r.mode.Load() == modeSplit {
		if r.tryReconcile() {
			w.reconciles.n.Add(1)
		}
	}
	return engine.Blocked
}

// atomicMax raises *a to at least v. The CAS retry is monotone: it only
// repeats when another depositor raised the cell, so it converges in at
// most one step per concurrent writer.
func atomicMax(a *atomic.Int64, v int64) {
	//relax:allow spinbound: monotone CAS-max — each retry means another writer raised the cell, and once cur >= v the loop exits, so total retries are bounded by the number of concurrent depositors
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Certify replays the merged commit log in ticket order against a fresh
// store and fails on the first serializability violation: a logged read
// that disagrees with the replay, a transaction committed twice, or a
// final store state that diverges from the replayed one. Call it only
// after the run has quiesced; it fences any still-split records first.
func (w *Workload) Certify() error {
	w.reconciles.n.Add(w.st.reconcileAll())
	var all []commitRec
	for i := range w.logs {
		all = append(all, w.logs[i].recs...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ticket < all[j].ticket })
	seen := make([]bool, len(w.txns))
	replay := make([]int64, w.gen.spec.Keys)
	for _, cr := range all {
		if seen[cr.id] {
			return fmt.Errorf("txn: transaction %d committed twice", cr.id)
		}
		seen[cr.id] = true
		d := &w.txns[cr.id]
		for i := 0; i < int(d.n); i++ {
			op := d.ops[i]
			if op.Kind == OpRead {
				if replay[op.Key] != cr.reads[i] {
					return fmt.Errorf("txn: serializability violation: txn %d (ticket %d) observed key %d = %d, ticket-order replay gives %d",
						cr.id, cr.ticket, op.Key, cr.reads[i], replay[op.Key])
				}
				continue
			}
			replay[op.Key] = op.apply(replay[op.Key])
		}
	}
	final := w.st.snapshot()
	for k := range final {
		if final[k] != replay[k] {
			return fmt.Errorf("txn: final state diverges from ticket-order replay at key %d: store %d, replay %d",
				k, final[k], replay[k])
		}
	}
	return nil
}

// Commits reports the committed-transaction count (log length).
func (w *Workload) Commits() int64 {
	var n int64
	for i := range w.logs {
		n += int64(len(w.logs[i].recs))
	}
	return n
}

// ParallelOptions configure ParallelRun.
type ParallelOptions struct {
	// ExecOptions are the shared engine knobs: queue backend and
	// relaxation multiplier, worker count, batching, seeding, deadline and
	// the Blocked-retry cap (which here bounds OCC retries per
	// transaction; 0 retries forever).
	engine.ExecOptions
	// Producers, when positive, streams the transactions in through that
	// many engine Producer handles (round-robin by label, paced only by
	// the queue) — the open-system arrival mode. 0 seeds the whole batch
	// through the frontier instead (closed world).
	Producers int
}

// ParallelResult is a finished parallel transactional run.
type ParallelResult struct {
	// Counts carries Commits/Aborts/Starts with the same semantics as the
	// sequential model's Result: Aborts counts failed OCC attempts
	// (engine re-insertions), Starts every attempt.
	Counts
	// Promotions counts merged → split phase changes; Reconciles counts
	// the fences back (including the end-of-run sweep); SplitDeposits
	// counts commutative deltas that took the split path instead of a
	// lock.
	Promotions    int64
	Reconciles    int64
	SplitDeposits int64
	// Quarantined counts transactions the engine gave up on (poisoned, or
	// over the MaxBlockedRetries cap); Interrupted reports a deadline or
	// Stop cut the run short. Certification still covers whatever
	// committed.
	Quarantined int64
	Interrupted bool
}

// ParallelRun executes the spec's transaction stream for real — OCC with
// contention-triggered phase splitting over the relaxed engine — and then
// certifies serializability by replaying the commit log in ticket order.
// A certification failure is returned as an error: a run that cannot
// prove its own serial order did not succeed.
func ParallelRun(spec WorkloadSpec, opts ParallelOptions) (ParallelResult, error) {
	if opts.Threads < 1 {
		return ParallelResult{}, fmt.Errorf("txn: Threads = %d, want >= 1", opts.Threads)
	}
	if opts.Producers < 0 {
		return ParallelResult{}, fmt.Errorf("txn: Producers = %d, want >= 0", opts.Producers)
	}
	wl, err := NewWorkload(spec, opts.Threads, opts.Producers == 0)
	if err != nil {
		return ParallelResult{}, err
	}

	var st engine.Result
	if opts.Producers == 0 {
		st, err = engine.Run(wl, engine.Options{ExecOptions: opts.ExecOptions})
	} else {
		var exec *engine.Execution
		exec, err = engine.Start(wl, engine.Options{ExecOptions: opts.ExecOptions, Producers: opts.Producers})
		if err == nil {
			for p := 0; p < opts.Producers; p++ {
				go func(prod *engine.Producer, lo int) {
					for id := lo; id < spec.Txns; id += opts.Producers {
						prod.Push(int64(id), int64(id))
					}
					prod.Close()
				}(exec.NewProducer(), p)
			}
			st = exec.Wait()
		}
	}
	if err != nil {
		return ParallelResult{}, fmt.Errorf("txn: %w", err)
	}

	res := ParallelResult{
		Counts: Counts{
			Commits: st.Executed,
			Aborts:  st.Reinserted,
			Starts:  st.Executed + st.Reinserted,
		},
		Promotions:    wl.promotions.n.Load(),
		SplitDeposits: wl.deposits.n.Load(),
		Quarantined:   st.Failed,
		Interrupted:   st.Interrupted,
	}
	certErr := wl.Certify()
	res.Reconciles = wl.reconciles.n.Load()
	if certErr != nil {
		return res, certErr
	}
	if !st.Interrupted && st.Failed == 0 && st.Executed != int64(spec.Txns) {
		return res, fmt.Errorf("txn: committed %d of %d transactions", st.Executed, spec.Txns)
	}
	return res, nil
}
