package txn

import (
	"fmt"
	"math"
	"sort"

	"relaxsched/internal/core"
	"relaxsched/internal/rng"
)

// MaxOps is the per-transaction operation cap. Keeping it small lets the
// executor carry read/write sets and per-commit read logs in fixed inline
// arrays (no per-attempt allocation on the OCC hot path).
const MaxOps = 16

// WorkloadSpec describes a transactional workload: the key space, the
// access skew and the operation mix. It is shared by the model-level
// simulator (SimulateSpec builds the conflict DAG and runs Simulate as the
// oracle) and the real executor (ParallelRun), so both sides of a
// model-vs-measured comparison draw the exact same transaction stream.
type WorkloadSpec struct {
	// Txns is the number of transactions (labels 0..Txns-1; the label is
	// the priority, so lower labels are scheduled first).
	Txns int
	// Keys is the key-space size; records are dense int32 keys [0, Keys).
	Keys int
	// Skew is the Zipf exponent s of the key-popularity distribution:
	// P(key i) ∝ 1/(i+1)^s. 0 is uniform; ~0.99 is the classic hot-key
	// benchmark setting; higher concentrates almost all traffic on a few
	// records (the regime phase splitting exists for).
	Skew float64
	// OpsPerTxn is the number of operations per transaction, all on
	// distinct keys (1..MaxOps, and at most Keys).
	OpsPerTxn int
	// ReadFrac is the probability an operation is a read; the rest are
	// commutative writes (increment-heavy, with occasional max and
	// set-union writes, the Doppel-style splittable mix).
	ReadFrac float64
	// Seed makes the stream deterministic. Transaction i's operations are
	// a pure function of (Seed, i), so producers, the executor and the
	// certification replay can all regenerate them independently.
	Seed uint64
}

// Validate reports the first invalid field.
func (s WorkloadSpec) Validate() error {
	switch {
	case s.Txns < 1:
		return fmt.Errorf("txn: WorkloadSpec.Txns = %d, want >= 1", s.Txns)
	case s.Keys < 1:
		return fmt.Errorf("txn: WorkloadSpec.Keys = %d, want >= 1", s.Keys)
	case s.OpsPerTxn < 1 || s.OpsPerTxn > MaxOps:
		return fmt.Errorf("txn: WorkloadSpec.OpsPerTxn = %d, want 1..%d", s.OpsPerTxn, MaxOps)
	case s.OpsPerTxn > s.Keys:
		return fmt.Errorf("txn: OpsPerTxn %d exceeds key space %d", s.OpsPerTxn, s.Keys)
	case s.ReadFrac < 0 || s.ReadFrac > 1:
		return fmt.Errorf("txn: WorkloadSpec.ReadFrac = %v, want [0, 1]", s.ReadFrac)
	case s.Skew < 0:
		return fmt.Errorf("txn: WorkloadSpec.Skew = %v, want >= 0", s.Skew)
	}
	return nil
}

// OpKind is a transaction operation's type. All write kinds are commutative
// read-modify-writes, which is what makes hot records splittable into
// per-worker delta cells (Doppel's phased reconciliation).
type OpKind uint8

const (
	// OpRead observes the record's value (logged for certification).
	OpRead OpKind = iota
	// OpAdd increments the record by Arg.
	OpAdd
	// OpMax raises the record to max(value, Arg).
	OpMax
	// OpUnion ors Arg's bits into the record — the bounded-set analogue
	// (membership bitmap union).
	OpUnion
)

// Op is one operation of a transaction.
type Op struct {
	Key  int32
	Kind OpKind
	Arg  int64
}

// apply returns the record value after op runs against v.
func (op Op) apply(v int64) int64 {
	switch op.Kind {
	case OpAdd:
		return v + op.Arg
	case OpMax:
		if op.Arg > v {
			return op.Arg
		}
		return v
	case OpUnion:
		return v | op.Arg
	default:
		return v
	}
}

// Gen generates the deterministic transaction stream of a WorkloadSpec.
// Key draws use a cumulative-mass table over the Zipf distribution with a
// binary search per draw; each transaction derives its own rng stream from
// the spec seed and its label, so generation is random-access.
type Gen struct {
	spec WorkloadSpec
	cum  []float64 // cum[i] = P(key <= i), cum[Keys-1] = 1
}

// NewGen validates the spec and builds the key-distribution table.
func NewGen(spec WorkloadSpec) (*Gen, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cum := make([]float64, spec.Keys)
	var total float64
	for i := range cum {
		total += zipfMass(i, spec.Skew)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	cum[len(cum)-1] = 1
	return &Gen{spec: spec, cum: cum}, nil
}

func zipfMass(i int, s float64) float64 {
	return 1 / math.Pow(float64(i+1), s)
}

// Spec returns the generating spec.
func (g *Gen) Spec() WorkloadSpec { return g.spec }

// key draws one Zipf-distributed key.
func (g *Gen) key(r *rng.Xoshiro) int32 {
	u := r.Float64()
	// First index with cum[i] >= u.
	return int32(sort.SearchFloat64s(g.cum, u))
}

// Ops writes transaction id's operations into buf (len >= OpsPerTxn) and
// returns the filled prefix. Keys within a transaction are distinct, so a
// transaction has at most one operation per record.
func (g *Gen) Ops(id int64, buf []Op) []Op {
	r := rng.New(g.spec.Seed ^ rng.Mix64(uint64(id)+0x74786e))
	n := g.spec.OpsPerTxn
	buf = buf[:0]
draw:
	for len(buf) < n {
		k := g.key(r)
		for _, prev := range buf {
			if prev.Key == k {
				// Redraw on collision; with heavy skew the hot keys
				// collide often, so fall back to a linear probe after a
				// bounded number of redraws to guarantee termination.
				if r.Uint32()&1023 == 0 {
					k = g.probe(k, buf)
					break
				}
				continue draw
			}
		}
		op := Op{Key: k}
		if r.Float64() >= g.spec.ReadFrac {
			// Increment-heavy commutative write mix: mostly OpAdd with a
			// tail of max and union writes.
			switch r.Intn(10) {
			case 8:
				op.Kind = OpMax
				op.Arg = int64(r.Intn(1 << 20))
			case 9:
				op.Kind = OpUnion
				op.Arg = 1 << (r.Uint64() % 63)
			default:
				op.Kind = OpAdd
				op.Arg = int64(1 + r.Intn(100))
			}
		} else {
			op.Kind = OpRead
		}
		buf = append(buf, op)
	}
	return buf
}

// probe finds the first key at or after k not already in buf (wrapping).
func (g *Gen) probe(k int32, buf []Op) int32 {
	keys := int32(g.spec.Keys)
	for {
		k = (k + 1) % keys
		taken := false
		for _, prev := range buf {
			if prev.Key == k {
				taken = true
				break
			}
		}
		if !taken {
			return k
		}
	}
}

// ConflictDAG builds the transaction conflict graph of the spec's stream:
// transaction j depends on the most recent earlier transaction it conflicts
// with on each key (write-write, read-write or write-read on a shared key).
// Running Simulate over this DAG is the paper's model-level prediction for
// the workload — the oracle the measured OCC abort rates are compared to.
func ConflictDAG(spec WorkloadSpec) (*core.DAG, error) {
	g, err := NewGen(spec)
	if err != nil {
		return nil, err
	}
	dag := core.NewDAG(spec.Txns)
	lastWriter := make([]int32, spec.Keys)
	for i := range lastWriter {
		lastWriter[i] = -1
	}
	readersSince := make([][]int32, spec.Keys)
	// depStamp dedupes predecessor edges per transaction: conflicts on two
	// different keys with the same predecessor yield one edge.
	depStamp := make([]int32, spec.Txns)
	for i := range depStamp {
		depStamp[i] = -1
	}
	var buf [MaxOps]Op
	for id := 0; id < spec.Txns; id++ {
		dep := func(pred int32) {
			if depStamp[pred] != int32(id) {
				depStamp[pred] = int32(id)
				dag.AddDep(int(pred), id)
			}
		}
		for _, op := range g.Ops(int64(id), buf[:]) {
			k := op.Key
			if op.Kind == OpRead {
				if lastWriter[k] >= 0 {
					dep(lastWriter[k])
				}
				readersSince[k] = append(readersSince[k], int32(id))
				continue
			}
			if lastWriter[k] >= 0 {
				dep(lastWriter[k])
			}
			for _, rd := range readersSince[k] {
				dep(rd)
			}
			lastWriter[k] = int32(id)
			readersSince[k] = readersSince[k][:0]
		}
	}
	return dag, nil
}

// SimulateSpec runs the sequential transactional model (Simulate) over the
// spec's conflict DAG: the model-level oracle for a workload the parallel
// executor runs for real. Result.AbortRatio has the same semantics on both
// sides — aborted execution attempts per commit.
func SimulateSpec(spec WorkloadSpec, cfg Config) (Result, error) {
	dag, err := ConflictDAG(spec)
	if err != nil {
		return Result{}, err
	}
	return Simulate(dag, cfg)
}
