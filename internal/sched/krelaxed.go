package sched

import (
	"relaxsched/internal/pq"
	"relaxsched/internal/rng"
)

// KRelaxed is an adversarial k-relaxed scheduler: among the behaviours that
// satisfy RankBound (returned rank <= k) and Fairness (the minimum is
// returned after at most k-1 other returns), it picks the one that causes
// the most disruption — it always returns the *largest*-priority task among
// the k smallest, except when fairness forces it to return the minimum.
//
// This realizes the adversary the paper's upper bounds (Theorems 3.3, 6.1)
// are proved against, so measured extra work under KRelaxed is an empirical
// upper envelope for well-behaved schedulers of the same k.
type KRelaxed struct {
	h *pq.Heap
	k int

	// Fairness bookkeeping: minTask is the task currently of minimum
	// priority, minReturns counts ApproxGetMin calls that returned a task
	// other than minTask since it became the minimum.
	minTask    int
	minValid   bool
	minReturns int

	// scratch space for extracting the top-k.
	topIDs  []int
	topPrio []int64
}

// NewKRelaxed returns an adversarial k-relaxed scheduler for task ids in
// [0, n). k must be at least 1; k = 1 degenerates to an exact scheduler.
func NewKRelaxed(n, k int) *KRelaxed {
	if k < 1 {
		panic("sched: NewKRelaxed with k < 1")
	}
	return &KRelaxed{h: pq.NewHeap(n), k: k}
}

// K returns the relaxation factor.
func (s *KRelaxed) K() int { return s.k }

// Empty reports whether no tasks are pending.
func (s *KRelaxed) Empty() bool { return s.h.Empty() }

// Len reports the number of pending tasks.
func (s *KRelaxed) Len() int { return s.h.Len() }

// refreshMin re-establishes fairness bookkeeping after structural changes.
func (s *KRelaxed) refreshMin() {
	if s.h.Empty() {
		s.minValid = false
		return
	}
	id, _ := s.h.Peek()
	if !s.minValid || id != s.minTask {
		s.minTask = id
		s.minValid = true
		s.minReturns = 0
	}
}

// ApproxGetMin returns the worst allowed task: the k-th smallest (or the
// largest available if fewer than k remain), unless fairness forces the
// minimum to be returned.
func (s *KRelaxed) ApproxGetMin() (int, int64, bool) {
	if s.h.Empty() {
		return 0, 0, false
	}
	s.refreshMin()
	minID, minPrio := s.h.Peek()
	// Fairness: after k-1 returns of other tasks, the minimum must go out.
	if s.minReturns >= s.k-1 {
		return minID, minPrio, true
	}
	// Adversarial choice: the largest among the k smallest.
	m := s.k
	if l := s.h.Len(); l < m {
		m = l
	}
	s.topIDs = s.topIDs[:0]
	s.topPrio = s.topPrio[:0]
	for i := 0; i < m; i++ {
		id, p := s.h.Pop()
		s.topIDs = append(s.topIDs, id)
		s.topPrio = append(s.topPrio, p)
	}
	for i := range s.topIDs {
		s.h.Push(s.topIDs[i], s.topPrio[i])
	}
	pick := len(s.topIDs) - 1
	id, p := s.topIDs[pick], s.topPrio[pick]
	if id != minID {
		s.minReturns++
	}
	return id, p, true
}

// DeleteTask removes task.
func (s *KRelaxed) DeleteTask(task int) {
	s.h.Remove(task)
	if s.minValid && task == s.minTask {
		s.minValid = false
	}
}

// Insert adds a task.
func (s *KRelaxed) Insert(task int, priority int64) {
	s.h.Push(task, priority)
	// A new smaller element becomes the new minimum; bookkeeping refreshes
	// lazily on the next ApproxGetMin.
}

// DecreaseKey lowers task's priority.
func (s *KRelaxed) DecreaseKey(task int, priority int64) {
	s.h.DecreaseKey(task, priority)
}

// Contains reports whether task is pending.
func (s *KRelaxed) Contains(task int) bool { return s.h.Contains(task) }

var _ Scheduler = (*KRelaxed)(nil)
var _ DecreaseKeyer = (*KRelaxed)(nil)

// RandomK is a benign k-relaxed scheduler: it returns a uniformly random
// task among the k smallest, with the same fairness fallback as KRelaxed.
// It models well-behaved relaxed structures without MultiQueue-specific
// dynamics.
type RandomK struct {
	h    *pq.Heap
	k    int
	rand *rng.Xoshiro

	minTask    int
	minValid   bool
	minReturns int

	topIDs  []int
	topPrio []int64
}

// NewRandomK returns a uniform-over-top-k scheduler for ids in [0, n).
func NewRandomK(n, k int, seed uint64) *RandomK {
	if k < 1 {
		panic("sched: NewRandomK with k < 1")
	}
	return &RandomK{h: pq.NewHeap(n), k: k, rand: rng.New(seed)}
}

// K returns the relaxation factor.
func (s *RandomK) K() int { return s.k }

// Empty reports whether no tasks are pending.
func (s *RandomK) Empty() bool { return s.h.Empty() }

// Len reports the number of pending tasks.
func (s *RandomK) Len() int { return s.h.Len() }

// ApproxGetMin returns a uniform task among the k smallest, subject to
// fairness.
func (s *RandomK) ApproxGetMin() (int, int64, bool) {
	if s.h.Empty() {
		return 0, 0, false
	}
	id, _ := s.h.Peek()
	if !s.minValid || id != s.minTask {
		s.minTask = id
		s.minValid = true
		s.minReturns = 0
	}
	minID, minPrio := s.h.Peek()
	if s.minReturns >= s.k-1 {
		return minID, minPrio, true
	}
	m := s.k
	if l := s.h.Len(); l < m {
		m = l
	}
	s.topIDs = s.topIDs[:0]
	s.topPrio = s.topPrio[:0]
	for i := 0; i < m; i++ {
		id, p := s.h.Pop()
		s.topIDs = append(s.topIDs, id)
		s.topPrio = append(s.topPrio, p)
	}
	for i := range s.topIDs {
		s.h.Push(s.topIDs[i], s.topPrio[i])
	}
	pick := s.rand.Intn(len(s.topIDs))
	rid, rp := s.topIDs[pick], s.topPrio[pick]
	if rid != minID {
		s.minReturns++
	}
	return rid, rp, true
}

// DeleteTask removes task.
func (s *RandomK) DeleteTask(task int) {
	s.h.Remove(task)
	if s.minValid && task == s.minTask {
		s.minValid = false
	}
}

// Insert adds a task.
func (s *RandomK) Insert(task int, priority int64) { s.h.Push(task, priority) }

// DecreaseKey lowers task's priority.
func (s *RandomK) DecreaseKey(task int, priority int64) { s.h.DecreaseKey(task, priority) }

// Contains reports whether task is pending.
func (s *RandomK) Contains(task int) bool { return s.h.Contains(task) }

var _ Scheduler = (*RandomK)(nil)
var _ DecreaseKeyer = (*RandomK)(nil)
