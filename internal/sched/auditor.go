package sched

import (
	"relaxsched/internal/ostree"
)

// Auditor wraps a Scheduler and measures, for every ApproxGetMin, the exact
// rank of the returned task (via an order-statistic tree mirror) and the
// realized priority inversions of the minimum task. It is how the
// experiments report the *achieved* relaxation factor of MultiQueues and
// other structures whose k is only known distributionally.
//
// Auditing costs O(log n) per operation and is intended for measurement
// runs, not throughput benchmarks.
type Auditor struct {
	inner Scheduler
	tree  *ostree.Tree
	prio  map[int]int64 // pending task -> priority (mirror)

	// Rank statistics.
	calls     int64
	rankSum   int64
	maxRank   int
	rankHist  []int64 // rankHist[min(rank-1, len-1)] counts
	histWidth int

	// Fairness statistics: track the current minimum and how many returns
	// it has waited through.
	minTask  int64
	minPrio  int64
	minValid bool
	minWait  int
	maxInv   int
}

// NewAuditor wraps inner. histWidth bounds the rank histogram size (ranks
// beyond histWidth are clamped into the last bucket).
func NewAuditor(inner Scheduler, histWidth int) *Auditor {
	if histWidth < 1 {
		histWidth = 1
	}
	return &Auditor{
		inner:     inner,
		tree:      ostree.New(0xa0d1707),
		prio:      make(map[int]int64),
		rankHist:  make([]int64, histWidth),
		histWidth: histWidth,
	}
}

// Empty reports whether no tasks are pending.
func (a *Auditor) Empty() bool { return a.inner.Empty() }

// Len reports the number of pending tasks.
func (a *Auditor) Len() int { return a.inner.Len() }

// refreshMin updates fairness bookkeeping against the current true minimum.
func (a *Auditor) refreshMin() {
	if a.tree.Len() == 0 {
		a.minValid = false
		return
	}
	p, id := a.tree.Min()
	if !a.minValid || id != a.minTask || p != a.minPrio {
		a.minTask, a.minPrio = id, p
		a.minValid = true
		a.minWait = 0
	}
}

// ApproxGetMin forwards to the wrapped scheduler and records the true rank
// of the returned task and fairness violations.
func (a *Auditor) ApproxGetMin() (int, int64, bool) {
	a.refreshMin()
	task, priority, ok := a.inner.ApproxGetMin()
	if !ok {
		return task, priority, ok
	}
	// Tie-tolerant rank: tasks with equal priority are interchangeable in
	// the paper's model, so rank counts only strictly smaller priorities.
	rank := a.tree.CountLess(priority) + 1
	a.calls++
	a.rankSum += int64(rank)
	if rank > a.maxRank {
		a.maxRank = rank
	}
	b := rank - 1
	if b >= a.histWidth {
		b = a.histWidth - 1
	}
	a.rankHist[b]++
	if a.minValid {
		// Returning any task of minimum priority counts as serving the
		// minimum: equal priorities are not inversions.
		if priority <= a.minPrio {
			if a.minWait > a.maxInv {
				a.maxInv = a.minWait
			}
			a.minWait = 0
		} else {
			a.minWait++
			if a.minWait > a.maxInv {
				a.maxInv = a.minWait
			}
		}
	}
	return task, priority, ok
}

// DeleteTask removes task from both the wrapped scheduler and the mirror.
func (a *Auditor) DeleteTask(task int) {
	p, ok := a.prio[task]
	if !ok {
		panic("sched: Auditor.DeleteTask of unknown task")
	}
	a.tree.Delete(p, int64(task))
	delete(a.prio, task)
	a.inner.DeleteTask(task)
	if a.minValid && int64(task) == a.minTask {
		a.minValid = false
	}
}

// Insert adds a task to both the wrapped scheduler and the mirror.
func (a *Auditor) Insert(task int, priority int64) {
	if _, dup := a.prio[task]; dup {
		panic("sched: Auditor.Insert duplicate task")
	}
	a.prio[task] = priority
	a.tree.Insert(priority, int64(task))
	a.inner.Insert(task, priority)
}

// DecreaseKey forwards a DecreaseKey if the wrapped scheduler supports it.
func (a *Auditor) DecreaseKey(task int, priority int64) {
	dk, ok := a.inner.(DecreaseKeyer)
	if !ok {
		panic("sched: Auditor.DecreaseKey on scheduler without DecreaseKey")
	}
	p, present := a.prio[task]
	if !present {
		panic("sched: Auditor.DecreaseKey of unknown task")
	}
	a.tree.Delete(p, int64(task))
	a.tree.Insert(priority, int64(task))
	a.prio[task] = priority
	dk.DecreaseKey(task, priority)
	if a.minValid && int64(task) == a.minTask {
		a.minValid = false // priority changed; re-establish lazily
	}
}

// Contains reports whether task is pending.
func (a *Auditor) Contains(task int) bool {
	_, ok := a.prio[task]
	return ok
}

// Report summarizes the measurements taken so far.
type Report struct {
	Calls    int64   // number of ApproxGetMin calls that returned a task
	MeanRank float64 // average rank of returned tasks (1 = exact)
	MaxRank  int     // maximum observed rank (empirical RankBound)
	MaxInv   int     // maximum observed inversions of the minimum (Fairness)
	RankHist []int64 // rank histogram, bucket i = rank i+1 (last = overflow)
}

// Report returns a snapshot of the audit statistics.
func (a *Auditor) Report() Report {
	mean := 0.0
	if a.calls > 0 {
		mean = float64(a.rankSum) / float64(a.calls)
	}
	hist := make([]int64, len(a.rankHist))
	copy(hist, a.rankHist)
	return Report{
		Calls:    a.calls,
		MeanRank: mean,
		MaxRank:  a.maxRank,
		MaxInv:   a.maxInv,
		RankHist: hist,
	}
}

var _ Scheduler = (*Auditor)(nil)
var _ DecreaseKeyer = (*Auditor)(nil)
