package sched

import "relaxsched/internal/pq"

// Batch is a deterministic relaxed scheduler in the spirit of the k-LSM
// [Wimmer et al.]: it repeatedly extracts a batch of up to k minimum tasks
// from an exact heap into a buffer and serves the buffer in *reverse*
// (largest first) order. New insertions go to the heap, not the live buffer.
//
// Guarantees (documented, and checked by the Auditor tests):
//   - RankBound with factor 2k-1: a served task was among the k smallest
//     when its batch was formed; since then at most k-1 smaller tasks can
//     have been inserted before the buffer drains... more precisely, an
//     element of the buffer has rank at most (buffer position) + (number of
//     pending smaller inserts), which is bounded by 2k-1 because a batch
//     refill happens every <= k serves.
//   - Fairness with factor 2k-1: the overall minimum is served at worst at
//     the end of the current batch plus its own batch, i.e. after <= 2(k-1)
//     other serves.
//
// Batch therefore is a (2k-1)-relaxed scheduler in the paper's terms; use
// EffectiveK for the factor to plug into the theorems.
type Batch struct {
	h   *pq.Heap
	k   int
	buf []batchItem // served from the end (largest priority first)
	pos map[int]int // task -> index in buf, for DeleteTask of buffered tasks

	// stall counts consecutive ApproxGetMin calls with no intervening
	// DeleteTask. The incremental-algorithm framework may decline to
	// process a returned task (it is "blocked" on a dependency); a purely
	// deterministic policy would then re-serve the same task forever, so
	// after a stalled full rotation of the buffer the scheduler serves the
	// global minimum, which is never blocked.
	stall int
}

type batchItem struct {
	task int
	prio int64
	dead bool // tombstone: deleted or decreased while buffered
}

// NewBatch returns a deterministic batch scheduler with batch size k for
// task ids in [0, n).
func NewBatch(n, k int) *Batch {
	if k < 1 {
		panic("sched: NewBatch with k < 1")
	}
	return &Batch{h: pq.NewHeap(n), k: k, pos: make(map[int]int)}
}

// K returns the configured batch size.
func (s *Batch) K() int { return s.k }

// EffectiveK returns the relaxation factor this scheduler guarantees in the
// paper's model (2k-1).
func (s *Batch) EffectiveK() int { return 2*s.k - 1 }

// Empty reports whether no tasks are pending.
func (s *Batch) Empty() bool { return s.Len() == 0 }

// Len reports the number of pending tasks.
func (s *Batch) Len() int { return s.h.Len() + len(s.pos) }

// compact drops trailing tombstones so the buffer end is live.
func (s *Batch) compact() {
	for len(s.buf) > 0 && s.buf[len(s.buf)-1].dead {
		s.buf = s.buf[:len(s.buf)-1]
	}
}

// refill forms a new batch when the buffer is exhausted.
func (s *Batch) refill() {
	s.compact()
	if len(s.buf) > 0 {
		return
	}
	s.buf = s.buf[:0]
	for i := 0; i < s.k && !s.h.Empty(); i++ {
		id, p := s.h.Pop()
		s.pos[id] = len(s.buf)
		s.buf = append(s.buf, batchItem{task: id, prio: p})
	}
}

// ApproxGetMin serves the current batch largest-first. Repeated calls with
// no deletion rotate through the batch and eventually fall back to the
// global minimum, guaranteeing progress for blocked-task workloads.
func (s *Batch) ApproxGetMin() (int, int64, bool) {
	s.refill()
	if len(s.buf) == 0 {
		return 0, 0, false
	}
	live := make([]int, 0, len(s.buf))
	for i := range s.buf {
		if !s.buf[i].dead {
			live = append(live, i)
		}
	}
	if s.stall >= len(live) {
		// Stalled a full rotation: serve the global minimum.
		best := -1
		bestPrio := int64(0)
		for _, i := range live {
			if best < 0 || s.buf[i].prio < bestPrio {
				best, bestPrio = i, s.buf[i].prio
			}
		}
		if !s.h.Empty() {
			if id, p := s.h.Peek(); best < 0 || p < bestPrio {
				s.stall++
				return id, p, true
			}
		}
		s.stall++
		return s.buf[best].task, s.buf[best].prio, true
	}
	idx := live[len(live)-1-(s.stall%len(live))]
	s.stall++
	it := s.buf[idx]
	return it.task, it.prio, true
}

// DeleteTask removes task, whether buffered or still in the heap.
func (s *Batch) DeleteTask(task int) {
	s.stall = 0
	if i, ok := s.pos[task]; ok {
		s.buf[i].dead = true
		delete(s.pos, task)
		s.compact()
		return
	}
	s.h.Remove(task)
}

// Insert adds a task to the backing heap.
func (s *Batch) Insert(task int, priority int64) {
	if _, ok := s.pos[task]; ok {
		panic("sched: Batch.Insert of buffered task")
	}
	s.h.Push(task, priority)
}

// DecreaseKey lowers task's priority. If the task is buffered it is moved
// back to the heap with the new priority (a tombstone remains in the
// buffer), which preserves the rank bound.
func (s *Batch) DecreaseKey(task int, priority int64) {
	if i, ok := s.pos[task]; ok {
		if priority > s.buf[i].prio {
			panic("sched: DecreaseKey would increase priority")
		}
		s.buf[i].dead = true
		delete(s.pos, task)
		s.compact()
		s.h.Push(task, priority)
		return
	}
	s.h.DecreaseKey(task, priority)
}

// Contains reports whether task is pending.
func (s *Batch) Contains(task int) bool {
	if _, ok := s.pos[task]; ok {
		return true
	}
	return s.h.Contains(task)
}

var _ Scheduler = (*Batch)(nil)
var _ DecreaseKeyer = (*Batch)(nil)
