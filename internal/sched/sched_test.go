package sched

import (
	"testing"
	"testing/quick"

	"relaxsched/internal/rng"
)

// drain repeatedly calls ApproxGetMin + DeleteTask until empty, returning
// the task order.
func drain(s Scheduler) []int {
	var order []int
	for {
		t, _, ok := s.ApproxGetMin()
		if !ok {
			break
		}
		s.DeleteTask(t)
		order = append(order, t)
	}
	return order
}

// fill inserts n tasks with priority == id.
func fill(s Scheduler, n int) {
	for i := 0; i < n; i++ {
		s.Insert(i, int64(i))
	}
}

func TestExactIsStrict(t *testing.T) {
	e := NewExact(100)
	fill(e, 100)
	order := drain(e)
	for i, v := range order {
		if v != i {
			t.Fatalf("exact scheduler out of order at %d: %d", i, v)
		}
	}
}

func TestExactEmptyReturnsNotOK(t *testing.T) {
	e := NewExact(1)
	if _, _, ok := e.ApproxGetMin(); ok {
		t.Fatal("empty scheduler returned ok")
	}
	if !e.Empty() || e.Len() != 0 {
		t.Fatal("Empty/Len wrong")
	}
}

func TestExactDecreaseKey(t *testing.T) {
	e := NewExact(3)
	e.Insert(0, 30)
	e.Insert(1, 20)
	e.Insert(2, 10)
	e.DecreaseKey(0, 5)
	task, p, _ := e.ApproxGetMin()
	if task != 0 || p != 5 {
		t.Fatalf("min = (%d,%d), want (0,5)", task, p)
	}
	if !e.Contains(0) || !e.Contains(1) || !e.Contains(2) {
		t.Fatal("Contains wrong")
	}
}

// Every scheduler must return each task exactly once when drained.
func TestAllSchedulersDrainCompletely(t *testing.T) {
	const n = 500
	mks := map[string]func() Scheduler{
		"exact":     func() Scheduler { return NewExact(n) },
		"krelaxed4": func() Scheduler { return NewKRelaxed(n, 4) },
		"krelaxed1": func() Scheduler { return NewKRelaxed(n, 1) },
		"random8":   func() Scheduler { return NewRandomK(n, 8, 42) },
		"batch8":    func() Scheduler { return NewBatch(n, 8) },
	}
	for name, mk := range mks {
		s := mk()
		fill(s, n)
		order := drain(s)
		if len(order) != n {
			t.Fatalf("%s: drained %d tasks, want %d", name, len(order), n)
		}
		seen := make([]bool, n)
		for _, v := range order {
			if seen[v] {
				t.Fatalf("%s: task %d returned twice", name, v)
			}
			seen[v] = true
		}
	}
}

func TestKRelaxed1IsExact(t *testing.T) {
	s := NewKRelaxed(50, 1)
	fill(s, 50)
	order := drain(s)
	for i, v := range order {
		if v != i {
			t.Fatalf("k=1 scheduler inverted at %d: got %d", i, v)
		}
	}
}

// The adversarial scheduler must still respect RankBound and Fairness.
func TestKRelaxedRespectsBoundsUnderAudit(t *testing.T) {
	for _, k := range []int{1, 2, 4, 8, 16} {
		const n = 400
		a := NewAuditor(NewKRelaxed(n, k), 64)
		fill(a, n)
		drain(a)
		r := a.Report()
		if r.MaxRank > k {
			t.Fatalf("k=%d: MaxRank = %d violates RankBound", k, r.MaxRank)
		}
		if r.MaxInv > k-1 {
			t.Fatalf("k=%d: MaxInv = %d violates Fairness", k, r.MaxInv)
		}
		if k > 1 && r.MaxRank < 2 {
			t.Fatalf("k=%d: adversary produced no inversions at all", k)
		}
	}
}

func TestRandomKRespectsBoundsUnderAudit(t *testing.T) {
	for _, k := range []int{2, 8} {
		const n = 300
		a := NewAuditor(NewRandomK(n, k, 7), 64)
		fill(a, n)
		drain(a)
		r := a.Report()
		if r.MaxRank > k {
			t.Fatalf("k=%d: MaxRank = %d", k, r.MaxRank)
		}
		if r.MaxInv > k-1 {
			t.Fatalf("k=%d: MaxInv = %d", k, r.MaxInv)
		}
	}
}

func TestBatchRespectsDocumentedBounds(t *testing.T) {
	for _, k := range []int{1, 2, 8} {
		const n = 300
		b := NewBatch(n, k)
		a := NewAuditor(b, 128)
		fill(a, n)
		drain(a)
		r := a.Report()
		if r.MaxRank > b.EffectiveK() {
			t.Fatalf("k=%d: MaxRank = %d > EffectiveK %d", k, r.MaxRank, b.EffectiveK())
		}
		if r.MaxInv > b.EffectiveK()-1 {
			t.Fatalf("k=%d: MaxInv = %d > EffectiveK-1", k, r.MaxInv)
		}
	}
}

func TestBatchServesReversedBatches(t *testing.T) {
	s := NewBatch(10, 5)
	fill(s, 10)
	order := drain(s)
	want := []int{4, 3, 2, 1, 0, 9, 8, 7, 6, 5}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestBatchDeleteBuffered(t *testing.T) {
	s := NewBatch(6, 3)
	fill(s, 6)
	task, _, _ := s.ApproxGetMin() // forms batch {0,1,2}, returns 2
	if task != 2 {
		t.Fatalf("first = %d, want 2", task)
	}
	s.DeleteTask(1) // delete from the middle of the buffer
	order := drain(s)
	want := []int{2, 0, 5, 4, 3}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestBatchDecreaseKeyBuffered(t *testing.T) {
	s := NewBatch(6, 3)
	fill(s, 6)
	s.ApproxGetMin() // batch {0,1,2}
	s.DecreaseKey(5, -1)
	if !s.Contains(5) {
		t.Fatal("Contains(5) after DecreaseKey")
	}
	// 5 should now surface in a later batch as the minimum of the heap.
	order := drain(s)
	if len(order) != 6 {
		t.Fatalf("drained %d, want 6", len(order))
	}
}

func TestBatchStallRotatesAndFallsBack(t *testing.T) {
	// Simulate the blocked-task pattern of the incremental framework:
	// repeated ApproxGetMin without DeleteTask must rotate through the
	// batch and eventually serve the global minimum.
	s := NewBatch(10, 3)
	fill(s, 10)
	seen := map[int]bool{}
	servedMin := false
	for i := 0; i < 12; i++ {
		task, _, ok := s.ApproxGetMin()
		if !ok {
			t.Fatal("empty")
		}
		seen[task] = true
		if task == 0 {
			servedMin = true
		}
	}
	if !servedMin {
		t.Fatal("stalled batch never served the global minimum")
	}
	if len(seen) < 3 {
		t.Fatalf("rotation served only %v", seen)
	}
}

func TestBatchStallServesHeapMinWhenSmaller(t *testing.T) {
	// Form a batch, then insert a smaller task into the heap; a stalled
	// rotation must eventually serve it even though it is not buffered.
	s := NewBatch(10, 3)
	s.Insert(5, 5)
	s.Insert(6, 6)
	s.Insert(7, 7)
	s.ApproxGetMin() // batch = {5,6,7}
	s.Insert(1, 1)   // new global min goes to the heap
	servedNew := false
	for i := 0; i < 10; i++ {
		task, _, _ := s.ApproxGetMin()
		if task == 1 {
			servedNew = true
			break
		}
	}
	if !servedNew {
		t.Fatal("stalled batch never served the smaller heap task")
	}
	// Deleting it must work even though it was served from the heap.
	s.DeleteTask(1)
	if s.Contains(1) {
		t.Fatal("task 1 still pending")
	}
}

func TestBatchProgressUnderBlockedWorkload(t *testing.T) {
	// End-to-end guard against the livelock fixed in ApproxGetMin: a
	// chain DAG forces every non-minimum return to be blocked.
	const n = 100
	s := NewBatch(n, 8)
	fill(s, n)
	processed := make([]bool, n)
	count := 0
	for steps := 0; count < n; steps++ {
		if steps > 100*n {
			t.Fatal("livelock: batch scheduler made no progress")
		}
		task, _, ok := s.ApproxGetMin()
		if !ok {
			break
		}
		// Chain dependency: task is processable only if task-1 processed.
		if task > 0 && !processed[task-1] {
			continue
		}
		s.DeleteTask(task)
		processed[task] = true
		count++
	}
	if count != n {
		t.Fatalf("processed %d of %d", count, n)
	}
}

func TestAuditorMeanRankExactIsOne(t *testing.T) {
	a := NewAuditor(NewExact(100), 16)
	fill(a, 100)
	drain(a)
	r := a.Report()
	if r.MeanRank != 1 || r.MaxRank != 1 || r.MaxInv != 0 {
		t.Fatalf("exact audit: %+v", r)
	}
	if r.RankHist[0] != 100 {
		t.Fatalf("hist = %v", r.RankHist)
	}
}

func TestAuditorTracksDecreaseKey(t *testing.T) {
	a := NewAuditor(NewExact(4), 8)
	a.Insert(0, 100)
	a.Insert(1, 50)
	a.DecreaseKey(0, 10)
	task, p, _ := a.ApproxGetMin()
	if task != 0 || p != 10 {
		t.Fatalf("min = (%d,%d)", task, p)
	}
	a.DeleteTask(0)
	a.DeleteTask(1)
	if !a.Empty() {
		t.Fatal("not empty")
	}
}

func TestAuditorPanicsOnUnknownOps(t *testing.T) {
	a := NewAuditor(NewExact(4), 8)
	a.Insert(0, 1)
	for name, f := range map[string]func(){
		"dup insert":     func() { a.Insert(0, 2) },
		"delete unknown": func() { a.DeleteTask(3) },
		"dk unknown":     func() { a.DecreaseKey(3, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// Property: with dynamic insertions interleaved, schedulers never lose or
// duplicate tasks and the auditor bounds hold for KRelaxed.
func TestDynamicWorkloadProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		k := 1 + r.Intn(8)
		const n = 200
		a := NewAuditor(NewKRelaxed(n, k), 64)
		inserted := 0
		removed := map[int]bool{}
		// Interleave inserts and removals.
		for inserted < n || !a.Empty() {
			if inserted < n && (r.Intn(2) == 0 || a.Empty()) {
				a.Insert(inserted, int64(r.Intn(1000)))
				inserted++
				continue
			}
			task, _, ok := a.ApproxGetMin()
			if !ok {
				continue
			}
			if removed[task] {
				return false
			}
			// Sometimes simulate a blocked task: don't delete.
			if r.Intn(4) == 0 {
				continue
			}
			a.DeleteTask(task)
			removed[task] = true
		}
		rep := a.Report()
		return len(removed) == n && rep.MaxRank <= k && rep.MaxInv <= k-1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkKRelaxedGetDelete(b *testing.B) {
	const n = 1 << 14
	s := NewKRelaxed(n, 16)
	for i := 0; i < n; i++ {
		s.Insert(i, int64(rng.Mix64(uint64(i))%(1<<20)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		task, p, ok := s.ApproxGetMin()
		if !ok {
			b.StopTimer()
			for j := 0; j < n; j++ {
				s.Insert(j, int64(rng.Mix64(uint64(j+i))%(1<<20)))
			}
			b.StartTimer()
			continue
		}
		s.DeleteTask(task)
		_ = p
	}
}
