package sched

import (
	"sync/atomic"
	"testing"
	"time"

	"relaxsched/internal/cq"
	"relaxsched/internal/engine"
)

func TestRankErrors(t *testing.T) {
	cases := []struct {
		name string
		exec []int64
		mean float64
		max  int64
	}{
		{"empty", nil, 0, 0},
		{"sorted", []int64{0, 1, 2, 3}, 0, 0},
		{"swapped pairs", []int64{1, 0, 3, 2}, 1, 1},
		{"reversed", []int64{3, 2, 1, 0}, 2, 3},
		{"ties cost nothing", []int64{5, 5, 5}, 0, 0},
		{"one straggler", []int64{1, 2, 3, 0}, 1.5, 3},
	}
	for _, c := range cases {
		mean, max := rankErrors(c.exec)
		if mean != c.mean || max != c.max {
			t.Errorf("%s: rankErrors = (%v, %d), want (%v, %d)", c.name, mean, max, c.mean, c.max)
		}
	}
}

func TestParallelTopKExecutesEveryJobOnce(t *testing.T) {
	for _, backend := range cq.Backends() {
		for _, batch := range []int{0, 16} {
			res, err := ParallelTopK(TopKRunOptions{
				StreamOptions:   StreamOptions{ExecOptions: engine.ExecOptions{Threads: 4, QueueMultiplier: 2, Backend: backend, BatchSize: batch, Seed: 31}, Producers: 3},
				JobsPerProducer: 400,
			})
			if err != nil {
				t.Fatalf("%s/batch%d: %v", backend, batch, err)
			}
			total := int64(3 * 400)
			if res.Jobs != total || res.Popped != total {
				t.Fatalf("%s/batch%d: jobs %d popped %d, want %d", backend, batch, res.Jobs, res.Popped, total)
			}
			// The executed priorities must be a permutation of [0, total).
			seen := make([]bool, total)
			for _, p := range res.ExecutedPriorities {
				if p < 0 || p >= total || seen[p] {
					t.Fatalf("%s/batch%d: executed priorities are not a permutation (saw %d)", backend, batch, p)
				}
				seen[p] = true
			}
			if res.MeanRankError < 0 || res.MaxRankError >= total {
				t.Fatalf("%s/batch%d: implausible rank error %v/%d", backend, batch, res.MeanRankError, res.MaxRankError)
			}
		}
	}
}

// One worker over one exact internal queue, with the producer buffering the
// whole stream until Close: every job is visible before the first pop, so
// the executed order must be exactly the priority order — rank error zero.
// This pins the metric to the closed-world ground truth.
func TestParallelTopKExactBaseline(t *testing.T) {
	const jobs = 600
	res, err := ParallelTopK(TopKRunOptions{
		StreamOptions:   StreamOptions{ExecOptions: engine.ExecOptions{Threads: 1, QueueMultiplier: 1, Backend: cq.MultiQueueBackend, BatchSize: jobs + 8, Seed: 5}, Producers: 1},
		JobsPerProducer: jobs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanRankError != 0 || res.MaxRankError != 0 {
		t.Fatalf("exact single-queue drain has rank error %v/%d", res.MeanRankError, res.MaxRankError)
	}
}

func TestParallelTopKRateLimited(t *testing.T) {
	const jobs, rate = 120, 20000
	startedAt := time.Now()
	res, err := ParallelTopK(TopKRunOptions{
		StreamOptions:   StreamOptions{ExecOptions: engine.ExecOptions{Threads: 2, QueueMultiplier: 2, Seed: 9}, Producers: 2},
		JobsPerProducer: jobs,
		Rate:            rate,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs != 2*jobs {
		t.Fatalf("jobs = %d, want %d", res.Jobs, 2*jobs)
	}
	// Each producer's last job is released no earlier than (jobs-1)/rate
	// seconds after its start; allow generous slack below that floor.
	if floor := time.Duration(jobs-1) * time.Second / rate; time.Since(startedAt) < floor/2 {
		t.Fatalf("rate-limited stream finished in %v, impossibly under the %v pacing floor", time.Since(startedAt), floor)
	}
}

func TestStreamOptionValidation(t *testing.T) {
	if _, err := NewTopKStream(StreamOptions{ExecOptions: engine.ExecOptions{Threads: 1, QueueMultiplier: 1}}); err == nil {
		t.Fatal("zero producers accepted")
	}
	if _, err := NewTopKStream(StreamOptions{ExecOptions: engine.ExecOptions{Threads: 0, QueueMultiplier: 1}, Producers: 1}); err == nil {
		t.Fatal("zero threads accepted")
	}
	// Negative counts must come back as errors, not makeslice panics from
	// the allocations the options size.
	if _, err := NewTopKStream(StreamOptions{ExecOptions: engine.ExecOptions{Threads: -1, QueueMultiplier: 1}, Producers: 1}); err == nil {
		t.Fatal("negative threads accepted")
	}
	if _, err := ParallelTopK(TopKRunOptions{
		StreamOptions:   StreamOptions{ExecOptions: engine.ExecOptions{Threads: 1, QueueMultiplier: 1}, Producers: -2},
		JobsPerProducer: 1,
	}); err == nil {
		t.Fatal("negative producer count accepted")
	}
	if _, err := ParallelTopK(TopKRunOptions{
		StreamOptions:   StreamOptions{ExecOptions: engine.ExecOptions{Threads: 1, QueueMultiplier: 1}, Producers: 1},
		JobsPerProducer: 0,
	}); err == nil {
		t.Fatal("zero jobs per producer accepted")
	}
	if _, err := ParallelTopK(TopKRunOptions{
		StreamOptions:   StreamOptions{ExecOptions: engine.ExecOptions{Threads: 1, QueueMultiplier: 1}, Producers: 1},
		JobsPerProducer: 1,
		Rate:            -1,
	}); err == nil {
		t.Fatal("negative rate accepted")
	}
	if _, err := ParallelTopK(TopKRunOptions{
		StreamOptions:   StreamOptions{ExecOptions: engine.ExecOptions{Threads: 1, QueueMultiplier: 1}, Producers: 1, Execute: func(int, int64, int64) {}},
		JobsPerProducer: 1,
	}); err == nil {
		t.Fatal("caller-supplied Execute accepted by ParallelTopK")
	}
}

// The stream facade proper: a caller-held producer handle feeding a live
// executor with its own Execute body.
func TestTopKStreamManualProducer(t *testing.T) {
	const jobs = 300
	got := make([]atomic.Int32, jobs)
	s, err := NewTopKStream(StreamOptions{ExecOptions: engine.ExecOptions{Threads: 3, QueueMultiplier: 2, Seed: 2}, Producers: 1, Execute: func(_ int, job, _ int64) { got[job].Add(1) }})
	if err != nil {
		t.Fatal(err)
	}
	p := s.NewProducer()
	for i := 0; i < jobs; i++ {
		p.Push(int64(i), int64(jobs-i)) // reversed priorities
	}
	p.Close()
	res := s.Wait()
	if res.Jobs != jobs {
		t.Fatalf("jobs = %d, want %d", res.Jobs, jobs)
	}
	for i := range got {
		if n := got[i].Load(); n != 1 {
			t.Fatalf("job %d executed %d times", i, n)
		}
	}
}

// TestTopKStreamStop: stopping a live stream mid-arrival must drain
// gracefully — the producer's remaining pushes are absorbed without
// panicking, Wait returns the jobs served so far marked Interrupted, and
// nothing executes twice.
func TestTopKStreamStop(t *testing.T) {
	const jobs = 50000
	got := make([]atomic.Int32, jobs)
	s, err := NewTopKStream(StreamOptions{ExecOptions: engine.ExecOptions{Threads: 2, QueueMultiplier: 2, Seed: 3}, Producers: 1, Execute: func(_ int, job, _ int64) {
		time.Sleep(20 * time.Microsecond)
		got[job].Add(1)
	}})
	if err != nil {
		t.Fatal(err)
	}
	p := s.NewProducer()
	closed := make(chan struct{})
	go func() {
		defer close(closed)
		for i := 0; i < jobs; i++ {
			p.Push(int64(i), int64(i))
		}
		p.Close()
	}()
	time.Sleep(2 * time.Millisecond)
	s.Stop()
	res := s.Wait()
	<-closed
	if !res.Interrupted {
		t.Fatalf("mid-stream Stop not marked Interrupted (%d jobs served)", res.Jobs)
	}
	if res.Jobs >= jobs {
		t.Fatalf("all %d jobs served despite the Stop; shorten the fuse", jobs)
	}
	var served int64
	for i := range got {
		switch n := got[i].Load(); n {
		case 0:
		case 1:
			served++
		default:
			t.Fatalf("job %d executed %d times", i, n)
		}
	}
	if served != res.Jobs {
		t.Fatalf("%d jobs ran but result says %d", served, res.Jobs)
	}
}

// Latency SLO quantiles: every tracked job has a positive sojourn time
// (the 0-means-untracked sentinel never leaks through as a zero latency)
// and the quantiles are ordered p50 <= p99 <= p999.
func TestParallelTopKLatencyQuantiles(t *testing.T) {
	res, err := ParallelTopK(TopKRunOptions{
		StreamOptions:   StreamOptions{ExecOptions: engine.ExecOptions{Threads: 2, QueueMultiplier: 2, Seed: 41}, Producers: 2},
		JobsPerProducer: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LatencyP50 <= 0 || res.LatencyP99 <= 0 || res.LatencyP999 <= 0 {
		t.Fatalf("latency quantiles not populated: p50=%v p99=%v p999=%v",
			res.LatencyP50, res.LatencyP99, res.LatencyP999)
	}
	if res.LatencyP50 > res.LatencyP99 || res.LatencyP99 > res.LatencyP999 {
		t.Fatalf("quantiles not monotone: p50=%v p99=%v p999=%v",
			res.LatencyP50, res.LatencyP99, res.LatencyP999)
	}
}

// The elastic pool options thread through to the engine: worker indices
// range over MaxWorkers, so the per-worker logs and latency histograms must
// be pool-sized (an undersized slice panics the run).
func TestTopKStreamElasticPool(t *testing.T) {
	res, err := ParallelTopK(TopKRunOptions{
		StreamOptions:   StreamOptions{ExecOptions: engine.ExecOptions{Threads: 2, QueueMultiplier: 2, Seed: 43}, Producers: 4, MinWorkers: 1, MaxWorkers: 8},
		JobsPerProducer: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs != 8000 {
		t.Fatalf("executed %d of 8000 jobs", res.Jobs)
	}
	if res.LatencyP50 <= 0 {
		t.Fatalf("latency tracking dead under the elastic pool: p50=%v", res.LatencyP50)
	}
}
