// Package sched defines the sequential model of relaxed priority schedulers
// from Section 2 of Alistarh, Koval & Nadiradze (SPAA 2019), together with
// several concrete schedulers:
//
//   - Exact: a strict priority queue (relaxation factor k = 1);
//   - KRelaxed: an adversarial k-relaxed scheduler that maximizes priority
//     inversions while provably respecting the RankBound and Fairness
//     properties — this is the worst case the paper's upper bounds allow;
//   - RandomK: a benign k-relaxed scheduler returning a uniform element
//     among the k smallest;
//   - Batch: a deterministic k-LSM-style scheduler that drains the queue in
//     reversed batches of size k.
//
// A scheduler stores <task, priority> pairs. ApproxGetMin returns a pair
// without deleting it (Algorithm 2 in the paper calls ApproxGetMin, checks
// dependencies, and only then DeleteTask). A k-relaxed scheduler must
// satisfy, at every step t:
//
//	RankBound: rank(t) <= k         (the returned task is among the k
//	                                 highest-priority tasks present), and
//	Fairness:  inv(u) <= k-1        (the highest-priority task u is returned
//	                                 after at most k-1 other returns).
//
// The Auditor in this package wraps any scheduler and measures both
// quantities exactly, so experiments can report the *achieved* relaxation
// factor rather than trusting the implementation.
package sched

import "relaxsched/internal/pq"

// Scheduler is the sequential relaxed-scheduler model (Section 2).
// Lower priority values are scheduled first.
type Scheduler interface {
	// Empty reports whether no tasks are pending.
	Empty() bool
	// Len reports the number of pending tasks.
	Len() int
	// ApproxGetMin returns a pending <task, priority> pair without removing
	// it. ok is false iff the scheduler is empty. A k-relaxed scheduler
	// returns one of the k smallest-priority pairs.
	ApproxGetMin() (task int, priority int64, ok bool)
	// DeleteTask removes the given task (typically one just returned by
	// ApproxGetMin). It panics if the task is not pending.
	DeleteTask(task int)
	// Insert adds a new <task, priority> pair. Task ids must be unique among
	// pending tasks and must lie in [0, n) for the n given at construction.
	Insert(task int, priority int64)
}

// DecreaseKeyer is implemented by schedulers that support atomically
// lowering the priority of a pending task, as required by the relaxed SSSP
// algorithm (Algorithm 3).
type DecreaseKeyer interface {
	// DecreaseKey lowers task's priority to priority. It panics if the task
	// is absent or the priority would increase.
	DecreaseKey(task int, priority int64)
	// Contains reports whether the task is pending.
	Contains(task int) bool
}

// Exact is a strict (k = 1) scheduler backed by a binary heap.
type Exact struct {
	h *pq.Heap
}

// NewExact returns an exact scheduler for task ids in [0, n).
func NewExact(n int) *Exact { return &Exact{h: pq.NewHeap(n)} }

// Empty reports whether no tasks are pending.
func (e *Exact) Empty() bool { return e.h.Empty() }

// Len reports the number of pending tasks.
func (e *Exact) Len() int { return e.h.Len() }

// ApproxGetMin returns the exact minimum.
func (e *Exact) ApproxGetMin() (int, int64, bool) {
	if e.h.Empty() {
		return 0, 0, false
	}
	t, p := e.h.Peek()
	return t, p, true
}

// DeleteTask removes task.
func (e *Exact) DeleteTask(task int) { e.h.Remove(task) }

// Insert adds a task.
func (e *Exact) Insert(task int, priority int64) { e.h.Push(task, priority) }

// DecreaseKey lowers task's priority.
func (e *Exact) DecreaseKey(task int, priority int64) { e.h.DecreaseKey(task, priority) }

// Contains reports whether task is pending.
func (e *Exact) Contains(task int) bool { return e.h.Contains(task) }

var _ Scheduler = (*Exact)(nil)
var _ DecreaseKeyer = (*Exact)(nil)
