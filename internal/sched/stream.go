package sched

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"relaxsched/internal/engine"
	"relaxsched/internal/rng"
	"relaxsched/internal/stats"
)

// This file is the streaming top-k job scheduler: the first open-system
// workload on the relaxed-execution engine. Where every other workload
// seeds its frontier up front (closed world), here producer goroutines
// stream prioritized jobs into the queue *while* workers drain it in
// relaxed priority order — the serving scenario the MultiQueue and
// SprayList designs target. The sequential model in this package bounds
// the rank of each ApproxGetMin; the streaming scheduler measures the
// end-to-end analogue, the rank error of the executed order against the
// true priority order of all jobs.

// StreamOptions configure a streaming execution (NewTopKStream).
type StreamOptions struct {
	// ExecOptions are the shared engine knobs: queue backend and relaxation
	// multiplier, worker count, batching (here on both sides: workers pop
	// job batches, and producer pushes buffer until BatchSize jobs
	// accumulate, flushed on Close), seeding, the idle path (a streaming
	// scheduler with bursty arrivals wants the default engine.IdlePark),
	// and Deadline — at expiry the workers drain gracefully (exactly as
	// TopKStream.Stop), producer pushes are absorbed, and the result is
	// marked Interrupted.
	engine.ExecOptions
	// Producers is the number of JobProducer handles that will be created
	// with NewProducer (>= 1). The stream terminates only after every
	// declared producer has been created and closed.
	Producers int
	// MinWorkers and MaxWorkers, when MaxWorkers > 0, enable the engine's
	// elastic worker pool: the active set starts at Threads and the
	// controller grows it toward MaxWorkers under backlog, shrinking back
	// toward MinWorkers when the stream goes quiet. Requires
	// MinWorkers <= Threads <= MaxWorkers and the parking idle strategy.
	MinWorkers int
	MaxWorkers int
	// LatencyJobs, when positive, enables per-job sojourn-latency tracking
	// for jobs with ids in [0, LatencyJobs): JobProducer.Push timestamps
	// the arrival, the executing worker records push-to-execute time in a
	// fixed-bucket histogram (no per-job allocation), and the result
	// carries the p50/p99/p999 quantiles. Jobs with ids outside the range
	// execute normally but are not measured.
	LatencyJobs int
	// Execute, if non-nil, is the job body run by the executing worker.
	// It must be safe for concurrent calls from Threads workers.
	Execute func(worker int, job, priority int64)
}

// StreamResult summarizes a finished streaming execution.
type StreamResult struct {
	// Jobs is the number of jobs executed (every pushed job exactly once).
	Jobs int64
	// Popped is the total number of queue pops across all workers; for this
	// workload it equals Jobs (no job is ever blocked or discarded).
	Popped int64
	// ExecutedPriorities lists job priorities in global execution order.
	ExecutedPriorities []int64
	// Interrupted reports that the stream was stopped (TopKStream.Stop or
	// StreamOptions.Deadline) before every streamed job executed: the
	// result is a valid account of the jobs served so far, at-most-once
	// instead of exactly-once.
	Interrupted bool
	// MeanRankError and MaxRankError measure how far the executed order
	// strays from the true priority order of the full job set: job-wise
	// |executed position - priority-sorted position|, averaged and maxed.
	// Under streaming this folds two effects together — the queue's
	// relaxation and the arrival order (a top-priority job arriving last
	// cannot execute first, whatever the queue does) — which is exactly the
	// open-system quantity the scheduler is judged on.
	MeanRankError float64
	MaxRankError  int64
	// LatencyP50, LatencyP99 and LatencyP999 are quantiles of the push-to-
	// execute sojourn time over the jobs StreamOptions.LatencyJobs tracked
	// (zero when tracking was off or no tracked job executed). Quantiles
	// come from a log-bucketed histogram, accurate to ~±12.5%.
	LatencyP50, LatencyP99, LatencyP999 time.Duration
}

// topkWorkload records the global execution order of streamed jobs. Each
// worker appends to its own padded log; the global position comes from one
// atomic ticket, claimed at execution time.
type topkWorkload struct {
	execute func(worker int, job, priority int64)
	next    atomic.Int64
	logs    []execLog
	// Latency tracking, nil when StreamOptions.LatencyJobs == 0: arrivals[j]
	// holds job j's push timestamp (ns since base, atomically stored by its
	// producer before the push becomes queue-visible, so the executing
	// worker always reads it populated), and lats[w] is worker w's private
	// latency histogram — fixed-size, allocation-free Add on the hot path.
	base     time.Time
	arrivals []atomic.Int64
	lats     []latHist
}

// latHist pads a worker's histogram to a cache-line multiple so adjacent
// workers' bucket increments never false-share.
type latHist struct {
	h stats.Hist
	_ [56]byte // Hist is 2056 bytes; round up to 33 64-byte lines
}

// execRecord is one executed job: its global execution ticket and priority.
type execRecord struct {
	pos      int64
	priority int64
}

// execLog is one worker's private execution log, padded so neighbouring
// workers' append bookkeeping never false-shares.
type execLog struct {
	recs []execRecord
	_    [104]byte // pad the 24-byte slice header to two 64-byte lines
}

func (w *topkWorkload) Frontier(func(value, priority int64)) {
	// Open system: every job arrives through a producer.
}

func (w *topkWorkload) TryExecute(ctx *engine.Ctx, value, priority int64) engine.Status {
	if w.arrivals != nil && value >= 0 && value < int64(len(w.arrivals)) {
		if at := w.arrivals[value].Load(); at != 0 {
			w.lats[ctx.Worker].h.Add(int64(time.Since(w.base)) - at)
		}
	}
	if w.execute != nil {
		w.execute(ctx.Worker, value, priority)
	}
	pos := w.next.Add(1) - 1
	l := &w.logs[ctx.Worker]
	l.recs = append(l.recs, execRecord{pos: pos, priority: priority})
	return engine.Executed
}

// TopKStream is a live streaming execution: workers are draining jobs in
// relaxed priority order while the holder streams more in through
// JobProducer handles. Obtain one with NewTopKStream, create and close all
// declared producers, then Wait for the result.
type TopKStream struct {
	exec *engine.Execution
	wl   *topkWorkload
}

// NewTopKStream launches the worker pool of a streaming top-k execution.
// Lower priority values are served first, approximately: workers pop from a
// concurrent relaxed queue, so each pop returns one of the smallest-priority
// pending jobs rather than the exact minimum.
func NewTopKStream(opts StreamOptions) (*TopKStream, error) {
	if opts.Producers < 1 {
		return nil, fmt.Errorf("sched: streaming needs Producers >= 1, got %d", opts.Producers)
	}
	// Validated again by engine.Start, but the per-worker logs are
	// allocated first — check here so bad options error instead of
	// panicking in makeslice.
	if opts.Threads < 1 {
		return nil, fmt.Errorf("sched: streaming needs Threads >= 1, got %d", opts.Threads)
	}
	// With an elastic pool the worker index ranges over the full pool
	// (MaxWorkers), not just the initially active Threads — size every
	// per-worker structure by the pool.
	pool := opts.Threads
	if opts.MaxWorkers > pool {
		pool = opts.MaxWorkers
	}
	wl := &topkWorkload{execute: opts.Execute, logs: make([]execLog, pool)}
	if opts.LatencyJobs > 0 {
		wl.base = time.Now()
		wl.arrivals = make([]atomic.Int64, opts.LatencyJobs)
		wl.lats = make([]latHist, pool)
	}
	exec, err := engine.Start(wl, engine.Options{
		ExecOptions: opts.ExecOptions,
		Producers:   opts.Producers,
		MinWorkers:  opts.MinWorkers,
		MaxWorkers:  opts.MaxWorkers,
	})
	if err != nil {
		return nil, fmt.Errorf("sched: %w", err)
	}
	return &TopKStream{exec: exec, wl: wl}, nil
}

// NewProducer returns the next declared producer handle (panics beyond
// StreamOptions.Producers). Each handle must be used by one goroutine at a
// time; create one per arrival stream.
func (s *TopKStream) NewProducer() *JobProducer {
	return &JobProducer{p: s.exec.NewProducer(), wl: s.wl}
}

// Stop requests a graceful drain of the stream: workers stop popping and
// exit, further producer pushes are absorbed (not panics — producers may
// keep streaming and Close normally), and Wait returns the jobs served so
// far, marked Interrupted. Safe from any goroutine; idempotent.
func (s *TopKStream) Stop() { s.exec.Stop() }

// Wait blocks until every declared producer has closed and every streamed
// job has executed — or until a Stop/Deadline drain finishes — then
// returns the merged execution order and its rank-error summary.
func (s *TopKStream) Wait() StreamResult {
	st := s.exec.Wait()
	exec := make([]int64, s.wl.next.Load())
	for i := range s.wl.logs {
		for _, rec := range s.wl.logs[i].recs {
			exec[rec.pos] = rec.priority
		}
	}
	mean, maxErr := rankErrors(exec)
	res := StreamResult{
		Jobs:               st.Executed,
		Popped:             st.Popped,
		Interrupted:        st.Interrupted,
		ExecutedPriorities: exec,
		MeanRankError:      mean,
		MaxRankError:       maxErr,
	}
	if s.wl.lats != nil {
		// Workers have exited (engine Wait returned), so the per-worker
		// histograms are quiescent; merge and extract the SLO quantiles.
		var h stats.Hist
		for i := range s.wl.lats {
			h.Merge(&s.wl.lats[i].h)
		}
		res.LatencyP50 = time.Duration(h.Quantile(0.50))
		res.LatencyP99 = time.Duration(h.Quantile(0.99))
		res.LatencyP999 = time.Duration(h.Quantile(0.999))
	}
	return res
}

// JobProducer streams prioritized jobs into a TopKStream from one
// goroutine. Push after Close panics; Close is idempotent.
type JobProducer struct {
	p  *engine.Producer
	wl *topkWorkload
}

// Push streams one job. Lower priorities are executed first (approximately).
// When the job id is latency-tracked (StreamOptions.LatencyJobs) the
// arrival is timestamped here, before the push — sojourn time includes any
// producer-side batching delay, which is part of the latency a client sees.
func (p *JobProducer) Push(job, priority int64) {
	if p.wl.arrivals != nil && job >= 0 && job < int64(len(p.wl.arrivals)) {
		at := int64(time.Since(p.wl.base))
		if at == 0 {
			at = 1 // 0 means "never pushed" to the reader; 1ns skew is noise
		}
		p.wl.arrivals[job].Store(at)
	}
	p.p.Push(job, priority)
}

// Flush makes any batched-but-buffered jobs visible to the workers without
// closing the producer.
func (p *JobProducer) Flush() { p.p.Flush() }

// Close marks this arrival stream finished; once all producers close and
// the queue drains, Wait returns.
func (p *JobProducer) Close() { p.p.Close() }

// rankErrors computes the displacement of an executed priority sequence
// from its sorted order: idx[ideal] is the execution position of the job
// that should have run ideal-th (ties broken by execution order, which is
// the kindest consistent assignment), and each job contributes
// |ideal - idx[ideal]|.
func rankErrors(exec []int64) (mean float64, max int64) {
	n := len(exec)
	if n == 0 {
		return 0, 0
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return exec[idx[a]] < exec[idx[b]] })
	var sum int64
	for ideal, pos := range idx {
		d := int64(ideal) - int64(pos)
		if d < 0 {
			d = -d
		}
		sum += d
		if d > max {
			max = d
		}
	}
	return float64(sum) / float64(n), max
}

// TopKRunOptions configure ParallelTopK, the self-driving streaming
// benchmark: StreamOptions.Producers arrival goroutines each emit
// JobsPerProducer jobs at Rate jobs per second.
type TopKRunOptions struct {
	// StreamOptions configure the underlying stream. Execute must be nil —
	// the harness owns it for exactly-once verification.
	StreamOptions
	// JobsPerProducer is the number of jobs each producer emits (>= 1).
	JobsPerProducer int
	// Rate is each producer's arrival rate in jobs per second; 0 streams
	// unthrottled. Rate-limited producers follow an absolute schedule
	// (job i of a producer is released at start + i/Rate), so pacing does
	// not drift with sleep overshoot.
	Rate int
}

// ParallelTopK runs the streaming top-k job scheduler end to end: producer
// goroutines emit jobs with uniformly random distinct priorities at the
// configured arrival rate, workers execute them in relaxed priority order,
// and the result reports the rank error of the executed order against the
// true priority order. Every job is verified to execute exactly once; a
// lost or duplicated job is an error, not a statistic.
func ParallelTopK(opts TopKRunOptions) (StreamResult, error) {
	if opts.Execute != nil {
		return StreamResult{}, fmt.Errorf("sched: ParallelTopK owns Execute; found non-nil")
	}
	if opts.JobsPerProducer < 1 {
		return StreamResult{}, fmt.Errorf("sched: need JobsPerProducer >= 1, got %d", opts.JobsPerProducer)
	}
	if opts.Rate < 0 {
		return StreamResult{}, fmt.Errorf("sched: need Rate >= 0, got %d", opts.Rate)
	}
	// NewTopKStream re-checks this, but the hits array is sized from it
	// first — reject here so bad options error instead of panicking.
	if opts.Producers < 1 {
		return StreamResult{}, fmt.Errorf("sched: streaming needs Producers >= 1, got %d", opts.Producers)
	}
	total := opts.Producers * opts.JobsPerProducer
	hits := make([]atomic.Int32, total)
	so := opts.StreamOptions
	so.Execute = func(_ int, job, _ int64) { hits[job].Add(1) }
	// Job ids are dense in [0, total), so every job is latency-tracked and
	// the result's SLO quantiles cover the whole run.
	so.LatencyJobs = total
	s, err := NewTopKStream(so)
	if err != nil {
		return StreamResult{}, err
	}
	// Distinct priorities via a random permutation of [0, total): the
	// priority value doubles as the job's position in the true priority
	// order, so the rank-error accounting is exact.
	priorities := rng.New(rng.Mix64(opts.Seed) ^ 0x73747265616d).Perm(total)
	var interval time.Duration
	if opts.Rate > 0 {
		interval = time.Second / time.Duration(opts.Rate)
	}
	for p := 0; p < opts.Producers; p++ {
		go func(p int, prod *JobProducer) {
			defer prod.Close()
			start := time.Now()
			base := p * opts.JobsPerProducer
			for i := 0; i < opts.JobsPerProducer; i++ {
				if interval > 0 {
					if d := time.Until(start.Add(time.Duration(i) * interval)); d > 0 {
						time.Sleep(d)
					}
				}
				job := base + i
				prod.Push(int64(job), int64(priorities[job]))
			}
		}(p, s.NewProducer())
	}
	res := s.Wait()
	if res.Interrupted {
		// A Deadline drain relaxes exactly-once to at-most-once: the jobs
		// that did run must still be unique, but the tail may be unserved.
		for job := range hits {
			if got := hits[job].Load(); got > 1 {
				return res, fmt.Errorf("sched: job %d executed %d times", job, got)
			}
		}
		return res, nil
	}
	if res.Jobs != int64(total) {
		return res, fmt.Errorf("sched: executed %d of %d streamed jobs", res.Jobs, total)
	}
	for job := range hits {
		if got := hits[job].Load(); got != 1 {
			return res, fmt.Errorf("sched: job %d executed %d times", job, got)
		}
	}
	return res, nil
}
