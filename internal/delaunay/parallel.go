package delaunay

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"relaxsched/internal/engine"
	"relaxsched/internal/geom"
)

// This file is the concurrent randomized incremental Delaunay triangulation:
// a workload over the generic relaxed-execution engine where every task is
// one point insertion, prioritized by its permutation index. Unlike the
// static-DAG workload (core.ParallelRun over BuildDAG's pre-extracted
// conflict DAG), dependencies here are discovered *on line, during
// execution*: a popped insertion locates its conflict triangle by walking
// the history of destroyed triangles, then tries to claim the whole
// Bowyer-Watson cavity (plus its boundary ring) through per-triangle atomic
// claim states. If any cavity triangle is currently owned by a racing
// insertion, the attempt releases everything it claimed and reports
// engine.Blocked — the engine re-inserts the point, exactly the paper's
// "task stays in the scheduler". On success the cavity is retriangulated
// and atomically retired: each destroyed triangle is stamped with the arena
// id range of the star that replaced it before being marked dead, so
// later-arriving points that last saw a now-dead triangle re-locate by
// containment descent through those redirects (the Guibas-Knuth history
// walk). The final mesh is the Delaunay triangulation, which for points in
// general position is unique — identical to the sequential Triangulate
// output for any insertion order.

// Claim states of one concurrent triangle. Free triangles are alive and
// unowned; a claimed triangle is being read or restructured by exactly one
// in-flight insertion; dead is terminal (ids are never reused).
const (
	ptriFree    int32 = 0
	ptriClaimed int32 = 1
	ptriDead    int32 = -1
)

// Triangle storage is a chunked arena: ids are dense int32s, chunks are
// allocated on demand behind atomic pointers, and nothing ever moves — so
// racing workers can hold triangle pointers across an allocation by any
// other worker.
const (
	ptriChunkBits = 12
	ptriChunkSize = 1 << ptriChunkBits
	ptriChunkMask = ptriChunkSize - 1
)

type ptriChunk [ptriChunkSize]ptri

// ptri is one triangle of the concurrent triangulation. v is immutable
// after construction (any worker may read it for containment and
// circumcircle tests); nb is read and written only while the triangle is
// claimed (or before it is published); redir is written once, before the
// dead mark, and read only after observing state == ptriDead — the atomic
// state transitions order every access.
type ptri struct {
	v     [3]int32 // vertex point ids, counter-clockwise; immutable
	nb    [3]int32 // neighbor across the edge opposite v[i]; -1 = none
	redir [2]int32 // id range [redir[0], redir[1]] of the replacing star
	state atomic.Int32
}

// ParallelOptions configure a ParallelTriangulate run.
type ParallelOptions struct {
	// ExecOptions are the shared engine knobs: queue backend and relaxation
	// multiplier, worker count, batching (the number of insertions a
	// worker moves per queue operation), and seeding.
	engine.ExecOptions
}

// ParallelResult is the wasted-work accounting of a parallel triangulation.
type ParallelResult struct {
	// Inserted is the number of successful point insertions (== n).
	Inserted int64
	// Pops is the total number of queue pops.
	Pops int64
	// Blocked counts pops whose cavity claim failed against a racing
	// insertion and were re-inserted — this workload's extra steps.
	Blocked int64
	// Tris is the total number of triangles ever allocated.
	Tris int64
}

// parScratch is the per-worker retriangulation scratch (the concurrent
// analogue of Triangulation's cavity/candidates/byFirst state).
type parScratch struct {
	cavity   []int32
	boundary []int32
	claimed  []int32
	edges    []pedge
	byFirst  map[int32]int32
	bySecond map[int32]int32
}

// pedge is one cavity boundary edge: directed (a, b) with the outer
// neighbor beyond it and the dying cavity triangle it came from.
type pedge struct {
	a, b, outer, from int32
}

// parTriangulation is the engine workload. It is safe for concurrent
// TryExecute calls: all cross-worker coordination goes through the
// per-triangle claim states and the append-only arena.
type parTriangulation struct {
	pts   []geom.Point // input points followed by the 3 super vertices
	n     int
	order []int // insertion permutation; priority = position

	// hint[p] is the last triangle (possibly dead by now) known to contain
	// point p. Only the current holder of p's task reads or writes it, and
	// the queue's internal synchronization orders a Blocked attempt's write
	// before the re-inserted pair's next pop — so no atomics are needed.
	hint []int32

	chunks  []atomic.Pointer[ptriChunk]
	cursor  atomic.Int64 // next free arena id
	maxTris int64

	scratch []parScratch

	failed atomic.Bool // fast-path flag: drain remaining tasks on error
	errMu  sync.Mutex
	err    error
}

// newParallel builds the shared state: points + super-triangle, the root
// triangle at arena id 0, and the (validated) insertion permutation.
func newParallel(points []geom.Point, order []int) (*parTriangulation, error) {
	n := len(points)
	if order == nil {
		order = make([]int, n)
		for i := range order {
			order[i] = i
		}
	} else {
		if len(order) != n {
			return nil, fmt.Errorf("delaunay: order has %d entries for %d points", len(order), n)
		}
		seen := make([]bool, n)
		for _, p := range order {
			if p < 0 || p >= n || seen[p] {
				return nil, fmt.Errorf("delaunay: order is not a permutation of 0..%d", n-1)
			}
			seen[p] = true
		}
	}
	// The arena bound is generous: a randomized insertion order creates an
	// expected O(n) triangles (~9n); exhausting 32n means the permutation
	// was adversarial enough to abort the run with a clear error.
	maxTris := int64(32)*int64(n) + 1024
	w := &parTriangulation{
		pts:     make([]geom.Point, n, n+3),
		n:       n,
		order:   order,
		hint:    make([]int32, n),
		maxTris: maxTris,
		chunks:  make([]atomic.Pointer[ptriChunk], (maxTris+ptriChunkSize-1)>>ptriChunkBits),
	}
	copy(w.pts, points)
	sa, sb, sc := superVertices(points)
	w.pts = append(w.pts, sa, sb, sc)

	base, _ := w.alloc(1)
	root := w.tri(base)
	root.v = [3]int32{int32(n), int32(n + 1), int32(n + 2)}
	root.nb = [3]int32{-1, -1, -1}
	if geom.Orient2D(sa, sb, sc) != geom.Positive {
		root.v[1], root.v[2] = root.v[2], root.v[1]
	}
	return w, nil
}

func (w *parTriangulation) tri(id int32) *ptri {
	return &w.chunks[id>>ptriChunkBits].Load()[id&ptriChunkMask]
}

// alloc reserves k consecutive arena ids, materializing any chunks the
// range touches. ok is false when the arena bound is exhausted.
func (w *parTriangulation) alloc(k int) (int32, bool) {
	base := w.cursor.Add(int64(k)) - int64(k)
	if base+int64(k) > w.maxTris {
		return 0, false
	}
	for ci := base >> ptriChunkBits; ci <= (base+int64(k)-1)>>ptriChunkBits; ci++ {
		if w.chunks[ci].Load() == nil {
			w.chunks[ci].CompareAndSwap(nil, new(ptriChunk))
		}
	}
	return int32(base), true
}

func (w *parTriangulation) inConflict(tr *ptri, pp geom.Point) bool {
	return geom.InCircle(w.pts[tr.v[0]], w.pts[tr.v[1]], w.pts[tr.v[2]], pp) == geom.Positive
}

// containingChild descends one history level: among the star triangles
// that replaced dead tr, find the one containing pp. The star covers the
// whole cavity region tr belonged to, so the scan cannot miss unless the
// invariant "tr contained pp" was already broken.
func (w *parTriangulation) containingChild(tr *ptri, pp geom.Point) (int32, bool) {
	for c := tr.redir[0]; c <= tr.redir[1]; c++ {
		ct := w.tri(c)
		if geom.InTriangle(w.pts[ct.v[0]], w.pts[ct.v[1]], w.pts[ct.v[2]], pp) {
			return c, true
		}
	}
	return 0, false
}

func (w *parTriangulation) releaseAll(claimed []int32) {
	for _, id := range claimed {
		w.tri(id).state.Store(ptriFree)
	}
}

func (w *parTriangulation) fail(err error) {
	w.errMu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.errMu.Unlock()
	w.failed.Store(true)
}

func containsID(ids []int32, id int32) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// Frontier seeds every point insertion, prioritized by permutation index.
func (w *parTriangulation) Frontier(emit func(value, priority int64)) {
	for pos, p := range w.order {
		emit(int64(p), int64(pos))
	}
}

// TryExecute attempts one point insertion: locate, claim, retriangulate,
// publish. It returns Blocked — after releasing every claim it took — the
// moment it meets a triangle owned by a racing insertion, and Discarded
// only while draining after a run-level failure.
func (w *parTriangulation) TryExecute(ctx *engine.Ctx, value, _ int64) engine.Status {
	if w.failed.Load() {
		return engine.Discarded
	}
	p := int32(value)
	pp := w.pts[p]
	s := &w.scratch[ctx.Worker]

	// 1. Locate: descend the history redirects from the last known triangle
	// to the alive triangle containing p. Dead triangles' redirect ranges
	// are immutable once the dead mark is visible, so the walk needs no
	// claims; it ends on an alive (free or transiently claimed) triangle.
	t := w.hint[p]
	for {
		tr := w.tri(t)
		if tr.state.Load() != ptriDead {
			break
		}
		child, ok := w.containingChild(tr, pp)
		if !ok {
			w.fail(fmt.Errorf("delaunay: parallel: history descent lost point %d", p))
			return engine.Discarded
		}
		t = child
	}
	w.hint[p] = t // keep the descent's progress across Blocked attempts

	// 2. Claim the containing triangle — the cavity seed. A failed CAS
	// means a racing insertion owns it (or just killed it): the dependency
	// is discovered here, during execution, not from a pre-built DAG.
	seed := w.tri(t)
	if !seed.state.CompareAndSwap(ptriFree, ptriClaimed) {
		return engine.Blocked
	}
	if !w.inConflict(seed, pp) {
		// The containing triangle's circumcircle always strictly contains
		// interior points; equality happens only when p coincides with a
		// vertex, i.e. a duplicate of an already-inserted point.
		seed.state.Store(ptriFree)
		w.fail(fmt.Errorf("delaunay: point %d conflicts with nothing; duplicate point?", p))
		return engine.Discarded
	}

	// 3. Grow the conflict cavity, claiming every triangle it reads: cavity
	// members and the boundary ring beyond them (whose neighbor pointers
	// the retriangulation rewrites). Any claim lost to a racing insertion
	// aborts the whole attempt.
	s.claimed = append(s.claimed[:0], t)
	s.cavity = append(s.cavity[:0], t)
	s.boundary = s.boundary[:0]
	for head := 0; head < len(s.cavity); head++ {
		tr := w.tri(s.cavity[head])
		for k := 0; k < 3; k++ {
			nb := tr.nb[k]
			if nb < 0 || containsID(s.claimed, nb) {
				continue
			}
			nbt := w.tri(nb)
			if !nbt.state.CompareAndSwap(ptriFree, ptriClaimed) {
				w.releaseAll(s.claimed)
				return engine.Blocked
			}
			s.claimed = append(s.claimed, nb)
			if w.inConflict(nbt, pp) {
				s.cavity = append(s.cavity, nb)
			} else {
				s.boundary = append(s.boundary, nb)
			}
		}
	}

	// 4. Retriangulate: collect the cavity boundary edges, allocate the
	// star, link the fan (as in the sequential Insert) and repoint the
	// outer neighbors. Everything here touches only claimed triangles and
	// not-yet-published arena slots.
	s.edges = s.edges[:0]
	for _, ti := range s.cavity {
		tr := w.tri(ti)
		for k := 0; k < 3; k++ {
			nb := tr.nb[k]
			if nb >= 0 && containsID(s.cavity, nb) {
				continue // internal edge
			}
			s.edges = append(s.edges, pedge{a: tr.v[(k+1)%3], b: tr.v[(k+2)%3], outer: nb, from: ti})
		}
	}
	base, ok := w.alloc(len(s.edges))
	if !ok {
		w.releaseAll(s.claimed)
		w.fail(fmt.Errorf("delaunay: parallel: triangle arena exhausted (%d triangles)", w.maxTris))
		return engine.Discarded
	}
	clear(s.byFirst)
	clear(s.bySecond)
	for i, e := range s.edges {
		nt := base + int32(i)
		tr := w.tri(nt)
		tr.v = [3]int32{e.a, e.b, p}
		tr.nb = [3]int32{-1, -1, e.outer}
		s.byFirst[e.a] = nt
		s.bySecond[e.b] = nt
		if e.outer >= 0 {
			out := w.tri(e.outer)
			for x := 0; x < 3; x++ {
				if out.nb[x] == e.from {
					out.nb[x] = nt
					break
				}
			}
		}
	}
	// Triangle (a, b, p) meets byFirst[b] across edge (b, p) and
	// bySecond[a] across edge (p, a).
	for i := range s.edges {
		tr := w.tri(base + int32(i))
		tr.nb[0] = s.byFirst[tr.v[1]]
		tr.nb[1] = s.bySecond[tr.v[0]]
	}

	// 5. Publish: stamp each cavity triangle with the star's id range and
	// mark it dead (the dead mark's release ordering makes the fully built
	// star visible to history descents), then release the boundary ring.
	// The star triangles were never claimed — they become reachable, and
	// therefore claimable, exactly now.
	last := base + int32(len(s.edges)) - 1
	for _, ti := range s.cavity {
		tr := w.tri(ti)
		tr.redir[0], tr.redir[1] = base, last
		tr.state.Store(ptriDead)
	}
	for _, bi := range s.boundary {
		w.tri(bi).state.Store(ptriFree)
	}
	return engine.Executed
}

// triangles extracts the final mesh (meaningful only at quiescence),
// excluding super-triangle-incident faces.
func (w *parTriangulation) triangles() []Triangle {
	total := w.cursor.Load()
	var out []Triangle
	for id := int64(0); id < total; id++ {
		tr := w.tri(int32(id))
		if tr.state.Load() == ptriDead {
			continue
		}
		if int(tr.v[0]) >= w.n || int(tr.v[1]) >= w.n || int(tr.v[2]) >= w.n {
			continue
		}
		out = append(out, Triangle{A: int(tr.v[0]), B: int(tr.v[1]), C: int(tr.v[2])})
	}
	return out
}

// ParallelTriangulate builds the Delaunay triangulation of points with
// worker goroutines over a concurrent relaxed queue — the first engine
// workload whose dependency DAG is discovered during execution rather than
// seeded or pre-built. Insertions are prioritized by permutation index
// (pass a pre-shuffled order, or nil for 0..n-1, to model the randomized
// incremental algorithm); a relaxed pop order only costs Blocked retries,
// never correctness, because the Delaunay triangulation of points in
// general position is unique. The mesh therefore equals Triangulate's for
// the same points (compare with MeshesEqual; triangle order differs).
func ParallelTriangulate(points []geom.Point, order []int, opts ParallelOptions) ([]Triangle, ParallelResult, error) {
	if opts.Threads < 1 {
		return nil, ParallelResult{}, fmt.Errorf("delaunay: need Threads >= 1, got %d", opts.Threads)
	}
	w, err := newParallel(points, order)
	if err != nil {
		return nil, ParallelResult{}, err
	}
	w.scratch = make([]parScratch, opts.Threads)
	for i := range w.scratch {
		w.scratch[i].byFirst = make(map[int32]int32, 8)
		w.scratch[i].bySecond = make(map[int32]int32, 8)
	}
	stats, err := engine.Run(w, engine.Options{ExecOptions: opts.ExecOptions})
	res := ParallelResult{
		Inserted: stats.Executed,
		Pops:     stats.Popped,
		Blocked:  stats.Reinserted,
		Tris:     w.cursor.Load(),
	}
	if err != nil {
		return nil, res, fmt.Errorf("delaunay: %w", err)
	}
	if w.err != nil {
		return nil, res, w.err
	}
	if stats.Failed > 0 {
		return nil, res, fmt.Errorf("delaunay: %d insertions quarantined (first: %v)", stats.Failed, stats.Failures[0].Err)
	}
	if stats.Executed != int64(w.n) {
		return nil, res, fmt.Errorf("delaunay: parallel run inserted %d of %d points", stats.Executed, w.n)
	}
	return w.triangles(), res, nil
}

// canonTriangle rotates t so its smallest vertex comes first, preserving
// orientation.
func canonTriangle(t Triangle) Triangle {
	switch {
	case t.B < t.A && t.B < t.C:
		return Triangle{A: t.B, B: t.C, C: t.A}
	case t.C < t.A && t.C < t.B:
		return Triangle{A: t.C, B: t.A, C: t.B}
	default:
		return t
	}
}

// MeshesEqual reports whether two meshes contain the same triangles,
// ignoring triangle order and vertex rotation (orientation still matters:
// both meshes are CCW). Use it to compare ParallelTriangulate's output —
// whose triangle order depends on scheduling — against Triangulate's.
func MeshesEqual(a, b []Triangle) bool {
	if len(a) != len(b) {
		return false
	}
	ca := make([]Triangle, len(a))
	cb := make([]Triangle, len(b))
	for i := range a {
		ca[i] = canonTriangle(a[i])
		cb[i] = canonTriangle(b[i])
	}
	less := func(s []Triangle) func(i, j int) bool {
		return func(i, j int) bool {
			if s[i].A != s[j].A {
				return s[i].A < s[j].A
			}
			if s[i].B != s[j].B {
				return s[i].B < s[j].B
			}
			return s[i].C < s[j].C
		}
	}
	sort.Slice(ca, less(ca))
	sort.Slice(cb, less(cb))
	for i := range ca {
		if ca[i] != cb[i] {
			return false
		}
	}
	return true
}
