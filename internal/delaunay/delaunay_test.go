package delaunay

import (
	"testing"
	"testing/quick"

	"relaxsched/internal/core"
	"relaxsched/internal/geom"
	"relaxsched/internal/multiqueue"
	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
)

func randomPoints(n int, seed uint64) []geom.Point {
	r := rng.New(seed)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: r.Float64(), Y: r.Float64()}
	}
	return pts
}

func TestTriangleCounts(t *testing.T) {
	// A triangulation of n points with h hull points has 2n - h - 2
	// triangles; for a square it is 2 triangles either way.
	square := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 0, Y: 1}}
	tris, err := Triangulate(square, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tris) != 2 {
		t.Fatalf("square triangulated into %d triangles, want 2", len(tris))
	}
}

func TestSingleTriangle(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 1, Y: 2}}
	tris, err := Triangulate(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tris) != 1 {
		t.Fatalf("%d triangles, want 1", len(tris))
	}
	tr := tris[0]
	a, b, c := pts[tr.A], pts[tr.B], pts[tr.C]
	if geom.Orient2D(a, b, c) != geom.Positive {
		t.Fatal("triangle not CCW")
	}
}

func TestFewPoints(t *testing.T) {
	for n := 0; n <= 2; n++ {
		tris, err := Triangulate(randomPoints(n, 5), nil)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(tris) != 0 {
			t.Fatalf("n=%d: %d triangles", n, len(tris))
		}
	}
}

func TestDelaunayPropertyRandom(t *testing.T) {
	for _, n := range []int{10, 50, 200} {
		pts := randomPoints(n, uint64(n))
		tri := New(pts)
		for i := range pts {
			if err := tri.Insert(i); err != nil {
				t.Fatalf("n=%d insert %d: %v", n, i, err)
			}
		}
		if err := tri.CheckDelaunay(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Euler: 2n - h - 2 triangles; bound loosely.
		tris := tri.Triangles()
		if len(tris) < n-2 || len(tris) > 2*n {
			t.Fatalf("n=%d: %d triangles out of plausible range", n, len(tris))
		}
	}
}

func TestInsertionOrderIrrelevant(t *testing.T) {
	// The Delaunay triangulation of points in general position is unique,
	// so any insertion order yields the same triangle set.
	pts := randomPoints(60, 77)
	canon := func(tris []Triangle) map[[3]int]bool {
		m := make(map[[3]int]bool, len(tris))
		for _, tr := range tris {
			k := [3]int{tr.A, tr.B, tr.C}
			// rotate smallest first (orientation preserved)
			for k[0] > k[1] || k[0] > k[2] {
				k[0], k[1], k[2] = k[1], k[2], k[0]
			}
			m[k] = true
		}
		return m
	}
	base, err := Triangulate(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	baseSet := canon(base)
	r := rng.New(123)
	for trial := 0; trial < 3; trial++ {
		order := r.Perm(len(pts))
		got, err := Triangulate(pts, order)
		if err != nil {
			t.Fatal(err)
		}
		gotSet := canon(got)
		if len(gotSet) != len(baseSet) {
			t.Fatalf("trial %d: %d vs %d triangles", trial, len(gotSet), len(baseSet))
		}
		for k := range baseSet {
			if !gotSet[k] {
				t.Fatalf("trial %d: triangle %v missing", trial, k)
			}
		}
	}
}

func TestDuplicatePointRejected(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 1}, {X: 1, Y: 0}}
	_, err := Triangulate(pts, nil)
	if err == nil {
		t.Fatal("duplicate point not rejected")
	}
}

func TestCollinearPoints(t *testing.T) {
	// All points on a line: no real triangles, but insertion must succeed.
	pts := make([]geom.Point, 10)
	for i := range pts {
		pts[i] = geom.Point{X: float64(i), Y: 0}
	}
	tris, err := Triangulate(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tris) != 0 {
		t.Fatalf("collinear points produced %d triangles", len(tris))
	}
}

func TestCocircularGrid(t *testing.T) {
	// A regular grid has many cocircular quadruples; exact predicates must
	// keep the algorithm consistent.
	var pts []geom.Point
	for y := 0; y < 5; y++ {
		for x := 0; x < 5; x++ {
			pts = append(pts, geom.Point{X: float64(x), Y: float64(y)})
		}
	}
	tri := New(pts)
	for i := range pts {
		if err := tri.Insert(i); err != nil {
			t.Fatal(err)
		}
	}
	// 5x5 grid: hull is the 16 boundary points, 2*25-16-2 = 32 triangles.
	if got := len(tri.Triangles()); got != 32 {
		t.Fatalf("grid triangulated into %d triangles, want 32", got)
	}
}

func TestInsertErrors(t *testing.T) {
	pts := randomPoints(5, 3)
	tri := New(pts)
	if err := tri.Insert(-1); err == nil {
		t.Fatal("negative id accepted")
	}
	if err := tri.Insert(5); err == nil {
		t.Fatal("out-of-range id accepted")
	}
	if err := tri.Insert(2); err != nil {
		t.Fatal(err)
	}
	if err := tri.Insert(2); err == nil {
		t.Fatal("double insert accepted")
	}
	if tri.NumInserted() != 1 {
		t.Fatalf("NumInserted = %d", tri.NumInserted())
	}
}

func TestTriangulateOrderLengthMismatch(t *testing.T) {
	if _, err := Triangulate(randomPoints(4, 1), []int{0, 1}); err == nil {
		t.Fatal("short order accepted")
	}
}

func TestBuildDAGValidAndNonTrivial(t *testing.T) {
	pts := randomPoints(300, 9)
	dag, tri, err := BuildDAG(pts)
	if err != nil {
		t.Fatal(err)
	}
	if err := dag.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := tri.CheckDelaunay(); err != nil {
		t.Fatal(err)
	}
	if dag.NumDeps() == 0 {
		t.Fatal("no dependencies recorded")
	}
	// Every point after the first few should depend on something: the
	// in-circumcircle relation is dense early on.
	withDeps := 0
	for j := 1; j < dag.N; j++ {
		if len(dag.Preds[j]) > 0 {
			withDeps++
		}
	}
	if withDeps < dag.N/2 {
		t.Fatalf("only %d/%d points have dependencies", withDeps, dag.N)
	}
}

func TestDAGFirstPointDominates(t *testing.T) {
	// Point 0's insertion destroys the root triangle whose conflict list
	// holds everything, so every other point depends on point 0.
	pts := randomPoints(50, 4)
	dag, _, err := BuildDAG(pts)
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j < dag.N; j++ {
		found := false
		for _, p := range dag.Preds[j] {
			if p == 0 {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("point %d does not depend on point 0", j)
		}
	}
}

func TestRelaxedExecutionMatchesSequentialMesh(t *testing.T) {
	// Execute the incremental algorithm through a relaxed scheduler,
	// inserting points into a second triangulation in the relaxed order;
	// the final mesh must be Delaunay and identical in size.
	pts := randomPoints(150, 31)
	dag, seqTri, err := BuildDAG(pts)
	if err != nil {
		t.Fatal(err)
	}
	relTri := New(pts)
	res, err := core.Run(dag, sched.NewKRelaxed(dag.N, 8), core.Options{
		OnProcess: func(label int) {
			if err := relTri.Insert(label); err != nil {
				t.Fatalf("relaxed insert %d: %v", label, err)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Processed != int64(dag.N) {
		t.Fatalf("processed %d", res.Processed)
	}
	if err := relTri.CheckDelaunay(); err != nil {
		t.Fatal(err)
	}
	if len(relTri.Triangles()) != len(seqTri.Triangles()) {
		t.Fatalf("mesh sizes differ: %d vs %d", len(relTri.Triangles()), len(seqTri.Triangles()))
	}
}

func TestExtraStepsGrowSlowlyWithN(t *testing.T) {
	// Theorem 3.3: extra steps are O(k^4 log n) — in particular sublinear
	// in n. Check extra steps stay far below n for a moderate k.
	const k = 4
	for _, n := range []int{200, 800} {
		pts := randomPoints(n, uint64(n)*7)
		dag, _, err := BuildDAG(pts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(dag, sched.NewKRelaxed(n, k), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.ExtraSteps > int64(n) {
			t.Fatalf("n=%d: extra steps %d not sublinear", n, res.ExtraSteps)
		}
	}
}

// Property: random point sets triangulate to valid Delaunay meshes with a
// valid dependency DAG, under random relaxed executions.
func TestDelaunayPipelineProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 10 + r.Intn(80)
		pts := randomPoints(n, seed)
		dag, tri, err := BuildDAG(pts)
		if err != nil || dag.Validate() != nil {
			return false
		}
		if tri.CheckDelaunay() != nil {
			return false
		}
		mq := multiqueue.New(n, 1+r.Intn(4), 2, multiqueue.RandomQueue, seed)
		res, err := core.Run(dag, mq, core.Options{})
		return err == nil && res.Processed == int64(n)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTriangulate(b *testing.B) {
	pts := randomPoints(2000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Triangulate(pts, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildDAG(b *testing.B) {
	pts := randomPoints(2000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := BuildDAG(pts); err != nil {
			b.Fatal(err)
		}
	}
}
