// Package delaunay implements randomized incremental Delaunay triangulation
// by the Bowyer-Watson algorithm with a Guibas-Knuth/Clarkson-Shor conflict
// graph, in expected O(n log n) time for random insertion orders.
//
// Beyond producing the triangulation, the package extracts the dependency
// DAG that the paper's framework (Section 3) executes under relaxed
// schedulers: when point i is inserted, every not-yet-inserted point j
// lying in the circumcircle of a destroyed (cavity) triangle "encroaches"
// on i's update — right before i is added, i's and j's encroaching regions
// share a triangle, hence at least an edge — so j depends on i. This is the
// operational dependency of Blelloch, Gu, Shun & Sun (SPAA 2016) [10],
// which satisfies the p_ij <= C/i property that Theorem 3.3 requires.
//
// The implementation uses a super-triangle whose vertices lie far outside
// the input's bounding box; triangles incident to super vertices are
// excluded from the reported mesh. Predicates are exact (package geom), so
// the algorithm is robust for all float64 inputs; exact duplicate points
// are rejected.
package delaunay

import (
	"fmt"

	"relaxsched/internal/core"
	"relaxsched/internal/geom"
)

// tri is one triangle of the evolving triangulation.
type tri struct {
	v     [3]int32 // vertex point ids, counter-clockwise
	nb    [3]int32 // nb[i] is the neighbor across the edge opposite v[i]; -1 = none
	alive bool
	pts   []int32 // conflict list: uninserted points inside the circumcircle
}

// Triangulation is an incremental Delaunay triangulation under
// construction. Create with New, add points with Insert (in any order), and
// read the result with Triangles.
type Triangulation struct {
	pts      []geom.Point // input points followed by the 3 super vertices
	n        int          // number of input points
	tris     []tri
	inserted []bool
	conflict []int32 // uninserted point id -> some conflicting triangle

	// onDepend, when non-nil, is called as onDepend(i, j) for every
	// uninserted point j encroached by the insertion of i.
	onDepend func(i, j int)

	// scratch state
	visit      []int32 // triangle id -> visit epoch
	visitEpoch int32
	ptMark     []int32 // point id -> dedup epoch
	ptEpoch    int32
	cavity     []int32
	candidates []int32
	byFirst    map[int32]int32
	bySecond   map[int32]int32
}

// New prepares a triangulation over the given points. Points must be
// distinct; Insert reports an error otherwise. The slice is not retained.
func New(points []geom.Point) *Triangulation {
	n := len(points)
	t := &Triangulation{
		pts:      make([]geom.Point, n, n+3),
		n:        n,
		inserted: make([]bool, n),
		conflict: make([]int32, n),
		visit:    nil,
		ptMark:   make([]int32, n),
		byFirst:  make(map[int32]int32, 8),
		bySecond: make(map[int32]int32, 8),
	}
	copy(t.pts, points)

	sa, sb, sc := superVertices(points)
	t.pts = append(t.pts, sa, sb, sc)

	root := tri{
		v:     [3]int32{int32(n), int32(n + 1), int32(n + 2)},
		nb:    [3]int32{-1, -1, -1},
		alive: true,
	}
	// Ensure CCW.
	if geom.Orient2D(sa, sb, sc) != geom.Positive {
		root.v[1], root.v[2] = root.v[2], root.v[1]
	}
	root.pts = make([]int32, n)
	for i := range root.pts {
		root.pts[i] = int32(i)
	}
	t.tris = append(t.tris, root)
	t.visit = append(t.visit, 0)
	for i := range t.conflict {
		t.conflict[i] = 0
	}
	return t
}

// superVertices returns the three vertices of a super-triangle lying far
// outside the bounding box of points, so no input point's circumcircle
// relationship with real triangles is disturbed by the artificial corners.
func superVertices(points []geom.Point) (sa, sb, sc geom.Point) {
	minX, minY := 0.0, 0.0
	maxX, maxY := 1.0, 1.0
	if len(points) > 0 {
		minX, minY = points[0].X, points[0].Y
		maxX, maxY = minX, minY
		for _, p := range points[1:] {
			if p.X < minX {
				minX = p.X
			}
			if p.X > maxX {
				maxX = p.X
			}
			if p.Y < minY {
				minY = p.Y
			}
			if p.Y > maxY {
				maxY = p.Y
			}
		}
	}
	span := maxX - minX
	if maxY-minY > span {
		span = maxY - minY
	}
	if span <= 0 {
		span = 1
	}
	cx, cy := (minX+maxX)/2, (minY+maxY)/2
	const m = 1e6
	sa = geom.Point{X: cx - 3*m*span, Y: cy - m*span}
	sb = geom.Point{X: cx + 3*m*span, Y: cy - m*span}
	sc = geom.Point{X: cx, Y: cy + 3*m*span}
	return sa, sb, sc
}

// OnDepend registers a callback invoked as f(i, j) whenever the insertion
// of point i encroaches the not-yet-inserted point j. Used by BuildDAG.
func (t *Triangulation) OnDepend(f func(i, j int)) { t.onDepend = f }

// NumInserted returns the number of points inserted so far.
func (t *Triangulation) NumInserted() int {
	count := 0
	for _, in := range t.inserted {
		if in {
			count++
		}
	}
	return count
}

// inConflict reports whether point p is strictly inside ti's circumcircle.
func (t *Triangulation) inConflict(ti int32, p geom.Point) bool {
	tr := &t.tris[ti]
	return geom.InCircle(t.pts[tr.v[0]], t.pts[tr.v[1]], t.pts[tr.v[2]], p) == geom.Positive
}

// Insert adds point id p (0-based index into the constructor's slice) to
// the triangulation. Points may be inserted in any order; each id must be
// inserted exactly once.
func (t *Triangulation) Insert(p int) error {
	if p < 0 || p >= t.n {
		return fmt.Errorf("delaunay: point id %d out of range", p)
	}
	if t.inserted[p] {
		return fmt.Errorf("delaunay: point %d already inserted", p)
	}
	pp := t.pts[p]

	// 1. Grow the conflict cavity from the tracked conflicting triangle.
	start := t.conflict[p]
	if !t.tris[start].alive {
		return fmt.Errorf("delaunay: internal error: stale conflict pointer for point %d", p)
	}
	if !t.inConflict(start, pp) {
		// Exact duplicates (and only those, given exact predicates and the
		// conflict invariant) have no conflicting triangle.
		return fmt.Errorf("delaunay: point %d conflicts with nothing; duplicate point?", p)
	}
	t.visitEpoch++
	t.cavity = t.cavity[:0]
	t.cavity = append(t.cavity, start)
	t.visit[start] = t.visitEpoch
	for head := 0; head < len(t.cavity); head++ {
		ti := t.cavity[head]
		for k := 0; k < 3; k++ {
			nb := t.tris[ti].nb[k]
			if nb < 0 || t.visit[nb] == t.visitEpoch {
				continue
			}
			t.visit[nb] = t.visitEpoch
			if t.inConflict(nb, pp) {
				t.cavity = append(t.cavity, nb)
			}
		}
	}

	// 2. Collect candidate dependents: union of cavity conflict lists.
	t.ptEpoch++
	t.candidates = t.candidates[:0]
	for _, ti := range t.cavity {
		for _, q := range t.tris[ti].pts {
			if q == int32(p) || t.inserted[q] || t.ptMark[q] == t.ptEpoch {
				continue
			}
			t.ptMark[q] = t.ptEpoch
			t.candidates = append(t.candidates, q)
		}
	}
	if t.onDepend != nil {
		for _, q := range t.candidates {
			t.onDepend(p, int(q))
		}
	}

	// 3. Walk the cavity boundary and build the star of new triangles.
	clear(t.byFirst)
	clear(t.bySecond)
	firstNew := int32(len(t.tris))
	for _, ti := range t.cavity {
		for k := 0; k < 3; k++ {
			nb := t.tris[ti].nb[k]
			if nb >= 0 && t.visit[nb] == t.visitEpoch && t.inCavity(nb) {
				continue // internal edge
			}
			a := t.tris[ti].v[(k+1)%3]
			b := t.tris[ti].v[(k+2)%3]
			nt := int32(len(t.tris))
			t.tris = append(t.tris, tri{
				v:     [3]int32{a, b, int32(p)},
				nb:    [3]int32{-1, -1, nb},
				alive: true,
			})
			t.visit = append(t.visit, 0)
			t.byFirst[a] = nt
			t.bySecond[b] = nt
			if nb >= 0 {
				// Re-point the outer neighbor from the dead triangle to nt.
				for x := 0; x < 3; x++ {
					if t.tris[nb].nb[x] == ti {
						t.tris[nb].nb[x] = nt
						break
					}
				}
			}
		}
	}
	// Link the fan: triangle (a, b, p) meets byFirst[b] across edge (b, p)
	// and bySecond[a] across edge (p, a).
	for nt := firstNew; nt < int32(len(t.tris)); nt++ {
		a, b := t.tris[nt].v[0], t.tris[nt].v[1]
		t.tris[nt].nb[0] = t.byFirst[b]
		t.tris[nt].nb[1] = t.bySecond[a]
	}

	// 4. Redistribute conflicts of the dead triangles to the new ones.
	for _, q := range t.candidates {
		qq := t.pts[q]
		found := int32(-1)
		for nt := firstNew; nt < int32(len(t.tris)); nt++ {
			if t.inConflict(nt, qq) {
				t.tris[nt].pts = append(t.tris[nt].pts, q)
				found = nt
			}
		}
		if found >= 0 {
			t.conflict[q] = found
			continue
		}
		// q no longer conflicts with any new triangle; its pointer must be
		// rebuilt from the surviving lists it still appears on. Walk all
		// alive triangles as a (rare, exactness-guarded) fallback.
		if alt := t.findConflictSlow(qq); alt >= 0 {
			t.conflict[q] = alt
		} else {
			return fmt.Errorf("delaunay: point %d lost all conflicts; duplicate point?", q)
		}
	}

	// 5. Kill the cavity.
	for _, ti := range t.cavity {
		t.tris[ti].alive = false
		t.tris[ti].pts = nil
	}
	t.inserted[p] = true
	return nil
}

// inCavity reports whether a visited triangle belongs to the current
// cavity (it was visited and found in conflict). Visited non-conflicting
// triangles are boundary neighbors.
func (t *Triangulation) inCavity(ti int32) bool {
	for _, c := range t.cavity {
		if c == ti {
			return true
		}
	}
	return false
}

// findConflictSlow scans all alive triangles for one in conflict with q.
func (t *Triangulation) findConflictSlow(q geom.Point) int32 {
	for ti := range t.tris {
		if t.tris[ti].alive && t.inConflict(int32(ti), q) {
			return int32(ti)
		}
	}
	return -1
}

// Triangle is one triangle of the final mesh, as indices into the input
// point slice, in counter-clockwise order.
type Triangle struct {
	A, B, C int
}

// Triangles returns the triangles of the current mesh, excluding those
// incident to the artificial super-triangle vertices.
func (t *Triangulation) Triangles() []Triangle {
	var out []Triangle
	for i := range t.tris {
		tr := &t.tris[i]
		if !tr.alive {
			continue
		}
		if int(tr.v[0]) >= t.n || int(tr.v[1]) >= t.n || int(tr.v[2]) >= t.n {
			continue
		}
		out = append(out, Triangle{A: int(tr.v[0]), B: int(tr.v[1]), C: int(tr.v[2])})
	}
	return out
}

// CheckDelaunay verifies the empty-circumcircle property of the reported
// mesh against every input point, in O(T*n) time (use on small inputs /
// tests). It returns the first violation found.
func (t *Triangulation) CheckDelaunay() error {
	triangles := t.Triangles()
	for _, tr := range triangles {
		a, b, c := t.pts[tr.A], t.pts[tr.B], t.pts[tr.C]
		for p := 0; p < t.n; p++ {
			if p == tr.A || p == tr.B || p == tr.C || !t.inserted[p] {
				continue
			}
			if geom.InCircle(a, b, c, t.pts[p]) == geom.Positive {
				return fmt.Errorf("delaunay: point %d inside circumcircle of (%d,%d,%d)", p, tr.A, tr.B, tr.C)
			}
		}
	}
	return nil
}

// Triangulate builds the Delaunay triangulation of points, inserting in the
// given order (pass nil for 0..n-1). It returns the mesh triangles.
func Triangulate(points []geom.Point, order []int) ([]Triangle, error) {
	t := New(points)
	if order == nil {
		for i := range points {
			if err := t.Insert(i); err != nil {
				return nil, err
			}
		}
	} else {
		if len(order) != len(points) {
			return nil, fmt.Errorf("delaunay: order has %d entries for %d points", len(order), len(points))
		}
		for _, i := range order {
			if err := t.Insert(i); err != nil {
				return nil, err
			}
		}
	}
	return t.Triangles(), nil
}

// BuildDAG runs the sequential incremental algorithm in label order
// (0..n-1) and returns the dependency DAG of Section 3 together with the
// finished triangulation. Points must already be in the (random) label
// order; shuffle before calling to model a randomized incremental run.
func BuildDAG(points []geom.Point) (*core.DAG, *Triangulation, error) {
	t := New(points)
	dag := core.NewDAG(len(points))
	t.OnDepend(func(i, j int) { dag.AddDep(i, j) })
	for i := range points {
		if err := t.Insert(i); err != nil {
			return nil, nil, err
		}
	}
	t.OnDepend(nil)
	return dag, t, nil
}
