package delaunay

import (
	"fmt"
	"testing"

	"relaxsched/internal/cq"
	"relaxsched/internal/engine"
	"relaxsched/internal/geom"
	"relaxsched/internal/rng"
)

// TestParallelDeterminism is the mesh-identity gate: for the same point set
// and permutation, ParallelTriangulate must produce exactly Triangulate's
// mesh on every backend, thread count and batch size — the Delaunay
// triangulation of points in general position is unique, so any divergence
// is a lost or corrupted insertion. Run with -race in CI.
func TestParallelDeterminism(t *testing.T) {
	const n = 600
	pts := randomPoints(n, 42)
	order := rng.New(7).Perm(n)
	want, err := Triangulate(pts, order)
	if err != nil {
		t.Fatal(err)
	}
	for _, backend := range cq.Backends() {
		for _, batch := range []int{0, 16} {
			for _, threads := range []int{1, 4, 8} {
				name := fmt.Sprintf("%s/batch%d/threads%d", backend, batch, threads)
				t.Run(name, func(t *testing.T) {
					got, res, err := ParallelTriangulate(pts, order, ParallelOptions{ExecOptions: engine.ExecOptions{Threads: threads, QueueMultiplier: 2, Backend: backend, BatchSize: batch, Seed: uint64(3 + threads)}})
					if err != nil {
						t.Fatal(err)
					}
					if res.Inserted != n {
						t.Fatalf("inserted %d of %d", res.Inserted, n)
					}
					if res.Pops != res.Inserted+res.Blocked {
						t.Fatalf("accounting: pops %d != inserted %d + blocked %d", res.Pops, res.Inserted, res.Blocked)
					}
					if !MeshesEqual(got, want) {
						t.Fatalf("parallel mesh (%d triangles) differs from sequential (%d)", len(got), len(want))
					}
				})
			}
		}
	}
}

// TestParallelDelaunayProperty re-verifies the empty-circumcircle property
// directly (not just against the sequential mesh) on a fresh point set.
func TestParallelDelaunayProperty(t *testing.T) {
	const n = 250
	pts := randomPoints(n, 99)
	tris, _, err := ParallelTriangulate(pts, nil, ParallelOptions{ExecOptions: engine.ExecOptions{Threads: 4, QueueMultiplier: 2, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range tris {
		a, b, c := pts[tr.A], pts[tr.B], pts[tr.C]
		for p := 0; p < n; p++ {
			if p == tr.A || p == tr.B || p == tr.C {
				continue
			}
			if geom.InCircle(a, b, c, pts[p]) == geom.Positive {
				t.Fatalf("point %d inside circumcircle of (%d,%d,%d)", p, tr.A, tr.B, tr.C)
			}
		}
	}
}

func TestParallelFewPoints(t *testing.T) {
	for n := 0; n <= 3; n++ {
		pts := randomPoints(n, 5)
		got, res, err := ParallelTriangulate(pts, nil, ParallelOptions{ExecOptions: engine.ExecOptions{Threads: 2, QueueMultiplier: 1, Seed: 9}})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want, err := Triangulate(pts, nil)
		if err != nil {
			t.Fatalf("n=%d: sequential: %v", n, err)
		}
		if !MeshesEqual(got, want) {
			t.Fatalf("n=%d: parallel mesh differs from sequential", n)
		}
		if res.Inserted != int64(n) {
			t.Fatalf("n=%d: inserted %d", n, res.Inserted)
		}
	}
}

func TestParallelDuplicatePointFails(t *testing.T) {
	pts := randomPoints(50, 11)
	pts = append(pts, pts[17]) // exact duplicate
	if _, _, err := ParallelTriangulate(pts, nil, ParallelOptions{ExecOptions: engine.ExecOptions{Threads: 4, QueueMultiplier: 2, Seed: 2}}); err == nil {
		t.Fatal("duplicate point accepted")
	}
}

func TestParallelInvalidOptions(t *testing.T) {
	pts := randomPoints(10, 1)
	if _, _, err := ParallelTriangulate(pts, nil, ParallelOptions{ExecOptions: engine.ExecOptions{Threads: 0, QueueMultiplier: 1}}); err == nil {
		t.Fatal("Threads 0 accepted")
	}
	if _, _, err := ParallelTriangulate(pts, []int{1, 2, 3}, ParallelOptions{ExecOptions: engine.ExecOptions{Threads: 1, QueueMultiplier: 1}}); err == nil {
		t.Fatal("short order accepted")
	}
	if _, _, err := ParallelTriangulate(pts, []int{0, 0, 1, 2, 3, 4, 5, 6, 7, 8}, ParallelOptions{ExecOptions: engine.ExecOptions{Threads: 1, QueueMultiplier: 1}}); err == nil {
		t.Fatal("non-permutation order accepted")
	}
}

func TestMeshesEqual(t *testing.T) {
	a := []Triangle{{A: 0, B: 1, C: 2}, {A: 1, B: 3, C: 2}}
	b := []Triangle{{A: 2, B: 1, C: 3}, {A: 1, B: 2, C: 0}} // rotated + reordered
	if !MeshesEqual(a, b) {
		t.Fatal("rotated/reordered meshes reported unequal")
	}
	c := []Triangle{{A: 0, B: 2, C: 1}, {A: 1, B: 3, C: 2}} // flipped orientation
	if MeshesEqual(a, c) {
		t.Fatal("orientation-flipped meshes reported equal")
	}
	if MeshesEqual(a, a[:1]) {
		t.Fatal("different-size meshes reported equal")
	}
}
