package geom

import (
	"testing"
	"testing/quick"

	"relaxsched/internal/rng"
)

func TestOrient2DBasic(t *testing.T) {
	a := Point{0, 0}
	b := Point{1, 0}
	if Orient2D(a, b, Point{0, 1}) != Positive {
		t.Fatal("CCW not positive")
	}
	if Orient2D(a, b, Point{0, -1}) != Negative {
		t.Fatal("CW not negative")
	}
	if Orient2D(a, b, Point{2, 0}) != Zero {
		t.Fatal("collinear not zero")
	}
}

func TestOrient2DAntisymmetry(t *testing.T) {
	check := func(ax, ay, bx, by, cx, cy float64) bool {
		a, b, c := Point{ax, ay}, Point{bx, by}, Point{cx, cy}
		return Orient2D(a, b, c) == -Orient2D(b, a, c)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestOrient2DCyclicInvariance(t *testing.T) {
	check := func(ax, ay, bx, by, cx, cy float64) bool {
		a, b, c := Point{ax, ay}, Point{bx, by}, Point{cx, cy}
		s := Orient2D(a, b, c)
		return s == Orient2D(b, c, a) && s == Orient2D(c, a, b)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestOrient2DNearDegenerate(t *testing.T) {
	// Points that are collinear in exact arithmetic but stress the filter:
	// tiny perturbations of a line must produce consistent exact signs.
	a := Point{0, 0}
	b := Point{1e-30, 1e-30}
	c := Point{2e-30, 2e-30}
	if Orient2D(a, b, c) != Zero {
		t.Fatal("exactly collinear tiny points not Zero")
	}
	// A couple of ulps above/below the line (1e-17 would round away; the
	// ulp of 0.5 is ~1.1e-16).
	d := Point{0.5, 0.5 + 3e-16}
	got := Orient2D(Point{0, 0}, Point{1, 1}, d)
	if got != Positive {
		t.Fatalf("point above line: got %d", got)
	}
	e := Point{0.5, 0.5 - 3e-16}
	if Orient2D(Point{0, 0}, Point{1, 1}, e) != Negative {
		t.Fatal("point below line not Negative")
	}
}

func TestInCircleBasic(t *testing.T) {
	// Unit circle through (1,0), (0,1), (-1,0); CCW.
	a, b, c := Point{1, 0}, Point{0, 1}, Point{-1, 0}
	if InCircle(a, b, c, Point{0, 0}) != Positive {
		t.Fatal("center not inside")
	}
	if InCircle(a, b, c, Point{2, 2}) != Negative {
		t.Fatal("far point not outside")
	}
	if InCircle(a, b, c, Point{0, -1}) != Zero {
		t.Fatal("cocircular point not Zero")
	}
}

func TestInCircleOrientationConvention(t *testing.T) {
	// Swapping two triangle vertices (making it CW) flips the sign.
	a, b, c := Point{1, 0}, Point{0, 1}, Point{-1, 0}
	inside := Point{0.1, 0.2}
	if InCircle(a, b, c, inside) != Positive {
		t.Fatal("inside point not Positive for CCW triangle")
	}
	if InCircle(b, a, c, inside) != Negative {
		t.Fatal("sign did not flip for CW triangle")
	}
}

func TestInCircleNearBoundary(t *testing.T) {
	a, b, c := Point{1, 0}, Point{0, 1}, Point{-1, 0}
	// Slightly inside and outside the unit circle along the x axis.
	just := 1e-14
	if InCircle(a, b, c, Point{0, -(1 - just)}) != Positive {
		t.Fatal("just-inside not Positive")
	}
	if InCircle(a, b, c, Point{0, -(1 + just)}) != Negative {
		t.Fatal("just-outside not Negative")
	}
}

func TestInCircleAgainstNaiveOnRandom(t *testing.T) {
	// On well-separated random points the filtered predicate must agree
	// with the naive float computation.
	r := rng.New(8)
	for i := 0; i < 2000; i++ {
		pts := make([]Point, 4)
		for j := range pts {
			pts[j] = Point{r.Float64() * 100, r.Float64() * 100}
		}
		a, b, c, d := pts[0], pts[1], pts[2], pts[3]
		if Orient2D(a, b, c) != Positive {
			a, b = b, a
		}
		if Orient2D(a, b, c) != Positive {
			continue // degenerate draw
		}
		got := InCircle(a, b, c, d)
		naive := naiveInCircle(a, b, c, d)
		// The naive result is only trustworthy away from zero.
		if naive > 1e-6 && got != Positive {
			t.Fatalf("disagrees with naive: det=%g got=%d", naive, got)
		}
		if naive < -1e-6 && got != Negative {
			t.Fatalf("disagrees with naive: det=%g got=%d", naive, got)
		}
	}
}

func naiveInCircle(a, b, c, d Point) float64 {
	adx, ady := a.X-d.X, a.Y-d.Y
	bdx, bdy := b.X-d.X, b.Y-d.Y
	cdx, cdy := c.X-d.X, c.Y-d.Y
	return (adx*adx+ady*ady)*(bdx*cdy-cdx*bdy) +
		(bdx*bdx+bdy*bdy)*(cdx*ady-adx*cdy) +
		(cdx*cdx+cdy*cdy)*(adx*bdy-bdx*ady)
}

func TestInCircleCoincidentPoints(t *testing.T) {
	a, b, c := Point{1, 0}, Point{0, 1}, Point{-1, 0}
	// A point coincident with a triangle vertex is cocircular.
	if InCircle(a, b, c, a) != Zero {
		t.Fatal("vertex not cocircular with its own circle")
	}
}

func TestInTriangle(t *testing.T) {
	a, b, c := Point{0, 0}, Point{4, 0}, Point{0, 4}
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{1, 1}, true},
		{Point{0, 0}, true},  // vertex
		{Point{2, 0}, true},  // on edge
		{Point{3, 3}, false}, // outside hypotenuse
		{Point{-1, 1}, false},
	}
	for _, tc := range cases {
		if got := InTriangle(a, b, c, tc.p); got != tc.want {
			t.Fatalf("InTriangle(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

// Property: InCircle is invariant under cyclic rotation of the CCW
// triangle's vertices.
func TestInCircleCyclicProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		a := Point{r.Float64(), r.Float64()}
		b := Point{r.Float64(), r.Float64()}
		c := Point{r.Float64(), r.Float64()}
		d := Point{r.Float64(), r.Float64()}
		if Orient2D(a, b, c) != Positive {
			a, b = b, a
		}
		if Orient2D(a, b, c) != Positive {
			return true // degenerate; skip
		}
		s := InCircle(a, b, c, d)
		return s == InCircle(b, c, a, d) && s == InCircle(c, a, b, d)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkOrient2D(b *testing.B) {
	r := rng.New(1)
	pts := make([]Point, 300)
	for i := range pts {
		pts[i] = Point{r.Float64(), r.Float64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Orient2D(pts[i%100], pts[100+i%100], pts[200+i%100])
	}
}

func BenchmarkInCircle(b *testing.B) {
	r := rng.New(1)
	pts := make([]Point, 400)
	for i := range pts {
		pts[i] = Point{r.Float64(), r.Float64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		InCircle(pts[i%100], pts[100+i%100], pts[200+i%100], pts[300+i%100])
	}
}
