// Package geom provides the planar geometric predicates needed by the
// incremental Delaunay triangulation: Orient2D (is a point left of, right
// of, or on a directed line) and InCircle (is a point inside, outside, or
// on the circumcircle of a triangle).
//
// Both predicates use a fast float64 path with a forward-error-bound filter
// in the style of Shewchuk's adaptive predicates; when the filter cannot
// certify the sign, they fall back to exact rational arithmetic via
// math/big. This makes the predicates exact for all float64 inputs, which
// the conflict-graph Delaunay algorithm relies on for termination.
package geom

import "math/big"

// Point is a point in the plane.
type Point struct {
	X, Y float64
}

// Sign is the result of an exact predicate.
type Sign int

// Predicate results: Negative, Zero, or Positive determinant sign.
const (
	Negative Sign = -1
	Zero     Sign = 0
	Positive Sign = 1
)

// Machine epsilon for float64 (2^-53).
const epsilon = 1.1102230246251565e-16

// Error-bound coefficients, following Shewchuk's derivation: a sign
// computed by the naive expression is certain when the magnitude exceeds
// these multiples of the accumulated magnitudes.
var (
	ccwErrBound      = (3.0 + 16.0*epsilon) * epsilon
	inCircleErrBound = (10.0 + 96.0*epsilon) * epsilon
)

// Orient2D returns the sign of the signed area of triangle (a, b, c):
// Positive if the triangle is counter-clockwise, Negative if clockwise,
// Zero if the points are collinear.
func Orient2D(a, b, c Point) Sign {
	detLeft := (a.X - c.X) * (b.Y - c.Y)
	detRight := (a.Y - c.Y) * (b.X - c.X)
	det := detLeft - detRight

	var detSum float64
	if detLeft > 0 {
		if detRight <= 0 {
			return signOf(det)
		}
		detSum = detLeft + detRight
	} else if detLeft < 0 {
		if detRight >= 0 {
			return signOf(det)
		}
		detSum = -detLeft - detRight
	} else {
		return signOf(det)
	}
	if det >= ccwErrBound*detSum || -det >= ccwErrBound*detSum {
		return signOf(det)
	}
	return orient2DExact(a, b, c)
}

func signOf(x float64) Sign {
	switch {
	case x > 0:
		return Positive
	case x < 0:
		return Negative
	default:
		return Zero
	}
}

func orient2DExact(a, b, c Point) Sign {
	ax := new(big.Rat).SetFloat64(a.X)
	ay := new(big.Rat).SetFloat64(a.Y)
	bx := new(big.Rat).SetFloat64(b.X)
	by := new(big.Rat).SetFloat64(b.Y)
	cx := new(big.Rat).SetFloat64(c.X)
	cy := new(big.Rat).SetFloat64(c.Y)

	acx := new(big.Rat).Sub(ax, cx)
	bcy := new(big.Rat).Sub(by, cy)
	acy := new(big.Rat).Sub(ay, cy)
	bcx := new(big.Rat).Sub(bx, cx)

	left := new(big.Rat).Mul(acx, bcy)
	right := new(big.Rat).Mul(acy, bcx)
	return Sign(left.Cmp(right))
}

// InCircle returns Positive if d lies strictly inside the circumcircle of
// the counter-clockwise triangle (a, b, c), Negative if strictly outside,
// and Zero if the four points are cocircular. The triangle must be in
// counter-clockwise orientation for the sign convention to hold.
func InCircle(a, b, c, d Point) Sign {
	adx := a.X - d.X
	ady := a.Y - d.Y
	bdx := b.X - d.X
	bdy := b.Y - d.Y
	cdx := c.X - d.X
	cdy := c.Y - d.Y

	bdxcdy := bdx * cdy
	cdxbdy := cdx * bdy
	alift := adx*adx + ady*ady

	cdxady := cdx * ady
	adxcdy := adx * cdy
	blift := bdx*bdx + bdy*bdy

	adxbdy := adx * bdy
	bdxady := bdx * ady
	clift := cdx*cdx + cdy*cdy

	det := alift*(bdxcdy-cdxbdy) + blift*(cdxady-adxcdy) + clift*(adxbdy-bdxady)

	permanent := (abs(bdxcdy)+abs(cdxbdy))*alift +
		(abs(cdxady)+abs(adxcdy))*blift +
		(abs(adxbdy)+abs(bdxady))*clift
	errBound := inCircleErrBound * permanent
	if det > errBound || -det > errBound {
		return signOf(det)
	}
	return inCircleExact(a, b, c, d)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func inCircleExact(a, b, c, d Point) Sign {
	// Compute the 3x3 determinant
	//   | ax-dx  ay-dy  (ax-dx)^2+(ay-dy)^2 |
	//   | bx-dx  by-dy  (bx-dx)^2+(by-dy)^2 |
	//   | cx-dx  cy-dy  (cx-dx)^2+(cy-dy)^2 |
	// exactly over rationals.
	dx := new(big.Rat).SetFloat64(d.X)
	dy := new(big.Rat).SetFloat64(d.Y)

	row := func(p Point) (x, y, lift *big.Rat) {
		x = new(big.Rat).Sub(new(big.Rat).SetFloat64(p.X), dx)
		y = new(big.Rat).Sub(new(big.Rat).SetFloat64(p.Y), dy)
		xx := new(big.Rat).Mul(x, x)
		yy := new(big.Rat).Mul(y, y)
		lift = new(big.Rat).Add(xx, yy)
		return
	}
	ax, ay, al := row(a)
	bx, by, bl := row(b)
	cx, cy, cl := row(c)

	// Cofactor expansion along the lift column.
	minor := func(x1, y1, x2, y2 *big.Rat) *big.Rat {
		m1 := new(big.Rat).Mul(x1, y2)
		m2 := new(big.Rat).Mul(x2, y1)
		return new(big.Rat).Sub(m1, m2)
	}
	det := new(big.Rat).Mul(al, minor(bx, by, cx, cy))
	det.Sub(det, new(big.Rat).Mul(bl, minor(ax, ay, cx, cy)))
	det.Add(det, new(big.Rat).Mul(cl, minor(ax, ay, bx, by)))
	return Sign(det.Sign())
}

// InTriangle reports whether p lies inside or on the boundary of the
// counter-clockwise triangle (a, b, c).
func InTriangle(a, b, c, p Point) bool {
	return Orient2D(a, b, p) >= 0 && Orient2D(b, c, p) >= 0 && Orient2D(c, a, p) >= 0
}
