package pq

import (
	"sort"
	"testing"
	"testing/quick"

	"relaxsched/internal/rng"
)

func TestPairingBasicOrder(t *testing.T) {
	var p Pairing
	prios := []int64{5, 3, 8, 1, 9, 2, 7, 0, 6, 4}
	for _, pr := range prios {
		p.Insert(pr*10, pr)
	}
	if p.Len() != len(prios) {
		t.Fatalf("Len = %d", p.Len())
	}
	for want := int64(0); want < 10; want++ {
		n := p.DeleteMin()
		if n.Priority() != want {
			t.Fatalf("popped %d, want %d", n.Priority(), want)
		}
		if n.Value != want*10 {
			t.Fatalf("value %d, want %d", n.Value, want*10)
		}
	}
	if !p.Empty() {
		t.Fatal("not empty after drain")
	}
}

func TestPairingMinNoRemove(t *testing.T) {
	var p Pairing
	p.Insert(1, 7)
	p.Insert(2, 3)
	if p.Min().Priority() != 3 {
		t.Fatalf("Min = %d, want 3", p.Min().Priority())
	}
	if p.Len() != 2 {
		t.Fatal("Min must not remove")
	}
}

func TestPairingDecreaseKey(t *testing.T) {
	var p Pairing
	a := p.Insert(1, 100)
	b := p.Insert(2, 50)
	c := p.Insert(3, 75)
	p.DecreaseKey(a, 10)
	if p.Min() != a {
		t.Fatal("a should be min after DecreaseKey")
	}
	p.DecreaseKey(c, 20)
	if got := p.DeleteMin(); got != a {
		t.Fatal("expected a first")
	}
	if got := p.DeleteMin(); got != c {
		t.Fatal("expected c second")
	}
	if got := p.DeleteMin(); got != b {
		t.Fatal("expected b third")
	}
}

func TestPairingDecreaseKeyOnRoot(t *testing.T) {
	var p Pairing
	a := p.Insert(1, 5)
	p.Insert(2, 10)
	p.DecreaseKey(a, 1)
	if p.Min() != a || a.Priority() != 1 {
		t.Fatal("root DecreaseKey failed")
	}
}

func TestPairingDecreaseKeyIncreasePanics(t *testing.T) {
	var p Pairing
	a := p.Insert(1, 5)
	mustPanic(t, "increase", func() { p.DecreaseKey(a, 6) })
}

func TestPairingDeleteMinEmptyPanics(t *testing.T) {
	var p Pairing
	mustPanic(t, "empty DeleteMin", func() { p.DeleteMin() })
}

func TestPairingRemove(t *testing.T) {
	var p Pairing
	nodes := make([]*Node, 10)
	for i := range nodes {
		nodes[i] = p.Insert(int64(i), int64(i))
	}
	p.Remove(nodes[0]) // root
	p.Remove(nodes[5]) // internal
	p.Remove(nodes[9])
	var got []int64
	for !p.Empty() {
		got = append(got, p.DeleteMin().Priority())
	}
	want := []int64{1, 2, 3, 4, 6, 7, 8}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestPairingMeld(t *testing.T) {
	var a, b Pairing
	a.Insert(1, 5)
	a.Insert(2, 1)
	b.Insert(3, 3)
	b.Insert(4, 0)
	a.Meld(&b)
	if a.Len() != 4 || b.Len() != 0 {
		t.Fatalf("after meld: a=%d b=%d", a.Len(), b.Len())
	}
	want := []int64{0, 1, 3, 5}
	for _, w := range want {
		if got := a.DeleteMin().Priority(); got != w {
			t.Fatalf("got %d, want %d", got, w)
		}
	}
}

func TestPairingSortProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(300)
		var p Pairing
		nodes := make([]*Node, 0, n)
		prios := make([]int64, 0, n)
		for i := 0; i < n; i++ {
			pr := int64(r.Intn(1000))
			nodes = append(nodes, p.Insert(int64(i), pr))
			prios = append(prios, pr)
		}
		for i := 0; i < n/3; i++ {
			j := r.Intn(len(nodes))
			np := prios[j] - int64(r.Intn(100))
			p.DecreaseKey(nodes[j], np)
			prios[j] = np
		}
		sort.Slice(prios, func(i, j int) bool { return prios[i] < prios[j] })
		for i := 0; i < n; i++ {
			if p.DeleteMin().Priority() != prios[i] {
				return false
			}
		}
		return p.Empty()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPairingRandomRemovals(t *testing.T) {
	r := rng.New(4242)
	var p Pairing
	live := map[*Node]int64{}
	var handles []*Node
	for step := 0; step < 5000; step++ {
		switch r.Intn(3) {
		case 0:
			pr := int64(r.Intn(100000))
			n := p.Insert(pr, pr)
			live[n] = pr
			handles = append(handles, n)
		case 1:
			if p.Empty() {
				continue
			}
			n := p.DeleteMin()
			want, ok := live[n]
			if !ok {
				t.Fatalf("step %d: DeleteMin returned dead node", step)
			}
			for _, v := range live {
				if v < want {
					t.Fatalf("step %d: popped %d, live has %d", step, want, v)
				}
			}
			delete(live, n)
		case 2:
			if len(handles) == 0 {
				continue
			}
			n := handles[r.Intn(len(handles))]
			if _, ok := live[n]; !ok {
				continue
			}
			p.Remove(n)
			delete(live, n)
		}
		if p.Len() != len(live) {
			t.Fatalf("step %d: Len=%d live=%d", step, p.Len(), len(live))
		}
	}
}

func BenchmarkPairingInsertDeleteMin(b *testing.B) {
	r := rng.New(1)
	var p Pairing
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Insert(int64(i), int64(r.Intn(1<<30)))
		if p.Len() > 1024 {
			p.DeleteMin()
		}
	}
}
