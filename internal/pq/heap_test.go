package pq

import (
	"sort"
	"testing"
	"testing/quick"

	"relaxsched/internal/rng"
)

func TestHeapBasicOrder(t *testing.T) {
	h := NewHeap(10)
	prios := []int64{5, 3, 8, 1, 9, 2, 7, 0, 6, 4}
	for id, p := range prios {
		h.Push(id, p)
	}
	if h.Len() != 10 {
		t.Fatalf("Len = %d, want 10", h.Len())
	}
	for want := int64(0); want < 10; want++ {
		_, p := h.Pop()
		if p != want {
			t.Fatalf("popped priority %d, want %d", p, want)
		}
	}
	if !h.Empty() {
		t.Fatal("heap not empty after draining")
	}
}

func TestHeapPeek(t *testing.T) {
	h := NewHeap(3)
	h.Push(0, 5)
	h.Push(1, 2)
	h.Push(2, 9)
	id, p := h.Peek()
	if id != 1 || p != 2 {
		t.Fatalf("Peek = (%d,%d), want (1,2)", id, p)
	}
	if h.Len() != 3 {
		t.Fatal("Peek must not remove")
	}
}

func TestHeapDecreaseKey(t *testing.T) {
	h := NewHeap(4)
	h.Push(0, 10)
	h.Push(1, 20)
	h.Push(2, 30)
	h.Push(3, 40)
	h.DecreaseKey(3, 5)
	id, p := h.Pop()
	if id != 3 || p != 5 {
		t.Fatalf("after DecreaseKey, Pop = (%d,%d), want (3,5)", id, p)
	}
}

func TestHeapDecreaseKeyPanics(t *testing.T) {
	h := NewHeap(2)
	h.Push(0, 10)
	mustPanic(t, "increase via DecreaseKey", func() { h.DecreaseKey(0, 20) })
	mustPanic(t, "DecreaseKey of absent", func() { h.DecreaseKey(1, 1) })
}

func TestHeapPushDuplicatePanics(t *testing.T) {
	h := NewHeap(2)
	h.Push(0, 1)
	mustPanic(t, "duplicate Push", func() { h.Push(0, 2) })
}

func TestHeapPopEmptyPanics(t *testing.T) {
	h := NewHeap(1)
	mustPanic(t, "Pop empty", func() { h.Pop() })
	mustPanic(t, "Peek empty", func() { h.Peek() })
}

func TestHeapUpdateBothDirections(t *testing.T) {
	h := NewHeap(3)
	h.Update(0, 10) // insert
	h.Update(1, 20)
	h.Update(2, 30)
	h.Update(0, 40) // increase
	h.Update(2, 1)  // decrease
	id, _ := h.Pop()
	if id != 2 {
		t.Fatalf("first pop id = %d, want 2", id)
	}
	id, _ = h.Pop()
	if id != 1 {
		t.Fatalf("second pop id = %d, want 1", id)
	}
	id, p := h.Pop()
	if id != 0 || p != 40 {
		t.Fatalf("third pop = (%d,%d), want (0,40)", id, p)
	}
}

func TestHeapRemove(t *testing.T) {
	h := NewHeap(5)
	for i := 0; i < 5; i++ {
		h.Push(i, int64(i))
	}
	h.Remove(0) // remove current min
	h.Remove(3) // remove middle
	var got []int64
	for !h.Empty() {
		_, p := h.Pop()
		got = append(got, p)
	}
	want := []int64{1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestHeapContainsAndPriority(t *testing.T) {
	h := NewHeap(3)
	h.Push(1, 42)
	if !h.Contains(1) || h.Contains(0) {
		t.Fatal("Contains wrong")
	}
	if h.Priority(1) != 42 {
		t.Fatalf("Priority = %d, want 42", h.Priority(1))
	}
	h.Pop()
	if h.Contains(1) {
		t.Fatal("Contains after Pop")
	}
}

// TestHeapSortProperty: pushing any set of priorities and draining yields
// sorted order (heapsort property), under random DecreaseKey operations.
func TestHeapSortProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(200)
		h := NewHeap(n)
		prios := make([]int64, n)
		for i := 0; i < n; i++ {
			prios[i] = int64(r.Intn(1000))
			h.Push(i, prios[i])
		}
		// Random decrease-keys.
		for i := 0; i < n/2; i++ {
			id := r.Intn(n)
			if !h.Contains(id) {
				continue
			}
			np := prios[id] - int64(r.Intn(100))
			h.DecreaseKey(id, np)
			prios[id] = np
		}
		sorted := append([]int64(nil), prios...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i := 0; i < n; i++ {
			_, p := h.Pop()
			if p != sorted[i] {
				return false
			}
		}
		return h.Empty()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestHeapAgainstReferenceModel runs a random op sequence against a naive
// slice-based model and compares observable behaviour.
func TestHeapAgainstReferenceModel(t *testing.T) {
	r := rng.New(777)
	const n = 64
	h := NewHeap(n)
	model := map[int]int64{}
	for step := 0; step < 20000; step++ {
		op := r.Intn(4)
		switch {
		case op == 0: // push absent id
			id := r.Intn(n)
			if _, ok := model[id]; !ok {
				p := int64(r.Intn(10000))
				h.Push(id, p)
				model[id] = p
			}
		case op == 1 && len(model) > 0: // pop
			id, p := h.Pop()
			mp, ok := model[id]
			if !ok || mp != p {
				t.Fatalf("step %d: pop (%d,%d) not in model (%v)", step, id, p, ok)
			}
			// Must be a minimum.
			for _, v := range model {
				if v < p {
					t.Fatalf("step %d: popped %d but model has smaller %d", step, p, v)
				}
			}
			delete(model, id)
		case op == 2: // decrease random present id
			id := r.Intn(n)
			if mp, ok := model[id]; ok {
				np := mp - int64(r.Intn(50))
				h.DecreaseKey(id, np)
				model[id] = np
			}
		case op == 3: // remove random present id
			id := r.Intn(n)
			if _, ok := model[id]; ok {
				h.Remove(id)
				delete(model, id)
			}
		}
		if h.Len() != len(model) {
			t.Fatalf("step %d: Len=%d model=%d", step, h.Len(), len(model))
		}
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}

func BenchmarkHeapPushPop(b *testing.B) {
	r := rng.New(1)
	n := 1 << 16
	h := NewHeap(n)
	prios := make([]int64, n)
	for i := range prios {
		prios[i] = int64(r.Intn(1 << 30))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := i % n
		if h.Contains(id) {
			continue
		}
		h.Push(id, prios[id])
		if h.Len() > 1024 {
			h.Pop()
		}
	}
}
