// Package pq provides the exact priority-queue substrates used by the
// schedulers and baselines in this repository: an indexed binary min-heap
// with DecreaseKey (the exact scheduler and sequential Dijkstra), a pairing
// heap (an alternative exact queue with cheap melds), and a monotone bucket
// queue (the Delta-stepping baseline of Meyer & Sanders).
//
// Throughout the package, priorities are int64 values where smaller means
// higher priority, matching the paper's convention that a lower label or a
// smaller tentative distance is scheduled first.
package pq

// Heap is an indexed binary min-heap over a dense id space [0, n).
// Each id may be present at most once; DecreaseKey and Remove are O(log n)
// thanks to the id -> position index. The zero value is not usable;
// construct with NewHeap.
type Heap struct {
	ids  []int32 // heap slots -> id
	prio []int64 // heap slots -> priority
	pos  []int32 // id -> heap slot, or -1 when absent
}

// NewHeap returns an empty heap able to hold ids in [0, n).
func NewHeap(n int) *Heap {
	pos := make([]int32, n)
	for i := range pos {
		pos[i] = -1
	}
	return &Heap{pos: pos}
}

// Len reports the number of items currently in the heap.
func (h *Heap) Len() int { return len(h.ids) }

// Empty reports whether the heap holds no items.
func (h *Heap) Empty() bool { return len(h.ids) == 0 }

// Contains reports whether id is currently in the heap.
func (h *Heap) Contains(id int) bool { return h.pos[id] >= 0 }

// Priority returns the current priority of id. It panics if id is absent.
func (h *Heap) Priority(id int) int64 {
	p := h.pos[id]
	if p < 0 {
		panic("pq: Priority of absent id")
	}
	return h.prio[p]
}

// Push inserts id with the given priority. It panics if id is already
// present; use DecreaseKey or Update to change an existing priority.
func (h *Heap) Push(id int, priority int64) {
	if h.pos[id] >= 0 {
		panic("pq: Push of id already in heap")
	}
	h.ids = append(h.ids, int32(id))
	h.prio = append(h.prio, priority)
	h.pos[id] = int32(len(h.ids) - 1)
	h.siftUp(len(h.ids) - 1)
}

// Peek returns the minimum-priority item without removing it.
// It panics on an empty heap.
func (h *Heap) Peek() (id int, priority int64) {
	if len(h.ids) == 0 {
		panic("pq: Peek of empty heap")
	}
	return int(h.ids[0]), h.prio[0]
}

// Pop removes and returns the minimum-priority item.
// It panics on an empty heap.
func (h *Heap) Pop() (id int, priority int64) {
	if len(h.ids) == 0 {
		panic("pq: Pop of empty heap")
	}
	id, priority = int(h.ids[0]), h.prio[0]
	h.removeAt(0)
	return id, priority
}

// DecreaseKey lowers the priority of id to priority. It panics if id is
// absent or if priority is larger than the current one.
func (h *Heap) DecreaseKey(id int, priority int64) {
	p := h.pos[id]
	if p < 0 {
		panic("pq: DecreaseKey of absent id")
	}
	if priority > h.prio[p] {
		panic("pq: DecreaseKey would increase priority")
	}
	h.prio[p] = priority
	h.siftUp(int(p))
}

// Update sets the priority of id, inserting it if absent. It supports both
// increases and decreases and is the convenience entry point for schedulers.
func (h *Heap) Update(id int, priority int64) {
	p := h.pos[id]
	if p < 0 {
		h.Push(id, priority)
		return
	}
	old := h.prio[p]
	h.prio[p] = priority
	if priority < old {
		h.siftUp(int(p))
	} else if priority > old {
		h.siftDown(int(p))
	}
}

// Remove deletes id from the heap. It panics if id is absent.
func (h *Heap) Remove(id int) {
	p := h.pos[id]
	if p < 0 {
		panic("pq: Remove of absent id")
	}
	h.removeAt(int(p))
}

// Slot returns the id and priority stored at heap slot i (0 is the min).
// It is intended for schedulers that need to inspect the top of the heap;
// slots beyond 0 are in no particular order. It panics if i is out of range.
func (h *Heap) Slot(i int) (id int, priority int64) {
	return int(h.ids[i]), h.prio[i]
}

func (h *Heap) removeAt(i int) {
	last := len(h.ids) - 1
	h.pos[h.ids[i]] = -1
	if i != last {
		h.ids[i] = h.ids[last]
		h.prio[i] = h.prio[last]
		h.pos[h.ids[i]] = int32(i)
	}
	h.ids = h.ids[:last]
	h.prio = h.prio[:last]
	if i < last {
		// The moved element may need to go either direction.
		h.siftDown(i)
		h.siftUp(i)
	}
}

func (h *Heap) siftUp(i int) {
	id, pr := h.ids[i], h.prio[i]
	for i > 0 {
		parent := (i - 1) / 2
		if h.prio[parent] <= pr {
			break
		}
		h.ids[i], h.prio[i] = h.ids[parent], h.prio[parent]
		h.pos[h.ids[i]] = int32(i)
		i = parent
	}
	h.ids[i], h.prio[i] = id, pr
	h.pos[id] = int32(i)
}

func (h *Heap) siftDown(i int) {
	n := len(h.ids)
	id, pr := h.ids[i], h.prio[i]
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && h.prio[right] < h.prio[left] {
			child = right
		}
		if pr <= h.prio[child] {
			break
		}
		h.ids[i], h.prio[i] = h.ids[child], h.prio[child]
		h.pos[h.ids[i]] = int32(i)
		i = child
	}
	h.ids[i], h.prio[i] = id, pr
	h.pos[id] = int32(i)
}
