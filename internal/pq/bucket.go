package pq

// BucketQueue is a monotone bucket priority queue in the style of
// Delta-stepping (Meyer & Sanders): item priorities are mapped to buckets of
// width delta, and items are drained bucket by bucket in increasing order.
// It supports DecreaseKey by tracking each id's current bucket. Priorities
// must be non-negative, and Pop order is only bucket-accurate: within a
// bucket, items come out in arbitrary order, which is exactly the relaxation
// Delta-stepping tolerates.
//
// The queue is "monotone": once a bucket has been fully drained and passed,
// pushing into it again is still correct (the cursor moves back), but
// typical SSSP usage never needs that.
type BucketQueue struct {
	delta   int64
	buckets [][]int32 // bucket index -> ids (may contain stale entries)
	where   []int32   // id -> bucket index, or -1 when absent
	prio    []int64   // id -> current priority (valid when where >= 0)
	cur     int       // lowest possibly-non-empty bucket
	size    int
}

// NewBucketQueue returns a bucket queue for ids in [0, n) with bucket
// width delta. delta must be positive.
func NewBucketQueue(n int, delta int64) *BucketQueue {
	if delta <= 0 {
		panic("pq: NewBucketQueue with non-positive delta")
	}
	where := make([]int32, n)
	for i := range where {
		where[i] = -1
	}
	return &BucketQueue{
		delta: delta,
		where: where,
		prio:  make([]int64, n),
	}
}

// Len reports the number of live items in the queue.
func (b *BucketQueue) Len() int { return b.size }

// Empty reports whether the queue holds no live items.
func (b *BucketQueue) Empty() bool { return b.size == 0 }

// Contains reports whether id is currently queued.
func (b *BucketQueue) Contains(id int) bool { return b.where[id] >= 0 }

// Priority returns id's current priority; it panics if id is absent.
func (b *BucketQueue) Priority(id int) int64 {
	if b.where[id] < 0 {
		panic("pq: Priority of absent id")
	}
	return b.prio[id]
}

func (b *BucketQueue) bucketOf(priority int64) int {
	if priority < 0 {
		panic("pq: negative priority in bucket queue")
	}
	return int(priority / b.delta)
}

func (b *BucketQueue) ensure(idx int) {
	for len(b.buckets) <= idx {
		b.buckets = append(b.buckets, nil)
	}
}

// Push inserts id with the given priority, or updates it if already present
// (both increases and decreases are accepted).
func (b *BucketQueue) Push(id int, priority int64) {
	idx := b.bucketOf(priority)
	if w := b.where[id]; w >= 0 {
		b.prio[id] = priority
		if int(w) == idx {
			return
		}
		// Leave the stale entry in the old bucket; it is skipped on Pop
		// because where[id] no longer matches.
		b.where[id] = int32(idx)
	} else {
		b.where[id] = int32(idx)
		b.prio[id] = priority
		b.size++
	}
	b.ensure(idx)
	b.buckets[idx] = append(b.buckets[idx], int32(id))
	if idx < b.cur {
		b.cur = idx
	}
}

// DecreaseKey lowers id's priority. It panics if id is absent or the new
// priority is larger than the current one.
func (b *BucketQueue) DecreaseKey(id int, priority int64) {
	if b.where[id] < 0 {
		panic("pq: DecreaseKey of absent id")
	}
	if priority > b.prio[id] {
		panic("pq: DecreaseKey would increase priority")
	}
	b.Push(id, priority)
}

// Pop removes and returns an item from the lowest non-empty bucket.
// Within a bucket the order is LIFO over live entries. It panics when empty.
func (b *BucketQueue) Pop() (id int, priority int64) {
	if b.size == 0 {
		panic("pq: Pop of empty bucket queue")
	}
	for {
		for b.cur < len(b.buckets) && len(b.buckets[b.cur]) == 0 {
			b.cur++
		}
		if b.cur >= len(b.buckets) {
			panic("pq: bucket queue size accounting corrupted")
		}
		bk := b.buckets[b.cur]
		cand := int(bk[len(bk)-1])
		b.buckets[b.cur] = bk[:len(bk)-1]
		if int(b.where[cand]) != b.cur {
			continue // stale entry left behind by a Push move
		}
		b.where[cand] = -1
		b.size--
		return cand, b.prio[cand]
	}
}

// Remove deletes id from the queue; it panics if absent. The bucket entry is
// left behind as a stale record and skipped lazily.
func (b *BucketQueue) Remove(id int) {
	if b.where[id] < 0 {
		panic("pq: Remove of absent id")
	}
	b.where[id] = -1
	b.size--
}

// CurrentBucket returns the index of the lowest possibly-non-empty bucket;
// useful for Delta-stepping phase boundaries.
func (b *BucketQueue) CurrentBucket() int { return b.cur }
