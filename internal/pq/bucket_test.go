package pq

import (
	"testing"
	"testing/quick"

	"relaxsched/internal/rng"
)

func TestBucketQueueBasic(t *testing.T) {
	b := NewBucketQueue(10, 10)
	b.Push(0, 95)
	b.Push(1, 5)
	b.Push(2, 42)
	if b.Len() != 3 {
		t.Fatalf("Len = %d", b.Len())
	}
	id, p := b.Pop()
	if id != 1 || p != 5 {
		t.Fatalf("first pop (%d,%d), want (1,5)", id, p)
	}
	id, _ = b.Pop()
	if id != 2 {
		t.Fatalf("second pop id %d, want 2", id)
	}
	id, _ = b.Pop()
	if id != 0 {
		t.Fatalf("third pop id %d, want 0", id)
	}
	if !b.Empty() {
		t.Fatal("not empty")
	}
}

func TestBucketQueueBucketAccuracy(t *testing.T) {
	// Items within a bucket may come out in any order, but buckets are
	// strictly increasing for a monotone workload.
	r := rng.New(9)
	const n = 500
	const delta = int64(16)
	b := NewBucketQueue(n, delta)
	for i := 0; i < n; i++ {
		b.Push(i, int64(r.Intn(1000)))
	}
	prevBucket := -1
	for !b.Empty() {
		_, p := b.Pop()
		bk := int(p / delta)
		if bk < prevBucket {
			t.Fatalf("bucket went backwards: %d after %d", bk, prevBucket)
		}
		prevBucket = bk
	}
}

func TestBucketQueueDecreaseKey(t *testing.T) {
	b := NewBucketQueue(4, 10)
	b.Push(0, 99)
	b.Push(1, 50)
	b.DecreaseKey(0, 1)
	id, p := b.Pop()
	if id != 0 || p != 1 {
		t.Fatalf("pop (%d,%d), want (0,1)", id, p)
	}
	mustPanic(t, "increase", func() { b.DecreaseKey(1, 60) })
	mustPanic(t, "absent", func() { b.DecreaseKey(2, 1) })
}

func TestBucketQueueUpdateSameBucket(t *testing.T) {
	b := NewBucketQueue(2, 10)
	b.Push(0, 15)
	b.Push(0, 12) // same bucket, just update priority
	if b.Len() != 1 {
		t.Fatalf("Len = %d, want 1", b.Len())
	}
	_, p := b.Pop()
	if p != 12 {
		t.Fatalf("priority %d, want 12", p)
	}
}

func TestBucketQueueRemove(t *testing.T) {
	b := NewBucketQueue(3, 5)
	b.Push(0, 1)
	b.Push(1, 2)
	b.Push(2, 3)
	b.Remove(1)
	if b.Contains(1) {
		t.Fatal("Contains after Remove")
	}
	seen := map[int]bool{}
	for !b.Empty() {
		id, _ := b.Pop()
		seen[id] = true
	}
	if seen[1] || !seen[0] || !seen[2] {
		t.Fatalf("wrong survivors: %v", seen)
	}
	mustPanic(t, "remove absent", func() { b.Remove(1) })
}

func TestBucketQueueStaleEntriesSkipped(t *testing.T) {
	b := NewBucketQueue(2, 10)
	b.Push(0, 95) // bucket 9
	b.Push(0, 5)  // moves to bucket 0, stale entry remains in bucket 9
	b.Push(1, 97)
	id, p := b.Pop()
	if id != 0 || p != 5 {
		t.Fatalf("pop (%d,%d), want (0,5)", id, p)
	}
	id, _ = b.Pop()
	if id != 1 {
		t.Fatalf("pop id %d, want 1 (stale 0 must be skipped)", id)
	}
	if !b.Empty() {
		t.Fatal("queue should be empty")
	}
}

func TestBucketQueueNegativePriorityPanics(t *testing.T) {
	b := NewBucketQueue(1, 10)
	mustPanic(t, "negative", func() { b.Push(0, -1) })
}

func TestBucketQueueZeroDeltaPanics(t *testing.T) {
	mustPanic(t, "zero delta", func() { NewBucketQueue(1, 0) })
}

// Property: for monotone workloads (pops never below the current bucket),
// a BucketQueue drains every id exactly once with its latest priority.
func TestBucketQueueDrainProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(100)
		delta := int64(1 + r.Intn(20))
		b := NewBucketQueue(n, delta)
		latest := make(map[int]int64)
		for i := 0; i < n; i++ {
			p := int64(r.Intn(500))
			b.Push(i, p)
			latest[i] = p
			// Occasionally decrease.
			if r.Intn(3) == 0 {
				np := p / 2
				b.Push(i, np)
				latest[i] = np
			}
		}
		seen := map[int]bool{}
		for !b.Empty() {
			id, p := b.Pop()
			if seen[id] || latest[id] != p {
				return false
			}
			seen[id] = true
		}
		return len(seen) == n
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBucketQueue(b *testing.B) {
	r := rng.New(1)
	n := 1 << 16
	q := NewBucketQueue(n, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := i % n
		if !q.Contains(id) {
			q.Push(id, int64(r.Intn(1<<20)))
		}
		if q.Len() > 1024 {
			q.Pop()
		}
	}
}
