package pq

// Pairing is a pairing heap: an exact min-priority queue with O(1) Insert
// and Meld, O(1) amortized DecreaseKey, and O(log n) amortized DeleteMin.
// Unlike Heap it does not require a dense id space: callers keep the *Node
// handle returned by Insert. The zero value is an empty heap ready to use.
type Pairing struct {
	root *Node
	size int
}

// Node is a handle to an element stored in a Pairing heap.
type Node struct {
	// Value is an arbitrary payload carried with the node.
	Value int64
	prio  int64

	child, sibling, prev *Node // prev is parent for first child, left sibling otherwise
}

// Priority returns the node's current priority.
func (n *Node) Priority() int64 { return n.prio }

// Len reports the number of elements in the heap.
func (p *Pairing) Len() int { return p.size }

// Empty reports whether the heap holds no elements.
func (p *Pairing) Empty() bool { return p.size == 0 }

// Insert adds a value with the given priority and returns its handle.
func (p *Pairing) Insert(value, priority int64) *Node {
	n := &Node{Value: value, prio: priority}
	p.root = meld(p.root, n)
	p.size++
	return n
}

// Min returns the minimum node without removing it, or nil if empty.
func (p *Pairing) Min() *Node { return p.root }

// DeleteMin removes and returns the minimum node. It panics on empty heaps.
func (p *Pairing) DeleteMin() *Node {
	if p.root == nil {
		panic("pq: DeleteMin of empty pairing heap")
	}
	min := p.root
	p.root = mergePairs(min.child)
	if p.root != nil {
		p.root.prev = nil
	}
	min.child, min.sibling, min.prev = nil, nil, nil
	p.size--
	return min
}

// DecreaseKey lowers the priority of n to priority. It panics if the new
// priority is larger than the current one. The node must be in this heap.
func (p *Pairing) DecreaseKey(n *Node, priority int64) {
	if priority > n.prio {
		panic("pq: DecreaseKey would increase priority")
	}
	n.prio = priority
	if n == p.root {
		return
	}
	p.cut(n)
	p.root = meld(p.root, n)
}

// Remove deletes node n from the heap. The node must be in this heap.
func (p *Pairing) Remove(n *Node) {
	if n == p.root {
		p.DeleteMin()
		return
	}
	p.cut(n)
	sub := mergePairs(n.child)
	n.child = nil
	if sub != nil {
		sub.prev = nil
		p.root = meld(p.root, sub)
	}
	p.size--
}

// Meld merges other into p, emptying other. Handles from other remain valid
// and now belong to p.
func (p *Pairing) Meld(other *Pairing) {
	p.root = meld(p.root, other.root)
	p.size += other.size
	other.root, other.size = nil, 0
}

// cut detaches n (not the root) from its parent's child list.
func (p *Pairing) cut(n *Node) {
	if n.prev == nil {
		panic("pq: cut of detached pairing node")
	}
	if n.prev.child == n {
		n.prev.child = n.sibling
	} else {
		n.prev.sibling = n.sibling
	}
	if n.sibling != nil {
		n.sibling.prev = n.prev
	}
	n.prev, n.sibling = nil, nil
}

func meld(a, b *Node) *Node {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if b.prio < a.prio {
		a, b = b, a
	}
	// b becomes the first child of a.
	b.prev = a
	b.sibling = a.child
	if a.child != nil {
		a.child.prev = b
	}
	a.child = b
	return a
}

// mergePairs performs the two-pass pairing of a sibling list.
func mergePairs(first *Node) *Node {
	if first == nil || first.sibling == nil {
		return first
	}
	// First pass: meld adjacent pairs, collecting results.
	var pairs []*Node
	for first != nil {
		a := first
		b := first.sibling
		if b == nil {
			a.prev, a.sibling = nil, nil
			pairs = append(pairs, a)
			break
		}
		first = b.sibling
		a.prev, a.sibling = nil, nil
		b.prev, b.sibling = nil, nil
		pairs = append(pairs, meld(a, b))
	}
	// Second pass: meld right to left.
	result := pairs[len(pairs)-1]
	for i := len(pairs) - 2; i >= 0; i-- {
		result = meld(pairs[i], result)
	}
	return result
}
