// Package rng provides small, fast, deterministic pseudo-random number
// generators used throughout the experiments. Reproducibility matters more
// than cryptographic quality here: every experiment in the paper reproduction
// is seeded, so repeated runs produce identical workloads.
//
// Two generators are provided: SplitMix64, used for seeding and cheap
// stateless mixing, and Xoshiro256++, the workhorse generator with a 256-bit
// state and good statistical properties. Both are safe to copy by value;
// neither is safe for concurrent use. Use Split to derive independent
// per-goroutine streams.
package rng

import (
	"math"
	"math/bits"
)

// SplitMix64 is the 64-bit finalizer-based generator from Steele et al.
// It is primarily used to expand a single seed into the larger state of
// Xoshiro256++, and to hash integers into well-mixed values.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next pseudo-random 64-bit value.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 applies the SplitMix64 finalizer to x. It is a high-quality
// stateless integer hash: distinct inputs produce well-distributed outputs.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Xoshiro is a xoshiro256++ generator. The zero value is invalid; construct
// with New.
type Xoshiro struct {
	s0, s1, s2, s3 uint64
}

// New returns a Xoshiro seeded deterministically from seed. Different seeds
// yield statistically independent streams.
func New(seed uint64) *Xoshiro {
	sm := NewSplitMix64(seed)
	x := &Xoshiro{s0: sm.Next(), s1: sm.Next(), s2: sm.Next(), s3: sm.Next()}
	// Avoid the (astronomically unlikely) all-zero state.
	if x.s0|x.s1|x.s2|x.s3 == 0 {
		x.s0 = 0x9e3779b97f4a7c15
	}
	return x
}

// Split derives a new, independent generator from r. The derived stream is a
// deterministic function of r's current state, and r is advanced, so
// successive Splits yield distinct streams. Use this to hand one generator
// to each goroutine.
func (r *Xoshiro) Split() *Xoshiro {
	return New(r.Uint64() ^ 0xd1342543de82ef95)
}

// Uint64 returns the next pseudo-random 64-bit value.
func (r *Xoshiro) Uint64() uint64 {
	result := bits.RotateLeft64(r.s0+r.s3, 23) + r.s0
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = bits.RotateLeft64(r.s3, 45)
	return result
}

// Uint32 returns the next pseudo-random 32-bit value.
func (r *Xoshiro) Uint32() uint32 {
	return uint32(r.Uint64() >> 32)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
// It uses Lemire's multiply-shift rejection method to avoid modulo bias.
func (r *Xoshiro) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (r *Xoshiro) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	// Lemire's method with a single 128-bit multiply; the rejection loop
	// runs less than once on average.
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (r *Xoshiro) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniform value in [0, 1).
func (r *Xoshiro) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n) as a slice.
func (r *Xoshiro) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the swap function,
// via the Fisher-Yates algorithm.
func (r *Xoshiro) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a normally distributed value with mean 0 and stddev 1,
// using the polar (Marsaglia) method.
func (r *Xoshiro) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}
