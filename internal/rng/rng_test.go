package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a := NewSplitMix64(42)
	b := NewSplitMix64(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Next(), b.Next(); av != bv {
			t.Fatalf("step %d: %d != %d", i, av, bv)
		}
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference outputs of the canonical splitmix64 with seed 0.
	z := NewSplitMix64(0)
	if got := z.Next(); got != 0xE220A8397B1DCDAF {
		t.Fatalf("splitmix64(0) first output = %#x, want 0xE220A8397B1DCDAF", got)
	}
	if got := z.Next(); got != 0x6E789E6AA1B965F4 {
		t.Fatalf("splitmix64(0) second output = %#x, want 0x6E789E6AA1B965F4", got)
	}
}

func TestMix64MatchesStateless(t *testing.T) {
	for _, x := range []uint64{0, 1, 2, 42, math.MaxUint64, 1 << 40} {
		s := NewSplitMix64(x)
		if got, want := Mix64(x), s.Next(); got != want {
			t.Fatalf("Mix64(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestXoshiroDeterministic(t *testing.T) {
	a := New(7)
	b := New(7)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("step %d: %d != %d", i, av, bv)
		}
	}
}

func TestXoshiroSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs in 100 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(99)
	c1 := r.Split()
	c2 := r.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("two Split children produced the same first output")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(5)
	for n := 1; n < 100; n++ {
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-squared-ish sanity check: 10 buckets, 100k draws, each bucket
	// should be within 5% of expectation.
	r := New(11)
	const buckets = 10
	const draws = 100000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(buckets)]++
	}
	want := draws / buckets
	for i, c := range counts {
		if math.Abs(float64(c-want)) > 0.05*float64(want) {
			t.Fatalf("bucket %d has %d draws, want ~%d", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		r := New(seed)
		p := r.Perm(int(n))
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == int(n)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleCoversArrangements(t *testing.T) {
	// All 6 permutations of 3 elements should appear over many shuffles.
	r := New(17)
	seen := map[[3]int]bool{}
	for i := 0; i < 2000; i++ {
		a := [3]int{0, 1, 2}
		r.Shuffle(3, func(i, j int) { a[i], a[j] = a[j], a[i] })
		seen[a] = true
	}
	if len(seen) != 6 {
		t.Fatalf("saw %d/6 permutations of 3 elements", len(seen))
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(23)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("variance = %v, want ~1", variance)
	}
}

func TestUint32NotConstant(t *testing.T) {
	r := New(31)
	first := r.Uint32()
	for i := 0; i < 100; i++ {
		if r.Uint32() != first {
			return
		}
	}
	t.Fatal("Uint32 returned the same value 100 times")
}

func TestInt63NonNegative(t *testing.T) {
	r := New(41)
	for i := 0; i < 10000; i++ {
		if r.Int63() < 0 {
			t.Fatal("Int63 returned negative value")
		}
	}
}

func BenchmarkXoshiroUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkXoshiroIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = r.Intn(1000)
	}
	_ = sink
}
