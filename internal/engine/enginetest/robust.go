package enginetest

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"relaxsched/internal/cq"
	"relaxsched/internal/engine"
)

// This file is the robustness half of the suite: cancellation (Stop and
// Options.Deadline), panic containment and quarantine, the blocked-retry
// cap, the stall watchdog, and the producer-versus-stop races. The seeded
// chaos sweeps that compose all of these live in chaos.go.

// drainBound is the test-enforced ceiling on how long a Stop or Deadline
// drain may take before Wait returns. The engine's guarantee is "each
// worker finishes at most its already-popped batch"; the bound is generous
// for CI noise but still catches a drain that waits for the whole queue.
const drainBound = 5 * time.Second

// checkIdentity verifies the accounting identity on a Result that is
// allowed to carry failures or an interruption (checkStats is for clean
// runs only).
func checkIdentity(t *testing.T, st engine.Result) {
	t.Helper()
	if st.Popped != st.Executed+st.Discarded+st.Reinserted+st.Failed {
		t.Fatalf("stats do not sum: %+v", st.Stats)
	}
	if int64(len(st.Failures)) != st.Failed {
		t.Fatalf("Failed = %d but len(Failures) = %d", st.Failed, len(st.Failures))
	}
}

// waitBounded asserts Wait returns within bound and hands back the Result.
func waitBounded(t *testing.T, e *engine.Execution, bound time.Duration, what string) engine.Result {
	t.Helper()
	done := make(chan engine.Result, 1)
	go func() { done <- e.Wait() }()
	select {
	case st := <-done:
		return st
	case <-time.After(bound):
		t.Fatalf("%s: Wait did not return within %v", what, bound)
		return engine.Result{}
	}
}

// slowWorkload is a flat frontier whose tasks each burn a little wall time,
// so a mid-run Stop always lands with work outstanding.
type slowWorkload struct {
	n     int
	delay time.Duration
	hits  []atomic.Int32
}

func (w *slowWorkload) Frontier(emit func(value, priority int64)) {
	for i := 0; i < w.n; i++ {
		emit(int64(i), int64(i))
	}
}

func (w *slowWorkload) TryExecute(_ *engine.Ctx, value, _ int64) engine.Status {
	time.Sleep(w.delay)
	w.hits[value].Add(1)
	return engine.Executed
}

// perpetualWorkload never terminates on its own: every executed task spawns
// a successor, keeping the live count constant forever. Only a Deadline or
// Stop can end it.
type perpetualWorkload struct {
	width    int
	executed atomic.Int64
}

func (w *perpetualWorkload) Frontier(emit func(value, priority int64)) {
	for i := 0; i < w.width; i++ {
		emit(int64(i), int64(i))
	}
}

func (w *perpetualWorkload) TryExecute(ctx *engine.Ctx, value, priority int64) engine.Status {
	w.executed.Add(1)
	ctx.Spawn(value+int64(w.width), priority+1)
	return engine.Executed
}

// stuckWorkload is one task that is Blocked forever — the livelock the
// retry cap bounds and the stall the watchdog must diagnose.
type stuckWorkload struct{}

func (stuckWorkload) Frontier(emit func(value, priority int64)) { emit(7, 7) }
func (stuckWorkload) TryExecute(*engine.Ctx, int64, int64) engine.Status {
	return engine.Blocked
}

// panickyWorkload panics on every value divisible by stride — real panics
// from workload code, not injected ones.
type panickyWorkload struct {
	n, stride int
	hits      []atomic.Int32
}

func (w *panickyWorkload) Frontier(emit func(value, priority int64)) {
	for i := 0; i < w.n; i++ {
		emit(int64(i), int64(i))
	}
}

func (w *panickyWorkload) TryExecute(_ *engine.Ctx, value, _ int64) engine.Status {
	if value%int64(w.stride) == 0 {
		panic("enginetest: poison task")
	}
	w.hits[value].Add(1)
	return engine.Executed
}

// testStopDrains: Stop mid-run must return a partial Result, marked
// Interrupted, within the drain bound, with exactly-once accounting for
// everything that did execute.
func testStopDrains(t *testing.T, backend cq.Backend) {
	const n = 20000
	for _, batch := range batchSizes {
		w := &slowWorkload{n: n, delay: 50 * time.Microsecond, hits: make([]atomic.Int32, n)}
		e, err := engine.Start(w, opts(backend, 4, batch, 31))
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		time.Sleep(5 * time.Millisecond)
		start := time.Now()
		e.Stop()
		st := waitBounded(t, e, drainBound, "Stop")
		if d := time.Since(start); d > drainBound {
			t.Fatalf("batch %d: drain took %v", batch, d)
		}
		checkIdentity(t, st)
		if !st.Interrupted {
			t.Fatalf("batch %d: mid-run Stop not marked Interrupted (executed %d of %d)", batch, st.Executed, n)
		}
		if st.Executed == int64(n) {
			t.Fatalf("batch %d: Stop landed after all %d tasks; shorten the fuse", batch, n)
		}
		var hits int64
		for i := range w.hits {
			switch got := w.hits[i].Load(); got {
			case 0:
			case 1:
				hits++
			default:
				t.Fatalf("batch %d: task %d executed %d times", batch, i, got)
			}
		}
		if hits != st.Executed {
			t.Fatalf("batch %d: %d tasks ran but stats say %d executed", batch, hits, st.Executed)
		}
	}
}

// testDeadlineInterrupts: a workload that never terminates on its own must
// be cut off by Options.Deadline.
func testDeadlineInterrupts(t *testing.T, backend cq.Backend) {
	for _, batch := range batchSizes {
		w := &perpetualWorkload{width: 32}
		o := opts(backend, 4, batch, 37)
		o.Deadline = 10 * time.Millisecond
		e, err := engine.Start(w, o)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		st := waitBounded(t, e, drainBound, "Deadline")
		checkIdentity(t, st)
		if !st.Interrupted {
			t.Fatalf("batch %d: deadline expiry not marked Interrupted", batch)
		}
		if st.Executed == 0 {
			t.Fatalf("batch %d: nothing executed before the deadline", batch)
		}
		if got := w.executed.Load(); got != st.Executed {
			t.Fatalf("batch %d: workload saw %d executions, stats say %d", batch, got, st.Executed)
		}
	}
}

// testPanicQuarantine: real TryExecute panics must quarantine the poisoned
// pairs — never crash the process, never stall termination, never lose a
// clean task.
func testPanicQuarantine(t *testing.T, backend cq.Backend) {
	const n, stride = 2000, 97
	want := int64((n + stride - 1) / stride) // values 0, 97, ... below n
	for _, batch := range batchSizes {
		w := &panickyWorkload{n: n, stride: stride, hits: make([]atomic.Int32, n)}
		st, err := engine.Run(w, opts(backend, 4, batch, 41))
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		checkIdentity(t, st)
		if st.Interrupted {
			t.Fatalf("batch %d: panic containment marked the run Interrupted", batch)
		}
		if st.Failed != want {
			t.Fatalf("batch %d: quarantined %d tasks, want %d", batch, st.Failed, want)
		}
		if st.Executed != int64(n)-want {
			t.Fatalf("batch %d: executed %d, want %d", batch, st.Executed, int64(n)-want)
		}
		seen := make(map[int64]bool)
		for _, f := range st.Failures {
			if f.Kind != engine.Panicked {
				t.Fatalf("batch %d: failure kind %v, want Panicked", batch, f.Kind)
			}
			if f.Err == nil {
				t.Fatalf("batch %d: quarantined task %d has nil error", batch, f.Value)
			}
			if f.Value%stride != 0 || seen[f.Value] {
				t.Fatalf("batch %d: unexpected or duplicate quarantined value %d", batch, f.Value)
			}
			seen[f.Value] = true
		}
		for i := range w.hits {
			want := int32(1)
			if i%stride == 0 {
				want = 0
			}
			if got := w.hits[i].Load(); got != want {
				t.Fatalf("batch %d: task %d executed %d times, want %d", batch, i, got, want)
			}
		}
	}
}

// testRetryCap: a permanently Blocked task must be quarantined after
// MaxBlockedRetries re-insertions, turning a livelock into termination.
func testRetryCap(t *testing.T, backend cq.Backend) {
	const cap = 32
	for _, batch := range batchSizes {
		o := opts(backend, 2, batch, 43)
		o.MaxBlockedRetries = cap
		e, err := engine.Start(stuckWorkload{}, o)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		st := waitBounded(t, e, drainBound, "RetryCap")
		checkIdentity(t, st)
		if st.Interrupted {
			t.Fatalf("batch %d: retry-cap quarantine marked Interrupted", batch)
		}
		if st.Failed != 1 || len(st.Failures) != 1 {
			t.Fatalf("batch %d: failures %+v, want exactly the stuck task", batch, st.Failures)
		}
		f := st.Failures[0]
		if f.Kind != engine.RetriesExhausted || !errors.Is(f.Err, engine.ErrRetriesExhausted) {
			t.Fatalf("batch %d: failure %+v, want RetriesExhausted", batch, f)
		}
		if f.Value != 7 || f.Priority != 7 {
			t.Fatalf("batch %d: quarantined (%d, %d), want (7, 7)", batch, f.Value, f.Priority)
		}
		if st.Reinserted != cap {
			t.Fatalf("batch %d: reinserted %d times, want exactly the %d budget", batch, st.Reinserted, cap)
		}
	}
}

// testWatchdogAborts: with no OnStall handler, a flat progress tally for
// StallTimeout must abort the run with a diagnostic report attached.
func testWatchdogAborts(t *testing.T, backend cq.Backend) {
	const timeout = 25 * time.Millisecond
	for _, batch := range batchSizes {
		o := opts(backend, 4, batch, 47)
		o.StallTimeout = timeout
		e, err := engine.Start(stuckWorkload{}, o)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		st := waitBounded(t, e, drainBound, "Watchdog")
		checkIdentity(t, st)
		if !st.Interrupted {
			t.Fatalf("batch %d: watchdog abort not marked Interrupted", batch)
		}
		rep := st.Stall
		if rep == nil {
			t.Fatalf("batch %d: no stall report on an aborted run", batch)
		}
		if rep.NoProgressFor < timeout {
			t.Fatalf("batch %d: report after only %v flat, timeout %v", batch, rep.NoProgressFor, timeout)
		}
		if rep.Live != 1 {
			t.Fatalf("batch %d: report Live = %d, want the 1 stuck task", batch, rep.Live)
		}
		if len(rep.Workers) != 4 {
			t.Fatalf("batch %d: report has %d worker snapshots, want 4", batch, len(rep.Workers))
		}
	}
}

// testWatchdogCallback: with OnStall set the watchdog reports instead of
// aborting, and the callback owns the stop policy.
func testWatchdogCallback(t *testing.T, backend cq.Backend) {
	o := opts(backend, 2, 0, 53)
	o.StallTimeout = 25 * time.Millisecond
	var fired atomic.Int32
	stallc := make(chan struct{}, 4)
	o.OnStall = func(rep *engine.StallReport) {
		fired.Add(1)
		select {
		case stallc <- struct{}{}:
		default:
		}
	}
	e, err := engine.Start(stuckWorkload{}, o)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-stallc:
	case <-time.After(drainBound):
		t.Fatal("watchdog never delivered a stall report")
	}
	e.Stop()
	st := waitBounded(t, e, drainBound, "WatchdogCallback")
	checkIdentity(t, st)
	if !st.Interrupted {
		t.Fatal("Stop after stall report not marked Interrupted")
	}
	if st.Stall == nil {
		t.Fatal("Result.Stall nil although OnStall fired")
	}
	if fired.Load() == 0 {
		t.Fatal("OnStall never fired")
	}
}

// testProducerAbsorbAfterStop: pushes racing (or following) a Stop are
// absorbed — no panic, no stranded in-flight counts, and the run still
// terminates once the producer closes.
func testProducerAbsorbAfterStop(t *testing.T, backend cq.Backend) {
	for _, batch := range batchSizes {
		w := &streamWorkload{n: 100, hits: make([]atomic.Int32, 100)}
		o := opts(backend, 2, batch, 59)
		o.Producers = 1
		e, err := engine.Start(w, o)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		p := e.NewProducer()
		e.Stop()
		for i := 0; i < 100; i++ {
			p.Push(int64(i), int64(i)) // must be absorbed, not panic
		}
		p.Close()
		st := waitBounded(t, e, drainBound, "AbsorbAfterStop")
		checkIdentity(t, st)
		if st.Executed != 0 {
			t.Fatalf("batch %d: %d absorbed pushes executed", batch, st.Executed)
		}
		for i := range w.hits {
			if w.hits[i].Load() != 0 {
				t.Fatalf("batch %d: absorbed task %d ran", batch, i)
			}
		}
	}
}

// testProducerCloseStopRace is the close-versus-stop regression test: a
// batching producer with pairs parked in its buffer closes while Stop lands
// at an arbitrary point. Whatever the interleaving, no task may be lost
// into a counted-but-invisible state (Wait must return) and no task may run
// twice.
func testProducerCloseStopRace(t *testing.T, backend cq.Backend) {
	const n = 400
	for round := 0; round < 8; round++ {
		w := &streamWorkload{n: n, hits: make([]atomic.Int32, n)}
		o := opts(backend, 2, 8, uint64(61+round)) // batch 8: pushes park in the buffer
		o.Producers = 1
		e, err := engine.Start(w, o)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		p := e.NewProducer()
		closed := make(chan struct{})
		go func() {
			defer close(closed)
			for i := 0; i < n; i++ {
				p.Push(int64(i), int64(i))
			}
			p.Close()
		}()
		// Stop at a different point in the stream each round, including
		// before the first push (round 0) and likely after the close.
		time.Sleep(time.Duration(round) * 100 * time.Microsecond)
		e.Stop()
		<-closed
		st := waitBounded(t, e, drainBound, "CloseStopRace")
		checkIdentity(t, st)
		var hits int64
		for i := range w.hits {
			switch got := w.hits[i].Load(); got {
			case 0:
			case 1:
				hits++
			default:
				t.Fatalf("round %d: task %d executed %d times", round, i, got)
			}
		}
		if hits != st.Executed {
			t.Fatalf("round %d: %d tasks ran but stats say %d executed", round, hits, st.Executed)
		}
	}
}

// testStopAfterCompletion: a Stop that lands after the run has already
// quiesced must not mark the Result Interrupted.
func testStopAfterCompletion(t *testing.T, backend cq.Backend) {
	const n = 200
	w := &flatWorkload{n: n, hits: make([]atomic.Int32, n)}
	o := opts(backend, 2, 0, 67)
	o.Producers = 1
	e, err := engine.Start(w, o)
	if err != nil {
		t.Fatal(err)
	}
	p := e.NewProducer()
	p.Close()
	// First Wait rides the run to natural quiescence; the Stop afterwards
	// must change nothing about the (idempotent) Result.
	st := waitBounded(t, e, drainBound, "StopAfterCompletion")
	e.Stop()
	st2 := e.Wait()
	if st.Interrupted || st2.Interrupted {
		t.Fatalf("Stop after completion marked Interrupted: %+v", st2.Stats)
	}
	if st2.Executed != n {
		t.Fatalf("executed %d of %d", st2.Executed, n)
	}
}
