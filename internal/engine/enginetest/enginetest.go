// Package enginetest is the shared conformance and race-stress suite for
// the generic relaxed-execution engine, mirroring internal/cq/cqtest: run
// it (with -race in CI) against every cq backend, and a backend is known to
// drive the engine correctly exactly when enginetest.Run accepts it.
//
// The suite exercises the engine contract with synthetic workloads chosen
// to stress each clause in isolation:
//
//   - a flat frontier (pure drain: every seeded task executed exactly once);
//   - a spawn-heavy tree (dynamic task creation: termination must hold while
//     every pop multiplies the pending work, the regime that breaks naive
//     "queue looked empty" exits);
//   - a dependency chain (worst-case re-insertion: at most one task is
//     runnable at any time, so blocked pops recycle constantly and the
//     batched path must keep parked pairs live);
//   - a duplicate-discard workload (the Discarded status: stale pops are
//     consumed without work, exactly SSSP's staleness filter);
//   - a streaming workload (open system: external producers push prioritized
//     tasks while workers drain, termination waits for every producer to
//     close on top of in-flight quiescence);
//   - the producer-close-versus-idle-worker race (producers stay silent long
//     enough for every worker to fall into sleep backoff, then push a late
//     burst — or nothing at all — and close; the execution must pick up the
//     late arrivals and terminate);
//   - the failure-semantics clauses (robust.go): Stop and Deadline drain to
//     a partial Interrupted result within a bounded time, panicking tasks
//     are quarantined without crashing or wedging the run, the
//     MaxBlockedRetries cap ends blocked-livelock, the stall watchdog
//     aborts (or reports, via OnStall) a globally stuck execution, and a
//     Producer's Close-flush races Stop without stranding counted pairs.
//
// ChaosConformance (chaos.go) composes all of the above: the workload
// families re-run under seeded internal/fault plans — injected stalls,
// forced Blocked returns, poison-task panics, delayed producer closes —
// and the suite asserts exactly-once accounting against the injector's
// ground truth on every backend.
//
// Real-workload conformance (static-DAG, SSSP, branch-and-bound through
// their public adapters) lives in the engine's external test, which sweeps
// this suite's same backend x batch grid.
package enginetest

import (
	"sync/atomic"
	"testing"
	"time"

	"relaxsched/internal/cq"
	"relaxsched/internal/engine"
)

// batchSizes is the batching grid every subtest sweeps: the singleton path,
// a small batch and a batch large enough to cover whole subproblems.
var batchSizes = []int{0, 4, 64}

// Run executes the full conformance and stress suite against the backend.
func Run(t *testing.T, backend cq.Backend) {
	t.Run("FlatFrontier", func(t *testing.T) { testFlatFrontier(t, backend) })
	t.Run("SpawnHeavyTermination", func(t *testing.T) { testSpawnHeavyTermination(t, backend) })
	t.Run("DependencyChain", func(t *testing.T) { testDependencyChain(t, backend) })
	t.Run("DuplicateDiscard", func(t *testing.T) { testDuplicateDiscard(t, backend) })
	t.Run("StreamingProducers", func(t *testing.T) { testStreamingProducers(t, backend) })
	t.Run("ProducerCloseIdleRace", func(t *testing.T) { testProducerCloseIdleRace(t, backend) })
	t.Run("ParkWakeRace", func(t *testing.T) { testParkWakeRace(t, backend) })
	t.Run("IdleParksWorkers", func(t *testing.T) { testIdleParksWorkers(t, backend) })
	t.Run("DynamicProducers", func(t *testing.T) { testDynamicProducers(t, backend) })
	t.Run("ElasticWorkers", func(t *testing.T) { testElasticWorkers(t, backend) })
	t.Run("StopDrains", func(t *testing.T) { testStopDrains(t, backend) })
	t.Run("StopAfterCompletion", func(t *testing.T) { testStopAfterCompletion(t, backend) })
	t.Run("DeadlineInterrupts", func(t *testing.T) { testDeadlineInterrupts(t, backend) })
	t.Run("PanicQuarantine", func(t *testing.T) { testPanicQuarantine(t, backend) })
	t.Run("RetryCap", func(t *testing.T) { testRetryCap(t, backend) })
	t.Run("WatchdogAborts", func(t *testing.T) { testWatchdogAborts(t, backend) })
	t.Run("WatchdogCallback", func(t *testing.T) { testWatchdogCallback(t, backend) })
	t.Run("ProducerAbsorbAfterStop", func(t *testing.T) { testProducerAbsorbAfterStop(t, backend) })
	t.Run("ProducerCloseStopRace", func(t *testing.T) { testProducerCloseStopRace(t, backend) })
}

func opts(backend cq.Backend, threads, batch int, seed uint64) engine.Options {
	return engine.Options{ExecOptions: engine.ExecOptions{
		Threads: threads, QueueMultiplier: 2, Backend: backend,
		BatchSize: batch, Seed: seed,
	}}
}

// checkStats verifies the engine's accounting identity — every pop is
// counted exactly once as Executed, Discarded, Reinserted or Failed — and
// that a fault-free run reports a clean Result: no quarantined tasks (a
// workload panic silently swallowed into Failures would otherwise pass), no
// interruption, no stall report.
func checkStats(t *testing.T, st engine.Result) {
	t.Helper()
	if st.Popped != st.Executed+st.Discarded+st.Reinserted+st.Failed {
		t.Fatalf("stats do not sum: %+v", st.Stats)
	}
	if int64(len(st.Failures)) != st.Failed {
		t.Fatalf("Failed = %d but len(Failures) = %d", st.Failed, len(st.Failures))
	}
	if len(st.Failures) != 0 {
		t.Fatalf("unexpected quarantined tasks: %+v", st.Failures)
	}
	if st.Interrupted {
		t.Fatalf("run unexpectedly marked Interrupted")
	}
	if st.Stall != nil {
		t.Fatalf("unexpected stall report: %+v", st.Stall)
	}
}

// flatWorkload seeds n independent tasks and spawns nothing.
type flatWorkload struct {
	n    int
	hits []atomic.Int32
}

func (w *flatWorkload) Frontier(emit func(value, priority int64)) {
	for i := 0; i < w.n; i++ {
		emit(int64(i), int64(i))
	}
}

func (w *flatWorkload) TryExecute(_ *engine.Ctx, value, _ int64) engine.Status {
	w.hits[value].Add(1)
	return engine.Executed
}

func testFlatFrontier(t *testing.T, backend cq.Backend) {
	const n = 4000
	for _, batch := range batchSizes {
		w := &flatWorkload{n: n, hits: make([]atomic.Int32, n)}
		st, err := engine.Run(w, opts(backend, 4, batch, 1))
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		checkStats(t, st)
		if st.Executed != n || st.Popped != n {
			t.Fatalf("batch %d: executed %d, popped %d, want %d", batch, st.Executed, st.Popped, n)
		}
		for i := range w.hits {
			if got := w.hits[i].Load(); got != 1 {
				t.Fatalf("batch %d: task %d executed %d times", batch, i, got)
			}
		}
	}
}

// treeWorkload spawns a complete tree of the given depth and branching:
// every executed task at depth < depth spawns branch children. Total tasks
// = (branch^(depth+1) - 1) / (branch - 1). Values encode the depth so the
// workload needs no shared node state — the spawn-heavy regime where every
// pop multiplies the pending work, which is exactly what the termination
// protocol must survive.
type treeWorkload struct {
	depth, branch int
	executed      atomic.Int64
}

func (w *treeWorkload) Frontier(emit func(value, priority int64)) {
	emit(0, 0) // value = depth of the node
}

func (w *treeWorkload) TryExecute(ctx *engine.Ctx, value, priority int64) engine.Status {
	w.executed.Add(1)
	if int(value) < w.depth {
		for c := 0; c < w.branch; c++ {
			ctx.Spawn(value+1, priority+1)
		}
	}
	return engine.Executed
}

func testSpawnHeavyTermination(t *testing.T, backend cq.Backend) {
	const depth, branch = 8, 3
	want := int64(0)
	for d, pow := 0, int64(1); d <= depth; d, pow = d+1, pow*branch {
		want += pow
	}
	for _, batch := range batchSizes {
		for _, threads := range []int{1, 4, 8} {
			w := &treeWorkload{depth: depth, branch: branch}
			st, err := engine.Run(w, opts(backend, threads, batch, uint64(7+threads)))
			if err != nil {
				t.Fatalf("threads %d batch %d: %v", threads, batch, err)
			}
			checkStats(t, st)
			if got := w.executed.Load(); got != want {
				t.Fatalf("threads %d batch %d: executed %d of %d spawned tasks", threads, batch, got, want)
			}
			if st.Executed != want {
				t.Fatalf("threads %d batch %d: stats.Executed = %d, want %d", threads, batch, st.Executed, want)
			}
		}
	}
}

// chainWorkload is the worst-case static dependency structure: task i is
// Blocked until task i-1 has executed, so at most one task is ever
// runnable and every other pop recycles through re-insertion.
type chainWorkload struct {
	n    int
	done []atomic.Bool
}

func (w *chainWorkload) Frontier(emit func(value, priority int64)) {
	for i := 0; i < w.n; i++ {
		emit(int64(i), int64(i))
	}
}

func (w *chainWorkload) TryExecute(_ *engine.Ctx, value, _ int64) engine.Status {
	if value > 0 && !w.done[value-1].Load() {
		return engine.Blocked
	}
	if w.done[value].Swap(true) {
		// A second execution of the same task means a pair was duplicated.
		panic("enginetest: chain task executed twice")
	}
	return engine.Executed
}

func testDependencyChain(t *testing.T, backend cq.Backend) {
	const n = 300
	for _, batch := range batchSizes {
		w := &chainWorkload{n: n, done: make([]atomic.Bool, n)}
		st, err := engine.Run(w, opts(backend, 4, batch, 3))
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		checkStats(t, st)
		if st.Executed != n {
			t.Fatalf("batch %d: executed %d of %d", batch, st.Executed, n)
		}
		if st.Reinserted != st.Popped-n {
			t.Fatalf("batch %d: reinserted %d, popped %d, executed %d", batch, st.Reinserted, st.Popped, n)
		}
		for i := range w.done {
			if !w.done[i].Load() {
				t.Fatalf("batch %d: task %d never executed", batch, i)
			}
		}
	}
}

// dupWorkload spawns every child twice and discards the second arrival —
// the duplicate-insertion-plus-staleness-filter pattern of DecreaseKey-free
// SSSP, exercising the Discarded status under concurrency.
type dupWorkload struct {
	levels int
	width  int
	seen   []atomic.Bool
}

func (w *dupWorkload) Frontier(emit func(value, priority int64)) {
	for i := 0; i < w.width; i++ {
		emit(int64(i), 0) // level-0 ids: [0, width)
	}
}

func (w *dupWorkload) TryExecute(ctx *engine.Ctx, value, priority int64) engine.Status {
	if w.seen[value].Swap(true) {
		return engine.Discarded
	}
	level := int(value) / w.width
	if level+1 < w.levels {
		next := int64((level+1)*w.width + int(value)%w.width)
		ctx.Spawn(next, priority+1)
		ctx.Spawn(next, priority+2) // duplicate: must be discarded on arrival
	}
	return engine.Executed
}

// streamWorkload is the open-system workload: an empty frontier (every
// task arrives from an external producer) and executed tasks optionally
// spawning one follow-up, so the scan has to prove quiescence over worker
// *and* producer tallies at once.
type streamWorkload struct {
	n     int // producer-born task ids: [0, n); spawned children: [n, 2n)
	spawn bool
	// cost, when set, is slept per task: tests that need a backlog to
	// accumulate (elastic growth) use it to bound the drain rate, so the
	// producer outruns the workers on every backend regardless of the
	// relative speed of its Push.
	cost time.Duration
	hits []atomic.Int32
}

func (w *streamWorkload) Frontier(func(value, priority int64)) {}

func (w *streamWorkload) TryExecute(ctx *engine.Ctx, value, priority int64) engine.Status {
	if w.cost > 0 {
		time.Sleep(w.cost)
	}
	w.hits[value].Add(1)
	if w.spawn && value < int64(w.n) {
		ctx.Spawn(value+int64(w.n), priority+1)
	}
	return engine.Executed
}

// testStreamingProducers runs the full open-system contract: several
// producers (singleton pushes, batch pushes and a mid-stream Flush) feed
// the frontier while 4 workers drain, executed tasks spawn children, and
// after Wait every producer-born and spawned task must have executed
// exactly once.
func testStreamingProducers(t *testing.T, backend cq.Backend) {
	const n, producers = 3000, 3
	for _, batch := range batchSizes {
		w := &streamWorkload{n: n, spawn: true, hits: make([]atomic.Int32, 2*n)}
		o := opts(backend, 4, batch, 17)
		o.Producers = producers
		e, err := engine.Start(w, o)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		done := make(chan struct{}, producers)
		for p := 0; p < producers; p++ {
			go func(p int, prod *engine.Producer) {
				defer func() { done <- struct{}{} }()
				defer prod.Close()
				lo, hi := p*n/producers, (p+1)*n/producers
				var pairs []cq.Pair
				for i := lo; i < hi; i++ {
					switch i % 3 {
					case 0:
						prod.Push(int64(i), int64(i))
					case 1:
						pairs = append(pairs, cq.Pair{Value: int64(i), Priority: int64(i)})
					default:
						prod.Push(int64(i), int64(i))
						prod.Flush()
					}
					if len(pairs) >= 32 {
						prod.PushBatch(pairs)
						pairs = pairs[:0]
					}
				}
				prod.PushBatch(pairs)
			}(p, e.NewProducer())
		}
		st := e.Wait()
		for i := 0; i < producers; i++ {
			<-done
		}
		checkStats(t, st)
		if st.Executed != 2*n {
			t.Fatalf("batch %d: executed %d, want %d", batch, st.Executed, 2*n)
		}
		for i := range w.hits {
			if got := w.hits[i].Load(); got != 1 {
				t.Fatalf("batch %d: task %d executed %d times", batch, i, got)
			}
		}
	}
}

// testProducerCloseIdleRace is the nasty termination edge: with an empty
// frontier and a silent producer, every worker falls through its yield
// budget into sleep backoff. The producer then either pushes a late burst
// and closes, or closes without ever pushing. Workers must wake out of
// idle backoff for the late arrivals and the execution must terminate —
// a parked "queue looked empty" exit would either lose the burst or hang.
func testProducerCloseIdleRace(t *testing.T, backend cq.Backend) {
	const late = 200
	for _, batch := range batchSizes {
		for _, burst := range []int{0, late} {
			w := &streamWorkload{n: late, hits: make([]atomic.Int32, late)}
			o := opts(backend, 4, batch, 23)
			o.Producers = 1
			e, err := engine.Start(w, o)
			if err != nil {
				t.Fatalf("batch %d: %v", batch, err)
			}
			p := e.NewProducer()
			go func(burst int) {
				// Long enough that every worker has exhausted its yield
				// budget and is cycling through sleep backoff.
				time.Sleep(3 * time.Millisecond)
				for i := 0; i < burst; i++ {
					p.Push(int64(i), int64(i))
				}
				p.Close()
			}(burst)
			terminated := make(chan engine.Result)
			go func() { terminated <- e.Wait() }()
			select {
			case st := <-terminated:
				if st.Executed != int64(burst) {
					t.Fatalf("batch %d burst %d: executed %d", batch, burst, st.Executed)
				}
			case <-time.After(30 * time.Second):
				t.Fatalf("batch %d burst %d: close raced idle workers into a hang", batch, burst)
			}
			for i := 0; i < burst; i++ {
				if got := w.hits[i].Load(); got != 1 {
					t.Fatalf("batch %d burst %d: task %d executed %d times", batch, burst, i, got)
				}
			}
		}
	}
}

// testParkWakeRace aims producer bursts at the exact window where the last
// worker commits to parking: each round waits until every worker is parked
// (or on the way down), then fires a burst with no warning. A lost wakeup
// strands the burst and the round times out; a miscounted wake loses jobs.
// Swept over seeds x batch sizes per backend so the park/wake interleaving
// varies; the burst alternates singleton pushes, batch pushes and
// push-then-flush so every producer-side wake path is exercised.
func testParkWakeRace(t *testing.T, backend cq.Backend) {
	const (
		rounds    = 40
		burst     = 64
		threads   = 4
		parkGrace = 10 * time.Second
	)
	for _, seed := range []uint64{29, 31} {
		for _, batch := range batchSizes {
			total := rounds * burst
			w := &streamWorkload{n: total, hits: make([]atomic.Int32, total)}
			o := opts(backend, threads, batch, seed)
			o.Producers = 1
			e, err := engine.Start(w, o)
			if err != nil {
				t.Fatalf("seed %d batch %d: %v", seed, batch, err)
			}
			p := e.NewProducer()
			executed := func() int64 {
				var n int64
				for i := range w.hits {
					n += int64(w.hits[i].Load())
				}
				return n
			}
			deadline := time.Now().Add(parkGrace)
			for r := 0; r < rounds; r++ {
				// Wait for the pool to wind down: all workers parked. Round 0
				// parks out of launch; later rounds park out of a drain —
				// both sides of the race get hit. If parking itself wedges
				// (workers never all park), the deadline catches that too.
				for e.ParkedWorkers() != threads {
					if time.Now().After(deadline) {
						t.Fatalf("seed %d batch %d round %d: %d/%d workers parked after %v",
							seed, batch, r, e.ParkedWorkers(), threads, parkGrace)
					}
					time.Sleep(50 * time.Microsecond)
				}
				base := int64(r * burst)
				switch r % 3 {
				case 0:
					for i := int64(0); i < burst; i++ {
						p.Push(base+i, base+i)
					}
					p.Flush()
				case 1:
					pairs := make([]cq.Pair, burst)
					for i := range pairs {
						pairs[i] = cq.Pair{Value: base + int64(i), Priority: base + int64(i)}
					}
					p.PushBatch(pairs)
				default:
					for i := int64(0); i < burst; i++ {
						p.Push(base+i, base+i)
						if i%7 == 0 {
							p.Flush()
						}
					}
					p.Flush()
				}
				want := base + burst
				deadline = time.Now().Add(parkGrace)
				for executed() != want {
					if time.Now().After(deadline) {
						t.Fatalf("seed %d batch %d round %d: %d of %d burst jobs executed after %v — lost wakeup",
							seed, batch, r, executed()-base, burst, parkGrace)
					}
					time.Sleep(50 * time.Microsecond)
				}
			}
			p.Close()
			st := e.Wait()
			checkStats(t, st)
			if st.Executed != int64(total) {
				t.Fatalf("seed %d batch %d: executed %d of %d", seed, batch, st.Executed, total)
			}
			for i := range w.hits {
				if got := w.hits[i].Load(); got != 1 {
					t.Fatalf("seed %d batch %d: task %d executed %d times", seed, batch, i, got)
				}
			}
		}
	}
}

// testIdleParksWorkers is the idle-cost acceptance test: an open execution
// with a silent producer must park every worker (no sleep-loop polling),
// stay parked, and still serve and terminate correctly afterwards.
func testIdleParksWorkers(t *testing.T, backend cq.Backend) {
	const threads = 4
	w := &streamWorkload{n: 100, hits: make([]atomic.Int32, 100)}
	o := opts(backend, threads, 0, 37)
	o.Producers = 1
	e, err := engine.Start(w, o)
	if err != nil {
		t.Fatal(err)
	}
	p := e.NewProducer()
	deadline := time.Now().Add(10 * time.Second)
	for e.ParkedWorkers() != threads {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d workers parked on an idle execution", e.ParkedWorkers(), threads)
		}
		time.Sleep(100 * time.Microsecond)
	}
	// Parked is stable while nothing arrives: no worker self-wakes to poll.
	time.Sleep(20 * time.Millisecond)
	if got := e.ParkedWorkers(); got != threads {
		t.Fatalf("parked pool did not stay parked: %d/%d", got, threads)
	}
	for i := 0; i < 100; i++ {
		p.Push(int64(i), int64(i))
	}
	p.Close()
	st := e.Wait()
	checkStats(t, st)
	if st.Executed != 100 {
		t.Fatalf("executed %d of 100 after unpark", st.Executed)
	}
}

// testDynamicProducers exercises registration after Start: one declared
// producer holds the system open while extra producers register
// dynamically, stream and close — from multiple goroutines, racing the
// declared producer's close. Every streamed job must execute exactly once,
// and registration after termination must fail cleanly.
func testDynamicProducers(t *testing.T, backend cq.Backend) {
	const n, dynamics = 2000, 3
	for _, batch := range batchSizes {
		w := &streamWorkload{n: n, hits: make([]atomic.Int32, n)}
		o := opts(backend, 4, batch, 41)
		o.Producers = 1 // the anchor: holds termination open during registration
		e, err := engine.Start(w, o)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		anchor := e.NewProducer()
		done := make(chan struct{}, dynamics)
		per := n / (dynamics + 1)
		for d := 0; d < dynamics; d++ {
			go func(d int) {
				defer func() { done <- struct{}{} }()
				prod, err := e.TryNewProducer()
				if err != nil {
					t.Errorf("batch %d: dynamic registration failed: %v", batch, err)
					return
				}
				defer prod.Close()
				lo := (d + 1) * per
				for i := lo; i < lo+per; i++ {
					prod.Push(int64(i), int64(i))
				}
			}(d)
		}
		for i := 0; i < per; i++ {
			anchor.Push(int64(i), int64(i))
		}
		for d := 0; d < dynamics; d++ {
			<-done
		}
		anchor.Close()
		st := e.Wait()
		checkStats(t, st)
		want := int64(per * (dynamics + 1))
		if st.Executed != want {
			t.Fatalf("batch %d: executed %d, want %d", batch, st.Executed, want)
		}
		if _, err := e.TryNewProducer(); err == nil {
			t.Fatalf("batch %d: TryNewProducer succeeded after termination", batch)
		}
	}
}

// testElasticWorkers runs an elastic pool (MinWorkers/MaxWorkers) through
// idle and burst phases: idle retires the pool to parked reserve, a
// sustained backlog must grow the active set, and every job still executes
// exactly once. Correctness is asserted throughout; the growth assertion
// gives the controller a generous window.
func testElasticWorkers(t *testing.T, backend cq.Backend) {
	// Per-task cost bounds the drain rate (2 active workers serve at most
	// ~2 tasks per sleep quantum), so the producer builds a backlog far
	// beyond 2 tasks/worker on every backend, however fast or slow its
	// Push is relative to a pop.
	const n = 8000
	w := &streamWorkload{n: n, cost: 20 * time.Microsecond, hits: make([]atomic.Int32, n)}
	o := opts(backend, 2, 0, 43)
	o.Producers = 1
	o.MinWorkers = 1
	o.MaxWorkers = 8
	o.Threads = 2
	e, err := engine.Start(w, o)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.ActiveWorkers(); got != 2 {
		t.Fatalf("initial active set = %d, want Threads = 2", got)
	}
	p := e.NewProducer()
	// Idle phase: the whole pool (all MaxWorkers goroutines) parks.
	deadline := time.Now().Add(10 * time.Second)
	for e.ParkedWorkers() != 8 {
		if time.Now().After(deadline) {
			t.Fatalf("idle elastic pool parked %d/8 workers", e.ParkedWorkers())
		}
		time.Sleep(100 * time.Microsecond)
	}
	// Burst phase: the backlog spans many controller ticks (n tasks at
	// cost each, against 2 active workers); the controller must widen the
	// active set while the jobs drain.
	grew := make(chan int, 1)
	go func() {
		best := 0
		deadline := time.Now().Add(20 * time.Second)
		for time.Now().Before(deadline) {
			if a := e.ActiveWorkers(); a > best {
				best = a
				if best > 2 {
					break
				}
			}
			time.Sleep(200 * time.Microsecond)
		}
		grew <- best
	}()
	for i := 0; i < n; i++ {
		p.Push(int64(i), int64(i))
	}
	if best := <-grew; best <= 2 {
		t.Errorf("active set never grew beyond %d under sustained backlog", best)
	}
	p.Close()
	st := e.Wait()
	checkStats(t, st)
	if st.Executed != n {
		t.Fatalf("executed %d of %d", st.Executed, n)
	}
	for i := range w.hits {
		if got := w.hits[i].Load(); got != 1 {
			t.Fatalf("task %d executed %d times", i, got)
		}
	}
}

func testDuplicateDiscard(t *testing.T, backend cq.Backend) {
	const levels, width = 40, 50
	for _, batch := range batchSizes {
		w := &dupWorkload{levels: levels, width: width, seen: make([]atomic.Bool, levels*width)}
		st, err := engine.Run(w, opts(backend, 4, batch, 11))
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		checkStats(t, st)
		if st.Executed != levels*width {
			t.Fatalf("batch %d: executed %d, want %d", batch, st.Executed, levels*width)
		}
		// Each of the (levels-1)*width deeper tasks was spawned twice; one
		// copy executes, the other is discarded.
		if want := int64((levels - 1) * width); st.Discarded != want {
			t.Fatalf("batch %d: discarded %d, want %d", batch, st.Discarded, want)
		}
		for i := range w.seen {
			if !w.seen[i].Load() {
				t.Fatalf("batch %d: task %d never arrived", batch, i)
			}
		}
	}
}
