package enginetest

import (
	"sync/atomic"
	"testing"
	"time"

	"relaxsched/internal/cq"
	"relaxsched/internal/engine"
	"relaxsched/internal/fault"
	"relaxsched/internal/rng"
	"relaxsched/internal/txn"
)

// ChaosConformance is the seeded fault-injection suite: every synthetic
// workload family runs under a deterministic internal/fault plan — worker
// stalls (the practically-wait-free adversary), forced Blocked returns and
// injected poison-task panics, plus delayed producer closes on the
// streaming workload — against the given backend, and the suite asserts the
// invariants that define a fault-tolerant engine:
//
//   - exactly-once: every clean task executes exactly once, under any
//     interleaving of stalls and forced re-insertions (for the
//     transactional workload: commits exactly once, and the commit log
//     still certifies serializable);
//   - quarantine accounting: the quarantined set is exactly the poison
//     values that were reached (a poisoned task's never-born descendants
//     are neither executed nor quarantined), every failure carries the
//     Panicked kind, and Stats.Failed matches;
//   - termination: the run always quiesces — no injected fault may wedge
//     the double-scan protocol (CI runs this under -race).
//
// Run it for every registered cq backend, as engine_test.TestChaosConformance
// does.
func ChaosConformance(t *testing.T, backend cq.Backend) {
	t.Run("FlatPoison", func(t *testing.T) { testChaosFlat(t, backend) })
	t.Run("ColumnSpawnPoison", func(t *testing.T) { testChaosColumns(t, backend) })
	t.Run("DependencyChainChurn", func(t *testing.T) { testChaosChain(t, backend) })
	t.Run("DuplicateDiscardChurn", func(t *testing.T) { testChaosDup(t, backend) })
	t.Run("StreamingPoison", func(t *testing.T) { testChaosStreaming(t, backend) })
	t.Run("ParkedPeerFaults", func(t *testing.T) { testChaosParkedPeers(t, backend) })
	t.Run("TxnPoison", func(t *testing.T) { testChaosTxn(t, backend) })
}

// chaosSeeds is the fixed seed set CI pins; two seeds double the explored
// interleavings without doubling much wall time.
var chaosSeeds = []uint64{101, 202}

// chaosBatches trims the batch grid for chaos runs: the singleton path and
// one genuinely batched configuration.
var chaosBatches = []int{0, 16}

// chaosPlan is the base fault mix: a stall roughly every 7th pop per worker
// (up to 100µs — long enough to overlap real work, short enough to keep the
// suite fast), a forced Blocked roughly every 5th pop capped at 2 per
// value, and the given poison set.
func chaosPlan(seed uint64, poison map[int64]bool) fault.Plan {
	return fault.Plan{
		Seed:            seed,
		StallEvery:      7,
		MaxStall:        100 * time.Microsecond,
		BlockEvery:      5,
		MaxForcedBlocks: 2,
		Poison:          poison,
	}
}

// runChaos executes one workload under one fault plan and runs the common
// assertions: accounting identity, clean termination (no interruption, no
// stall report) and quarantine exactly matching the poison values the
// injector actually fired.
func runChaos(t *testing.T, wl engine.Workload, o engine.Options, plan fault.Plan) (engine.Result, *fault.Injector) {
	t.Helper()
	in := fault.New(plan, o.Threads)
	o.Injector = in
	st, err := engine.Run(wl, o)
	if err != nil {
		t.Fatal(err)
	}
	checkIdentity(t, st)
	if st.Interrupted {
		t.Fatalf("chaos run marked Interrupted: %+v", st.Stats)
	}
	if st.Stall != nil {
		t.Fatalf("unexpected stall report: %+v", st.Stall)
	}
	fired := in.Fired()
	if int64(len(fired)) != st.Failed {
		t.Fatalf("injector fired %d poisons but %d tasks quarantined", len(fired), st.Failed)
	}
	seen := make(map[int64]bool)
	for _, f := range st.Failures {
		if f.Kind != engine.Panicked {
			t.Fatalf("chaos failure kind %v, want Panicked: %+v", f.Kind, f)
		}
		if !fired[f.Value] {
			t.Fatalf("task %d quarantined but the injector never poisoned it", f.Value)
		}
		if seen[f.Value] {
			t.Fatalf("task %d quarantined twice", f.Value)
		}
		seen[f.Value] = true
	}
	return st, in
}

// runChaosOpen is runChaos for an execution the caller feeds via producers:
// feed is invoked after Start with the Execution handle and must return
// once every producer is closed.
func runChaosOpen(t *testing.T, wl engine.Workload, o engine.Options, plan fault.Plan, feed func(*engine.Execution)) (engine.Result, *fault.Injector) {
	t.Helper()
	in := fault.New(plan, o.Threads)
	o.Injector = in
	e, err := engine.Start(wl, o)
	if err != nil {
		t.Fatal(err)
	}
	feed(e)
	st := waitBounded(t, e, 60*time.Second, "chaos streaming")
	checkIdentity(t, st)
	if st.Interrupted {
		t.Fatalf("chaos run marked Interrupted: %+v", st.Stats)
	}
	fired := in.Fired()
	if int64(len(fired)) != st.Failed {
		t.Fatalf("injector fired %d poisons but %d tasks quarantined", len(fired), st.Failed)
	}
	for _, f := range st.Failures {
		if f.Kind != engine.Panicked || !fired[f.Value] {
			t.Fatalf("unexpected chaos failure %+v", f)
		}
	}
	return st, in
}

// testChaosFlat: independent tasks, so every poison value is reached and
// the quarantine set must equal the full poison set; with no natural
// blocking, every re-insertion is injector-forced.
func testChaosFlat(t *testing.T, backend cq.Backend) {
	const n, stride = 2000, 131
	poison := make(map[int64]bool)
	for i := int64(0); i < n; i += stride {
		poison[i] = true
	}
	for _, seed := range chaosSeeds {
		for _, batch := range chaosBatches {
			w := &flatWorkload{n: n, hits: make([]atomic.Int32, n)}
			st, in := runChaos(t, w, opts(backend, 4, batch, seed), chaosPlan(seed, poison))
			if st.Failed != int64(len(poison)) {
				t.Fatalf("seed %d batch %d: quarantined %d, want all %d poisons", seed, batch, st.Failed, len(poison))
			}
			if st.Executed != int64(n-len(poison)) {
				t.Fatalf("seed %d batch %d: executed %d, want %d", seed, batch, st.Executed, n-len(poison))
			}
			if st.Reinserted != in.ForcedBlocks() {
				t.Fatalf("seed %d batch %d: reinserted %d but injector forced %d blocks",
					seed, batch, st.Reinserted, in.ForcedBlocks())
			}
			for i := range w.hits {
				want := int32(1)
				if poison[int64(i)] {
					want = 0
				}
				if got := w.hits[i].Load(); got != want {
					t.Fatalf("seed %d batch %d: task %d executed %d times, want %d", seed, batch, i, got, want)
				}
			}
		}
	}
}

// columnWorkload is the chaos spawn workload: width independent columns,
// cell (level, col) has id level*width+col and spawns the cell above it.
// Unique ids make quarantine sets exact, and poisoning a cell kills its
// whole remaining column — the expected reachable set is computable.
type columnWorkload struct {
	width, levels int
	hits          []atomic.Int32
}

func (w *columnWorkload) Frontier(emit func(value, priority int64)) {
	for c := 0; c < w.width; c++ {
		emit(int64(c), 0)
	}
}

func (w *columnWorkload) TryExecute(ctx *engine.Ctx, value, priority int64) engine.Status {
	w.hits[value].Add(1)
	if int(value)+w.width < w.width*w.levels {
		ctx.Spawn(value+int64(w.width), priority+1)
	}
	return engine.Executed
}

// testChaosColumns: poison one cell in some columns; the cells below it
// must execute, the poisoned cell must be quarantined, and the cells above
// it must never be born (neither executed nor quarantined).
func testChaosColumns(t *testing.T, backend cq.Backend) {
	const width, levels = 40, 30
	poisonLevel := make(map[int]int) // col -> poisoned level, one per column
	poison := make(map[int64]bool)
	for c := 0; c < width; c += 5 {
		lvl := 1 + (c*7)%(levels-1)
		poisonLevel[c] = lvl
		poison[int64(lvl*width+c)] = true
	}
	for _, seed := range chaosSeeds {
		for _, batch := range chaosBatches {
			w := &columnWorkload{width: width, levels: levels, hits: make([]atomic.Int32, width*levels)}
			st, _ := runChaos(t, w, opts(backend, 4, batch, seed), chaosPlan(seed, poison))
			if st.Failed != int64(len(poison)) {
				t.Fatalf("seed %d batch %d: quarantined %d, want all %d poisons (one per column, always reachable)",
					seed, batch, st.Failed, len(poison))
			}
			for id := range w.hits {
				lvl, col := id/width, id%width
				want := int32(1)
				if pl, ok := poisonLevel[col]; ok && lvl >= pl {
					want = 0 // the poisoned cell and everything above it
				}
				if got := w.hits[id].Load(); got != want {
					t.Fatalf("seed %d batch %d: cell (level %d, col %d) executed %d times, want %d",
						seed, batch, lvl, col, got, want)
				}
			}
		}
	}
}

// testChaosChain: the worst-case re-insertion workload under stalls and
// forced blocks — no poison (a poisoned chain link would justly wedge every
// later task); the chain's own executed-twice panic doubles as the
// exactly-once assertion.
func testChaosChain(t *testing.T, backend cq.Backend) {
	const n = 200
	for _, seed := range chaosSeeds {
		for _, batch := range chaosBatches {
			w := &chainWorkload{n: n, done: make([]atomic.Bool, n)}
			st, in := runChaos(t, w, opts(backend, 4, batch, seed), chaosPlan(seed, nil))
			if st.Executed != n {
				t.Fatalf("seed %d batch %d: executed %d of %d", seed, batch, st.Executed, n)
			}
			if st.Reinserted < in.ForcedBlocks() {
				t.Fatalf("seed %d batch %d: reinserted %d < %d injector-forced blocks",
					seed, batch, st.Reinserted, in.ForcedBlocks())
			}
			for i := range w.done {
				if !w.done[i].Load() {
					t.Fatalf("seed %d batch %d: task %d never executed", seed, batch, i)
				}
			}
		}
	}
}

// testChaosDup: duplicate spawns plus staleness discards under churn; the
// executed and discarded totals must come out exact despite forced blocks
// recycling arbitrary copies.
func testChaosDup(t *testing.T, backend cq.Backend) {
	const levels, width = 20, 30
	for _, seed := range chaosSeeds {
		for _, batch := range chaosBatches {
			w := &dupWorkload{levels: levels, width: width, seen: make([]atomic.Bool, levels*width)}
			st, _ := runChaos(t, w, opts(backend, 4, batch, seed), chaosPlan(seed, nil))
			if st.Executed != levels*width {
				t.Fatalf("seed %d batch %d: executed %d, want %d", seed, batch, st.Executed, levels*width)
			}
			if want := int64((levels - 1) * width); st.Discarded != want {
				t.Fatalf("seed %d batch %d: discarded %d, want %d", seed, batch, st.Discarded, want)
			}
		}
	}
}

// testChaosParkedPeers: faults fire into a parked pool. The producer goes
// silent between waves until every worker is parked on the idle lot, then
// the next wave — stall-laced and carrying poison — lands on sleeping
// peers. Every wake in this test starts from a genuine park, not a backoff
// spin, so it exercises the paths the other chaos workloads mostly miss:
// poison panics on freshly woken workers, injected stalls while the rest
// of the pool is still asleep (the waker must not depend on any peer being
// live), and the close-while-parked termination broadcast. Exactly-once,
// quarantine accounting and clean termination must all survive it.
func testChaosParkedPeers(t *testing.T, backend cq.Backend) {
	const threads, waves, perWave = 4, 5, 300
	const n = waves * perWave
	poison := make(map[int64]bool)
	for i := int64(0); i < n; i += 97 {
		poison[i] = true
	}
	for _, seed := range chaosSeeds {
		for _, batch := range chaosBatches {
			w := &streamWorkload{n: n, hits: make([]atomic.Int32, 2*n)}
			o := opts(backend, threads, batch, seed)
			o.Producers = 1
			feed := func(e *engine.Execution) {
				p := e.NewProducer()
				for wave := 0; wave < waves; wave++ {
					// Silence until the whole pool is parked. All-parked
					// also proves the previous wave fully drained: a worker
					// only parks after observing an empty queue, and with
					// every worker asleep no task can be mid-execution.
					deadline := time.Now().Add(20 * time.Second)
					for e.ParkedWorkers() != threads {
						if time.Now().After(deadline) {
							t.Fatalf("seed %d batch %d wave %d: only %d of %d workers parked",
								seed, batch, wave, e.ParkedWorkers(), threads)
						}
						time.Sleep(50 * time.Microsecond)
					}
					lo := wave * perWave
					for i := 0; i < perWave; i++ {
						p.Push(int64(lo+i), int64(lo+i))
					}
					p.Flush()
				}
				p.Close()
			}
			st, _ := runChaosOpen(t, w, o, chaosPlan(seed, poison), feed)
			if st.Failed != int64(len(poison)) {
				t.Fatalf("seed %d batch %d: quarantined %d, want all %d poisons",
					seed, batch, st.Failed, len(poison))
			}
			if want := int64(n - len(poison)); st.Executed != want {
				t.Fatalf("seed %d batch %d: executed %d, want %d", seed, batch, st.Executed, want)
			}
			for i := 0; i < n; i++ {
				want := int32(1)
				if poison[int64(i)] {
					want = 0
				}
				if got := w.hits[i].Load(); got != want {
					t.Fatalf("seed %d batch %d: task %d executed %d times, want %d",
						seed, batch, i, got, want)
				}
			}
		}
	}
}

// testChaosTxn: the transactional workload under chaos. Poison fires at
// the injection seam, before TryExecute, so a poisoned transaction must be
// quarantined without ever touching the store; every clean transaction
// must commit despite stalls and forced re-insertions; and the commit log
// must still certify serializable — the fault plan must not be able to
// manufacture a non-serial history.
func testChaosTxn(t *testing.T, backend cq.Backend) {
	spec := txn.WorkloadSpec{Txns: 1200, Keys: 32, Skew: 0.99, OpsPerTxn: 3, ReadFrac: 0.4, Seed: 77}
	poison := make(map[int64]bool)
	for i := int64(0); i < int64(spec.Txns); i += 89 {
		poison[i] = true
	}
	for _, seed := range chaosSeeds {
		for _, batch := range chaosBatches {
			wl, err := txn.NewWorkload(spec, 4, true)
			if err != nil {
				t.Fatal(err)
			}
			st, _ := runChaos(t, wl, opts(backend, 4, batch, seed), chaosPlan(seed, poison))
			if st.Failed != int64(len(poison)) {
				t.Fatalf("seed %d batch %d: quarantined %d, want all %d poisons", seed, batch, st.Failed, len(poison))
			}
			if want := int64(spec.Txns - len(poison)); st.Executed != want {
				t.Fatalf("seed %d batch %d: committed %d, want %d", seed, batch, st.Executed, want)
			}
			if err := wl.Certify(); err != nil {
				t.Fatalf("seed %d batch %d: %v", seed, batch, err)
			}
			if got := wl.Commits(); got != st.Executed {
				t.Fatalf("seed %d batch %d: commit log has %d entries, engine executed %d", seed, batch, got, st.Executed)
			}
		}
	}
}

// testChaosStreaming: the open system under chaos — three producers with
// seeded delayed closes feed base tasks [0, n), each spawning child id+n;
// poisoned base tasks kill their child, poisoned children die alone.
func testChaosStreaming(t *testing.T, backend cq.Backend) {
	const n, producers = 1500, 3
	basePoison := make(map[int64]bool)
	for i := int64(0); i < n; i += 173 {
		basePoison[i] = true
	}
	childPoison := make(map[int64]bool)
	for i := int64(250); i < n; i += 250 {
		if !basePoison[i] {
			childPoison[n+i] = true
		}
	}
	poison := make(map[int64]bool, len(basePoison)+len(childPoison))
	for v := range basePoison {
		poison[v] = true
	}
	for v := range childPoison {
		poison[v] = true
	}
	for _, seed := range chaosSeeds {
		for _, batch := range chaosBatches {
			w := &streamWorkload{n: n, spawn: true, hits: make([]atomic.Int32, 2*n)}
			o := opts(backend, 4, batch, seed)
			o.Producers = producers
			feed := func(e *engine.Execution) {
				done := make(chan struct{}, producers)
				delayRng := rng.New(seed ^ 0xc4a05)
				for p := 0; p < producers; p++ {
					delay := time.Duration(delayRng.Uint64()%2000) * time.Microsecond
					go func(p int, prod *engine.Producer, delay time.Duration) {
						defer func() { done <- struct{}{} }()
						lo, hi := p*n/producers, (p+1)*n/producers
						for i := lo; i < hi; i++ {
							prod.Push(int64(i), int64(i))
						}
						// Delayed close: the producer goes silent with the close
						// outstanding while workers drain into idle backoff.
						time.Sleep(delay)
						prod.Close()
					}(p, e.NewProducer(), delay)
				}
				for i := 0; i < producers; i++ {
					<-done
				}
			}
			st, _ := runChaosOpen(t, w, o, chaosPlan(seed, poison), feed)
			if st.Failed != int64(len(poison)) {
				t.Fatalf("seed %d batch %d: quarantined %d, want %d", seed, batch, st.Failed, len(poison))
			}
			wantExec := int64(2*n - 2*len(basePoison) - len(childPoison))
			if st.Executed != wantExec {
				t.Fatalf("seed %d batch %d: executed %d, want %d", seed, batch, st.Executed, wantExec)
			}
			for id := range w.hits {
				want := int32(1)
				v := int64(id)
				if poison[v] || (v >= n && basePoison[v-n]) {
					want = 0 // poisoned, or the never-spawned child of a poisoned base
				}
				if got := w.hits[id].Load(); got != want {
					t.Fatalf("seed %d batch %d: task %d executed %d times, want %d", seed, batch, id, got, want)
				}
			}
		}
	}
}
