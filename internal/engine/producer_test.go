package engine_test

import (
	"sync/atomic"
	"testing"
	"time"

	"relaxsched/internal/cq"
	"relaxsched/internal/engine"
)

// recordWorkload counts executions per value; the streaming analogue of
// enginetest's flat workload, with an empty frontier (all tasks arrive from
// producers).
type recordWorkload struct {
	hits []atomic.Int32
}

func (w *recordWorkload) Frontier(func(value, priority int64)) {}

func (w *recordWorkload) TryExecute(_ *engine.Ctx, value, _ int64) engine.Status {
	w.hits[value].Add(1)
	return engine.Executed
}

func startRecording(t *testing.T, n, producers, batch int) (*engine.Execution, *recordWorkload) {
	t.Helper()
	wl := &recordWorkload{hits: make([]atomic.Int32, n)}
	e, err := engine.Start(wl, engine.Options{ExecOptions: engine.ExecOptions{Threads: 4, QueueMultiplier: 2, BatchSize: batch, Seed: 21}, Producers: producers})
	if err != nil {
		t.Fatal(err)
	}
	return e, wl
}

func TestProducerStreamsToCompletion(t *testing.T) {
	const n = 2000
	for _, batch := range []int{0, 8} {
		e, wl := startRecording(t, n, 2, batch)
		a, b := e.NewProducer(), e.NewProducer()
		for i := 0; i < n/2; i++ {
			a.Push(int64(i), int64(i))
			b.Push(int64(n/2+i), int64(n/2+i))
		}
		a.Close()
		b.Close()
		st := e.Wait()
		if st.Executed != n || st.Popped != n {
			t.Fatalf("batch %d: executed %d, popped %d, want %d", batch, st.Executed, st.Popped, n)
		}
		for i := range wl.hits {
			if got := wl.hits[i].Load(); got != 1 {
				t.Fatalf("batch %d: job %d executed %d times", batch, i, got)
			}
		}
	}
}

func TestProducerPushBatch(t *testing.T) {
	const n = 1200
	for _, batch := range []int{0, 16} {
		e, wl := startRecording(t, n, 1, batch)
		p := e.NewProducer()
		pairs := make([]cq.Pair, 0, 100)
		for i := 0; i < n; i++ {
			if i%3 == 0 {
				p.Push(int64(i), int64(i)) // interleave singleton pushes
				continue
			}
			pairs = append(pairs, cq.Pair{Value: int64(i), Priority: int64(i)})
			if len(pairs) == cap(pairs) {
				p.PushBatch(pairs)
				pairs = pairs[:0]
			}
		}
		p.PushBatch(pairs)
		p.PushBatch(nil) // empty batch is a no-op
		p.Close()
		if st := e.Wait(); st.Executed != n {
			t.Fatalf("batch %d: executed %d, want %d", batch, st.Executed, n)
		}
		for i := range wl.hits {
			if got := wl.hits[i].Load(); got != 1 {
				t.Fatalf("batch %d: job %d executed %d times", batch, i, got)
			}
		}
	}
}

// Flush must make buffered pairs visible without closing the producer: the
// workers drain them while the producer stays open.
func TestProducerFlushReleasesBufferedPairs(t *testing.T) {
	const n = 64
	e, wl := startRecording(t, n, 1, 1024) // batch far larger than n: nothing auto-flushes
	p := e.NewProducer()
	for i := 0; i < n; i++ {
		p.Push(int64(i), int64(i))
	}
	p.Flush()
	deadline := time.Now().Add(5 * time.Second)
	for {
		done := 0
		for i := range wl.hits {
			done += int(wl.hits[i].Load())
		}
		if done == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d flushed jobs executed while producer open", done, n)
		}
		time.Sleep(time.Millisecond)
	}
	p.Close()
	if st := e.Wait(); st.Executed != n {
		t.Fatalf("executed %d, want %d", st.Executed, n)
	}
}

func TestProducerPushAfterClosePanics(t *testing.T) {
	e, _ := startRecording(t, 1, 1, 0)
	p := e.NewProducer()
	p.Push(0, 0)
	p.Close()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Push on closed producer did not panic")
			}
		}()
		p.Push(0, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("PushBatch on closed producer did not panic")
			}
		}()
		p.PushBatch([]cq.Pair{{Value: 0, Priority: 1}})
	}()
	e.Wait()
}

func TestProducerDoubleCloseSafe(t *testing.T) {
	for _, batch := range []int{0, 8} {
		e, _ := startRecording(t, 4, 1, batch)
		p := e.NewProducer()
		p.Push(0, 0)
		p.Close()
		p.Close() // idempotent: must not double-decrement the open count
		p.Flush() // flush after close is a no-op, not a panic
		if st := e.Wait(); st.Executed != 1 {
			t.Fatalf("batch %d: executed %d, want 1", batch, st.Executed)
		}
	}
}

// NewProducer beyond the declared count registers dynamically: the extra
// producer's stream must be fully served, and termination must wait for it.
func TestNewProducerBeyondDeclaredRegisters(t *testing.T) {
	const n = 100
	e, wl := startRecording(t, n, 1, 0)
	declared := e.NewProducer()
	dynamic := e.NewProducer() // beyond Options.Producers: dynamic registration
	for i := 0; i < n/2; i++ {
		declared.Push(int64(i), int64(i))
		dynamic.Push(int64(n/2+i), int64(n/2+i))
	}
	declared.Close()
	dynamic.Close()
	st := e.Wait()
	if st.Executed != n {
		t.Fatalf("executed %d, want %d", st.Executed, n)
	}
	for i := range wl.hits {
		if got := wl.hits[i].Load(); got != 1 {
			t.Fatalf("job %d executed %d times", i, got)
		}
	}
}

// After termination the registration handshake must fail: TryNewProducer
// returns ErrTerminated, NewProducer panics.
func TestNewProducerAfterTermination(t *testing.T) {
	e, _ := startRecording(t, 1, 1, 0)
	p := e.NewProducer()
	p.Push(0, 0)
	p.Close()
	e.Wait()
	if _, err := e.TryNewProducer(); err != engine.ErrTerminated {
		t.Fatalf("TryNewProducer after termination: err = %v, want ErrTerminated", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewProducer after termination did not panic")
		}
	}()
	e.NewProducer()
}

func TestRunRejectsProducers(t *testing.T) {
	if _, err := engine.Run(&noopWorkload{}, engine.Options{ExecOptions: engine.ExecOptions{Threads: 1, QueueMultiplier: 1}, Producers: 1}); err == nil {
		t.Fatal("Run accepted a non-zero producer count")
	}
	if _, err := engine.Start(&noopWorkload{}, engine.Options{ExecOptions: engine.ExecOptions{Threads: 1, QueueMultiplier: 1}, Producers: -1}); err == nil {
		t.Fatal("Start accepted a negative producer count")
	}
}

// A declared-but-unused producer must hold termination open until closed,
// even though it never pushes: open count, not task count, gates the exit.
func TestUnusedProducerGatesTermination(t *testing.T) {
	e, _ := startRecording(t, 1, 1, 0)
	done := make(chan engine.Result)
	go func() { done <- e.Wait() }()
	select {
	case <-done:
		t.Fatal("execution terminated with a declared producer never closed")
	case <-time.After(50 * time.Millisecond):
	}
	p := e.NewProducer()
	p.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("execution did not terminate after the producer closed")
	}
}

// TestProducerChurnRecyclesSlots registers and closes 10k dynamic
// producers on one execution. The inflight layer recycles a closed
// producer's tally slot for the next TryNewProducer (see
// inflight.Counter), so this churn must neither leak per-producer state
// nor disturb the exactly-once accounting of the tasks the short-lived
// producers pushed.
func TestProducerChurnRecyclesSlots(t *testing.T) {
	const cycles = 10000
	e, wl := startRecording(t, cycles, 1, 0)
	anchor := e.NewProducer() // the declared producer holds the run open
	for i := 0; i < cycles; i++ {
		p, err := e.TryNewProducer()
		if err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		if i%3 == 0 {
			p.Push(int64(i), int64(i))
		}
		p.Close()
	}
	for i := 0; i < cycles; i++ {
		if i%3 != 0 {
			anchor.Push(int64(i), int64(i))
		}
	}
	anchor.Close()
	st := e.Wait()
	if st.Executed != cycles {
		t.Fatalf("executed %d, want %d", st.Executed, cycles)
	}
	for i := range wl.hits {
		if got := wl.hits[i].Load(); got != 1 {
			t.Fatalf("task %d executed %d times", i, got)
		}
	}
	if _, err := e.TryNewProducer(); err != engine.ErrTerminated {
		t.Fatalf("TryNewProducer after termination: %v, want ErrTerminated", err)
	}
}
