package engine

import (
	"sync/atomic"
	"time"
)

// The stall watchdog is the engine's answer to a wedged worker or a
// starved backend: a monitor goroutine samples the global progress tally
// (tasks produced + tasks completed, the same monotone counters the
// termination protocol scans), and when it does not move for
// Options.StallTimeout the watchdog captures a diagnostic snapshot —
// per-worker state and tallies, queue-empty observations, an inflight scan
// — and either hands it to Options.OnStall or aborts the run with the
// report attached to the Result. Re-insertion churn (blocked tasks cycling
// through the queue) deliberately does not count as progress: a run where
// every pop comes back Blocked is exactly the livelock the watchdog exists
// to diagnose. Conversely, flat progress with zero live tasks is not a
// stall at all — it is an idle service whose workers are parked waiting
// for arrivals — so a stall additionally requires live unfinished work.

// WorkerPhase is a worker's last published state, sampled by the watchdog.
type WorkerPhase int32

const (
	// PhaseRunning: the worker popped a task since it last went idle.
	PhaseRunning WorkerPhase = iota
	// PhaseIdle: the worker is in empty-queue backoff.
	PhaseIdle
	// PhaseExited: the worker's loop has returned.
	PhaseExited
	// PhaseParked: the worker is parked on the idle lot, consuming nothing
	// until a wake. Parked is the healthy idle state, not a stall: the
	// watchdog only reports when live tasks exist that nobody is finishing.
	PhaseParked
)

// String names the phase for reports.
func (p WorkerPhase) String() string {
	switch p {
	case PhaseRunning:
		return "running"
	case PhaseIdle:
		return "idle"
	case PhaseExited:
		return "exited"
	case PhaseParked:
		return "parked"
	default:
		return "unknown"
	}
}

// WorkerSnapshot is one worker's state in a stall report.
type WorkerSnapshot struct {
	Worker int
	Phase  WorkerPhase
	// Popped..Failed mirror Stats for this worker alone.
	Popped, Executed, Discarded, Reinserted, Failed int64
	// EmptyPops counts pops that found the queue apparently empty — a
	// worker with a huge EmptyPops share while tasks are live points at a
	// starved or wedged backend rather than a livelocked workload.
	EmptyPops int64
}

// StallReport is the diagnostic snapshot the watchdog captures when global
// progress stops.
type StallReport struct {
	// NoProgressFor is how long the progress tally had been flat when the
	// snapshot was taken (at least Options.StallTimeout).
	NoProgressFor time.Duration
	// Produced and Completed are the global monotone tallies at capture;
	// Live is their difference — tasks produced but never completed, the
	// work the run is stuck on.
	Produced, Completed, Live int64
	// OpenProducers counts declared external producers not yet closed; a
	// stall with open producers and zero live tasks is a producer that
	// went silent without closing.
	OpenProducers int64
	// QueueLen is a racy scan of the queue's stored-pair count. Live pairs
	// missing from the queue are held in worker buffers or mid-flight.
	QueueLen int
	// ParkedWorkers counts workers parked on the idle lot at capture.
	// Parked workers with Live > 0 and QueueLen == 0 point at work held by
	// a wedged peer or a batching producer that went quiet without Flush —
	// the parked ones have nothing visible to pop and are healthy.
	ParkedWorkers int
	// Workers snapshots every worker's phase and tallies.
	Workers []WorkerSnapshot
}

// workerState is one worker's shared stat block: written only by its
// worker (uncontended atomic adds on a private line), read by the watchdog
// and by Wait's final accumulation. Padded so neighbouring workers never
// false-share.
type workerState struct {
	_          [64]byte
	popped     atomic.Int64
	executed   atomic.Int64
	discarded  atomic.Int64
	reinserted atomic.Int64
	failed     atomic.Int64
	emptyPops  atomic.Int64
	phase      atomic.Int32
	_          [76]byte // pad the 52-byte payload to two 64-byte lines
}

// snapshot reads one worker's published state. Racy by design — the
// watchdog wants a cheap consistent-enough view, not a barrier.
func (ws *workerState) snapshot(w int) WorkerSnapshot {
	return WorkerSnapshot{
		Worker:     w,
		Phase:      WorkerPhase(ws.phase.Load()),
		Popped:     ws.popped.Load(),
		Executed:   ws.executed.Load(),
		Discarded:  ws.discarded.Load(),
		Reinserted: ws.reinserted.Load(),
		Failed:     ws.failed.Load(),
		EmptyPops:  ws.emptyPops.Load(),
	}
}

// stallReport captures the full diagnostic snapshot.
func (e *Execution) stallReport(flatFor time.Duration) *StallReport {
	rep := &StallReport{
		NoProgressFor: flatFor,
		Live:          e.counters.Live(),
		OpenProducers: e.counters.Open(),
		QueueLen:      e.mq.Len(),
		ParkedWorkers: e.lot.Parked(),
	}
	rep.Produced, rep.Completed = e.counters.Tallies()
	rep.Workers = make([]WorkerSnapshot, len(e.workers))
	for w := range e.workers {
		rep.Workers[w] = e.workers[w].snapshot(w)
	}
	return rep
}

// watchdog is the monitor loop, launched by Start when Options.StallTimeout
// is set. It samples progress at a fraction of the timeout, and on a flat
// stretch of at least StallTimeout captures a report: with OnStall set the
// report is delivered (repeatedly, once per further flat stretch) and the
// run continues — the callback owns the policy and may call Stop; without
// OnStall the watchdog aborts the run itself. The loop exits when the
// workers do (donec) or after an abort.
func (e *Execution) watchdog(timeout time.Duration, onStall func(*StallReport)) {
	interval := timeout / 8
	if interval < 100*time.Microsecond {
		interval = 100 * time.Microsecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	last := e.counters.Progress()
	flatSince := time.Now()
	for {
		select {
		case <-e.donec:
			return
		case <-ticker.C:
		}
		cur := e.counters.Progress()
		if cur != last {
			last, flatSince = cur, time.Now()
			continue
		}
		// Flat progress alone is not a stall: an idle open system — all
		// arrivals served, producers quiet, workers parked — is flat and
		// healthy, and must not trip the watchdog (parked != stalled). A
		// stall requires live unfinished work going nowhere. Live here is
		// exact, not racy: any concurrent produce or complete would have
		// moved Progress, contradicting the flat stretch that got us here.
		// (A closed-or-closing system with Live == 0 is quiescent and about
		// to terminate on its own — also not a stall.)
		if e.counters.Live() == 0 {
			continue
		}
		if flat := time.Since(flatSince); flat >= timeout {
			rep := e.stallReport(flat)
			e.stall.Store(rep)
			if onStall == nil {
				e.Stop()
				return
			}
			onStall(rep)
			// Re-arm: another full flat timeout before the next report.
			flatSince = time.Now()
		}
	}
}
