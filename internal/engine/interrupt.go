package engine

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// This file is the engine's failure story: cooperative interruption
// (Execution.Stop and Options.Deadline), panic containment with poison-task
// quarantine, and the blocked-retry cap. The stall watchdog lives in
// watchdog.go; the deterministic chaos injector that exercises all of it is
// internal/fault, wired in through the Injector seam below.

// FailureKind classifies why a task was quarantined.
type FailureKind int8

const (
	// Panicked: TryExecute panicked on the task. The recovered value is
	// wrapped in Failure.Err.
	Panicked FailureKind = iota
	// RetriesExhausted: the task came back Blocked more than
	// Options.MaxBlockedRetries times and was quarantined instead of being
	// re-inserted again (the bounded-livelock guarantee).
	RetriesExhausted
)

// String names the failure kind for reports and logs.
func (k FailureKind) String() string {
	switch k {
	case Panicked:
		return "panicked"
	case RetriesExhausted:
		return "retries-exhausted"
	default:
		return fmt.Sprintf("FailureKind(%d)", int8(k))
	}
}

// ErrRetriesExhausted is the error recorded on a RetriesExhausted failure.
var ErrRetriesExhausted = errors.New("engine: task exceeded MaxBlockedRetries")

// Failure is one quarantined task: the exact (value, priority) pair the
// worker popped, which worker it died on and why. Quarantined tasks are
// counted as completed for the termination protocol (so the run still
// proves quiescence) and are never silently re-inserted; callers decide
// whether a failure is retryable at their own layer.
type Failure struct {
	// Worker is the index of the worker that popped the task.
	Worker int
	// Value and Priority identify the quarantined pair.
	Value, Priority int64
	// Kind classifies the failure.
	Kind FailureKind
	// Err is the recovered panic (wrapped, with the pair identity) for
	// Panicked, or ErrRetriesExhausted for RetriesExhausted.
	Err error
}

// Result is the full outcome of an execution: the work accounting plus the
// failure story — whether the run was interrupted before quiescence, which
// tasks were quarantined, and the stall report if the watchdog tripped.
type Result struct {
	Stats
	// Interrupted reports that Stop (or the Deadline, or a watchdog abort)
	// ended the run before quiescence: the Stats are a valid partial
	// account of everything executed so far, but tasks may remain
	// unexecuted in the queue.
	Interrupted bool
	// Failures lists every quarantined task, in no particular order.
	// len(Failures) == Stats.Failed.
	Failures []Failure
	// Stall is the diagnostic snapshot captured by the stall watchdog, or
	// nil if it never fired. With Options.OnStall unset a non-nil Stall
	// means the watchdog aborted the run (Interrupted is also true).
	Stall *StallReport
}

// Injection is one fault-injection directive, returned by an Injector for a
// popped task just before it would execute. The zero value injects nothing.
type Injection struct {
	// Stall delays the worker by this much before anything else — the
	// practically-wait-free adversary's stalled-thread schedule.
	Stall time.Duration
	// Panic makes the attempt panic instead of executing, exercising the
	// containment path: the task must end up quarantined, never lost.
	Panic bool
	// ForceBlocked makes the attempt report Blocked without calling the
	// workload, exercising re-insertion and the retry cap.
	ForceBlocked bool
}

// Injector is the engine's fault-injection seam. When Options.Injector is
// non-nil, every popped task is shown to the injector before execution and
// the returned directives are applied (stall, then panic, then forced
// block). Inspect must be safe for concurrent calls; calls for one worker
// index are always from that worker's goroutine. Production runs leave the
// seam nil and pay only a per-pop nil check; internal/fault provides the
// deterministic seeded implementation the chaos suites use.
type Injector interface {
	Inspect(worker int, value, priority int64) Injection
}

// Stop requests a graceful drain: workers stop popping, flush their
// buffers and exit; producers' late pushes are absorbed instead of
// panicking; Wait then returns a partial Result marked Interrupted with
// everything executed so far. Stop is safe to call from any goroutine,
// idempotent, and a no-op after the run has already terminated (the Result
// is then not marked Interrupted). The drain is bounded: each worker
// finishes at most its already-popped batch before exiting. Parked workers
// are woken so the drain never waits on a sleeping worker: the broadcast
// follows the stopped store, so a woken (or about-to-park) worker is
// guaranteed to observe the flag and exit through stopDrain.
func (e *Execution) Stop() {
	e.stopped.Store(true)
	e.lot.WakeAll()
}

// Stopped reports whether Stop (or the deadline, or a watchdog abort) has
// been requested.
func (e *Execution) Stopped() bool { return e.stopped.Load() }

// quarantine records one failed task. Failures are rare (panics and
// exhausted retries), so a plain mutex-guarded slice is fine.
func (e *Execution) quarantine(f Failure) {
	e.failMu.Lock()
	e.failures = append(e.failures, f)
	e.failMu.Unlock()
}

// pairKey identifies a (value, priority) pair in the retry tracker.
type pairKey struct{ value, priority int64 }

// retryTracker counts how many times each live pair has been re-inserted
// as Blocked. It is only touched on the Blocked path (and, when enabled,
// once per completed task to forget the pair), so a single mutex-guarded
// map is off the hot path by construction. Two concurrently live pairs
// with identical (value, priority) share a budget — acceptable for a
// livelock bound, which only needs "more than N" to be meaningful.
type retryTracker struct {
	mu     sync.Mutex
	counts map[pairKey]int
}

// bump increments and returns the pair's blocked-re-insert count.
func (rt *retryTracker) bump(value, priority int64) int {
	k := pairKey{value, priority}
	rt.mu.Lock()
	if rt.counts == nil {
		rt.counts = make(map[pairKey]int)
	}
	rt.counts[k]++
	n := rt.counts[k]
	rt.mu.Unlock()
	return n
}

// forget clears the pair's count once a copy of it completed, so a later
// same-keyed task starts from a fresh budget.
func (rt *retryTracker) forget(value, priority int64) {
	rt.mu.Lock()
	delete(rt.counts, pairKey{value, priority})
	rt.mu.Unlock()
}

// protectedExecute runs one attempt with panic containment: the injector
// seam is consulted first (stall, injected panic, forced block), then the
// workload's TryExecute runs inside a recover scope. A panic — injected or
// real — comes back as a non-nil error instead of unwinding the worker, so
// one poison task can never kill the process or wedge the termination
// protocol. Tasks the attempt had already spawned before panicking are
// recorded and live on; only the failing task itself is quarantined.
func (e *Execution) protectedExecute(wl Workload, ctx *Ctx, value, priority int64) (st Status, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("engine: TryExecute(value=%d, priority=%d) panicked: %v", value, priority, r)
		}
	}()
	if e.injector != nil {
		inj := e.injector.Inspect(ctx.Worker, value, priority)
		if inj.Stall > 0 {
			time.Sleep(inj.Stall)
		}
		if inj.Panic {
			panic("fault injected")
		}
		if inj.ForceBlocked {
			return Blocked, nil
		}
	}
	return wl.TryExecute(ctx, value, priority), nil
}

// attempt pops one pair through the protected path and settles its
// accounting: Executed/Discarded complete the task, a panic or exhausted
// retry budget quarantines it (also completing it, so quiescence still
// holds), and only a within-budget Blocked returns true for the caller to
// re-insert. Every outcome increments exactly one of the worker's stat
// counters, preserving the Popped = Executed + Discarded + Reinserted +
// Failed identity.
func (e *Execution) attempt(wl Workload, ctx *Ctx, ws *workerState, value, priority int64) (blocked bool) {
	st, err := e.protectedExecute(wl, ctx, value, priority)
	if err != nil {
		ws.failed.Add(1)
		e.quarantine(Failure{Worker: ctx.Worker, Value: value, Priority: priority, Kind: Panicked, Err: err})
		ctx.counters.Complete(ctx.Worker)
		return false
	}
	switch st {
	case Executed:
		ws.executed.Add(1)
	case Discarded:
		ws.discarded.Add(1)
	default: // Blocked
		if e.maxRetries > 0 {
			if n := e.retries.bump(value, priority); n > e.maxRetries {
				ws.failed.Add(1)
				e.quarantine(Failure{Worker: ctx.Worker, Value: value, Priority: priority, Kind: RetriesExhausted, Err: ErrRetriesExhausted})
				ctx.counters.Complete(ctx.Worker)
				return false
			}
		}
		ws.reinserted.Add(1)
		return true
	}
	if e.maxRetries > 0 {
		e.retries.forget(value, priority)
	}
	ctx.counters.Complete(ctx.Worker)
	return false
}
