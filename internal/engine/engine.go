// Package engine is the generic parallel relaxed-execution engine behind
// every concurrent path in this repository. It owns the worker loop that
// core.ParallelRun, sssp.ParallelWith, bnb.ParallelRun and mis.ParallelGreedyMIS
// all used to hand-roll: pop a (value, priority) pair from a concurrent
// relaxed queue (any cq backend), hand it to the workload, and either
// complete it, re-insert it (dependencies unmet), or push the tasks it
// spawned — with batch-amortized queue traffic and contention-free
// termination detection shared by every workload.
//
// An algorithm plugs in by implementing Workload: Frontier emits the
// initial task pairs, and TryExecute attempts one popped task, spawning
// follow-up tasks through Ctx.Spawn. Static-DAG execution (a blocked task
// reports Blocked and is re-inserted), relaxation-spawning searches like
// SSSP (stale pops report Discarded, improvements spawn fresh pairs), and
// dynamic branch-and-bound (children spawned under an incumbent bound) are
// all ~100-line workloads over the same loop, so backend and batching
// comparisons measure the data structure, never the calling convention.
//
// Termination uses cache-padded per-worker in-flight counters (see
// internal/inflight): a worker exits only when the queue looks empty, its
// own buffers are flushed, and the cross-worker double scan proves no task
// is pending anywhere. The counter sum-scan runs only on apparent-empty,
// keeping the hot path free of shared-counter traffic.
//
// Closed-world runs (Run) are the default: every task is born from the
// frontier or from Ctx.Spawn inside a worker. Start opens the system to
// external producers — Producer handles created with Execution.NewProducer
// stream prioritized tasks into the queue while workers drain — and
// termination is then redefined as "all declared producers closed AND
// in-flight quiescent" (the producer tallies and an open-producer count
// join the same double scan; see internal/inflight's package comment for
// why the extension stays provably safe).
//
// Engine-wide caveat: no well-defined global processing order exists across
// racing workers, so order-sensitive metrics of the sequential model —
// core.Result.AdjacentInversions in particular — are undefined in parallel
// runs and reported as zero by every adapter.
package engine

import (
	"fmt"
	"runtime"
	"time"

	"relaxsched/internal/cq"
	"relaxsched/internal/inflight"
	"relaxsched/internal/rng"
)

// Idle backoff for workers that keep finding the queue empty: a few
// Gosched yields first (another worker's push is usually in flight), then
// short sleeps. The sleep matters under oversubscription — spinning idle
// workers otherwise steal scheduler timeslices from the workers actually
// producing tasks during frontier ramp-up and drain, which shows up
// directly as wall time when threads exceed cores.
const (
	idleYields = 4
	idleSleep  = 20 * time.Microsecond
)

// idleWait is the shared empty-queue backoff: yield for the first
// idleYields consecutive empties, sleep after that.
func idleWait(idle int) {
	if idle < idleYields {
		runtime.Gosched()
	} else {
		time.Sleep(idleSleep)
	}
}

// Status is the outcome of one TryExecute attempt.
type Status int8

const (
	// Executed: the task ran and is complete; anything it spawned through
	// Ctx.Spawn enters the queue.
	Executed Status = iota
	// Discarded: the task is complete but did no work (e.g. a stale SSSP
	// duplicate, a pruned branch-and-bound node). Distinguished from
	// Executed only for accounting.
	Discarded
	// Blocked: the task cannot run yet (an unprocessed dependency); the
	// engine re-inserts the same (value, priority) pair and counts the pop
	// as wasted work. A Blocked task must not spawn.
	Blocked
)

// Workload is the algorithm-side contract of the engine. Implementations
// must be safe for concurrent TryExecute calls from opts.Threads workers;
// the engine provides no serialization beyond the queue itself (workloads
// needing ordered side effects layer their own, as core's OnProcess does).
type Workload interface {
	// Frontier emits the initial (value, priority) pairs. It runs once,
	// before any worker starts, on the engine's goroutine.
	Frontier(emit func(value, priority int64))
	// TryExecute attempts the popped task. New tasks are spawned through
	// ctx.Spawn (never from a Blocked attempt); ctx is worker-local and
	// must not escape the call.
	TryExecute(ctx *Ctx, value, priority int64) Status
}

// Options configure a Run. They are the common knobs the former per-package
// runtimes each re-declared.
type Options struct {
	// Threads is the number of worker goroutines (>= 1).
	Threads int
	// QueueMultiplier is the relaxation multiplier of the concurrent queue
	// (>= 1; the classic MultiQueue configuration is 2, giving
	// Threads * QueueMultiplier internal queues).
	QueueMultiplier int
	// Backend selects the concurrent queue implementation; the zero value
	// is cq.DefaultBackend (the MultiQueue with 2-choice pops).
	Backend cq.Backend
	// BatchSize is the number of pairs a worker moves per queue operation:
	// pops arrive in batches, and spawned or re-inserted pairs accumulate
	// in a per-worker buffer flushed through PushBatch. Values <= 1
	// disable batching (one queue operation per pair). Producers batch the
	// same way: their pushes buffer until BatchSize pairs accumulate.
	BatchSize int
	// Seed drives the queue randomness (one split-off stream per worker and
	// per producer).
	Seed uint64
	// Producers declares how many external producer handles will be created
	// with Execution.NewProducer (>= 0). With a non-zero count the execution
	// is an open system: termination additionally waits for every declared
	// producer to be created and closed. Run requires 0 (closed world); use
	// Start for streaming executions.
	Producers int
}

// Stats is the engine's execution accounting, summed over all workers.
// Every pop is counted exactly once as Executed, Discarded or Reinserted.
type Stats struct {
	// Popped is the total number of pairs popped.
	Popped int64
	// Executed counts pops whose TryExecute returned Executed.
	Executed int64
	// Discarded counts pops consumed without work (stale or pruned).
	Discarded int64
	// Reinserted counts Blocked pops put back into the queue — the
	// engine-level analogue of the paper's extra steps.
	Reinserted int64
}

// pushBuf is the batch-amortized push path shared by worker Ctxs and
// external Producers: with batch > 1, pairs accumulate in the out-buffer
// and flush through one PushBatch when it fills (so the buffer never grows
// beyond one batch); otherwise every push is a direct queue operation. All
// queue traffic flows through a per-worker cq.Handle, so backends with
// worker identity (epoch-reclamation slots, shard-affine placement — the
// lock-free MultiQueue) get a pinned session per worker and per producer;
// handle-less backends see a zero-cost pass-through. It is
// single-goroutine, like the rng stream and handle it carries.
type pushBuf struct {
	r     *rng.Xoshiro
	mq    cq.Handle
	out   []cq.Pair // deferred pushes (batched mode only)
	batch int
}

// push inserts one pair, buffered or direct per the batch mode.
func (b *pushBuf) push(value, priority int64) {
	if b.batch > 1 {
		b.buffer(cq.Pair{Value: value, Priority: priority})
	} else {
		b.mq.Push(b.r, value, priority)
	}
}

// buffer appends a pair to the out-buffer, flushing when it reaches the
// batch size.
func (b *pushBuf) buffer(p cq.Pair) {
	b.out = append(b.out, p)
	if len(b.out) >= b.batch {
		b.flush()
	}
}

// flush pushes the out-buffer as one batch.
func (b *pushBuf) flush() {
	if len(b.out) > 0 {
		b.mq.PushBatch(b.r, b.out)
		b.out = b.out[:0]
	}
}

// Ctx is the worker-local spawn context handed to TryExecute. Spawned pairs
// are recorded in the termination counter before they become visible to
// other workers, so the workload never touches the counter protocol.
type Ctx struct {
	// Worker is this worker's index in [0, Threads); workloads may use it
	// to shard their own per-worker state.
	Worker int

	counters *inflight.Counter
	pushBuf
}

// Spawn enqueues a new task. In batched mode the pair lands in the worker's
// out-buffer, flushed through PushBatch when full (and always before a
// termination check); unbatched it is pushed immediately.
func (c *Ctx) Spawn(value, priority int64) {
	c.counters.Produce(c.Worker)
	c.push(value, priority)
}

// Run executes the workload to quiescence: workers pop from the selected
// concurrent relaxed queue and call TryExecute until every produced task —
// seed frontier, spawns and re-insertions alike — has been completed. It is
// the closed-world entry point (all tasks are born from the frontier or
// Ctx.Spawn); opts.Producers must be 0. For open-system executions fed by
// external producers, use Start.
//
// Every pop counts into Stats exactly once, so adapters can derive their
// historical metrics (core's Steps, sssp's Popped/Processed) without
// touching the loop.
func Run(wl Workload, opts Options) (Stats, error) {
	if opts.Producers != 0 {
		return Stats{}, fmt.Errorf("engine: Run is closed-world (Producers = %d); use Start", opts.Producers)
	}
	e, err := Start(wl, opts)
	if err != nil {
		return Stats{}, err
	}
	return e.Wait(), nil
}

// Start validates the options, seeds the frontier and launches the worker
// pool, returning an Execution handle. With opts.Producers > 0 the run is
// an open system: the caller creates exactly that many Producer handles
// with NewProducer, feeds the frontier through them, closes each, and then
// Wait returns once every task — seeded, spawned and streamed alike — has
// been completed. Workers never park: an idle worker backs off (bounded
// yields and sleeps, see idleWait) but keeps re-polling the queue, so a
// late-arriving push is picked up within one backoff period and a producer
// closing while every worker is asleep still terminates promptly.
func Start(wl Workload, opts Options) (*Execution, error) {
	if opts.Threads < 1 {
		return nil, fmt.Errorf("engine: need Threads >= 1, got %d", opts.Threads)
	}
	if opts.QueueMultiplier < 1 {
		return nil, fmt.Errorf("engine: need QueueMultiplier >= 1, got %d", opts.QueueMultiplier)
	}
	if opts.Producers < 0 {
		return nil, fmt.Errorf("engine: need Producers >= 0, got %d", opts.Producers)
	}
	mq, err := cq.New(opts.Backend, opts.Threads, opts.QueueMultiplier)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}

	seedRng := rng.New(opts.Seed)
	counters := inflight.NewOpen(opts.Threads, opts.Producers)
	seedHandle := cq.HandleFor(mq)
	wl.Frontier(func(value, priority int64) {
		// Produce before the push makes the pair visible, exactly as
		// Ctx.Spawn does on the hot path.
		counters.Produce(0)
		seedHandle.Push(seedRng, value, priority)
	})
	seedHandle.Close()

	e := &Execution{
		mq:       mq,
		counters: counters,
		seedRng:  seedRng,
		threads:  opts.Threads,
		batch:    opts.BatchSize,
		declared: opts.Producers,
	}
	for t := 0; t < opts.Threads; t++ {
		e.wg.Add(1)
		go func(w int, r *rng.Xoshiro) {
			defer e.wg.Done()
			h := cq.HandleFor(mq)
			defer h.Close()
			ctx := &Ctx{Worker: w, counters: counters,
				pushBuf: pushBuf{r: r, mq: h, batch: opts.BatchSize}}
			var local Stats
			if opts.BatchSize > 1 {
				ctx.out = make([]cq.Pair, 0, opts.BatchSize)
				workerBatched(wl, ctx, &local)
			} else {
				worker(wl, ctx, &local)
			}
			e.mu.Lock()
			e.total.Popped += local.Popped
			e.total.Executed += local.Executed
			e.total.Discarded += local.Discarded
			e.total.Reinserted += local.Reinserted
			e.mu.Unlock()
		}(t, seedRng.Split())
	}
	return e, nil
}

// worker is the per-pair (unbatched) loop: one queue operation per pair.
// This is the concurrent analogue of the paper's Algorithm 2 — the regime
// its Section 4 transactional model abstracts — with re-insertion playing
// the role of the sequential model's "task stays in the scheduler".
func worker(wl Workload, ctx *Ctx, local *Stats) {
	mq, r, counters, w := ctx.mq, ctx.r, ctx.counters, ctx.Worker
	idle := 0
	for {
		value, priority, ok := mq.Pop(r)
		if !ok {
			if counters.Quiescent() {
				break
			}
			idleWait(idle)
			idle++
			continue
		}
		idle = 0
		local.Popped++
		switch wl.TryExecute(ctx, value, priority) {
		case Executed:
			local.Executed++
			counters.Complete(w)
		case Discarded:
			local.Discarded++
			counters.Complete(w)
		default: // Blocked
			// Re-insert and count the wasted pop. Each pair has exactly one
			// live copy, carried by this worker between the pop and the
			// re-push, then yield so this worker does not hot-spin
			// re-popping the same blocked task while its dependencies are
			// mid-flight.
			local.Reinserted++
			mq.Push(r, value, priority)
			runtime.Gosched()
		}
	}
}

// workerBatched is the batch-amortized loop: pairs arrive up to BatchSize
// at a time, and spawned or blocked pairs accumulate in the worker's
// out-buffer, flushed through PushBatch when full — so the queue's
// coordination cost (lock round-trip or CAS) is paid once per batch. The
// buffer is always flushed before a termination check, so a parked pair —
// recorded as produced, never completed — can never deadlock the counter
// protocol: Quiescent stays false until its worker flushes and the pair is
// eventually processed.
func workerBatched(wl Workload, ctx *Ctx, local *Stats) {
	mq, r, counters, w := ctx.mq, ctx.r, ctx.counters, ctx.Worker
	in := make([]cq.Pair, ctx.batch)
	idle := 0
	for {
		k := mq.PopBatch(r, in)
		if k == 0 {
			if len(ctx.out) > 0 {
				ctx.flush()
				continue
			}
			if counters.Quiescent() {
				break
			}
			idleWait(idle)
			idle++
			continue
		}
		idle = 0
		blocked := 0
		for _, p := range in[:k] {
			local.Popped++
			switch wl.TryExecute(ctx, p.Value, p.Priority) {
			case Executed:
				local.Executed++
				counters.Complete(w)
			case Discarded:
				local.Discarded++
				counters.Complete(w)
			default: // Blocked
				local.Reinserted++
				blocked++
				ctx.buffer(p)
			}
		}
		if blocked == k {
			// The whole batch was blocked: flush the re-insertions now and
			// yield, so this worker neither parks the frontier's only live
			// copies while idle nor hot-spins re-popping them while their
			// dependencies are mid-flight on other workers.
			ctx.flush()
			runtime.Gosched()
		}
	}
}
