// Package engine is the generic parallel relaxed-execution engine behind
// every concurrent path in this repository. It owns the worker loop that
// core.ParallelRun, sssp.ParallelWith, bnb.ParallelRun and mis.ParallelGreedyMIS
// all used to hand-roll: pop a (value, priority) pair from a concurrent
// relaxed queue (any cq backend), hand it to the workload, and either
// complete it, re-insert it (dependencies unmet), or push the tasks it
// spawned — with batch-amortized queue traffic and contention-free
// termination detection shared by every workload.
//
// An algorithm plugs in by implementing Workload: Frontier emits the
// initial task pairs, and TryExecute attempts one popped task, spawning
// follow-up tasks through Ctx.Spawn. Static-DAG execution (a blocked task
// reports Blocked and is re-inserted), relaxation-spawning searches like
// SSSP (stale pops report Discarded, improvements spawn fresh pairs), and
// dynamic branch-and-bound (children spawned under an incumbent bound) are
// all ~100-line workloads over the same loop, so backend and batching
// comparisons measure the data structure, never the calling convention.
//
// Termination uses cache-padded per-worker in-flight counters (see
// internal/inflight): a worker exits only when the queue looks empty, its
// own buffers are flushed, and the cross-worker double scan proves no task
// is pending anywhere. The counter sum-scan runs only on apparent-empty,
// keeping the hot path free of shared-counter traffic.
//
// Closed-world runs (Run) are the default: every task is born from the
// frontier or from Ctx.Spawn inside a worker. Start opens the system to
// external producers — Producer handles created with Execution.NewProducer
// stream prioritized tasks into the queue while workers drain — and
// termination is then redefined as "all registered producers closed AND
// in-flight quiescent" (the producer tallies and an open-producer count
// join the same double scan; see internal/inflight's package comment for
// why the extension stays provably safe). Producers may be declared up
// front (Options.Producers) or registered dynamically after Start with
// NewProducer/TryNewProducer; the first observed quiescence seals the
// execution, so a late registration fails cleanly instead of streaming
// into a terminated pool.
//
// # Idle path: parking, not polling
//
// An idle worker does not poll. After a short backoff prefix (a few
// yields, then a few escalating sleeps — the fast path for sub-millisecond
// gaps), it parks on a per-worker slot in an internal/park lot and
// consumes no CPU until an event wakes it. Options.IdleStrategy selects
// the legacy bounded-sleep polling loop instead (IdleSpin), for
// benchmarking the difference.
//
// Parking is only sound if no worker can sleep while work it should serve
// is, or becomes, visible. The invariant maintained here is: every action
// that makes tasks queue-visible to an idle worker is followed by a wake —
// Ctx.Spawn pushes and out-buffer flushes wake one worker per pair,
// Producer.Push/PushBatch/Flush wake after their pushes, Producer.Close
// and Stop broadcast (WakeAll), and a worker that observes quiescence
// broadcasts before exiting so its parked peers re-check and exit too. The
// one deliberate exception is a worker re-inserting its own Blocked pair:
// it keeps responsibility for that pair itself — it continues looping, and
// its own park path rechecks the queue before sleeping — so no wake is
// needed. On the parking side, a worker about to park samples its wakeup
// token, and after announcing itself parked re-checks (park.Lot's cancel
// callback) the stop flag, the termination scan and the queue's
// authoritative Len — so a push that raced ahead of the announce is always
// seen, and a wake that raced behind it always lands (the token/sema
// protocol; internal/park's package comment carries the lost-wakeup
// proof). Termination remains exact: parked workers hold no tasks and no
// buffered pairs (buffers are flushed before the first idle pop), so the
// inflight double scan's truth is unaffected by who is asleep.
//
// # Failure semantics
//
// The engine is fault-tolerant by contract, not by luck. Execution.Stop
// (or Options.Deadline) requests a graceful drain: workers stop popping,
// flush their buffers and exit, late Producer pushes are absorbed, and
// Wait returns a partial Result marked Interrupted — every workload is
// thereby anytime. A TryExecute panic is recovered and the task
// quarantined into Result.Failures (never re-inserted, never lost from
// the books); Options.MaxBlockedRetries quarantines tasks that re-insert
// forever. Options.StallTimeout arms a watchdog that detects global
// no-progress — including blocked-livelock, where re-insertion churn
// keeps the queue busy without completing anything — and either aborts
// the run with a diagnostic StallReport or hands the report to
// Options.OnStall. Options.Injector is the fault-injection seam
// (internal/fault) the chaos suite drives all of this through; see
// enginetest.ChaosConformance for the invariants.
//
// Engine-wide caveat: no well-defined global processing order exists across
// racing workers, so order-sensitive metrics of the sequential model —
// core.Result.AdjacentInversions in particular — are undefined in parallel
// runs and reported as zero by every adapter.
package engine

import (
	"fmt"
	"runtime"
	"time"

	"relaxsched/internal/cq"
	"relaxsched/internal/inflight"
	"relaxsched/internal/park"
	"relaxsched/internal/rng"
)

// Idle backoff for workers that keep finding the queue empty: a few
// Gosched yields first (another worker's push is usually in flight), then
// sleeps that escalate exponentially from idleSleepBase up to idleSleepCap.
// The sleep matters under oversubscription — spinning idle workers
// otherwise steal scheduler timeslices from the workers actually producing
// tasks during frontier ramp-up and drain, which shows up directly as wall
// time when threads exceed cores. Under the default IdlePark strategy the
// escalation is cut short: after parkAfterSleeps sleeps the worker parks
// and costs nothing until a wake. Under IdleSpin the escalation runs to
// idleSleepCap and stays there — the cap bounds both the polling rate
// (1 kHz per idle worker) and the worst-case wakeup latency for a late
// burst at ~1ms.
const (
	idleYields    = 4
	idleSleepBase = 20 * time.Microsecond
	idleSleepCap  = time.Millisecond
	// idleShiftCap clamps the escalation exponent: idleSleepBase << 6 is
	// the first value past idleSleepCap, so larger idle counts add nothing
	// (and must not feed an unbounded shift).
	idleShiftCap = 6
	// parkAfterSleeps is the backoff prefix under IdlePark: after this many
	// escalating sleeps (20/40/80µs) the worker parks. Long enough that
	// sub-millisecond gaps in a busy stream never pay a park/unpark round
	// trip, short enough that a genuinely idle worker reaches zero CPU in
	// well under a millisecond.
	parkAfterSleeps = 3
)

// idleWait is the shared empty-queue backoff: yield for the first
// idleYields consecutive empties, then sleep with exponential escalation.
// Callers reset their idle count to 0 on any successful pop, so a burst
// after a long quiet stretch restores the fast path immediately.
func idleWait(idle int) {
	if idle < idleYields {
		runtime.Gosched()
		return
	}
	exp := idle - idleYields
	if exp > idleShiftCap {
		exp = idleShiftCap
	}
	d := idleSleepBase << uint(exp)
	if d > idleSleepCap {
		d = idleSleepCap
	}
	time.Sleep(d)
}

// IdleStrategy selects what a worker does when the queue stays empty.
type IdleStrategy int8

const (
	// IdlePark (the default): back off briefly, then park on the engine's
	// wakeup lot. An idle execution consumes no CPU; pushes wake parked
	// workers directly.
	IdlePark IdleStrategy = iota
	// IdleSpin: the legacy polling loop — exponential sleeps capped at
	// idleSleepCap, re-polling forever. Kept as a benchmark baseline (the
	// idlecost experiment measures it against IdlePark) and an escape
	// hatch.
	IdleSpin
)

// Status is the outcome of one TryExecute attempt.
type Status int8

const (
	// Executed: the task ran and is complete; anything it spawned through
	// Ctx.Spawn enters the queue.
	Executed Status = iota
	// Discarded: the task is complete but did no work (e.g. a stale SSSP
	// duplicate, a pruned branch-and-bound node). Distinguished from
	// Executed only for accounting.
	Discarded
	// Blocked: the task cannot run yet (an unprocessed dependency); the
	// engine re-inserts the same (value, priority) pair and counts the pop
	// as wasted work. A Blocked task must not spawn.
	Blocked
)

// Workload is the algorithm-side contract of the engine. Implementations
// must be safe for concurrent TryExecute calls from opts.Threads workers;
// the engine provides no serialization beyond the queue itself (workloads
// needing ordered side effects layer their own, as core's OnProcess does).
type Workload interface {
	// Frontier emits the initial (value, priority) pairs. It runs once,
	// before any worker starts, on the engine's goroutine.
	Frontier(emit func(value, priority int64))
	// TryExecute attempts the popped task. New tasks are spawned through
	// ctx.Spawn (never from a Blocked attempt); ctx is worker-local and
	// must not escape the call.
	TryExecute(ctx *Ctx, value, priority int64) Status
}

// ExecOptions are the engine knobs every parallel workload shares: queue
// selection and relaxation, worker count, batching, seeding, the idle path
// and the fault-tolerance machinery. Workload-facing options structs
// (sssp.ParallelOptions, sched.StreamOptions, txn.ParallelOptions, ...)
// embed ExecOptions instead of re-declaring these fields, so a caller
// configures every workload the same way and new engine knobs reach every
// workload without touching its options struct.
type ExecOptions struct {
	// Threads is the number of worker goroutines (>= 1).
	Threads int
	// QueueMultiplier is the relaxation multiplier of the concurrent queue
	// (>= 1; the classic MultiQueue configuration is 2, giving
	// Threads * QueueMultiplier internal queues).
	QueueMultiplier int
	// Backend selects the concurrent queue implementation; the zero value
	// is cq.DefaultBackend (the MultiQueue with 2-choice pops).
	Backend cq.Backend
	// BatchSize is the number of pairs a worker moves per queue operation:
	// pops arrive in batches, and spawned or re-inserted pairs accumulate
	// in a per-worker buffer flushed through PushBatch. Values <= 1
	// disable batching (one queue operation per pair). Producers batch the
	// same way: their pushes buffer until BatchSize pairs accumulate.
	BatchSize int
	// Seed drives the queue randomness (one split-off stream per worker and
	// per producer).
	Seed uint64
	// IdleStrategy selects the workers' empty-queue behavior: IdlePark
	// (zero value, the default) parks idle workers on an event-driven
	// wakeup lot; IdleSpin keeps the legacy bounded-sleep polling loop.
	IdleStrategy IdleStrategy
	// Deadline, when positive, bounds the run's wall time: Deadline after
	// Start the execution stops itself exactly as if Stop had been called,
	// and Run/Wait return a partial Result marked Interrupted with
	// best-so-far stats. Zero means no deadline.
	Deadline time.Duration
	// MaxBlockedRetries, when positive, caps how many times one (value,
	// priority) pair may be re-inserted as Blocked: the attempt after the
	// cap quarantines the pair (FailureKind RetriesExhausted) instead of
	// re-inserting it, so a task whose dependency can never be satisfied
	// bounds the run instead of livelocking it. Zero disables the cap.
	MaxBlockedRetries int
	// StallTimeout, when positive, arms the stall watchdog: if the global
	// progress tally (tasks produced + completed — re-insertion churn does
	// not count) stays flat for this long, the watchdog captures a
	// StallReport and either delivers it to OnStall or, with OnStall nil,
	// aborts the run (Stop, with the report on the Result). Zero disables
	// the watchdog.
	StallTimeout time.Duration
	// OnStall, when non-nil, receives each stall report instead of the
	// watchdog aborting; it runs on the watchdog goroutine and owns the
	// policy (log and wait, or call Execution.Stop). Ignored when
	// StallTimeout is zero.
	OnStall func(*StallReport)
	// Injector is the fault-injection seam (nil in production): every
	// popped task is shown to it before execution. See Injector and
	// internal/fault.
	Injector Injector
}

// Options configure a Run or Start: the shared ExecOptions plus the
// pool-shape knobs only the engine itself interprets (external producer
// declarations and the elastic worker range).
type Options struct {
	ExecOptions
	// Producers declares how many external producer handles will be created
	// with Execution.NewProducer (>= 0). With a non-zero count the execution
	// is an open system: termination additionally waits for every declared
	// producer to be created and closed. Run requires 0 (closed world); use
	// Start for streaming executions. Additional producers beyond the
	// declared count may be registered dynamically after Start — but an
	// execution with zero declared producers and an empty frontier
	// terminates immediately, so a service that starts idle must declare at
	// least one producer to hold the pool open.
	Producers int
	// MinWorkers and MaxWorkers, when MaxWorkers > 0, make the worker pool
	// elastic: MaxWorkers goroutines are created, Threads of them start
	// active, and a controller grows the active set toward MaxWorkers under
	// sustained queue depth and shrinks it toward max(MinWorkers, 1) when
	// the queue stays empty. Deactivated workers retire to parked reserve
	// (they still finish any task they pop, so correctness never depends on
	// the controller) and rejoin within one wake. Requires MinWorkers <=
	// Threads <= MaxWorkers and IdleStrategy == IdlePark. MaxWorkers == 0
	// (the default) keeps the fixed pool of exactly Threads workers.
	MinWorkers int
	MaxWorkers int
}

// Stats is the engine's execution accounting, summed over all workers.
// Every pop is counted exactly once as Executed, Discarded, Reinserted or
// Failed.
type Stats struct {
	// Popped is the total number of pairs popped.
	Popped int64
	// Executed counts pops whose TryExecute returned Executed.
	Executed int64
	// Discarded counts pops consumed without work (stale or pruned).
	Discarded int64
	// Reinserted counts Blocked pops put back into the queue — the
	// engine-level analogue of the paper's extra steps.
	Reinserted int64
	// Failed counts quarantined pops: TryExecute panics and exhausted
	// blocked-retry budgets. The pairs themselves are in Result.Failures.
	Failed int64
}

// pushBuf is the batch-amortized push path shared by worker Ctxs and
// external Producers: with batch > 1, pairs accumulate in the out-buffer
// and flush through one PushBatch when it fills (so the buffer never grows
// beyond one batch); otherwise every push is a direct queue operation. All
// queue traffic flows through a per-worker cq.Handle, so backends with
// worker identity (epoch-reclamation slots, shard-affine placement — the
// lock-free MultiQueue) get a pinned session per worker and per producer;
// handle-less backends see a zero-cost pass-through. It is
// single-goroutine, like the rng stream and handle it carries.
//
// Every path that makes pairs queue-visible wakes parked workers right
// after (the engine's no-stranded-worker invariant); with nobody parked a
// wake is a single atomic load.
type pushBuf struct {
	r     *rng.Xoshiro
	mq    cq.Handle
	lot   *park.Lot
	out   []cq.Pair // deferred pushes (batched mode only)
	batch int
}

// push inserts one pair, buffered or direct per the batch mode.
func (b *pushBuf) push(value, priority int64) {
	if b.batch > 1 {
		b.buffer(cq.Pair{Value: value, Priority: priority})
	} else {
		b.mq.Push(b.r, value, priority)
		b.lot.Wake(1)
	}
}

// buffer appends a pair to the out-buffer, flushing when it reaches the
// batch size.
func (b *pushBuf) buffer(p cq.Pair) {
	b.out = append(b.out, p)
	if len(b.out) >= b.batch {
		b.flush()
	}
}

// flush pushes the out-buffer as one batch and wakes one parked worker per
// flushed pair (capped at the parked population by Wake itself).
func (b *pushBuf) flush() {
	if len(b.out) > 0 {
		n := len(b.out)
		b.mq.PushBatch(b.r, b.out)
		b.out = b.out[:0]
		b.lot.Wake(n)
	}
}

// Ctx is the worker-local spawn context handed to TryExecute. Spawned pairs
// are recorded in the termination counter before they become visible to
// other workers, so the workload never touches the counter protocol.
type Ctx struct {
	// Worker is this worker's index in [0, Threads); workloads may use it
	// to shard their own per-worker state.
	Worker int

	counters *inflight.Counter
	pushBuf
}

// Spawn enqueues a new task. In batched mode the pair lands in the worker's
// out-buffer, flushed through PushBatch when full (and always before a
// termination check); unbatched it is pushed immediately.
func (c *Ctx) Spawn(value, priority int64) {
	c.counters.Produce(c.Worker)
	c.push(value, priority)
}

// Run executes the workload to quiescence: workers pop from the selected
// concurrent relaxed queue and call TryExecute until every produced task —
// seed frontier, spawns and re-insertions alike — has been completed, or
// until the run is cut short (Options.Deadline, a watchdog abort), in which
// case the Result is marked Interrupted. It is the closed-world entry point
// (all tasks are born from the frontier or Ctx.Spawn); opts.Producers must
// be 0. For open-system executions fed by external producers, use Start.
//
// Every pop counts into Stats exactly once, so adapters can derive their
// historical metrics (core's Steps, sssp's Popped/Processed) without
// touching the loop.
func Run(wl Workload, opts Options) (Result, error) {
	if opts.Producers != 0 {
		return Result{}, fmt.Errorf("engine: Run is closed-world (Producers = %d); use Start", opts.Producers)
	}
	e, err := Start(wl, opts)
	if err != nil {
		return Result{}, err
	}
	return e.Wait(), nil
}

// Start validates the options, seeds the frontier and launches the worker
// pool, returning an Execution handle. With opts.Producers > 0 the run is
// an open system: the caller creates that many Producer handles with
// NewProducer (plus any later dynamic ones), feeds the frontier through
// them, closes each, and then Wait returns once every task — seeded,
// spawned and streamed alike — has been completed. Under the default
// IdlePark strategy idle workers park and consume no CPU; every push wakes
// them, a producer closing while every worker is parked broadcasts, and
// the first worker to observe quiescence broadcasts before exiting, so
// termination stays prompt with nobody polling (see the package comment
// for the full argument).
func Start(wl Workload, opts Options) (*Execution, error) {
	if opts.Threads < 1 {
		return nil, fmt.Errorf("engine: need Threads >= 1, got %d", opts.Threads)
	}
	if opts.QueueMultiplier < 1 {
		return nil, fmt.Errorf("engine: need QueueMultiplier >= 1, got %d", opts.QueueMultiplier)
	}
	if opts.Producers < 0 {
		return nil, fmt.Errorf("engine: need Producers >= 0, got %d", opts.Producers)
	}
	if opts.MaxWorkers < 0 || opts.MinWorkers < 0 {
		return nil, fmt.Errorf("engine: need MinWorkers, MaxWorkers >= 0, got %d, %d", opts.MinWorkers, opts.MaxWorkers)
	}
	pool := opts.Threads
	if opts.MaxWorkers > 0 {
		if opts.MaxWorkers < opts.Threads || opts.MinWorkers > opts.Threads {
			return nil, fmt.Errorf("engine: elastic pool needs MinWorkers <= Threads <= MaxWorkers, got %d <= %d <= %d",
				opts.MinWorkers, opts.Threads, opts.MaxWorkers)
		}
		if opts.IdleStrategy != IdlePark {
			return nil, fmt.Errorf("engine: elastic workers require IdleStrategy == IdlePark (retired workers live in parked reserve)")
		}
		pool = opts.MaxWorkers
	}
	mq, err := cq.New(opts.Backend, pool, opts.QueueMultiplier)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}

	seedRng := rng.New(opts.Seed)
	counters := inflight.NewOpen(pool, opts.Producers)
	seedHandle := cq.HandleFor(mq)
	wl.Frontier(func(value, priority int64) {
		// Produce before the push makes the pair visible, exactly as
		// Ctx.Spawn does on the hot path. No wake needed: workers have not
		// launched yet, so nobody can be parked.
		counters.Produce(0)
		seedHandle.Push(seedRng, value, priority)
	})
	seedHandle.Close()

	e := &Execution{
		mq:         mq,
		counters:   counters,
		lot:        park.NewLot(pool),
		strategy:   opts.IdleStrategy,
		seedRng:    seedRng,
		threads:    opts.Threads,
		pool:       pool,
		minWorkers: max(opts.MinWorkers, 1),
		elastic:    opts.MaxWorkers > 0,
		batch:      opts.BatchSize,
		declared:   opts.Producers,
		workers:    make([]workerState, pool),
		maxRetries: opts.MaxBlockedRetries,
		injector:   opts.Injector,
		donec:      make(chan struct{}),
	}
	e.active.Store(int32(opts.Threads))
	for t := 0; t < pool; t++ {
		e.wg.Add(1)
		go func(w int, r *rng.Xoshiro) {
			defer e.wg.Done()
			h := cq.HandleFor(mq)
			defer h.Close()
			ctx := &Ctx{Worker: w, counters: counters,
				pushBuf: pushBuf{r: r, mq: h, lot: e.lot, batch: opts.BatchSize}}
			ws := &e.workers[w]
			if opts.BatchSize > 1 {
				ctx.out = make([]cq.Pair, 0, opts.BatchSize)
				e.workerBatched(wl, ctx, ws)
			} else {
				e.worker(wl, ctx, ws)
			}
			ws.phase.Store(int32(PhaseExited))
		}(t, seedRng.Split())
	}
	// The donec closer is the fan-in the watchdog, deadline timer and
	// elastic controller hang off; spawn it only when someone is listening.
	if opts.StallTimeout > 0 || opts.Deadline > 0 || e.elastic {
		go func() {
			e.wg.Wait()
			close(e.donec)
		}()
	}
	if opts.Deadline > 0 {
		e.deadline = time.AfterFunc(opts.Deadline, e.Stop)
	}
	if opts.StallTimeout > 0 {
		go e.watchdog(opts.StallTimeout, opts.OnStall)
	}
	if e.elastic {
		go e.controller()
	}
	return e, nil
}

// controller is the elastic-pool policy loop: it samples live (queued or
// executing) task counts and resizes the active worker set between
// minWorkers and the pool size. Growth is aggressive — a sustained backlog
// beyond ~2 tasks per active worker doubles the set and wakes the reserve,
// so a burst ramps to full width within a couple of ticks — while shrink
// is lazy (a steady empty queue retires one worker per quiet stretch),
// since an over-wide idle pool costs nothing once parked. Correctness
// never depends on this loop: retired workers park exactly like idle
// active ones, still finish any task they pop, and every worker re-checks
// the queue on wake regardless of its active status.
func (e *Execution) controller() {
	const (
		tick        = time.Millisecond
		shrinkAfter = 50 // quiet ticks (~50ms) per single-worker retire
	)
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	quiet := 0
	for {
		select {
		case <-e.donec:
			return
		case <-ticker.C:
		}
		live := e.counters.Live()
		act := int(e.active.Load())
		switch {
		case live > int64(2*act) && act < e.pool:
			grown := min(act*2, e.pool)
			e.active.Store(int32(grown))
			e.lot.Wake(grown - act)
			quiet = 0
		case live == 0 && act > e.minWorkers:
			if quiet++; quiet >= shrinkAfter {
				e.active.Store(int32(act - 1))
				quiet = 0
			}
		default:
			quiet = 0
		}
	}
}

// idle is the shared empty-queue path, called with the worker's out-buffer
// already flushed (the loops flush before any idle step, so a parked
// worker never holds invisible pairs) and the phase published as Idle. It
// returns the next idle count. Under IdleSpin it is the legacy bounded
// backoff. Under IdlePark the backoff prefix runs first — unless the
// worker has been retired by the elastic controller, which parks at once —
// and then the worker parks: sample the wakeup token, take the cheap outs
// (a stop or visible quiescence is about to end the loop anyway; a
// non-empty queue means a push already landed), announce, and let
// park.Lot's cancel callback re-check all three *after* the announce —
// the ordering the lost-wakeup proof in internal/park requires. On wake
// the idle count resets to 0: a woken worker always re-polls the queue at
// full speed at least once before it can park again, so a wake handed to
// it by a producer is never re-parked away without a pop attempt.
func (e *Execution) idle(ctx *Ctx, ws *workerState, idle int) int {
	retired := e.elastic && ctx.Worker >= int(e.active.Load())
	if e.strategy != IdlePark || (!retired && idle < idleYields+parkAfterSleeps) {
		idleWait(idle)
		return idle + 1
	}
	w := ctx.Worker
	tok := e.lot.Token(w)
	if e.stopped.Load() || e.counters.Quiescent() || e.mq.Len() != 0 {
		return idle + 1
	}
	ws.phase.Store(int32(PhaseParked))
	e.lot.Park(w, tok, func() bool {
		return e.stopped.Load() || e.mq.Len() != 0 || e.counters.Quiescent()
	})
	ws.phase.Store(int32(PhaseIdle))
	return 0
}

// stopDrain is the shared graceful-exit check at the top of both worker
// loops: once Stop (or the deadline, or a watchdog abort) has fired, the
// worker flushes its out-buffer — every spawned pair it carries becomes
// queue-visible, so the partial run's accounting stays consistent — and
// exits without popping again. The run is marked Interrupted unless the
// counters already prove quiescence (a Stop that landed after the work was
// done interrupts nothing).
func (e *Execution) stopDrain(ctx *Ctx) bool {
	if !e.stopped.Load() {
		return false
	}
	ctx.flush()
	if !e.counters.Quiescent() {
		e.interrupted.Store(true)
	}
	return true
}

// worker is the per-pair (unbatched) loop: one queue operation per pair.
// This is the concurrent analogue of the paper's Algorithm 2 — the regime
// its Section 4 transactional model abstracts — with re-insertion playing
// the role of the sequential model's "task stays in the scheduler".
func (e *Execution) worker(wl Workload, ctx *Ctx, ws *workerState) {
	mq, r, counters := ctx.mq, ctx.r, ctx.counters
	idle := 0
	for {
		if e.stopDrain(ctx) {
			break
		}
		value, priority, ok := mq.Pop(r)
		if !ok {
			ws.emptyPops.Add(1)
			if counters.Quiescent() {
				// Broadcast before exiting: parked peers re-run this same
				// check on wake, observe the sealed quiescence and exit too.
				e.lot.WakeAll()
				break
			}
			ws.phase.Store(int32(PhaseIdle))
			idle = e.idle(ctx, ws, idle)
			continue
		}
		if idle > 0 {
			ws.phase.Store(int32(PhaseRunning))
		}
		idle = 0
		ws.popped.Add(1)
		if e.attempt(wl, ctx, ws, value, priority) {
			// Re-insert the blocked pair and count the wasted pop. Each
			// pair has exactly one live copy, carried by this worker
			// between the pop and the re-push, then yield so this worker
			// does not hot-spin re-popping the same blocked task while its
			// dependencies are mid-flight.
			mq.Push(r, value, priority)
			runtime.Gosched()
		}
	}
}

// workerBatched is the batch-amortized loop: pairs arrive up to BatchSize
// at a time, and spawned or blocked pairs accumulate in the worker's
// out-buffer, flushed through PushBatch when full — so the queue's
// coordination cost (lock round-trip or CAS) is paid once per batch. The
// buffer is always flushed before a termination check, so a parked pair —
// recorded as produced, never completed — can never deadlock the counter
// protocol: Quiescent stays false until its worker flushes and the pair is
// eventually processed.
func (e *Execution) workerBatched(wl Workload, ctx *Ctx, ws *workerState) {
	mq, r, counters := ctx.mq, ctx.r, ctx.counters
	in := make([]cq.Pair, ctx.batch)
	idle := 0
	for {
		if e.stopDrain(ctx) {
			break
		}
		k := mq.PopBatch(r, in)
		if k == 0 {
			ws.emptyPops.Add(1)
			if len(ctx.out) > 0 {
				ctx.flush()
				continue
			}
			if counters.Quiescent() {
				// Broadcast before exiting: parked peers re-run this same
				// check on wake, observe the sealed quiescence and exit too.
				e.lot.WakeAll()
				break
			}
			ws.phase.Store(int32(PhaseIdle))
			idle = e.idle(ctx, ws, idle)
			continue
		}
		if idle > 0 {
			ws.phase.Store(int32(PhaseRunning))
		}
		idle = 0
		blocked := 0
		for _, p := range in[:k] {
			ws.popped.Add(1)
			if e.attempt(wl, ctx, ws, p.Value, p.Priority) {
				blocked++
				ctx.buffer(p)
			}
		}
		if blocked == k {
			// The whole batch was blocked: flush the re-insertions now and
			// yield, so this worker neither parks the frontier's only live
			// copies while idle nor hot-spins re-popping them while their
			// dependencies are mid-flight on other workers.
			ctx.flush()
			runtime.Gosched()
		}
	}
}
