package engine

import (
	"sync"

	"relaxsched/internal/cq"
	"relaxsched/internal/inflight"
	"relaxsched/internal/rng"
)

// Execution is a running engine instance as returned by Start: the worker
// pool is live, and the caller holds the handle to create producers and to
// wait for termination. The closed-world Run is Start followed by Wait with
// zero producers.
type Execution struct {
	mq       cq.BatchQueue
	counters *inflight.Counter
	threads  int
	batch    int
	declared int

	// mu guards seedRng (Split mutates it) and created; Start finishes its
	// own splits before returning, so worker streams never race these.
	mu      sync.Mutex
	seedRng *rng.Xoshiro
	created int

	total    Stats
	wg       sync.WaitGroup
	waitOnce sync.Once
}

// NewProducer returns the next of the Options.Producers declared external
// producer handles; it panics when called more than that many times. It is
// safe to call from any goroutine, but each returned Producer must then be
// used by a single goroutine at a time.
//
// Because the open-producer count starts at the declared total, the
// execution cannot terminate before every declared producer has been
// created and closed — there is no window in which a late NewProducer races
// a finished run.
func (e *Execution) NewProducer() *Producer {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.created >= e.declared {
		panic("engine: NewProducer called more times than Options.Producers declared")
	}
	slot := e.threads + e.created
	e.created++
	p := &Producer{
		counters: e.counters,
		slot:     slot,
		pushBuf:  pushBuf{r: e.seedRng.Split(), mq: cq.HandleFor(e.mq), batch: e.batch},
	}
	if e.batch > 1 {
		p.out = make([]cq.Pair, 0, e.batch)
	}
	return p
}

// Wait blocks until the execution terminates — every declared producer
// created and closed, and every produced task completed — and returns the
// summed worker stats. It is idempotent: concurrent and repeated calls all
// return the same totals.
func (e *Execution) Wait() Stats {
	e.waitOnce.Do(e.wg.Wait)
	// No lock needed: wg.Wait orders every worker's final accumulation
	// before this read, and total is never written afterwards.
	return e.total
}

// Producer feeds the frontier of a running execution from outside the
// worker pool — the open-system analogue of Ctx.Spawn. Like Ctx it is
// single-goroutine: create one producer per feeding goroutine (handing a
// producer from the creating goroutine to its user is fine). Pairs are
// recorded in the termination counter before they become visible, so the
// streaming arrival never races the double-scan termination protocol.
//
// With Options.BatchSize > 1 pushes accumulate in a producer-local buffer
// flushed through the queue's PushBatch when full — the same one-
// coordination-round-per-batch amortization the workers use — and Close
// flushes whatever remains. Push and PushBatch panic once the producer is
// closed; Close itself is idempotent.
type Producer struct {
	counters *inflight.Counter
	slot     int
	closed   bool
	pushBuf
}

// Push streams one (value, priority) pair into the execution. It panics if
// the producer has been closed.
func (p *Producer) Push(value, priority int64) {
	if p.closed {
		panic("engine: Push on closed Producer")
	}
	p.counters.Produce(p.slot)
	p.push(value, priority)
}

// PushBatch streams every pair in one queue operation. Any buffered Push
// pairs are flushed first so arrival order is preserved per producer. It
// panics if the producer has been closed.
func (p *Producer) PushBatch(pairs []cq.Pair) {
	if p.closed {
		panic("engine: PushBatch on closed Producer")
	}
	if len(pairs) == 0 {
		return
	}
	p.flush()
	p.counters.ProduceN(p.slot, int64(len(pairs)))
	p.mq.PushBatch(p.r, pairs)
}

// Flush makes every buffered pair visible to the workers without closing
// the producer. Useful when a batching producer goes quiet for a while: a
// buffered pair is counted as in-flight, so leaving it parked keeps the
// execution from terminating (it cannot deadlock — Close flushes — but it
// delays the buffered jobs arbitrarily).
func (p *Producer) Flush() {
	if p.closed {
		return
	}
	p.flush()
}

// Close flushes any buffered pairs, releases the producer's queue handle
// (its epoch slot, on backends that have one) and marks the producer done.
// Once every declared producer has closed and the queue drains, the workers
// terminate. Close is idempotent: a second Close is a no-op.
func (p *Producer) Close() {
	if p.closed {
		return
	}
	p.flush()
	p.mq.Close()
	p.closed = true
	p.counters.CloseProducer()
}
