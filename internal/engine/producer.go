package engine

import (
	"sync"
	"sync/atomic"
	"time"

	"relaxsched/internal/cq"
	"relaxsched/internal/inflight"
	"relaxsched/internal/rng"
)

// Execution is a running engine instance as returned by Start: the worker
// pool is live, and the caller holds the handle to create producers, to
// Stop the run early and to wait for termination. The closed-world Run is
// Start followed by Wait with zero producers.
type Execution struct {
	mq       cq.BatchQueue
	counters *inflight.Counter
	threads  int
	batch    int
	declared int

	// mu guards seedRng (Split mutates it) and created; Start finishes its
	// own splits before returning, so worker streams never race these.
	mu      sync.Mutex
	seedRng *rng.Xoshiro
	created int

	// workers are the per-worker shared stat blocks (see watchdog.go):
	// written by their worker, read by the watchdog and Wait.
	workers []workerState

	// Failure machinery (interrupt.go).
	maxRetries int
	retries    retryTracker
	injector   Injector
	failMu     sync.Mutex
	failures   []Failure

	// stopped is the cooperative interruption flag (Stop, deadline,
	// watchdog abort); interrupted records that a worker actually exited
	// before quiescence because of it.
	stopped     atomic.Bool
	interrupted atomic.Bool
	deadline    *time.Timer
	// stall is the latest watchdog report; donec closes when every worker
	// has exited (allocated only when a watchdog or deadline is armed).
	stall atomic.Pointer[StallReport]
	donec chan struct{}

	result   Result
	wg       sync.WaitGroup
	waitOnce sync.Once
}

// NewProducer returns the next of the Options.Producers declared external
// producer handles; it panics when called more than that many times. It is
// safe to call from any goroutine, but each returned Producer must then be
// used by a single goroutine at a time.
//
// Because the open-producer count starts at the declared total, the
// execution cannot terminate before every declared producer has been
// created and closed — there is no window in which a late NewProducer races
// a finished run.
func (e *Execution) NewProducer() *Producer {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.created >= e.declared {
		panic("engine: NewProducer called more times than Options.Producers declared")
	}
	slot := e.threads + e.created
	e.created++
	p := &Producer{
		exec:     e,
		counters: e.counters,
		slot:     slot,
		pushBuf:  pushBuf{r: e.seedRng.Split(), mq: cq.HandleFor(e.mq), batch: e.batch},
	}
	if e.batch > 1 {
		p.out = make([]cq.Pair, 0, e.batch)
	}
	return p
}

// Wait blocks until the execution terminates — every declared producer
// created and closed, and every produced task completed, or a Stop/Deadline
// drain finished — and returns the Result. It is idempotent: concurrent and
// repeated calls all return the same Result.
func (e *Execution) Wait() Result {
	e.waitOnce.Do(func() {
		e.wg.Wait()
		if e.deadline != nil {
			e.deadline.Stop()
		}
		// wg.Wait orders every worker's final counter writes before these
		// reads, and nothing below is written afterwards.
		var st Stats
		for w := range e.workers {
			ws := &e.workers[w]
			st.Popped += ws.popped.Load()
			st.Executed += ws.executed.Load()
			st.Discarded += ws.discarded.Load()
			st.Reinserted += ws.reinserted.Load()
			st.Failed += ws.failed.Load()
		}
		e.result = Result{
			Stats:       st,
			Interrupted: e.interrupted.Load(),
			Failures:    e.failures,
			Stall:       e.stall.Load(),
		}
	})
	return e.result
}

// Producer feeds the frontier of a running execution from outside the
// worker pool — the open-system analogue of Ctx.Spawn. Like Ctx it is
// single-goroutine: create one producer per feeding goroutine (handing a
// producer from the creating goroutine to its user is fine). Pairs are
// recorded in the termination counter before they become visible, so the
// streaming arrival never races the double-scan termination protocol.
//
// With Options.BatchSize > 1 pushes accumulate in a producer-local buffer
// flushed through the queue's PushBatch when full — the same one-
// coordination-round-per-batch amortization the workers use — and Close
// flushes whatever remains. Push and PushBatch panic once the producer is
// closed; Close itself is idempotent.
//
// Once the execution has been stopped (Execution.Stop, the Deadline, or a
// watchdog abort) pushes are absorbed: Push and PushBatch become no-ops —
// the pairs are neither counted nor enqueued — so a producer goroutine
// racing the interruption never panics and never strands uncompletable
// in-flight counts. Pairs already buffered before the stop are still
// flushed to the queue by Close (flush-then-close is atomic with respect to
// Stop: either a pair was absorbed and left no trace, or it was counted and
// reaches the queue).
type Producer struct {
	exec     *Execution
	counters *inflight.Counter
	slot     int
	closed   bool
	pushBuf
}

// Push streams one (value, priority) pair into the execution. It panics if
// the producer has been closed, and is silently absorbed once the
// execution has been stopped.
func (p *Producer) Push(value, priority int64) {
	if p.closed {
		panic("engine: Push on closed Producer")
	}
	if p.exec.stopped.Load() {
		return
	}
	p.counters.Produce(p.slot)
	p.push(value, priority)
}

// PushBatch streams every pair in one queue operation. Any buffered Push
// pairs are flushed first so arrival order is preserved per producer. It
// panics if the producer has been closed, and is silently absorbed once
// the execution has been stopped (buffered pairs are still flushed).
func (p *Producer) PushBatch(pairs []cq.Pair) {
	if p.closed {
		panic("engine: PushBatch on closed Producer")
	}
	p.flush()
	if len(pairs) == 0 || p.exec.stopped.Load() {
		return
	}
	p.counters.ProduceN(p.slot, int64(len(pairs)))
	p.mq.PushBatch(p.r, pairs)
}

// Flush makes every buffered pair visible to the workers without closing
// the producer. Useful when a batching producer goes quiet for a while: a
// buffered pair is counted as in-flight, so leaving it parked keeps the
// execution from terminating (it cannot deadlock — Close flushes — but it
// delays the buffered jobs arbitrarily).
func (p *Producer) Flush() {
	if p.closed {
		return
	}
	p.flush()
}

// Close flushes any buffered pairs, releases the producer's queue handle
// (its epoch slot, on backends that have one) and marks the producer done.
// Once every declared producer has closed and the queue drains, the workers
// terminate. Close is idempotent: a second Close is a no-op.
func (p *Producer) Close() {
	if p.closed {
		return
	}
	p.flush()
	p.mq.Close()
	p.closed = true
	p.counters.CloseProducer()
}
