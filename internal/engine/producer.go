package engine

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"relaxsched/internal/cq"
	"relaxsched/internal/inflight"
	"relaxsched/internal/park"
	"relaxsched/internal/rng"
)

// ErrTerminated is returned by TryNewProducer once the execution has
// terminated: quiescence was observed and sealed, the workers are exiting
// or gone, and no new producer may stream into the pool.
var ErrTerminated = errors.New("engine: execution already terminated")

// Execution is a running engine instance as returned by Start: the worker
// pool is live, and the caller holds the handle to create producers, to
// Stop the run early and to wait for termination. The closed-world Run is
// Start followed by Wait with zero producers.
type Execution struct {
	mq       cq.BatchQueue
	counters *inflight.Counter
	lot      *park.Lot
	strategy IdleStrategy
	threads  int
	batch    int
	declared int

	// Elastic pool state: pool is the goroutine count (MaxWorkers, or
	// Threads when not elastic); active is the controller-managed size of
	// the non-retired worker set.
	pool       int
	minWorkers int
	elastic    bool
	active     atomic.Int32

	// mu guards seedRng (Split mutates it) and created; Start finishes its
	// own splits before returning, so worker streams never race these.
	mu      sync.Mutex
	seedRng *rng.Xoshiro
	created int

	// workers are the per-worker shared stat blocks (see watchdog.go):
	// written by their worker, read by the watchdog and Wait.
	workers []workerState

	// Failure machinery (interrupt.go).
	maxRetries int
	retries    retryTracker
	injector   Injector
	failMu     sync.Mutex
	failures   []Failure

	// stopped is the cooperative interruption flag (Stop, deadline,
	// watchdog abort); interrupted records that a worker actually exited
	// before quiescence because of it.
	stopped     atomic.Bool
	interrupted atomic.Bool
	deadline    *time.Timer
	// stall is the latest watchdog report; donec closes when every worker
	// has exited (allocated only when a watchdog or deadline is armed).
	stall atomic.Pointer[StallReport]
	donec chan struct{}

	result   Result
	wg       sync.WaitGroup
	waitOnce sync.Once
}

// NewProducer returns an external producer handle. The first
// Options.Producers calls claim the declared registrations (the execution
// cannot terminate before every declared producer has been created and
// closed, so these never race a finished run); further calls register
// dynamically and panic if the execution has already terminated — use
// TryNewProducer where that race is expected. It is safe to call from any
// goroutine, but each returned Producer must then be used by a single
// goroutine at a time.
func (e *Execution) NewProducer() *Producer {
	p, err := e.TryNewProducer()
	if err != nil {
		panic("engine: NewProducer on a terminated execution (declare producers up front, or use TryNewProducer)")
	}
	return p
}

// TryNewProducer returns an external producer handle, registering it
// dynamically once the declared count is exhausted. It fails with
// ErrTerminated if the execution has already terminated: the registration
// handshake (inflight's seal; see that package's comment) guarantees that
// a success here means the workers will serve everything the producer
// streams, and a terminated execution yields this error rather than a
// silently dead producer. On a stopped-but-unfinished execution it still
// succeeds, returning a producer whose pushes are absorbed — the same
// semantics every live producer has after Stop.
func (e *Execution) TryNewProducer() (*Producer, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var ps *inflight.ProducerSlot
	if e.created < e.declared {
		ps = e.counters.Attach()
	} else {
		var ok bool
		if ps, ok = e.counters.Register(); !ok {
			return nil, ErrTerminated
		}
	}
	e.created++
	p := &Producer{
		exec:    e,
		slot:    ps,
		pushBuf: pushBuf{r: e.seedRng.Split(), mq: cq.HandleFor(e.mq), lot: e.lot, batch: e.batch},
	}
	if e.batch > 1 {
		p.out = make([]cq.Pair, 0, e.batch)
	}
	return p, nil
}

// ParkedWorkers returns the number of workers currently parked on the
// idle lot. Racy by nature; exact when the execution is externally idle
// (tests and idle-cost measurements read it then).
func (e *Execution) ParkedWorkers() int {
	return e.lot.Parked()
}

// ActiveWorkers returns the elastic controller's current active-set size
// (Threads when the pool is not elastic).
func (e *Execution) ActiveWorkers() int {
	return int(e.active.Load())
}

// Wait blocks until the execution terminates — every declared producer
// created and closed, and every produced task completed, or a Stop/Deadline
// drain finished — and returns the Result. It is idempotent: concurrent and
// repeated calls all return the same Result.
func (e *Execution) Wait() Result {
	e.waitOnce.Do(func() {
		e.wg.Wait()
		if e.deadline != nil {
			e.deadline.Stop()
		}
		// wg.Wait orders every worker's final counter writes before these
		// reads, and nothing below is written afterwards.
		var st Stats
		for w := range e.workers {
			ws := &e.workers[w]
			st.Popped += ws.popped.Load()
			st.Executed += ws.executed.Load()
			st.Discarded += ws.discarded.Load()
			st.Reinserted += ws.reinserted.Load()
			st.Failed += ws.failed.Load()
		}
		e.result = Result{
			Stats:       st,
			Interrupted: e.interrupted.Load(),
			Failures:    e.failures,
			Stall:       e.stall.Load(),
		}
	})
	return e.result
}

// Producer feeds the frontier of a running execution from outside the
// worker pool — the open-system analogue of Ctx.Spawn. Like Ctx it is
// single-goroutine: create one producer per feeding goroutine (handing a
// producer from the creating goroutine to its user is fine). Pairs are
// recorded in the termination counter before they become visible, so the
// streaming arrival never races the double-scan termination protocol.
//
// With Options.BatchSize > 1 pushes accumulate in a producer-local buffer
// flushed through the queue's PushBatch when full — the same one-
// coordination-round-per-batch amortization the workers use — and Close
// flushes whatever remains. Push and PushBatch panic once the producer is
// closed; Close itself is idempotent.
//
// Once the execution has been stopped (Execution.Stop, the Deadline, or a
// watchdog abort) pushes are absorbed: Push and PushBatch become no-ops —
// the pairs are neither counted nor enqueued — so a producer goroutine
// racing the interruption never panics and never strands uncompletable
// in-flight counts. Pairs already buffered before the stop are still
// flushed to the queue by Close (flush-then-close is atomic with respect to
// Stop: either a pair was absorbed and left no trace, or it was counted and
// reaches the queue).
type Producer struct {
	exec   *Execution
	slot   *inflight.ProducerSlot
	closed bool
	pushBuf
}

// Push streams one (value, priority) pair into the execution. It panics if
// the producer has been closed, and is silently absorbed once the
// execution has been stopped.
func (p *Producer) Push(value, priority int64) {
	if p.closed {
		panic("engine: Push on closed Producer")
	}
	if p.exec.stopped.Load() {
		return
	}
	p.slot.Produce()
	p.push(value, priority)
}

// PushBatch streams every pair in one queue operation. Any buffered Push
// pairs are flushed first so arrival order is preserved per producer. It
// panics if the producer has been closed, and is silently absorbed once
// the execution has been stopped (buffered pairs are still flushed).
func (p *Producer) PushBatch(pairs []cq.Pair) {
	if p.closed {
		panic("engine: PushBatch on closed Producer")
	}
	p.flush()
	if len(pairs) == 0 || p.exec.stopped.Load() {
		return
	}
	p.slot.ProduceN(int64(len(pairs)))
	p.mq.PushBatch(p.r, pairs)
	p.lot.Wake(len(pairs))
}

// Flush makes every buffered pair visible to the workers without closing
// the producer. Useful when a batching producer goes quiet for a while: a
// buffered pair is counted as in-flight, so leaving it parked keeps the
// execution from terminating (it cannot deadlock — Close flushes — but it
// delays the buffered jobs arbitrarily).
func (p *Producer) Flush() {
	if p.closed {
		return
	}
	p.flush()
}

// Close flushes any buffered pairs, releases the producer's queue handle
// (its epoch slot, on backends that have one) and marks the producer done.
// Once every registered producer has closed and the queue drains, the
// workers terminate. Closing broadcasts to parked workers: the close that
// completes the termination condition may land while every worker is
// asleep, and the woken workers re-run the quiescence scan and exit. Close
// is idempotent: a second Close is a no-op.
func (p *Producer) Close() {
	if p.closed {
		return
	}
	p.flush()
	p.mq.Close()
	p.closed = true
	p.slot.Close()
	p.lot.WakeAll()
}
