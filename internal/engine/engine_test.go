package engine_test

import (
	"fmt"
	"testing"

	"relaxsched/internal/bnb"
	"relaxsched/internal/core"
	"relaxsched/internal/cq"
	"relaxsched/internal/delaunay"
	"relaxsched/internal/engine"
	"relaxsched/internal/engine/enginetest"
	"relaxsched/internal/geom"
	"relaxsched/internal/graph"
	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
	"relaxsched/internal/sssp"
	"relaxsched/internal/txn"
)

// TestConformance runs the shared synthetic suite (flat frontier,
// spawn-heavy termination, dependency chain, duplicate discard, plus the
// robustness tests: Stop/Deadline drains, panic quarantine, retry cap,
// stall watchdog, producer-versus-stop races) against every registered cq
// backend. Run with -race in CI.
func TestConformance(t *testing.T) {
	for _, backend := range cq.Backends() {
		t.Run(string(backend), func(t *testing.T) { enginetest.Run(t, backend) })
	}
}

// TestChaosConformance runs the seeded fault-injection suite — worker
// stalls, forced Blocked returns, injected poison panics, delayed producer
// closes — for every workload family x every registered backend, asserting
// exactly-once execution, exact quarantine accounting and termination. The
// seeds are fixed (see enginetest.chaosSeeds) so CI failures reproduce.
func TestChaosConformance(t *testing.T) {
	for _, backend := range cq.Backends() {
		t.Run(string(backend), func(t *testing.T) { enginetest.ChaosConformance(t, backend) })
	}
}

// randomDAG builds a layered random dependency DAG over n labels.
func randomDAG(n int, r *rng.Xoshiro) *core.DAG {
	d := core.NewDAG(n)
	for j := 1; j < n; j++ {
		for _, back := range []int{1 + r.Intn(j), 1 + r.Intn(j)} {
			if r.Intn(3) > 0 {
				d.AddDep(j-back, j)
			}
		}
	}
	return d
}

// TestWorkloadConformance drives the six production workload families —
// static DAG (core), relaxation-spawning SSSP, dynamic branch-and-bound,
// on-line-discovery parallel Delaunay, the open-system streaming top-k
// scheduler, and the OCC transactional workload (whose run self-certifies
// serializability by replaying its commit log) — through their public
// adapters on every backend x batch-size cell, and checks each against its
// sequential ground truth. This is the
// engine-level analogue of cqtest: a new backend (or engine change) is
// safe for every parallel path exactly when this grid passes under -race.
func TestWorkloadConformance(t *testing.T) {
	const n = 900
	dag := randomDAG(n, rng.New(5))
	g := graph.Random(800, 3200, 100, 7)
	exact := sssp.Dijkstra(g, 0)
	tree := bnb.Tree{Depth: 7, Branch: 3, MaxEdgeCost: 60, Seed: 9}
	optimum := bnb.Optimal(tree)
	ptsRng := rng.New(13)
	pts := make([]geom.Point, 400)
	for i := range pts {
		pts[i] = geom.Point{X: ptsRng.Float64(), Y: ptsRng.Float64()}
	}
	mesh, err := delaunay.Triangulate(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	txnSpec := txn.WorkloadSpec{Txns: 1500, Keys: 64, Skew: 0.99, OpsPerTxn: 3, ReadFrac: 0.5, Seed: 6}

	for _, backend := range cq.Backends() {
		for _, batch := range []int{0, 16} {
			t.Run(fmt.Sprintf("%s/batch%d", backend, batch), func(t *testing.T) {
				run, err := core.ParallelRun(dag, core.ParallelOptions{ExecOptions: engine.ExecOptions{Threads: 4, QueueMultiplier: 2, Backend: backend, BatchSize: batch, Seed: 1}})
				if err != nil {
					t.Fatalf("static-DAG batch %d: %v", batch, err)
				}
				if run.Processed != n {
					t.Fatalf("static-DAG batch %d: processed %d of %d", batch, run.Processed, n)
				}
				pos := make([]int, n)
				for i, l := range run.Order {
					pos[l] = i
				}
				for j := 0; j < n; j++ {
					for _, i := range dag.Preds[j] {
						if pos[i] > pos[j] {
							t.Fatalf("static-DAG batch %d: task %d before ancestor %d", batch, j, i)
						}
					}
				}

				pr := sssp.ParallelWith(g, 0, sssp.ParallelOptions{ExecOptions: engine.ExecOptions{Threads: 4, QueueMultiplier: 2, Backend: backend, BatchSize: batch, Seed: 2}})
				if !sssp.Equal(pr.Dist, exact.Dist) {
					t.Fatalf("sssp batch %d: distances diverge from Dijkstra", batch)
				}

				br, err := bnb.ParallelRun(tree, bnb.ParallelOptions{ExecOptions: engine.ExecOptions{Threads: 4, QueueMultiplier: 2, Backend: backend, BatchSize: batch, Seed: 3}, Budget: 1 << 16})
				if err != nil {
					t.Fatalf("bnb batch %d: %v", batch, err)
				}
				if br.Best != optimum {
					t.Fatalf("bnb batch %d: Best = %d, want %d", batch, br.Best, optimum)
				}

				dm, dres, err := delaunay.ParallelTriangulate(pts, nil, delaunay.ParallelOptions{ExecOptions: engine.ExecOptions{Threads: 4, QueueMultiplier: 2, Backend: backend, BatchSize: batch, Seed: 4}})
				if err != nil {
					t.Fatalf("delaunay batch %d: %v", batch, err)
				}
				if dres.Inserted != int64(len(pts)) {
					t.Fatalf("delaunay batch %d: inserted %d of %d", batch, dres.Inserted, len(pts))
				}
				if !delaunay.MeshesEqual(dm, mesh) {
					t.Fatalf("delaunay batch %d: mesh differs from sequential", batch)
				}

				sr, err := sched.ParallelTopK(sched.TopKRunOptions{
					StreamOptions:   sched.StreamOptions{ExecOptions: engine.ExecOptions{Threads: 4, QueueMultiplier: 2, Backend: backend, BatchSize: batch, Seed: 5}, Producers: 2},
					JobsPerProducer: 300,
				})
				if err != nil {
					t.Fatalf("stream batch %d: %v", batch, err)
				}
				if sr.Jobs != 600 {
					t.Fatalf("stream batch %d: executed %d of 600 jobs", batch, sr.Jobs)
				}

				tr, err := txn.ParallelRun(txnSpec, txn.ParallelOptions{ExecOptions: engine.ExecOptions{Threads: 4, QueueMultiplier: 2, Backend: backend, BatchSize: batch, Seed: 6}})
				if err != nil {
					t.Fatalf("txn batch %d: %v", batch, err)
				}
				if tr.Commits != int64(txnSpec.Txns) {
					t.Fatalf("txn batch %d: committed %d of %d", batch, tr.Commits, txnSpec.Txns)
				}
			})
		}
	}
}

func TestRunInvalidOptions(t *testing.T) {
	wl := &noopWorkload{}
	if _, err := engine.Run(wl, engine.Options{ExecOptions: engine.ExecOptions{Threads: 0, QueueMultiplier: 1}}); err == nil {
		t.Fatal("Threads 0 accepted")
	}
	if _, err := engine.Run(wl, engine.Options{ExecOptions: engine.ExecOptions{Threads: 1, QueueMultiplier: 0}}); err == nil {
		t.Fatal("QueueMultiplier 0 accepted")
	}
	if _, err := engine.Run(wl, engine.Options{ExecOptions: engine.ExecOptions{Threads: 1, QueueMultiplier: 1, Backend: "no-such-queue"}}); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

func TestRunEmptyFrontier(t *testing.T) {
	// A workload with nothing to do must terminate immediately on every
	// backend, batched or not.
	for _, backend := range cq.Backends() {
		for _, batch := range []int{0, 8} {
			st, err := engine.Run(&noopWorkload{}, engine.Options{ExecOptions: engine.ExecOptions{Threads: 4, QueueMultiplier: 2, Backend: backend, BatchSize: batch, Seed: 1}})
			if err != nil {
				t.Fatalf("%s/batch%d: %v", backend, batch, err)
			}
			if st.Stats != (engine.Stats{}) || st.Interrupted || len(st.Failures) != 0 || st.Stall != nil {
				t.Fatalf("%s/batch%d: non-zero result %+v for empty workload", backend, batch, st)
			}
		}
	}
}

type noopWorkload struct{}

func (noopWorkload) Frontier(func(value, priority int64))               {}
func (noopWorkload) TryExecute(*engine.Ctx, int64, int64) engine.Status { return engine.Executed }
