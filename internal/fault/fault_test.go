package fault

import (
	"testing"
	"time"

	"relaxsched/internal/engine"
)

func TestZeroPlanInjectsNothing(t *testing.T) {
	in := New(Plan{Seed: 1}, 4)
	for w := 0; w < 4; w++ {
		for i := int64(0); i < 1000; i++ {
			if inj := in.Inspect(w, i, i); inj != (engine.Injection{}) {
				t.Fatalf("zero plan injected %+v for worker %d value %d", inj, w, i)
			}
		}
	}
	if in.Stalls() != 0 || in.ForcedBlocks() != 0 || in.Panics() != 0 {
		t.Fatalf("zero plan recorded faults: %d stalls, %d blocks, %d panics",
			in.Stalls(), in.ForcedBlocks(), in.Panics())
	}
}

func TestPoisonFiresExactlyOnce(t *testing.T) {
	in := New(Plan{Seed: 7, Poison: map[int64]bool{42: true, 99: true}}, 2)
	panics := 0
	// The same poisoned value inspected repeatedly, from both workers.
	for i := 0; i < 10; i++ {
		for w := 0; w < 2; w++ {
			if in.Inspect(w, 42, 0).Panic {
				panics++
			}
		}
	}
	if panics != 1 {
		t.Fatalf("poison value 42 panicked %d times, want 1", panics)
	}
	if !in.Inspect(0, 99, 0).Panic {
		t.Fatal("poison value 99 did not panic on first inspect")
	}
	if in.Inspect(0, 7, 0).Panic {
		t.Fatal("non-poison value panicked")
	}
	if in.Panics() != 2 {
		t.Fatalf("Panics() = %d, want 2", in.Panics())
	}
	fired := in.Fired()
	if len(fired) != 2 || !fired[42] || !fired[99] {
		t.Fatalf("Fired() = %v, want {42, 99}", fired)
	}
}

func TestForcedBlocksRespectPerValueCap(t *testing.T) {
	// BlockEvery=1 tries to block every inspection; the per-value cap must
	// still bound the total per value.
	const cap = 3
	in := New(Plan{Seed: 5, BlockEvery: 1, MaxForcedBlocks: cap}, 2)
	blocks := 0
	for i := 0; i < 50; i++ {
		for w := 0; w < 2; w++ {
			if in.Inspect(w, 11, 0).ForceBlocked {
				blocks++
			}
		}
	}
	if blocks != cap {
		t.Fatalf("value 11 force-blocked %d times, want %d", blocks, cap)
	}
	if !in.Inspect(0, 12, 0).ForceBlocked {
		t.Fatal("fresh value not force-blocked despite BlockEvery=1")
	}
	if in.ForcedBlocks() != cap+1 {
		t.Fatalf("ForcedBlocks() = %d, want %d", in.ForcedBlocks(), cap+1)
	}
}

func TestStallsBoundedAndCounted(t *testing.T) {
	const maxStall = 500 * time.Microsecond
	in := New(Plan{Seed: 3, StallEvery: 4, MaxStall: maxStall}, 1)
	var stalls int64
	var total time.Duration
	for i := int64(0); i < 400; i++ {
		inj := in.Inspect(0, i, 0)
		if inj.Stall < 0 || inj.Stall > maxStall {
			t.Fatalf("stall %v outside (0, %v]", inj.Stall, maxStall)
		}
		if inj.Stall > 0 {
			stalls++
			total += inj.Stall
		}
	}
	if stalls != 100 {
		t.Fatalf("StallEvery=4 over 400 inspections stalled %d times, want 100", stalls)
	}
	if in.Stalls() != stalls || in.StalledFor() != total {
		t.Fatalf("counters (%d, %v) disagree with observed (%d, %v)",
			in.Stalls(), in.StalledFor(), stalls, total)
	}
}

func TestDeterministicAcrossInjectors(t *testing.T) {
	plan := Plan{Seed: 123, StallEvery: 3, MaxStall: time.Millisecond, BlockEvery: 5, MaxForcedBlocks: 2}
	a, b := New(plan, 2), New(plan, 2)
	for w := 0; w < 2; w++ {
		for i := int64(0); i < 500; i++ {
			if ia, ib := a.Inspect(w, i, i), b.Inspect(w, i, i); ia != ib {
				t.Fatalf("worker %d value %d: %+v vs %+v", w, i, ia, ib)
			}
		}
	}
	// Distinct seeds must diverge somewhere.
	c := New(Plan{Seed: 124, StallEvery: 3, MaxStall: time.Millisecond}, 1)
	d := New(Plan{Seed: 125, StallEvery: 3, MaxStall: time.Millisecond}, 1)
	same := true
	for i := int64(0); i < 300; i++ {
		if c.Inspect(0, i, i) != d.Inspect(0, i, i) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical stall schedules")
	}
}

func TestPlanValidation(t *testing.T) {
	cases := []struct {
		name    string
		plan    Plan
		workers int
	}{
		{"stall without max", Plan{StallEvery: 2}, 1},
		{"block without cap", Plan{BlockEvery: 2}, 1},
		{"zero workers", Plan{}, 0},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: New did not panic", c.name)
				}
			}()
			New(c.plan, c.workers)
		}()
	}
}
