// Package fault is the deterministic chaos-injection harness for the
// relaxed-execution engine: a seed-driven implementation of the
// engine.Injector seam that perturbs a run with the adversary of the
// practically-wait-free model — stalled threads — plus the two failure
// modes the engine's robustness machinery must contain, injected panics and
// forced Blocked returns.
//
// Everything an Injector does is a pure function of its Plan (seed
// included) and the sequence of Inspect calls it observes. The interleaving
// of those calls is scheduler-dependent, so two runs are not bit-identical;
// what the seed buys is a reproducible *distribution* of faults and, more
// importantly, hard invariants the chaos suites assert regardless of
// interleaving:
//
//   - a poisoned value panics on its first execution attempt and never
//     again (the engine quarantines it), so the quarantine set must equal
//     exactly the set of poisoned values that were reached;
//   - forced Blocked returns are capped per value (MaxForcedBlocks), so
//     injection alone can never exhaust a task's retry budget or livelock
//     the run — every non-poisoned task still executes exactly once;
//   - stalls only delay, never change, an outcome.
//
// The injector keeps per-worker state in padded slots (Inspect for worker w
// is always called from worker w's goroutine) and counts every fault it
// actually injected, so tests can cross-check the engine's accounting
// against ground truth.
package fault

import (
	"sync"
	"sync/atomic"
	"time"

	"relaxsched/internal/engine"
	"relaxsched/internal/rng"
)

// Plan is a declarative fault schedule. The zero value injects nothing;
// each field arms one fault class independently.
type Plan struct {
	// Seed drives every pseudo-random decision (stall lengths, which Nth
	// tasks stall or block). Same plan, same seed => same fault
	// distribution.
	Seed uint64

	// StallEvery > 0 stalls roughly every StallEvery-th inspected task per
	// worker for a uniform duration in (0, MaxStall] — the stalled-thread
	// adversary. MaxStall must be > 0 when StallEvery is set.
	StallEvery int
	MaxStall   time.Duration

	// BlockEvery > 0 forces roughly every BlockEvery-th inspected task per
	// worker to report Blocked without executing, exercising re-insertion.
	// Each distinct value is forced at most MaxForcedBlocks times in total
	// (across all workers), so forced blocks are always finite and — kept
	// below the engine's MaxBlockedRetries — never trip the retry cap on
	// their own. MaxForcedBlocks must be > 0 when BlockEvery is set.
	BlockEvery      int
	MaxForcedBlocks int

	// Poison values panic on their first execution attempt. The engine must
	// quarantine each exactly once; the injector never fires the same value
	// twice, so a re-appearing poisoned value would surface as a lost or
	// duplicated task in the suite's exactly-once accounting.
	Poison map[int64]bool
}

// workerSlot is one worker's private injection state, padded so neighbours
// never false-share. Only worker w's goroutine touches slot w.
type workerSlot struct {
	_         [64]byte
	r         *rng.Xoshiro
	inspected int64
	_         [48]byte
}

// Injector implements engine.Injector for a Plan. Construct with New; use
// one Injector per execution.
type Injector struct {
	plan  Plan
	slots []workerSlot

	// mu guards the cross-worker maps: forced-block budgets and the set of
	// poison values already fired. Both are off the hot path — they are
	// touched only when a fault class is armed and its trigger hits.
	mu     sync.Mutex
	blocks map[int64]int
	fired  map[int64]bool

	stalls  atomic.Int64
	forced  atomic.Int64
	panics  atomic.Int64
	stalled atomic.Int64 // total injected stall time, nanoseconds
}

// New returns an Injector executing plan across workers worker goroutines
// (pass the execution's Options.Threads). It panics on an incoherent plan.
func New(plan Plan, workers int) *Injector {
	if plan.StallEvery > 0 && plan.MaxStall <= 0 {
		panic("fault: StallEvery set without MaxStall")
	}
	if plan.BlockEvery > 0 && plan.MaxForcedBlocks <= 0 {
		panic("fault: BlockEvery set without MaxForcedBlocks")
	}
	if workers < 1 {
		panic("fault: need at least one worker")
	}
	in := &Injector{
		plan:   plan,
		slots:  make([]workerSlot, workers),
		blocks: make(map[int64]int),
		fired:  make(map[int64]bool),
	}
	for w := range in.slots {
		in.slots[w].r = rng.New(rng.Mix64(plan.Seed ^ uint64(w)*0x9e3779b97f4a7c15))
	}
	return in
}

// Inspect implements engine.Injector: it decides the fault directives for
// one popped task. Calls for worker w always come from worker w's
// goroutine; calls for different workers are concurrent.
func (in *Injector) Inspect(worker int, value, _ int64) engine.Injection {
	s := &in.slots[worker]
	s.inspected++
	var inj engine.Injection

	if in.plan.Poison[value] && in.firePoison(value) {
		in.panics.Add(1)
		inj.Panic = true
		// A panicking attempt never reaches the workload; stalling first is
		// still meaningful (a thread dying mid-stall), blocking is not.
	}

	if in.plan.StallEvery > 0 && s.inspected%int64(in.plan.StallEvery) == 0 {
		d := time.Duration(s.r.Uint64()%uint64(in.plan.MaxStall)) + 1
		in.stalls.Add(1)
		in.stalled.Add(int64(d))
		inj.Stall = d
	}

	if !inj.Panic && in.plan.BlockEvery > 0 && s.inspected%int64(in.plan.BlockEvery) == 0 {
		if in.takeBlockBudget(value) {
			in.forced.Add(1)
			inj.ForceBlocked = true
		}
	}
	return inj
}

// firePoison reports whether this attempt is the value's first — only the
// first panics, so the engine sees each poison value die exactly once.
func (in *Injector) firePoison(value int64) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.fired[value] {
		return false
	}
	in.fired[value] = true
	return true
}

// takeBlockBudget consumes one of the value's MaxForcedBlocks tokens.
func (in *Injector) takeBlockBudget(value int64) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.blocks[value] >= in.plan.MaxForcedBlocks {
		return false
	}
	in.blocks[value]++
	return true
}

// Stalls returns how many stalls were injected.
func (in *Injector) Stalls() int64 { return in.stalls.Load() }

// StalledFor returns the total injected stall time.
func (in *Injector) StalledFor() time.Duration { return time.Duration(in.stalled.Load()) }

// ForcedBlocks returns how many Blocked returns were forced.
func (in *Injector) ForcedBlocks() int64 { return in.forced.Load() }

// Panics returns how many panics were injected.
func (in *Injector) Panics() int64 { return in.panics.Load() }

// Fired returns the set of poison values that actually panicked — the
// exact quarantine set a fault-tolerant engine must report. (A poison value
// the workload never reached, e.g. the descendant of another poisoned
// task, fires nothing and must not be quarantined.)
func (in *Injector) Fired() map[int64]bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[int64]bool, len(in.fired))
	for v := range in.fired {
		out[v] = true
	}
	return out
}
