// Package sssp implements single-source shortest paths four ways:
//
//   - Dijkstra: the exact sequential baseline (binary heap + DecreaseKey),
//     whose pop count (= number of reachable vertices) is the denominator of
//     every overhead ratio in the paper's experiments;
//   - DeltaStepping: the bucket-based relaxation of Meyer & Sanders [27],
//     whose analysis Theorem 6.1 adapts;
//   - Relaxed: Algorithm 3 of the paper — Dijkstra driven by a relaxed
//     scheduler supporting DecreaseKey, in the sequential model, counting
//     pop operations (Theorem 6.1 bounds these by n + O(k^2 d_max/w_min));
//   - Parallel (parallel.go): the Section 7 implementation over a
//     concurrent MultiQueue with goroutines and atomic distances.
package sssp

import (
	"fmt"
	"math"

	"relaxsched/internal/graph"
	"relaxsched/internal/pq"
	"relaxsched/internal/sched"
)

// Inf is the distance assigned to unreachable vertices.
const Inf = math.MaxInt64

// Result carries the output of a sequential-model SSSP run.
type Result struct {
	// Dist[v] is the shortest-path distance from the source, or Inf.
	Dist []int64
	// Pops is the number of pop operations performed (the quantity bounded
	// by Theorem 6.1).
	Pops int64
	// Relaxations counts edge relaxations that improved a distance.
	Relaxations int64
	// Reached is the number of vertices with finite distance.
	Reached int64
}

// Overhead returns Pops divided by Reached: 1.0 means no wasted pops.
func (r Result) Overhead() float64 {
	if r.Reached == 0 {
		return 1
	}
	return float64(r.Pops) / float64(r.Reached)
}

// Dijkstra computes exact shortest paths from src with a binary heap and
// DecreaseKey; every reachable vertex is popped exactly once.
func Dijkstra(g *graph.Graph, src int) Result {
	n := g.NumNodes
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = Inf
	}
	dist[src] = 0
	h := pq.NewHeap(n)
	h.Push(src, 0)
	res := Result{Dist: dist}
	for !h.Empty() {
		v, d := h.Pop()
		res.Pops++
		targets, weights := g.OutEdges(v)
		for i := range targets {
			u := int(targets[i])
			nd := d + int64(weights[i])
			if nd < dist[u] {
				dist[u] = nd
				res.Relaxations++
				if h.Contains(u) {
					h.DecreaseKey(u, nd)
				} else {
					h.Push(u, nd)
				}
			}
		}
	}
	for _, d := range dist {
		if d < Inf {
			res.Reached++
		}
	}
	return res
}

// DeltaStepping computes exact shortest paths using a monotone bucket queue
// with bucket width delta. With delta = w_min it is the variant whose
// bucket argument Theorem 6.1 reuses; larger deltas trade pop count for
// re-relaxations. Pops counts bucket-queue pops.
func DeltaStepping(g *graph.Graph, src int, delta int64) Result {
	if delta <= 0 {
		panic("sssp: DeltaStepping needs delta > 0")
	}
	n := g.NumNodes
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = Inf
	}
	dist[src] = 0
	bq := pq.NewBucketQueue(n, delta)
	bq.Push(src, 0)
	res := Result{Dist: dist}
	for !bq.Empty() {
		v, d := bq.Pop()
		res.Pops++
		if d > dist[v] {
			continue // outdated entry superseded by a DecreaseKey move
		}
		targets, weights := g.OutEdges(v)
		for i := range targets {
			u := int(targets[i])
			nd := dist[v] + int64(weights[i])
			if nd < dist[u] {
				dist[u] = nd
				res.Relaxations++
				bq.Push(u, nd) // Push doubles as DecreaseKey
			}
		}
	}
	for _, d := range dist {
		if d < Inf {
			res.Reached++
		}
	}
	return res
}

// RelaxedScheduler is the scheduler contract Algorithm 3 needs: the
// sequential-model operations plus DecreaseKey.
type RelaxedScheduler interface {
	sched.Scheduler
	sched.DecreaseKeyer
}

// Relaxed runs Algorithm 3: Dijkstra driven by the given relaxed scheduler.
// The scheduler must be empty. Each loop iteration pops (ApproxGetMin +
// DeleteTask) one vertex; because the scheduler is relaxed, a vertex can be
// popped at a non-optimal tentative distance and may have to be re-inserted
// and popped again later, which is exactly the extra work Theorem 6.1
// bounds by O(k^2 d_max / w_min).
func Relaxed(g *graph.Graph, src int, q RelaxedScheduler) (Result, error) {
	if q.Len() != 0 {
		return Result{}, fmt.Errorf("sssp: scheduler must start empty, has %d tasks", q.Len())
	}
	if capable, ok := q.(interface{ SupportsDecreaseKey() bool }); ok && !capable.SupportsDecreaseKey() {
		return Result{}, fmt.Errorf("sssp: scheduler does not support DecreaseKey in its current configuration")
	}
	n := g.NumNodes
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = Inf
	}
	dist[src] = 0
	q.Insert(src, 0)
	res := Result{Dist: dist}
	for {
		v, curDist, ok := q.ApproxGetMin()
		if !ok {
			break
		}
		q.DeleteTask(v)
		res.Pops++
		if curDist > dist[v] {
			// Outdated: cannot happen with a well-behaved DecreaseKey
			// scheduler (the stored priority tracks dist), but Algorithm 3
			// keeps the check for robustness.
			continue
		}
		targets, weights := g.OutEdges(v)
		for i := range targets {
			u := int(targets[i])
			nd := curDist + int64(weights[i])
			if nd < dist[u] {
				dist[u] = nd
				res.Relaxations++
				if q.Contains(u) {
					q.DecreaseKey(u, nd)
				} else {
					q.Insert(u, nd)
				}
			}
		}
	}
	for _, d := range dist {
		if d < Inf {
			res.Reached++
		}
	}
	return res, nil
}

// MaxDistance returns d_max = max over reachable vertices of Dist, or 0 if
// only the source is reachable. Together with the graph's w_min it gives
// the d_max/w_min factor in Theorem 6.1.
func MaxDistance(dist []int64) int64 {
	var dmax int64
	for _, d := range dist {
		if d != Inf && d > dmax {
			dmax = d
		}
	}
	return dmax
}

// Equal reports whether two distance vectors agree everywhere.
func Equal(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
