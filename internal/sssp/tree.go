package sssp

import (
	"relaxsched/internal/graph"
	"relaxsched/internal/pq"
)

// DijkstraTree computes exact shortest paths from src like Dijkstra and
// additionally returns the shortest-path tree as a parent array:
// parent[v] is the predecessor of v on a shortest path from src, -1 for
// the source itself and for unreachable vertices.
func DijkstraTree(g *graph.Graph, src int) (Result, []int32) {
	n := g.NumNodes
	dist := make([]int64, n)
	parent := make([]int32, n)
	for i := range dist {
		dist[i] = Inf
		parent[i] = -1
	}
	dist[src] = 0
	h := pq.NewHeap(n)
	h.Push(src, 0)
	res := Result{Dist: dist}
	for !h.Empty() {
		v, d := h.Pop()
		res.Pops++
		targets, weights := g.OutEdges(v)
		for i := range targets {
			u := int(targets[i])
			nd := d + int64(weights[i])
			if nd < dist[u] {
				dist[u] = nd
				parent[u] = int32(v)
				res.Relaxations++
				if h.Contains(u) {
					h.DecreaseKey(u, nd)
				} else {
					h.Push(u, nd)
				}
			}
		}
	}
	for _, d := range dist {
		if d < Inf {
			res.Reached++
		}
	}
	return res, parent
}

// PathTo reconstructs the shortest path from the tree's source to v using
// a parent array from DijkstraTree. It returns nil if v is unreachable.
// The returned path starts at the source and ends at v.
func PathTo(parent []int32, src, v int) []int {
	if v != src && parent[v] < 0 {
		return nil
	}
	var rev []int
	for cur := v; ; cur = int(parent[cur]) {
		rev = append(rev, cur)
		if cur == src {
			break
		}
		if parent[cur] < 0 {
			return nil // disconnected parent chain (corrupt input)
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
