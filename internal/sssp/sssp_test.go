package sssp

import (
	"testing"
	"testing/quick"
	"time"

	"relaxsched/internal/cq"
	"relaxsched/internal/engine"
	"relaxsched/internal/graph"
	"relaxsched/internal/multiqueue"
	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
	"relaxsched/internal/spraylist"
)

// lineGraph returns a weighted path 0-1-...-n-1 with weight w.
func lineGraph(n int, w int64) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1, w)
	}
	return b.Build()
}

func TestDijkstraOnPath(t *testing.T) {
	g := lineGraph(10, 3)
	res := Dijkstra(g, 0)
	for v := 0; v < 10; v++ {
		if res.Dist[v] != int64(v)*3 {
			t.Fatalf("dist[%d] = %d, want %d", v, res.Dist[v], v*3)
		}
	}
	if res.Pops != 10 || res.Reached != 10 {
		t.Fatalf("pops=%d reached=%d", res.Pops, res.Reached)
	}
	if res.Overhead() != 1 {
		t.Fatalf("overhead = %f", res.Overhead())
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 5)
	// 2, 3 disconnected.
	g := b.Build()
	res := Dijkstra(g, 0)
	if res.Dist[2] != Inf || res.Dist[3] != Inf {
		t.Fatal("unreachable vertices should have Inf distance")
	}
	if res.Reached != 2 {
		t.Fatalf("reached = %d", res.Reached)
	}
}

func TestDijkstraPicksShorterOfTwoPaths(t *testing.T) {
	// 0 -> 1 -> 2 costs 2+2=4; direct 0 -> 2 costs 10.
	b := graph.NewBuilder(3)
	b.AddArc(0, 1, 2)
	b.AddArc(1, 2, 2)
	b.AddArc(0, 2, 10)
	g := b.Build()
	res := Dijkstra(g, 0)
	if res.Dist[2] != 4 {
		t.Fatalf("dist[2] = %d, want 4", res.Dist[2])
	}
}

func TestDeltaSteppingMatchesDijkstra(t *testing.T) {
	for _, delta := range []int64{1, 5, 50, 1000} {
		g := graph.Random(500, 2500, 100, 7)
		exact := Dijkstra(g, 0)
		ds := DeltaStepping(g, 0, delta)
		if !Equal(exact.Dist, ds.Dist) {
			t.Fatalf("delta=%d: distances differ from Dijkstra", delta)
		}
	}
}

func TestRelaxedWithExactSchedulerIsDijkstra(t *testing.T) {
	g := graph.Random(400, 2000, 100, 3)
	exact := Dijkstra(g, 0)
	res, err := Relaxed(g, 0, sched.NewExact(g.NumNodes))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(exact.Dist, res.Dist) {
		t.Fatal("distances differ")
	}
	if res.Pops != exact.Pops {
		t.Fatalf("exact-scheduler relaxed run popped %d, Dijkstra %d", res.Pops, exact.Pops)
	}
}

func TestRelaxedCorrectUnderAllSchedulers(t *testing.T) {
	g := graph.Random(600, 3000, 100, 11)
	exact := Dijkstra(g, 0)
	n := g.NumNodes
	schedulers := map[string]RelaxedScheduler{
		"krelaxed8":  sched.NewKRelaxed(n, 8),
		"krelaxed64": sched.NewKRelaxed(n, 64),
		"random16":   sched.NewRandomK(n, 16, 5),
		"batch8":     sched.NewBatch(n, 8),
		"multiqueue": multiqueue.New(n, 8, 2, multiqueue.HashedQueue, 5),
		"spraylist":  spraylist.New(n, 8, 5),
	}
	for name, q := range schedulers {
		res, err := Relaxed(g, 0, q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !Equal(exact.Dist, res.Dist) {
			t.Fatalf("%s: wrong distances", name)
		}
		if res.Pops < exact.Pops {
			t.Fatalf("%s: fewer pops (%d) than vertices (%d)?", name, res.Pops, exact.Pops)
		}
	}
}

func TestRelaxedPopsBoundedByTheorem61Shape(t *testing.T) {
	// On a uniform-weight path, d_max/w_min = n-1; with an adversarial
	// k-relaxed scheduler, pops <= n + c*k^2*(d_max/w_min) for a modest c.
	const n = 400
	const k = 4
	g := lineGraph(n, 7)
	res, err := Relaxed(g, 0, sched.NewKRelaxed(n, k))
	if err != nil {
		t.Fatal(err)
	}
	dmaxOverWmin := int64(n - 1) // weights uniform -> ratio = hops
	bound := int64(n) + 16*int64(k)*int64(k)*dmaxOverWmin
	if res.Pops > bound {
		t.Fatalf("pops %d exceed generous Theorem 6.1 envelope %d", res.Pops, bound)
	}
}

func TestRelaxedRejectsNonEmptyScheduler(t *testing.T) {
	g := lineGraph(3, 1)
	q := sched.NewExact(3)
	q.Insert(1, 1)
	if _, err := Relaxed(g, 0, q); err == nil {
		t.Fatal("expected error")
	}
}

func TestMaxDistance(t *testing.T) {
	if MaxDistance([]int64{0, 5, Inf, 3}) != 5 {
		t.Fatal("MaxDistance wrong")
	}
	if MaxDistance([]int64{Inf, Inf}) != 0 {
		t.Fatal("MaxDistance of unreachable-only should be 0")
	}
}

func TestEqual(t *testing.T) {
	if !Equal([]int64{1, 2}, []int64{1, 2}) {
		t.Fatal("Equal false negative")
	}
	if Equal([]int64{1}, []int64{1, 2}) || Equal([]int64{1, 2}, []int64{1, 3}) {
		t.Fatal("Equal false positive")
	}
}

func TestParallelMatchesDijkstraAllFamilies(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"random": graph.Random(2000, 10000, 100, 21),
		"road":   graph.Road(40, 50, 1000, 100, 22),
		"social": graph.Social(2000, 5, 100, 23),
	}
	for name, g := range graphs {
		exact := Dijkstra(g, 0)
		for _, threads := range []int{1, 4, 8} {
			res := Parallel(g, 0, threads, 2, 99)
			if !Equal(exact.Dist, res.Dist) {
				t.Fatalf("%s @%d threads: wrong distances", name, threads)
			}
			if res.Processed < exact.Reached {
				t.Fatalf("%s @%d threads: processed %d < reachable %d",
					name, threads, res.Processed, exact.Reached)
			}
			if res.Overhead() > 3 {
				t.Fatalf("%s @%d threads: overhead %.2f implausibly large",
					name, threads, res.Overhead())
			}
		}
	}
}

func TestParallelSingleThreadLowOverhead(t *testing.T) {
	// One thread + multiplier 1 = one queue = exact order; only duplicate
	// insertions (no DecreaseKey) can add processed tasks, and those are
	// filtered as stale, so overhead should be exactly 1.
	g := graph.Random(1000, 5000, 100, 31)
	exact := Dijkstra(g, 0)
	res := Parallel(g, 0, 1, 1, 7)
	if !Equal(exact.Dist, res.Dist) {
		t.Fatal("wrong distances")
	}
	if res.Processed != exact.Reached {
		t.Fatalf("single-queue processed %d, want %d", res.Processed, exact.Reached)
	}
}

// Property: relaxed SSSP agrees with Dijkstra on random graphs under a
// randomly chosen scheduler and seed.
func TestRelaxedAgreesProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 50 + r.Intn(300)
		g := graph.Random(n, n*3, 1+int64(r.Intn(200)), seed)
		src := r.Intn(n)
		exact := Dijkstra(g, src)
		var q RelaxedScheduler
		switch r.Intn(3) {
		case 0:
			q = sched.NewKRelaxed(n, 1+r.Intn(16))
		case 1:
			q = multiqueue.New(n, 1+r.Intn(8), 2, multiqueue.HashedQueue, seed)
		default:
			q = spraylist.New(n, 1+r.Intn(8), seed)
		}
		res, err := Relaxed(g, src, q)
		return err == nil && Equal(exact.Dist, res.Dist)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: parallel SSSP agrees with Dijkstra for random thread counts.
func TestParallelAgreesProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 100 + r.Intn(500)
		g := graph.Random(n, n*4, 1+int64(r.Intn(100)), seed)
		src := r.Intn(n)
		exact := Dijkstra(g, src)
		res := Parallel(g, src, 1+r.Intn(8), 1+r.Intn(3), seed)
		return Equal(exact.Dist, res.Dist)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDijkstraRandom(b *testing.B) {
	g := graph.Random(20000, 100000, 100, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dijkstra(g, 0)
	}
}

func BenchmarkParallelRandom8(b *testing.B) {
	g := graph.Random(20000, 100000, 100, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Parallel(g, 0, 8, 2, uint64(i))
	}
}

func TestParallelWithAcrossBackends(t *testing.T) {
	// Every cq backend must produce exact distances; only overhead and
	// timing may differ between them.
	g := graph.Random(3000, 12000, 100, 77)
	exact := Dijkstra(g, 0)
	for _, backend := range cq.Backends() {
		for _, threads := range []int{1, 4} {
			res := ParallelWith(g, 0, ParallelOptions{ExecOptions: engine.ExecOptions{Threads: threads, QueueMultiplier: 2, Backend: backend, Seed: 5}})
			if !Equal(exact.Dist, res.Dist) {
				t.Fatalf("%s @%d threads: wrong distances", backend, threads)
			}
			if res.Processed < exact.Reached {
				t.Fatalf("%s @%d threads: processed %d < reachable %d",
					backend, threads, res.Processed, exact.Reached)
			}
		}
	}
}

func TestParallelBatchedMatchesDijkstra(t *testing.T) {
	// The batch-amortized worker must produce exact distances on every
	// backend at every batch size; only overhead may grow with the batch.
	graphs := map[string]*graph.Graph{
		"random": graph.Random(2500, 10000, 100, 41),
		"road":   graph.Road(45, 45, 1000, 100, 42),
	}
	for name, g := range graphs {
		exact := Dijkstra(g, 0)
		for _, backend := range cq.Backends() {
			for _, batch := range []int{2, 16, 64} {
				res := ParallelWith(g, 0, ParallelOptions{ExecOptions: engine.ExecOptions{Threads: 4, QueueMultiplier: 2, Backend: backend, BatchSize: batch, Seed: 9}})
				if !Equal(exact.Dist, res.Dist) {
					t.Fatalf("%s/%s/batch%d: wrong distances", name, backend, batch)
				}
				if res.Processed < exact.Reached {
					t.Fatalf("%s/%s/batch%d: processed %d < reachable %d",
						name, backend, batch, res.Processed, exact.Reached)
				}
			}
		}
	}
}

// Property: batched parallel SSSP agrees with Dijkstra for random shapes,
// batch sizes and backends.
func TestParallelBatchedAgreesProperty(t *testing.T) {
	backends := cq.Backends()
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 100 + r.Intn(400)
		g := graph.Random(n, n*4, 1+int64(r.Intn(100)), seed)
		src := r.Intn(n)
		exact := Dijkstra(g, src)
		res := ParallelWith(g, src, ParallelOptions{ExecOptions: engine.ExecOptions{Threads: 1 + r.Intn(8), QueueMultiplier: 1 + r.Intn(3), Backend: backends[r.Intn(len(backends))], BatchSize: 1 + r.Intn(64), Seed: seed}})
		return Equal(exact.Dist, res.Dist)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestParallelDeadlineAnytime: a deadlined run on a graph far too large to
// finish in time must come back Interrupted, and its partial distances must
// be valid upper bounds on the exact ones — every finite tentative distance
// is the length of a real path, so the deadline only costs convergence,
// never soundness.
func TestParallelDeadlineAnytime(t *testing.T) {
	g := graph.Random(150_000, 900_000, 100, 77)
	exact := Dijkstra(g, 0)
	res := ParallelWith(g, 0, ParallelOptions{ExecOptions: engine.ExecOptions{Threads: 4, QueueMultiplier: 2, Seed: 7, Deadline: 500 * time.Microsecond}})
	if !res.Interrupted {
		t.Skip("run finished inside a 500µs deadline; machine too fast for this fixture")
	}
	if res.Failed != 0 {
		t.Fatalf("deadlined run quarantined %d tasks", res.Failed)
	}
	if res.Dist[0] != 0 {
		t.Fatalf("source distance %d after interrupt", res.Dist[0])
	}
	for v, d := range res.Dist {
		if d < exact.Dist[v] {
			t.Fatalf("vertex %d: partial distance %d below exact %d", v, d, exact.Dist[v])
		}
	}
}
