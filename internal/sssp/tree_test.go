package sssp

import (
	"testing"
	"testing/quick"

	"relaxsched/internal/graph"
	"relaxsched/internal/rng"
)

func TestDijkstraTreeMatchesDijkstra(t *testing.T) {
	g := graph.Random(800, 4000, 100, 5)
	plain := Dijkstra(g, 0)
	withTree, parent := DijkstraTree(g, 0)
	if !Equal(plain.Dist, withTree.Dist) {
		t.Fatal("distances differ")
	}
	if parent[0] != -1 {
		t.Fatal("source has a parent")
	}
}

func TestPathToReconstructsValidPaths(t *testing.T) {
	g := graph.Random(500, 2500, 100, 9)
	res, parent := DijkstraTree(g, 0)
	// Weight lookup for edge validation.
	edgeWeight := func(u, v int) (int64, bool) {
		targets, weights := g.OutEdges(u)
		best := int64(-1)
		for i := range targets {
			if int(targets[i]) == v {
				if best < 0 || int64(weights[i]) < best {
					best = int64(weights[i])
				}
			}
		}
		return best, best >= 0
	}
	checked := 0
	for v := 0; v < g.NumNodes && checked < 50; v++ {
		if res.Dist[v] == Inf || v == 0 {
			continue
		}
		path := PathTo(parent, 0, v)
		if path == nil || path[0] != 0 || path[len(path)-1] != v {
			t.Fatalf("bad path endpoints for %d: %v", v, path)
		}
		var total int64
		for i := 1; i < len(path); i++ {
			w, ok := edgeWeight(path[i-1], path[i])
			if !ok {
				t.Fatalf("path uses nonexistent edge %d->%d", path[i-1], path[i])
			}
			total += w
		}
		if total != res.Dist[v] {
			t.Fatalf("path to %d sums to %d, dist is %d", v, total, res.Dist[v])
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no paths checked")
	}
}

func TestPathToUnreachable(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1, 1)
	g := b.Build()
	_, parent := DijkstraTree(g, 0)
	if PathTo(parent, 0, 2) != nil {
		t.Fatal("path to unreachable vertex")
	}
	if p := PathTo(parent, 0, 0); len(p) != 1 || p[0] != 0 {
		t.Fatalf("path to source: %v", p)
	}
}

// Property: every parent edge is a real edge and parent distances are
// consistent (dist[v] = dist[parent[v]] + w for some edge weight w).
func TestTreeConsistencyProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 20 + r.Intn(200)
		g := graph.Random(n, n*3, 1+int64(r.Intn(50)), seed)
		src := r.Intn(n)
		res, parent := DijkstraTree(g, src)
		for v := 0; v < n; v++ {
			if v == src || res.Dist[v] == Inf {
				continue
			}
			p := int(parent[v])
			if p < 0 {
				return false
			}
			targets, weights := g.OutEdges(p)
			ok := false
			for i := range targets {
				if int(targets[i]) == v && res.Dist[p]+int64(weights[i]) == res.Dist[v] {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
