package sssp

import (
	"runtime"
	"sync"
	"sync/atomic"

	"relaxsched/internal/cq"
	"relaxsched/internal/graph"
	"relaxsched/internal/rng"
)

// ParallelOptions configure a concurrent SSSP run.
type ParallelOptions struct {
	// Threads is the number of worker goroutines (>= 1).
	Threads int
	// QueueMultiplier is the relaxation multiplier of the concurrent queue
	// (>= 1; the paper uses 2 for Figure 1 and sweeps it in Figure 2).
	QueueMultiplier int
	// Backend selects the concurrent queue implementation; the zero value
	// is cq.DefaultBackend (the MultiQueue with 2-choice pops).
	Backend cq.Backend
	// Seed drives the queue randomness.
	Seed uint64
}

// ParallelResult carries the output and work accounting of a concurrent
// SSSP run (Section 7 of the paper).
type ParallelResult struct {
	// Dist[v] is the shortest-path distance from the source, or Inf.
	Dist []int64
	// Popped is the total number of pop operations across all workers.
	Popped int64
	// Processed is the number of pops that passed the staleness check and
	// performed edge relaxations — the paper's "tasks executed". In a
	// sequential exact execution this equals the number of reachable
	// vertices, so Processed / Reached is the relaxation overhead plotted
	// in Figure 1 (left) and Figure 2.
	Processed int64
	// Reached is the number of vertices with finite distance.
	Reached int64
}

// Overhead returns Processed / Reached, the paper's overhead metric.
func (r ParallelResult) Overhead() float64 {
	if r.Reached == 0 {
		return 1
	}
	return float64(r.Processed) / float64(r.Reached)
}

// Parallel runs SSSP from src with worker goroutines over a concurrent
// MultiQueue — the paper's Section 7 configuration. It is shorthand for
// ParallelWith with the default backend.
func Parallel(g *graph.Graph, src, threads, queueMultiplier int, seed uint64) ParallelResult {
	return ParallelWith(g, src, ParallelOptions{
		Threads:         threads,
		QueueMultiplier: queueMultiplier,
		Seed:            seed,
	})
}

// ParallelWith runs SSSP from src with opts.Threads worker goroutines over
// the selected concurrent relaxed queue backend.
//
// Workers share an atomic tentative-distance array. Since the concurrent
// queues have no DecreaseKey, an improved distance inserts a fresh
// (vertex, dist) pair and stale pairs are discarded on pop via the
// curDist > dist[v] check of Algorithm 3. Termination uses an in-flight
// task counter: a worker exits only when the queue looks empty and no task
// is pending anywhere.
func ParallelWith(g *graph.Graph, src int, opts ParallelOptions) ParallelResult {
	threads := opts.Threads
	if threads < 1 {
		panic("sssp: Parallel needs threads >= 1")
	}
	if opts.QueueMultiplier < 1 {
		panic("sssp: Parallel needs queueMultiplier >= 1")
	}
	mq, err := cq.New(opts.Backend, threads, opts.QueueMultiplier)
	if err != nil {
		panic("sssp: " + err.Error())
	}
	n := g.NumNodes
	dist := make([]atomic.Int64, n)
	for i := range dist {
		dist[i].Store(Inf)
	}
	dist[src].Store(0)

	seedRng := rng.New(opts.Seed)
	mq.Push(seedRng, int64(src), 0)

	var pending atomic.Int64 // queued-but-unprocessed pairs
	pending.Store(1)
	var popped, processed atomic.Int64

	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(r *rng.Xoshiro) {
			defer wg.Done()
			var localPopped, localProcessed int64
			for {
				v64, curDist, ok := mq.Pop(r)
				if !ok {
					if pending.Load() == 0 {
						break
					}
					runtime.Gosched()
					continue
				}
				localPopped++
				v := int(v64)
				if curDist > dist[v].Load() {
					pending.Add(-1) // stale duplicate
					continue
				}
				localProcessed++
				targets, weights := g.OutEdges(v)
				for i := range targets {
					u := int(targets[i])
					nd := curDist + int64(weights[i])
					for {
						cur := dist[u].Load()
						if nd >= cur {
							break
						}
						if dist[u].CompareAndSwap(cur, nd) {
							pending.Add(1)
							mq.Push(r, int64(u), nd)
							break
						}
					}
				}
				pending.Add(-1)
			}
			popped.Add(localPopped)
			processed.Add(localProcessed)
		}(seedRng.Split())
	}
	wg.Wait()

	res := ParallelResult{
		Dist:      make([]int64, n),
		Popped:    popped.Load(),
		Processed: processed.Load(),
	}
	for i := range dist {
		d := dist[i].Load()
		res.Dist[i] = d
		if d < Inf {
			res.Reached++
		}
	}
	return res
}
