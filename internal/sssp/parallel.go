package sssp

import (
	"runtime"
	"sync"
	"sync/atomic"

	"relaxsched/internal/cq"
	"relaxsched/internal/graph"
	"relaxsched/internal/inflight"
	"relaxsched/internal/rng"
)

// ParallelOptions configure a concurrent SSSP run.
type ParallelOptions struct {
	// Threads is the number of worker goroutines (>= 1).
	Threads int
	// QueueMultiplier is the relaxation multiplier of the concurrent queue
	// (>= 1; the paper uses 2 for Figure 1 and sweeps it in Figure 2).
	QueueMultiplier int
	// Backend selects the concurrent queue implementation; the zero value
	// is cq.DefaultBackend (the MultiQueue with 2-choice pops).
	Backend cq.Backend
	// BatchSize is the number of (vertex, dist) pairs a worker moves per
	// queue operation: improved edges accumulate in a per-worker buffer
	// flushed through PushBatch, and tasks arrive PopBatch-many at a time,
	// so one coordination round is amortized over the whole batch. Values
	// <= 1 disable batching and run the paper's per-element protocol.
	// Larger batches trade relaxation quality (popped ranks grow with the
	// batch) for queue-operation throughput; relaxbench's batchsweep
	// experiment measures the trade.
	BatchSize int
	// Seed drives the queue randomness.
	Seed uint64
}

// ParallelResult carries the output and work accounting of a concurrent
// SSSP run (Section 7 of the paper).
type ParallelResult struct {
	// Dist[v] is the shortest-path distance from the source, or Inf.
	Dist []int64
	// Popped is the total number of pop operations across all workers.
	Popped int64
	// Processed is the number of pops that passed the staleness check and
	// performed edge relaxations — the paper's "tasks executed". In a
	// sequential exact execution this equals the number of reachable
	// vertices, so Processed / Reached is the relaxation overhead plotted
	// in Figure 1 (left) and Figure 2.
	Processed int64
	// Reached is the number of vertices with finite distance.
	Reached int64
}

// Overhead returns Processed / Reached, the paper's overhead metric.
func (r ParallelResult) Overhead() float64 {
	if r.Reached == 0 {
		return 1
	}
	return float64(r.Processed) / float64(r.Reached)
}

// Parallel runs SSSP from src with worker goroutines over a concurrent
// MultiQueue — the paper's Section 7 configuration. It is shorthand for
// ParallelWith with the default backend.
func Parallel(g *graph.Graph, src, threads, queueMultiplier int, seed uint64) ParallelResult {
	return ParallelWith(g, src, ParallelOptions{
		Threads:         threads,
		QueueMultiplier: queueMultiplier,
		Seed:            seed,
	})
}

// ParallelWith runs SSSP from src with opts.Threads worker goroutines over
// the selected concurrent relaxed queue backend.
//
// Workers share an atomic tentative-distance array. Since the concurrent
// queues have no DecreaseKey, an improved distance inserts a fresh
// (vertex, dist) pair and stale pairs are discarded on pop via the
// curDist > dist[v] check of Algorithm 3. Termination uses cache-padded
// per-worker in-flight counters (see internal/inflight): a worker exits
// only when the queue looks empty, its own buffers are flushed, and the
// cross-worker double scan proves no task is pending anywhere — the
// counter sum-scan runs only on apparent-empty, keeping the hot path free
// of shared-counter traffic.
func ParallelWith(g *graph.Graph, src int, opts ParallelOptions) ParallelResult {
	threads := opts.Threads
	if threads < 1 {
		panic("sssp: Parallel needs threads >= 1")
	}
	if opts.QueueMultiplier < 1 {
		panic("sssp: Parallel needs queueMultiplier >= 1")
	}
	mq, err := cq.New(opts.Backend, threads, opts.QueueMultiplier)
	if err != nil {
		panic("sssp: " + err.Error())
	}
	n := g.NumNodes
	dist := make([]atomic.Int64, n)
	for i := range dist {
		dist[i].Store(Inf)
	}
	dist[src].Store(0)

	seedRng := rng.New(opts.Seed)
	mq.Push(seedRng, int64(src), 0)

	counters := inflight.New(threads)
	counters.ProduceN(0, 1) // the source pair, pushed above
	var popped, processed atomic.Int64

	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(w int, r *rng.Xoshiro) {
			defer wg.Done()
			if opts.BatchSize > 1 {
				ssspWorkerBatched(g, dist, mq, counters, w, r, opts.BatchSize, &popped, &processed)
			} else {
				ssspWorker(g, dist, mq, counters, w, r, &popped, &processed)
			}
		}(t, seedRng.Split())
	}
	wg.Wait()

	res := ParallelResult{
		Dist:      make([]int64, n),
		Popped:    popped.Load(),
		Processed: processed.Load(),
	}
	for i := range dist {
		d := dist[i].Load()
		res.Dist[i] = d
		if d < Inf {
			res.Reached++
		}
	}
	return res
}

// ssspRelax relaxes every out-edge of v at distance curDist, invoking emit
// for each improved (target, newDist) pair after recording its production.
func ssspRelax(g *graph.Graph, dist []atomic.Int64, counters *inflight.Counter,
	w, v int, curDist int64, emit func(u int64, nd int64)) {
	targets, weights := g.OutEdges(v)
	for i := range targets {
		u := int(targets[i])
		nd := curDist + int64(weights[i])
		for {
			cur := dist[u].Load()
			if nd >= cur {
				break
			}
			if dist[u].CompareAndSwap(cur, nd) {
				counters.Produce(w)
				emit(int64(u), nd)
				break
			}
		}
	}
}

// ssspWorker is the per-element (unbatched) worker loop — the paper's
// Section 7 protocol, one queue operation per relaxation.
func ssspWorker(g *graph.Graph, dist []atomic.Int64, mq cq.BatchQueue,
	counters *inflight.Counter, w int, r *rng.Xoshiro, popped, processed *atomic.Int64) {
	var localPopped, localProcessed int64
	for {
		v64, curDist, ok := mq.Pop(r)
		if !ok {
			if counters.Quiescent() {
				break
			}
			runtime.Gosched()
			continue
		}
		localPopped++
		v := int(v64)
		if curDist > dist[v].Load() {
			counters.Complete(w) // stale duplicate
			continue
		}
		localProcessed++
		ssspRelax(g, dist, counters, w, v, curDist, func(u, nd int64) {
			mq.Push(r, u, nd)
		})
		counters.Complete(w)
	}
	popped.Add(localPopped)
	processed.Add(localProcessed)
}

// ssspWorkerBatched is the batch-amortized worker loop: pops arrive up to
// batch at a time and improved edges accumulate in a local out-buffer
// flushed through PushBatch, so the queue's coordination cost (lock
// round-trip or CAS) is paid once per batch. The out-buffer is always
// flushed before a termination check, so buffered pairs — already recorded
// as produced — can never deadlock the counter protocol.
func ssspWorkerBatched(g *graph.Graph, dist []atomic.Int64, mq cq.BatchQueue,
	counters *inflight.Counter, w int, r *rng.Xoshiro, batch int, popped, processed *atomic.Int64) {
	var localPopped, localProcessed int64
	in := make([]cq.Pair, batch)
	out := make([]cq.Pair, 0, batch)
	for {
		k := mq.PopBatch(r, in)
		if k == 0 {
			if len(out) > 0 {
				mq.PushBatch(r, out)
				out = out[:0]
				continue
			}
			if counters.Quiescent() {
				break
			}
			runtime.Gosched()
			continue
		}
		for _, p := range in[:k] {
			localPopped++
			v := int(p.Value)
			if p.Priority > dist[v].Load() {
				counters.Complete(w) // stale duplicate
				continue
			}
			localProcessed++
			ssspRelax(g, dist, counters, w, v, p.Priority, func(u, nd int64) {
				out = append(out, cq.Pair{Value: u, Priority: nd})
				if len(out) >= batch {
					mq.PushBatch(r, out)
					out = out[:0]
				}
			})
			counters.Complete(w)
		}
	}
	popped.Add(localPopped)
	processed.Add(localProcessed)
}
