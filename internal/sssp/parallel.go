package sssp

import (
	"sync/atomic"

	"relaxsched/internal/engine"
	"relaxsched/internal/graph"
)

// ParallelOptions configure a concurrent SSSP run.
type ParallelOptions struct {
	// ExecOptions are the shared engine knobs: queue backend and relaxation
	// multiplier (the paper uses 2 for Figure 1 and sweeps it in Figure 2),
	// worker count, batching (improved edges accumulate in a per-worker
	// buffer flushed through PushBatch — relaxbench's batchsweep experiment
	// measures the quality/throughput trade), seeding, and Deadline — at
	// expiry the engine drains gracefully and the result is marked
	// Interrupted, with the partial distances still valid upper bounds
	// (relaxation only ever lowers them), making a deadlined run an
	// anytime SSSP.
	engine.ExecOptions
}

// ParallelResult carries the output and work accounting of a concurrent
// SSSP run (Section 7 of the paper).
type ParallelResult struct {
	// Dist[v] is the shortest-path distance from the source, or Inf.
	Dist []int64
	// Popped is the total number of pop operations across all workers.
	Popped int64
	// Processed is the number of pops that passed the staleness check and
	// performed edge relaxations — the paper's "tasks executed". In a
	// sequential exact execution this equals the number of reachable
	// vertices, so Processed / Reached is the relaxation overhead plotted
	// in Figure 1 (left) and Figure 2.
	Processed int64
	// Reached is the number of vertices with finite distance.
	Reached int64
	// Interrupted reports that the run was cut short (ParallelOptions.
	// Deadline): Dist holds valid upper bounds, but some vertices may not
	// have converged to their true distance yet.
	Interrupted bool
	// Failed counts quarantined relaxation tasks (TryExecute panics
	// contained by the engine); nonzero values indicate a workload bug but
	// no longer crash the process.
	Failed int64
}

// Overhead returns Processed / Reached, the paper's overhead metric.
func (r ParallelResult) Overhead() float64 {
	if r.Reached == 0 {
		return 1
	}
	return float64(r.Processed) / float64(r.Reached)
}

// Parallel runs SSSP from src with worker goroutines over a concurrent
// MultiQueue — the paper's Section 7 configuration. It is shorthand for
// ParallelWith with the default backend.
func Parallel(g *graph.Graph, src, threads, queueMultiplier int, seed uint64) ParallelResult {
	return ParallelWith(g, src, ParallelOptions{ExecOptions: engine.ExecOptions{
		Threads:         threads,
		QueueMultiplier: queueMultiplier,
		Seed:            seed,
	}})
}

// ssspWorkload is the relaxation-spawning workload over the generic engine:
// the frontier is the single source pair, a popped (vertex, dist) pair is
// Discarded when stale (curDist > dist[v], Algorithm 3's staleness check)
// and otherwise relaxes its out-edges, spawning a fresh pair per improved
// distance. Since the concurrent queues have no DecreaseKey, improvements
// insert duplicates and staleness filtering on pop keeps the search exact.
type ssspWorkload struct {
	g    *graph.Graph
	dist []atomic.Int64
	src  int
}

func (s *ssspWorkload) Frontier(emit func(value, priority int64)) {
	emit(int64(s.src), 0)
}

func (s *ssspWorkload) TryExecute(ctx *engine.Ctx, value, priority int64) engine.Status {
	v := int(value)
	if priority > s.dist[v].Load() {
		return engine.Discarded // stale duplicate
	}
	targets, weights := s.g.OutEdges(v)
	for i := range targets {
		u := int(targets[i])
		nd := priority + int64(weights[i])
		//relax:allow spinbound: monotone CAS-min on dist[u]; every failure means another worker tightened it, and nd >= cur exits
		for {
			cur := s.dist[u].Load()
			if nd >= cur {
				break
			}
			if s.dist[u].CompareAndSwap(cur, nd) {
				ctx.Spawn(int64(u), nd)
				break
			}
		}
	}
	return engine.Executed
}

// ParallelWith runs SSSP from src with opts.Threads worker goroutines over
// the selected concurrent relaxed queue backend. It is a thin workload over
// the generic relaxed-execution engine (internal/engine), which owns the
// worker loop, the per-worker batching buffers and the in-flight-counter
// termination protocol; workers share only the atomic tentative-distance
// array this adapter provides.
func ParallelWith(g *graph.Graph, src int, opts ParallelOptions) ParallelResult {
	if opts.Threads < 1 {
		panic("sssp: Parallel needs threads >= 1")
	}
	if opts.QueueMultiplier < 1 {
		panic("sssp: Parallel needs queueMultiplier >= 1")
	}
	n := g.NumNodes
	wl := &ssspWorkload{g: g, dist: make([]atomic.Int64, n), src: src}
	for i := range wl.dist {
		wl.dist[i].Store(Inf)
	}
	wl.dist[src].Store(0)

	stats, err := engine.Run(wl, engine.Options{ExecOptions: opts.ExecOptions})
	if err != nil {
		panic("sssp: " + err.Error())
	}

	res := ParallelResult{
		Dist:        make([]int64, n),
		Popped:      stats.Popped,
		Processed:   stats.Executed,
		Interrupted: stats.Interrupted,
		Failed:      stats.Failed,
	}
	for i := range wl.dist {
		d := wl.dist[i].Load()
		res.Dist[i] = d
		if d < Inf {
			res.Reached++
		}
	}
	return res
}
