// Package park is a futex-style parking lot for worker goroutines: the
// event-driven idle path behind the engine's "idle service burns no CPU"
// guarantee. A worker that keeps finding its queue empty parks on its own
// cache-padded slot and consumes nothing — no polling loop, no timer —
// until a producer-side Wake unparks it.
//
// # The lost-wakeup problem
//
// The entire difficulty is the race between "the queue looked empty" and
// "a push just made it non-empty": a waker that cannot see the about-to-
// park worker will not wake it, and a parker that cannot see the
// just-pushed item will sleep on a non-empty queue — a stranded worker.
// The lot closes the race with the classic announce-then-recheck protocol,
// plus a per-slot wakeup token for cheap cancellation:
//
//	parker                          waker
//	------                          -----
//	tok := Token(w)                 make work visible (push)
//	recheck queue (cheap outs)      if Parked() == 0: return   (fast path)
//	Park(w, tok, cancel):           scan slots; claim a parked one
//	  announce: parked=true, n++      (CAS parked true->false)
//	  if seq != tok: abort          bump the slot's seq token
//	  if cancel():   abort          signal the slot's sema
//	  sleep on sema
//
// Why no wakeup is ever lost (all Go atomics are sequentially consistent,
// so every execution has one total order over them):
//
//   - If the waker's fast-path load saw Parked() == 0, the load precedes
//     every announce of every currently-parking worker in the total order
//     (an announce increments the count before the parker sleeps, and the
//     count cannot have been decremented again for a worker that is still
//     asleep). The waker's push precedes its load, so it precedes those
//     announces — and the parker's cancel() runs after its announce, so
//     cancel() observes the pushed work and aborts the park. The waker may
//     skip waking only workers that are guaranteed to recheck.
//   - If the waker saw Parked() != 0 it claims a parked slot: the CAS on
//     the slot's parked flag is the exactly-once handoff, the seq bump
//     cancels a parker that announced but has not yet slept, and the
//     1-buffered sema covers the remaining window — a signal sent before
//     the parker's receive is buffered, so the receive returns
//     immediately. A parked slot is claimed by at most one waker per park
//     episode (the CAS), so the sema never holds more than one signal and
//     a blocking send cannot block.
//   - A parker that aborts after announcing un-announces by the same CAS;
//     if the CAS fails a waker already claimed it, and the parker drains
//     the (possibly still in-flight) sema signal before returning, so the
//     next park episode starts with an empty sema.
//
// The contract this imposes on callers: every action that makes work
// visible to a potentially-parking consumer must be followed by a Wake (or
// WakeAll), and every parker must re-examine the condition it is waiting
// on inside the cancel callback — after the announce — not only before
// Park. Callers that follow both rules never strand a worker; see
// internal/engine for the full termination argument layered on top.
//
// The hot path is deliberately cheap: a Wake with nobody parked is one
// atomic load of a line that is only written on park/unpark transitions
// (so it stays in shared state in every cache during busy operation), and
// parking itself allocates nothing and performs no syscalls beyond the
// runtime's own goroutine blocking.
package park

import "sync/atomic"

// parkSlot is one worker's park state, padded so neighbouring workers'
// park/wake traffic never false-shares.
type parkSlot struct {
	// seq is the wakeup token: bumped by every wake directed at this slot,
	// sampled by the worker before it commits to parking.
	seq atomic.Uint64
	// parked announces "this worker is committed to sleeping"; set by the
	// parker, cleared exactly once per episode by whoever ends it (a
	// claiming waker or the aborting parker itself).
	parked atomic.Bool
	// sema carries the wake signal. 1-buffered: a wake racing the parker's
	// commit-to-sleep parks the signal in the buffer instead of losing it.
	sema chan struct{}
	_    [104]byte // pad the ~24-byte payload to two 64-byte lines
}

// Lot is a parking lot with one slot per worker. The zero value is
// unusable; construct with NewLot.
type Lot struct {
	slots []parkSlot
	_     [40]byte // close out the slots header's line
	// nparked counts slots whose parked flag is set — the waker fast path.
	// Own padded line: read on every Wake, written only on transitions.
	nparked atomic.Int64
	_       [56]byte
	// next rotates Wake's scan start so repeated single wakes spread over
	// the parked set instead of hammering slot 0.
	next atomic.Uint64
	_    [56]byte
}

// NewLot returns a lot with n slots, for workers indexed [0, n).
func NewLot(n int) *Lot {
	l := &Lot{slots: make([]parkSlot, n)}
	for i := range l.slots {
		l.slots[i].sema = make(chan struct{}, 1)
	}
	return l
}

// Token samples worker w's wakeup token. Call it before the caller's own
// "is there really nothing to do" rechecks; a wake that lands after the
// sample bumps the token and the subsequent Park aborts instead of
// sleeping.
func (l *Lot) Token(w int) uint64 {
	return l.slots[w].seq.Load()
}

// Park blocks worker w until a wake claims it, and returns true. It
// returns false without sleeping if the slot's token no longer equals tok
// (a wake already landed) or if cancel reports there is work to do.
// cancel runs after the slot is announced as parked — that ordering is
// what makes a concurrent waker's fast-path skip safe (see the package
// comment) — so it must recheck the caller's actual wait condition, not
// cached state. Only worker w may call Park(w, ...).
//
//relax:hotpath
func (l *Lot) Park(w int, tok uint64, cancel func() bool) bool {
	s := &l.slots[w]
	if s.seq.Load() != tok {
		return false
	}
	// Announce before the final recheck: from here until the flag is
	// cleared, every waker either sees nparked != 0 and can claim this
	// slot, or completed its fast-path load before this increment — in
	// which case its work is visible to cancel() below.
	s.parked.Store(true)
	l.nparked.Add(1)
	if s.seq.Load() != tok || cancel() {
		if s.parked.CompareAndSwap(true, false) {
			l.nparked.Add(-1)
			return false
		}
		// A waker claimed the slot between the announce and the abort: its
		// signal is in flight (or buffered). Consume it so the next park
		// episode starts clean; the send cannot be far — the claimant
		// signals right after its CAS.
		<-s.sema //relax:allow pinregion: draining the claimed wake token is bounded — the claimant's send is already in flight
		return false
	}
	<-s.sema //relax:allow pinregion: this receive IS the park — blocking here is the function's whole purpose
	return true
}

// wake claims and signals slot i if it is parked, reporting success.
//
//relax:hotpath
func (l *Lot) wake(i int) bool {
	s := &l.slots[i]
	if !s.parked.Load() {
		return false
	}
	if !s.parked.CompareAndSwap(true, false) {
		return false
	}
	l.nparked.Add(-1)
	s.seq.Add(1)
	//relax:allow pinregion: 1-buffered and drained per episode — the send lands in the buffer, never blocks
	s.sema <- struct{}{}
	return true
}

// Wake unparks up to n parked workers and returns how many it woke. With
// nobody parked it is a single atomic load. Callers invoke it after making
// work visible; waking fewer than n because fewer were parked is fine (the
// unparked are awake and will find the work themselves).
//
//relax:hotpath
func (l *Lot) Wake(n int) int {
	if n <= 0 || l.nparked.Load() == 0 {
		return 0
	}
	woken := 0
	start := int(l.next.Add(1) % uint64(len(l.slots)))
	for i := 0; i < len(l.slots) && woken < n; i++ {
		idx := start + i
		if idx >= len(l.slots) {
			idx -= len(l.slots)
		}
		if l.wake(idx) {
			woken++
		}
	}
	return woken
}

// WakeAll unparks every parked worker: the shutdown/termination broadcast
// (stop requested, quiescence reached, a producer closed). With nobody
// parked it is a single atomic load.
//
//relax:hotpath
func (l *Lot) WakeAll() int {
	if l.nparked.Load() == 0 {
		return 0
	}
	woken := 0
	for i := range l.slots {
		if l.wake(i) {
			woken++
		}
	}
	return woken
}

// Parked returns the number of currently parked workers. Racy by nature;
// exact whenever the system is externally quiescent (no park or wake in
// flight), which is when diagnostics and idle-cost measurements read it.
func (l *Lot) Parked() int {
	return int(l.nparked.Load())
}
