package park

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
	"unsafe"
)

func never() bool { return false }

func TestParkWake(t *testing.T) {
	l := NewLot(2)
	if l.Parked() != 0 {
		t.Fatalf("fresh lot has %d parked", l.Parked())
	}
	done := make(chan bool)
	tok := l.Token(0)
	go func() { done <- l.Park(0, tok, never) }()
	// Wait for the announce, then wake.
	for l.Parked() == 0 {
		time.Sleep(10 * time.Microsecond)
	}
	if n := l.Wake(1); n != 1 {
		t.Fatalf("Wake(1) woke %d", n)
	}
	if !<-done {
		t.Fatal("Park returned false after a genuine wake")
	}
	if l.Parked() != 0 {
		t.Fatalf("%d parked after wake", l.Parked())
	}
}

func TestStaleTokenAbortsPark(t *testing.T) {
	l := NewLot(1)
	tok := l.Token(0)
	// A wake that lands between Token and Park bumps the token; Park must
	// return immediately even though nobody will signal the sema again.
	l.slots[0].seq.Add(1)
	if l.Park(0, tok, never) {
		t.Fatal("Park slept on a stale token")
	}
	if l.Parked() != 0 {
		t.Fatalf("%d parked after aborted park", l.Parked())
	}
}

func TestCancelAbortsPark(t *testing.T) {
	l := NewLot(1)
	calls := 0
	ok := l.Park(0, l.Token(0), func() bool { calls++; return true })
	if ok {
		t.Fatal("Park slept despite cancel")
	}
	if calls != 1 {
		t.Fatalf("cancel ran %d times, want 1", calls)
	}
	if l.Parked() != 0 {
		t.Fatalf("%d parked after cancelled park", l.Parked())
	}
	// The slot must be reusable: a normal park/wake cycle still works.
	done := make(chan bool)
	tok := l.Token(0)
	go func() { done <- l.Park(0, tok, never) }()
	for l.Parked() == 0 {
		time.Sleep(10 * time.Microsecond)
	}
	l.WakeAll()
	if !<-done {
		t.Fatal("Park aborted after a prior cancelled episode")
	}
}

func TestWakeAll(t *testing.T) {
	const n = 8
	l := NewLot(n)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			l.Park(w, l.Token(w), never)
		}(w)
	}
	for l.Parked() != n {
		time.Sleep(10 * time.Microsecond)
	}
	if woken := l.WakeAll(); woken != n {
		t.Fatalf("WakeAll woke %d of %d", woken, n)
	}
	wg.Wait()
	if l.Parked() != 0 {
		t.Fatalf("%d still parked after WakeAll", l.Parked())
	}
}

func TestWakeDistributes(t *testing.T) {
	// Wake(1) called n times with n parked workers must wake all of them:
	// the rotating scan may not repeatedly claim the same slot.
	const n = 4
	l := NewLot(n)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			l.Park(w, l.Token(w), never)
		}(w)
	}
	for l.Parked() != n {
		time.Sleep(10 * time.Microsecond)
	}
	total := 0
	for i := 0; i < n; i++ {
		total += l.Wake(1)
	}
	if total != n {
		t.Fatalf("n single wakes woke %d of %d", total, n)
	}
	wg.Wait()
}

func TestWakeWithNobodyParked(t *testing.T) {
	l := NewLot(4)
	if n := l.Wake(1); n != 0 {
		t.Fatalf("Wake woke %d with nobody parked", n)
	}
	if n := l.WakeAll(); n != 0 {
		t.Fatalf("WakeAll woke %d with nobody parked", n)
	}
	if n := l.Wake(0); n != 0 {
		t.Fatalf("Wake(0) woke %d", n)
	}
}

func TestSlotPadding(t *testing.T) {
	if s := unsafe.Sizeof(parkSlot{}); s < 128 {
		t.Fatalf("parkSlot is %d bytes, want >= 128", s)
	}
}

// TestNoLostWakeup is the adversarial schedule the token protocol exists
// for: a consumer repeatedly parks on "no work", a producer publishes work
// and wakes, timed so wakes constantly race the announce. If a wake is
// ever lost the consumer sleeps on pending work and the test times out.
func TestNoLostWakeup(t *testing.T) {
	const rounds = 20000
	l := NewLot(1)
	var work atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		consumed := 0
		for consumed < rounds {
			if work.Load() > 0 {
				work.Add(-1)
				consumed++
				continue
			}
			tok := l.Token(0)
			if work.Load() > 0 {
				continue
			}
			l.Park(0, tok, func() bool { return work.Load() > 0 })
		}
	}()
	for i := 0; i < rounds; i++ {
		work.Add(1) // make work visible...
		l.Wake(1)   // ...then wake: the caller contract
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("consumer stranded: a wakeup was lost")
	}
}

// TestNoLostWakeupFanIn drives many producers and consumers through one
// lot under racing parks, wakes and cancels.
func TestNoLostWakeupFanIn(t *testing.T) {
	const (
		consumers = 4
		producers = 4
		perProd   = 5000
	)
	l := NewLot(consumers)
	var work atomic.Int64
	var consumed atomic.Int64
	total := int64(producers * perProd)
	var wg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for consumed.Load() < total {
				if v := work.Load(); v > 0 && work.CompareAndSwap(v, v-1) {
					consumed.Add(1)
					continue
				}
				tok := l.Token(c)
				if work.Load() > 0 || consumed.Load() >= total {
					continue
				}
				l.Park(c, tok, func() bool {
					return work.Load() > 0 || consumed.Load() >= total
				})
			}
			// Exiting consumers release their peers, exactly as engine
			// workers broadcast on observed quiescence.
			l.WakeAll()
		}(c)
	}
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				work.Add(1)
				l.Wake(1)
			}
		}()
	}
	waitDone := make(chan struct{})
	go func() { wg.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(60 * time.Second):
		t.Fatalf("stranded: consumed %d of %d, %d parked", consumed.Load(), total, l.Parked())
	}
	if consumed.Load() != total {
		t.Fatalf("consumed %d of %d", consumed.Load(), total)
	}
}

func BenchmarkWakeNobodyParked(b *testing.B) {
	l := NewLot(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Wake(1)
	}
}

func BenchmarkParkWakeRoundTrip(b *testing.B) {
	l := NewLot(1)
	var stop atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		for !stop.Load() {
			l.Park(0, l.Token(0), func() bool { return stop.Load() })
		}
	}()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for l.Wake(1) == 0 && !stop.Load() {
			// Spin until the partner has parked again.
		}
	}
	stop.Store(true)
	l.WakeAll()
	<-done
}
