package multiqueue

import (
	"testing"
	"testing/quick"

	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
)

func TestMultiQueueDrainsAllTasks(t *testing.T) {
	for _, policy := range []InsertPolicy{RandomQueue, HashedQueue} {
		const n = 1000
		m := New(n, 8, 2, policy, 42)
		for i := 0; i < n; i++ {
			m.Insert(i, int64(i))
		}
		if m.Len() != n {
			t.Fatalf("Len = %d", m.Len())
		}
		seen := make([]bool, n)
		count := 0
		for {
			task, _, ok := m.ApproxGetMin()
			if !ok {
				break
			}
			if seen[task] {
				t.Fatalf("task %d returned after deletion", task)
			}
			m.DeleteTask(task)
			seen[task] = true
			count++
		}
		if count != n {
			t.Fatalf("policy %v: drained %d, want %d", policy, count, n)
		}
	}
}

func TestMultiQueueSingleQueueIsExact(t *testing.T) {
	// With one queue and one choice, the MultiQueue degenerates to an exact
	// priority queue.
	const n = 200
	m := New(n, 1, 1, RandomQueue, 1)
	for i := n - 1; i >= 0; i-- {
		m.Insert(i, int64(i))
	}
	for want := 0; want < n; want++ {
		task, _, ok := m.ApproxGetMin()
		if !ok || task != want {
			t.Fatalf("got %d (ok=%v), want %d", task, ok, want)
		}
		m.DeleteTask(task)
	}
}

func TestMultiQueueApproximationQuality(t *testing.T) {
	// Audited mean rank should be modest relative to q log q.
	const n = 2000
	const q = 8
	a := sched.NewAuditor(New(n, q, 2, RandomQueue, 3), 256)
	for i := 0; i < n; i++ {
		a.Insert(i, int64(i))
	}
	for {
		task, _, ok := a.ApproxGetMin()
		if !ok {
			break
		}
		a.DeleteTask(task)
	}
	r := a.Report()
	if r.MeanRank > 3*q {
		t.Fatalf("mean rank %.2f too large for q=%d", r.MeanRank, q)
	}
	if r.MeanRank < 1 {
		t.Fatalf("mean rank %.2f < 1", r.MeanRank)
	}
}

func TestMultiQueueDecreaseKeyHashed(t *testing.T) {
	m := New(10, 4, 2, HashedQueue, 5)
	m.Insert(3, 100)
	m.Insert(7, 50)
	m.DecreaseKey(3, 1)
	// Task 3 is now the global minimum; with full probing it must
	// eventually surface.
	found := false
	for i := 0; i < 100; i++ {
		task, p, ok := m.ApproxGetMin()
		if !ok {
			t.Fatal("unexpectedly empty")
		}
		if task == 3 {
			if p != 1 {
				t.Fatalf("task 3 priority = %d, want 1", p)
			}
			found = true
			break
		}
	}
	if !found {
		t.Fatal("task 3 never returned after DecreaseKey")
	}
}

func TestMultiQueueDecreaseKeyRandomPanics(t *testing.T) {
	m := New(2, 2, 2, RandomQueue, 1)
	m.Insert(0, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.DecreaseKey(0, 5)
}

func TestMultiQueuePanicsOnMisuse(t *testing.T) {
	m := New(4, 2, 2, HashedQueue, 1)
	m.Insert(0, 1)
	for name, f := range map[string]func(){
		"dup insert":    func() { m.Insert(0, 2) },
		"delete absent": func() { m.DeleteTask(1) },
		"dk absent":     func() { m.DecreaseKey(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMultiQueueRankBoundedByLiveTasks(t *testing.T) {
	// Whatever the randomness does, the returned task is always pending and
	// rank <= Len.
	check := func(seed uint64) bool {
		r := rng.New(seed)
		const n = 100
		m := New(n, 1+r.Intn(8), 1+r.Intn(3), RandomQueue, seed)
		live := map[int]bool{}
		next := 0
		for steps := 0; steps < 500; steps++ {
			if next < n && (r.Intn(2) == 0 || len(live) == 0) {
				m.Insert(next, int64(r.Intn(50)))
				live[next] = true
				next++
				continue
			}
			task, _, ok := m.ApproxGetMin()
			if ok != (len(live) > 0) {
				return false
			}
			if !ok {
				continue
			}
			if !live[task] {
				return false
			}
			m.DeleteTask(task)
			delete(live, task)
		}
		return m.Len() == len(live)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
