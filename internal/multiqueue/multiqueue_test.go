package multiqueue

import (
	"sync"
	"testing"
	"testing/quick"

	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
)

func TestMultiQueueDrainsAllTasks(t *testing.T) {
	for _, policy := range []InsertPolicy{RandomQueue, HashedQueue} {
		const n = 1000
		m := New(n, 8, 2, policy, 42)
		for i := 0; i < n; i++ {
			m.Insert(i, int64(i))
		}
		if m.Len() != n {
			t.Fatalf("Len = %d", m.Len())
		}
		seen := make([]bool, n)
		count := 0
		for {
			task, _, ok := m.ApproxGetMin()
			if !ok {
				break
			}
			if seen[task] {
				t.Fatalf("task %d returned after deletion", task)
			}
			m.DeleteTask(task)
			seen[task] = true
			count++
		}
		if count != n {
			t.Fatalf("policy %v: drained %d, want %d", policy, count, n)
		}
	}
}

func TestMultiQueueSingleQueueIsExact(t *testing.T) {
	// With one queue and one choice, the MultiQueue degenerates to an exact
	// priority queue.
	const n = 200
	m := New(n, 1, 1, RandomQueue, 1)
	for i := n - 1; i >= 0; i-- {
		m.Insert(i, int64(i))
	}
	for want := 0; want < n; want++ {
		task, _, ok := m.ApproxGetMin()
		if !ok || task != want {
			t.Fatalf("got %d (ok=%v), want %d", task, ok, want)
		}
		m.DeleteTask(task)
	}
}

func TestMultiQueueApproximationQuality(t *testing.T) {
	// Audited mean rank should be modest relative to q log q.
	const n = 2000
	const q = 8
	a := sched.NewAuditor(New(n, q, 2, RandomQueue, 3), 256)
	for i := 0; i < n; i++ {
		a.Insert(i, int64(i))
	}
	for {
		task, _, ok := a.ApproxGetMin()
		if !ok {
			break
		}
		a.DeleteTask(task)
	}
	r := a.Report()
	if r.MeanRank > 3*q {
		t.Fatalf("mean rank %.2f too large for q=%d", r.MeanRank, q)
	}
	if r.MeanRank < 1 {
		t.Fatalf("mean rank %.2f < 1", r.MeanRank)
	}
}

func TestMultiQueueDecreaseKeyHashed(t *testing.T) {
	m := New(10, 4, 2, HashedQueue, 5)
	m.Insert(3, 100)
	m.Insert(7, 50)
	m.DecreaseKey(3, 1)
	// Task 3 is now the global minimum; with full probing it must
	// eventually surface.
	found := false
	for i := 0; i < 100; i++ {
		task, p, ok := m.ApproxGetMin()
		if !ok {
			t.Fatal("unexpectedly empty")
		}
		if task == 3 {
			if p != 1 {
				t.Fatalf("task 3 priority = %d, want 1", p)
			}
			found = true
			break
		}
	}
	if !found {
		t.Fatal("task 3 never returned after DecreaseKey")
	}
}

func TestMultiQueueDecreaseKeyRandomPanics(t *testing.T) {
	m := New(2, 2, 2, RandomQueue, 1)
	m.Insert(0, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.DecreaseKey(0, 5)
}

func TestMultiQueuePanicsOnMisuse(t *testing.T) {
	m := New(4, 2, 2, HashedQueue, 1)
	m.Insert(0, 1)
	for name, f := range map[string]func(){
		"dup insert":    func() { m.Insert(0, 2) },
		"delete absent": func() { m.DeleteTask(1) },
		"dk absent":     func() { m.DecreaseKey(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMultiQueueRankBoundedByLiveTasks(t *testing.T) {
	// Whatever the randomness does, the returned task is always pending and
	// rank <= Len.
	check := func(seed uint64) bool {
		r := rng.New(seed)
		const n = 100
		m := New(n, 1+r.Intn(8), 1+r.Intn(3), RandomQueue, seed)
		live := map[int]bool{}
		next := 0
		for steps := 0; steps < 500; steps++ {
			if next < n && (r.Intn(2) == 0 || len(live) == 0) {
				m.Insert(next, int64(r.Intn(50)))
				live[next] = true
				next++
				continue
			}
			task, _, ok := m.ApproxGetMin()
			if ok != (len(live) > 0) {
				return false
			}
			if !ok {
				continue
			}
			if !live[task] {
				return false
			}
			m.DeleteTask(task)
			delete(live, task)
		}
		return m.Len() == len(live)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentSequentialUse(t *testing.T) {
	c := NewConcurrent(4)
	r := rng.New(1)
	for i := 0; i < 100; i++ {
		c.Push(r, int64(i), int64(100-i))
	}
	if c.Len() != 100 {
		t.Fatalf("Len = %d", c.Len())
	}
	seen := 0
	for {
		_, _, ok := c.Pop(r)
		if !ok {
			break
		}
		seen++
	}
	if seen != 100 {
		t.Fatalf("popped %d, want 100", seen)
	}
}

func TestConcurrentSingleQueueOrdering(t *testing.T) {
	c := NewConcurrent(1)
	r := rng.New(2)
	prios := []int64{5, 1, 4, 2, 3}
	for _, p := range prios {
		c.Push(r, p, p)
	}
	for want := int64(1); want <= 5; want++ {
		_, p, ok := c.Pop(r)
		if !ok || p != want {
			t.Fatalf("got %d (ok=%v), want %d", p, ok, want)
		}
	}
}

func TestConcurrentParallelStress(t *testing.T) {
	// Many goroutines push and pop; totals must balance and nothing may be
	// lost. Run with -race in CI for the full effect.
	const (
		goroutines = 8
		perG       = 5000
	)
	c := NewConcurrent(2 * goroutines)
	var wg sync.WaitGroup
	var popped [goroutines]int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rng.New(uint64(g) + 1)
			for i := 0; i < perG; i++ {
				c.Push(r, int64(g*perG+i), int64(r.Intn(1<<20)))
				if i%2 == 1 {
					if _, _, ok := c.Pop(r); ok {
						popped[g]++
					}
				}
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for g := range popped {
		total += popped[g]
	}
	// Drain the rest.
	r := rng.New(99)
	for {
		_, _, ok := c.Pop(r)
		if !ok {
			break
		}
		total++
	}
	if total != goroutines*perG {
		t.Fatalf("popped %d total, want %d", total, goroutines*perG)
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d after drain", c.Len())
	}
}

func TestConcurrentValuesPreserved(t *testing.T) {
	c := NewConcurrent(4)
	r := rng.New(7)
	const n = 2000
	for i := 0; i < n; i++ {
		c.Push(r, int64(i), int64(i%7))
	}
	seen := make([]bool, n)
	for {
		v, _, ok := c.Pop(r)
		if !ok {
			break
		}
		if seen[v] {
			t.Fatalf("value %d popped twice", v)
		}
		seen[v] = true
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("value %d lost", i)
		}
	}
}

func TestConcurrentReservedPriorityPanics(t *testing.T) {
	c := NewConcurrent(1)
	r := rng.New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Push(r, 0, emptyTop)
}

func BenchmarkConcurrentPushPop(b *testing.B) {
	c := NewConcurrent(16)
	b.RunParallel(func(pb *testing.PB) {
		r := rng.New(uint64(b.N) + 12345)
		i := int64(0)
		for pb.Next() {
			c.Push(r, i, i%1024)
			c.Pop(r)
			i++
		}
	})
}
