// Package multiqueue implements the MultiQueue relaxed priority queue of
// Rihani, Sanders & Dementiev (SPAA 2015), analyzed by Alistarh et al.
// (PODC 2017): q sequential priority queues; insertions go to a random (or
// hashed) queue; deletions probe c queues uniformly at random and take the
// best top element. With q = O(p) queues the structure is k-relaxed with
// k = O(q log q) with high probability, which is the regime the paper's
// experiments run in.
//
// Two variants are provided:
//
//   - MultiQueue: the sequential-model variant implementing sched.Scheduler
//     (+ DecreaseKey via consistent hashing of task ids to queues), used by
//     the incremental-algorithm framework and the lower-bound experiment of
//     Section 5;
//   - Concurrent: a lock-per-queue concurrent variant storing (value,
//     priority) pairs with duplicates, used by the parallel SSSP of
//     Section 7.
package multiqueue

import (
	"relaxsched/internal/pq"
	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
)

// InsertPolicy selects how tasks are assigned to queues.
type InsertPolicy int

const (
	// RandomQueue inserts each task into a uniformly random queue. This is
	// the textbook MultiQueue and the variant used in the Section 5 lower
	// bound. DecreaseKey is not supported under this policy.
	RandomQueue InsertPolicy = iota
	// HashedQueue assigns each task to the queue determined by a hash of
	// its id, enabling DecreaseKey (the task can always be found again).
	// The paper notes this is how SprayList/MultiQueue support SSSP.
	HashedQueue
)

// MultiQueue is the sequential-model MultiQueue. It implements
// sched.Scheduler; with HashedQueue policy it also implements
// sched.DecreaseKeyer.
type MultiQueue struct {
	queues   []pq.Pairing
	nodes    []*pq.Node // task -> handle (nil when absent)
	qOf      []int32    // task -> queue index (valid while node non-nil)
	policy   InsertPolicy
	choices  int
	rand     *rng.Xoshiro
	size     int
	hashSalt uint64
}

// New returns a MultiQueue with q queues over task ids in [0, n), popping
// with c-choice probing (the classic structure uses c = 2).
func New(n, q, c int, policy InsertPolicy, seed uint64) *MultiQueue {
	if q < 1 {
		panic("multiqueue: need at least one queue")
	}
	if c < 1 {
		panic("multiqueue: need at least one choice")
	}
	return &MultiQueue{
		queues:   make([]pq.Pairing, q),
		nodes:    make([]*pq.Node, n),
		qOf:      make([]int32, n),
		policy:   policy,
		choices:  c,
		rand:     rng.New(seed),
		hashSalt: rng.Mix64(seed ^ 0x5eed),
	}
}

// NumQueues returns the number of internal queues.
func (m *MultiQueue) NumQueues() int { return len(m.queues) }

// Empty reports whether no tasks are pending.
func (m *MultiQueue) Empty() bool { return m.size == 0 }

// Len reports the number of pending tasks.
func (m *MultiQueue) Len() int { return m.size }

// queueFor picks the insertion queue for a task under the current policy.
func (m *MultiQueue) queueFor(task int) int {
	if m.policy == HashedQueue {
		return int(rng.Mix64(uint64(task)^m.hashSalt) % uint64(len(m.queues)))
	}
	return m.rand.Intn(len(m.queues))
}

// Insert adds a task with the given priority.
func (m *MultiQueue) Insert(task int, priority int64) {
	if m.nodes[task] != nil {
		panic("multiqueue: Insert of pending task")
	}
	q := m.queueFor(task)
	m.nodes[task] = m.queues[q].Insert(int64(task), priority)
	m.qOf[task] = int32(q)
	m.size++
}

// ApproxGetMin probes c random queues and returns the best top element
// without removing it. If all probed queues are empty it falls back to a
// linear scan, so ok is false only when the whole structure is empty.
func (m *MultiQueue) ApproxGetMin() (int, int64, bool) {
	if m.size == 0 {
		return 0, 0, false
	}
	var best *pq.Node
	for i := 0; i < m.choices; i++ {
		q := m.rand.Intn(len(m.queues))
		if top := m.queues[q].Min(); top != nil {
			if best == nil || top.Priority() < best.Priority() {
				best = top
			}
		}
	}
	if best == nil {
		// All probed queues were empty; scan for any non-empty queue.
		for q := range m.queues {
			if top := m.queues[q].Min(); top != nil {
				best = top
				break
			}
		}
	}
	if best == nil {
		return 0, 0, false
	}
	return int(best.Value), best.Priority(), true
}

// DeleteTask removes a pending task.
func (m *MultiQueue) DeleteTask(task int) {
	n := m.nodes[task]
	if n == nil {
		panic("multiqueue: DeleteTask of absent task")
	}
	m.queues[m.qOf[task]].Remove(n)
	m.nodes[task] = nil
	m.size--
}

// Contains reports whether the task is pending.
func (m *MultiQueue) Contains(task int) bool { return m.nodes[task] != nil }

// SupportsDecreaseKey reports whether this MultiQueue can locate elements
// for DecreaseKey (true only under the HashedQueue policy).
func (m *MultiQueue) SupportsDecreaseKey() bool { return m.policy == HashedQueue }

// DecreaseKey lowers a pending task's priority. It requires the HashedQueue
// policy (the paper's consistent-hashing construction); under RandomQueue it
// panics, because the classic MultiQueue cannot locate an element.
func (m *MultiQueue) DecreaseKey(task int, priority int64) {
	if m.policy != HashedQueue {
		panic("multiqueue: DecreaseKey requires HashedQueue policy")
	}
	n := m.nodes[task]
	if n == nil {
		panic("multiqueue: DecreaseKey of absent task")
	}
	m.queues[m.qOf[task]].DecreaseKey(n, priority)
}

var _ sched.Scheduler = (*MultiQueue)(nil)
var _ sched.DecreaseKeyer = (*MultiQueue)(nil)
