package stats

import "math/bits"

// Hist is a fixed-size log-bucketed histogram for non-negative integer
// observations (the engine records task latencies in nanoseconds). It is
// built for the streaming hot path: Add is a shift, a mask and one slot
// increment on a fixed array — no allocation, no floating point, no locks —
// so a worker can own a private Hist and record every job without
// perturbing the latencies it is measuring. Merge folds per-worker
// histograms into one at the end of a run.
//
// Bucketing: values 0..3 get exact singleton buckets; from there each
// power-of-two octave is split into 4 sub-buckets, so the relative
// resolution is at worst one quarter octave (~±12.5%) at every scale —
// tight enough for p50/p99/p999 latency columns, across the full range
// from nanoseconds to seconds, in 256 counters (2 KiB).
type Hist struct {
	counts [histBuckets]uint64
	n      uint64
}

// histBuckets covers the full uint64 range: 4 singleton buckets for 0..3
// plus 4 sub-buckets for each of the 63 octaves starting at 2^2.
const histBuckets = 256

// bucketOf maps a value to its bucket index.
//
// For v >= 4, let exp = bits.Len64(v) - 1 (the octave, >= 2). The bucket is
// (exp-1)*4 + the top two bits of v below the leading bit — i.e. octave
// exp contributes buckets [(exp-1)*4, (exp-1)*4+4). exp=2 starts at index
// 4, exactly after the singletons, and exp=63 ends at index 251 < 256.
func bucketOf(v uint64) int {
	if v < 4 {
		return int(v)
	}
	exp := bits.Len64(v) - 1
	return (exp-1)*4 + int((v>>(uint(exp)-2))&3)
}

// bucketLow returns the smallest value mapping to bucket i; together with
// bucketLow(i+1) it brackets the bucket, and quantiles report the bracket
// midpoint.
func bucketLow(i int) uint64 {
	if i < 4 {
		return uint64(i)
	}
	exp := uint(i/4) + 1
	sub := uint64(i & 3)
	return 1<<exp | sub<<(exp-2)
}

// Add records one observation. Negative durations (clock skew between the
// arrival and execution timestamps) clamp to zero rather than corrupting a
// high bucket.
//
//relax:hotpath
func (h *Hist) Add(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(uint64(v))]++
	h.n++
}

// N returns the number of recorded observations.
func (h *Hist) N() uint64 { return h.n }

// Merge adds every bucket of other into h. The per-worker pattern: each
// worker Adds into its own Hist during the run; the coordinator Merges them
// after the workers have exited (Merge itself is not concurrency-safe).
func (h *Hist) Merge(other *Hist) {
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	h.n += other.n
}

// Quantile returns an estimate of the q-quantile (q in [0, 1]) of the
// recorded observations: the midpoint of the bucket containing the
// ceil(q*n)-th smallest observation, so the error is bounded by the bucket
// width (at worst ~12.5% relative). Returns 0 when the histogram is empty.
func (h *Hist) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	rank := uint64(q * float64(h.n))
	if rank >= h.n {
		rank = h.n - 1
	}
	var seen uint64
	for i := range h.counts {
		seen += h.counts[i]
		if seen > rank {
			lo := bucketLow(i)
			hi := ^uint64(0)
			if i < 251 { // 251 is the top reachable bucket; beyond it 1<<exp overflows
				hi = bucketLow(i + 1)
			}
			return int64(lo + (hi-lo)/2)
		}
	}
	return 0 // unreachable: seen ends at h.n > rank
}
