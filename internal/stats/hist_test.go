package stats

import (
	"math/rand"
	"sort"
	"testing"
)

// Buckets must tile the value space: consecutive bucket indices, contiguous
// non-overlapping ranges, and bucketOf(bucketLow(i)) == i.
func TestHistBucketsTile(t *testing.T) {
	for i := 0; i < 252; i++ {
		if got := bucketOf(bucketLow(i)); got != i {
			t.Fatalf("bucketOf(bucketLow(%d)) = %d", i, got)
		}
		if i > 0 && bucketLow(i) <= bucketLow(i-1) {
			t.Fatalf("bucketLow not strictly increasing at %d: %d <= %d", i, bucketLow(i), bucketLow(i-1))
		}
		if i > 0 {
			// The value just below this bucket's low must land in the previous bucket.
			if got := bucketOf(bucketLow(i) - 1); got != i-1 {
				t.Fatalf("bucketOf(bucketLow(%d)-1) = %d, want %d", i, got, i-1)
			}
		}
	}
	if got := bucketOf(^uint64(0)); got != 251 {
		t.Fatalf("bucketOf(max) = %d, want 251", got)
	}
}

// The relative bucket width must stay within a quarter octave for v >= 8.
func TestHistResolution(t *testing.T) {
	for _, v := range []uint64{8, 100, 1000, 12345, 1 << 20, 1 << 40, 1 << 62} {
		i := bucketOf(v)
		lo, hi := bucketLow(i), bucketLow(i+1)
		if v < lo || v >= hi {
			t.Fatalf("v=%d outside its bucket [%d, %d)", v, lo, hi)
		}
		if width := float64(hi-lo) / float64(lo); width > 0.251 {
			t.Fatalf("v=%d: bucket width %.3f of low edge, want <= 0.25", v, width)
		}
	}
}

func TestHistExactSmallValues(t *testing.T) {
	var h Hist
	for v := int64(0); v < 4; v++ {
		h.Add(v)
	}
	for q, want := range map[float64]int64{0.0: 0, 0.3: 1, 0.6: 2, 0.9: 3} {
		if got := h.Quantile(q); got != want {
			t.Fatalf("Quantile(%.1f) = %d, want %d", q, got, want)
		}
	}
}

func TestHistEmptyAndNegative(t *testing.T) {
	var h Hist
	if h.Quantile(0.5) != 0 || h.N() != 0 {
		t.Fatal("empty histogram must report 0")
	}
	h.Add(-5) // clock-skew clamp
	if h.N() != 1 || h.Quantile(0.5) != 0 {
		t.Fatalf("negative observation: N=%d p50=%d, want 1, 0", h.N(), h.Quantile(0.5))
	}
}

// Quantile estimates must land within the documented ~12.5% relative error
// of the exact order statistics on a heavy-tailed sample.
func TestHistQuantileAccuracy(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var h Hist
	vals := make([]int64, 0, 200000)
	for i := 0; i < cap(vals); i++ {
		// Log-uniform over ~6 decades: exercises many octaves.
		v := int64(1) << (r.Intn(40) + 4)
		v += r.Int63n(v)
		vals = append(vals, v)
		h.Add(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := vals[int(q*float64(len(vals)))]
		got := h.Quantile(q)
		rel := float64(got-exact) / float64(exact)
		if rel < 0 {
			rel = -rel
		}
		if rel > 0.13 {
			t.Fatalf("Quantile(%g) = %d, exact %d: relative error %.3f > 0.13", q, got, exact, rel)
		}
	}
}

func TestHistMerge(t *testing.T) {
	var a, b, all Hist
	for i := int64(0); i < 1000; i++ {
		v := i * 37
		all.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(&b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), all.N())
	}
	for _, q := range []float64{0.1, 0.5, 0.99} {
		if a.Quantile(q) != all.Quantile(q) {
			t.Fatalf("Quantile(%g): merged %d != direct %d", q, a.Quantile(q), all.Quantile(q))
		}
	}
}

func BenchmarkHistAdd(b *testing.B) {
	var h Hist
	for i := 0; i < b.N; i++ {
		h.Add(int64(i)*2654435761 + 17)
	}
}
