package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"relaxsched/internal/rng"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("mean = %f", s.Mean())
	}
	// Population stddev is 2; sample stddev = sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.Stddev()-want) > 1e-12 {
		t.Fatalf("stddev = %f, want %f", s.Stddev(), want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %f/%f", s.Min(), s.Max())
	}
	if math.Abs(s.StdErr()-want/math.Sqrt(8)) > 1e-12 {
		t.Fatalf("stderr = %f", s.StdErr())
	}
}

func TestSampleEmptyAndSingle(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Variance() != 0 || s.StdErr() != 0 {
		t.Fatal("empty sample stats non-zero")
	}
	s.Add(3)
	if s.Mean() != 3 || s.Variance() != 0 {
		t.Fatal("single sample stats wrong")
	}
}

func TestSampleMatchesNaive(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(100)
		var s Sample
		xs := make([]float64, n)
		var sum float64
		for i := range xs {
			xs[i] = r.Float64()*200 - 100
			s.Add(xs[i])
			sum += xs[i]
		}
		mean := sum / float64(n)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		naiveVar := ss / float64(n-1)
		return math.Abs(s.Mean()-mean) < 1e-9 && math.Abs(s.Variance()-naiveVar) < 1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 7, 9, 11} // y = 3 + 2x
	a, b, r2 := LinearFit(x, y)
	if math.Abs(a-3) > 1e-12 || math.Abs(b-2) > 1e-12 || math.Abs(r2-1) > 1e-12 {
		t.Fatalf("a=%f b=%f r2=%f", a, b, r2)
	}
}

func TestLinearFitNoise(t *testing.T) {
	r := rng.New(3)
	var x, y []float64
	for i := 0; i < 500; i++ {
		xv := float64(i)
		x = append(x, xv)
		y = append(y, 1.5*xv-4+r.NormFloat64())
	}
	a, b, r2 := LinearFit(x, y)
	if math.Abs(b-1.5) > 0.01 || math.Abs(a+4) > 1 {
		t.Fatalf("a=%f b=%f", a, b)
	}
	if r2 < 0.99 {
		t.Fatalf("r2 = %f", r2)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	// Constant x: slope undefined, returns b=0.
	_, b, r2 := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3})
	if b != 0 || r2 != 0 {
		t.Fatalf("b=%f r2=%f", b, r2)
	}
	// Constant y: perfect fit with zero slope.
	_, b, r2 = LinearFit([]float64{1, 2, 3}, []float64{5, 5, 5})
	if b != 0 || r2 != 1 {
		t.Fatalf("b=%f r2=%f", b, r2)
	}
}

func TestLinearFitPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"mismatch": func() { LinearFit([]float64{1}, []float64{1, 2}) },
		"short":    func() { LinearFit([]float64{1}, []float64{1}) },
		"logfit<0": func() { LogFit([]float64{-1, 2}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestLogFitRecoversLogCurve(t *testing.T) {
	var x, y []float64
	for _, n := range []float64{100, 1000, 10000, 100000} {
		x = append(x, n)
		y = append(y, 2+7*math.Log(n))
	}
	a, b, r2 := LogFit(x, y)
	if math.Abs(a-2) > 1e-9 || math.Abs(b-7) > 1e-9 || r2 < 0.999999 {
		t.Fatalf("a=%f b=%f r2=%f", a, b, r2)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("graph", "threads", "overhead")
	tb.AddRow("random", 4, 1.0123456)
	tb.AddRow("road", 16, 1.25)
	if tb.NumRows() != 2 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "graph") {
		t.Fatalf("header: %q", lines[0])
	}
	if !strings.Contains(lines[2], "1.012") {
		t.Fatalf("float formatting: %q", lines[2])
	}
	// Columns aligned: "threads" column starts at same offset in all rows.
	idx := strings.Index(lines[0], "threads")
	if !strings.HasPrefix(lines[2][idx:], "4") && !strings.Contains(lines[2], "  4") {
		t.Fatalf("misaligned row: %q", lines[2])
	}
}
