// Package stats provides the small statistical and formatting toolkit the
// experiment harness uses: repeated-trial aggregation (mean, standard
// error), least-squares fits against log n (to check the O(log n) shapes of
// Theorems 3.3, 4.3 and 5.1), and fixed-width table rendering so that
// cmd/relaxbench and the benchmarks print the same rows the paper reports.
package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Sample aggregates observations incrementally (Welford's algorithm).
type Sample struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// N returns the number of observations.
func (s *Sample) N() int64 { return s.n }

// Mean returns the sample mean (0 with no observations).
func (s *Sample) Mean() float64 { return s.mean }

// Min returns the smallest observation.
func (s *Sample) Min() float64 { return s.min }

// Max returns the largest observation.
func (s *Sample) Max() float64 { return s.max }

// Variance returns the unbiased sample variance.
func (s *Sample) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Sample) Stddev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean.
func (s *Sample) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.Stddev() / math.Sqrt(float64(s.n))
}

// LinearFit fits y = a + b*x by least squares and returns (a, b, r2).
// It panics unless len(x) == len(y) >= 2.
func LinearFit(x, y []float64) (a, b, r2 float64) {
	if len(x) != len(y) || len(x) < 2 {
		panic("stats: LinearFit needs two equal-length samples of size >= 2")
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return my, 0, 0
	}
	b = sxy / sxx
	a = my - b*mx
	if syy == 0 {
		return a, b, 1
	}
	r2 = (sxy * sxy) / (sxx * syy)
	return a, b, r2
}

// LogFit fits y = a + b*ln(x) and returns (a, b, r2). All x must be > 0.
// A high r2 with b > 0 is the signature of the paper's O(log n) growth.
func LogFit(x, y []float64) (a, b, r2 float64) {
	lx := make([]float64, len(x))
	for i, v := range x {
		if v <= 0 {
			panic("stats: LogFit needs positive x")
		}
		lx[i] = math.Log(v)
	}
	return LinearFit(lx, y)
}

// Table renders aligned rows of experiment output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if pad := widths[i] - len(c); pad > 0 && i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", pad))
			}
		}
		return sb.String()
	}
	if _, err := fmt.Fprintln(w, line(t.header)); err != nil {
		return err
	}
	var sep []string
	for _, w := range widths {
		sep = append(sep, strings.Repeat("-", w))
	}
	if _, err := fmt.Fprintln(w, line(sep)); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}
