package bnb

import (
	"fmt"
	"sync/atomic"

	"relaxsched/internal/engine"
	"relaxsched/internal/rng"
)

// ParallelOptions configure a concurrent branch-and-bound run.
type ParallelOptions struct {
	// ExecOptions are the shared engine knobs: queue backend and relaxation
	// multiplier, worker count, batching, seeding, and Deadline — a
	// positive Deadline turns the search into an anytime run: at expiry
	// the engine drains gracefully and the Result carries the incumbent
	// found so far, marked Interrupted (finding no leaf before the
	// deadline is an error).
	engine.ExecOptions
	// Budget caps the number of search nodes the run may allocate (>= 1);
	// exceeding it is an error, exactly as in the sequential Run.
	Budget int
}

// unset is the incumbent sentinel: any real leaf cost is below it.
const unset = int64(1) << 62

// parallelSearch is the dynamic-spawning workload over the generic engine —
// Karp–Zhang-style parallel backtracking, the workload with which relaxed
// priority scheduling originated. Expanding a node spawns its surviving
// children; the shared incumbent (an atomic CAS-min) prunes nodes whose
// lower bound is no better than the best leaf seen so far. Because edge
// costs are positive, every ancestor of the optimal leaf has strictly
// smaller cost than any incumbent, so no scheduler relaxation or pruning
// race can discard the optimal path — relaxation only costs extra
// expansions, never the optimum.
//
// Node state does not fit in the queue's int64 value, so nodes live in a
// pre-allocated arena indexed by an atomically-allocated id: the spawning
// worker writes the slot before pushing the id, and the queue's internal
// synchronization orders that write before any pop observes the id.
type parallelSearch struct {
	t     Tree
	nodes []node
	next  atomic.Int64 // arena allocation cursor

	incumbent atomic.Int64
	expanded  atomic.Int64
	pruned    atomic.Int64
	overflow  atomic.Bool // node budget exceeded; run result is invalid
}

func (s *parallelSearch) Frontier(emit func(value, priority int64)) {
	s.nodes[0] = node{hash: rng.Mix64(s.t.Seed), cost: 0, depth: 0}
	s.next.Store(1)
	emit(0, 0)
}

func (s *parallelSearch) TryExecute(ctx *engine.Ctx, value, _ int64) engine.Status {
	nd := s.nodes[value]
	if nd.cost >= s.incumbent.Load() {
		s.pruned.Add(1)
		return engine.Discarded
	}
	if int(nd.depth) == s.t.Depth {
		// Leaf: CAS-min the incumbent.
		//relax:allow spinbound: monotone CAS-min; every failure means another worker lowered the incumbent, and the bound check exits
		for {
			cur := s.incumbent.Load()
			if nd.cost >= cur || s.incumbent.CompareAndSwap(cur, nd.cost) {
				break
			}
		}
		return engine.Discarded
	}
	for c := 0; c < s.t.Branch; c++ {
		childCost := nd.cost + s.t.edgeCost(nd.hash, c)
		if childCost >= s.incumbent.Load() {
			continue // prune at generation
		}
		id := s.next.Add(1) - 1
		if id >= int64(len(s.nodes)) {
			s.overflow.Store(true)
			continue
		}
		s.nodes[id] = node{hash: s.t.childHash(nd.hash, c), cost: childCost, depth: nd.depth + 1}
		ctx.Spawn(id, childCost)
	}
	s.expanded.Add(1)
	return engine.Executed
}

// ParallelRun performs best-first branch-and-bound with worker goroutines
// over a concurrent relaxed queue — the dynamic-task workload the generic
// engine exists for, which the static-DAG runtime could not express. The
// optimum is deterministic (it always equals Optimal's); Expanded and
// Pruned vary with scheduling, and their excess over an exact best-first
// search is this workload's analogue of the paper's extra steps.
func ParallelRun(t Tree, opts ParallelOptions) (Result, error) {
	if t.Depth < 1 || t.Branch < 2 || t.MaxEdgeCost < 1 {
		return Result{}, fmt.Errorf("bnb: invalid tree %+v", t)
	}
	if opts.Budget < 1 {
		return Result{}, fmt.Errorf("bnb: need Budget >= 1, got %d", opts.Budget)
	}
	s := &parallelSearch{t: t, nodes: make([]node, opts.Budget)}
	s.incumbent.Store(unset)

	stats, err := engine.Run(s, engine.Options{ExecOptions: opts.ExecOptions})
	if err != nil {
		return Result{}, fmt.Errorf("bnb: %w", err)
	}
	res := Result{
		Expanded:    s.expanded.Load(),
		Pruned:      s.pruned.Load(),
		Pops:        stats.Popped,
		Interrupted: stats.Interrupted,
	}
	if stats.Failed > 0 {
		return res, fmt.Errorf("bnb: %d tasks quarantined (first: %v)", stats.Failed, stats.Failures[0].Err)
	}
	if s.overflow.Load() {
		return res, fmt.Errorf("bnb: exceeded node budget %d", opts.Budget)
	}
	best := s.incumbent.Load()
	if best >= unset {
		if res.Interrupted {
			return res, fmt.Errorf("bnb: deadline expired before any leaf was reached")
		}
		return res, fmt.Errorf("bnb: no leaf reached")
	}
	res.Best = best
	return res, nil
}
