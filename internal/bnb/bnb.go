// Package bnb implements best-first branch-and-bound under relaxed
// priority scheduling — the workload with which Karp and Zhang [24] first
// observed that schedulers may relax the strict priority order of parallel
// backtracking without losing correctness, cited by the paper as the
// origin of the relaxed-scheduler idea. Unlike the static-DAG incremental
// algorithms, branch-and-bound creates tasks dynamically: expanding a node
// inserts its children into the scheduler, and nodes worse than the
// incumbent are pruned.
//
// The search tree is synthetic and deterministic in the seed: node
// identities are path hashes, and each edge adds a pseudo-random positive
// cost. The goal is the minimum-cost leaf at the configured depth. Since
// edge costs are positive, the node cost is a valid lower bound, so exact
// best-first search expands exactly the nodes with cost below the optimal
// leaf (plus boundary ties); a k-relaxed scheduler may expand more — the
// wasted expansions are this workload's analogue of the paper's extra
// steps.
package bnb

import (
	"fmt"

	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
)

// Tree describes the synthetic branch-and-bound instance.
type Tree struct {
	// Depth of the leaves (root is at depth 0).
	Depth int
	// Branch is the branching factor (>= 2).
	Branch int
	// MaxEdgeCost bounds the per-edge cost (costs are in [1, MaxEdgeCost]).
	MaxEdgeCost int64
	// Seed determines the whole tree.
	Seed uint64
}

// edgeCost returns the deterministic cost of the c-th edge out of the node
// identified by pathHash.
func (t Tree) edgeCost(pathHash uint64, c int) int64 {
	h := rng.Mix64(pathHash ^ (uint64(c+1) * 0x9e3779b97f4a7c15) ^ t.Seed)
	return 1 + int64(h%uint64(t.MaxEdgeCost))
}

// childHash derives the c-th child's identity.
func (t Tree) childHash(pathHash uint64, c int) uint64 {
	return rng.Mix64(pathHash*31 + uint64(c) + 1)
}

// Result summarizes a branch-and-bound run.
type Result struct {
	// Best is the optimal leaf cost found.
	Best int64
	// Expanded counts nodes whose children were generated.
	Expanded int64
	// Pruned counts popped nodes discarded because their bound was not
	// better than the incumbent at pop time.
	Pruned int64
	// Pops = Expanded + Pruned + leaves popped.
	Pops int64
	// Interrupted reports that a deadlined ParallelRun was cut short: Best
	// is then the incumbent at the interruption — the best leaf found so
	// far, an anytime upper bound on the optimum rather than the optimum
	// itself. Always false for sequential runs.
	Interrupted bool
}

// node is the search state carried outside the scheduler, indexed by the
// dense task id the scheduler requires.
type node struct {
	hash  uint64
	cost  int64
	depth int32
}

// Run performs best-first branch-and-bound through the given scheduler.
// budget caps the number of task ids (scheduler slots) the search may
// allocate; exceeding it returns an error. The scheduler must be empty and
// sized for at least budget ids.
func Run(t Tree, s sched.Scheduler, budget int) (Result, error) {
	if t.Depth < 1 || t.Branch < 2 || t.MaxEdgeCost < 1 {
		return Result{}, fmt.Errorf("bnb: invalid tree %+v", t)
	}
	if s.Len() != 0 {
		return Result{}, fmt.Errorf("bnb: scheduler must start empty")
	}
	nodes := make([]node, 0, 1024)
	alloc := func(n node) (int, error) {
		if len(nodes) >= budget {
			return 0, fmt.Errorf("bnb: exceeded node budget %d", budget)
		}
		nodes = append(nodes, n)
		return len(nodes) - 1, nil
	}

	var res Result
	incumbent := int64(1) << 62
	root, err := alloc(node{hash: rng.Mix64(t.Seed), cost: 0, depth: 0})
	if err != nil {
		return res, err
	}
	s.Insert(root, 0)

	for {
		id, _, ok := s.ApproxGetMin()
		if !ok {
			break
		}
		s.DeleteTask(id)
		res.Pops++
		nd := nodes[id]
		if nd.cost >= incumbent {
			res.Pruned++
			continue
		}
		if int(nd.depth) == t.Depth {
			// Leaf: update the incumbent.
			if nd.cost < incumbent {
				incumbent = nd.cost
			}
			continue
		}
		res.Expanded++
		for c := 0; c < t.Branch; c++ {
			childCost := nd.cost + t.edgeCost(nd.hash, c)
			if childCost >= incumbent {
				continue // prune at generation
			}
			cid, err := alloc(node{hash: t.childHash(nd.hash, c), cost: childCost, depth: nd.depth + 1})
			if err != nil {
				return res, err
			}
			s.Insert(cid, childCost)
		}
	}
	if incumbent >= int64(1)<<62 {
		return res, fmt.Errorf("bnb: no leaf reached")
	}
	res.Best = incumbent
	return res, nil
}

// Optimal computes the true optimal leaf cost by exhaustive depth-first
// search with pruning against the running best (exact, independent of any
// scheduler). Use small depths: the worst case is Branch^Depth nodes.
func Optimal(t Tree) int64 {
	best := int64(1) << 62
	var dfs func(hash uint64, cost int64, depth int)
	dfs = func(hash uint64, cost int64, depth int) {
		if cost >= best {
			return
		}
		if depth == t.Depth {
			best = cost
			return
		}
		for c := 0; c < t.Branch; c++ {
			dfs(t.childHash(hash, c), cost+t.edgeCost(hash, c), depth+1)
		}
	}
	dfs(rng.Mix64(t.Seed), 0, 0)
	return best
}
