package bnb

import (
	"testing"
	"testing/quick"

	"relaxsched/internal/multiqueue"
	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
	"relaxsched/internal/spraylist"
)

func smallTree(seed uint64) Tree {
	return Tree{Depth: 8, Branch: 3, MaxEdgeCost: 100, Seed: seed}
}

func TestExactFindsOptimal(t *testing.T) {
	tree := smallTree(1)
	want := Optimal(tree)
	const budget = 1 << 20
	res, err := Run(tree, sched.NewExact(budget), budget)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != want {
		t.Fatalf("best = %d, want %d", res.Best, want)
	}
	if res.Pops != res.Expanded+res.Pruned+leafPops(res) {
		// Pops decompose into expansions, prunes and leaf pops; this holds
		// by construction, so just sanity-check positivity.
		t.Fatalf("inconsistent accounting: %+v", res)
	}
}

func leafPops(r Result) int64 { return r.Pops - r.Expanded - r.Pruned }

func TestRelaxedStillOptimal(t *testing.T) {
	tree := smallTree(2)
	want := Optimal(tree)
	const budget = 1 << 21
	schedulers := map[string]sched.Scheduler{
		"krelaxed16": sched.NewKRelaxed(budget, 16),
		"multiqueue": multiqueue.New(budget, 8, 2, multiqueue.RandomQueue, 5),
		"spraylist":  spraylist.New(budget, 8, 5),
		"batch8":     sched.NewBatch(budget, 8),
	}
	exactRes, err := Run(tree, sched.NewExact(budget), budget)
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range schedulers {
		res, err := Run(tree, s, budget)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Best != want {
			t.Fatalf("%s: best = %d, want %d (relaxation broke correctness)",
				name, res.Best, want)
		}
		// Relaxed runs may waste expansions but only within reason here.
		if res.Expanded < exactRes.Expanded/2 {
			t.Fatalf("%s: expanded %d < half of exact %d?", name, res.Expanded, exactRes.Expanded)
		}
	}
}

func TestRelaxationCausesExtraExpansions(t *testing.T) {
	// With a strongly adversarial scheduler the search expands at least as
	// many nodes as exact best-first (typically more).
	tree := smallTree(3)
	const budget = 1 << 21
	exact, err := Run(tree, sched.NewExact(budget), budget)
	if err != nil {
		t.Fatal(err)
	}
	relaxed, err := Run(tree, sched.NewKRelaxed(budget, 64), budget)
	if err != nil {
		t.Fatal(err)
	}
	if relaxed.Expanded+relaxed.Pruned < exact.Expanded+exact.Pruned {
		t.Fatalf("relaxed did less total work (%d) than exact (%d)?",
			relaxed.Expanded+relaxed.Pruned, exact.Expanded+exact.Pruned)
	}
}

func TestBudgetExceeded(t *testing.T) {
	tree := Tree{Depth: 12, Branch: 4, MaxEdgeCost: 2, Seed: 1}
	// Tiny budget must fail cleanly.
	if _, err := Run(tree, sched.NewExact(16), 16); err == nil {
		t.Fatal("budget overflow not reported")
	}
}

func TestInvalidTrees(t *testing.T) {
	for _, tree := range []Tree{
		{Depth: 0, Branch: 2, MaxEdgeCost: 1},
		{Depth: 2, Branch: 1, MaxEdgeCost: 1},
		{Depth: 2, Branch: 2, MaxEdgeCost: 0},
	} {
		if _, err := Run(tree, sched.NewExact(64), 64); err == nil {
			t.Fatalf("tree %+v accepted", tree)
		}
	}
}

func TestNonEmptySchedulerRejected(t *testing.T) {
	s := sched.NewExact(8)
	s.Insert(0, 0)
	if _, err := Run(smallTree(1), s, 8); err == nil {
		t.Fatal("non-empty scheduler accepted")
	}
}

func TestDeterministicTree(t *testing.T) {
	tree := smallTree(7)
	a, err := Run(tree, sched.NewExact(1<<20), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tree, sched.NewExact(1<<20), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same tree, different runs: %+v vs %+v", a, b)
	}
}

// Property: every scheduler finds the same optimum on random small trees.
func TestOptimalityProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		tree := Tree{
			Depth:       3 + r.Intn(5),
			Branch:      2 + r.Intn(3),
			MaxEdgeCost: 1 + int64(r.Intn(50)),
			Seed:        seed,
		}
		want := Optimal(tree)
		const budget = 1 << 18
		var s sched.Scheduler
		switch r.Intn(3) {
		case 0:
			s = sched.NewKRelaxed(budget, 1+r.Intn(32))
		case 1:
			s = multiqueue.New(budget, 1+r.Intn(8), 2, multiqueue.RandomQueue, seed)
		default:
			s = sched.NewRandomK(budget, 1+r.Intn(32), seed)
		}
		res, err := Run(tree, s, budget)
		return err == nil && res.Best == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBnBExact(b *testing.B) {
	tree := Tree{Depth: 10, Branch: 3, MaxEdgeCost: 100, Seed: 1}
	const budget = 1 << 22
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(tree, sched.NewExact(budget), budget); err != nil {
			b.Fatal(err)
		}
	}
}
