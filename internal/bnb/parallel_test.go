package bnb

import (
	"strings"
	"testing"
	"time"

	"relaxsched/internal/cq"
	"relaxsched/internal/engine"
	"relaxsched/internal/sched"
)

func testTree(seed uint64) Tree {
	return Tree{Depth: 7, Branch: 3, MaxEdgeCost: 50, Seed: seed}
}

func TestParallelRunFindsOptimum(t *testing.T) {
	tree := testTree(7)
	want := Optimal(tree)
	res, err := ParallelRun(tree, ParallelOptions{ExecOptions: engine.ExecOptions{Threads: 4, QueueMultiplier: 2, Seed: 1}, Budget: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != want {
		t.Fatalf("Best = %d, want %d", res.Best, want)
	}
	if res.Expanded < 1 || res.Pops < res.Expanded+res.Pruned {
		t.Fatalf("implausible accounting: %+v", res)
	}
}

func TestParallelRunAcrossBackendsAndBatches(t *testing.T) {
	// Every backend and both batching modes must reach the same optimum;
	// only the wasted expansions may differ.
	tree := testTree(21)
	want := Optimal(tree)
	for _, backend := range cq.Backends() {
		for _, batch := range []int{0, 8, 64} {
			res, err := ParallelRun(tree, ParallelOptions{ExecOptions: engine.ExecOptions{Threads: 4, QueueMultiplier: 2, Backend: backend, BatchSize: batch, Seed: 3}, Budget: 1 << 16})
			if err != nil {
				t.Fatalf("%s/batch%d: %v", backend, batch, err)
			}
			if res.Best != want {
				t.Fatalf("%s/batch%d: Best = %d, want %d", backend, batch, res.Best, want)
			}
		}
	}
}

func TestParallelRunMatchesSequentialOptimum(t *testing.T) {
	// The sequential scheduler-driven search and the parallel engine search
	// must agree on the optimum for several trees.
	for seed := uint64(1); seed <= 5; seed++ {
		tree := testTree(seed)
		seq, err := Run(tree, sched.NewExact(1<<16), 1<<16)
		if err != nil {
			t.Fatal(err)
		}
		par, err := ParallelRun(tree, ParallelOptions{ExecOptions: engine.ExecOptions{Threads: 3, QueueMultiplier: 2, Seed: seed}, Budget: 1 << 16})
		if err != nil {
			t.Fatal(err)
		}
		if par.Best != seq.Best {
			t.Fatalf("seed %d: parallel Best = %d, sequential %d", seed, par.Best, seq.Best)
		}
	}
}

func TestParallelRunSingleThreadNearExact(t *testing.T) {
	// One thread, one queue: pops are exact by priority, so the search is
	// plain best-first. Ties at the pruning boundary may break differently
	// than in the sequential scheduler, so allow a small slack, but the
	// expansion counts must stay in the same ballpark (no relaxation
	// blow-up can occur with an exact queue).
	tree := testTree(9)
	seq, err := Run(tree, sched.NewExact(1<<16), 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ParallelRun(tree, ParallelOptions{ExecOptions: engine.ExecOptions{Threads: 1, QueueMultiplier: 1, Seed: 2}, Budget: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if par.Best != seq.Best {
		t.Fatalf("Best = %d, want %d", par.Best, seq.Best)
	}
	if par.Expanded > seq.Expanded+seq.Expanded/10+8 {
		t.Fatalf("exact single queue expanded %d, sequential %d", par.Expanded, seq.Expanded)
	}
}

func TestParallelRunBudgetExceeded(t *testing.T) {
	tree := testTree(5)
	if _, err := ParallelRun(tree, ParallelOptions{ExecOptions: engine.ExecOptions{Threads: 4, QueueMultiplier: 2, Seed: 1}, Budget: 8}); err == nil {
		t.Fatal("tiny budget accepted")
	}
}

func TestParallelRunInvalidOptions(t *testing.T) {
	tree := testTree(1)
	if _, err := ParallelRun(Tree{}, ParallelOptions{ExecOptions: engine.ExecOptions{Threads: 1, QueueMultiplier: 1}, Budget: 16}); err == nil {
		t.Fatal("invalid tree accepted")
	}
	if _, err := ParallelRun(tree, ParallelOptions{ExecOptions: engine.ExecOptions{Threads: 0, QueueMultiplier: 1}, Budget: 16}); err == nil {
		t.Fatal("Threads 0 accepted")
	}
	if _, err := ParallelRun(tree, ParallelOptions{ExecOptions: engine.ExecOptions{Threads: 1, QueueMultiplier: 0}, Budget: 16}); err == nil {
		t.Fatal("QueueMultiplier 0 accepted")
	}
	if _, err := ParallelRun(tree, ParallelOptions{ExecOptions: engine.ExecOptions{Threads: 1, QueueMultiplier: 1}, Budget: 0}); err == nil {
		t.Fatal("Budget 0 accepted")
	}
	if _, err := ParallelRun(tree, ParallelOptions{ExecOptions: engine.ExecOptions{Threads: 1, QueueMultiplier: 1, Backend: "no-such-queue"}, Budget: 16}); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

// TestParallelRunDeadlineAnytime: a deadlined search over a tree far too
// large to exhaust in time must return promptly with the anytime contract —
// either an incumbent found so far (an upper bound on the optimum, marked
// Interrupted) or the explicit no-leaf-before-deadline error. Near-uniform
// edge costs keep bound pruning weak, so a depth-20 ternary tree (~3.5G
// nodes) can never be exhausted: the deadline is the only way out.
func TestParallelRunDeadlineAnytime(t *testing.T) {
	tree := Tree{Depth: 20, Branch: 3, MaxEdgeCost: 2, Seed: 5}
	start := time.Now()
	res, err := ParallelRun(tree, ParallelOptions{ExecOptions: engine.ExecOptions{Threads: 4, QueueMultiplier: 2, Seed: 11, Deadline: time.Millisecond}, Budget: 2 << 20})
	if d := time.Since(start); d > 30*time.Second {
		t.Fatalf("deadlined run took %v", d)
	}
	if err != nil {
		if !strings.Contains(err.Error(), "deadline") {
			t.Fatalf("unexpected error from deadlined run: %v", err)
		}
		return
	}
	if !res.Interrupted {
		t.Fatal("a 3.5G-node search reported natural completion")
	}
	// Every edge costs at least 1, so any real leaf costs at least Depth.
	if res.Best < int64(tree.Depth) {
		t.Fatalf("interrupted incumbent %d below the depth-%d floor", res.Best, tree.Depth)
	}
}
