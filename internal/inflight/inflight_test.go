package inflight

import (
	"sync"
	"sync/atomic"
	"testing"
	"unsafe"
)

func TestSequentialAccounting(t *testing.T) {
	c := New(2)
	if !c.Quiescent() {
		t.Fatal("fresh counter not quiescent")
	}
	c.Produce(0)
	if c.Quiescent() {
		t.Fatal("quiescent with one live task")
	}
	if c.Live() != 1 {
		t.Fatalf("Live = %d, want 1", c.Live())
	}
	c.Complete(1) // completed by a different worker than the producer
	if !c.Quiescent() {
		t.Fatal("not quiescent after completion")
	}
	c.ProduceN(0, 5)
	c.ProduceN(1, 0)
	if c.Live() != 5 {
		t.Fatalf("Live = %d, want 5", c.Live())
	}
	for i := 0; i < 5; i++ {
		c.Complete(i % 2)
	}
	if !c.Quiescent() {
		t.Fatal("not quiescent after draining")
	}
}

func TestOpenProducerAccounting(t *testing.T) {
	// 2 workers + 2 external producer slots. Quiescent must stay false —
	// even with zero tasks anywhere — until both producers close.
	c := NewOpen(2, 2)
	if c.Quiescent() {
		t.Fatal("quiescent with two open producers")
	}
	if c.Open() != 2 {
		t.Fatalf("Open = %d, want 2", c.Open())
	}
	c.Produce(2) // producer slot 0 streams one task
	c.CloseProducer()
	if c.Quiescent() {
		t.Fatal("quiescent with one open producer and a live task")
	}
	c.Complete(0) // a worker completes the streamed task
	if c.Quiescent() {
		t.Fatal("quiescent with one producer still open")
	}
	c.ProduceN(3, 4) // producer slot 1 streams a batch
	c.CloseProducer()
	if c.Open() != 0 {
		t.Fatalf("Open = %d, want 0", c.Open())
	}
	if c.Quiescent() {
		t.Fatal("quiescent with four live streamed tasks")
	}
	if c.Live() != 4 {
		t.Fatalf("Live = %d, want 4", c.Live())
	}
	for i := 0; i < 4; i++ {
		c.Complete(1)
	}
	if !c.Quiescent() {
		t.Fatal("not quiescent after all producers closed and tasks drained")
	}
}

func TestCloseProducerOverrunPanics(t *testing.T) {
	c := NewOpen(1, 1)
	c.CloseProducer()
	defer func() {
		if recover() == nil {
			t.Fatal("extra CloseProducer did not panic")
		}
	}()
	c.CloseProducer()
}

func TestNewOpenValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative producer count accepted")
		}
	}()
	NewOpen(1, -1)
}

func TestSlotPadding(t *testing.T) {
	// Each slot must span at least two cache lines so the produced and
	// completed words of different workers never share a line.
	if s := unsafe.Sizeof(slot{}); s < 128 {
		t.Fatalf("slot is %d bytes, want >= 128", s)
	}
}

// TestNeverFalselyQuiescent hammers the exact interleaving that breaks
// signed per-worker deltas: worker A holds a live task while workers pass
// other tasks around. Quiescent must never report true before the final
// completion.
func TestNeverFalselyQuiescent(t *testing.T) {
	const (
		workers = 4
		rounds  = 2000
	)
	c := New(workers)
	// One pinned task stays live for the whole test, so Quiescent must
	// report false no matter how the churn below interleaves with its
	// scans. Cross-worker completions (worker w completes what w+1
	// produced) build exactly the per-slot imbalances that fool a signed
	// single-scan counter.
	c.Produce(0)
	var falseQuiescent atomic.Bool
	stop := make(chan struct{})
	scannerDone := make(chan struct{})
	go func() {
		defer close(scannerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if c.Quiescent() {
				falseQuiescent.Store(true)
				return
			}
		}
	}()
	// tokens carries produced tasks to their completers, so completions
	// always follow a matching production (the protocol invariant) while
	// still landing on a different worker's slot most of the time.
	tokens := make(chan struct{}, workers*rounds)
	var workersWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		workersWG.Add(1)
		go func(w int) {
			defer workersWG.Done()
			for i := 0; i < rounds; i++ {
				c.Produce(w)
				tokens <- struct{}{}
				<-tokens
				c.Complete(w)
			}
		}(w)
	}
	workersWG.Wait()
	close(stop)
	<-scannerDone
	if falseQuiescent.Load() {
		t.Fatal("Quiescent reported true while a task was provably live")
	}
	c.Complete(workers - 1)
	if !c.Quiescent() {
		t.Fatal("not quiescent after the pinned task completed")
	}
}
