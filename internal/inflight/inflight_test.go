package inflight

import (
	"sync"
	"sync/atomic"
	"testing"
	"unsafe"
)

func TestSequentialAccounting(t *testing.T) {
	c := New(2)
	c.Produce(0)
	if c.Quiescent() {
		t.Fatal("quiescent with one live task")
	}
	if c.Live() != 1 {
		t.Fatalf("Live = %d, want 1", c.Live())
	}
	c.ProduceN(0, 5)
	c.ProduceN(1, 0)
	if c.Live() != 6 {
		t.Fatalf("Live = %d, want 6", c.Live())
	}
	c.Complete(1) // completed by a different worker than the producer
	for i := 0; i < 5; i++ {
		c.Complete(i % 2)
	}
	if !c.Quiescent() {
		t.Fatal("not quiescent after draining")
	}
	// Quiescence seals: the counter is now terminal.
	if !c.Sealed() {
		t.Fatal("quiescent counter not sealed")
	}
}

func TestFreshClosedWorldSealsImmediately(t *testing.T) {
	// A closed-world counter with nothing produced is quiescent (an empty
	// frontier terminates at once), and the observation is permanent.
	c := New(1)
	if !c.Quiescent() {
		t.Fatal("fresh closed-world counter not quiescent")
	}
	if !c.Sealed() {
		t.Fatal("observed quiescence did not seal")
	}
	if _, ok := c.Register(); ok {
		t.Fatal("Register succeeded on a sealed counter")
	}
}

func TestOpenProducerAccounting(t *testing.T) {
	// 2 workers + 2 pre-registered producers. Quiescent must stay false —
	// even with zero tasks anywhere — until both producers close.
	c := NewOpen(2, 2)
	if c.Quiescent() {
		t.Fatal("quiescent with two open producers")
	}
	if c.Open() != 2 {
		t.Fatalf("Open = %d, want 2", c.Open())
	}
	p0, p1 := c.Attach(), c.Attach()
	p0.Produce() // producer 0 streams one task
	p0.Close()
	if c.Quiescent() {
		t.Fatal("quiescent with one open producer and a live task")
	}
	c.Complete(0) // a worker completes the streamed task
	if c.Quiescent() {
		t.Fatal("quiescent with one producer still open")
	}
	p1.ProduceN(4) // producer 1 streams a batch
	p1.Close()
	if c.Open() != 0 {
		t.Fatalf("Open = %d, want 0", c.Open())
	}
	if c.Quiescent() {
		t.Fatal("quiescent with four live streamed tasks")
	}
	if c.Live() != 4 {
		t.Fatalf("Live = %d, want 4", c.Live())
	}
	produced, completed := c.Tallies()
	if produced != 5 || completed != 1 {
		t.Fatalf("Tallies = (%d, %d), want (5, 1)", produced, completed)
	}
	for i := 0; i < 4; i++ {
		c.Complete(1)
	}
	if !c.Quiescent() {
		t.Fatal("not quiescent after all producers closed and tasks drained")
	}
}

func TestDynamicRegistration(t *testing.T) {
	// Zero producers declared: the counter starts closed-world, a dynamic
	// Register opens it, and sealing permanently refuses late arrivals.
	c := NewOpen(1, 0)
	p, ok := c.Register()
	if !ok {
		t.Fatal("Register failed on an unsealed counter")
	}
	if c.Open() != 1 {
		t.Fatalf("Open = %d, want 1", c.Open())
	}
	if c.Quiescent() {
		t.Fatal("quiescent with a dynamically registered open producer")
	}
	p.Produce()
	p.Close()
	if c.Quiescent() {
		t.Fatal("quiescent with the streamed task live")
	}
	c.Complete(0)
	if !c.Quiescent() {
		t.Fatal("not quiescent after close and drain")
	}
	if _, ok := c.Register(); ok {
		t.Fatal("Register succeeded after seal")
	}
	if !c.Quiescent() {
		t.Fatal("sealed counter stopped reporting quiescent")
	}
}

func TestCloseOverrunPanics(t *testing.T) {
	c := NewOpen(1, 1)
	p := c.Attach()
	p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("extra Close did not panic")
		}
	}()
	p.Close()
}

func TestNewOpenValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative producer count accepted")
		}
	}()
	NewOpen(1, -1)
}

func TestSlotPadding(t *testing.T) {
	// Each slot must span at least two cache lines so the produced and
	// completed words of different workers never share a line.
	if s := unsafe.Sizeof(slot{}); s < 128 {
		t.Fatalf("slot is %d bytes, want >= 128", s)
	}
}

// TestNeverFalselyQuiescent hammers the exact interleaving that breaks
// signed per-worker deltas: worker A holds a live task while workers pass
// other tasks around. Quiescent must never report true before the final
// completion.
func TestNeverFalselyQuiescent(t *testing.T) {
	const (
		workers = 4
		rounds  = 2000
	)
	c := New(workers)
	// One pinned task stays live for the whole test, so Quiescent must
	// report false no matter how the churn below interleaves with its
	// scans. Cross-worker completions (worker w completes what w+1
	// produced) build exactly the per-slot imbalances that fool a signed
	// single-scan counter.
	c.Produce(0)
	var falseQuiescent atomic.Bool
	stop := make(chan struct{})
	scannerDone := make(chan struct{})
	go func() {
		defer close(scannerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if c.Quiescent() {
				falseQuiescent.Store(true)
				return
			}
		}
	}()
	// tokens carries produced tasks to their completers, so completions
	// always follow a matching production (the protocol invariant) while
	// still landing on a different worker's slot most of the time.
	tokens := make(chan struct{}, workers*rounds)
	var workersWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		workersWG.Add(1)
		go func(w int) {
			defer workersWG.Done()
			for i := 0; i < rounds; i++ {
				c.Produce(w)
				tokens <- struct{}{}
				<-tokens
				c.Complete(w)
			}
		}(w)
	}
	workersWG.Wait()
	close(stop)
	<-scannerDone
	if falseQuiescent.Load() {
		t.Fatal("Quiescent reported true while a task was provably live")
	}
	c.Complete(workers - 1)
	if !c.Quiescent() {
		t.Fatal("not quiescent after the pinned task completed")
	}
}

// TestRegisterSealRace races dynamic registrations against termination
// scans: every registration must either succeed — and then its stream is
// fully served before any true Quiescent — or fail against a sealed
// counter. A registration that succeeds after a seal, or a seal that lands
// while a registered producer still has live work, is a protocol violation.
func TestRegisterSealRace(t *testing.T) {
	const attempts = 2000
	for round := 0; round < 20; round++ {
		c := NewOpen(1, 0)
		var registered, served atomic.Int64
		var violation atomic.Bool
		var wg sync.WaitGroup
		// Scanner: a worker polling for termination, completing any tasks
		// it can see (Live > 0 means a producer's push landed).
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if c.Live() > 0 {
					c.Complete(0)
					served.Add(1)
					continue
				}
				if c.Quiescent() {
					return
				}
			}
		}()
		// Registrars: hammer Register; each success produces one task and
		// closes. After the first failure the counter must be sealed.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < attempts; i++ {
				p, ok := c.Register()
				if !ok {
					if !c.Sealed() {
						violation.Store(true)
					}
					return
				}
				registered.Add(1)
				p.Produce()
				p.Close()
			}
		}()
		wg.Wait()
		if violation.Load() {
			t.Fatal("Register failed on an unsealed counter")
		}
		if !c.Sealed() {
			t.Fatal("counter not sealed after scanner exit")
		}
		if served.Load() != registered.Load() {
			t.Fatalf("round %d: %d registered streams, %d served — the seal abandoned live work",
				round, registered.Load(), served.Load())
		}
	}
}

// TestSlotRecycling churns 10k register/close cycles: every Close must
// return its slot to the free stack and the next Register must reuse it,
// so the RCU slot list stays at the peak number of *concurrently* open
// producers instead of growing per registration, and the monotone tallies
// survive the recycling (the final seal still balances).
func TestSlotRecycling(t *testing.T) {
	c := New(1)
	const cycles = 10000
	var produced int64
	for i := 0; i < cycles; i++ {
		p, ok := c.Register()
		if !ok {
			t.Fatalf("cycle %d: register failed before seal", i)
		}
		p.Produce()
		produced++
		p.Close()
	}
	if got := len(*c.prods.Load()); got != 1 {
		t.Fatalf("slot list grew to %d entries over %d sequential register/close cycles, want 1 recycled slot", got, cycles)
	}
	// Drain the producer-born tasks through the worker slot and seal.
	for i := int64(0); i < produced; i++ {
		c.Complete(0)
	}
	if !c.Quiescent() {
		t.Fatal("counter not quiescent after all recycled producers closed and drained")
	}

	// Concurrent churn: the list may grow to the number of goroutines, but
	// no further.
	c2 := New(1)
	const workers, perWorker = 8, 1250
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				p, ok := c2.Register()
				if !ok {
					t.Error("register failed before seal")
					return
				}
				p.Close()
			}
		}()
	}
	wg.Wait()
	if got := len(*c2.prods.Load()); got > workers {
		t.Fatalf("slot list grew to %d entries with at most %d producers open at once", got, workers)
	}
	if !c2.Quiescent() {
		t.Fatal("counter not quiescent after concurrent churn")
	}
}

// TestRecycledSlotKeepsCounting checks the tally-transfer invariant: a
// recycled slot's produced count is the sum over every producer generation
// that used it, and Quiescent stays false until the whole sum is drained.
func TestRecycledSlotKeepsCounting(t *testing.T) {
	c := New(1)
	p1, _ := c.Register()
	p1.ProduceN(3)
	p1.Close()
	p2, _ := c.Register()
	if p2.s != p1.s {
		t.Fatal("second register did not recycle the closed producer's slot")
	}
	p2.ProduceN(2)
	p2.Close()
	for i := 0; i < 5; i++ {
		if c.Quiescent() {
			t.Fatalf("quiescent with %d tasks undrained", 5-i)
		}
		c.Complete(0)
	}
	if !c.Quiescent() {
		t.Fatal("not quiescent after draining both generations")
	}
}
