// Package inflight provides the termination-detection counter shared by the
// parallel runtimes (core.ParallelRun, sssp.ParallelWith).
//
// A relaxed concurrent queue cannot signal "done": Pop reporting empty is
// inherently racy against in-flight pushers, so workers must track how many
// produced tasks have not yet been fully processed. A single global atomic
// counter works but becomes the dominant cache-line hot-spot: every push and
// every pop of every worker bounces the same line. Counter eliminates the
// contention by giving each worker its own cache-padded slot, written only
// by that worker; the cross-worker sum-scan happens only when a worker sees
// an apparently empty queue, which is rare on the hot path.
//
// A naive signed per-worker delta (producer increments its slot, consumer
// decrements its own) admits a classic false-termination race: a scan can
// read one slot before a production and another slot after the matching
// consumption and see a zero sum while work is live. Counter therefore
// keeps two monotonically non-decreasing tallies per slot — produced and
// completed — and Quiescent scans completed before produced. Monotonicity
// makes that double scan safe: each completed read is a lower bound at scan
// time t0 (the instant between the two scans), each produced read an upper
// bound at t0, and completed <= produced always holds globally, so
// sum(completed reads) == sum(produced reads) forces both to equal the true
// totals at t0 — a consistent instant with no live task. Since new tasks
// are only produced while processing a live one, none can appear afterwards
// except through queues the caller has already observed empty.
//
// # Open systems: external producers
//
// The closed-world argument above assumes tasks are only born while a
// worker processes a live one. Streaming executions break that: external
// producers push tasks from outside the worker set at arbitrary times.
// NewOpen extends the counter with producer slots (tally-only: producers
// record Produce, never Complete) and an open-producer count, initialized
// to the declared producer total and decremented by CloseProducer.
//
// Quiescent reads the open count before the double scan, which is what
// keeps the proof intact: open == 0 means every producer's final Produce
// happened before its CloseProducer, which happened before this load, so
// the monotone produced tallies scanned afterwards already include every
// externally born task — the system is closed-world again from the load
// onward, and the original argument applies unchanged. (Reading it last
// would admit a race: a producer could push between the produced scan and
// the open-count read.)
package inflight

import "sync/atomic"

// slot holds one worker's monotone tallies, padded to its own cache lines
// so neighbouring workers never false-share.
type slot struct {
	produced  atomic.Int64
	completed atomic.Int64
	_         [112]byte // pad the 16 byte payload to two 64-byte lines
}

// Counter tracks produced-versus-completed tasks across a fixed set of
// workers, plus (for open systems) a fixed set of external producers. The
// zero value is unusable; construct with New or NewOpen.
type Counter struct {
	slots []slot
	// open counts external producers that have not yet called CloseProducer.
	// It sits on its own padded line: Quiescent loads it on every scan, and
	// it must not false-share with any tally slot.
	_    [64]byte
	open atomic.Int64
	_    [56]byte
}

// New returns a closed-world counter with one padded slot per worker
// (workers >= 1): no external producers, Quiescent is the pure double scan.
func New(workers int) *Counter {
	return NewOpen(workers, 0)
}

// NewOpen returns a counter for an open system: workers worker slots
// (indices [0, workers)) followed by producers external producer slots
// (indices [workers, workers+producers)), with the open-producer count
// initialized to producers. Producer slots are tally-only — the tasks they
// Produce are Completed by worker slots — and Quiescent stays false until
// every declared producer has called CloseProducer.
func NewOpen(workers, producers int) *Counter {
	if workers < 1 {
		panic("inflight: need at least one worker")
	}
	if producers < 0 {
		panic("inflight: negative producer count")
	}
	c := &Counter{slots: make([]slot, workers+producers)}
	c.open.Store(int64(producers))
	return c
}

// Produce records that worker w created one task. It must be called before
// the task becomes visible to other workers (i.e. before the push).
func (c *Counter) Produce(w int) {
	c.slots[w].produced.Add(1)
}

// ProduceN records n tasks created by worker w, n >= 0.
func (c *Counter) ProduceN(w int, n int64) {
	if n > 0 {
		c.slots[w].produced.Add(n)
	}
}

// Complete records that worker w finished processing one task. It must be
// called after every task the processing produced has been recorded with
// Produce.
func (c *Counter) Complete(w int) {
	c.slots[w].completed.Add(1)
}

// CloseProducer records that one external producer will produce no more
// tasks. It must be called after the producer's final Produce, exactly once
// per declared producer; it panics if called more times than NewOpen
// declared.
func (c *Counter) CloseProducer() {
	if c.open.Add(-1) < 0 {
		panic("inflight: CloseProducer without an open producer")
	}
}

// Open returns the number of external producers not yet closed.
func (c *Counter) Open() int64 { return c.open.Load() }

// Quiescent reports whether every producer has closed and every produced
// task has been completed. A true result is definitive (see the package
// comment for the double-scan argument and why the open-producer count is
// read first); a false result may be transient and callers should re-poll.
func (c *Counter) Quiescent() bool {
	if c.open.Load() != 0 {
		return false
	}
	var completed int64
	for i := range c.slots {
		completed += c.slots[i].completed.Load()
	}
	var produced int64
	for i := range c.slots {
		produced += c.slots[i].produced.Load()
	}
	return completed == produced
}

// Live returns a racy snapshot of produced-minus-completed tasks. For
// diagnostics only; termination decisions must use Quiescent.
func (c *Counter) Live() int64 {
	var live int64
	for i := range c.slots {
		live += c.slots[i].produced.Load() - c.slots[i].completed.Load()
	}
	return live
}

// Tallies returns racy snapshots of the global produced and completed
// sums. For diagnostics only.
func (c *Counter) Tallies() (produced, completed int64) {
	for i := range c.slots {
		produced += c.slots[i].produced.Load()
		completed += c.slots[i].completed.Load()
	}
	return produced, completed
}

// Progress returns a racy monotone progress measure: the sum of every
// produced and completed tally. It only ever grows, and it grows exactly
// when a task is born or finishes — re-insertion churn (a popped task
// pushed back unchanged) moves neither tally, so a flat Progress over time
// means the system is doing no real work. Stall watchdogs key off this.
func (c *Counter) Progress() int64 {
	var sum int64
	for i := range c.slots {
		sum += c.slots[i].produced.Load() + c.slots[i].completed.Load()
	}
	return sum
}
