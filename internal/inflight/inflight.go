// Package inflight provides the termination-detection counter shared by the
// parallel runtimes (core.ParallelRun, sssp.ParallelWith).
//
// A relaxed concurrent queue cannot signal "done": Pop reporting empty is
// inherently racy against in-flight pushers, so workers must track how many
// produced tasks have not yet been fully processed. A single global atomic
// counter works but becomes the dominant cache-line hot-spot: every push and
// every pop of every worker bounces the same line. Counter eliminates the
// contention by giving each worker its own cache-padded slot, written only
// by that worker; the cross-worker sum-scan happens only when a worker sees
// an apparently empty queue, which is rare on the hot path.
//
// A naive signed per-worker delta (producer increments its slot, consumer
// decrements its own) admits a classic false-termination race: a scan can
// read one slot before a production and another slot after the matching
// consumption and see a zero sum while work is live. Counter therefore
// keeps two monotonically non-decreasing tallies per slot — produced and
// completed — and Quiescent scans completed before produced. Monotonicity
// makes that double scan safe: each completed read is a lower bound at scan
// time t0 (the instant between the two scans), each produced read an upper
// bound at t0, and completed <= produced always holds globally, so
// sum(completed reads) == sum(produced reads) forces both to equal the true
// totals at t0 — a consistent instant with no live task. Since new tasks
// are only produced while processing a live one, none can appear afterwards
// except through queues the caller has already observed empty.
package inflight

import "sync/atomic"

// slot holds one worker's monotone tallies, padded to its own cache lines
// so neighbouring workers never false-share.
type slot struct {
	produced  atomic.Int64
	completed atomic.Int64
	_         [112]byte // pad the 16 byte payload to two 64-byte lines
}

// Counter tracks produced-versus-completed tasks across a fixed set of
// workers. The zero value is unusable; construct with New.
type Counter struct {
	slots []slot
}

// New returns a counter with one padded slot per worker (workers >= 1).
func New(workers int) *Counter {
	if workers < 1 {
		panic("inflight: need at least one worker")
	}
	return &Counter{slots: make([]slot, workers)}
}

// Produce records that worker w created one task. It must be called before
// the task becomes visible to other workers (i.e. before the push).
func (c *Counter) Produce(w int) {
	c.slots[w].produced.Add(1)
}

// ProduceN records n tasks created by worker w, n >= 0.
func (c *Counter) ProduceN(w int, n int64) {
	if n > 0 {
		c.slots[w].produced.Add(n)
	}
}

// Complete records that worker w finished processing one task. It must be
// called after every task the processing produced has been recorded with
// Produce.
func (c *Counter) Complete(w int) {
	c.slots[w].completed.Add(1)
}

// Quiescent reports whether every produced task has been completed. A true
// result is definitive (see the package comment for the double-scan
// argument); a false result may be transient and callers should re-poll.
func (c *Counter) Quiescent() bool {
	var completed int64
	for i := range c.slots {
		completed += c.slots[i].completed.Load()
	}
	var produced int64
	for i := range c.slots {
		produced += c.slots[i].produced.Load()
	}
	return completed == produced
}

// Live returns a racy snapshot of produced-minus-completed tasks. For
// diagnostics only; termination decisions must use Quiescent.
func (c *Counter) Live() int64 {
	var live int64
	for i := range c.slots {
		live += c.slots[i].produced.Load() - c.slots[i].completed.Load()
	}
	return live
}
