// Package inflight provides the termination-detection counter shared by the
// parallel runtimes (internal/engine and everything built on it).
//
// A relaxed concurrent queue cannot signal "done": Pop reporting empty is
// inherently racy against in-flight pushers, so workers must track how many
// produced tasks have not yet been fully processed. A single global atomic
// counter works but becomes the dominant cache-line hot-spot: every push and
// every pop of every worker bounces the same line. Counter eliminates the
// contention by giving each worker its own cache-padded slot, written only
// by that worker; the cross-worker sum-scan happens only when a worker sees
// an apparently empty queue, which is rare on the hot path.
//
// A naive signed per-worker delta (producer increments its slot, consumer
// decrements its own) admits a classic false-termination race: a scan can
// read one slot before a production and another slot after the matching
// consumption and see a zero sum while work is live. Counter therefore
// keeps two monotonically non-decreasing tallies per slot — produced and
// completed — and Quiescent scans completed before produced. Monotonicity
// makes that double scan safe: each completed read is a lower bound at scan
// time t0 (the instant between the two scans), each produced read an upper
// bound at t0, and completed <= produced always holds globally, so
// sum(completed reads) == sum(produced reads) forces both to equal the true
// totals at t0 — a consistent instant with no live task. Since new tasks
// are only produced while processing a live one, none can appear afterwards
// except through queues the caller has already observed empty.
//
// # Open systems: dynamic external producers
//
// The closed-world argument above assumes tasks are only born while a
// worker processes a live one. Streaming executions break that: external
// producers push tasks from outside the worker set at arbitrary times, and
// — since this package learned dynamic registration — may come into
// existence at arbitrary times too. The producer-side state lives in one
// atomic word with three fields:
//
//	bit 0        sealed    — termination has been observed; final
//	bits 1..31   open      — producers registered but not yet closed
//	bits 32..63  registered — producers ever registered (monotone)
//
// Register CASes open+1 and registered+1 in one step (failing permanently
// once sealed), appends a fresh tally slot to an immutable producer-slot
// list (RCU: readers load an atomic pointer, writers copy-append under a
// mutex), and hands the producer its slot. Producer slots are tally-only —
// the tasks they Produce are Completed by worker slots — and a producer's
// Close decrements open after its final Produce.
//
// Quiescent loads the state word first: sealed short-circuits true, open
// != 0 short-circuits false. Open == 0 means every registered producer's
// final Produce happened before its Close, which happened before this
// load, so the monotone produced tallies scanned afterwards already
// include every externally born task — the system is closed-world again
// from the load onward, and the double-scan argument applies unchanged.
// (The producer-slot list is loaded after the state word; a slot is
// published before its producer's first Produce, which precedes that
// producer's Close, which precedes the load — so the list covers every
// producer that ever produced.)
//
// The scan alone is not enough once producers are dynamic: "quiescent now"
// can be invalidated a nanosecond later by a fresh Register, and workers
// that act on a stale true would abandon a live stream. Sealing closes
// that race: after a successful double scan, Quiescent CASes the sealed
// bit onto the exact state word it loaded before scanning. If any
// registration happened since the load, the monotone registered field has
// changed, the CAS fails, and the scan re-polls — the monotonicity is
// precisely what defeats the ABA where a producer registers, streams,
// closes and drains between load and CAS, restoring open == 0 with tallies
// this scan never saw (completed == produced could then hold again while
// the scan's member sums are stale). Once sealed, Quiescent is true
// forever and Register fails forever: termination is a stable property,
// and the engine's NewProducer-after-termination turns into a clean error
// instead of a stranded stream.
package inflight

import (
	"sync"
	"sync/atomic"
)

const (
	sealedBit = uint64(1)
	openShift = 1
	openMask  = uint64(1)<<31 - 1
	regShift  = 32
)

// openCount extracts the open-producer field of a state word.
func openCount(st uint64) int64 { return int64(st >> openShift & openMask) }

// slot holds one tally pair, padded to its own cache lines so neighbouring
// workers never false-share.
type slot struct {
	produced  atomic.Int64
	completed atomic.Int64
	_         [112]byte // pad the 16 byte payload to two 64-byte lines
}

// Counter tracks produced-versus-completed tasks across a fixed set of
// workers, plus (for open systems) a dynamic set of external producers.
// The zero value is unusable; construct with New or NewOpen.
type Counter struct {
	slots []slot
	_     [40]byte // close out the slots header's line
	// state is the packed sealed/open/registered word (see package
	// comment). Own padded line: Quiescent loads it on every scan, and it
	// must not false-share with any tally slot.
	state atomic.Uint64
	_     [56]byte
	// mu serializes producer-slot appends and the free stack; prods is the
	// RCU snapshot the scan reads without locking. free holds the slots of
	// closed producers awaiting reuse: a slot's tallies are monotone
	// aggregates (they stay in prods and keep counting across producer
	// generations), so recycling the slot for the next Attach/Register is
	// safe and keeps churning register/close cycles from growing the list
	// without bound.
	mu    sync.Mutex
	prods atomic.Pointer[[]*slot]
	free  []*slot
	_     [24]byte
}

// New returns a closed-world counter with one padded slot per worker
// (workers >= 1): no external producers, Quiescent is the pure double scan.
func New(workers int) *Counter {
	return NewOpen(workers, 0)
}

// NewOpen returns a counter for an open system with workers worker slots
// (indices [0, workers)) and producers pre-registered external producers:
// the open and registered counts start at producers, and the first
// producers Attach calls claim those registrations without touching the
// state word. Quiescent stays false until every pre-registered producer
// has been attached and closed. Producers registered later with Register
// extend the open set dynamically.
func NewOpen(workers, producers int) *Counter {
	if workers < 1 {
		panic("inflight: need at least one worker")
	}
	if producers < 0 {
		panic("inflight: negative producer count")
	}
	c := &Counter{slots: make([]slot, workers)}
	c.state.Store(uint64(producers)<<openShift | uint64(producers)<<regShift)
	empty := make([]*slot, 0)
	c.prods.Store(&empty)
	return c
}

// attach hands out a producer slot: a recycled one from the free stack
// when a closed producer left one behind, else a fresh slot published into
// the RCU list. Recycled slots are already in the list — their tallies
// simply keep accumulating for the new producer.
func (c *Counter) attach() *ProducerSlot {
	c.mu.Lock()
	if n := len(c.free); n > 0 {
		s := c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
		c.mu.Unlock()
		return &ProducerSlot{c: c, s: s}
	}
	s := &slot{}
	old := *c.prods.Load()
	list := make([]*slot, len(old)+1)
	copy(list, old)
	list[len(old)] = s
	c.prods.Store(&list)
	c.mu.Unlock()
	return &ProducerSlot{c: c, s: s}
}

// Attach claims one of the registrations declared to NewOpen: the caller
// guarantees fewer Attach calls than the declared producer count (the
// engine tracks this under its own lock). The producer's open slot was
// counted at construction, so the system cannot have sealed — attaching
// only publishes the tally slot.
func (c *Counter) Attach() *ProducerSlot {
	return c.attach()
}

// Register adds a producer dynamically: open and registered increment
// together in one CAS, so a concurrent Quiescent either observes the new
// open producer or fails its seal CAS on the changed registered count. It
// returns ok == false permanently once the counter has sealed — the
// execution terminated — and the caller must not produce.
func (c *Counter) Register() (p *ProducerSlot, ok bool) {
	//relax:allow spinbound: each failed CAS certifies another register/close/seal committed on the state word — system-wide progress
	for {
		st := c.state.Load()
		if st&sealedBit != 0 {
			return nil, false
		}
		if c.state.CompareAndSwap(st, st+1<<openShift+1<<regShift) {
			return c.attach(), true
		}
	}
}

// ProducerSlot is one external producer's handle on the counter: tally
// Produce calls through it before each push, then Close exactly once.
// Like the producer it backs, it is single-goroutine.
type ProducerSlot struct {
	c *Counter
	s *slot
}

// Produce records one task created by this producer. It must be called
// before the task becomes visible to workers (i.e. before the push).
//
//relax:hotpath
func (p *ProducerSlot) Produce() {
	p.s.produced.Add(1)
}

// ProduceN records n tasks created by this producer, n >= 0.
//
//relax:hotpath
func (p *ProducerSlot) ProduceN(n int64) {
	if n > 0 {
		p.s.produced.Add(n)
	}
}

// Close records that this producer will produce no more tasks. It must be
// called after the producer's final Produce, exactly once; it panics if
// the counter has no open producers to close. The slot is recycled: the
// next Attach or Register reuses it instead of growing the slot list.
func (p *ProducerSlot) Close() {
	//relax:allow spinbound: each failed CAS certifies another register/close/seal committed on the state word — system-wide progress
	for {
		st := p.c.state.Load()
		if openCount(st) == 0 {
			panic("inflight: Close without an open producer")
		}
		if p.c.state.CompareAndSwap(st, st-1<<openShift) {
			break
		}
	}
	c := p.c
	c.mu.Lock()
	c.free = append(c.free, p.s)
	c.mu.Unlock()
}

// Produce records that worker w created one task. It must be called before
// the task becomes visible to other workers (i.e. before the push).
//
//relax:hotpath
func (c *Counter) Produce(w int) {
	c.slots[w].produced.Add(1)
}

// ProduceN records n tasks created by worker w, n >= 0.
//
//relax:hotpath
func (c *Counter) ProduceN(w int, n int64) {
	if n > 0 {
		c.slots[w].produced.Add(n)
	}
}

// Complete records that worker w finished processing one task. It must be
// called after every task the processing produced has been recorded with
// Produce.
//
//relax:hotpath
func (c *Counter) Complete(w int) {
	c.slots[w].completed.Add(1)
}

// Open returns the number of registered producers not yet closed.
func (c *Counter) Open() int64 { return openCount(c.state.Load()) }

// Sealed reports whether termination has been observed: Quiescent returned
// true at least once, and every future Register fails.
func (c *Counter) Sealed() bool { return c.state.Load()&sealedBit != 0 }

// Quiescent reports whether every producer has closed and every produced
// task has been completed. A true result is definitive and permanent: the
// counter seals, so no later Register can resurrect the system (see the
// package comment for the double-scan argument, why the state word is read
// first, and why sealing CASes against the monotone registered count). A
// false result may be transient and callers should re-poll.
func (c *Counter) Quiescent() bool {
	st := c.state.Load()
	if st&sealedBit != 0 {
		return true
	}
	if openCount(st) != 0 {
		return false
	}
	prods := *c.prods.Load()
	var completed int64
	for i := range c.slots {
		completed += c.slots[i].completed.Load()
	}
	var produced int64
	for i := range c.slots {
		produced += c.slots[i].produced.Load()
	}
	for _, s := range prods {
		produced += s.produced.Load()
	}
	if completed != produced {
		return false
	}
	if c.state.CompareAndSwap(st, st|sealedBit) {
		return true
	}
	// The seal lost a race: either another scanner sealed (quiescent
	// stands) or a producer registered mid-scan (it does not).
	return c.state.Load()&sealedBit != 0
}

// Live returns a racy snapshot of produced-minus-completed tasks. For
// diagnostics only; termination decisions must use Quiescent.
func (c *Counter) Live() int64 {
	var live int64
	for i := range c.slots {
		live += c.slots[i].produced.Load() - c.slots[i].completed.Load()
	}
	for _, s := range *c.prods.Load() {
		live += s.produced.Load()
	}
	return live
}

// Tallies returns racy snapshots of the global produced and completed
// sums. For diagnostics only.
func (c *Counter) Tallies() (produced, completed int64) {
	for i := range c.slots {
		produced += c.slots[i].produced.Load()
		completed += c.slots[i].completed.Load()
	}
	for _, s := range *c.prods.Load() {
		produced += s.produced.Load()
	}
	return produced, completed
}

// Progress returns a racy monotone progress measure: the sum of every
// produced and completed tally. It only ever grows, and it grows exactly
// when a task is born or finishes — re-insertion churn (a popped task
// pushed back unchanged) moves neither tally, so a flat Progress over time
// means the system is completing no work. Note that flat Progress does not
// by itself mean stuck: an idle open system (parked workers, quiet
// producers, zero live tasks) is flat and healthy. Stall watchdogs key off
// Progress and Live together.
func (c *Counter) Progress() int64 {
	var sum int64
	for i := range c.slots {
		sum += c.slots[i].produced.Load() + c.slots[i].completed.Load()
	}
	for _, s := range *c.prods.Load() {
		sum += s.produced.Load()
	}
	return sum
}
