package epoch

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"relaxsched/internal/rng"
)

// node is the test payload; val doubles as the reuse-race detector field in
// the stress test.
type node struct {
	val int64
}

// drain runs enough retire traffic through s to mature everything retired
// before the call, assuming no other slot is pinned.
func drain(s *Slot[node]) {
	for i := 0; i < grace+1; i++ {
		s.collect(s.dom.tryAdvance())
	}
}

// Retired nodes must come back through Alloc — by pointer identity — once
// the grace period has passed under quiescence.
func TestReuseAfterGrace(t *testing.T) {
	d := NewDomain[node]()
	s := d.Register()
	retired := make(map[*node]bool)
	for i := 0; i < 3*advanceEvery; i++ {
		p := &node{val: int64(i)}
		retired[p] = true
		s.Retire(p)
	}
	drain(s)
	reused := 0
	for i := 0; i < 3*advanceEvery; i++ {
		if retired[s.Alloc()] {
			reused++
		}
	}
	if reused == 0 {
		t.Fatal("no retired node was ever reused after the grace period")
	}
	if d.Epoch() == 0 {
		t.Fatal("global epoch never advanced under quiescent retirement")
	}
}

// A reader pinned at epoch g permits at most one advance (to g+1, which is
// why the grace period is two) and must block any reuse of nodes retired
// after it pinned; Exit releases the dam.
func TestPinnedReaderBlocksReuse(t *testing.T) {
	d := NewDomain[node]()
	reader := d.Register()
	writer := d.Register()

	reader.Enter()
	g0 := d.Epoch()
	victim := &node{val: 7}
	writer.Retire(victim)
	for i := 0; i < 4*advanceEvery; i++ {
		writer.Retire(&node{})
	}
	if g := d.Epoch(); g > g0+1 {
		t.Fatalf("epoch advanced %d -> %d past a pinned reader (max one advance allowed)", g0, g)
	}
	for i := 0; i < 8*advanceEvery; i++ {
		if writer.Alloc() == victim {
			t.Fatal("node retired after the pin was reused while the reader was pinned")
		}
	}

	reader.Exit()
	for i := 0; i < 4*advanceEvery; i++ {
		writer.Retire(&node{})
	}
	if g := d.Epoch(); g == g0 {
		t.Fatal("epoch did not advance after the reader exited")
	}
}

// Close must release a pinned epoch — the worker-death case — so the rest
// of the domain can advance and reuse again.
func TestCloseReleasesPinnedEpoch(t *testing.T) {
	d := NewDomain[node]()
	dying := d.Register()
	writer := d.Register()

	dying.Enter()
	g0 := d.Epoch()
	for i := 0; i < 4*advanceEvery; i++ {
		writer.Retire(&node{})
	}
	stalled := d.Epoch()
	if stalled > g0+1 {
		t.Fatalf("epoch advanced %d -> %d past a pinned slot (max one advance allowed)", g0, stalled)
	}
	dying.Close() // worker dies mid-critical-section
	for i := 0; i < 4*advanceEvery; i++ {
		writer.Retire(&node{})
	}
	if g := d.Epoch(); g <= stalled {
		t.Fatalf("epoch stuck at %d after Close released the pin", g)
	}
}

// Register must reuse Closed slots instead of growing the registry, and the
// recycled slot's free list must carry over to its next owner.
func TestSlotReuseAfterClose(t *testing.T) {
	d := NewDomain[node]()
	s := d.Register()
	victim := &node{val: 3}
	s.Retire(victim)
	drain(s)
	s.Close()

	if n := d.Slots(); n != 1 {
		t.Fatalf("registry holds %d slots, want 1", n)
	}
	s2 := d.Register()
	if s2 != s {
		t.Fatal("Register did not reuse the closed slot")
	}
	if n := d.Slots(); n != 1 {
		t.Fatalf("registry grew to %d slots on reuse", n)
	}
	found := false
	for i := 0; i < 4 && !found; i++ {
		found = s2.Alloc() == victim
	}
	if !found {
		t.Fatal("recycled slot lost its matured free list")
	}
	// With s2 live, a second Register must grow the registry.
	s3 := d.Register()
	if s3 == s2 {
		t.Fatal("Register handed out a slot that is still in use")
	}
	if n := d.Slots(); n != 2 {
		t.Fatalf("registry holds %d slots, want 2", n)
	}
}

// Quiescent retirement — one slot, no pins anywhere — must recycle every
// batch without unbounded buildup: after the pipeline warms up, the number
// of nodes parked in retirement bins stays bounded by a few advance batches.
func TestRetirementUnderQuiescence(t *testing.T) {
	d := NewDomain[node]()
	s := d.Register()
	const (
		total  = 20 * advanceEvery
		window = 4 // live nodes in flight between Alloc and Retire
	)
	allocs := 0
	live := make([]*node, 0, window+1)
	for i := 0; i < total; i++ {
		p := s.Alloc()
		if p.val == 0 { // fresh allocation (reused nodes carry the stamp)
			allocs++
			p.val = 1
		}
		live = append(live, p)
		if len(live) > window {
			old := live[0]
			live = live[:copy(live, live[1:])]
			s.Retire(old)
		}
	}
	// The steady-state pipeline holds at most bins*advanceEvery nodes, so
	// fresh allocations must flatline well below the total.
	if allocs > (grace+2)*advanceEvery {
		t.Fatalf("%d of %d iterations allocated fresh nodes; reuse pipeline never matured", allocs, total)
	}
}

// Concurrent advance/retire/reuse under -race: readers pin and dereference
// nodes published in shared cells while writers swap them out, retire them
// and reuse matured ones (rewriting their fields). The race detector
// certifies the grace period: a reused node's reinitialization must never
// race a pinned reader's dereference.
func TestConcurrentAdvanceRetireReuse(t *testing.T) {
	const (
		workers = 8
		cells   = 16
		iters   = 20000
	)
	d := NewDomain[node]()
	var shared [cells]atomic.Pointer[node]
	for i := range shared {
		shared[i].Store(&node{val: int64(i)})
	}
	var sum atomic.Int64 // consume reads so they cannot be elided
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := d.Register()
			defer s.Close()
			for i := 0; i < iters; i++ {
				cell := &shared[(w*31+i)%cells]
				if (w+i)%3 == 0 {
					// Writer: publish a (possibly reused) node, retire the
					// displaced one.
					n := s.Alloc()
					n.val = int64(w*iters + i)
					if old := cell.Swap(n); old != nil {
						s.Retire(old)
					}
				} else {
					// Reader: dereference under pin.
					s.Enter()
					if p := cell.Load(); p != nil {
						sum.Add(p.val)
					}
					s.Exit()
				}
			}
		}(w)
	}
	wg.Wait()
	if d.Epoch() == 0 {
		t.Fatal("global epoch never advanced during the stress run")
	}
}

// Injected worker death under seeded chaos: workers pin, stall inside
// critical sections, retire and reuse concurrently, and a doomed subset
// dies at a seeded point — deliberately while pinned, the worst case. The
// domain must survive the carnage: Close releases every dead pin so the
// epoch keeps advancing for whoever remains, and the registry reuses the
// abandoned slots instead of growing. This is the memory-reclamation half
// of the engine's fault model — a worker killed mid-operation (see
// internal/fault) must never dam reclamation for the survivors.
func TestInjectedDeathMidChaos(t *testing.T) {
	const (
		workers = 8
		cells   = 16
		iters   = 4000
	)
	d := NewDomain[node]()
	var shared [cells]atomic.Pointer[node]
	for i := range shared {
		shared[i].Store(&node{val: int64(i)})
	}
	var sum atomic.Int64 // consume reads so they cannot be elided
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := d.Register()
			r := rng.New(uint64(w)*0x9e3779b97f4a7c15 + 99)
			deathAt := -1
			if w%2 == 0 {
				deathAt = iters/4 + int(r.Uint64()%uint64(iters/2))
			}
			for i := 0; i < iters; i++ {
				if i == deathAt {
					// Injected death mid-critical-section: pin, stall as if
					// preempted, then die without ever calling Exit.
					s.Enter()
					time.Sleep(time.Duration(r.Uint64()%100) * time.Microsecond)
					s.Close()
					return
				}
				cell := &shared[(w*31+i)%cells]
				if (w+i)%3 == 0 {
					n := s.Alloc()
					n.val = int64(w*iters + i)
					if old := cell.Swap(n); old != nil {
						s.Retire(old)
					}
				} else {
					s.Enter()
					if r.Uint64()%64 == 0 {
						// Stall inside the critical section: the pin must
						// hold the grace period open across the sleep.
						time.Sleep(time.Duration(r.Uint64()%20) * time.Microsecond)
					}
					if p := cell.Load(); p != nil {
						sum.Add(p.val)
					}
					s.Exit()
				}
			}
			s.Close()
		}(w)
	}
	wg.Wait()

	// Every slot is closed now; the registry must not have grown past one
	// slot per worker (late registrants may have reused an early death's
	// slot, so fewer is fine).
	if n := d.Slots(); n > workers {
		t.Fatalf("registry grew to %d slots for %d workers", n, workers)
	}
	// Liveness post-mortem: a fresh slot (recycled from a dead worker) must
	// be able to advance the epoch — no dead slot may still dam the domain.
	post := d.Register()
	defer post.Close()
	if n := d.Slots(); n > workers {
		t.Fatalf("Register grew the registry to %d slots despite %d closed slots", n, workers)
	}
	g0 := d.Epoch()
	for i := 0; i < 4*advanceEvery; i++ {
		post.Retire(&node{val: -1})
	}
	if g := d.Epoch(); g <= g0 {
		t.Fatalf("epoch stuck at %d after all deaths; a closed slot still pins it", g0)
	}
}
