// Package epoch implements epoch-based memory reclamation (EBR) for
// lock-free data structures that want to reuse nodes in place.
//
// Go's garbage collector already rules out use-after-free, so unlike EBR in
// unmanaged languages this package is not a safety mechanism for *freeing* —
// it is a performance mechanism for *reusing*: a node detached from a
// lock-free structure cannot be reinitialized for a new element while some
// racing reader may still dereference its old fields (a data race, and a
// correctness hazard for any field the reader interprets). EBR bounds that
// window. Readers wrap each traversal in a critical section (Slot.Enter /
// Slot.Exit); writers Retire detached nodes; a retired node returns to its
// slot's free list — and becomes eligible for Slot.Alloc — only after a
// grace period of two global-epoch advances, by which point every critical
// section that could have observed it has exited. Anything never reclaimed
// (an abandoned slot's retirement lists, a dropped free list) simply falls
// back to the garbage collector, so no path here can leak unboundedly.
//
// "Are Lock-Free Concurrent Algorithms Practically Wait-Free?" (Alistarh,
// Censor-Hillel & Shavit, STOC 2014) supplies the scheduling argument for
// why this stays cheap in practice: under uniform-ish scheduling, critical
// sections are short and every slot keeps observing the current epoch, so
// the global epoch advances steadily and retirement lists stay small.
//
// # Protocol
//
// A Domain carries a global epoch counter and a grow-only set of
// cache-padded per-worker Slots. A reader pins its slot to the current
// global epoch on Enter and unpins on Exit. The epoch advances (by one)
// only when every pinned slot has observed the current value, so at global
// epoch g+2 no reader can still be inside a critical section that started
// at epoch g. Retired nodes are tagged with the epoch at retirement and
// move to the free list once the global epoch is two ahead of the tag.
// Advancing is amortized: every advanceEvery-th Retire on a slot attempts
// one advance and collects that slot's matured retirement bins.
//
// The safety argument mirrors the classic three-epoch scheme: a reader can
// only reach nodes that were still linked when it pinned; a node unlinked
// after the pin is retired with a tag no older than the reader's pinned
// epoch, and the reader's pin blocks the two advances needed to mature that
// tag. A reader pinned at a stale epoch blocks all advances (the scan
// demands equality with the current epoch), which is conservative — a
// liveness delay, never a safety violation — and self-heals on Exit.
//
// Slots are single-goroutine: Enter, Exit, Retire, Alloc and Close must all
// be called by the slot's current owner. Close releases any pinned epoch
// (so a dying worker can never stall the domain) and returns the slot to
// the domain for reuse by a future Register; its pending retirement lists
// and free list stay with the slot for the next owner.
package epoch

import (
	"sync"
	"sync/atomic"
)

// advanceEvery is the number of Retires between a slot's amortized
// advance-and-collect attempts. Smaller values shrink the reuse pipeline
// (fewer nodes parked in retirement bins) at the cost of more scans; the
// scan is O(slots), so 64 keeps it well off any hot path.
const advanceEvery = 64

// grace is the number of global-epoch advances between a node's retirement
// and its eligibility for reuse. Two is the classic minimum: one advance
// certifies that no critical section from the retirement epoch is still
// running, the second that none straddling the advance itself is.
const grace = 2

// bins is the number of per-slot retirement bins. Retirement tags within a
// slot span at most grace+1 distinct epochs before the tagging bin matures,
// so three bins indexed by epoch modulo three never collide.
const bins = grace + 1

// Domain is one reclamation scope: a global epoch plus the slots enrolled
// in it. Structures sharing a Domain share grace periods; independent
// structures should use independent Domains so one structure's stalled
// reader cannot delay another's reuse. The zero value is unusable;
// construct with NewDomain.
type Domain[T any] struct {
	// global is the epoch counter. It sits on its own cache line: every
	// Enter loads it, and it must not false-share with the registry below.
	global atomic.Uint64
	_      [56]byte
	// slots is the grow-only registry snapshot read lock-free by advance
	// scans; mu guards growth and slot ownership hand-off.
	slots atomic.Pointer[[]*Slot[T]]
	mu    sync.Mutex
	_     [48]byte // end the registry line so an adjacent Domain can't share it
}

// NewDomain returns an empty reclamation domain.
func NewDomain[T any]() *Domain[T] {
	d := &Domain[T]{}
	d.slots.Store(&[]*Slot[T]{})
	return d
}

// Epoch returns the current global epoch. Diagnostics and tests only.
func (d *Domain[T]) Epoch() uint64 { return d.global.Load() }

// Slots returns the number of slots ever registered (in use or reusable).
// Diagnostics and tests only.
func (d *Domain[T]) Slots() int { return len(*d.slots.Load()) }

// Register returns a slot for one worker, reusing a previously Closed slot
// when one is available and growing the registry otherwise. The returned
// slot must be used by a single goroutine at a time and given back with
// Close when the worker is done.
func (d *Domain[T]) Register() *Slot[T] {
	d.mu.Lock()
	defer d.mu.Unlock()
	cur := *d.slots.Load()
	for _, s := range cur {
		if !s.inUse {
			s.inUse = true
			return s
		}
	}
	s := &Slot[T]{dom: d}
	s.inUse = true
	next := make([]*Slot[T], len(cur)+1)
	copy(next, cur)
	next[len(cur)] = s
	d.slots.Store(&next)
	return s
}

// tryAdvance attempts one global-epoch advance and returns the epoch
// afterwards. The advance succeeds only when every pinned slot has observed
// the current epoch; a failed CAS means another slot advanced first, which
// serves the same purpose.
func (d *Domain[T]) tryAdvance() uint64 {
	g := d.global.Load()
	for _, s := range *d.slots.Load() {
		if st := s.state.Load(); st&1 != 0 && st>>1 != g {
			return g // a pinned slot has not observed g yet
		}
	}
	d.global.CompareAndSwap(g, g+1)
	return d.global.Load()
}

// retireBin is one epoch's worth of a slot's retired nodes.
type retireBin[T any] struct {
	epoch uint64
	items []*T
}

// Slot is one worker's enrollment in a Domain: a published pin state
// scanned by advancers, plus owner-local retirement bins and a free list.
// All methods are single-goroutine (the owner's); only the pin state is
// shared, and it is padded so neighbouring slots never false-share.
type Slot[T any] struct {
	_ [64]byte
	// state is the published pin: epoch<<1|1 while inside a critical
	// section, 0 while not.
	state atomic.Uint64
	_     [56]byte

	dom     *Domain[T]
	retired [bins]retireBin[T]
	free    []*T
	retires int
	inUse   bool     // guarded by dom.mu
	_       [55]byte // round the owner-local tail up to a full line
}

// Enter begins a critical section: every shared-node dereference until the
// matching Exit is protected from concurrent reuse. Critical sections must
// not nest and should be short — a long pin stalls reuse domain-wide.
func (s *Slot[T]) Enter() {
	s.state.Store(s.dom.global.Load()<<1 | 1)
}

// Exit ends the critical section begun by Enter.
func (s *Slot[T]) Exit() {
	s.state.Store(0)
}

// Retire hands a node detached from the shared structure to the
// reclamation pipeline. The caller must have unlinked the node (no new
// reader can reach it) before retiring it; racing readers that still hold
// it are exactly what the grace period waits out. Every advanceEvery-th
// call attempts a global advance and collects matured bins into the free
// list.
func (s *Slot[T]) Retire(p *T) {
	g := s.dom.global.Load()
	b := &s.retired[g%bins]
	if b.epoch != g {
		// The bin last held nodes retired grace+1 or more epochs ago; they
		// matured long since, so recycling the bin frees them first.
		s.free = append(s.free, b.items...)
		clearPtrs(b.items)
		b.items = b.items[:0]
		b.epoch = g
	}
	b.items = append(b.items, p)
	s.retires++
	if s.retires >= advanceEvery {
		s.retires = 0
		s.collect(s.dom.tryAdvance())
	}
}

// collect moves every matured bin (retired at least grace advances ago)
// into the free list.
func (s *Slot[T]) collect(g uint64) {
	for i := range s.retired {
		b := &s.retired[i]
		if len(b.items) > 0 && b.epoch+grace <= g {
			s.free = append(s.free, b.items...)
			clearPtrs(b.items)
			b.items = b.items[:0]
		}
	}
}

// Alloc returns a node for reuse: from the slot's free list when one has
// matured, freshly allocated otherwise. The caller must fully reinitialize
// a reused node — its fields still hold the previous element's values.
func (s *Slot[T]) Alloc() *T {
	if n := len(s.free); n > 0 {
		p := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return p
	}
	return new(T)
}

// Close releases the slot: any pinned epoch is unpinned (a worker dying
// inside a critical section must not stall the domain forever) and the
// slot becomes reusable by a future Register. Pending retirement bins and
// the free list stay with the slot for its next owner; if no owner ever
// comes, the garbage collector reclaims them. The owner must not use the
// slot after Close.
func (s *Slot[T]) Close() {
	s.state.Store(0)
	s.dom.mu.Lock()
	s.inUse = false
	s.dom.mu.Unlock()
}

// clearPtrs nils a pointer slice so the retained backing array does not
// pin freed-and-handed-off nodes against the garbage collector.
func clearPtrs[T any](ps []*T) {
	for i := range ps {
		ps[i] = nil
	}
}
