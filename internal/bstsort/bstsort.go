// Package bstsort implements the paper's second randomized incremental
// algorithm: comparison sorting by binary-search-tree insertion. Keys are
// inserted into an (unbalanced) BST in label order; reading the tree
// in-order yields the sorted sequence. With a random label order the tree
// has expected depth O(log n), and the dependency structure — task j
// depends on its BST ancestors — satisfies p_ij <= C/i (Blelloch et al.
// [10], Section 3), which is what Theorem 3.3 needs.
//
// The dependency DAG records only the parent edge for each node: a task's
// parent is processed only after the grandparent, and so on, so "parent
// processed" is equivalent to "all ancestors processed" in any
// dependency-respecting execution, while keeping the DAG linear in size.
package bstsort

import (
	"fmt"

	"relaxsched/internal/core"
)

// Tree is a binary search tree over the input keys, indexed by label:
// node i corresponds to keys[i].
type Tree struct {
	Keys   []int64
	Left   []int32 // -1 when absent
	Right  []int32
	Parent []int32 // -1 for the root
	Root   int32   // -1 when empty
	size   int
}

// NewTree returns an empty tree shell for the given keys (not yet
// inserted; use Insert).
func NewTree(keys []int64) *Tree {
	n := len(keys)
	t := &Tree{
		Keys:   keys,
		Left:   make([]int32, n),
		Right:  make([]int32, n),
		Parent: make([]int32, n),
		Root:   -1,
	}
	for i := 0; i < n; i++ {
		t.Left[i], t.Right[i], t.Parent[i] = -1, -1, -1
	}
	return t
}

// Len returns the number of inserted nodes.
func (t *Tree) Len() int { return t.size }

// Insert adds label i to the tree by BST search on Keys[i]. Equal keys go
// right. It returns the label of the parent node (-1 for the root).
func (t *Tree) Insert(i int) int {
	if t.Root < 0 {
		t.Root = int32(i)
		t.size++
		return -1
	}
	key := t.Keys[i]
	cur := t.Root
	for {
		if key < t.Keys[cur] {
			if t.Left[cur] < 0 {
				t.Left[cur] = int32(i)
				t.Parent[i] = cur
				t.size++
				return int(cur)
			}
			cur = t.Left[cur]
		} else {
			if t.Right[cur] < 0 {
				t.Right[cur] = int32(i)
				t.Parent[i] = cur
				t.size++
				return int(cur)
			}
			cur = t.Right[cur]
		}
	}
}

// Depth returns the depth of node i (root = 0). Node must be inserted.
func (t *Tree) Depth(i int) int {
	d := 0
	for t.Parent[i] >= 0 {
		i = int(t.Parent[i])
		d++
	}
	return d
}

// Height returns the height of the tree (max depth + 1; 0 when empty).
func (t *Tree) Height() int {
	if t.Root < 0 {
		return 0
	}
	var rec func(node int32) int
	rec = func(node int32) int {
		if node < 0 {
			return 0
		}
		l := rec(t.Left[node])
		r := rec(t.Right[node])
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return rec(t.Root)
}

// InOrder appends the labels in sorted-key order to dst and returns it.
func (t *Tree) InOrder(dst []int) []int {
	// Iterative in-order traversal to avoid deep recursion on adversarial
	// (sorted-input) trees.
	stack := make([]int32, 0, 64)
	cur := t.Root
	for cur >= 0 || len(stack) > 0 {
		for cur >= 0 {
			stack = append(stack, cur)
			cur = t.Left[cur]
		}
		cur = stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		dst = append(dst, int(cur))
		cur = t.Right[cur]
	}
	return dst
}

// SortedKeys returns the keys in sorted order via an in-order traversal.
func (t *Tree) SortedKeys() []int64 {
	labels := t.InOrder(make([]int, 0, t.size))
	out := make([]int64, len(labels))
	for i, l := range labels {
		out[i] = t.Keys[l]
	}
	return out
}

// BuildDAG inserts all keys in label order and returns the parent-edge
// dependency DAG together with the finished tree. The keys slice is
// retained by the tree.
func BuildDAG(keys []int64) (*core.DAG, *Tree) {
	n := len(keys)
	t := NewTree(keys)
	dag := core.NewDAG(n)
	for i := 0; i < n; i++ {
		if parent := t.Insert(i); parent >= 0 {
			dag.AddDep(parent, i)
		}
	}
	return dag, t
}

// Sort sorts keys by BST insertion (the sequential incremental algorithm,
// Algorithm 1 specialized): it builds the tree in index order and reads it
// back in-order. It returns a new slice.
func Sort(keys []int64) []int64 {
	_, t := BuildDAG(keys)
	return t.SortedKeys()
}

// SameShape reports whether two trees over the same keys have identical
// parent/child structure; used to verify that relaxed executions rebuild
// exactly the sequential tree.
func SameShape(a, b *Tree) error {
	if len(a.Keys) != len(b.Keys) {
		return fmt.Errorf("bstsort: different sizes")
	}
	if a.Root != b.Root {
		return fmt.Errorf("bstsort: roots differ: %d vs %d", a.Root, b.Root)
	}
	for i := range a.Keys {
		if a.Left[i] != b.Left[i] || a.Right[i] != b.Right[i] || a.Parent[i] != b.Parent[i] {
			return fmt.Errorf("bstsort: node %d links differ", i)
		}
	}
	return nil
}
