package bstsort

import (
	"sort"
	"testing"
	"testing/quick"

	"relaxsched/internal/core"
	"relaxsched/internal/multiqueue"
	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
)

func randomKeys(n int, seed uint64) []int64 {
	r := rng.New(seed)
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(r.Intn(1 << 30))
	}
	return keys
}

func TestSortSmall(t *testing.T) {
	got := Sort([]int64{5, 1, 4, 2, 3})
	want := []int64{1, 2, 3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestSortEmptyAndSingle(t *testing.T) {
	if len(Sort(nil)) != 0 {
		t.Fatal("empty sort")
	}
	if got := Sort([]int64{42}); len(got) != 1 || got[0] != 42 {
		t.Fatalf("single sort: %v", got)
	}
}

func TestSortWithDuplicates(t *testing.T) {
	got := Sort([]int64{3, 1, 3, 1, 2, 3})
	want := []int64{1, 1, 2, 3, 3, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestSortMatchesStdlib(t *testing.T) {
	check := func(seed uint64) bool {
		keys := randomKeys(int(seed%500)+1, seed)
		got := Sort(keys)
		want := append([]int64(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeStructure(t *testing.T) {
	// keys: 10, 5, 15, 7 -> root 10, left 5, right 15; 7 right child of 5.
	_, tr := BuildDAG([]int64{10, 5, 15, 7})
	if tr.Root != 0 {
		t.Fatalf("root = %d", tr.Root)
	}
	if tr.Left[0] != 1 || tr.Right[0] != 2 {
		t.Fatal("children of root wrong")
	}
	if tr.Right[1] != 3 || tr.Parent[3] != 1 {
		t.Fatal("node 7 misplaced")
	}
	if tr.Depth(3) != 2 || tr.Depth(0) != 0 {
		t.Fatal("depths wrong")
	}
	if tr.Height() != 3 {
		t.Fatalf("height = %d", tr.Height())
	}
}

func TestDAGIsParentEdges(t *testing.T) {
	dag, tr := BuildDAG([]int64{10, 5, 15, 7})
	if err := dag.Validate(); err != nil {
		t.Fatal(err)
	}
	for j := 1; j < dag.N; j++ {
		if len(dag.Preds[j]) != 1 {
			t.Fatalf("node %d has %d preds", j, len(dag.Preds[j]))
		}
		if dag.Preds[j][0] != tr.Parent[j] {
			t.Fatalf("node %d pred %d != parent %d", j, dag.Preds[j][0], tr.Parent[j])
		}
	}
	if len(dag.Preds[0]) != 0 {
		t.Fatal("root has preds")
	}
}

func TestRandomOrderHeightLogarithmic(t *testing.T) {
	const n = 10000
	_, tr := BuildDAG(randomKeys(n, 7))
	// Expected height ~ 2.99 ln n ~ 27.5; allow slack.
	if h := tr.Height(); h > 60 {
		t.Fatalf("height %d too large for random keys", h)
	}
}

func TestSortedInputDegenerates(t *testing.T) {
	// Sorted input produces a path (the well-known BST worst case); this
	// exercises the iterative traversal's stack handling.
	const n = 3000
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i)
	}
	_, tr := BuildDAG(keys)
	if h := tr.Height(); h != n {
		t.Fatalf("height = %d, want %d", h, n)
	}
	sorted := tr.SortedKeys()
	for i := range sorted {
		if sorted[i] != int64(i) {
			t.Fatal("traversal wrong on path tree")
		}
	}
}

func TestRelaxedExecutionRebuildsSameTree(t *testing.T) {
	keys := randomKeys(500, 13)
	dag, seqTree := BuildDAG(keys)
	relTree := NewTree(keys)
	res, err := core.Run(dag, sched.NewKRelaxed(dag.N, 16), core.Options{
		OnProcess: func(label int) { relTree.Insert(label) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Processed != int64(dag.N) {
		t.Fatalf("processed %d", res.Processed)
	}
	if err := SameShape(seqTree, relTree); err != nil {
		t.Fatal(err)
	}
}

func TestRelaxedExecutionUnderMultiQueue(t *testing.T) {
	keys := randomKeys(800, 17)
	dag, seqTree := BuildDAG(keys)
	mq := multiqueue.New(dag.N, 8, 2, multiqueue.RandomQueue, 3)
	relTree := NewTree(keys)
	if _, err := core.Run(dag, mq, core.Options{
		OnProcess: func(label int) { relTree.Insert(label) },
	}); err != nil {
		t.Fatal(err)
	}
	if err := SameShape(seqTree, relTree); err != nil {
		t.Fatal(err)
	}
	sorted := relTree.SortedKeys()
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] > sorted[i] {
			t.Fatal("relaxed-built tree not sorted")
		}
	}
}

func TestExtraStepsSublinear(t *testing.T) {
	// Theorem 3.3 shape check at package level.
	const k = 4
	for _, n := range []int{500, 2000} {
		dag, _ := BuildDAG(randomKeys(n, uint64(n)))
		res, err := core.Run(dag, sched.NewKRelaxed(n, k), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.ExtraSteps > int64(n)/2 {
			t.Fatalf("n=%d: %d extra steps not sublinear", n, res.ExtraSteps)
		}
	}
}

// Property: any dependency-respecting insertion order rebuilds the same
// tree (ancestor-closure argument); we approximate "any" by random
// schedulers.
func TestSameTreeProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 5 + r.Intn(200)
		keys := randomKeys(n, seed)
		dag, seqTree := BuildDAG(keys)
		relTree := NewTree(keys)
		_, err := core.Run(dag, sched.NewRandomK(n, 1+r.Intn(12), seed), core.Options{
			OnProcess: func(label int) { relTree.Insert(label) },
		})
		return err == nil && SameShape(seqTree, relTree) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSort(b *testing.B) {
	keys := randomKeys(10000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sort(keys)
	}
}

func BenchmarkBuildDAG(b *testing.B) {
	keys := randomKeys(10000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildDAG(keys)
	}
}
