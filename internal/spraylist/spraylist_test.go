package spraylist

import (
	"testing"
	"testing/quick"

	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
)

func TestP1IsExact(t *testing.T) {
	const n = 300
	s := New(n, 1, 1)
	for i := n - 1; i >= 0; i-- {
		s.Insert(i, int64(i))
	}
	for want := 0; want < n; want++ {
		task, p, ok := s.ApproxGetMin()
		if !ok || task != want || p != int64(want) {
			t.Fatalf("got (%d,%d,%v), want (%d,%d,true)", task, p, ok, want, want)
		}
		s.DeleteTask(task)
	}
	if !s.Empty() {
		t.Fatal("not empty")
	}
}

func TestDrainsAllTasks(t *testing.T) {
	const n = 2000
	s := New(n, 8, 7)
	for i := 0; i < n; i++ {
		s.Insert(i, int64(rng.Mix64(uint64(i))%100000))
	}
	seen := make([]bool, n)
	for count := 0; count < n; count++ {
		task, _, ok := s.ApproxGetMin()
		if !ok {
			t.Fatalf("empty after %d of %d", count, n)
		}
		if seen[task] {
			t.Fatalf("task %d returned after deletion", task)
		}
		s.DeleteTask(task)
		seen[task] = true
	}
	if _, _, ok := s.ApproxGetMin(); ok {
		t.Fatal("returned task from empty list")
	}
}

func TestSprayStaysNearFront(t *testing.T) {
	// With p threads, sprayed ranks should be small relative to n.
	const n = 10000
	const p = 8
	a := sched.NewAuditor(New(n, p, 3), 4096)
	for i := 0; i < n; i++ {
		a.Insert(i, int64(i))
	}
	for i := 0; i < 2000; i++ {
		task, _, ok := a.ApproxGetMin()
		if !ok {
			break
		}
		a.DeleteTask(task)
	}
	r := a.Report()
	// Spray width is O(log^2 p * jumps); for p=8 it is tiny vs n.
	if r.MaxRank > 200 {
		t.Fatalf("MaxRank = %d, spray wandered too far", r.MaxRank)
	}
	if r.MeanRank < 1 {
		t.Fatalf("MeanRank = %f", r.MeanRank)
	}
}

func TestDecreaseKey(t *testing.T) {
	s := New(10, 4, 5)
	s.Insert(3, 1000)
	s.Insert(4, 500)
	s.DecreaseKey(3, 1)
	if !s.Contains(3) {
		t.Fatal("task 3 lost")
	}
	// With p=4 the spray may overshoot, but over many tries the minimum
	// must be returned at least once.
	found := false
	for i := 0; i < 200 && !found; i++ {
		task, p, _ := s.ApproxGetMin()
		if task == 3 && p == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("minimum never sprayed")
	}
}

func TestDecreaseKeyIncreasePanics(t *testing.T) {
	s := New(2, 2, 1)
	s.Insert(0, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.DecreaseKey(0, 10)
}

func TestMisusePanics(t *testing.T) {
	s := New(4, 2, 1)
	s.Insert(0, 1)
	for name, f := range map[string]func(){
		"dup insert":    func() { s.Insert(0, 2) },
		"delete absent": func() { s.DeleteTask(1) },
		"dk absent":     func() { s.DecreaseKey(1, 0) },
		"p0":            func() { New(1, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestTiesHandled(t *testing.T) {
	s := New(100, 2, 9)
	for i := 0; i < 100; i++ {
		s.Insert(i, 7) // all equal priorities
	}
	count := 0
	for !s.Empty() {
		task, p, _ := s.ApproxGetMin()
		if p != 7 {
			t.Fatalf("priority %d, want 7", p)
		}
		s.DeleteTask(task)
		count++
	}
	if count != 100 {
		t.Fatalf("drained %d", count)
	}
}

// Property: random interleavings of insert/spray/delete never lose tasks.
func TestRandomOpsProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		const n = 120
		s := New(n, 1+r.Intn(16), seed)
		live := map[int]bool{}
		next := 0
		for step := 0; step < 600; step++ {
			switch {
			case next < n && (r.Intn(2) == 0 || len(live) == 0):
				s.Insert(next, int64(r.Intn(100)))
				live[next] = true
				next++
			case len(live) > 0:
				task, _, ok := s.ApproxGetMin()
				if !ok || !live[task] {
					return false
				}
				if r.Intn(3) > 0 {
					s.DeleteTask(task)
					delete(live, task)
				}
			}
			if s.Len() != len(live) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSprayGetMin(b *testing.B) {
	const n = 1 << 16
	s := New(n, 64, 1)
	for i := 0; i < n; i++ {
		s.Insert(i, int64(rng.Mix64(uint64(i))%(1<<30)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ApproxGetMin()
	}
}
