// Package spraylist implements a sequential-model SprayList (Alistarh,
// Kopinsky, Li & Shavit, PPoPP 2015): a skiplist-based relaxed priority
// queue whose DeleteMin performs a randomized "spray" walk instead of
// removing the head, spreading deletions over the O(p log^3 p) smallest
// elements and thereby avoiding the head contention of an exact queue.
//
// This implementation models the data structure in the paper's sequential
// scheduler framework (Section 2): ApproxGetMin sprays to select a small-
// rank element and returns it without deleting; DeleteTask removes an
// element by task id; DecreaseKey is delete + reinsert, which is how a
// skiplist supports it naturally. The spray parameters follow the original
// paper's shape: starting height ~log2(p), uniform jumps of length up to
// max(1, log2(p)) per level, descending two levels per hop.
package spraylist

import (
	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
)

const maxHeight = 32

type node struct {
	prio int64
	task int64
	next []*node
}

// SprayList is a sequential-model spray-based relaxed scheduler.
type SprayList struct {
	head   *node
	height int
	size   int
	p      int // simulated thread count; controls spray width
	rand   *rng.Xoshiro
	nodes  []*node // task -> node, nil when absent
}

// New returns a SprayList for task ids in [0, n), tuned for p simulated
// threads (p >= 1; p = 1 sprays not at all and behaves exactly).
func New(n, p int, seed uint64) *SprayList {
	if p < 1 {
		panic("spraylist: p must be >= 1")
	}
	return &SprayList{
		head:   &node{prio: -1 << 62, task: -1, next: make([]*node, maxHeight)},
		height: 1,
		p:      p,
		rand:   rng.New(seed),
		nodes:  make([]*node, n),
	}
}

// Empty reports whether no tasks are pending.
func (s *SprayList) Empty() bool { return s.size == 0 }

// Len reports the number of pending tasks.
func (s *SprayList) Len() int { return s.size }

// Contains reports whether task is pending.
func (s *SprayList) Contains(task int) bool { return s.nodes[task] != nil }

// less orders nodes by (priority, task id).
func (n *node) less(prio, task int64) bool {
	if n.prio != prio {
		return n.prio < prio
	}
	return n.task < task
}

// randomHeight draws a geometric(1/2) height in [1, maxHeight].
func (s *SprayList) randomHeight() int {
	h := 1
	for h < maxHeight && s.rand.Uint64()&1 == 1 {
		h++
	}
	return h
}

// Insert adds a task with the given priority.
func (s *SprayList) Insert(task int, priority int64) {
	if s.nodes[task] != nil {
		panic("spraylist: Insert of pending task")
	}
	h := s.randomHeight()
	if h > s.height {
		s.height = h
	}
	nn := &node{prio: priority, task: int64(task), next: make([]*node, h)}
	x := s.head
	for lvl := s.height - 1; lvl >= 0; lvl-- {
		for x.next[lvl] != nil && x.next[lvl].less(priority, int64(task)) {
			x = x.next[lvl]
		}
		if lvl < h {
			nn.next[lvl] = x.next[lvl]
			x.next[lvl] = nn
		}
	}
	s.nodes[task] = nn
	s.size++
}

// DeleteTask removes a pending task.
func (s *SprayList) DeleteTask(task int) {
	nn := s.nodes[task]
	if nn == nil {
		panic("spraylist: DeleteTask of absent task")
	}
	x := s.head
	for lvl := s.height - 1; lvl >= 0; lvl-- {
		for x.next[lvl] != nil && x.next[lvl].less(nn.prio, nn.task) {
			x = x.next[lvl]
		}
		if lvl < len(nn.next) && x.next[lvl] == nn {
			x.next[lvl] = nn.next[lvl]
		}
	}
	for s.height > 1 && s.head.next[s.height-1] == nil {
		s.height--
	}
	s.nodes[task] = nil
	s.size--
}

// DecreaseKey lowers a pending task's priority by removing and reinserting.
func (s *SprayList) DecreaseKey(task int, priority int64) {
	nn := s.nodes[task]
	if nn == nil {
		panic("spraylist: DecreaseKey of absent task")
	}
	if priority > nn.prio {
		panic("spraylist: DecreaseKey would increase priority")
	}
	s.DeleteTask(task)
	s.Insert(task, priority)
}

// log2ceil returns ceil(log2(x)) for x >= 1.
func log2ceil(x int) int {
	l := 0
	for v := 1; v < x; v <<= 1 {
		l++
	}
	return l
}

// ApproxGetMin performs a spray walk and returns the landed-on task without
// removing it. With p = 1 it returns the exact minimum.
func (s *SprayList) ApproxGetMin() (int, int64, bool) {
	if s.size == 0 {
		return 0, 0, false
	}
	if s.p == 1 {
		n := s.head.next[0]
		return int(n.task), n.prio, true
	}
	// Cleaner: with probability 1/p an operation behaves exactly, consuming
	// the true front of the list. Without this, low-height nodes pile up in
	// front of the first tall node and become unreachable by sprays; the
	// original SprayList dedicates cleaner threads for the same reason.
	if s.rand.Intn(s.p) == 0 {
		n := s.head.next[0]
		return int(n.task), n.prio, true
	}
	logp := log2ceil(s.p)
	startLvl := logp
	if startLvl > s.height-1 {
		startLvl = s.height - 1
	}
	maxJump := logp
	if maxJump < 1 {
		maxJump = 1
	}
	x := s.head
	lvl := startLvl
	for {
		jumps := s.rand.Intn(maxJump + 1)
		for j := 0; j < jumps; j++ {
			if x == s.head {
				if s.head.next[lvl] == nil {
					break
				}
				x = s.head.next[lvl]
				continue
			}
			if lvl < len(x.next) && x.next[lvl] != nil {
				x = x.next[lvl]
			} else {
				break
			}
		}
		// Descend two levels per hop, but always finish with a walk at
		// level 0 so that height-1 nodes are reachable by sprays.
		if lvl == 0 {
			break
		}
		lvl -= 2
		if lvl < 0 {
			lvl = 0
		}
	}
	if x == s.head {
		x = s.head.next[0]
	}
	// The walk may have landed on a node whose level-0 successor chain is
	// what we want; x is always a valid pending node here.
	return int(x.task), x.prio, true
}

var _ sched.Scheduler = (*SprayList)(nil)
var _ sched.DecreaseKeyer = (*SprayList)(nil)
