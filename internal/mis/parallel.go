package mis

import (
	"relaxsched/internal/core"
	"relaxsched/internal/engine"
)

// ParallelOptions configure a ParallelGreedyMIS or ParallelGreedyColoring
// run. Unlike core.ParallelOptions there is no OnProcess hook: the
// serialized processing callback is owned by the algorithm here (it is the
// membership/coloring update itself).
type ParallelOptions struct {
	// ExecOptions are the shared engine knobs: queue backend and relaxation
	// multiplier, worker count, batching, and seeding.
	engine.ExecOptions
}

// ParallelGreedyMIS runs greedy maximal independent set over the workload
// with worker goroutines on the generic relaxed-execution engine: the
// permutation's dependency DAG rides core.ParallelRun (a static-DAG
// workload), and the membership update — the same misOnProcess closure the
// sequential execution uses — runs in the serialized OnProcess callback, so
// it observes every earlier-ordered neighbour exactly as the sequential
// greedy algorithm does. The resulting set is identical to the sequential
// one — only the wasted work (ExtraSteps) varies with the backend, thread
// count and batch size.
func ParallelGreedyMIS(w *Workload, opts ParallelOptions) ([]bool, core.Result, error) {
	inMIS := make([]bool, w.G.NumNodes)
	res, err := core.ParallelRun(w.DAG, core.ParallelOptions{
		ExecOptions: opts.ExecOptions,
		OnProcess:   misOnProcess(w, inMIS),
	})
	return inMIS, res, err
}

// ParallelGreedyColoring runs greedy (first-fit) coloring over the workload
// with worker goroutines, exactly as ParallelGreedyMIS runs MIS (and with
// the same shared coloringOnProcess closure as the sequential execution):
// the colors match the sequential greedy coloring of the same permutation,
// and only the wasted work varies.
func ParallelGreedyColoring(w *Workload, opts ParallelOptions) ([]int32, core.Result, error) {
	colors := make([]int32, w.G.NumNodes)
	for i := range colors {
		colors[i] = -1
	}
	res, err := core.ParallelRun(w.DAG, core.ParallelOptions{
		ExecOptions: opts.ExecOptions,
		OnProcess:   coloringOnProcess(w, colors),
	})
	return colors, res, err
}
