package mis

import (
	"fmt"

	"relaxsched/internal/core"
)

// ParallelGreedyMIS runs greedy maximal independent set over the workload
// with worker goroutines on the generic relaxed-execution engine: the
// permutation's dependency DAG rides core.ParallelRun (a static-DAG
// workload), and the membership update — the same misOnProcess closure the
// sequential execution uses — runs in the serialized OnProcess callback, so
// it observes every earlier-ordered neighbour exactly as the sequential
// greedy algorithm does. The resulting set is identical to the sequential
// one — only the wasted work (ExtraSteps) varies with the backend, thread
// count and batch size.
//
// opts.OnProcess must be nil; it is owned by the algorithm here.
func ParallelGreedyMIS(w *Workload, opts core.ParallelOptions) ([]bool, core.Result, error) {
	if opts.OnProcess != nil {
		return nil, core.Result{}, fmt.Errorf("mis: OnProcess is owned by ParallelGreedyMIS")
	}
	inMIS := make([]bool, w.G.NumNodes)
	opts.OnProcess = misOnProcess(w, inMIS)
	res, err := core.ParallelRun(w.DAG, opts)
	return inMIS, res, err
}

// ParallelGreedyColoring runs greedy (first-fit) coloring over the workload
// with worker goroutines, exactly as ParallelGreedyMIS runs MIS (and with
// the same shared coloringOnProcess closure as the sequential execution):
// the colors match the sequential greedy coloring of the same permutation,
// and only the wasted work varies.
//
// opts.OnProcess must be nil; it is owned by the algorithm here.
func ParallelGreedyColoring(w *Workload, opts core.ParallelOptions) ([]int32, core.Result, error) {
	if opts.OnProcess != nil {
		return nil, core.Result{}, fmt.Errorf("mis: OnProcess is owned by ParallelGreedyColoring")
	}
	colors := make([]int32, w.G.NumNodes)
	for i := range colors {
		colors[i] = -1
	}
	opts.OnProcess = coloringOnProcess(w, colors)
	res, err := core.ParallelRun(w.DAG, opts)
	return colors, res, err
}
