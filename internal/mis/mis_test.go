package mis

import (
	"testing"
	"testing/quick"

	"relaxsched/internal/graph"
	"relaxsched/internal/multiqueue"
	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
)

func testGraph(n int, seed uint64) *graph.Graph {
	return graph.Random(n, n*3, 10, seed)
}

func TestWorkloadDAGMatchesAdjacency(t *testing.T) {
	g := testGraph(200, 1)
	w := NewWorkload(g, 2)
	if err := w.DAG.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every dependency edge corresponds to a graph edge.
	for j := 0; j < w.DAG.N; j++ {
		vj := w.Perm[j]
		for _, i := range w.DAG.Preds[j] {
			vi := w.Perm[i]
			targets, _ := g.OutEdges(vj)
			found := false
			for _, u := range targets {
				if int(u) == vi {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("dep %d->%d has no graph edge", i, j)
			}
		}
	}
	// Permutation is a bijection.
	seen := make([]bool, g.NumNodes)
	for _, v := range w.Perm {
		if seen[v] {
			t.Fatal("permutation repeats vertex")
		}
		seen[v] = true
	}
}

func TestGreedyMISValidExact(t *testing.T) {
	g := testGraph(500, 3)
	w := NewWorkload(g, 4)
	inMIS, res, err := GreedyMIS(w, sched.NewExact(w.DAG.N))
	if err != nil {
		t.Fatal(err)
	}
	if res.ExtraSteps != 0 {
		t.Fatalf("exact run wasted %d steps", res.ExtraSteps)
	}
	if err := VerifyMIS(g, inMIS); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyMISSameResultUnderRelaxation(t *testing.T) {
	// The greedy MIS for a fixed permutation is unique, so any
	// dependency-respecting execution must produce the same set.
	g := testGraph(400, 5)
	w := NewWorkload(g, 6)
	exactSet, _, err := GreedyMIS(w, sched.NewExact(w.DAG.N))
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range map[string]sched.Scheduler{
		"krelaxed8":  sched.NewKRelaxed(w.DAG.N, 8),
		"multiqueue": multiqueue.New(w.DAG.N, 4, 2, multiqueue.RandomQueue, 7),
	} {
		got, res, err := GreedyMIS(w, s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Processed != int64(w.DAG.N) {
			t.Fatalf("%s: processed %d", name, res.Processed)
		}
		for v := range got {
			if got[v] != exactSet[v] {
				t.Fatalf("%s: MIS differs at vertex %d", name, v)
			}
		}
	}
}

func TestGreedyColoringValidAndDeterministic(t *testing.T) {
	g := testGraph(400, 9)
	w := NewWorkload(g, 10)
	exactColors, _, err := GreedyColoring(w, sched.NewExact(w.DAG.N))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyColoring(g, exactColors); err != nil {
		t.Fatal(err)
	}
	relColors, res, err := GreedyColoring(w, sched.NewKRelaxed(w.DAG.N, 16))
	if err != nil {
		t.Fatal(err)
	}
	if res.ExtraSteps == 0 {
		t.Log("note: no extra steps under k=16 (possible but unusual)")
	}
	for v := range relColors {
		if relColors[v] != exactColors[v] {
			t.Fatalf("coloring differs at vertex %d under relaxation", v)
		}
	}
	// Greedy uses at most maxdeg+1 colors.
	_, maxDeg, _ := graph.DegreeStats(g)
	if NumColors(exactColors) > maxDeg+1 {
		t.Fatalf("%d colors exceed maxdeg+1 = %d", NumColors(exactColors), maxDeg+1)
	}
}

func TestVerifiersRejectInvalid(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	g := b.Build()
	// Adjacent members.
	if err := VerifyMIS(g, []bool{true, true, false}); err == nil {
		t.Fatal("adjacent members accepted")
	}
	// Not maximal: nothing selected.
	if err := VerifyMIS(g, []bool{false, false, false}); err == nil {
		t.Fatal("non-maximal set accepted")
	}
	// Valid: {0, 2}.
	if err := VerifyMIS(g, []bool{true, false, true}); err != nil {
		t.Fatal(err)
	}
	// Monochromatic edge.
	if err := VerifyColoring(g, []int32{0, 0, 1}); err == nil {
		t.Fatal("monochromatic edge accepted")
	}
	// Uncolored vertex.
	if err := VerifyColoring(g, []int32{0, -1, 0}); err == nil {
		t.Fatal("uncolored vertex accepted")
	}
	if err := VerifyColoring(g, []int32{0, 1, 0}); err != nil {
		t.Fatal(err)
	}
}

func TestIsolatedVerticesJoinMIS(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	g := b.Build() // 2, 3 isolated
	w := NewWorkload(g, 3)
	inMIS, _, err := GreedyMIS(w, sched.NewExact(w.DAG.N))
	if err != nil {
		t.Fatal(err)
	}
	if !inMIS[2] || !inMIS[3] {
		t.Fatal("isolated vertices missing from MIS")
	}
	if err := VerifyMIS(g, inMIS); err != nil {
		t.Fatal(err)
	}
}

// Property: MIS and coloring are valid and scheduler-independent across
// random graphs, permutations and schedulers.
func TestGreedyProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 20 + r.Intn(200)
		g := graph.Random(n, n*2, 5, seed)
		w := NewWorkload(g, seed^0xfeed)
		exactSet, _, err := GreedyMIS(w, sched.NewExact(n))
		if err != nil || VerifyMIS(g, exactSet) != nil {
			return false
		}
		relSet, _, err := GreedyMIS(w, sched.NewRandomK(n, 1+r.Intn(10), seed))
		if err != nil {
			return false
		}
		for v := range relSet {
			if relSet[v] != exactSet[v] {
				return false
			}
		}
		colors, _, err := GreedyColoring(w, sched.NewKRelaxed(n, 1+r.Intn(10)))
		return err == nil && VerifyColoring(g, colors) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGreedyMISRelaxed(b *testing.B) {
	g := testGraph(10000, 1)
	w := NewWorkload(g, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := GreedyMIS(w, sched.NewKRelaxed(w.DAG.N, 8)); err != nil {
			b.Fatal(err)
		}
	}
}
