// Package mis implements the greedy iterative graph algorithms analyzed in
// the predecessor paper (Alistarh, Brown, Kopinsky, Nadiradze, PODC 2018
// [3], cited as the origin of the scheduling model): greedy maximal
// independent set and greedy graph coloring over a random vertex
// permutation. The SPAA 2019 paper's conclusion names generalizing its
// techniques to further iterative algorithms as future work; these two
// algorithms slot directly into the same relaxed execution framework
// (package core), because their dependency structure is "a vertex depends
// on its earlier-ordered neighbours".
//
// Tasks are vertices labelled by a random permutation; task j depends on
// task i < j iff the vertices are adjacent. Under an exact scheduler the
// execution reproduces the sequential greedy algorithm; under a k-relaxed
// scheduler the framework counts the wasted steps, which [3] bounds by
// O(poly(k) log^2 n / poly(log log n)) for MIS on random orders.
package mis

import (
	"fmt"

	"relaxsched/internal/core"
	"relaxsched/internal/graph"
	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
)

// Workload is a greedy-iterative task system over a graph: a random
// permutation of the vertices plus the induced dependency DAG.
type Workload struct {
	G *graph.Graph
	// Perm maps label -> vertex id (Perm[i] is the i-th vertex in the
	// random order).
	Perm []int
	// LabelOf maps vertex id -> label.
	LabelOf []int
	// DAG is the dependency DAG over labels: j depends on i < j iff
	// Perm[i] and Perm[j] are adjacent.
	DAG *core.DAG
}

// NewWorkload builds the random-order workload for g. The permutation is
// drawn from seed.
func NewWorkload(g *graph.Graph, seed uint64) *Workload {
	n := g.NumNodes
	r := rng.New(seed)
	perm := r.Perm(n)
	labelOf := make([]int, n)
	for label, v := range perm {
		labelOf[v] = label
	}
	dag := core.NewDAG(n)
	for j := 0; j < n; j++ {
		v := perm[j]
		targets, _ := g.OutEdges(v)
		for _, u := range targets {
			if i := labelOf[u]; i < j {
				dag.AddDep(i, j)
			}
		}
	}
	return &Workload{G: g, Perm: perm, LabelOf: labelOf, DAG: dag}
}

// misOnProcess returns the greedy-MIS state update: a vertex joins the set
// iff no already-processed neighbour is in it. It is the single OnProcess
// body shared by the sequential (GreedyMIS) and parallel (ParallelGreedyMIS)
// executions — both frameworks guarantee dependency order and serialized
// invocation, which is exactly what the closure relies on.
func misOnProcess(w *Workload, inMIS []bool) func(label int) {
	return func(label int) {
		v := w.Perm[label]
		targets, _ := w.G.OutEdges(v)
		for _, u := range targets {
			if inMIS[u] {
				return
			}
		}
		inMIS[v] = true
	}
}

// GreedyMIS runs greedy maximal independent set over the workload through
// the given scheduler and returns the membership vector (indexed by vertex
// id) together with the framework's execution metrics.
func GreedyMIS(w *Workload, s sched.Scheduler) ([]bool, core.Result, error) {
	inMIS := make([]bool, w.G.NumNodes)
	res, err := core.Run(w.DAG, s, core.Options{OnProcess: misOnProcess(w, inMIS)})
	return inMIS, res, err
}

// coloringOnProcess returns the first-fit coloring state update (smallest
// color unused by any already-processed neighbour), shared by the
// sequential (GreedyColoring) and parallel (ParallelGreedyColoring)
// executions. The colors slice must be initialized to -1. The scratch
// buffer is reused across calls, which is safe because both frameworks
// serialize OnProcess invocations.
func coloringOnProcess(w *Workload, colors []int32) func(label int) {
	var scratch []bool
	return func(label int) {
		v := w.Perm[label]
		targets, _ := w.G.OutEdges(v)
		deg := len(targets)
		if cap(scratch) < deg+1 {
			scratch = make([]bool, deg+1)
		}
		used := scratch[:deg+1]
		for i := range used {
			used[i] = false
		}
		for _, u := range targets {
			if c := colors[u]; c >= 0 && int(c) <= deg {
				used[c] = true
			}
		}
		for c := range used {
			if !used[c] {
				colors[v] = int32(c)
				return
			}
		}
	}
}

// GreedyColoring runs greedy (first-fit) coloring over the workload
// through the given scheduler. It returns the color of each vertex
// (indexed by vertex id, colors from 0) and the execution metrics.
func GreedyColoring(w *Workload, s sched.Scheduler) ([]int32, core.Result, error) {
	colors := make([]int32, w.G.NumNodes)
	for i := range colors {
		colors[i] = -1
	}
	res, err := core.Run(w.DAG, s, core.Options{OnProcess: coloringOnProcess(w, colors)})
	return colors, res, err
}

// VerifyMIS checks that the membership vector is an independent set and
// maximal (every non-member has a member neighbour).
func VerifyMIS(g *graph.Graph, inMIS []bool) error {
	for v := 0; v < g.NumNodes; v++ {
		targets, _ := g.OutEdges(v)
		if inMIS[v] {
			for _, u := range targets {
				if inMIS[u] {
					return fmt.Errorf("mis: adjacent members %d and %d", v, u)
				}
			}
			continue
		}
		covered := false
		for _, u := range targets {
			if inMIS[u] {
				covered = true
				break
			}
		}
		if !covered && g.OutDegree(v) > 0 {
			return fmt.Errorf("mis: vertex %d could be added (not maximal)", v)
		}
		if g.OutDegree(v) == 0 && !inMIS[v] {
			return fmt.Errorf("mis: isolated vertex %d not in MIS", v)
		}
	}
	return nil
}

// VerifyColoring checks that the coloring is proper and complete.
func VerifyColoring(g *graph.Graph, colors []int32) error {
	for v := 0; v < g.NumNodes; v++ {
		if colors[v] < 0 {
			return fmt.Errorf("mis: vertex %d uncolored", v)
		}
		targets, _ := g.OutEdges(v)
		for _, u := range targets {
			if colors[v] == colors[u] {
				return fmt.Errorf("mis: edge (%d,%d) monochromatic", v, u)
			}
		}
	}
	return nil
}

// NumColors returns the number of distinct colors used.
func NumColors(colors []int32) int {
	maxC := int32(-1)
	for _, c := range colors {
		if c > maxC {
			maxC = c
		}
	}
	return int(maxC + 1)
}
