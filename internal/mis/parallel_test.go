package mis

import (
	"testing"

	"relaxsched/internal/cq"
	"relaxsched/internal/engine"
	"relaxsched/internal/graph"
	"relaxsched/internal/sched"
)

func TestParallelGreedyMISMatchesSequential(t *testing.T) {
	// The parallel run must produce exactly the sequential greedy set of
	// the same permutation: dependency order pins the result.
	g := graph.Random(1200, 3600, 10, 5)
	w := NewWorkload(g, 7)
	seqSet, _, err := GreedyMIS(w, sched.NewExact(g.NumNodes))
	if err != nil {
		t.Fatal(err)
	}
	for _, backend := range cq.Backends() {
		for _, batch := range []int{0, 16} {
			parSet, res, err := ParallelGreedyMIS(w, ParallelOptions{ExecOptions: engine.ExecOptions{Threads: 4, QueueMultiplier: 2, Backend: backend, BatchSize: batch, Seed: 3}})
			if err != nil {
				t.Fatalf("%s/batch%d: %v", backend, batch, err)
			}
			if err := VerifyMIS(g, parSet); err != nil {
				t.Fatalf("%s/batch%d: %v", backend, batch, err)
			}
			for v := range parSet {
				if parSet[v] != seqSet[v] {
					t.Fatalf("%s/batch%d: vertex %d differs from sequential greedy", backend, batch, v)
				}
			}
			if res.Processed != int64(g.NumNodes) {
				t.Fatalf("%s/batch%d: processed %d of %d", backend, batch, res.Processed, g.NumNodes)
			}
		}
	}
}

func TestParallelGreedyColoringMatchesSequential(t *testing.T) {
	g := graph.Random(1000, 4000, 10, 11)
	w := NewWorkload(g, 13)
	seqColors, _, err := GreedyColoring(w, sched.NewExact(g.NumNodes))
	if err != nil {
		t.Fatal(err)
	}
	for _, backend := range cq.Backends() {
		parColors, _, err := ParallelGreedyColoring(w, ParallelOptions{ExecOptions: engine.ExecOptions{Threads: 4, QueueMultiplier: 2, Backend: backend, Seed: 17}})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if err := VerifyColoring(g, parColors); err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		for v := range parColors {
			if parColors[v] != seqColors[v] {
				t.Fatalf("%s: vertex %d colored %d, sequential %d", backend, v, parColors[v], seqColors[v])
			}
		}
	}
}
