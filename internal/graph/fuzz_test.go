package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseDIMACS checks that the parser never panics and that every
// successfully parsed graph validates and round-trips.
func FuzzParseDIMACS(f *testing.F) {
	f.Add("p sp 3 2\na 1 2 5\na 2 3 7\n")
	f.Add("c comment\np sp 1 0\n")
	f.Add("p sp 2 1\na 1 2 1000000\n")
	f.Add("a 1 2 3\n")
	f.Add("p sp 0 0\n")
	f.Add("p sp 2 1\na 2 1 0\n")
	f.Add(strings.Repeat("c x\n", 50) + "p sp 4 1\na 4 4 9\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ParseDIMACS(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parsed graph invalid: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteDIMACS(&buf, g); err != nil {
			t.Fatalf("write failed: %v", err)
		}
		g2, err := ParseDIMACS(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if g2.NumNodes != g.NumNodes || g2.NumEdges() != g.NumEdges() {
			t.Fatal("round trip changed shape")
		}
	})
}
