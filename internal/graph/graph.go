// Package graph provides the weighted-graph substrate for the SSSP
// experiments: a compact CSR (compressed sparse row) representation,
// generators for the paper's three input families (uniform random, road
// network, social network), a DIMACS ".gr" parser for users who have the
// real USA-road files, and structural utilities (BFS, diameter estimation,
// weight bounds) used to report the d_max/w_min quantities that drive
// Theorem 6.1.
package graph

import (
	"fmt"
)

// Graph is a directed weighted graph in CSR form. Undirected inputs are
// stored as two arcs. Weights are strictly positive.
type Graph struct {
	// NumNodes is the number of vertices, identified as 0..NumNodes-1.
	NumNodes int
	// Offsets has length NumNodes+1; the out-edges of u are the index range
	// [Offsets[u], Offsets[u+1]) into Targets and Weights.
	Offsets []int64
	// Targets holds edge heads.
	Targets []int32
	// Weights holds strictly positive edge weights.
	Weights []int32
}

// NumEdges returns the number of stored arcs.
func (g *Graph) NumEdges() int { return len(g.Targets) }

// OutEdges returns the targets and weights of u's out-edges as sub-slices
// (not copies).
func (g *Graph) OutEdges(u int) ([]int32, []int32) {
	lo, hi := g.Offsets[u], g.Offsets[u+1]
	return g.Targets[lo:hi], g.Weights[lo:hi]
}

// OutDegree returns the number of out-edges of u.
func (g *Graph) OutDegree(u int) int {
	return int(g.Offsets[u+1] - g.Offsets[u])
}

// Validate checks structural invariants: monotone offsets, in-range
// targets, positive weights.
func (g *Graph) Validate() error {
	if len(g.Offsets) != g.NumNodes+1 {
		return fmt.Errorf("graph: offsets length %d, want %d", len(g.Offsets), g.NumNodes+1)
	}
	if g.Offsets[0] != 0 {
		return fmt.Errorf("graph: offsets[0] = %d", g.Offsets[0])
	}
	for u := 0; u < g.NumNodes; u++ {
		if g.Offsets[u+1] < g.Offsets[u] {
			return fmt.Errorf("graph: offsets not monotone at %d", u)
		}
	}
	if g.Offsets[g.NumNodes] != int64(len(g.Targets)) || len(g.Targets) != len(g.Weights) {
		return fmt.Errorf("graph: edge arrays inconsistent")
	}
	for i, t := range g.Targets {
		if t < 0 || int(t) >= g.NumNodes {
			return fmt.Errorf("graph: target %d out of range at arc %d", t, i)
		}
		if g.Weights[i] <= 0 {
			return fmt.Errorf("graph: non-positive weight %d at arc %d", g.Weights[i], i)
		}
	}
	return nil
}

// WeightBounds returns the minimum and maximum edge weight; it returns
// (0, 0) for edgeless graphs.
func (g *Graph) WeightBounds() (wmin, wmax int64) {
	if len(g.Weights) == 0 {
		return 0, 0
	}
	wmin, wmax = int64(g.Weights[0]), int64(g.Weights[0])
	for _, w := range g.Weights[1:] {
		if int64(w) < wmin {
			wmin = int64(w)
		}
		if int64(w) > wmax {
			wmax = int64(w)
		}
	}
	return wmin, wmax
}

// Builder accumulates an edge list and produces a CSR graph.
type Builder struct {
	n    int
	from []int32
	to   []int32
	w    []int32
}

// NewBuilder returns a builder for a graph with n nodes.
func NewBuilder(n int) *Builder { return &Builder{n: n} }

// AddArc adds the directed arc u -> v with weight w (w > 0).
func (b *Builder) AddArc(u, v int, w int64) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: arc (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if w <= 0 {
		panic("graph: non-positive weight")
	}
	if w > 1<<30 {
		panic("graph: weight exceeds 2^30")
	}
	b.from = append(b.from, int32(u))
	b.to = append(b.to, int32(v))
	b.w = append(b.w, int32(w))
}

// AddEdge adds the undirected edge {u, v} as two arcs.
func (b *Builder) AddEdge(u, v int, w int64) {
	b.AddArc(u, v, w)
	b.AddArc(v, u, w)
}

// NumArcs returns the number of arcs added so far.
func (b *Builder) NumArcs() int { return len(b.from) }

// Build produces the CSR graph via a counting sort by source.
func (b *Builder) Build() *Graph {
	g := &Graph{
		NumNodes: b.n,
		Offsets:  make([]int64, b.n+1),
		Targets:  make([]int32, len(b.to)),
		Weights:  make([]int32, len(b.w)),
	}
	for _, u := range b.from {
		g.Offsets[u+1]++
	}
	for u := 0; u < b.n; u++ {
		g.Offsets[u+1] += g.Offsets[u]
	}
	cursor := make([]int64, b.n)
	copy(cursor, g.Offsets[:b.n])
	for i := range b.from {
		u := b.from[i]
		c := cursor[u]
		g.Targets[c] = b.to[i]
		g.Weights[c] = b.w[i]
		cursor[u]++
	}
	return g
}
