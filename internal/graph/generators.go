package graph

import (
	"relaxsched/internal/rng"
)

// Random generates an undirected Erdos-Renyi-style G(n, m) multigraph-free
// graph with m edges and uniform integer weights in [1, maxW]. This is the
// synthetic stand-in for the paper's "random" input (1M nodes, 10M edges,
// weights in (0, 100]). Self-loops are rejected; (rare) duplicate edges are
// allowed, as in the paper's construction, and harmless for SSSP.
func Random(n, m int, maxW int64, seed uint64) *Graph {
	if n < 2 {
		panic("graph: Random needs n >= 2")
	}
	r := rng.New(seed)
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		u := r.Intn(n)
		v := r.Intn(n)
		for v == u {
			v = r.Intn(n)
		}
		b.AddEdge(u, v, 1+int64(r.Uint64n(uint64(maxW))))
	}
	return b.Build()
}

// Road generates a road-network-like graph: a width x height grid where
// each node connects to its right and down neighbours, a fraction of edges
// is removed to create irregularity, and weights model physical distances —
// wide range [1, maxW] with high variance. Grids have diameter
// Theta(width + height), reproducing the high-diameter, high-weight-variance
// regime where the paper observes visible relaxation overhead on the USA
// road network. It is the synthetic substitute for DIMACS USA-road (24M
// nodes), which we cannot ship; use ParseDIMACS for the real file.
//
// dropPerMille removes roughly that fraction (in 1/1000) of grid edges,
// while keeping the graph connected by never dropping the first column's
// vertical edges or the first row's horizontal edges.
func Road(width, height int, maxW int64, dropPerMille int, seed uint64) *Graph {
	if width < 2 || height < 2 {
		panic("graph: Road needs width, height >= 2")
	}
	r := rng.New(seed)
	n := width * height
	b := NewBuilder(n)
	id := func(x, y int) int { return y*width + x }
	weight := func() int64 {
		// Physical-distance-like: mixture of short local roads and long
		// highway segments.
		if r.Intn(10) == 0 {
			return 1 + int64(r.Uint64n(uint64(maxW)))
		}
		return 1 + int64(r.Uint64n(uint64(maxW/10+1)))
	}
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			if x+1 < width {
				// Horizontal edges are always kept, so every row is a
				// connected path.
				b.AddEdge(id(x, y), id(x+1, y), weight())
			}
			if y+1 < height {
				// Vertical edges may be dropped, except in the first
				// column, which stitches the rows together and guarantees
				// global connectivity.
				if x == 0 || r.Intn(1000) >= dropPerMille {
					b.AddEdge(id(x, y), id(x, y+1), weight())
				}
			}
		}
	}
	return b.Build()
}

// Social generates a social-network-like graph by preferential attachment
// (Barabasi-Albert): nodes arrive one by one and attach to deg existing
// nodes chosen proportionally to current degree, yielding a heavy-tailed
// degree distribution and O(log n) diameter. Weights are uniform in
// [1, maxW]. It is the synthetic substitute for the LiveJournal friendship
// graph (5M nodes, 69M edges, weights in (0, 100]).
func Social(n, deg int, maxW int64, seed uint64) *Graph {
	if n < deg+1 || deg < 1 {
		panic("graph: Social needs n > deg >= 1")
	}
	r := rng.New(seed)
	b := NewBuilder(n)
	// endpoints holds every edge endpoint seen so far; sampling uniformly
	// from it realizes degree-proportional attachment.
	endpoints := make([]int32, 0, 2*n*deg)
	// Seed clique over the first deg+1 nodes.
	for u := 0; u < deg; u++ {
		for v := u + 1; v <= deg; v++ {
			b.AddEdge(u, v, 1+int64(r.Uint64n(uint64(maxW))))
			endpoints = append(endpoints, int32(u), int32(v))
		}
	}
	for u := deg + 1; u < n; u++ {
		for i := 0; i < deg; i++ {
			v := int(endpoints[r.Intn(len(endpoints))])
			if v == u {
				v = r.Intn(u) // fall back to uniform among existing
			}
			b.AddEdge(u, v, 1+int64(r.Uint64n(uint64(maxW))))
			endpoints = append(endpoints, int32(u), int32(v))
		}
	}
	return b.Build()
}
