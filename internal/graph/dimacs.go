package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseDIMACS reads a graph in the DIMACS shortest-path challenge ".gr"
// format, the format the USA road networks used in the paper's experiments
// are distributed in:
//
//	c  comment lines
//	p sp <nodes> <arcs>
//	a <from> <to> <weight>
//
// Node ids in the file are 1-based and are converted to 0-based. Weights
// must be positive. The arc count in the header is checked against the
// number of "a" lines.
func ParseDIMACS(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var b *Builder
	declaredArcs := -1
	arcs := 0
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		switch text[0] {
		case 'c':
			continue
		case 'p':
			if b != nil {
				return nil, fmt.Errorf("dimacs: line %d: duplicate problem line", line)
			}
			fields := strings.Fields(text)
			if len(fields) != 4 || fields[1] != "sp" {
				return nil, fmt.Errorf("dimacs: line %d: malformed problem line %q", line, text)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("dimacs: line %d: bad node count %q", line, fields[2])
			}
			m, err := strconv.Atoi(fields[3])
			if err != nil || m < 0 {
				return nil, fmt.Errorf("dimacs: line %d: bad arc count %q", line, fields[3])
			}
			declaredArcs = m
			b = NewBuilder(n)
		case 'a':
			if b == nil {
				return nil, fmt.Errorf("dimacs: line %d: arc before problem line", line)
			}
			fields := strings.Fields(text)
			if len(fields) != 4 {
				return nil, fmt.Errorf("dimacs: line %d: malformed arc line %q", line, text)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			w, err3 := strconv.ParseInt(fields[3], 10, 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("dimacs: line %d: non-numeric arc %q", line, text)
			}
			if u < 1 || u > b.n || v < 1 || v > b.n {
				return nil, fmt.Errorf("dimacs: line %d: node id out of range in %q", line, text)
			}
			if w <= 0 {
				return nil, fmt.Errorf("dimacs: line %d: non-positive weight in %q", line, text)
			}
			b.AddArc(u-1, v-1, w)
			arcs++
		default:
			return nil, fmt.Errorf("dimacs: line %d: unknown line type %q", line, text)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dimacs: read error: %w", err)
	}
	if b == nil {
		return nil, fmt.Errorf("dimacs: missing problem line")
	}
	if declaredArcs >= 0 && arcs != declaredArcs {
		return nil, fmt.Errorf("dimacs: header declares %d arcs, found %d", declaredArcs, arcs)
	}
	return b.Build(), nil
}

// WriteDIMACS writes g in DIMACS ".gr" format (used by tests and to export
// generated graphs for external tools).
func WriteDIMACS(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p sp %d %d\n", g.NumNodes, g.NumEdges()); err != nil {
		return err
	}
	for u := 0; u < g.NumNodes; u++ {
		targets, weights := g.OutEdges(u)
		for i := range targets {
			if _, err := fmt.Fprintf(bw, "a %d %d %d\n", u+1, targets[i]+1, weights[i]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
