package graph

// BFS computes hop distances from src; unreachable nodes get -1.
func BFS(g *Graph, src int) []int32 {
	dist := make([]int32, g.NumNodes)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int32, 0, 1024)
	queue = append(queue, int32(src))
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		targets, _ := g.OutEdges(int(u))
		for _, v := range targets {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// HopDiameterEstimate estimates the hop diameter by the double-sweep
// heuristic: BFS from src, then BFS from the farthest reached node. The
// returned value is a lower bound on the true diameter and is exact on
// trees; it is the standard cheap estimator for the "diameter" column the
// paper reports for its inputs.
func HopDiameterEstimate(g *Graph, src int) int {
	d1 := BFS(g, src)
	far, best := src, int32(0)
	for v, d := range d1 {
		if d > best {
			best, far = d, v
		}
	}
	d2 := BFS(g, far)
	best = 0
	for _, d := range d2 {
		if d > best {
			best = d
		}
	}
	return int(best)
}

// LargestReachable returns the number of nodes reachable from src
// (including src). The experiments run SSSP from node 0, so generators are
// expected to produce graphs where this is close to NumNodes.
func LargestReachable(g *Graph, src int) int {
	dist := BFS(g, src)
	count := 0
	for _, d := range dist {
		if d >= 0 {
			count++
		}
	}
	return count
}

// DegreeStats returns the minimum, maximum and mean out-degree.
func DegreeStats(g *Graph) (minDeg, maxDeg int, mean float64) {
	if g.NumNodes == 0 {
		return 0, 0, 0
	}
	minDeg = g.OutDegree(0)
	for u := 0; u < g.NumNodes; u++ {
		d := g.OutDegree(u)
		if d < minDeg {
			minDeg = d
		}
		if d > maxDeg {
			maxDeg = d
		}
	}
	mean = float64(g.NumEdges()) / float64(g.NumNodes)
	return minDeg, maxDeg, mean
}
