package graph

import (
	"strings"
	"testing"
	"testing/quick"

	"relaxsched/internal/rng"
)

func TestBuilderBuildsCSR(t *testing.T) {
	b := NewBuilder(4)
	b.AddArc(0, 1, 10)
	b.AddArc(0, 2, 20)
	b.AddArc(2, 3, 30)
	b.AddArc(1, 0, 5)
	g := b.Build()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 4 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	targets, weights := g.OutEdges(0)
	if len(targets) != 2 {
		t.Fatalf("deg(0) = %d", len(targets))
	}
	found := map[int32]int32{}
	for i := range targets {
		found[targets[i]] = weights[i]
	}
	if found[1] != 10 || found[2] != 20 {
		t.Fatalf("out-edges of 0 wrong: %v", found)
	}
	if g.OutDegree(3) != 0 {
		t.Fatalf("deg(3) = %d", g.OutDegree(3))
	}
}

func TestBuilderPanics(t *testing.T) {
	b := NewBuilder(2)
	for name, f := range map[string]func(){
		"out of range": func() { b.AddArc(0, 5, 1) },
		"zero weight":  func() { b.AddArc(0, 1, 0) },
		"neg weight":   func() { b.AddArc(0, 1, -3) },
		"huge weight":  func() { b.AddArc(0, 1, 1<<31) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestAddEdgeSymmetric(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 2, 7)
	g := b.Build()
	t0, w0 := g.OutEdges(0)
	t2, w2 := g.OutEdges(2)
	if len(t0) != 1 || len(t2) != 1 || t0[0] != 2 || t2[0] != 0 || w0[0] != 7 || w2[0] != 7 {
		t.Fatal("AddEdge not symmetric")
	}
}

func TestRandomGraphShape(t *testing.T) {
	g := Random(1000, 5000, 100, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes != 1000 || g.NumEdges() != 10000 {
		t.Fatalf("n=%d m=%d", g.NumNodes, g.NumEdges())
	}
	wmin, wmax := g.WeightBounds()
	if wmin < 1 || wmax > 100 {
		t.Fatalf("weights out of range: [%d,%d]", wmin, wmax)
	}
	// A G(n, 5n) graph is connected whp.
	if r := LargestReachable(g, 0); r < 990 {
		t.Fatalf("only %d reachable", r)
	}
	// Low diameter.
	if d := HopDiameterEstimate(g, 0); d > 12 {
		t.Fatalf("random graph diameter estimate %d too large", d)
	}
}

func TestRoadGraphShape(t *testing.T) {
	g := Road(50, 40, 1000, 50, 2)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes != 2000 {
		t.Fatalf("n = %d", g.NumNodes)
	}
	if r := LargestReachable(g, 0); r != 2000 {
		t.Fatalf("road graph disconnected: %d reachable", r)
	}
	// Grid diameter ~ width + height, much larger than the random graph's.
	d := HopDiameterEstimate(g, 0)
	if d < 50 {
		t.Fatalf("road diameter estimate %d too small for a 50x40 grid", d)
	}
}

func TestRoadStaysConnectedUnderDrops(t *testing.T) {
	// Even with aggressive edge dropping the spanning row/column keeps the
	// grid connected.
	g := Road(30, 30, 100, 400, 3)
	if r := LargestReachable(g, 0); r != 900 {
		t.Fatalf("dropped road graph disconnected: %d/900 reachable", r)
	}
}

func TestSocialGraphShape(t *testing.T) {
	g := Social(2000, 7, 100, 4)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes != 2000 {
		t.Fatalf("n = %d", g.NumNodes)
	}
	if r := LargestReachable(g, 0); r != 2000 {
		t.Fatalf("social graph disconnected: %d reachable", r)
	}
	// Heavy tail: max degree far above mean.
	_, maxDeg, mean := DegreeStats(g)
	if float64(maxDeg) < 4*mean {
		t.Fatalf("degree distribution not heavy-tailed: max %d mean %.1f", maxDeg, mean)
	}
	// Low diameter.
	if d := HopDiameterEstimate(g, 0); d > 10 {
		t.Fatalf("social diameter estimate %d too large", d)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := Random(100, 300, 50, 9)
	b := Random(100, 300, 50, 9)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed, different edge count")
	}
	for i := range a.Targets {
		if a.Targets[i] != b.Targets[i] || a.Weights[i] != b.Weights[i] {
			t.Fatal("same seed, different graph")
		}
	}
	c := Random(100, 300, 50, 10)
	same := true
	for i := range a.Targets {
		if a.Targets[i] != c.Targets[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestBFSDistances(t *testing.T) {
	// Path graph 0-1-2-3.
	b := NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 1)
	g := b.Build()
	d := BFS(g, 0)
	for i, want := range []int32{0, 1, 2, 3} {
		if d[i] != want {
			t.Fatalf("BFS[%d] = %d, want %d", i, d[i], want)
		}
	}
	// Disconnected node.
	b2 := NewBuilder(3)
	b2.AddEdge(0, 1, 1)
	g2 := b2.Build()
	d2 := BFS(g2, 0)
	if d2[2] != -1 {
		t.Fatalf("unreachable node distance = %d", d2[2])
	}
}

func TestHopDiameterOnPath(t *testing.T) {
	const n = 50
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1, 1)
	}
	g := b.Build()
	// Double sweep is exact on trees (paths included) from any start.
	if d := HopDiameterEstimate(g, n/2); d != n-1 {
		t.Fatalf("path diameter = %d, want %d", d, n-1)
	}
}

func TestParseDIMACSRoundTrip(t *testing.T) {
	g := Random(50, 200, 30, 5)
	var sb strings.Builder
	if err := WriteDIMACS(&sb, g); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseDIMACS(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.NumNodes != g.NumNodes || parsed.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
			parsed.NumNodes, parsed.NumEdges(), g.NumNodes, g.NumEdges())
	}
	for u := 0; u < g.NumNodes; u++ {
		at, aw := g.OutEdges(u)
		bt, bw := parsed.OutEdges(u)
		if len(at) != len(bt) {
			t.Fatalf("node %d degree changed", u)
		}
		for i := range at {
			if at[i] != bt[i] || aw[i] != bw[i] {
				t.Fatalf("node %d edge %d changed", u, i)
			}
		}
	}
}

func TestParseDIMACSHandlesCommentsAndBlank(t *testing.T) {
	input := "c a comment\n\np sp 3 2\nc more\na 1 2 5\na 2 3 7\n"
	g, err := ParseDIMACS(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes != 3 || g.NumEdges() != 2 {
		t.Fatalf("n=%d m=%d", g.NumNodes, g.NumEdges())
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	cases := map[string]string{
		"no problem line":  "a 1 2 3\n",
		"bad type":         "x nonsense\n",
		"dup problem":      "p sp 2 0\np sp 2 0\n",
		"bad node count":   "p sp -2 1\n",
		"arc out of range": "p sp 2 1\na 1 5 1\n",
		"zero weight":      "p sp 2 1\na 1 2 0\n",
		"non-numeric":      "p sp 2 1\na 1 two 3\n",
		"arc count wrong":  "p sp 2 5\na 1 2 3\n",
		"empty input":      "",
		"short arc line":   "p sp 2 1\na 1 2\n",
		"malformed p":      "p xx 3 3\n",
	}
	for name, input := range cases {
		if _, err := ParseDIMACS(strings.NewReader(input)); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

// Property: every generated graph validates and every node id stays in
// range, across generator parameters.
func TestGeneratorsValidateProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 10 + r.Intn(200)
		switch r.Intn(3) {
		case 0:
			g := Random(n, n*2, 1+int64(r.Intn(1000)), seed)
			return g.Validate() == nil
		case 1:
			w := 2 + r.Intn(20)
			h := 2 + r.Intn(20)
			g := Road(w, h, 1+int64(r.Intn(1000)), r.Intn(500), seed)
			return g.Validate() == nil && LargestReachable(g, 0) == w*h
		default:
			deg := 1 + r.Intn(5)
			g := Social(n+deg+1, deg, 1+int64(r.Intn(100)), seed)
			return g.Validate() == nil
		}
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRandomGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Random(10000, 50000, 100, uint64(i))
	}
}

func BenchmarkBFS(b *testing.B) {
	g := Random(50000, 250000, 100, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BFS(g, 0)
	}
}
