package experiments

import (
	"io"

	"relaxsched/internal/core"
	"relaxsched/internal/multiqueue"
	"relaxsched/internal/sched"
	"relaxsched/internal/spraylist"
	"relaxsched/internal/sssp"
	"relaxsched/internal/stats"
)

// AblationRow compares scheduler families on the same workload: the
// sorting-by-insertion DAG (extra steps) and sequential-model SSSP on the
// random graph (pops). It quantifies the design choices DESIGN.md calls
// out: probing width of the MultiQueue, spray vs. multiqueue vs. the
// deterministic batch queue.
type AblationRow struct {
	Scheduler  string
	MeanRank   float64 // audited mean rank on a drain of n tasks
	MaxRank    int
	SortExtra  float64 // extra steps on the BST-sort DAG
	SSSPPops   float64 // pops of relaxed sequential SSSP on the random graph
	SSSPPopsSE float64
}

// AblationResult holds the scheduler-comparison table.
type AblationResult struct {
	N    int
	Rows []AblationRow
}

// schedulerZoo lists the compared configurations. DecreaseKey-capable
// schedulers are required, so the MultiQueue variants use hashed insertion.
func schedulerZoo(n int, seed uint64) []struct {
	name string
	mk   func() sssp.RelaxedScheduler
} {
	return []struct {
		name string
		mk   func() sssp.RelaxedScheduler
	}{
		{"exact", func() sssp.RelaxedScheduler { return sched.NewExact(n) }},
		{"k-relaxed-16", func() sssp.RelaxedScheduler { return sched.NewKRelaxed(n, 16) }},
		{"random-16", func() sssp.RelaxedScheduler { return sched.NewRandomK(n, 16, seed) }},
		{"batch-8", func() sssp.RelaxedScheduler { return sched.NewBatch(n, 8) }},
		{"mq8-c1", func() sssp.RelaxedScheduler { return multiqueue.New(n, 8, 1, multiqueue.HashedQueue, seed) }},
		{"mq8-c2", func() sssp.RelaxedScheduler { return multiqueue.New(n, 8, 2, multiqueue.HashedQueue, seed) }},
		{"mq8-c4", func() sssp.RelaxedScheduler { return multiqueue.New(n, 8, 4, multiqueue.HashedQueue, seed) }},
		{"spray-8", func() sssp.RelaxedScheduler { return spraylist.New(n, 8, seed) }},
	}
}

// Ablation runs the scheduler comparison at a size derived from the config.
func Ablation(c Config) (AblationResult, error) {
	n := 32000 / c.scale()
	if n < 500 {
		n = 500
	}
	res := AblationResult{N: n}
	g := Families()[0].Gen(Config{GraphScale: c.scale() * 16, Seed: c.Seed}, c.Seed)
	exact := sssp.Dijkstra(g, 0)
	for _, entry := range schedulerZoo(n, c.Seed) {
		row := AblationRow{Scheduler: entry.name}

		// 1. Audited rank quality on a plain drain.
		aud := sched.NewAuditor(entry.mk(), 1024)
		for i := 0; i < n; i++ {
			aud.Insert(i, int64(i))
		}
		for {
			task, _, ok := aud.ApproxGetMin()
			if !ok {
				break
			}
			aud.DeleteTask(task)
		}
		rep := aud.Report()
		row.MeanRank = rep.MeanRank
		row.MaxRank = rep.MaxRank

		// 2. Extra steps on the BST-sort DAG.
		dag, err := buildDAG(AlgoSort, n, c.Seed^0x50f7)
		if err != nil {
			return res, err
		}
		run, err := core.Run(dag, entry.mk(), core.Options{})
		if err != nil {
			return res, err
		}
		row.SortExtra = float64(run.ExtraSteps)

		// 3. Sequential-model SSSP pops. The ablation graph is smaller than
		// n, so scheduler capacity n suffices; rebuild at graph size.
		var pops stats.Sample
		for trial := 0; trial < c.trials(); trial++ {
			q := rebuildAt(entry.name, g.NumNodes, c.Seed+uint64(trial))
			sr, err := sssp.Relaxed(g, 0, q)
			if err != nil {
				return res, err
			}
			if !sssp.Equal(sr.Dist, exact.Dist) {
				panic("experiments: ablation SSSP wrong distances")
			}
			pops.Add(float64(sr.Pops))
		}
		row.SSSPPops = pops.Mean()
		row.SSSPPopsSE = pops.StdErr()
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// rebuildAt constructs the named zoo scheduler sized for nn tasks.
func rebuildAt(name string, nn int, seed uint64) sssp.RelaxedScheduler {
	for _, e := range schedulerZoo(nn, seed) {
		if e.name == name {
			return e.mk()
		}
	}
	panic("experiments: unknown scheduler " + name)
}

// Render writes the ablation table.
func (r AblationResult) Render(w io.Writer) error {
	t := stats.NewTable("scheduler", "mean-rank", "max-rank",
		"sort-extra-steps", "sssp-pops", "stderr")
	for _, row := range r.Rows {
		t.AddRow(row.Scheduler, row.MeanRank, row.MaxRank,
			row.SortExtra, row.SSSPPops, row.SSSPPopsSE)
	}
	return t.Render(w)
}
