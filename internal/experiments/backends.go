package experiments

import (
	"io"
	"time"

	"relaxsched/internal/cq"
	"relaxsched/internal/engine"
	"relaxsched/internal/graph"
	"relaxsched/internal/sssp"
	"relaxsched/internal/stats"
)

// ParallelSSSPStats are trial-averaged metrics of one parallel-SSSP
// configuration. Both BackendsRow and BatchSweepRow embed it, so a new
// metric added here flows into every recorded trajectory (the embedding
// keeps the JSON representation flat).
type ParallelSSSPStats struct {
	Overhead  float64 // tasks processed relaxed / tasks processed exact
	OverheadE float64
	OpsPerSec float64 // pops per second across all workers
	Speedup   float64 // sequential Dijkstra time / parallel time
	Millis    float64 // mean parallel wall time
	HostEnv
}

// measureParallelSSSP is the single measurement protocol behind Backends
// and BatchSweep: it times c.trials() parallel-SSSP runs of one
// configuration, panics if any run's distances diverge from the exact
// ones, and returns the averaged metrics. seedFor keeps each experiment's
// historical seed schedule intact.
func measureParallelSSSP(c Config, g *graph.Graph, exact sssp.Result, seqTime time.Duration,
	opts sssp.ParallelOptions, seedFor func(trial int) uint64) ParallelSSSPStats {
	var ov, ops, sp, ms stats.Sample
	for trial := 0; trial < c.trials(); trial++ {
		opts.Seed = seedFor(trial)
		var pr sssp.ParallelResult
		elapsed := timeIt(func() { pr = sssp.ParallelWith(g, 0, opts) })
		if !sssp.Equal(pr.Dist, exact.Dist) {
			panic("experiments: parallel SSSP produced wrong distances")
		}
		ov.Add(float64(pr.Processed) / float64(exact.Reached))
		ops.Add(float64(pr.Popped) / elapsed.Seconds())
		sp.Add(seqTime.Seconds() / elapsed.Seconds())
		ms.Add(elapsed.Seconds() * 1e3) // fractional ms: runs are sub-ms at small scales
	}
	return ParallelSSSPStats{
		Overhead:  ov.Mean(),
		OverheadE: ov.StdErr(),
		OpsPerSec: ops.Mean(),
		Speedup:   sp.Mean(),
		Millis:    ms.Mean(),
		HostEnv:   Host(),
	}
}

// BackendsRow is one point of the backend comparison: parallel SSSP through
// one concurrent queue backend, on one graph family at one thread count.
// OpsPerSec counts pops (the queue's hot operation) per second of wall
// time, so it folds the backend's raw throughput and its relaxation waste
// into one number; Overhead isolates the waste.
type BackendsRow struct {
	Graph   string
	Backend string
	Threads int
	ParallelSSSPStats
}

// BackendsResult holds the full backend x family x threads sweep.
type BackendsResult struct {
	Rows []BackendsRow
}

// Backends compares every registered cq backend head-to-head on parallel
// SSSP: same graphs, same seeds, same thread counts — only the concurrent
// queue differs. This is the experiment the pluggable cq layer exists for;
// the paper's own figures fix the MultiQueue, this sweeps the design axis.
func Backends(c Config) BackendsResult {
	var res BackendsResult
	for fi, fam := range Families() {
		g := fam.Gen(c, c.Seed+uint64(fi))
		exact := sssp.Dijkstra(g, 0)
		seqTime := timeIt(func() { sssp.Dijkstra(g, 0) })
		for _, backend := range cq.Backends() {
			for _, threads := range c.threadSweep() {
				st := measureParallelSSSP(c, g, exact, seqTime, sssp.ParallelOptions{ExecOptions: engine.ExecOptions{
					Threads:         threads,
					QueueMultiplier: 2,
					Backend:         backend,
				}}, func(trial int) uint64 { return c.Seed ^ uint64(trial*1000+threads) })
				res.Rows = append(res.Rows, BackendsRow{
					Graph:             fam.Name,
					Backend:           string(backend),
					Threads:           threads,
					ParallelSSSPStats: st,
				})
			}
		}
	}
	return res
}

// Render writes the backend-comparison table.
func (r BackendsResult) Render(w io.Writer) error {
	t := stats.NewTable("graph", "backend", "threads", "overhead", "stderr", "ops/sec", "speedup", "ms")
	for _, row := range r.Rows {
		t.AddRow(row.Graph, row.Backend, row.Threads, row.Overhead, row.OverheadE, row.OpsPerSec, row.Speedup, row.Millis)
	}
	return t.Render(w)
}
