package experiments

import (
	"io"

	"relaxsched/internal/cq"
	"relaxsched/internal/sssp"
	"relaxsched/internal/stats"
)

// BackendsRow is one point of the backend comparison: parallel SSSP through
// one concurrent queue backend, on one graph family at one thread count.
// OpsPerSec counts pops (the queue's hot operation) per second of wall
// time, so it folds the backend's raw throughput and its relaxation waste
// into one number; Overhead isolates the waste.
type BackendsRow struct {
	Graph     string
	Backend   string
	Threads   int
	Overhead  float64 // tasks processed relaxed / tasks processed exact
	OverheadE float64
	OpsPerSec float64 // pops per second across all workers
	Speedup   float64 // sequential Dijkstra time / parallel time
	Millis    float64 // mean parallel wall time
}

// BackendsResult holds the full backend x family x threads sweep.
type BackendsResult struct {
	Rows []BackendsRow
}

// Backends compares every registered cq backend head-to-head on parallel
// SSSP: same graphs, same seeds, same thread counts — only the concurrent
// queue differs. This is the experiment the pluggable cq layer exists for;
// the paper's own figures fix the MultiQueue, this sweeps the design axis.
func Backends(c Config) BackendsResult {
	var res BackendsResult
	for fi, fam := range Families() {
		g := fam.Gen(c, c.Seed+uint64(fi))
		exact := sssp.Dijkstra(g, 0)
		seqTime := timeIt(func() { sssp.Dijkstra(g, 0) })
		for _, backend := range cq.Backends() {
			for _, threads := range c.threadSweep() {
				var ov, ops, sp, ms stats.Sample
				for trial := 0; trial < c.trials(); trial++ {
					seed := c.Seed ^ uint64(trial*1000+threads)
					var pr sssp.ParallelResult
					elapsed := timeIt(func() {
						pr = sssp.ParallelWith(g, 0, sssp.ParallelOptions{
							Threads:         threads,
							QueueMultiplier: 2,
							Backend:         backend,
							Seed:            seed,
						})
					})
					if !sssp.Equal(pr.Dist, exact.Dist) {
						panic("experiments: parallel SSSP produced wrong distances")
					}
					ov.Add(float64(pr.Processed) / float64(exact.Reached))
					ops.Add(float64(pr.Popped) / elapsed.Seconds())
					sp.Add(seqTime.Seconds() / elapsed.Seconds())
					ms.Add(float64(elapsed.Milliseconds()))
				}
				res.Rows = append(res.Rows, BackendsRow{
					Graph:     fam.Name,
					Backend:   string(backend),
					Threads:   threads,
					Overhead:  ov.Mean(),
					OverheadE: ov.StdErr(),
					OpsPerSec: ops.Mean(),
					Speedup:   sp.Mean(),
					Millis:    ms.Mean(),
				})
			}
		}
	}
	return res
}

// Render writes the backend-comparison table.
func (r BackendsResult) Render(w io.Writer) error {
	t := stats.NewTable("graph", "backend", "threads", "overhead", "stderr", "ops/sec", "speedup", "ms")
	for _, row := range r.Rows {
		t.AddRow(row.Graph, row.Backend, row.Threads, row.Overhead, row.OverheadE, row.OpsPerSec, row.Speedup, row.Millis)
	}
	return t.Render(w)
}
