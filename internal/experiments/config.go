// Package experiments contains one driver per table and figure of the
// paper's evaluation (Section 7) plus shape-validation experiments for the
// theorems (3.3, 4.3, 5.1, 6.1). Each driver returns structured rows and
// can render itself as an aligned text table; cmd/relaxbench and the
// repository benchmarks call the same drivers, so CLI output and benchmark
// output match row for row.
package experiments

import (
	"runtime"

	"relaxsched/internal/cq"
	"relaxsched/internal/graph"
)

// HostEnv records the execution environment a measured row came from.
// Every row carrying a throughput metric embeds it, so recorded
// trajectories are self-describing: `relaxbench compare` warns when
// matched rows were measured on different core counts instead of silently
// attributing hardware differences to the code (the standing caveat for
// trajectories recorded on 1-core containers).
type HostEnv struct {
	NumCPU     int `json:"NumCPU"`
	GoMaxProcs int `json:"GOMAXPROCS"`
}

// Host samples the current execution environment.
func Host() HostEnv {
	return HostEnv{NumCPU: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0)}
}

// Config controls workload sizes so the same drivers scale from unit-test
// smoke runs to full reproduction runs.
type Config struct {
	// Seed drives all workload randomness.
	Seed uint64
	// Trials is the number of repetitions averaged per row.
	Trials int
	// GraphScale divides the default graph sizes (1 = full default sizes:
	// random 200k nodes/1M edges, road 450x450, social 200k nodes).
	GraphScale int
	// MaxThreads caps the thread sweep (0 = runtime.NumCPU()).
	MaxThreads int
	// Backend selects the concurrent queue the parallel experiments run on
	// (zero value = the default MultiQueue). The Backends experiment
	// ignores this and sweeps every backend.
	Backend cq.Backend
}

// DefaultConfig returns the full-scale configuration.
func DefaultConfig() Config {
	return Config{Seed: 42, Trials: 3, GraphScale: 1, MaxThreads: 0}
}

// SmokeConfig returns a configuration small enough for unit tests.
func SmokeConfig() Config {
	return Config{Seed: 42, Trials: 1, GraphScale: 64, MaxThreads: 4}
}

func (c Config) maxThreads() int {
	if c.MaxThreads > 0 {
		return c.MaxThreads
	}
	return runtime.NumCPU()
}

func (c Config) trials() int {
	if c.Trials < 1 {
		return 1
	}
	return c.Trials
}

// threadSweep returns the thread counts 1, 2, 4, ... up to maxThreads.
func (c Config) threadSweep() []int {
	var out []int
	maxT := c.maxThreads()
	for t := 1; t < maxT; t *= 2 {
		out = append(out, t)
	}
	out = append(out, maxT)
	return out
}

// GraphSpec names one of the paper's three input families.
type GraphSpec struct {
	Name string
	Gen  func(c Config, seed uint64) *graph.Graph
}

// Families returns the three graph families of Section 7, scaled by the
// configuration. Sizes at GraphScale 1 are chosen so a full run finishes in
// minutes on a workstation while preserving the paper's regime ordering
// (road: high diameter, high weight variance; random/social: low diameter).
func Families() []GraphSpec {
	return []GraphSpec{
		{
			Name: "random",
			Gen: func(c Config, seed uint64) *graph.Graph {
				n := 200000 / c.scale()
				if n < 64 {
					n = 64
				}
				return graph.Random(n, 5*n, 100, seed)
			},
		},
		{
			Name: "road",
			Gen: func(c Config, seed uint64) *graph.Graph {
				side := 450 / c.sqrtScale()
				if side < 8 {
					side = 8
				}
				return graph.Road(side, side, 10000, 100, seed)
			},
		},
		{
			Name: "social",
			Gen: func(c Config, seed uint64) *graph.Graph {
				n := 200000 / c.scale()
				if n < 64 {
					n = 64
				}
				return graph.Social(n, 8, 100, seed)
			},
		},
	}
}

func (c Config) scale() int {
	if c.GraphScale < 1 {
		return 1
	}
	return c.GraphScale
}

func (c Config) sqrtScale() int {
	s := c.scale()
	r := 1
	for r*r < s {
		r++
	}
	return r
}
