package experiments

import (
	"fmt"
	"io"

	"relaxsched/internal/cq"
	"relaxsched/internal/engine"
	"relaxsched/internal/stats"
	"relaxsched/internal/txn"
)

// TxnRow is one point of the transactional-workload experiment: a fixed
// stream of OCC transactions over the sharded store, run through the
// engine on one backend at one thread count and one Zipf skew. Every run
// is certified before its row is recorded — txn.ParallelRun replays the
// merged commit log in ticket order and fails on any serializability
// violation — so a row in the trajectory is a proof-carrying measurement,
// not just a throughput number.
//
// Skew is an identity column and deliberately a string: the comparer keys
// integer-valued identity fields by truncation, which would collapse the
// 0.6 / 0.99 / 1.2 sweep into a single key.
//
// OpsPerSec counts committed transactions per second of wall time, so the
// relaxed backends' advantage (fewer conflicts on hot keys because nearby
// priorities run far apart) and the split/phased path's amortization both
// show up in the same column the other engine workloads report.
type TxnRow struct {
	Backend    string
	Skew       string // Zipf exponent of the key-access distribution (identity)
	Threads    int
	Batch      int // engine pop batch size (identity; amortizes queue sampling)
	N          int // transactions committed per trial
	Keys       int
	Commits    int64
	Aborts     int64   // OCC re-insertions (attempts that did not commit)
	Promotions int64   // merged -> split transitions of hot records
	Reconciles int64   // phase fences (split -> merged), incl. end-of-run sweep
	AbortRatio float64 // aborts / (commits + aborts)
	OpsPerSec  float64 // committed transactions per second of wall time
	Millis     float64
	HostEnv
}

// TxnResult holds the backend x skew x threads sweep.
type TxnResult struct {
	Rows []TxnRow
}

// txnSkews is the contention sweep: mild (0.6), the classic YCSB-style
// hotspot (0.99), and past-unity skew (1.2) where a handful of keys absorb
// most writes and the contention detector's split/phased path carries the
// load.
var txnSkews = []struct {
	label string
	s     float64
}{
	{"0.6", 0.6},
	{"0.99", 0.99},
	{"1.2", 1.2},
}

// txnBatch is the engine pop batch size every txn row runs at. Batched
// pops amortize the relaxed backends' sampling cost the same way the
// batchsweep experiment shows for SSSP; transactions tolerate the extra
// pop-order relaxation by construction (OCC revalidates every attempt).
const txnBatch = 16

// Txn sweeps the OCC transactional workload across every concurrent queue
// backend (or only c.Backend when one is selected), thread counts and
// Zipf skews. It is the measured counterpart of the txn package's
// conformance tests: those prove every run serializes, this experiment
// records the commit throughput of doing so.
func Txn(c Config) (TxnResult, error) {
	var res TxnResult
	n := 120000 / c.scale()
	if n < 8000 {
		n = 8000
	}
	keys := n / 8
	if keys < 128 {
		keys = 128
	}
	backends := cq.Backends()
	if c.Backend != "" {
		backends = []cq.Backend{c.Backend}
	}
	for _, sk := range txnSkews {
		spec := txn.WorkloadSpec{
			Txns:      n,
			Keys:      keys,
			Skew:      sk.s,
			OpsPerTxn: 4,
			ReadFrac:  0.5,
			Seed:      c.Seed + 0x74786e,
		}
		for _, threads := range c.threadSweep() {
			ops := make([]stats.Sample, len(backends))
			ms := make([]stats.Sample, len(backends))
			last := make([]txn.ParallelResult, len(backends))
			// Backends interleave inside the trial loop, so interference
			// from a shared host lands on every backend of a trial alike
			// instead of biasing whichever backend happened to run during
			// a noisy epoch — the relaxed-versus-exact comparison is the
			// point of this sweep. Trial -1 is an untimed warm-up: the
			// first runs of a cell pay allocator and scheduler warm-up.
			for trial := -1; trial < c.trials(); trial++ {
				for bi, backend := range backends {
					opts := txn.ParallelOptions{ExecOptions: engine.ExecOptions{
						Threads:         threads,
						QueueMultiplier: 2,
						Backend:         backend,
						BatchSize:       txnBatch,
						Seed:            c.Seed + uint64(trial*31+threads),
					}}
					var tr txn.ParallelResult
					var runErr error
					elapsed := timeIt(func() { tr, runErr = txn.ParallelRun(spec, opts) })
					if runErr != nil {
						return res, fmt.Errorf("txn: %s/skew %s/%d threads: %w", backend, sk.label, threads, runErr)
					}
					if tr.Commits != int64(n) {
						return res, fmt.Errorf("txn: %s/skew %s/%d threads: committed %d of %d", backend, sk.label, threads, tr.Commits, n)
					}
					if trial < 0 {
						continue
					}
					last[bi] = tr
					ops[bi].Add(float64(tr.Commits) / elapsed.Seconds())
					ms[bi].Add(elapsed.Seconds() * 1e3)
				}
			}
			for bi, backend := range backends {
				res.Rows = append(res.Rows, TxnRow{
					Backend: string(backend), Skew: sk.label, Threads: threads,
					Batch: txnBatch, N: n, Keys: keys,
					Commits: last[bi].Commits, Aborts: last[bi].Aborts,
					Promotions: last[bi].Promotions, Reconciles: last[bi].Reconciles,
					AbortRatio: last[bi].AbortRatio(),
					OpsPerSec:  ops[bi].Mean(), Millis: ms[bi].Mean(),
					HostEnv: Host(),
				})
			}
		}
	}
	return res, nil
}

// Render writes the transactional-workload table.
func (r TxnResult) Render(w io.Writer) error {
	t := stats.NewTable("backend", "skew", "threads", "batch", "n", "keys", "commits", "aborts", "abort-ratio", "promotions", "reconciles", "ops/sec", "ms")
	for _, row := range r.Rows {
		t.AddRow(row.Backend, row.Skew, row.Threads, row.Batch, row.N, row.Keys,
			row.Commits, row.Aborts, row.AbortRatio, row.Promotions, row.Reconciles,
			row.OpsPerSec, row.Millis)
	}
	return t.Render(w)
}
