package experiments

import (
	"fmt"
	"io"
	"sync"

	"relaxsched/internal/cq"
	"relaxsched/internal/rng"
	"relaxsched/internal/stats"
)

// AffinityRow is one point of the shard-affinity ablation: the lock-free
// MultiQueue hammered by per-worker handles with home-shard placement
// either on ("affine": pushes publish to the worker's home shard, pops
// probe home + one random shard) or off ("uniform": the classic
// two-choice MultiQueue placement, both probes uniformly random). The
// workload is a pure queue microbenchmark — a standing population cycled
// through push/pop pairs — so the rows isolate the placement policy's
// cache-locality effect from any algorithmic workload. OpsPerSec counts
// individual queue operations (pushes + pops) per second across workers.
type AffinityRow struct {
	Placement  string // "affine" | "uniform"
	Threads    int
	OpsPerSec  float64
	OpsPerSecE float64
	Millis     float64
	HostEnv
}

// AffinityResult holds the placement x threads sweep.
type AffinityResult struct {
	Rows []AffinityRow
}

// Affinity measures what home-shard placement buys the lock-free backend:
// same structure, same shard count, same epoch reclamation — only the
// handles' placement policy differs. On multi-core hosts affine placement
// keeps each worker's hot path on shard cache lines it already owns; on a
// 1-core container the rows mostly certify that affinity costs nothing
// (the HostEnv columns record which regime a trajectory measured).
func Affinity(c Config) AffinityResult {
	var res AffinityResult
	opsPerWorker := 400000 / c.scale()
	if opsPerWorker < 4000 {
		opsPerWorker = 4000
	}
	variants := []struct {
		name  string
		build func(shards int) *cq.LockFreeMQ
	}{
		{"affine", cq.NewLockFreeMQ},
		{"uniform", cq.NewLockFreeMQUniform},
	}
	for _, v := range variants {
		for _, threads := range c.threadSweep() {
			var ops, ms stats.Sample
			for trial := 0; trial < c.trials(); trial++ {
				elapsed := timeIt(func() {
					runAffinityTrial(v.build(threads*2), threads, opsPerWorker,
						c.Seed^uint64(trial*1000+threads))
				})
				totalOps := 2 * threads * opsPerWorker // each iteration is one push + one pop
				ops.Add(float64(totalOps) / elapsed.Seconds())
				ms.Add(elapsed.Seconds() * 1e3)
			}
			res.Rows = append(res.Rows, AffinityRow{
				Placement: v.name, Threads: threads,
				OpsPerSec: ops.Mean(), OpsPerSecE: ops.StdErr(),
				Millis:  ms.Mean(),
				HostEnv: Host(),
			})
		}
	}
	return res
}

// runAffinityTrial prefills the queue with one batch per worker and cycles
// push/pop pairs through per-worker handles — the engine's access pattern
// with the workload stripped out. A pop may transiently fail while another
// worker holds a shard's heap privatized mid-operation, so failed pops
// retry; the element count is verified once at the end.
func runAffinityTrial(q *cq.LockFreeMQ, threads, opsPerWorker int, seed uint64) {
	const standing = 512 // per-worker standing population
	seedR := rng.New(seed)
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int, r *rng.Xoshiro) {
			defer wg.Done()
			h := q.NewHandle()
			defer h.Close()
			pairs := make([]cq.Pair, standing)
			for i := range pairs {
				pairs[i] = cq.Pair{Value: int64(w*standing + i), Priority: int64(r.Intn(1 << 20))}
			}
			h.PushBatch(r, pairs)
			for i := 0; i < opsPerWorker; i++ {
				h.Push(r, int64(i), int64(r.Intn(1<<20)))
				for {
					if _, _, ok := h.Pop(r); ok {
						break
					}
					// Transiently empty: every shard was privatized by racing
					// pops at inspection time. The standing population
					// guarantees a retry eventually lands.
				}
			}
		}(w, seedR.Split())
	}
	wg.Wait()
	if got, want := q.Len(), threads*standing; got != want {
		panic(fmt.Sprintf("experiments: affinity trial ended with %d elements, want %d", got, want))
	}
}

// Render writes the affinity-ablation table.
func (r AffinityResult) Render(w io.Writer) error {
	t := stats.NewTable("placement", "threads", "ops/sec", "stderr", "ms")
	for _, row := range r.Rows {
		t.AddRow(row.Placement, row.Threads, row.OpsPerSec, row.OpsPerSecE, row.Millis)
	}
	return t.Render(w)
}
