package experiments

import (
	"fmt"
	"io"
	"time"

	"relaxsched/internal/engine"
	"relaxsched/internal/sched"
	"relaxsched/internal/stats"
)

// IdleCostRow is one point of the idle-cost experiment: a streaming
// execution held idle — workers live, one producer open, no arrivals — for
// a fixed window under one idle strategy, then hit with a job burst. The
// row reports what idleness costs (process CPU consumed across the quiet
// window) and what parking costs on wake-up (the burst's sojourn-latency
// quantiles and total drain time). Strategy is an identity column:
// trajectories gate park rows against park rows and spin rows against spin
// rows, never across.
//
// The design intent the numbers back: a parked service should sit at ≈0%
// CPU — Park is a channel receive, not a poll loop — while the spin
// strategy keeps paying wakeup-and-check cycles forever; and the price of
// parking must show up only as a bounded wake-up cost on the first burst
// jobs, not as a throughput regression.
type IdleCostRow struct {
	Strategy  string // "park" or "spin"
	Threads   int
	N         int     // burst size (jobs pushed after the idle window)
	WindowMs  float64 // idle observation window
	CPUMillis float64 // process CPU consumed across the window (-1: unsupported OS)
	CPUPct    float64 // CPUMillis / WindowMs * 100 (-1: unsupported OS)
	// WakeP50Us and WakeP99Us are the burst jobs' push-to-execute latency
	// quantiles in microseconds: for park they include the unpark path.
	WakeP50Us float64
	WakeP99Us float64
	DrainMs   float64 // wall time from first burst push to full drain
	HostEnv
}

// IdleCostResult holds the per-strategy idle-cost rows.
type IdleCostResult struct {
	Rows []IdleCostRow
}

// idleStrategies names the sweep. Park first: it is the default the README
// advertises, and the spin row below it is the baseline it is judged against.
var idleStrategies = []struct {
	name string
	s    engine.IdleStrategy
}{
	{"park", engine.IdlePark},
	{"spin", engine.IdleSpin},
}

// IdleCost measures the idle CPU cost and wake-up latency of the engine's
// idle strategies: start a streaming execution, let the pool go idle with a
// producer still open, read the process CPU clock across a quiet window,
// then push a burst and time the drain. Runs on the default backend (or
// Config.Backend when set).
func IdleCost(c Config) (IdleCostResult, error) {
	var res IdleCostResult
	threads := c.maxThreads()
	if threads > 4 {
		threads = 4
	}
	burst := 20000 / c.scale()
	if burst < 200 {
		burst = 200
	}
	window, settle := 150*time.Millisecond, 20*time.Millisecond
	if c.scale() > 1 {
		window, settle = 30*time.Millisecond, 5*time.Millisecond
	}
	for _, strat := range idleStrategies {
		var cpuMs, p50, p99, drain stats.Sample
		cpuOK := true
		for trial := 0; trial < c.trials(); trial++ {
			s, err := sched.NewTopKStream(sched.StreamOptions{
				ExecOptions: engine.ExecOptions{
					Threads:         threads,
					QueueMultiplier: 2,
					Backend:         c.Backend,
					Seed:            c.Seed + uint64(trial*13),
					IdleStrategy:    strat.s,
				},
				Producers:   1,
				LatencyJobs: burst,
			})
			if err != nil {
				return res, fmt.Errorf("idlecost: %s: %w", strat.name, err)
			}
			p := s.NewProducer()
			// Settle: let the workers drain the (empty) queue into their
			// steady idle state — parked on the lot, or deep in capped
			// backoff — before the measurement window opens.
			time.Sleep(settle)
			c0, ok0 := processCPUTime()
			time.Sleep(window)
			c1, ok1 := processCPUTime()
			if ok0 && ok1 {
				cpuMs.Add(float64(c1-c0) / 1e6)
			} else {
				cpuOK = false
			}
			start := time.Now()
			for i := 0; i < burst; i++ {
				p.Push(int64(i), int64(i))
			}
			p.Close()
			sr := s.Wait()
			drain.Add(float64(time.Since(start)) / 1e6)
			if sr.Jobs != int64(burst) {
				return res, fmt.Errorf("idlecost: %s: burst served %d of %d jobs", strat.name, sr.Jobs, burst)
			}
			p50.Add(float64(sr.LatencyP50) / 1e3)
			p99.Add(float64(sr.LatencyP99) / 1e3)
		}
		row := IdleCostRow{
			Strategy: strat.name, Threads: threads, N: burst,
			WindowMs:  float64(window) / 1e6,
			CPUMillis: -1, CPUPct: -1,
			WakeP50Us: p50.Mean(), WakeP99Us: p99.Mean(),
			DrainMs: drain.Mean(),
			HostEnv: Host(),
		}
		if cpuOK {
			row.CPUMillis = cpuMs.Mean()
			row.CPUPct = cpuMs.Mean() / row.WindowMs * 100
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render writes the idle-cost table.
func (r IdleCostResult) Render(w io.Writer) error {
	t := stats.NewTable("strategy", "threads", "burst", "window-ms", "idle-cpu-ms", "idle-cpu-%", "wake-p50us", "wake-p99us", "drain-ms")
	for _, row := range r.Rows {
		t.AddRow(row.Strategy, row.Threads, row.N, row.WindowMs,
			row.CPUMillis, row.CPUPct, row.WakeP50Us, row.WakeP99Us, row.DrainMs)
	}
	return t.Render(w)
}
