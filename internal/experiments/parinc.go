package experiments

import (
	"io"

	"relaxsched/internal/core"
	"relaxsched/internal/cq"
	"relaxsched/internal/engine"
	"relaxsched/internal/stats"
)

// ParIncRow is one point of the parallel-incremental-execution experiment
// (extension): the two randomized incremental algorithms executed by
// goroutines over a concurrent relaxed queue, with wasted pops counted.
// This is the concurrent regime the paper's Section 4 abstracts; the
// expected shape is the same as the sequential model's (waste grows with
// the effective relaxation, i.e. with threads x multiplier, and stays small
// relative to n for these shallow-dependency algorithms). The Backend
// column makes the queue designs directly comparable on identical DAGs.
type ParIncRow struct {
	Algo      Algorithm
	Backend   string
	N         int
	Threads   int
	Extra     float64
	ExtraErr  float64
	ExtraRate float64 // Extra / N
}

// ParIncResult holds the thread sweep per algorithm and backend.
type ParIncResult struct {
	Rows []ParIncRow
}

// ParInc sweeps thread counts for both incremental algorithms across every
// concurrent queue backend (or only c.Backend when one is selected).
func ParInc(c Config) (ParIncResult, error) {
	var res ParIncResult
	n := 64000 / c.scale()
	if n < 500 {
		n = 500
	}
	backends := cq.Backends()
	if c.Backend != "" {
		backends = []cq.Backend{c.Backend}
	}
	for _, algo := range []Algorithm{AlgoSort, AlgoDelaunay} {
		// DAGs are deterministic per (algo, trial) and read-only in
		// ParallelRun; build each once and share it across the backend and
		// thread sweeps.
		dags := make([]*core.DAG, c.trials())
		for trial := range dags {
			dag, err := buildDAG(algo, n, c.Seed+uint64(trial*4999+1))
			if err != nil {
				return res, err
			}
			dags[trial] = dag
		}
		for _, backend := range backends {
			for _, threads := range c.threadSweep() {
				var s stats.Sample
				for trial := 0; trial < c.trials(); trial++ {
					run, err := core.ParallelRun(dags[trial], core.ParallelOptions{ExecOptions: engine.ExecOptions{
						Threads:         threads,
						QueueMultiplier: 2,
						Backend:         backend,
						Seed:            c.Seed + uint64(trial*31+threads),
					}})
					if err != nil {
						return res, err
					}
					s.Add(float64(run.ExtraSteps))
				}
				res.Rows = append(res.Rows, ParIncRow{
					Algo: algo, Backend: string(backend), N: n, Threads: threads,
					Extra: s.Mean(), ExtraErr: s.StdErr(),
					ExtraRate: s.Mean() / float64(n),
				})
			}
		}
	}
	return res, nil
}

// Render writes the parallel-incremental table.
func (r ParIncResult) Render(w io.Writer) error {
	t := stats.NewTable("algo", "backend", "n", "threads", "extra-pops", "stderr", "extra/n")
	for _, row := range r.Rows {
		t.AddRow(string(row.Algo), row.Backend, row.N, row.Threads, row.Extra, row.ExtraErr, row.ExtraRate)
	}
	return t.Render(w)
}
