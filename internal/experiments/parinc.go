package experiments

import (
	"io"

	"relaxsched/internal/core"
	"relaxsched/internal/stats"
)

// ParIncRow is one point of the parallel-incremental-execution experiment
// (extension): the two randomized incremental algorithms executed by
// goroutines over a concurrent MultiQueue, with wasted pops counted. This
// is the concurrent regime the paper's Section 4 abstracts; the expected
// shape is the same as the sequential model's (waste grows with the
// effective relaxation, i.e. with threads x multiplier, and stays small
// relative to n for these shallow-dependency algorithms).
type ParIncRow struct {
	Algo      Algorithm
	N         int
	Threads   int
	Extra     float64
	ExtraErr  float64
	ExtraRate float64 // Extra / N
}

// ParIncResult holds the thread sweep per algorithm.
type ParIncResult struct {
	Rows []ParIncRow
}

// ParInc sweeps thread counts for both incremental algorithms.
func ParInc(c Config) (ParIncResult, error) {
	var res ParIncResult
	n := 64000 / c.scale()
	if n < 500 {
		n = 500
	}
	for _, algo := range []Algorithm{AlgoSort, AlgoDelaunay} {
		for _, threads := range c.threadSweep() {
			var s stats.Sample
			for trial := 0; trial < c.trials(); trial++ {
				dag, err := buildDAG(algo, n, c.Seed+uint64(trial*4999+1))
				if err != nil {
					return res, err
				}
				run, err := core.ParallelRun(dag, core.ParallelOptions{
					Threads:         threads,
					QueueMultiplier: 2,
					Seed:            c.Seed + uint64(trial*31+threads),
				})
				if err != nil {
					return res, err
				}
				s.Add(float64(run.ExtraSteps))
			}
			res.Rows = append(res.Rows, ParIncRow{
				Algo: algo, N: n, Threads: threads,
				Extra: s.Mean(), ExtraErr: s.StdErr(),
				ExtraRate: s.Mean() / float64(n),
			})
		}
	}
	return res, nil
}

// Render writes the parallel-incremental table.
func (r ParIncResult) Render(w io.Writer) error {
	t := stats.NewTable("algo", "n", "threads", "extra-pops", "stderr", "extra/n")
	for _, row := range r.Rows {
		t.AddRow(string(row.Algo), row.N, row.Threads, row.Extra, row.ExtraErr, row.ExtraRate)
	}
	return t.Render(w)
}
