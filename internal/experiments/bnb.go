package experiments

import (
	"io"

	"relaxsched/internal/bnb"
	"relaxsched/internal/multiqueue"
	"relaxsched/internal/sched"
	"relaxsched/internal/stats"
)

// BnBRow is one measurement of the Karp-Zhang-style branch-and-bound
// extension: nodes expanded/pruned under a relaxed scheduler relative to
// exact best-first search.
type BnBRow struct {
	Scheduler string
	K         int
	Expanded  float64
	Pruned    float64
	Overhead  float64 // expanded+pruned relative to exact best-first
	StdErr    float64
}

// BnBResult holds the scheduler sweep.
type BnBResult struct {
	ExactExpanded float64
	Rows          []BnBRow
}

// BnB sweeps relaxation factors for best-first branch-and-bound on a
// deterministic synthetic search tree.
func BnB(c Config) (BnBResult, error) {
	var res BnBResult
	depth := 10
	if c.scale() >= 16 {
		depth = 8
	}
	const budget = 1 << 22
	tree := bnb.Tree{Depth: depth, Branch: 3, MaxEdgeCost: 100, Seed: c.Seed}
	exact, err := bnb.Run(tree, sched.NewExact(budget), budget)
	if err != nil {
		return res, err
	}
	res.ExactExpanded = float64(exact.Expanded)
	exactWork := float64(exact.Expanded + exact.Pruned)

	for _, k := range []int{4, 16, 64} {
		var work, exp, prn stats.Sample
		for trial := 0; trial < c.trials(); trial++ {
			r, err := bnb.Run(tree, sched.NewKRelaxed(budget, k), budget)
			if err != nil {
				return res, err
			}
			if r.Best != exact.Best {
				return res, errWrongOptimum
			}
			work.Add(float64(r.Expanded+r.Pruned) / exactWork)
			exp.Add(float64(r.Expanded))
			prn.Add(float64(r.Pruned))
		}
		res.Rows = append(res.Rows, BnBRow{
			Scheduler: "k-relaxed", K: k,
			Expanded: exp.Mean(), Pruned: prn.Mean(),
			Overhead: work.Mean(), StdErr: work.StdErr(),
		})
	}
	for _, q := range []int{4, 16} {
		var work, exp, prn stats.Sample
		for trial := 0; trial < c.trials(); trial++ {
			mq := multiqueue.New(budget, q, 2, multiqueue.RandomQueue, c.Seed+uint64(trial))
			r, err := bnb.Run(tree, mq, budget)
			if err != nil {
				return res, err
			}
			if r.Best != exact.Best {
				return res, errWrongOptimum
			}
			work.Add(float64(r.Expanded+r.Pruned) / exactWork)
			exp.Add(float64(r.Expanded))
			prn.Add(float64(r.Pruned))
		}
		res.Rows = append(res.Rows, BnBRow{
			Scheduler: "multiqueue", K: q,
			Expanded: exp.Mean(), Pruned: prn.Mean(),
			Overhead: work.Mean(), StdErr: work.StdErr(),
		})
	}
	return res, nil
}

type wrongOptimumError struct{}

func (wrongOptimumError) Error() string {
	return "experiments: relaxed branch-and-bound missed the optimum"
}

var errWrongOptimum = wrongOptimumError{}

// Render writes the branch-and-bound table.
func (r BnBResult) Render(w io.Writer) error {
	t := stats.NewTable("scheduler", "k/queues", "expanded", "pruned", "work-overhead", "stderr")
	for _, row := range r.Rows {
		t.AddRow(row.Scheduler, row.K, row.Expanded, row.Pruned, row.Overhead, row.StdErr)
	}
	return t.Render(w)
}
