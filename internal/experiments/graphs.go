package experiments

import (
	"io"

	"relaxsched/internal/graph"
	"relaxsched/internal/sssp"
	"relaxsched/internal/stats"
)

// GraphRow is one row of the input-statistics table (the paper's "sample
// graphs" list with diameter figures from Section 7).
type GraphRow struct {
	Name         string
	Nodes        int
	Arcs         int
	WMin         int64
	WMax         int64
	HopDiameter  int
	MaxDegree    int
	MeanDegree   float64
	DMax         int64
	DmaxOverWmin float64
}

// GraphsResult holds the statistics for the three families.
type GraphsResult struct {
	Rows []GraphRow
}

// Graphs generates the three input families at the configured scale and
// reports the structural statistics that drive the paper's analysis
// (diameter for the Section 7 discussion, d_max/w_min for Theorem 6.1).
func Graphs(c Config) GraphsResult {
	var res GraphsResult
	for fi, fam := range Families() {
		g := fam.Gen(c, c.Seed+uint64(fi))
		res.Rows = append(res.Rows, describeGraph(fam.Name, g))
	}
	return res
}

func describeGraph(name string, g *graph.Graph) GraphRow {
	wmin, wmax := g.WeightBounds()
	_, maxDeg, meanDeg := graph.DegreeStats(g)
	exact := sssp.Dijkstra(g, 0)
	dmax := sssp.MaxDistance(exact.Dist)
	ratio := 0.0
	if wmin > 0 {
		ratio = float64(dmax) / float64(wmin)
	}
	return GraphRow{
		Name:  name,
		Nodes: g.NumNodes, Arcs: g.NumEdges(),
		WMin: wmin, WMax: wmax,
		HopDiameter: graph.HopDiameterEstimate(g, 0),
		MaxDegree:   maxDeg, MeanDegree: meanDeg,
		DMax: dmax, DmaxOverWmin: ratio,
	}
}

// Render writes the graph-statistics table.
func (r GraphsResult) Render(w io.Writer) error {
	t := stats.NewTable("graph", "nodes", "arcs", "wmin", "wmax",
		"hop-diam", "max-deg", "mean-deg", "dmax", "dmax/wmin")
	for _, row := range r.Rows {
		t.AddRow(row.Name, row.Nodes, row.Arcs, row.WMin, row.WMax,
			row.HopDiameter, row.MaxDegree, row.MeanDegree, row.DMax, row.DmaxOverWmin)
	}
	return t.Render(w)
}
