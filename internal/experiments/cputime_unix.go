//go:build linux || darwin

package experiments

import "syscall"

// processCPUTime returns the process's cumulative user+system CPU time in
// nanoseconds via getrusage(RUSAGE_SELF). The idle-cost experiment diffs
// two readings across a quiet window: with parked workers the delta should
// be near zero, with spinning workers it is the polling bill.
func processCPUTime() (int64, bool) {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0, false
	}
	return ru.Utime.Nano() + ru.Stime.Nano(), true
}
