package experiments

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"relaxsched/internal/cq"
	"relaxsched/internal/engine"
	"relaxsched/internal/fault"
	"relaxsched/internal/stats"
)

// ChaosRow is one point of the fault-injection experiment: a flat task set
// run through the engine on one backend at one thread count under one
// seeded fault plan (internal/fault). The fault columns are identity —
// StallEvery/BlockEvery/Poison name the plan, so trajectories gate the
// faulted rows against the same faulted rows — and every run is verified
// before its row is recorded: each task executed exactly once or
// quarantined exactly once, re-insertions equal to the injector's forced
// blocks, quarantines equal to its fired poisons.
//
// OpsPerSec counts executed (surviving) tasks per second of wall time, so
// the faulted rows report the throughput cost of containment — stalled
// workers, re-inserted blocks, recovered panics — relative to the
// fault-free baseline row (StallEvery = BlockEvery = Poison = 0).
type ChaosRow struct {
	Backend    string
	Threads    int
	StallEvery int // every Nth task per worker stalls (0 = no stalls)
	BlockEvery int // every Nth task per worker is forced Blocked (0 = none)
	Poison     int // number of poisoned (panicking) values in the plan
	N          int // tasks seeded
	Executed   int64
	Failed     int64   // quarantined tasks (== Poison, verified)
	Reinserted int64   // forced-block re-insertions (== injector count, verified)
	OpsPerSec  float64 // executed tasks per second of wall time
	Millis     float64
	HostEnv
}

// ChaosResult holds the backend x threads x fault-plan sweep.
type ChaosResult struct {
	Rows []ChaosRow
}

// chaosFlat is the flat workload under fault injection: n independent
// tasks, each counting its executions so the driver can assert
// exactly-once delivery after the run. Forced blocks and poisons come from
// the injector, never from the workload, so the injector's own counters
// are the ground truth the engine's accounting is checked against.
//
//relax:allow conformance: harness-internal synthetic workload, exercised by this package's own chaos tests (in the CI -race matrix), not a production workload family for the engine grid
type chaosFlat struct {
	n    int
	hits []atomic.Int32
}

func (w *chaosFlat) Frontier(emit func(value, priority int64)) {
	for i := 0; i < w.n; i++ {
		emit(int64(i), int64(i))
	}
}

func (w *chaosFlat) TryExecute(_ *engine.Ctx, value, _ int64) engine.Status {
	w.hits[value].Add(1)
	return engine.Executed
}

// chaosPlans is the fault-plan sweep: a fault-free baseline, a
// stall+block plan (containment overhead without failures), and the full
// plan with poisoned tasks (quarantine on top). Stall lengths are kept
// short so the sweep measures machinery, not sleep time.
func chaosPlans(n int, seed uint64) []fault.Plan {
	poison := make(map[int64]bool)
	for i := 0; i < n; i += 101 {
		poison[int64(i)] = true
	}
	return []fault.Plan{
		{},
		{Seed: seed, StallEvery: 7, MaxStall: 50 * time.Microsecond, BlockEvery: 5, MaxForcedBlocks: 2},
		{Seed: seed, StallEvery: 7, MaxStall: 50 * time.Microsecond, BlockEvery: 5, MaxForcedBlocks: 2, Poison: poison},
	}
}

// planArmed reports whether the plan injects anything.
func planArmed(p fault.Plan) bool {
	return p.StallEvery > 0 || p.BlockEvery > 0 || len(p.Poison) > 0
}

// Chaos sweeps the engine's fault-containment machinery across every
// concurrent queue backend (or only c.Backend when one is selected),
// thread counts and seeded fault plans. It is the measured counterpart of
// enginetest.ChaosConformance: the conformance suite proves the invariants
// hold, this experiment records what holding them costs.
func Chaos(c Config) (ChaosResult, error) {
	var res ChaosResult
	n := 100000 / c.scale()
	if n < 2000 {
		n = 2000
	}
	backends := cq.Backends()
	if c.Backend != "" {
		backends = []cq.Backend{c.Backend}
	}
	for _, backend := range backends {
		for _, threads := range c.threadSweep() {
			for _, plan := range chaosPlans(n, c.Seed) {
				var ops, ms stats.Sample
				var exec, failed, reins int64
				for trial := 0; trial < c.trials(); trial++ {
					wl := &chaosFlat{n: n, hits: make([]atomic.Int32, n)}
					opts := engine.Options{ExecOptions: engine.ExecOptions{
						Threads:         threads,
						QueueMultiplier: 2,
						Backend:         backend,
						Seed:            c.Seed + uint64(trial*31+threads),
					}}
					var in *fault.Injector
					if planArmed(plan) {
						p := plan
						p.Seed = plan.Seed + uint64(trial)
						in = fault.New(p, threads)
						opts.Injector = in
					}
					var st engine.Result
					var runErr error
					elapsed := timeIt(func() { st, runErr = engine.Run(wl, opts) })
					if runErr != nil {
						return res, fmt.Errorf("chaos: %s/%d threads: %w", backend, threads, runErr)
					}
					if err := verifyChaosRun(wl, in, st, plan); err != nil {
						return res, fmt.Errorf("chaos: %s/%d threads: %w", backend, threads, err)
					}
					exec, failed, reins = st.Executed, st.Failed, st.Reinserted
					ops.Add(float64(st.Executed) / elapsed.Seconds())
					ms.Add(elapsed.Seconds() * 1e3)
				}
				res.Rows = append(res.Rows, ChaosRow{
					Backend: string(backend), Threads: threads,
					StallEvery: plan.StallEvery, BlockEvery: plan.BlockEvery,
					Poison: len(plan.Poison), N: n,
					Executed: exec, Failed: failed, Reinserted: reins,
					OpsPerSec: ops.Mean(), Millis: ms.Mean(),
					HostEnv: Host(),
				})
			}
		}
	}
	return res, nil
}

// verifyChaosRun checks one faulted run against the injector's ground
// truth: the engine's books must balance exactly even under injection.
func verifyChaosRun(wl *chaosFlat, in *fault.Injector, st engine.Result, plan fault.Plan) error {
	if st.Interrupted || st.Stall != nil {
		return fmt.Errorf("run interrupted or stalled under injection: %+v", st.Stats)
	}
	var fired, forced int64
	if in != nil {
		fired = in.Panics()
		forced = in.ForcedBlocks()
		if f := int64(len(in.Fired())); f != fired {
			return fmt.Errorf("injector fired %d poisons but counted %d panics", f, fired)
		}
	}
	// Flat task set: every poisoned value is popped eventually, so every
	// poison in the plan must have fired.
	if fired != int64(len(plan.Poison)) {
		return fmt.Errorf("%d of %d poisons fired", fired, len(plan.Poison))
	}
	if st.Failed != fired {
		return fmt.Errorf("quarantined %d tasks, injector fired %d poisons", st.Failed, fired)
	}
	if st.Reinserted != forced {
		return fmt.Errorf("reinserted %d, injector forced %d blocks", st.Reinserted, forced)
	}
	if st.Executed != int64(wl.n)-fired {
		return fmt.Errorf("executed %d of %d tasks with %d quarantined", st.Executed, wl.n, fired)
	}
	for i := range wl.hits {
		want := int32(1)
		if plan.Poison[int64(i)] {
			want = 0 // poisons panic before the workload runs
		}
		if got := wl.hits[i].Load(); got != want {
			return fmt.Errorf("task %d executed %d times, want %d", i, got, want)
		}
	}
	return nil
}

// Render writes the fault-injection table.
func (r ChaosResult) Render(w io.Writer) error {
	t := stats.NewTable("backend", "threads", "stall-every", "block-every", "poison", "n", "executed", "failed", "reinserted", "ops/sec", "ms")
	for _, row := range r.Rows {
		t.AddRow(row.Backend, row.Threads, row.StallEvery, row.BlockEvery, row.Poison,
			row.N, row.Executed, row.Failed, row.Reinserted, row.OpsPerSec, row.Millis)
	}
	return t.Render(w)
}
