package experiments

import (
	"io"

	"relaxsched/internal/engine"
	"relaxsched/internal/sssp"
	"relaxsched/internal/stats"
)

// Fig2Row is one point of Figure 2: relaxation overhead as a function of
// the queue multiplier (queues = multiplier x threads) at a fixed thread
// count. The multiplier is proportional to the MultiQueue's average
// relaxation factor [4], so this sweeps k while holding parallelism fixed.
type Fig2Row struct {
	Graph      string
	Threads    int
	Multiplier int
	Overhead   float64
	OverheadE  float64
}

// Fig2Result holds the queue-multiplier sweep.
type Fig2Result struct {
	Rows []Fig2Row
}

// Fig2Multipliers is the multiplier sweep used by the paper's Figure 2.
var Fig2Multipliers = []int{1, 2, 3, 4, 6, 8}

// Fig2 reproduces Figure 2 for the given thread counts (the paper shows
// one subplot per thread count).
func Fig2(c Config, threadCounts []int) Fig2Result {
	if len(threadCounts) == 0 {
		maxT := c.maxThreads()
		threadCounts = []int{maxT / 2, maxT}
		if threadCounts[0] < 1 {
			threadCounts = threadCounts[1:]
		}
	}
	var res Fig2Result
	for fi, fam := range Families() {
		g := fam.Gen(c, c.Seed+uint64(fi))
		exact := sssp.Dijkstra(g, 0)
		for _, threads := range threadCounts {
			for _, mult := range Fig2Multipliers {
				var ov stats.Sample
				for trial := 0; trial < c.trials(); trial++ {
					seed := c.Seed ^ uint64(trial*131+threads*17+mult)
					pr := sssp.ParallelWith(g, 0, sssp.ParallelOptions{ExecOptions: engine.ExecOptions{
						Threads:         threads,
						QueueMultiplier: mult,
						Backend:         c.Backend,
						Seed:            seed,
					}})
					if !sssp.Equal(pr.Dist, exact.Dist) {
						panic("experiments: parallel SSSP produced wrong distances")
					}
					ov.Add(float64(pr.Processed) / float64(exact.Reached))
				}
				res.Rows = append(res.Rows, Fig2Row{
					Graph:      fam.Name,
					Threads:    threads,
					Multiplier: mult,
					Overhead:   ov.Mean(),
					OverheadE:  ov.StdErr(),
				})
			}
		}
	}
	return res
}

// Render writes the Figure 2 table.
func (r Fig2Result) Render(w io.Writer) error {
	t := stats.NewTable("graph", "threads", "multiplier", "overhead", "stderr")
	for _, row := range r.Rows {
		t.AddRow(row.Graph, row.Threads, row.Multiplier, row.Overhead, row.OverheadE)
	}
	return t.Render(w)
}
