package experiments

import (
	"io"
	"runtime"
	"time"

	"relaxsched/internal/engine"
	"relaxsched/internal/sssp"
	"relaxsched/internal/stats"
)

// Fig1Row is one point of Figure 1: parallel SSSP over a MultiQueue with
// queues = 2 x threads, on one graph family at one thread count.
type Fig1Row struct {
	Graph     string
	Threads   int
	Overhead  float64 // tasks processed relaxed / tasks processed exact
	OverheadE float64 // standard error over trials
	Speedup   float64 // sequential Dijkstra time / parallel time
	SpeedupE  float64
	Millis    float64 // mean parallel wall time
}

// Fig1Result holds the full sweep for Figure 1 (left: overheads; right:
// speedups).
type Fig1Result struct {
	Rows []Fig1Row
}

// Fig1 reproduces Figure 1: for each graph family and thread count, the
// relaxation overhead (left plot) and the speedup over sequential Dijkstra
// (right plot). The MultiQueue uses 2 queues per thread, as in the paper.
func Fig1(c Config) Fig1Result {
	var res Fig1Result
	for fi, fam := range Families() {
		g := fam.Gen(c, c.Seed+uint64(fi))
		exact := sssp.Dijkstra(g, 0)
		seqTime := timeIt(func() { sssp.Dijkstra(g, 0) })
		for _, threads := range c.threadSweep() {
			var ov, sp, ms stats.Sample
			for trial := 0; trial < c.trials(); trial++ {
				seed := c.Seed ^ uint64(trial*1000+threads)
				var pr sssp.ParallelResult
				elapsed := timeIt(func() {
					pr = sssp.ParallelWith(g, 0, sssp.ParallelOptions{ExecOptions: engine.ExecOptions{
						Threads:         threads,
						QueueMultiplier: 2,
						Backend:         c.Backend,
						Seed:            seed,
					}})
				})
				if !sssp.Equal(pr.Dist, exact.Dist) {
					panic("experiments: parallel SSSP produced wrong distances")
				}
				ov.Add(float64(pr.Processed) / float64(exact.Reached))
				sp.Add(seqTime.Seconds() / elapsed.Seconds())
				ms.Add(float64(elapsed.Milliseconds()))
			}
			res.Rows = append(res.Rows, Fig1Row{
				Graph:     fam.Name,
				Threads:   threads,
				Overhead:  ov.Mean(),
				OverheadE: ov.StdErr(),
				Speedup:   sp.Mean(),
				SpeedupE:  sp.StdErr(),
				Millis:    ms.Mean(),
			})
		}
	}
	return res
}

// RenderOverheads writes the Figure 1 (left) table.
func (r Fig1Result) RenderOverheads(w io.Writer) error {
	t := stats.NewTable("graph", "threads", "overhead", "stderr")
	for _, row := range r.Rows {
		t.AddRow(row.Graph, row.Threads, row.Overhead, row.OverheadE)
	}
	return t.Render(w)
}

// RenderSpeedups writes the Figure 1 (right) table.
func (r Fig1Result) RenderSpeedups(w io.Writer) error {
	t := stats.NewTable("graph", "threads", "speedup", "stderr", "ms")
	for _, row := range r.Rows {
		t.AddRow(row.Graph, row.Threads, row.Speedup, row.SpeedupE, row.Millis)
	}
	return t.Render(w)
}

// timeIt times one trial with the garbage collector run beforehand, so the
// timed window measures the workload and not the luck of where the
// previous trials' collection cycle lands — on millisecond-scale trials a
// mid-run GC multiplies the sample by several times and dominates the
// row's mean.
func timeIt(f func()) time.Duration {
	runtime.GC()
	start := time.Now()
	f()
	return time.Since(start)
}
