package experiments

import (
	"io"
	"math"

	"relaxsched/internal/graph"
	"relaxsched/internal/mis"
	"relaxsched/internal/multiqueue"
	"relaxsched/internal/sched"
	"relaxsched/internal/stats"
)

// IterativeRow is one measurement of the greedy iterative algorithms (MIS,
// coloring) under relaxed schedulers — the future-work generalization the
// paper's conclusion points to, previously analyzed in [3].
type IterativeRow struct {
	Algo      string // "greedy-mis" or "greedy-coloring"
	Scheduler string
	N         int
	K         int
	Extra     float64
	ExtraErr  float64
	PerLogN   float64
}

// IterativeResult holds the greedy-iterative sweeps.
type IterativeResult struct {
	Rows []IterativeRow
}

// Iterative sweeps n and k for greedy MIS and greedy coloring on random
// graphs under the adversarial k-relaxed scheduler and a MultiQueue.
func Iterative(c Config) (IterativeResult, error) {
	var res IterativeResult
	baseN := 16000 / c.scale()
	if baseN < 250 {
		baseN = 250
	}
	type algo struct {
		name string
		run  func(w *mis.Workload, s sched.Scheduler) (int64, error)
	}
	algos := []algo{
		{"greedy-mis", func(w *mis.Workload, s sched.Scheduler) (int64, error) {
			inSet, r, err := mis.GreedyMIS(w, s)
			if err != nil {
				return 0, err
			}
			if err := mis.VerifyMIS(w.G, inSet); err != nil {
				return 0, err
			}
			return r.ExtraSteps, nil
		}},
		{"greedy-coloring", func(w *mis.Workload, s sched.Scheduler) (int64, error) {
			colors, r, err := mis.GreedyColoring(w, s)
			if err != nil {
				return 0, err
			}
			if err := mis.VerifyColoring(w.G, colors); err != nil {
				return 0, err
			}
			return r.ExtraSteps, nil
		}},
	}
	const fixedK = 4
	for _, a := range algos {
		for _, n := range []int{baseN / 4, baseN / 2, baseN} {
			var s stats.Sample
			for trial := 0; trial < c.trials(); trial++ {
				g := graph.Random(n, 3*n, 10, c.Seed+uint64(trial*11+n))
				w := mis.NewWorkload(g, c.Seed+uint64(trial))
				extra, err := a.run(w, sched.NewKRelaxed(n, fixedK))
				if err != nil {
					return res, err
				}
				s.Add(float64(extra))
			}
			res.Rows = append(res.Rows, IterativeRow{
				Algo: a.name, Scheduler: "k-relaxed", N: n, K: fixedK,
				Extra: s.Mean(), ExtraErr: s.StdErr(),
				PerLogN: s.Mean() / math.Log(float64(n)),
			})
		}
		// MultiQueue reference at the largest n.
		var s stats.Sample
		for trial := 0; trial < c.trials(); trial++ {
			g := graph.Random(baseN, 3*baseN, 10, c.Seed+uint64(trial*11+baseN))
			w := mis.NewWorkload(g, c.Seed+uint64(trial))
			mq := multiqueue.New(baseN, 8, 2, multiqueue.RandomQueue, c.Seed+uint64(trial))
			extra, err := a.run(w, mq)
			if err != nil {
				return res, err
			}
			s.Add(float64(extra))
		}
		res.Rows = append(res.Rows, IterativeRow{
			Algo: a.name, Scheduler: "multiqueue-8", N: baseN, K: 8,
			Extra: s.Mean(), ExtraErr: s.StdErr(),
			PerLogN: s.Mean() / math.Log(float64(baseN)),
		})
	}
	return res, nil
}

// Render writes the greedy-iterative table.
func (r IterativeResult) Render(w io.Writer) error {
	t := stats.NewTable("algo", "scheduler", "n", "k", "extra-steps", "stderr", "extra/ln(n)")
	for _, row := range r.Rows {
		t.AddRow(row.Algo, row.Scheduler, row.N, row.K, row.Extra, row.ExtraErr, row.PerLogN)
	}
	return t.Render(w)
}
