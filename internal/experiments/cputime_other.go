//go:build !linux && !darwin

package experiments

// processCPUTime is unsupported off linux/darwin: the idle-cost experiment
// still runs (wake latency and drain time are portable) but reports CPU
// consumption as unavailable.
func processCPUTime() (int64, bool) { return 0, false }
