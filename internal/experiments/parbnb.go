package experiments

import (
	"io"

	"relaxsched/internal/bnb"
	"relaxsched/internal/cq"
	"relaxsched/internal/engine"
	"relaxsched/internal/sched"
	"relaxsched/internal/stats"
)

// ParBnBRow is one point of the parallel branch-and-bound experiment: the
// Karp-Zhang dynamic-task workload on the generic engine, through one
// concurrent queue backend at one thread count. WorkOverhead is
// (expanded + pruned) relative to the exact best-first search — this
// workload's analogue of the paper's extra steps — and OpsPerSec counts
// pops per second of wall time, folding raw queue throughput and
// speculation waste into one comparable number.
type ParBnBRow struct {
	Backend      string
	Threads      int
	Expanded     float64
	Pruned       float64
	WorkOverhead float64
	OverheadErr  float64
	OpsPerSec    float64
	Millis       float64
	HostEnv
}

// ParBnBResult holds the backend x threads sweep.
type ParBnBResult struct {
	ExactExpanded float64
	Rows          []ParBnBRow
}

// ParBnB sweeps thread counts for parallel best-first branch-and-bound
// across every concurrent queue backend (or only c.Backend when one is
// selected). Every run must reach the exact optimum; only the wasted
// expansions vary with relaxation.
func ParBnB(c Config) (ParBnBResult, error) {
	var res ParBnBResult
	depth := 11
	if c.scale() >= 16 {
		depth = 8
	}
	budget := 1 << 20
	if c.scale() >= 16 {
		budget = 1 << 16
	}
	tree := bnb.Tree{Depth: depth, Branch: 3, MaxEdgeCost: 100, Seed: c.Seed}
	exact, err := bnb.Run(tree, sched.NewExact(budget), budget)
	if err != nil {
		return res, err
	}
	res.ExactExpanded = float64(exact.Expanded)
	exactWork := float64(exact.Expanded + exact.Pruned)

	backends := cq.Backends()
	if c.Backend != "" {
		backends = []cq.Backend{c.Backend}
	}
	for _, backend := range backends {
		for _, threads := range c.threadSweep() {
			var work, exp, prn, ops, ms stats.Sample
			for trial := 0; trial < c.trials(); trial++ {
				var r bnb.Result
				var runErr error
				elapsed := timeIt(func() {
					r, runErr = bnb.ParallelRun(tree, bnb.ParallelOptions{
						ExecOptions: engine.ExecOptions{
							Threads:         threads,
							QueueMultiplier: 2,
							Backend:         backend,
							Seed:            c.Seed + uint64(trial*17+threads),
						},
						Budget: budget,
					})
				})
				if runErr != nil {
					return res, runErr
				}
				if r.Best != exact.Best {
					return res, errWrongOptimum
				}
				work.Add(float64(r.Expanded+r.Pruned) / exactWork)
				exp.Add(float64(r.Expanded))
				prn.Add(float64(r.Pruned))
				ops.Add(float64(r.Pops) / elapsed.Seconds())
				ms.Add(elapsed.Seconds() * 1e3)
			}
			res.Rows = append(res.Rows, ParBnBRow{
				Backend: string(backend), Threads: threads,
				Expanded: exp.Mean(), Pruned: prn.Mean(),
				WorkOverhead: work.Mean(), OverheadErr: work.StdErr(),
				OpsPerSec: ops.Mean(), Millis: ms.Mean(),
				HostEnv: Host(),
			})
		}
	}
	return res, nil
}

// Render writes the parallel branch-and-bound table.
func (r ParBnBResult) Render(w io.Writer) error {
	t := stats.NewTable("backend", "threads", "expanded", "pruned", "work-overhead", "stderr", "ops/sec", "ms")
	for _, row := range r.Rows {
		t.AddRow(row.Backend, row.Threads, row.Expanded, row.Pruned, row.WorkOverhead, row.OverheadErr, row.OpsPerSec, row.Millis)
	}
	return t.Render(w)
}
