package experiments

import (
	"io"

	"relaxsched/internal/cq"
	"relaxsched/internal/engine"
	"relaxsched/internal/sssp"
	"relaxsched/internal/stats"
)

// BatchSweepSizes are the worker batch sizes the sweep covers. Size 1 is
// the unbatched per-element protocol (the PR-1 baseline) so every recorded
// trajectory carries its own before/after comparison.
var BatchSweepSizes = []int{1, 8, 32, 64}

// BatchSweepRow is one point of the batch-amortization sweep: parallel
// SSSP through one backend at one worker batch size. OpsPerSec counts
// popped pairs per second of wall time — the engine's end-to-end hot-path
// throughput — and Overhead shows what the amortization costs in
// relaxation quality (batched pops take whole runs from one internal
// structure, so ranks grow with the batch).
type BatchSweepRow struct {
	Graph   string
	Backend string
	Threads int
	Batch   int
	ParallelSSSPStats
}

// BatchSweepResult holds the full batch x backend x threads sweep.
type BatchSweepResult struct {
	Rows []BatchSweepRow
}

// BatchSweep measures what per-worker batching buys each backend on
// parallel SSSP: same graphs, same seeds, only the batch size (and with it
// the number of coordination rounds per element) varies. Batch size 1 is
// the paper's per-element protocol; larger sizes amortize one lock
// acquisition or CAS over the whole batch at the price of coarser
// relaxation. This is the experiment behind BENCH_PR2.json.
func BatchSweep(c Config) BatchSweepResult {
	var res BatchSweepResult
	for fi, fam := range Families() {
		g := fam.Gen(c, c.Seed+uint64(fi))
		exact := sssp.Dijkstra(g, 0)
		seqTime := timeIt(func() { sssp.Dijkstra(g, 0) })
		for _, backend := range cq.Backends() {
			for _, threads := range c.threadSweep() {
				for _, batch := range BatchSweepSizes {
					st := measureParallelSSSP(c, g, exact, seqTime, sssp.ParallelOptions{ExecOptions: engine.ExecOptions{
						Threads:         threads,
						QueueMultiplier: 2,
						Backend:         backend,
						BatchSize:       batch,
					}}, func(trial int) uint64 { return c.Seed ^ uint64(trial*10000+threads*100+batch) })
					res.Rows = append(res.Rows, BatchSweepRow{
						Graph:             fam.Name,
						Backend:           string(backend),
						Threads:           threads,
						Batch:             batch,
						ParallelSSSPStats: st,
					})
				}
			}
		}
	}
	return res
}

// Render writes the batch-sweep table.
func (r BatchSweepResult) Render(w io.Writer) error {
	t := stats.NewTable("graph", "backend", "threads", "batch", "overhead", "stderr", "ops/sec", "speedup", "ms")
	for _, row := range r.Rows {
		t.AddRow(row.Graph, row.Backend, row.Threads, row.Batch, row.Overhead, row.OverheadE, row.OpsPerSec, row.Speedup, row.Millis)
	}
	return t.Render(w)
}
