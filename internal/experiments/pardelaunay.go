package experiments

import (
	"fmt"
	"io"

	"relaxsched/internal/cq"
	"relaxsched/internal/delaunay"
	"relaxsched/internal/engine"
	"relaxsched/internal/geom"
	"relaxsched/internal/rng"
	"relaxsched/internal/stats"
)

// ParDelaunayRow is one point of the parallel-Delaunay experiment: the
// on-line-dependency-discovery workload (randomized incremental
// Bowyer-Watson over per-triangle claim states) on the generic engine,
// through one concurrent queue backend at one thread count. Blocked counts
// pops whose cavity claim lost to a racing insertion and were re-inserted
// — this workload's extra steps, discovered during execution rather than
// read off a pre-built DAG — and OpsPerSec counts pops per second of wall
// time.
type ParDelaunayRow struct {
	Backend     string
	N           int
	Threads     int
	Blocked     float64
	BlockedErr  float64
	BlockedRate float64 // Blocked / N
	OpsPerSec   float64
	Millis      float64
	HostEnv
}

// ParDelaunayResult holds the backend x threads sweep.
type ParDelaunayResult struct {
	Rows []ParDelaunayRow
}

// randomPointSet draws n uniform points in the unit square. The generator
// order doubles as the random insertion order of the randomized
// incremental algorithm.
func randomPointSet(n int, seed uint64) []geom.Point {
	r := rng.New(seed)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: r.Float64(), Y: r.Float64()}
	}
	return pts
}

// ParDelaunay sweeps thread counts for parallel Delaunay triangulation
// across every concurrent queue backend (or only c.Backend when one is
// selected). The mesh is verified on every run: the Delaunay triangulation
// of points in general position is unique, so the parallel mesh must equal
// the sequential Triangulate mesh triangle for triangle — the sweep then
// measures only blocked-claim waste and throughput.
func ParDelaunay(c Config) (ParDelaunayResult, error) {
	var res ParDelaunayResult
	n := 20000 / c.scale()
	if n < 256 {
		n = 256
	}
	backends := cq.Backends()
	if c.Backend != "" {
		backends = []cq.Backend{c.Backend}
	}
	// One point set (and its sequential ground-truth mesh) per trial,
	// shared across the backend and thread sweeps.
	points := make([][]geom.Point, c.trials())
	meshes := make([][]delaunay.Triangle, c.trials())
	for trial := range points {
		points[trial] = randomPointSet(n, c.Seed+uint64(trial*13+n))
		mesh, err := delaunay.Triangulate(points[trial], nil)
		if err != nil {
			return res, fmt.Errorf("pardelaunay: sequential triangulation: %w", err)
		}
		meshes[trial] = mesh
	}
	for _, backend := range backends {
		for _, threads := range c.threadSweep() {
			var blocked, ops, ms stats.Sample
			for trial := 0; trial < c.trials(); trial++ {
				var pr delaunay.ParallelResult
				var mesh []delaunay.Triangle
				var runErr error
				elapsed := timeIt(func() {
					mesh, pr, runErr = delaunay.ParallelTriangulate(points[trial], nil, delaunay.ParallelOptions{ExecOptions: engine.ExecOptions{
						Threads:         threads,
						QueueMultiplier: 2,
						Backend:         backend,
						Seed:            c.Seed + uint64(trial*41+threads),
					}})
				})
				if runErr != nil {
					return res, fmt.Errorf("pardelaunay: %s/%d threads: %w", backend, threads, runErr)
				}
				if !delaunay.MeshesEqual(mesh, meshes[trial]) {
					return res, fmt.Errorf("pardelaunay: %s/%d threads: mesh differs from sequential triangulation", backend, threads)
				}
				blocked.Add(float64(pr.Blocked))
				ops.Add(float64(pr.Pops) / elapsed.Seconds())
				ms.Add(elapsed.Seconds() * 1e3)
			}
			res.Rows = append(res.Rows, ParDelaunayRow{
				Backend: string(backend), N: n, Threads: threads,
				Blocked: blocked.Mean(), BlockedErr: blocked.StdErr(),
				BlockedRate: blocked.Mean() / float64(n),
				OpsPerSec:   ops.Mean(), Millis: ms.Mean(),
				HostEnv: Host(),
			})
		}
	}
	return res, nil
}

// Render writes the parallel-Delaunay table.
func (r ParDelaunayResult) Render(w io.Writer) error {
	t := stats.NewTable("backend", "n", "threads", "blocked", "stderr", "blocked/n", "ops/sec", "ms")
	for _, row := range r.Rows {
		t.AddRow(row.Backend, row.N, row.Threads, row.Blocked, row.BlockedErr, row.BlockedRate, row.OpsPerSec, row.Millis)
	}
	return t.Render(w)
}
