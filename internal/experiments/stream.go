package experiments

import (
	"fmt"
	"io"

	"relaxsched/internal/cq"
	"relaxsched/internal/engine"
	"relaxsched/internal/sched"
	"relaxsched/internal/stats"
)

// StreamRow is one point of the streaming top-k experiment: the open-system
// engine workload (external producers emit prioritized jobs at a fixed
// arrival rate while workers drain in relaxed priority order) through one
// concurrent queue backend at one thread count and one per-producer arrival
// rate (jobs/sec; 0 = unthrottled). Every run is verified — each streamed
// job executed exactly once — before its row is recorded.
//
// MeanRankErr is the job-wise |executed position - true priority position|
// averaged over the N streamed jobs; RankErrPerJob normalizes it by N so
// rows are comparable across scales. Under throttled arrivals the error
// floor comes from arrival order (a top job arriving last cannot run
// first), under unthrottled arrivals from the queue's relaxation — the
// sweep spans both regimes.
type StreamRow struct {
	Backend       string
	Threads       int
	Producers     int
	Rate          int // per-producer arrival rate in jobs/sec; 0 = unthrottled
	N             int // total jobs streamed
	MeanRankErr   float64
	MeanRankErrE  float64
	MaxRankErr    float64
	RankErrPerJob float64 // MeanRankErr / N
	OpsPerSec     float64 // jobs executed per second of wall time
	Millis        float64
	// P50Us, P99Us and P999Us are per-job sojourn-latency quantiles
	// (push-to-execute, microseconds, trial means) from the engine's
	// fixed-bucket histogram — the streaming SLO columns next to the rank
	// error: relaxation trades ordering fidelity for latency/throughput,
	// and these rows show both sides of that trade.
	P50Us  float64
	P99Us  float64
	P999Us float64
	HostEnv
}

// StreamResult holds the backend x threads x arrival-rate sweep.
type StreamResult struct {
	Rows []StreamRow
}

// StreamRates is the per-producer arrival-rate sweep in jobs/sec: an
// unthrottled drain (queue relaxation dominates the rank error), a fast
// stream and a slow stream (arrival order dominates).
var StreamRates = []int{0, 50000, 5000}

// streamProducers is the number of arrival goroutines per run.
const streamProducers = 2

// Stream sweeps the streaming top-k job scheduler across every concurrent
// queue backend (or only c.Backend when one is selected), thread counts and
// arrival rates. This is the first open-system experiment: unlike every
// other engine workload the frontier is fed from outside the worker pool,
// so the rows measure relaxed priority scheduling under live arrivals —
// the serving regime the MultiQueue/SprayList designs target.
func Stream(c Config) (StreamResult, error) {
	var res StreamResult
	jobsPerProducer := 30000 / c.scale()
	if jobsPerProducer < 250 {
		jobsPerProducer = 250
	}
	total := streamProducers * jobsPerProducer
	backends := cq.Backends()
	if c.Backend != "" {
		backends = []cq.Backend{c.Backend}
	}
	for _, backend := range backends {
		for _, threads := range c.threadSweep() {
			for _, rate := range StreamRates {
				var mean, maxE, ops, ms, p50, p99, p999 stats.Sample
				for trial := 0; trial < c.trials(); trial++ {
					var sr sched.StreamResult
					var runErr error
					elapsed := timeIt(func() {
						sr, runErr = sched.ParallelTopK(sched.TopKRunOptions{
							StreamOptions: sched.StreamOptions{
								ExecOptions: engine.ExecOptions{
									Threads:         threads,
									QueueMultiplier: 2,
									Backend:         backend,
									Seed:            c.Seed + uint64(trial*59+threads*7+rate),
								},
								Producers: streamProducers,
							},
							JobsPerProducer: jobsPerProducer,
							Rate:            rate,
						})
					})
					if runErr != nil {
						return res, fmt.Errorf("stream: %s/%d threads/rate %d: %w", backend, threads, rate, runErr)
					}
					mean.Add(sr.MeanRankError)
					maxE.Add(float64(sr.MaxRankError))
					ops.Add(float64(sr.Jobs) / elapsed.Seconds())
					ms.Add(elapsed.Seconds() * 1e3)
					p50.Add(float64(sr.LatencyP50) / 1e3)
					p99.Add(float64(sr.LatencyP99) / 1e3)
					p999.Add(float64(sr.LatencyP999) / 1e3)
				}
				res.Rows = append(res.Rows, StreamRow{
					Backend: string(backend), Threads: threads,
					Producers: streamProducers, Rate: rate, N: total,
					MeanRankErr: mean.Mean(), MeanRankErrE: mean.StdErr(),
					MaxRankErr:    maxE.Mean(),
					RankErrPerJob: mean.Mean() / float64(total),
					OpsPerSec:     ops.Mean(), Millis: ms.Mean(),
					P50Us: p50.Mean(), P99Us: p99.Mean(), P999Us: p999.Mean(),
					HostEnv: Host(),
				})
			}
		}
	}
	return res, nil
}

// Render writes the streaming-scheduler table.
func (r StreamResult) Render(w io.Writer) error {
	t := stats.NewTable("backend", "threads", "producers", "rate/s", "jobs", "rank-err", "stderr", "max", "err/job", "ops/sec", "p50us", "p99us", "p999us", "ms")
	for _, row := range r.Rows {
		t.AddRow(row.Backend, row.Threads, row.Producers, row.Rate, row.N,
			row.MeanRankErr, row.MeanRankErrE, row.MaxRankErr, row.RankErrPerJob, row.OpsPerSec,
			row.P50Us, row.P99Us, row.P999Us, row.Millis)
	}
	return t.Render(w)
}
