package experiments

import (
	"fmt"
	"io"
	"math"

	"relaxsched/internal/bstsort"
	"relaxsched/internal/core"
	"relaxsched/internal/delaunay"
	"relaxsched/internal/geom"
	"relaxsched/internal/multiqueue"
	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
	"relaxsched/internal/sssp"
	"relaxsched/internal/stats"
	"relaxsched/internal/txn"
)

// Algorithm names one of the two randomized incremental algorithms the
// upper and lower bounds of Sections 3 and 5 cover.
type Algorithm string

// The two incremental algorithms analyzed by Theorems 3.3 and 5.1.
const (
	AlgoSort     Algorithm = "bst-sort"
	AlgoDelaunay Algorithm = "delaunay"
)

// buildDAG constructs the dependency DAG for an algorithm at size n.
func buildDAG(algo Algorithm, n int, seed uint64) (*core.DAG, error) {
	switch algo {
	case AlgoSort:
		r := rng.New(seed)
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = r.Int63()
		}
		dag, _ := bstsort.BuildDAG(keys)
		return dag, nil
	case AlgoDelaunay:
		r := rng.New(seed)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{X: r.Float64(), Y: r.Float64()}
		}
		dag, _, err := delaunay.BuildDAG(pts)
		return dag, err
	default:
		return nil, fmt.Errorf("experiments: unknown algorithm %q", algo)
	}
}

// Thm33Row is one measurement of extra steps under the adversarial
// k-relaxed scheduler (Theorem 3.3: expected extra steps O(k^4 log n)).
type Thm33Row struct {
	Algo       Algorithm
	N          int
	K          int
	ExtraSteps float64
	StdErr     float64
	PerLogN    float64 // ExtraSteps / ln n, flat if growth is logarithmic
}

// Thm33Result holds the n-sweep and k-sweep for Theorem 3.3.
type Thm33Result struct {
	Rows []Thm33Row
	// LogFitR2 per algorithm: r^2 of ExtraSteps against ln n at fixed k.
	LogFitR2 map[Algorithm]float64
}

// Thm33 validates the Theorem 3.3 shape: at fixed k, extra steps grow like
// log n; at fixed n they grow polynomially in k.
func Thm33(c Config) (Thm33Result, error) {
	res := Thm33Result{LogFitR2: map[Algorithm]float64{}}
	baseN := 16000 / c.scale()
	if baseN < 250 {
		baseN = 250
	}
	const fixedK = 4
	for _, algo := range []Algorithm{AlgoSort, AlgoDelaunay} {
		// n sweep at fixed k.
		var xs, ys []float64
		for _, n := range []int{baseN / 8, baseN / 4, baseN / 2, baseN} {
			var s stats.Sample
			for trial := 0; trial < c.trials(); trial++ {
				dag, err := buildDAG(algo, n, c.Seed+uint64(trial*7919+n))
				if err != nil {
					return res, err
				}
				run, err := core.Run(dag, sched.NewKRelaxed(n, fixedK), core.Options{})
				if err != nil {
					return res, err
				}
				s.Add(float64(run.ExtraSteps))
			}
			res.Rows = append(res.Rows, Thm33Row{
				Algo: algo, N: n, K: fixedK,
				ExtraSteps: s.Mean(), StdErr: s.StdErr(),
				PerLogN: s.Mean() / math.Log(float64(n)),
			})
			xs = append(xs, float64(n))
			ys = append(ys, s.Mean())
		}
		_, _, r2 := stats.LogFit(xs, ys)
		res.LogFitR2[algo] = r2
		// k sweep at fixed n.
		nFixed := baseN / 2
		for _, k := range []int{1, 2, 4, 8, 16} {
			var s stats.Sample
			for trial := 0; trial < c.trials(); trial++ {
				dag, err := buildDAG(algo, nFixed, c.Seed+uint64(trial*104729+k))
				if err != nil {
					return res, err
				}
				run, err := core.Run(dag, sched.NewKRelaxed(nFixed, k), core.Options{})
				if err != nil {
					return res, err
				}
				s.Add(float64(run.ExtraSteps))
			}
			res.Rows = append(res.Rows, Thm33Row{
				Algo: algo, N: nFixed, K: k,
				ExtraSteps: s.Mean(), StdErr: s.StdErr(),
				PerLogN: s.Mean() / math.Log(float64(nFixed)),
			})
		}
	}
	return res, nil
}

// Render writes the Theorem 3.3 table.
func (r Thm33Result) Render(w io.Writer) error {
	t := stats.NewTable("algo", "n", "k", "extra-steps", "stderr", "extra/ln(n)")
	for _, row := range r.Rows {
		t.AddRow(string(row.Algo), row.N, row.K, row.ExtraSteps, row.StdErr, row.PerLogN)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	for algo, r2 := range r.LogFitR2 {
		if _, err := fmt.Fprintf(w, "log-fit r^2 (%s, k=4 n-sweep): %.3f\n", algo, r2); err != nil {
			return err
		}
	}
	return nil
}

// Thm51Row is one measurement of the Section 5 lower bound: extra steps
// and adjacent-label inversions under a (benign) MultiQueue scheduler.
type Thm51Row struct {
	Algo        Algorithm
	N           int
	Queues      int
	ExtraSteps  float64
	StdErr      float64
	LowerBound  float64 // (1/8) ln n, Theorem 5.1's floor
	InvRate     float64 // measured Pr[inv_{i,i+1}]; Claim 1 says >= 1/8
	InvRateErr  float64
	ExtraPerLog float64
}

// Thm51Result holds the lower-bound sweep.
type Thm51Result struct {
	Rows []Thm51Row
}

// Thm51 validates the Section 5 lower bound: under a MultiQueue, extra
// steps are at least (1/8) ln n and adjacent inversions occur with
// probability at least 1/8 (Claim 1).
func Thm51(c Config) (Thm51Result, error) {
	var res Thm51Result
	baseN := 16000 / c.scale()
	if baseN < 250 {
		baseN = 250
	}
	const queues = 8
	for _, algo := range []Algorithm{AlgoSort, AlgoDelaunay} {
		for _, n := range []int{baseN / 4, baseN / 2, baseN} {
			var extra, inv stats.Sample
			for trial := 0; trial < c.trials(); trial++ {
				dag, err := buildDAG(algo, n, c.Seed+uint64(trial*31+n))
				if err != nil {
					return res, err
				}
				mq := multiqueue.New(n, queues, 2, multiqueue.RandomQueue, c.Seed+uint64(trial))
				run, err := core.Run(dag, mq, core.Options{})
				if err != nil {
					return res, err
				}
				extra.Add(float64(run.ExtraSteps))
				inv.Add(float64(run.AdjacentInversions) / float64(n-1))
			}
			res.Rows = append(res.Rows, Thm51Row{
				Algo: algo, N: n, Queues: queues,
				ExtraSteps: extra.Mean(), StdErr: extra.StdErr(),
				LowerBound:  math.Log(float64(n)) / 8,
				InvRate:     inv.Mean(),
				InvRateErr:  inv.StdErr(),
				ExtraPerLog: extra.Mean() / math.Log(float64(n)),
			})
		}
	}
	return res, nil
}

// Render writes the Theorem 5.1 table.
func (r Thm51Result) Render(w io.Writer) error {
	t := stats.NewTable("algo", "n", "queues", "extra-steps", "stderr",
		"(1/8)ln(n)", "inv-rate", "extra/ln(n)")
	for _, row := range r.Rows {
		t.AddRow(string(row.Algo), row.N, row.Queues, row.ExtraSteps, row.StdErr,
			row.LowerBound, row.InvRate, row.ExtraPerLog)
	}
	return t.Render(w)
}

// Thm61Row is one measurement of Theorem 6.1: pop operations of the
// sequential-model relaxed SSSP (Algorithm 3) versus the bound
// n + O(k^2 d_max/w_min).
type Thm61Row struct {
	Graph        string
	Scheduler    string
	K            int
	Reached      int64
	Pops         float64
	ExtraPops    float64
	StdErr       float64
	DmaxOverWmin float64
}

// Thm61Result holds the k sweep per graph family.
type Thm61Result struct {
	Rows []Thm61Row
}

// Thm61 validates the Theorem 6.1 shape in the sequential model: extra
// pops grow with k and with d_max/w_min, and stay far below the trivial
// k*n bound. It runs the adversarial k-relaxed scheduler and, for
// reference, a hashed MultiQueue with ~k/2 queues.
func Thm61(c Config) (Thm61Result, error) {
	var res Thm61Result
	sub := c
	if sub.GraphScale < 8 {
		sub.GraphScale = 8 * c.scale() // sequential-model runs are slower
	}
	for fi, fam := range Families() {
		g := fam.Gen(sub, c.Seed+uint64(fi))
		exact := sssp.Dijkstra(g, 0)
		wmin, _ := g.WeightBounds()
		dmax := sssp.MaxDistance(exact.Dist)
		ratio := float64(dmax) / float64(wmin)
		for _, k := range []int{1, 4, 16, 64} {
			var pops stats.Sample
			for trial := 0; trial < c.trials(); trial++ {
				q := sched.NewKRelaxed(g.NumNodes, k)
				run, err := sssp.Relaxed(g, 0, q)
				if err != nil {
					return res, err
				}
				if !sssp.Equal(run.Dist, exact.Dist) {
					return res, fmt.Errorf("experiments: relaxed SSSP wrong on %s", fam.Name)
				}
				pops.Add(float64(run.Pops))
			}
			res.Rows = append(res.Rows, Thm61Row{
				Graph: fam.Name, Scheduler: "k-relaxed", K: k,
				Reached: exact.Reached, Pops: pops.Mean(),
				ExtraPops: pops.Mean() - float64(exact.Reached),
				StdErr:    pops.StdErr(), DmaxOverWmin: ratio,
			})
		}
		for _, queues := range []int{2, 8, 32} {
			var pops stats.Sample
			for trial := 0; trial < c.trials(); trial++ {
				q := multiqueue.New(g.NumNodes, queues, 2, multiqueue.HashedQueue,
					c.Seed+uint64(trial*13+queues))
				run, err := sssp.Relaxed(g, 0, q)
				if err != nil {
					return res, err
				}
				if !sssp.Equal(run.Dist, exact.Dist) {
					return res, fmt.Errorf("experiments: relaxed SSSP wrong on %s", fam.Name)
				}
				pops.Add(float64(run.Pops))
			}
			res.Rows = append(res.Rows, Thm61Row{
				Graph: fam.Name, Scheduler: "multiqueue", K: queues,
				Reached: exact.Reached, Pops: pops.Mean(),
				ExtraPops: pops.Mean() - float64(exact.Reached),
				StdErr:    pops.StdErr(), DmaxOverWmin: ratio,
			})
		}
	}
	return res, nil
}

// Render writes the Theorem 6.1 table.
func (r Thm61Result) Render(w io.Writer) error {
	t := stats.NewTable("graph", "scheduler", "k/queues", "reached", "pops",
		"extra-pops", "stderr", "dmax/wmin")
	for _, row := range r.Rows {
		t.AddRow(row.Graph, row.Scheduler, row.K, row.Reached, row.Pops,
			row.ExtraPops, row.StdErr, row.DmaxOverWmin)
	}
	return t.Render(w)
}

// Thm43Row is one measurement of the transactional model (Theorem 4.3).
type Thm43Row struct {
	Algo    Algorithm
	N       int
	K       int
	Workers int
	Aborts  float64
	StdErr  float64
	PerLogN float64
}

// Thm43Result holds the transactional sweeps.
type Thm43Result struct {
	Rows []Thm43Row
	// LogFitR2 is the r^2 of aborts against ln n at fixed k, workers.
	LogFitR2 float64
}

// Thm43 validates the Theorem 4.3 shape: aborted transactions grow like
// log n at fixed k and C, and polynomially with k and the concurrency.
func Thm43(c Config) (Thm43Result, error) {
	var res Thm43Result
	baseN := 32000 / c.scale()
	if baseN < 500 {
		baseN = 500
	}
	const (
		fixedK = 4
		fixedW = 4
		maxDur = 2
	)
	var xs, ys []float64
	for _, n := range []int{baseN / 8, baseN / 4, baseN / 2, baseN} {
		var s stats.Sample
		for trial := 0; trial < c.trials(); trial++ {
			dag, err := buildDAG(AlgoSort, n, c.Seed+uint64(trial*67+n))
			if err != nil {
				return res, err
			}
			r, err := txn.Simulate(dag, txn.Config{
				K: fixedK, Workers: fixedW, MaxDuration: maxDur,
				Seed: c.Seed + uint64(trial),
			})
			if err != nil {
				return res, err
			}
			s.Add(float64(r.Aborts))
		}
		res.Rows = append(res.Rows, Thm43Row{
			Algo: AlgoSort, N: n, K: fixedK, Workers: fixedW,
			Aborts: s.Mean(), StdErr: s.StdErr(),
			PerLogN: s.Mean() / math.Log(float64(n)),
		})
		xs = append(xs, float64(n))
		ys = append(ys, s.Mean())
	}
	_, _, res.LogFitR2 = stats.LogFit(xs, ys)
	// k sweep at fixed n.
	nFixed := baseN / 2
	for _, k := range []int{1, 2, 4, 8, 16} {
		var s stats.Sample
		for trial := 0; trial < c.trials(); trial++ {
			dag, err := buildDAG(AlgoSort, nFixed, c.Seed+uint64(trial*89+k))
			if err != nil {
				return res, err
			}
			r, err := txn.Simulate(dag, txn.Config{
				K: k, Workers: fixedW, MaxDuration: maxDur,
				Seed: c.Seed + uint64(trial),
			})
			if err != nil {
				return res, err
			}
			s.Add(float64(r.Aborts))
		}
		res.Rows = append(res.Rows, Thm43Row{
			Algo: AlgoSort, N: nFixed, K: k, Workers: fixedW,
			Aborts: s.Mean(), StdErr: s.StdErr(),
			PerLogN: s.Mean() / math.Log(float64(nFixed)),
		})
	}
	return res, nil
}

// Render writes the Theorem 4.3 table.
func (r Thm43Result) Render(w io.Writer) error {
	t := stats.NewTable("algo", "n", "k", "workers", "aborts", "stderr", "aborts/ln(n)")
	for _, row := range r.Rows {
		t.AddRow(string(row.Algo), row.N, row.K, row.Workers, row.Aborts, row.StdErr, row.PerLogN)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "log-fit r^2 (n-sweep): %.3f\n", r.LogFitR2)
	return err
}
