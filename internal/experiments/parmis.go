package experiments

import (
	"fmt"
	"io"

	"relaxsched/internal/core"
	"relaxsched/internal/cq"
	"relaxsched/internal/engine"
	"relaxsched/internal/graph"
	"relaxsched/internal/mis"
	"relaxsched/internal/stats"
)

// ParMISRow is one point of the parallel greedy-iterative experiment: MIS
// or coloring over a random vertex permutation, executed by goroutines on
// the generic engine (the static-DAG workload), through one concurrent
// queue backend at one thread count. Extra counts wasted pops (blocked
// tasks recycled through the queue); OpsPerSec counts pops per second of
// wall time.
type ParMISRow struct {
	Algo      string
	Backend   string
	N         int
	Threads   int
	Extra     float64
	ExtraErr  float64
	ExtraRate float64 // Extra / N
	OpsPerSec float64
	Millis    float64
	HostEnv
}

// ParMISResult holds the algo x backend x threads sweep.
type ParMISResult struct {
	Rows []ParMISRow
}

// ParMIS sweeps thread counts for parallel greedy MIS and greedy coloring
// across every concurrent queue backend (or only c.Backend when one is
// selected). Results are verified on every run: the parallel execution
// must produce a proper maximal independent set / proper complete coloring
// — identical to the sequential greedy outcome by dependency order — so
// the sweep measures only wasted work and throughput.
func ParMIS(c Config) (ParMISResult, error) {
	var res ParMISResult
	n := 48000 / c.scale()
	if n < 400 {
		n = 400
	}
	type algo struct {
		name string
		run  func(w *mis.Workload, opts mis.ParallelOptions) (core.Result, error)
	}
	algos := []algo{
		{"greedy-mis", func(w *mis.Workload, opts mis.ParallelOptions) (core.Result, error) {
			inSet, r, err := mis.ParallelGreedyMIS(w, opts)
			if err != nil {
				return r, err
			}
			return r, mis.VerifyMIS(w.G, inSet)
		}},
		{"greedy-coloring", func(w *mis.Workload, opts mis.ParallelOptions) (core.Result, error) {
			colors, r, err := mis.ParallelGreedyColoring(w, opts)
			if err != nil {
				return r, err
			}
			return r, mis.VerifyColoring(w.G, colors)
		}},
	}
	backends := cq.Backends()
	if c.Backend != "" {
		backends = []cq.Backend{c.Backend}
	}
	// Workloads are deterministic per trial and read-only in the parallel
	// run; build each once and share across the backend and thread sweeps.
	workloads := make([]*mis.Workload, c.trials())
	for trial := range workloads {
		g := graph.Random(n, 3*n, 10, c.Seed+uint64(trial*11+n))
		workloads[trial] = mis.NewWorkload(g, c.Seed+uint64(trial))
	}
	for _, a := range algos {
		for _, backend := range backends {
			for _, threads := range c.threadSweep() {
				var extra, ops, ms stats.Sample
				for trial := 0; trial < c.trials(); trial++ {
					var r core.Result
					var runErr error
					elapsed := timeIt(func() {
						r, runErr = a.run(workloads[trial], mis.ParallelOptions{ExecOptions: engine.ExecOptions{
							Threads:         threads,
							QueueMultiplier: 2,
							Backend:         backend,
							Seed:            c.Seed + uint64(trial*31+threads),
						}})
					})
					if runErr != nil {
						return res, fmt.Errorf("%s/%s/%d threads: %w", a.name, backend, threads, runErr)
					}
					extra.Add(float64(r.ExtraSteps))
					ops.Add(float64(r.Steps) / elapsed.Seconds())
					ms.Add(elapsed.Seconds() * 1e3)
				}
				res.Rows = append(res.Rows, ParMISRow{
					Algo: a.name, Backend: string(backend), N: n, Threads: threads,
					Extra: extra.Mean(), ExtraErr: extra.StdErr(),
					ExtraRate: extra.Mean() / float64(n),
					OpsPerSec: ops.Mean(), Millis: ms.Mean(),
					HostEnv: Host(),
				})
			}
		}
	}
	return res, nil
}

// Render writes the parallel greedy-iterative table.
func (r ParMISResult) Render(w io.Writer) error {
	t := stats.NewTable("algo", "backend", "n", "threads", "extra-pops", "stderr", "extra/n", "ops/sec", "ms")
	for _, row := range r.Rows {
		t.AddRow(row.Algo, row.Backend, row.N, row.Threads, row.Extra, row.ExtraErr, row.ExtraRate, row.OpsPerSec, row.Millis)
	}
	return t.Render(w)
}
