package experiments

import (
	"bytes"
	"strings"
	"testing"

	"relaxsched/internal/cq"
)

func TestFig1Smoke(t *testing.T) {
	c := SmokeConfig()
	res := Fig1(c)
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	families := map[string]bool{}
	for _, row := range res.Rows {
		families[row.Graph] = true
		if row.Overhead < 0.999 {
			t.Fatalf("overhead %.3f < 1 on %s@%d", row.Overhead, row.Graph, row.Threads)
		}
		if row.Overhead > 5 {
			t.Fatalf("overhead %.3f implausible on %s@%d", row.Overhead, row.Graph, row.Threads)
		}
		if row.Speedup <= 0 {
			t.Fatalf("non-positive speedup on %s@%d", row.Graph, row.Threads)
		}
	}
	if len(families) != 3 {
		t.Fatalf("families covered: %v", families)
	}
	var buf bytes.Buffer
	if err := res.RenderOverheads(&buf); err != nil {
		t.Fatal(err)
	}
	if err := res.RenderSpeedups(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "random") {
		t.Fatal("render missing family name")
	}
}

func TestBatchSweepSmoke(t *testing.T) {
	c := SmokeConfig()
	res := BatchSweep(c)
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	seenBatch := map[int]bool{}
	for _, row := range res.Rows {
		seenBatch[row.Batch] = true
		if row.OpsPerSec <= 0 {
			t.Fatalf("%s/%s batch %d: non-positive ops/sec", row.Graph, row.Backend, row.Batch)
		}
		if row.Overhead < 0.999 {
			t.Fatalf("%s/%s batch %d: overhead %.3f < 1", row.Graph, row.Backend, row.Batch, row.Overhead)
		}
	}
	for _, b := range BatchSweepSizes {
		if !seenBatch[b] {
			t.Fatalf("batch size %d missing from sweep", b)
		}
	}
	if !seenBatch[1] {
		t.Fatal("unbatched baseline (batch 1) missing: trajectories need their own before/after")
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "batch") {
		t.Fatal("render missing batch column")
	}
}

func TestFig2Smoke(t *testing.T) {
	c := SmokeConfig()
	res := Fig2(c, []int{2})
	want := 3 * len(Fig2Multipliers)
	if len(res.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(res.Rows), want)
	}
	for _, row := range res.Rows {
		if row.Overhead < 0.999 || row.Overhead > 5 {
			t.Fatalf("overhead %.3f out of range", row.Overhead)
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFig2DefaultThreads(t *testing.T) {
	c := SmokeConfig()
	res := Fig2(c, nil)
	if len(res.Rows) == 0 {
		t.Fatal("no rows with default thread counts")
	}
}

func TestThm33Smoke(t *testing.T) {
	c := SmokeConfig()
	res, err := Thm33(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2*(4+5) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.K == 1 && row.ExtraSteps != 0 {
			t.Fatalf("k=1 has %f extra steps", row.ExtraSteps)
		}
		if row.ExtraSteps < 0 {
			t.Fatal("negative extra steps")
		}
		// Trivial bound: the adversary wastes at most k-1 steps per task.
		if row.ExtraSteps > float64(row.K)*float64(row.N) {
			t.Fatalf("extra steps %f exceed trivial bound k*n (k=%d, n=%d)",
				row.ExtraSteps, row.K, row.N)
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "log-fit") {
		t.Fatal("render missing fit line")
	}
}

func TestThm51Smoke(t *testing.T) {
	c := SmokeConfig()
	res, err := Thm51(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.ExtraSteps < row.LowerBound {
			t.Fatalf("%s n=%d: extra steps %.1f below theoretical floor %.1f",
				row.Algo, row.N, row.ExtraSteps, row.LowerBound)
		}
		if row.InvRate < 1.0/8 {
			t.Fatalf("%s n=%d: inversion rate %.3f below Claim 1's 1/8",
				row.Algo, row.N, row.InvRate)
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestThm61Smoke(t *testing.T) {
	c := SmokeConfig()
	res, err := Thm61(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.Scheduler == "k-relaxed" && row.K == 1 && row.ExtraPops != 0 {
			t.Fatalf("exact scheduler with extra pops: %+v", row)
		}
		if row.ExtraPops < 0 {
			t.Fatalf("negative extra pops: %+v", row)
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestThm43Smoke(t *testing.T) {
	c := SmokeConfig()
	res, err := Thm43(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4+5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.K == 1 && row.Workers == 4 {
			// k=1 serializes availability but workers may still overlap on
			// a chain of dependents; just require finite values.
			if row.Aborts < 0 {
				t.Fatal("negative aborts")
			}
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestGraphsSmoke(t *testing.T) {
	c := SmokeConfig()
	res := Graphs(c)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := map[string]GraphRow{}
	for _, row := range res.Rows {
		byName[row.Name] = row
		if row.Nodes <= 0 || row.Arcs <= 0 || row.WMin < 1 {
			t.Fatalf("bad stats: %+v", row)
		}
	}
	// The road family must have the largest hop diameter — that ordering
	// is what explains Figure 1's overhead ordering.
	if byName["road"].HopDiameter <= byName["random"].HopDiameter ||
		byName["road"].HopDiameter <= byName["social"].HopDiameter {
		t.Fatalf("road diameter not dominant: %+v", res.Rows)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestAblationSmoke(t *testing.T) {
	c := SmokeConfig()
	res, err := Ablation(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var exactRow, mq1, mq4 *AblationRow
	for i := range res.Rows {
		switch res.Rows[i].Scheduler {
		case "exact":
			exactRow = &res.Rows[i]
		case "mq8-c1":
			mq1 = &res.Rows[i]
		case "mq8-c4":
			mq4 = &res.Rows[i]
		}
	}
	if exactRow == nil || mq1 == nil || mq4 == nil {
		t.Fatal("zoo rows missing")
	}
	if exactRow.MeanRank != 1 || exactRow.SortExtra != 0 {
		t.Fatalf("exact row: %+v", exactRow)
	}
	// More probing choices = tighter ranks.
	if mq4.MeanRank > mq1.MeanRank {
		t.Fatalf("c4 rank %.2f worse than c1 %.2f", mq4.MeanRank, mq1.MeanRank)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestParIncSmoke(t *testing.T) {
	c := SmokeConfig()
	res, err := ParInc(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range res.Rows {
		if row.Extra < 0 {
			t.Fatalf("negative extra: %+v", row)
		}
		if row.Threads == 1 && row.Extra != 0 {
			// One thread + multiplier 2 still has 2 queues, so small waste
			// is possible; just require it to be tiny relative to n.
			if row.ExtraRate > 0.5 {
				t.Fatalf("single-thread waste too large: %+v", row)
			}
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestConfigSweeps(t *testing.T) {
	c := Config{MaxThreads: 8}
	sweep := c.threadSweep()
	want := []int{1, 2, 4, 8}
	if len(sweep) != len(want) {
		t.Fatalf("sweep = %v", sweep)
	}
	for i := range want {
		if sweep[i] != want[i] {
			t.Fatalf("sweep = %v", sweep)
		}
	}
	c = Config{MaxThreads: 6}
	sweep = c.threadSweep()
	if sweep[len(sweep)-1] != 6 {
		t.Fatalf("sweep = %v", sweep)
	}
	if DefaultConfig().maxThreads() < 1 {
		t.Fatal("default maxThreads")
	}
}

func TestParBnBSmoke(t *testing.T) {
	c := SmokeConfig()
	res, err := ParBnB(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	if res.ExactExpanded < 1 {
		t.Fatalf("exact expanded %v", res.ExactExpanded)
	}
	for _, row := range res.Rows {
		if row.OpsPerSec <= 0 {
			t.Fatalf("non-positive throughput: %+v", row)
		}
		if row.Expanded < res.ExactExpanded/2 {
			t.Fatalf("implausibly few expansions: %+v", row)
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestParMISSmoke(t *testing.T) {
	c := SmokeConfig()
	res, err := ParMIS(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	algos := map[string]bool{}
	for _, row := range res.Rows {
		algos[row.Algo] = true
		if row.Extra < 0 || row.OpsPerSec <= 0 {
			t.Fatalf("implausible row: %+v", row)
		}
	}
	if !algos["greedy-mis"] || !algos["greedy-coloring"] {
		t.Fatalf("missing an algorithm: %v", algos)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestStreamSmoke(t *testing.T) {
	c := SmokeConfig()
	res, err := Stream(c)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(cq.Backends()) * len(c.threadSweep()) * len(StreamRates); len(res.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(res.Rows), want)
	}
	backends := map[string]bool{}
	rates := map[int]bool{}
	for _, row := range res.Rows {
		backends[row.Backend] = true
		rates[row.Rate] = true
		if row.OpsPerSec <= 0 || row.N < 500 || row.Producers != streamProducers {
			t.Fatalf("implausible row: %+v", row)
		}
		if row.MeanRankErr < 0 || row.MaxRankErr < row.MeanRankErr || float64(row.N) <= row.MaxRankErr {
			t.Fatalf("implausible rank error: %+v", row)
		}
		if row.RankErrPerJob < 0 || row.RankErrPerJob >= 1 {
			t.Fatalf("rank error per job out of [0, 1): %+v", row)
		}
	}
	if len(backends) != len(cq.Backends()) {
		t.Fatalf("expected all %d backends, got %v", len(cq.Backends()), backends)
	}
	for _, r := range StreamRates {
		if !rates[r] {
			t.Fatalf("arrival rate %d missing from sweep", r)
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "rank-err") {
		t.Fatal("render missing rank-error column")
	}
}

func TestParDelaunaySmoke(t *testing.T) {
	c := SmokeConfig()
	res, err := ParDelaunay(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	backends := map[string]bool{}
	for _, row := range res.Rows {
		backends[row.Backend] = true
		if row.Blocked < 0 || row.OpsPerSec <= 0 || row.N < 256 {
			t.Fatalf("implausible row: %+v", row)
		}
	}
	if len(backends) != len(cq.Backends()) {
		t.Fatalf("expected all %d backends, got %v", len(cq.Backends()), backends)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestAffinitySmoke(t *testing.T) {
	c := SmokeConfig()
	res := Affinity(c)
	if want := 2 * len(c.threadSweep()); len(res.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(res.Rows), want)
	}
	placements := map[string]bool{}
	for _, row := range res.Rows {
		placements[row.Placement] = true
		if row.OpsPerSec <= 0 || row.Millis <= 0 {
			t.Fatalf("implausible row: %+v", row)
		}
		if row.NumCPU < 1 || row.GoMaxProcs < 1 {
			t.Fatalf("row missing host environment: %+v", row)
		}
	}
	if !placements["affine"] || !placements["uniform"] {
		t.Fatalf("expected both placements, got %v", placements)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "placement") {
		t.Fatal("render missing placement column")
	}
}

func TestTxnSmoke(t *testing.T) {
	c := SmokeConfig()
	res, err := Txn(c)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(cq.Backends()) * len(c.threadSweep()) * len(txnSkews); len(res.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(res.Rows), want)
	}
	backends := map[string]bool{}
	skews := map[string]bool{}
	for _, row := range res.Rows {
		backends[row.Backend] = true
		skews[row.Skew] = true
		if row.Commits != int64(row.N) || row.OpsPerSec <= 0 || row.Batch <= 0 {
			t.Fatalf("implausible row: %+v", row)
		}
		if row.Aborts < 0 || row.AbortRatio < 0 || row.AbortRatio >= 1 {
			t.Fatalf("implausible abort accounting: %+v", row)
		}
	}
	if len(backends) != len(cq.Backends()) {
		t.Fatalf("expected all %d backends, got %v", len(cq.Backends()), backends)
	}
	if len(skews) != len(txnSkews) {
		t.Fatalf("expected all %d skews, got %v", len(txnSkews), skews)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "abort-ratio") {
		t.Fatal("render missing abort-ratio column")
	}
}

func TestChaosSmoke(t *testing.T) {
	c := SmokeConfig()
	res, err := Chaos(c)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(cq.Backends()) * len(c.threadSweep()) * 3; len(res.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(res.Rows), want)
	}
	backends := map[string]bool{}
	sawBaseline, sawPoison := false, false
	for _, row := range res.Rows {
		backends[row.Backend] = true
		if row.OpsPerSec <= 0 || row.N < 2000 || row.Executed <= 0 {
			t.Fatalf("implausible row: %+v", row)
		}
		if row.Executed+row.Failed != int64(row.N) {
			t.Fatalf("books do not balance: %+v", row)
		}
		if row.Poison == 0 {
			sawBaseline = sawBaseline || row.StallEvery == 0
			if row.Failed != 0 {
				t.Fatalf("quarantines without poison: %+v", row)
			}
		} else {
			sawPoison = true
			if row.Failed != int64(row.Poison) {
				t.Fatalf("Failed = %d, want %d poisons: %+v", row.Failed, row.Poison, row)
			}
		}
		if row.StallEvery == 0 && row.BlockEvery == 0 && row.Reinserted != 0 {
			t.Fatalf("re-insertions on the fault-free plan: %+v", row)
		}
		if row.NumCPU < 1 || row.GoMaxProcs < 1 {
			t.Fatalf("row missing host environment: %+v", row)
		}
	}
	if len(backends) != len(cq.Backends()) {
		t.Fatalf("expected all %d backends, got %v", len(cq.Backends()), backends)
	}
	if !sawBaseline || !sawPoison {
		t.Fatal("plan sweep missing the baseline or the poison plan")
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "poison") {
		t.Fatal("render missing poison column")
	}
}

func TestIdleCostSmoke(t *testing.T) {
	res, err := IdleCost(SmokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want one per idle strategy", len(res.Rows))
	}
	seen := map[string]IdleCostRow{}
	for _, row := range res.Rows {
		seen[row.Strategy] = row
		if row.WakeP50Us <= 0 || row.WakeP99Us < row.WakeP50Us || row.DrainMs <= 0 {
			t.Fatalf("implausible wake/drain metrics: %+v", row)
		}
		if row.CPUMillis < 0 != (row.CPUPct < 0) {
			t.Fatalf("CPU columns disagree on support: %+v", row)
		}
	}
	if _, ok := seen["park"]; !ok {
		t.Fatalf("no park row: %+v", res.Rows)
	}
	if _, ok := seen["spin"]; !ok {
		t.Fatalf("no spin row: %+v", res.Rows)
	}
	var buf strings.Builder
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "idle-cpu-ms") {
		t.Fatalf("render missing columns:\n%s", buf.String())
	}
}

// The headline claim of the parking idle path, asserted where CPU clocks
// exist: an idle execution with parked workers consumes (close to) no CPU.
// The spin row is not asserted against — capped-backoff polling cost varies
// with the host — but parked idleness must stay under a hard absolute
// ceiling, a fraction of one core over the window.
func TestIdleCostParkedIsNearZero(t *testing.T) {
	c := SmokeConfig()
	c.Trials = 1
	res, err := IdleCost(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.Strategy != "park" {
			continue
		}
		if row.CPUMillis < 0 {
			t.Skip("process CPU time unsupported on this platform")
		}
		// 30ms smoke window; parked workers do nothing, so even with
		// runtime background noise the process should burn well under a
		// fifth of one core.
		if row.CPUPct > 20 {
			t.Fatalf("parked idle burned %.1f%% CPU over %.0fms, want ~0: %+v", row.CPUPct, row.WindowMs, row)
		}
	}
}
