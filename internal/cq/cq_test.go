package cq_test

import (
	"testing"

	"relaxsched/internal/cq"
	"relaxsched/internal/cq/cqtest"
	"relaxsched/internal/rng"
)

// Every registered backend must pass the shared conformance + race suite.
func TestBackendConformance(t *testing.T) {
	for _, b := range cq.Backends() {
		t.Run(string(b), func(t *testing.T) {
			cqtest.Run(t, cqtest.ForBackend(b))
		})
	}
}

func TestNewDefaultsToMultiQueue(t *testing.T) {
	q, err := cq.New("", 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	mq, ok := q.(*cq.MultiQueue)
	if !ok {
		t.Fatalf("New(\"\") built %T, want *cq.MultiQueue", q)
	}
	if mq.NumQueues() != 6 {
		t.Fatalf("NumQueues = %d, want threads*multiplier = 6", mq.NumQueues())
	}
}

func TestNewSprayListSingleStructure(t *testing.T) {
	q, err := cq.New(cq.SprayListBackend, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := q.(*cq.SprayList); !ok {
		t.Fatalf("built %T, want *cq.SprayList", q)
	}
	if q.NumQueues() != 1 {
		t.Fatalf("NumQueues = %d, want 1", q.NumQueues())
	}
}

func TestNewRejectsBadArguments(t *testing.T) {
	if _, err := cq.New("fancy-lsm", 2, 2); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if _, err := cq.New(cq.MultiQueueBackend, 0, 2); err == nil {
		t.Fatal("threads = 0 accepted")
	}
	if _, err := cq.New(cq.SprayListBackend, 2, 0); err == nil {
		t.Fatal("queueMultiplier = 0 accepted")
	}
}

func TestBackendValid(t *testing.T) {
	for _, b := range cq.Backends() {
		if !b.Valid() {
			t.Fatalf("registered backend %q reported invalid", b)
		}
	}
	if !cq.Backend("").Valid() {
		t.Fatal("empty backend (default) reported invalid")
	}
	if cq.Backend("nope").Valid() {
		t.Fatal("unknown backend reported valid")
	}
}

// BenchmarkPushPop compares the backends head-to-head on the mixed
// push/pop hot path at NumCPU contention.
func BenchmarkPushPop(b *testing.B) {
	for _, backend := range cq.Backends() {
		b.Run(string(backend), func(b *testing.B) {
			q, err := cq.New(backend, 8, 2)
			if err != nil {
				b.Fatal(err)
			}
			b.RunParallel(func(pb *testing.PB) {
				r := rng.New(uint64(b.N) + 12345)
				i := int64(0)
				for pb.Next() {
					q.Push(r, i, i%1024)
					q.Pop(r)
					i++
				}
			})
		})
	}
}
