package cq_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	"relaxsched/internal/cq"
	"relaxsched/internal/cq/cqtest"
	"relaxsched/internal/rng"
)

// Every registered backend must pass the shared conformance + race suite.
func TestBackendConformance(t *testing.T) {
	for _, b := range cq.Backends() {
		t.Run(string(b), func(t *testing.T) {
			cqtest.Run(t, cqtest.ForBackend(b))
		})
	}
}

func TestNewDefaultsToMultiQueue(t *testing.T) {
	q, err := cq.New("", 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	mq, ok := q.(*cq.MultiQueue)
	if !ok {
		t.Fatalf("New(\"\") built %T, want *cq.MultiQueue", q)
	}
	if mq.NumQueues() != 6 {
		t.Fatalf("NumQueues = %d, want threads*multiplier = 6", mq.NumQueues())
	}
}

func TestNewSprayListSingleStructure(t *testing.T) {
	q, err := cq.New(cq.SprayListBackend, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The SprayList has no native batch operations, so New wraps it in the
	// generic fallback; the wrapper must still present the single shared
	// structure underneath. (Go through cq.Queue: *cq.SprayList cannot
	// satisfy New's BatchQueue return type directly.)
	if _, ok := cq.Queue(q).(*cq.SprayList); ok {
		t.Fatalf("spraylist was not wrapped in the batch fallback: %T", q)
	}
	if q.NumQueues() != 1 {
		t.Fatalf("NumQueues = %d, want 1", q.NumQueues())
	}
}

func TestNewAlwaysBatchCapable(t *testing.T) {
	// cq.New's BatchQueue return type enforces batch support at compile
	// time; what remains to test is the wrap policy: native batchers come
	// back unwrapped, and AsBatch never re-wraps an existing BatchQueue.
	for _, b := range cq.Backends() {
		q, err := cq.New(b, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		if cq.AsBatch(q) != q {
			t.Fatalf("%s: AsBatch re-wrapped a BatchQueue (%T)", b, q)
		}
	}
	// MultiQueue and LockFreeMQ batch natively: New must not wrap them.
	if q, _ := cq.New(cq.MultiQueueBackend, 2, 2); func() bool {
		_, ok := q.(*cq.MultiQueue)
		return !ok
	}() {
		t.Fatalf("multiqueue was wrapped: %T", q)
	}
	if q, _ := cq.New(cq.LockFreeBackend, 2, 2); func() bool {
		_, ok := q.(*cq.LockFreeMQ)
		return !ok
	}() {
		t.Fatalf("lockfree was wrapped: %T", q)
	}
}

func TestNewLockFreeSharding(t *testing.T) {
	q, err := cq.New(cq.LockFreeBackend, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := q.(*cq.LockFreeMQ); !ok {
		t.Fatalf("built %T, want *cq.LockFreeMQ", q)
	}
	if q.NumQueues() != 6 {
		t.Fatalf("NumQueues = %d, want threads*multiplier = 6", q.NumQueues())
	}
}

func TestNewRejectsBadArguments(t *testing.T) {
	if _, err := cq.New("fancy-lsm", 2, 2); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if _, err := cq.New(cq.MultiQueueBackend, 0, 2); err == nil {
		t.Fatal("threads = 0 accepted")
	}
	if _, err := cq.New(cq.SprayListBackend, 2, 0); err == nil {
		t.Fatal("queueMultiplier = 0 accepted")
	}
}

func TestBackendValid(t *testing.T) {
	for _, b := range cq.Backends() {
		if !b.Valid() {
			t.Fatalf("registered backend %q reported invalid", b)
		}
	}
	if !cq.Backend("").Valid() {
		t.Fatal("empty backend (default) reported invalid")
	}
	if cq.Backend("nope").Valid() {
		t.Fatal("unknown backend reported valid")
	}
}

// BenchmarkPushPop compares the backends head-to-head on the mixed
// push/pop hot path at NumCPU contention.
func BenchmarkPushPop(b *testing.B) {
	for _, backend := range cq.Backends() {
		b.Run(string(backend), func(b *testing.B) {
			q, err := cq.New(backend, 8, 2)
			if err != nil {
				b.Fatal(err)
			}
			var worker atomic.Uint64 // distinct stream per goroutine, or the
			// shard choices collide in lockstep and measure fake contention
			b.RunParallel(func(pb *testing.PB) {
				r := rng.New(worker.Add(1) * 0x9e3779b97f4a7c15)
				i := int64(0)
				for pb.Next() {
					q.Push(r, i, i%1024)
					q.Pop(r)
					i++
				}
			})
		})
	}
}

// BenchmarkPushPopBatch measures the batch amortization directly: the same
// mixed workload as BenchmarkPushPop, but moving elements batch-at-a-time.
// Comparing (backend, batch=1) with larger batches isolates the per-element
// coordination cost each backend saves.
func BenchmarkPushPopBatch(b *testing.B) {
	for _, backend := range cq.Backends() {
		for _, batch := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("%s/batch%d", backend, batch), func(b *testing.B) {
				q, err := cq.New(backend, 8, 2)
				if err != nil {
					b.Fatal(err)
				}
				bq := cq.AsBatch(q)
				var worker atomic.Uint64 // distinct stream per goroutine
				b.RunParallel(func(pb *testing.PB) {
					r := rng.New(worker.Add(1) * 0xd1342543de82ef95)
					out := make([]cq.Pair, 0, batch)
					dst := make([]cq.Pair, batch)
					i := int64(0)
					for pb.Next() {
						out = append(out, cq.Pair{Value: i, Priority: i % 1024})
						if len(out) == batch {
							bq.PushBatch(r, out)
							out = out[:0]
							bq.PopBatch(r, dst)
						}
						i++
					}
				})
			})
		}
	}
}
