package cq

import (
	"sync"
	"sync/atomic"

	"relaxsched/internal/rng"
)

// MultiQueue is a lock-per-queue concurrent MultiQueue storing (value,
// priority) pairs. Unlike the sequential-model MultiQueue it permits
// duplicate values (parallel SSSP inserts a fresh pair per relaxation and
// filters stale ones on pop, exactly as the check in Algorithm 3 line 8),
// and Pop removes the element it returns.
//
// Each queue caches its top priority in an atomic so that the two-choice
// comparison does not need to take locks; locks are only taken to mutate
// the chosen queue, using TryLock with rerandomization on contention, the
// standard MultiQueue protocol.
// MultiQueue deliberately keeps no global element counter: a shared
// atomic incremented on every push/pop becomes the dominant cache-line
// hot-spot at scale. Len locks queues and is for tests/diagnostics only;
// concurrent algorithms must track their own in-flight counts.
type MultiQueue struct {
	queues []cqueue
}

// emptyTop is the cached top priority of an empty queue.
const emptyTop = ReservedPriority

type cqueue struct {
	_  [64]byte // guard line: keeps the previous element's tail off mu
	mu sync.Mutex
	h  pairHeap
	_  [32]byte // close out the mu+heap line
	// top is read lock-free by every 2-choice probe; its own line keeps
	// probe traffic from bouncing the lock holder's mu/heap line.
	top atomic.Int64
	_   [56]byte
}

// NewMultiQueue returns a concurrent MultiQueue with q internal queues.
func NewMultiQueue(q int) *MultiQueue {
	if q < 1 {
		panic("cq: need at least one queue")
	}
	c := &MultiQueue{queues: make([]cqueue, q)}
	for i := range c.queues {
		c.queues[i].top.Store(emptyTop)
	}
	return c
}

// NumQueues returns the number of internal queues.
func (c *MultiQueue) NumQueues() int { return len(c.queues) }

// Len reports the number of stored pairs by locking each queue in turn.
// It is intended for tests and quiescent diagnostics, not hot paths.
func (c *MultiQueue) Len() int {
	total := 0
	for qi := range c.queues {
		q := &c.queues[qi]
		q.mu.Lock()
		total += q.h.len()
		q.mu.Unlock()
	}
	return total
}

// contentionAttempts bounds rerandomized optimistic attempts (TryLock for
// the locked MultiQueue, CAS for the lock-free one) before an operation
// stops spinning and commits to one queue. Unbounded rerandomization can
// livelock a heavily contended structure: with every queue transiently
// locked, a pusher could spin forever without ever parking.
const contentionAttempts = 8

// lockSomeQueue acquires and returns a random queue, using TryLock with
// rerandomization for a bounded number of attempts and then falling back to
// a blocking Lock on the last choice, so a push under heavy contention
// parks instead of spinning.
//
//relax:hotpath
func (c *MultiQueue) lockSomeQueue(r *rng.Xoshiro) *cqueue {
	var q *cqueue
	for try := 0; try < contentionAttempts; try++ {
		q = &c.queues[r.Intn(len(c.queues))]
		if q.mu.TryLock() {
			return q
		}
	}
	q.mu.Lock() //relax:allow pinregion: bounded-contention fallback — after contentionAttempts TryLock misses, parking on one queue beats unbounded spinning
	return q
}

// Push inserts a (value, priority) pair into a random queue. r must be a
// goroutine-local generator.
//
//relax:hotpath
func (c *MultiQueue) Push(r *rng.Xoshiro, value int64, priority int64) {
	if priority == ReservedPriority {
		panic("cq: priority MaxInt64 is reserved")
	}
	q := c.lockSomeQueue(r)
	q.h.push(pair{prio: priority, val: value})
	q.top.Store(q.h.min().prio)
	q.mu.Unlock()
}

// PushBatch inserts every pair into one random queue under a single lock
// acquisition: the TryLock round-trip and the cached-top store are paid
// once per batch instead of once per pair.
//
//relax:hotpath
func (c *MultiQueue) PushBatch(r *rng.Xoshiro, pairs []Pair) {
	if len(pairs) == 0 {
		return
	}
	for _, p := range pairs {
		if p.Priority == ReservedPriority {
			panic("cq: priority MaxInt64 is reserved")
		}
	}
	q := c.lockSomeQueue(r)
	for _, p := range pairs {
		q.h.push(pair{prio: p.Priority, val: p.Value})
	}
	q.top.Store(q.h.min().prio)
	q.mu.Unlock()
}

// PopBatch removes up to len(dst) pairs from the better of two random
// queues under one lock acquisition. The batch comes from a single queue,
// so its relaxation is that of the two-choice process at batch granularity:
// coordination cost drops by the batch size, rank quality degrades
// gracefully with it — the trade the batchsweep experiment measures.
//
//relax:hotpath
func (c *MultiQueue) PopBatch(r *rng.Xoshiro, dst []Pair) int {
	if len(dst) == 0 {
		return 0
	}
	nq := len(c.queues)
	for try := 0; try < contentionAttempts; try++ {
		i := r.Intn(nq)
		j := r.Intn(nq)
		ti := c.queues[i].top.Load()
		tj := c.queues[j].top.Load()
		best := i
		if tj < ti {
			best = j
			ti = tj
		}
		if ti == emptyTop {
			continue // probed two empty queues; rerandomize
		}
		q := &c.queues[best]
		if !q.mu.TryLock() {
			continue
		}
		n := q.popBatchLocked(dst)
		q.mu.Unlock()
		if n > 0 {
			return n
		}
	}
	// Probes kept missing: scan all queues, still batching from the first
	// non-empty one.
	for qi := range c.queues {
		q := &c.queues[qi]
		if q.top.Load() == emptyTop {
			continue
		}
		q.mu.Lock() //relax:allow pinregion: authoritative-scan fallback — a blocking take here is what bounds the probe loop above
		n := q.popBatchLocked(dst)
		q.mu.Unlock()
		if n > 0 {
			return n
		}
	}
	return 0
}

// popBatchLocked pops up to len(dst) pairs from q, which must be locked,
// and refreshes the cached top once.
func (q *cqueue) popBatchLocked(dst []Pair) int {
	n := 0
	for n < len(dst) && q.h.len() > 0 {
		it := q.h.pop()
		dst[n] = Pair{Value: it.val, Priority: it.prio}
		n++
	}
	if q.h.len() > 0 {
		q.top.Store(q.h.min().prio)
	} else {
		q.top.Store(emptyTop)
	}
	return n
}

// Pop removes and returns the better of the tops of two random queues.
// ok is false if the structure appeared empty; with concurrent pushers,
// callers must use their own termination protocol (e.g. an in-flight
// counter) rather than trusting a single !ok. It is PopBatch with a batch
// of one: the probe policy, lock discipline and scan fallback live only
// there.
//
//relax:hotpath
func (c *MultiQueue) Pop(r *rng.Xoshiro) (value int64, priority int64, ok bool) {
	var one [1]Pair
	if c.PopBatch(r, one[:]) == 0 {
		return 0, 0, false
	}
	return one[0].Value, one[0].Priority, true
}

// pair is a (priority, value) element of a concurrent queue.
type pair struct {
	prio int64
	val  int64
}

// pairHeap is a slice-backed 4-ary min-heap of pairs. The branching factor
// of 4 keeps sibling groups on one cache line (a pair is 16 bytes), which
// roughly halves the cache misses of sift-down compared to a binary heap —
// pop is the hottest operation in the parallel SSSP profile.
type pairHeap struct {
	a []pair
}

const heapArity = 4

func (h *pairHeap) len() int   { return len(h.a) }
func (h *pairHeap) min() *pair { return &h.a[0] }

func (h *pairHeap) push(p pair) {
	h.a = append(h.a, p)
	i := len(h.a) - 1
	for i > 0 {
		parent := (i - 1) / heapArity
		if h.a[parent].prio <= h.a[i].prio {
			break
		}
		h.a[parent], h.a[i] = h.a[i], h.a[parent]
		i = parent
	}
}

func (h *pairHeap) pop() pair {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		first := heapArity*i + 1
		if first >= last {
			break
		}
		child := first
		end := first + heapArity
		if end > last {
			end = last
		}
		for c := first + 1; c < end; c++ {
			if h.a[c].prio < h.a[child].prio {
				child = c
			}
		}
		if h.a[i].prio <= h.a[child].prio {
			break
		}
		h.a[i], h.a[child] = h.a[child], h.a[i]
		i = child
	}
	return top
}

var (
	_ Queue      = (*MultiQueue)(nil)
	_ BatchQueue = (*MultiQueue)(nil)
)
