// Package cq defines the contract for concurrent relaxed priority queues —
// the structures that drive the paper's concurrent regime (Section 7) — and
// provides the backends behind it. The sequential scheduler model
// (internal/sched) abstracts *what* relaxation costs; this package abstracts
// *which concrete concurrent design* pays it, so the runtime (core.ParallelRun),
// the algorithms (sssp.Parallel) and the experiment harness can compare
// backends head-to-head instead of hard-wiring one.
//
// Four backends ship today:
//
//   - MultiQueueBackend: the lock-per-queue MultiQueue — threads x multiplier
//     4-ary heaps, uniform 2-choice pops over cached atomic tops, TryLock with
//     bounded rerandomization on contention.
//   - SprayListBackend: a lazy lock-based skip list (Herlihy-Shavit style
//     fine-grained locking, logical deletion marks) whose Pop performs a
//     SprayList-style randomized spray walk instead of removing the head.
//   - LockFreeBackend: a lock-free MultiQueue — each queue is a mutable
//     pairing heap behind one atomic root pointer, taken whole by Swap and
//     republished by CAS (ownership transfer), with epoch-based node
//     reclamation and per-worker shard-affine handles; no operation ever
//     blocks another.
//   - ExactBackend: the strict-order control — one binary heap behind one
//     mutex, relaxation factor exactly 1. Not relaxed; it exists so every
//     experiment can price relaxation against strict ordering on the same
//     harness.
//
// All but the exact baseline are relaxed: Pop returns a small-rank
// element, not necessarily the minimum. New backends must pass the shared conformance and race-stress
// suite in cqtest.
//
// On top of the singleton contract sits the batch layer (BatchQueue):
// PushBatch/PopBatch move whole batches per coordination round. MultiQueue
// and LockFreeMQ amortize natively; New wraps the rest in a generic
// fallback so every queue it builds supports the batch API.
package cq

import (
	"fmt"
	"math"

	"relaxsched/internal/rng"
)

// ReservedPriority is the one priority value backends may reserve for
// internal sentinels (empty markers, tail nodes). Push panics on it.
const ReservedPriority = math.MaxInt64

// Queue is a concurrent relaxed priority queue over (value, priority)
// pairs. Lower priorities are better. Duplicate values are permitted:
// algorithms without DecreaseKey (e.g. parallel SSSP) insert a fresh pair
// per update and filter stale ones on pop.
//
// All methods except Len are safe for concurrent use. The *rng.Xoshiro
// passed to Push and Pop must be goroutine-local (use rng.Split per
// worker); backends draw their randomized choices from it so runs stay
// deterministic per worker stream.
//
// Pop's ok=false means the structure *appeared* empty. With concurrent
// pushers this is inherently racy — an element mid-push is invisible — so
// callers must layer their own termination protocol (typically an in-flight
// counter: see core.ParallelRun and sssp.Parallel) rather than trusting a
// single !ok.
//
// Conformance contract (enforced by cqtest, which every backend must pass):
//
//   - no element is lost or duplicated under concurrent push/pop;
//   - Push of ReservedPriority panics;
//   - a backend built with threads = 1, queueMultiplier = 1 degenerates to
//     an exact queue under sequential use (pops in priority order);
//   - under the in-flight-counter termination protocol, racing pushers and
//     poppers drain every element.
type Queue interface {
	// Push inserts a (value, priority) pair.
	Push(r *rng.Xoshiro, value, priority int64)
	// Pop removes and returns a small-rank pair; ok=false if the queue
	// appeared empty.
	Pop(r *rng.Xoshiro) (value, priority int64, ok bool)
	// NumQueues reports the number of independent internal structures
	// (shards/queues); 1 for single-structure backends. Diagnostics only.
	NumQueues() int
	// Len reports the number of stored pairs. It may lock internal state
	// and is only meaningful at quiescence; tests and diagnostics only.
	Len() int
}

// Backend names a concurrent queue implementation.
type Backend string

const (
	// MultiQueueBackend is the lock-per-queue MultiQueue with 2-choice pops
	// (the paper's Section 7 structure). This is the default.
	MultiQueueBackend Backend = "multiqueue"
	// SprayListBackend is the lazy lock-based skip list with spray-height
	// pops (Alistarh, Kopinsky, Li & Shavit, PPoPP 2015).
	SprayListBackend Backend = "spraylist"
	// LockFreeBackend is the lock-free MultiQueue: mutable pairing heaps
	// taken and republished through one atomic root per queue, epoch-based
	// node reclamation (internal/epoch) and shard-affine worker handles.
	LockFreeBackend Backend = "lockfree"
	// ExactBackend is the strict-order baseline: one binary heap behind one
	// mutex, relaxation factor exactly 1. It exists as the control arm of
	// every relaxed-vs-strict comparison — under contention its single lock
	// is the bottleneck the relaxed backends dissipate.
	ExactBackend Backend = "exact"
)

// DefaultBackend is used when a Backend field is left at its zero value.
const DefaultBackend = MultiQueueBackend

// registry is the single source of truth for available backends, default
// first; Backends, Valid and New all derive from it. Adding a backend means
// adding one entry here (and making it pass cqtest).
var registry = []struct {
	name  Backend
	build func(threads, queueMultiplier int) Queue
}{
	{MultiQueueBackend, func(t, m int) Queue { return NewMultiQueue(t * m) }},
	{SprayListBackend, func(t, m int) Queue { return NewSprayList(t * m) }},
	{LockFreeBackend, func(t, m int) Queue { return NewLockFreeMQ(t * m) }},
	{ExactBackend, func(t, m int) Queue { return NewExact() }},
}

// Backends returns every registered backend, default first.
func Backends() []Backend {
	out := make([]Backend, len(registry))
	for i, e := range registry {
		out[i] = e.name
	}
	return out
}

// Valid reports whether b names a registered backend ("" counts as the
// default).
func (b Backend) Valid() bool {
	if b == "" {
		return true
	}
	for _, e := range registry {
		if e.name == b {
			return true
		}
	}
	return false
}

// New builds a queue of the given backend sized for a run with the given
// worker count and relaxation multiplier (>= 1 each). For the MultiQueues
// the product threads*queueMultiplier is the number of internal queues (the
// classic configuration uses multiplier 2); for the SprayList it is the
// simulated contention width p that tunes the spray walk. An empty backend
// selects DefaultBackend; an unknown one is an error.
//
// The returned queue always supports the batch API — the return type says
// so: backends without native batch operations are wrapped in the generic
// singleton-looping fallback.
func New(b Backend, threads, queueMultiplier int) (BatchQueue, error) {
	if threads < 1 {
		return nil, fmt.Errorf("cq: need threads >= 1, got %d", threads)
	}
	if queueMultiplier < 1 {
		return nil, fmt.Errorf("cq: need queueMultiplier >= 1, got %d", queueMultiplier)
	}
	if b == "" {
		b = DefaultBackend
	}
	for _, e := range registry {
		if e.name == b {
			return AsBatch(e.build(threads, queueMultiplier)), nil
		}
	}
	return nil, fmt.Errorf("cq: unknown backend %q (have %v)", b, Backends())
}
