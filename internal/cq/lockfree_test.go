package cq

import (
	"sync"
	"sync/atomic"
	"testing"

	"relaxsched/internal/rng"
)

// The immutable pairing heap must behave persistently: delete-min on a
// snapshot must not disturb the published heap, or a losing CAS competitor
// would corrupt the winner's view.
func TestLockFreeHeapIsPersistent(t *testing.T) {
	a := new(lfArena)
	var h *lfnode
	for _, p := range []int64{5, 1, 9, 3, 7} {
		h = lfMeld(a, h, a.node(p, p, 1, nil))
	}
	if h.size != 5 || h.prio != 1 {
		t.Fatalf("root (prio=%d, size=%d), want (1, 5)", h.prio, h.size)
	}
	// Two independent delete-min chains from the same snapshot must agree.
	for pass := 0; pass < 2; pass++ {
		cur := h
		for _, want := range []int64{1, 3, 5, 7, 9} {
			if cur.prio != want {
				t.Fatalf("pass %d: min %d, want %d", pass, cur.prio, want)
			}
			cur = lfDeleteMin(a, cur)
		}
		if cur != nil {
			t.Fatalf("pass %d: heap not empty after 5 delete-mins", pass)
		}
	}
	if h.size != 5 || h.prio != 1 {
		t.Fatal("delete-min chain mutated the shared snapshot")
	}
}

func TestLockFreeTakeBatch(t *testing.T) {
	a := new(lfArena)
	var h *lfnode
	for p := int64(9); p >= 0; p-- {
		h = lfMeld(a, h, a.node(p, p, 1, nil))
	}
	dst := make([]Pair, 4)
	rest, n := lfTakeBatch(a, h, dst)
	if n != 4 {
		t.Fatalf("took %d, want 4", n)
	}
	for i, p := range dst {
		if p.Priority != int64(i) {
			t.Fatalf("dst[%d].Priority = %d, want %d", i, p.Priority, i)
		}
	}
	if rest == nil || rest.size != 6 || rest.prio != 4 {
		t.Fatalf("rest (prio=%d), want prio 4 with 6 elements", rest.prio)
	}
	if h.size != 10 {
		t.Fatal("lfTakeBatch mutated its input")
	}
	// Taking more than the heap holds drains it and reports the true count.
	big := make([]Pair, 16)
	rest, n = lfTakeBatch(a, rest, big)
	if n != 6 || rest != nil {
		t.Fatalf("drain took %d (rest=%v), want 6 (nil)", n, rest)
	}
}

// Len must track sizes through interleaved singleton and batch traffic.
func TestLockFreeLenTracksSize(t *testing.T) {
	q := NewLockFreeMQ(4)
	r := rng.New(3)
	q.PushBatch(r, []Pair{{1, 10}, {2, 20}, {3, 30}})
	q.Push(r, 4, 5)
	if q.Len() != 4 {
		t.Fatalf("Len = %d, want 4", q.Len())
	}
	if _, _, ok := q.Pop(r); !ok {
		t.Fatal("pop failed")
	}
	dst := make([]Pair, 2)
	n := q.PopBatch(r, dst)
	if got := q.Len(); got != 3-n {
		t.Fatalf("Len = %d after popping 1+%d of 4", got, n)
	}
}

// A torn CAS must never double-deliver: hammer one shard so every operation
// contends on the same root pointer.
func TestLockFreeSingleShardContention(t *testing.T) {
	const (
		goroutines = 8
		perG       = 2000
	)
	q := NewLockFreeMQ(1) // all traffic on one root
	seen := make([]atomic.Bool, goroutines*perG)
	var popped atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rng.New(uint64(g) + 7)
			for i := 0; i < perG; i++ {
				q.Push(r, int64(g*perG+i), int64(r.Intn(1<<16)))
				if i%2 == 1 {
					if v, _, ok := q.Pop(r); ok {
						if seen[v].Swap(true) {
							t.Errorf("value %d popped twice", v)
						}
						popped.Add(1)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	r := rng.New(1)
	for {
		v, _, ok := q.Pop(r)
		if !ok {
			break
		}
		if seen[v].Swap(true) {
			t.Errorf("value %d popped twice", v)
		}
		popped.Add(1)
	}
	if got := popped.Load(); got != goroutines*perG {
		t.Fatalf("drained %d of %d", got, goroutines*perG)
	}
}
