package cq

import (
	"sync"
	"sync/atomic"
	"testing"

	"relaxsched/internal/rng"
)

// buildHeap melds fresh singleton nodes for the given priorities.
func buildHeap(prios ...int64) *lfnode {
	var h *lfnode
	for _, p := range prios {
		h = lfMeld(h, &lfnode{prio: p, val: p})
	}
	return h
}

// The in-place pairing heap must deliver minima in order through repeated
// delete-min, with the detached root's links cleared for retirement.
func TestLockFreeHeapDeleteMinOrder(t *testing.T) {
	h := buildHeap(5, 1, 9, 3, 7)
	if h.prio != 1 {
		t.Fatalf("root prio = %d, want 1", h.prio)
	}
	for _, want := range []int64{1, 3, 5, 7, 9} {
		if h.prio != want {
			t.Fatalf("min %d, want %d", h.prio, want)
		}
		root := h
		h = lfDeleteMin(h)
		if root.child != nil || root.sibling != nil {
			t.Fatalf("detached root %d kept links (child=%v sibling=%v)", want, root.child, root.sibling)
		}
	}
	if h != nil {
		t.Fatal("heap not empty after 5 delete-mins")
	}
}

// lfMeld must keep roots sibling-free and handle nil on either side.
func TestLockFreeMeld(t *testing.T) {
	a := &lfnode{prio: 2}
	if lfMeld(nil, a) != a || lfMeld(a, nil) != a {
		t.Fatal("meld with nil must return the other heap")
	}
	b := &lfnode{prio: 1}
	m := lfMeld(a, b)
	if m != b || m.sibling != nil || m.child != a {
		t.Fatal("meld did not link the worse root as leftmost child")
	}
}

// Len must track sizes through interleaved singleton and batch traffic on
// the plain queue-level API.
func TestLockFreeLenTracksSize(t *testing.T) {
	q := NewLockFreeMQ(4)
	r := rng.New(3)
	q.PushBatch(r, []Pair{{1, 10}, {2, 20}, {3, 30}})
	q.Push(r, 4, 5)
	if q.Len() != 4 {
		t.Fatalf("Len = %d, want 4", q.Len())
	}
	if _, _, ok := q.Pop(r); !ok {
		t.Fatal("pop failed")
	}
	dst := make([]Pair, 2)
	n := q.PopBatch(r, dst)
	if got := q.Len(); got != 3-n {
		t.Fatalf("Len = %d after popping 1+%d of 4", got, n)
	}
}

// Handles must honour the same contract as the queue methods and
// interleave with them; home shards are advisory, so one handle's pushes
// must be poppable through another handle and through the plain API.
func TestLockFreeHandleInterleaving(t *testing.T) {
	q := NewLockFreeMQ(4)
	r := rng.New(11)
	h1 := q.NewHandle()
	h2 := q.NewHandle()
	defer h1.Close()
	defer h2.Close()

	h1.Push(r, 1, 10)
	h1.PushBatch(r, []Pair{{2, 20}, {3, 30}})
	q.Push(r, 4, 40)
	if q.Len() != 4 {
		t.Fatalf("Len = %d, want 4", q.Len())
	}
	seen := map[int64]bool{}
	if v, _, ok := h2.Pop(r); !ok {
		t.Fatal("h2.Pop failed with 4 elements present")
	} else {
		seen[v] = true
	}
	dst := make([]Pair, 8)
	n := h1.PopBatch(r, dst)
	for _, p := range dst[:n] {
		seen[p.Value] = true
	}
	if v, _, ok := q.Pop(r); ok {
		seen[v] = true
	}
	if len(seen) != 4 {
		t.Fatalf("recovered %d distinct values, want 4 (%v)", len(seen), seen)
	}
	if _, _, ok := h2.Pop(r); ok {
		t.Fatal("pop succeeded on a drained queue")
	}
}

// The uniform (affinity-off) variant must satisfy the same contract.
func TestLockFreeUniformVariant(t *testing.T) {
	q := NewLockFreeMQUniform(4)
	if q.RecyclesNodes() != true {
		t.Fatal("uniform variant must still recycle nodes")
	}
	r := rng.New(5)
	h := q.NewHandle()
	defer h.Close()
	for i := int64(0); i < 100; i++ {
		h.Push(r, i, i)
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d, want 100", q.Len())
	}
	got := 0
	for {
		if _, _, ok := h.Pop(r); !ok {
			break
		}
		got++
	}
	if got != 100 {
		t.Fatalf("drained %d of 100", got)
	}
}

// Steady-state traffic through a handle must reuse retired nodes by
// pointer identity: after the epoch pipeline warms up, pops feed pushes.
func TestLockFreeNodeReuse(t *testing.T) {
	q := NewLockFreeMQ(1)
	r := rng.New(9)
	h := q.NewHandle().(*lfHandle)
	defer h.Close()

	// Warm up: cycle enough push/pop pairs for retirement bins to mature
	// into the free list (advance happens every 64 retires, grace is 2).
	for i := int64(0); i < 1024; i++ {
		h.Push(r, i, i)
		h.Pop(r)
	}
	// Now track identity: the node backing a push must eventually be one we
	// popped earlier.
	seen := make(map[*lfnode]bool)
	reused := 0
	for i := int64(0); i < 512; i++ {
		n := h.slot.Alloc()
		if seen[n] {
			reused++
		}
		h.slot.Retire(n)
		seen[n] = true
	}
	if reused == 0 {
		t.Fatal("no node was ever reused through the epoch free list")
	}
}

// A torn publish must never double-deliver or lose elements: hammer one
// shard so every operation contends on the same root pointer, mixing
// handle and queue-level traffic.
func TestLockFreeSingleShardContention(t *testing.T) {
	const (
		goroutines = 8
		perG       = 2000
	)
	q := NewLockFreeMQ(1) // all traffic on one root
	seen := make([]atomic.Bool, goroutines*perG)
	var popped atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rng.New(uint64(g) + 7)
			h := q.NewHandle()
			defer h.Close()
			for i := 0; i < perG; i++ {
				if g%2 == 0 {
					h.Push(r, int64(g*perG+i), int64(r.Intn(1<<16)))
				} else {
					q.Push(r, int64(g*perG+i), int64(r.Intn(1<<16)))
				}
				if i%2 == 1 {
					if v, _, ok := h.Pop(r); ok {
						if seen[v].Swap(true) {
							t.Errorf("value %d popped twice", v)
						}
						popped.Add(1)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	r := rng.New(1)
	for {
		v, _, ok := q.Pop(r)
		if !ok {
			break
		}
		if seen[v].Swap(true) {
			t.Errorf("value %d popped twice", v)
		}
		popped.Add(1)
	}
	if got := popped.Load(); got != goroutines*perG {
		t.Fatalf("drained %d of %d", got, goroutines*perG)
	}
}
