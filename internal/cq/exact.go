package cq

import (
	"sync"

	"relaxsched/internal/rng"
)

// Exact is the strict-order baseline backend: one binary heap behind one
// mutex. Pop always returns the global minimum, so its relaxation factor is
// exactly 1 — the k = 1 scheduler of the paper's sequential model, realized
// concurrently. It exists to be measured against: every coordination round
// serializes on the single lock, which is precisely the bottleneck the
// relaxed designs (MultiQueue, SprayList, lock-free MultiQueue) exist to
// dissipate. Workloads where relaxation should win — the contended
// transactional workload above all — quantify the win against this
// backend's rows.
type Exact struct {
	mu   sync.Mutex
	heap []Pair
}

// NewExact returns an exact (strict priority order) mutex-heap queue.
func NewExact() *Exact {
	return &Exact{}
}

// Push inserts a pair; the rng stream is unused (no randomized choices).
func (q *Exact) Push(_ *rng.Xoshiro, value, priority int64) {
	if priority == ReservedPriority {
		panic("cq: push of ReservedPriority")
	}
	q.mu.Lock()
	q.heap = append(q.heap, Pair{Value: value, Priority: priority})
	q.siftUp(len(q.heap) - 1)
	q.mu.Unlock()
}

// Pop removes and returns the global minimum-priority pair.
func (q *Exact) Pop(_ *rng.Xoshiro) (value, priority int64, ok bool) {
	q.mu.Lock()
	n := len(q.heap)
	if n == 0 {
		q.mu.Unlock()
		return 0, 0, false
	}
	top := q.heap[0]
	q.heap[0] = q.heap[n-1]
	q.heap = q.heap[:n-1]
	if len(q.heap) > 0 {
		q.siftDown(0)
	}
	q.mu.Unlock()
	return top.Value, top.Priority, true
}

// NumQueues reports 1: a single shared structure.
func (q *Exact) NumQueues() int { return 1 }

// Len reports the stored pair count.
func (q *Exact) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.heap)
}

func (q *Exact) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if q.heap[parent].Priority <= q.heap[i].Priority {
			return
		}
		q.heap[parent], q.heap[i] = q.heap[i], q.heap[parent]
		i = parent
	}
}

func (q *Exact) siftDown(i int) {
	n := len(q.heap)
	for {
		min, l, r := i, 2*i+1, 2*i+2
		if l < n && q.heap[l].Priority < q.heap[min].Priority {
			min = l
		}
		if r < n && q.heap[r].Priority < q.heap[min].Priority {
			min = r
		}
		if min == i {
			return
		}
		q.heap[i], q.heap[min] = q.heap[min], q.heap[i]
		i = min
	}
}
