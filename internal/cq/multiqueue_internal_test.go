package cq

import (
	"sync/atomic"
	"testing"
	"time"

	"relaxsched/internal/rng"
)

// With every internal queue held by someone else, Push must exhaust its
// bounded TryLock attempts and park on a blocking Lock — not spin — and
// complete as soon as a queue frees up. This is the bounded-livelock
// guarantee lockSomeQueue documents: under total contention a pusher costs
// a lock wait, never an unbounded rerandomization loop.
func TestPushFallsBackToBlockingLock(t *testing.T) {
	c := NewMultiQueue(4)
	for i := range c.queues {
		c.queues[i].mu.Lock()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Push(rng.New(7), 1, 1)
	}()
	select {
	case <-done:
		t.Fatal("Push completed with every queue locked")
	case <-time.After(20 * time.Millisecond):
		// Parked in the blocking fallback, as intended.
	}
	// Release every queue: whichever one the fallback committed to, the
	// parked Push acquires it and finishes.
	for i := range c.queues {
		c.queues[i].mu.Unlock()
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Push did not complete after the queues were released")
	}
	if got := c.Len(); got != 1 {
		t.Fatalf("Len = %d after the fallback push, want 1", got)
	}
}

// PushBatch shares lockSomeQueue, so the same fallback must hold for the
// batched path.
func TestPushBatchFallsBackToBlockingLock(t *testing.T) {
	c := NewMultiQueue(2)
	for i := range c.queues {
		c.queues[i].mu.Lock()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.PushBatch(rng.New(9), []Pair{{Value: 1, Priority: 1}, {Value: 2, Priority: 2}})
	}()
	select {
	case <-done:
		t.Fatal("PushBatch completed with every queue locked")
	case <-time.After(20 * time.Millisecond):
	}
	for i := range c.queues {
		c.queues[i].mu.Unlock()
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("PushBatch did not complete after the queues were released")
	}
	if got := c.Len(); got != 2 {
		t.Fatalf("Len = %d after the fallback batch push, want 2", got)
	}
}

// BenchmarkPushSingleQueueContended drives every worker at a one-queue
// MultiQueue: nearly all TryLock attempts fail, so the per-push cost is
// dominated by rerandomized retries and the blocking fallback — the path
// TestPushFallsBackToBlockingLock proves correct, priced here. Compare
// with BenchmarkPushSpreadUncontended to see what the fallback costs
// relative to the optimistic hit path.
func BenchmarkPushSingleQueueContended(b *testing.B) {
	c := NewMultiQueue(1)
	var seed atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		r := rng.New(seed.Add(1))
		i := int64(0)
		for pb.Next() {
			c.Push(r, i, i)
			i++
		}
	})
}

// BenchmarkPushSpreadUncontended is the optimistic baseline: far more
// queues than pushers, so the first TryLock almost always lands.
func BenchmarkPushSpreadUncontended(b *testing.B) {
	c := NewMultiQueue(64)
	var seed atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		r := rng.New(seed.Add(1))
		i := int64(0)
		for pb.Next() {
			c.Push(r, i, i)
			i++
		}
	})
}
