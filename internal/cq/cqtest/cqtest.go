// Package cqtest is the shared conformance and race-stress suite for cq
// backends. Every backend must pass it (run the suite with -race in CI):
// future backends are drop-in exactly when cqtest.Run accepts them.
//
// The suite checks the contract documented on cq.Queue: no element lost or
// duplicated under concurrent push/pop, exactness in the unrelaxed
// configuration, approximate-minimum quality of relaxed pops, panics on the
// reserved priority, and — the subtlest clause — termination under the
// in-flight-counter protocol when poppers race pushers, i.e. when Pop
// transiently reports empty while an element is mid-push (the
// Pop/scanPop empty-vs-racing-pusher edge that core.ParallelRun and
// sssp.Parallel rely on).
//
// It also checks the batch layer (cq.BatchQueue) through every backend:
// PushBatch/PopBatch lose no elements, cross safely with singleton ops
// under concurrency, degenerate to exact priority order when unrelaxed,
// and reject the reserved priority — whether the backend implements
// batching natively or through the generic fallback.
package cqtest

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"relaxsched/internal/cq"
	"relaxsched/internal/rng"
)

// Factory builds a fresh queue for a simulated run shape, mirroring
// cq.New's sizing parameters. The passed t is the invoking subtest's, so
// construction failures are reported on the right test.
type Factory func(t *testing.T, threads, queueMultiplier int) cq.Queue

// ForBackend adapts cq.New for a named backend into a Factory, failing the
// invoking subtest on construction errors.
func ForBackend(b cq.Backend) Factory {
	return func(t *testing.T, threads, queueMultiplier int) cq.Queue {
		t.Helper()
		q, err := cq.New(b, threads, queueMultiplier)
		if err != nil {
			t.Fatalf("cq.New(%q, %d, %d): %v", b, threads, queueMultiplier, err)
		}
		return q
	}
}

// Run executes the full conformance and stress suite against the backend.
func Run(t *testing.T, newQueue Factory) {
	t.Run("EmptyPop", func(t *testing.T) { testEmptyPop(t, newQueue) })
	t.Run("ExactWhenUnrelaxed", func(t *testing.T) { testExactWhenUnrelaxed(t, newQueue) })
	t.Run("ValuesPreservedSequential", func(t *testing.T) { testValuesPreservedSequential(t, newQueue) })
	t.Run("ApproxMin", func(t *testing.T) { testApproxMin(t, newQueue) })
	t.Run("ReservedPriorityPanics", func(t *testing.T) { testReservedPriorityPanics(t, newQueue) })
	t.Run("ConcurrentValuesPreserved", func(t *testing.T) { testConcurrentValuesPreserved(t, newQueue) })
	t.Run("RacingPushersTermination", func(t *testing.T) { testRacingPushersTermination(t, newQueue) })
	t.Run("BatchSequentialDrain", func(t *testing.T) { testBatchSequentialDrain(t, newQueue) })
	t.Run("BatchExactWhenUnrelaxed", func(t *testing.T) { testBatchExactWhenUnrelaxed(t, newQueue) })
	t.Run("BatchReservedPriorityPanics", func(t *testing.T) { testBatchReservedPriorityPanics(t, newQueue) })
	t.Run("BatchConcurrentValuesPreserved", func(t *testing.T) { testBatchConcurrentValuesPreserved(t, newQueue) })
	t.Run("ScalingSmoke", func(t *testing.T) { testScalingSmoke(t, newQueue) })
	t.Run("HandleConformance", func(t *testing.T) { testHandleConformance(t, newQueue) })
	t.Run("HandleInjectedDeath", func(t *testing.T) { testHandleInjectedDeath(t, newQueue) })
	t.Run("AllocSteadyState", func(t *testing.T) { testAllocSteadyState(t, newQueue) })
}

// stressTimeout bounds every concurrent subtest so a termination bug shows
// up as a failure, not a hung test binary.
const stressTimeout = 60 * time.Second

// waitOrFatal waits for wg or fails the test after stressTimeout.
func waitOrFatal(t *testing.T, wg *sync.WaitGroup, what string) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(stressTimeout):
		t.Fatalf("%s did not finish within %v (termination bug?)", what, stressTimeout)
	}
}

func testEmptyPop(t *testing.T, newQueue Factory) {
	q := newQueue(t, 2, 2)
	r := rng.New(1)
	if _, _, ok := q.Pop(r); ok {
		t.Fatal("Pop on empty queue returned ok")
	}
	if n := q.Len(); n != 0 {
		t.Fatalf("Len = %d on empty queue", n)
	}
	if nq := q.NumQueues(); nq < 1 {
		t.Fatalf("NumQueues = %d, want >= 1", nq)
	}
}

func testExactWhenUnrelaxed(t *testing.T, newQueue Factory) {
	// threads = 1, multiplier = 1 must degenerate to an exact queue under
	// sequential use: this anchors every backend's relaxation knob to the
	// same origin, so backend comparisons sweep from a common baseline.
	q := newQueue(t, 1, 1)
	r := rng.New(7)
	const n = 512
	for _, p := range r.Perm(n) {
		q.Push(r, int64(p), int64(p))
	}
	for want := 0; want < n; want++ {
		v, p, ok := q.Pop(r)
		if !ok {
			t.Fatalf("queue empty after %d of %d pops", want, n)
		}
		if p != int64(want) || v != int64(want) {
			t.Fatalf("pop %d returned (v=%d, p=%d), want (%d, %d)", want, v, p, want, want)
		}
	}
	if _, _, ok := q.Pop(r); ok {
		t.Fatal("pop after drain returned ok")
	}
}

func testValuesPreservedSequential(t *testing.T, newQueue Factory) {
	q := newQueue(t, 2, 2)
	r := rng.New(3)
	const n = 2000
	for i := 0; i < n; i++ {
		q.Push(r, int64(i), int64(i%7)) // duplicate priorities allowed
	}
	if q.Len() != n {
		t.Fatalf("Len = %d, want %d", q.Len(), n)
	}
	seen := make([]bool, n)
	for {
		v, _, ok := q.Pop(r)
		if !ok {
			break
		}
		if v < 0 || v >= n {
			t.Fatalf("popped alien value %d", v)
		}
		if seen[v] {
			t.Fatalf("value %d popped twice", v)
		}
		seen[v] = true
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("value %d lost", i)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
}

func testApproxMin(t *testing.T, newQueue Factory) {
	// A relaxed pop need not return the minimum, but it must return a
	// small-rank element. N/4 is an extremely generous bound: the
	// MultiQueue's 2-choice pop and the SprayList's spray both land within
	// O(poly(p) polylog(N)) of the front with overwhelming probability.
	const (
		n      = 4096
		trials = 3
	)
	for trial := 0; trial < trials; trial++ {
		q := newQueue(t, 4, 2)
		r := rng.New(100 + uint64(trial))
		for _, p := range r.Perm(n) {
			q.Push(r, int64(p), int64(p))
		}
		_, p, ok := q.Pop(r)
		if !ok {
			t.Fatal("pop of full queue returned !ok")
		}
		if p >= n/4 {
			t.Fatalf("trial %d: first pop rank %d of %d — not an approximate min", trial, p, n)
		}
	}
}

func testReservedPriorityPanics(t *testing.T, newQueue Factory) {
	q := newQueue(t, 1, 1)
	r := rng.New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Push(ReservedPriority) did not panic")
		}
	}()
	q.Push(r, 0, cq.ReservedPriority)
}

func testConcurrentValuesPreserved(t *testing.T, newQueue Factory) {
	// Mixed concurrent push/pop; afterwards every value must have been
	// popped exactly once. Run with -race for the full effect.
	const (
		goroutines = 8
		perG       = 4000
	)
	q := newQueue(t, goroutines, 2)
	seen := make([]atomic.Bool, goroutines*perG)
	var popped atomic.Int64
	record := func(v int64) {
		if seen[v].Swap(true) {
			t.Errorf("value %d popped twice", v)
		}
		popped.Add(1)
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rng.New(uint64(g) + 1)
			for i := 0; i < perG; i++ {
				q.Push(r, int64(g*perG+i), int64(r.Intn(1<<20)))
				if i%2 == 1 {
					if v, _, ok := q.Pop(r); ok {
						record(v)
					}
				}
			}
		}(g)
	}
	waitOrFatal(t, &wg, "concurrent push/pop stress")
	r := rng.New(99)
	for {
		v, _, ok := q.Pop(r)
		if !ok {
			break
		}
		record(v)
	}
	if got := popped.Load(); got != goroutines*perG {
		t.Fatalf("popped %d values total, want %d", got, goroutines*perG)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
}

// testBatchSequentialDrain crosses the batch and singleton paths in both
// directions: values pushed in batches must come back out through singleton
// pops and vice versa, with nothing lost or duplicated. Queues built by
// cq.New always support the batch API (natively or via the generic
// fallback); AsBatch covers factories that hand back bare queues.
func testBatchSequentialDrain(t *testing.T, newQueue Factory) {
	q := cq.AsBatch(newQueue(t, 2, 2))
	r := rng.New(17)
	const n = 2048
	const batch = 64
	// Half the values go in through PushBatch, half through Push.
	buf := make([]cq.Pair, 0, batch)
	for v := 0; v < n/2; v++ {
		buf = append(buf, cq.Pair{Value: int64(v), Priority: int64(v % 97)})
		if len(buf) == batch {
			q.PushBatch(r, buf)
			buf = buf[:0]
		}
	}
	q.PushBatch(r, buf)
	for v := n / 2; v < n; v++ {
		q.Push(r, int64(v), int64(v%97))
	}
	if q.Len() != n {
		t.Fatalf("Len = %d after pushes, want %d", q.Len(), n)
	}
	// Half come out through PopBatch, the rest through singleton pops.
	seen := make([]bool, n)
	record := func(v int64) {
		if v < 0 || v >= n {
			t.Fatalf("popped alien value %d", v)
		}
		if seen[v] {
			t.Fatalf("value %d popped twice", v)
		}
		seen[v] = true
	}
	got := 0
	dst := make([]cq.Pair, batch)
	for got < n/2 {
		k := q.PopBatch(r, dst)
		if k == 0 {
			t.Fatalf("PopBatch empty after %d of %d", got, n)
		}
		for _, p := range dst[:k] {
			record(p.Value)
		}
		got += k
	}
	for {
		v, _, ok := q.Pop(r)
		if !ok {
			break
		}
		record(v)
		got++
	}
	if got != n {
		t.Fatalf("drained %d of %d values", got, n)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
	if k := q.PopBatch(r, dst); k != 0 {
		t.Fatalf("PopBatch on empty queue returned %d", k)
	}
	q.PushBatch(r, nil) // empty batch is a no-op, not a panic
	if k := q.PopBatch(r, nil); k != 0 {
		t.Fatalf("PopBatch with empty dst returned %d", k)
	}
}

// testBatchExactWhenUnrelaxed anchors the batch path to the same origin as
// the singleton path: with one internal structure under sequential use,
// PopBatch must return elements in priority order within and across
// batches.
func testBatchExactWhenUnrelaxed(t *testing.T, newQueue Factory) {
	q := cq.AsBatch(newQueue(t, 1, 1))
	r := rng.New(23)
	const n = 512
	perm := r.Perm(n)
	pairs := make([]cq.Pair, 0, n)
	for _, p := range perm {
		pairs = append(pairs, cq.Pair{Value: int64(p), Priority: int64(p)})
	}
	q.PushBatch(r, pairs)
	dst := make([]cq.Pair, 30) // deliberately not a divisor of n
	want := int64(0)
	for want < n {
		k := q.PopBatch(r, dst)
		if k == 0 {
			t.Fatalf("queue empty after %d of %d batch pops", want, n)
		}
		for _, p := range dst[:k] {
			if p.Priority != want || p.Value != want {
				t.Fatalf("batch pop returned (v=%d, p=%d), want (%d, %d)", p.Value, p.Priority, want, want)
			}
			want++
		}
	}
}

func testBatchReservedPriorityPanics(t *testing.T, newQueue Factory) {
	q := cq.AsBatch(newQueue(t, 1, 1))
	r := rng.New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("PushBatch containing ReservedPriority did not panic")
		}
	}()
	q.PushBatch(r, []cq.Pair{{Value: 1, Priority: 3}, {Value: 0, Priority: cq.ReservedPriority}})
}

// testBatchConcurrentValuesPreserved interleaves batch and singleton
// operations across racing goroutines; afterwards every value must have
// been popped exactly once. Run with -race for the full effect.
func testBatchConcurrentValuesPreserved(t *testing.T, newQueue Factory) {
	const (
		goroutines = 8
		perG       = 3000
		batch      = 16
	)
	q := cq.AsBatch(newQueue(t, goroutines, 2))
	seen := make([]atomic.Bool, goroutines*perG)
	var popped atomic.Int64
	record := func(v int64) {
		if seen[v].Swap(true) {
			t.Errorf("value %d popped twice", v)
		}
		popped.Add(1)
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rng.New(uint64(g) + 1)
			out := make([]cq.Pair, 0, batch)
			dst := make([]cq.Pair, batch)
			for i := 0; i < perG; i++ {
				v := int64(g*perG + i)
				if g%2 == 0 { // even goroutines push batches, odd singletons
					out = append(out, cq.Pair{Value: v, Priority: int64(r.Intn(1 << 20))})
					if len(out) == batch {
						q.PushBatch(r, out)
						out = out[:0]
					}
				} else {
					q.Push(r, v, int64(r.Intn(1<<20)))
				}
				if i%3 == 2 {
					if g%2 == 1 { // odd goroutines pop batches, even singletons
						for _, p := range dst[:q.PopBatch(r, dst[:1+r.Intn(batch)])] {
							record(p.Value)
						}
					} else if v, _, ok := q.Pop(r); ok {
						record(v)
					}
				}
			}
			q.PushBatch(r, out)
		}(g)
	}
	waitOrFatal(t, &wg, "concurrent batch/singleton stress")
	r := rng.New(99)
	dst := make([]cq.Pair, batch)
	for {
		k := q.PopBatch(r, dst)
		if k == 0 {
			break
		}
		for _, p := range dst[:k] {
			record(p.Value)
		}
	}
	// A final singleton sweep catches anything PopBatch's probes missed.
	for {
		v, _, ok := q.Pop(r)
		if !ok {
			break
		}
		record(v)
	}
	if got := popped.Load(); got != goroutines*perG {
		t.Fatalf("popped %d values total, want %d", got, goroutines*perG)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
}

// testScalingSmoke guards against the failure mode whose fix this suite
// postdates: per-pop cost growing with the simulated contention width
// until adding threads *lowers* pop throughput (the SprayList's negative
// thread-scaling recorded through BENCH_PR3.json — every pop paid a
// full-height search to unlink its victim, and failed claims rescanned
// from the head). It prefills a threads-wide queue and times a full drain
// by one popper vs threads poppers; the concurrent drain must retain a
// quarter of the single-popper rate. The tolerance is deliberately
// generous — this runs under -race, on shared CI machines, and on 1-core
// containers where extra poppers are pure oversubscription — so it trips
// on collapses, not on regressions of degree.
func testScalingSmoke(t *testing.T, newQueue Factory) {
	const (
		threads   = 4
		n         = 24000
		tolerance = 0.25
	)
	measure := func(poppers int) float64 {
		// Same queue shape in both runs — only the popper count varies, so
		// the comparison isolates concurrent-drain behaviour from the
		// structure's p parameter.
		q := newQueue(t, threads, 2)
		r := rng.New(9)
		for i := 0; i < n; i++ {
			q.Push(r, int64(i), int64(r.Intn(1<<20)))
		}
		var popped atomic.Int64
		start := time.Now()
		var wg sync.WaitGroup
		for g := 0; g < poppers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rr := rng.New(uint64(100 + g))
				for popped.Load() < n {
					if _, _, ok := q.Pop(rr); ok {
						popped.Add(1)
					}
				}
			}(g)
		}
		waitOrFatal(t, &wg, "scaling-smoke drain")
		elapsed := time.Since(start)
		if got := popped.Load(); got != n {
			t.Fatalf("%d poppers drained %d of %d", poppers, got, n)
		}
		return float64(n) / elapsed.Seconds()
	}
	// Best-of-two per configuration: a single sample is at the mercy of a
	// GC cycle or a noisy CI neighbour.
	best := func(poppers int) float64 {
		a, b := measure(poppers), measure(poppers)
		if a > b {
			return a
		}
		return b
	}
	single := best(1)
	multi := best(threads)
	if multi < single*tolerance {
		t.Fatalf("pop throughput collapsed with poppers: %d poppers %.2g pops/s vs 1 popper %.2g pops/s (tolerance %.2gx)",
			threads, multi, single, tolerance)
	}
	t.Logf("drain throughput: 1 popper %.3g pops/s, %d poppers %.3g pops/s (%.2fx)",
		single, threads, multi, multi/single)
}

// testHandleConformance runs the per-worker session path (cq.HandleFor)
// through every backend: handle-less backends get the pass-through wrapper,
// handle backends (cq.HandleQueue) get real sessions with epoch slots and
// home shards. Each worker routes all its traffic through one pinned handle
// — exactly the engine's usage — racing queue-level operations from a
// coordinator; every value must come back exactly once, and Close must
// leave the remaining workers fully operational (the worker-death case).
func testHandleConformance(t *testing.T, newQueue Factory) {
	const (
		workers = 8
		perW    = 3000
	)
	q := cq.AsBatch(newQueue(t, workers, 2))
	// Value space: workers*perW from the main loops, 64 per surviving
	// worker, perW from the coordinator.
	seen := make([]atomic.Bool, workers*perW+workers*64+perW)
	var popped atomic.Int64
	record := func(v int64) {
		if seen[v].Swap(true) {
			t.Errorf("value %d popped twice", v)
		}
		popped.Add(1)
	}
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := cq.HandleFor(q)
			r := rng.New(uint64(g) + 1)
			dst := make([]cq.Pair, 8)
			for i := 0; i < perW; i++ {
				v := int64(g*perW + i)
				if i%4 == 3 {
					h.PushBatch(r, []cq.Pair{{Value: v, Priority: int64(r.Intn(1 << 20))}})
				} else {
					h.Push(r, v, int64(r.Intn(1<<20)))
				}
				switch i % 3 {
				case 1:
					if v, _, ok := h.Pop(r); ok {
						record(v)
					}
				case 2:
					for _, p := range dst[:h.PopBatch(r, dst)] {
						record(p.Value)
					}
				}
			}
			if g%2 == 0 {
				h.Close() // half the workers die early with live elements around
			} else {
				defer h.Close()
				// Survivors keep operating after the early closers are gone.
				for i := 0; i < 64; i++ {
					h.Push(r, int64(workers*perW+g*64+i), int64(r.Intn(1<<20)))
					if v, _, ok := h.Pop(r); ok {
						record(v)
					}
				}
			}
		}(g)
	}
	// Queue-level traffic interleaves with the handles throughout.
	wg.Add(1)
	var coordPushed atomic.Int64
	go func() {
		defer wg.Done()
		r := rng.New(777)
		for i := 0; i < perW; i++ {
			q.Push(r, int64(workers*perW+workers*64+i), int64(r.Intn(1<<20)))
			coordPushed.Add(1)
			if i%2 == 1 {
				if v, _, ok := q.Pop(r); ok {
					record(v)
				}
			}
		}
	}()
	waitOrFatal(t, &wg, "handle conformance stress")
	// Drain through a fresh handle — it must see everything, including
	// elements pushed by since-closed handles.
	h := cq.HandleFor(q)
	defer h.Close()
	r := rng.New(99)
	dst := make([]cq.Pair, 32)
	for {
		k := h.PopBatch(r, dst)
		if k == 0 {
			break
		}
		for _, p := range dst[:k] {
			record(p.Value)
		}
	}
	total := int64(workers*perW) + int64(workers/2)*64 + coordPushed.Load()
	if got := popped.Load(); got != total {
		t.Fatalf("recovered %d of %d values through handles", got, total)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
}

// testHandleInjectedDeath drives seeded chaos through pinned handles and
// kills half of them abruptly mid-run: a doomed worker stalls (a scheduler
// hiccup at the worst moment) at a seeded point and then Closes its handle
// with its own live elements still in the queue and the rest of its
// workload never pushed. The contract under test is the worker-death
// clause of cq.HandleQueue: a closed handle must hand its session state
// (epoch slot, accumulated free list) back to the queue, so survivors and
// a post-mortem fresh handle recover every pushed value exactly once —
// and, for recycling backends, node reuse must keep working after the
// deaths: a leaked epoch pin would dam reclamation and drive steady-state
// allocations back up to one per push.
func testHandleInjectedDeath(t *testing.T, newQueue Factory) {
	const (
		workers = 8
		perW    = 2000
	)
	raw := newQueue(t, workers, 2)
	q := cq.AsBatch(raw)
	seen := make([]atomic.Bool, workers*perW)
	var popped atomic.Int64
	record := func(v int64) {
		if seen[v].Swap(true) {
			t.Errorf("value %d popped twice", v)
		}
		popped.Add(1)
	}
	// Written by each worker before wg.Done, read after the Wait — the
	// WaitGroup provides the happens-before edge.
	pushed := make([]int64, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := cq.HandleFor(q)
			r := rng.New(uint64(g)*0x9e3779b97f4a7c15 + 555)
			deathAt := perW/4 + r.Intn(perW/2)
			count := int64(0)
			dst := make([]cq.Pair, 8)
			for i := 0; i < perW; i++ {
				if g%2 == 0 && i == deathAt {
					// Injected death: stall, then die without draining.
					time.Sleep(time.Duration(r.Intn(200)) * time.Microsecond)
					h.Close()
					pushed[g] = count
					return
				}
				v := int64(g*perW + i)
				if i%4 == 3 {
					h.PushBatch(r, []cq.Pair{{Value: v, Priority: int64(r.Intn(1 << 20))}})
				} else {
					h.Push(r, v, int64(r.Intn(1<<20)))
				}
				count++
				switch i % 3 {
				case 1:
					if v, _, ok := h.Pop(r); ok {
						record(v)
					}
				case 2:
					for _, p := range dst[:h.PopBatch(r, dst)] {
						record(p.Value)
					}
				}
			}
			h.Close()
			pushed[g] = count
		}(g)
	}
	waitOrFatal(t, &wg, "injected-death stress")
	// Post-mortem: a fresh handle must see every surviving element,
	// including those pushed by the since-dead handles.
	h := cq.HandleFor(q)
	defer h.Close()
	r := rng.New(4242)
	dst := make([]cq.Pair, 32)
	for {
		k := h.PopBatch(r, dst)
		if k == 0 {
			break
		}
		for _, p := range dst[:k] {
			record(p.Value)
		}
	}
	var total int64
	for _, c := range pushed {
		total += c
	}
	if got := popped.Load(); got != total {
		t.Fatalf("recovered %d of %d values pushed before the deaths", got, total)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after post-mortem drain", q.Len())
	}
	// Reclamation liveness after the deaths: with every doomed handle
	// closed, retired nodes must still mature into free lists. A dead
	// handle that kept an epoch pinned would block reuse forever.
	if rec, ok := raw.(cq.Recycler); ok && rec.RecyclesNodes() {
		for i := 0; i < 8192; i++ {
			h.Push(r, int64(i%perW), int64(r.Intn(1<<16)))
			h.Pop(r)
		}
		perOp := testing.AllocsPerRun(2000, func() {
			h.Push(r, 1, int64(r.Intn(1<<16)))
			h.Pop(r)
		}) / 2
		if perOp > 0.25 {
			t.Fatalf("post-death steady state allocated %.3f allocs/op; the dead handles blocked reclamation", perOp)
		}
		t.Logf("post-death steady-state allocations: %.3f allocs/op (gated <= 0.25)", perOp)
	}
}

// testAllocSteadyState measures per-operation heap allocations of a warm
// push/pop cycle through one handle. Backends that declare node recycling
// (cq.Recycler) are gated: once the reclamation pipeline matures, pops must
// feed pushes, so steady-state traffic stays well under one allocation per
// operation. Other backends just get their baseline recorded — visibility,
// not a gate, since per-op allocation is only a contract where reuse is the
// point of the design.
func testAllocSteadyState(t *testing.T, newQueue Factory) {
	raw := newQueue(t, 2, 2)
	q := cq.AsBatch(raw)
	h := cq.HandleFor(q)
	defer h.Close()
	r := rng.New(41)
	// Keep a standing population so pops always succeed, then warm the
	// reclamation pipeline past its grace period.
	for i := int64(0); i < 4096; i++ {
		h.Push(r, i, int64(r.Intn(1<<16)))
	}
	for i := 0; i < 8192; i++ {
		h.Push(r, int64(i), int64(r.Intn(1<<16)))
		h.Pop(r)
	}
	perOp := testing.AllocsPerRun(2000, func() {
		h.Push(r, 1, int64(r.Intn(1<<16)))
		h.Pop(r)
	}) / 2
	rec, ok := raw.(cq.Recycler)
	if ok && rec.RecyclesNodes() {
		// 0.25 leaves room for amortized noise (retirement-bin growth, free
		// list reslicing) while still requiring that the overwhelming
		// majority of operations reuse nodes.
		if perOp > 0.25 {
			t.Fatalf("recycling backend allocated %.3f allocs/op in steady state; node reuse is not working", perOp)
		}
		t.Logf("steady-state allocations: %.3f allocs/op (gated <= 0.25)", perOp)
	} else {
		t.Logf("steady-state allocations: %.3f allocs/op (baseline, not gated)", perOp)
	}
}

func testRacingPushersTermination(t *testing.T, newQueue Factory) {
	// The empty-vs-racing-pusher edge: Pop may report empty while an
	// element is mid-push, so consumers terminate via an in-flight counter
	// (exactly core.ParallelRun's and sssp.Parallel's protocol). With that
	// protocol, poppers racing live pushers must still drain every element
	// and exit.
	const (
		pushers = 4
		poppers = 4
		perP    = 3000
		total   = pushers * perP
	)
	q := newQueue(t, poppers, 2)
	var pending atomic.Int64 // un-popped elements, counted up-front
	pending.Store(total)
	var popped atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < pushers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rng.New(uint64(g) + 1)
			for i := 0; i < perP; i++ {
				q.Push(r, int64(g*perP+i), int64(r.Intn(1<<16)))
			}
		}(g)
	}
	for g := 0; g < poppers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rng.New(uint64(1000 + g))
			for {
				_, _, ok := q.Pop(r)
				if !ok {
					if pending.Load() == 0 {
						return
					}
					// Transiently empty: elements are still in flight.
					continue
				}
				popped.Add(1)
				pending.Add(-1)
			}
		}(g)
	}
	waitOrFatal(t, &wg, "racing pushers/poppers")
	if got := popped.Load(); got != total {
		t.Fatalf("poppers drained %d of %d elements", got, total)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
}
