// Package cqtest is the shared conformance and race-stress suite for cq
// backends. Every backend must pass it (run the suite with -race in CI):
// future backends are drop-in exactly when cqtest.Run accepts them.
//
// The suite checks the contract documented on cq.Queue: no element lost or
// duplicated under concurrent push/pop, exactness in the unrelaxed
// configuration, approximate-minimum quality of relaxed pops, panics on the
// reserved priority, and — the subtlest clause — termination under the
// in-flight-counter protocol when poppers race pushers, i.e. when Pop
// transiently reports empty while an element is mid-push (the
// Pop/scanPop empty-vs-racing-pusher edge that core.ParallelRun and
// sssp.Parallel rely on).
package cqtest

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"relaxsched/internal/cq"
	"relaxsched/internal/rng"
)

// Factory builds a fresh queue for a simulated run shape, mirroring
// cq.New's sizing parameters. The passed t is the invoking subtest's, so
// construction failures are reported on the right test.
type Factory func(t *testing.T, threads, queueMultiplier int) cq.Queue

// ForBackend adapts cq.New for a named backend into a Factory, failing the
// invoking subtest on construction errors.
func ForBackend(b cq.Backend) Factory {
	return func(t *testing.T, threads, queueMultiplier int) cq.Queue {
		t.Helper()
		q, err := cq.New(b, threads, queueMultiplier)
		if err != nil {
			t.Fatalf("cq.New(%q, %d, %d): %v", b, threads, queueMultiplier, err)
		}
		return q
	}
}

// Run executes the full conformance and stress suite against the backend.
func Run(t *testing.T, newQueue Factory) {
	t.Run("EmptyPop", func(t *testing.T) { testEmptyPop(t, newQueue) })
	t.Run("ExactWhenUnrelaxed", func(t *testing.T) { testExactWhenUnrelaxed(t, newQueue) })
	t.Run("ValuesPreservedSequential", func(t *testing.T) { testValuesPreservedSequential(t, newQueue) })
	t.Run("ApproxMin", func(t *testing.T) { testApproxMin(t, newQueue) })
	t.Run("ReservedPriorityPanics", func(t *testing.T) { testReservedPriorityPanics(t, newQueue) })
	t.Run("ConcurrentValuesPreserved", func(t *testing.T) { testConcurrentValuesPreserved(t, newQueue) })
	t.Run("RacingPushersTermination", func(t *testing.T) { testRacingPushersTermination(t, newQueue) })
}

// stressTimeout bounds every concurrent subtest so a termination bug shows
// up as a failure, not a hung test binary.
const stressTimeout = 60 * time.Second

// waitOrFatal waits for wg or fails the test after stressTimeout.
func waitOrFatal(t *testing.T, wg *sync.WaitGroup, what string) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(stressTimeout):
		t.Fatalf("%s did not finish within %v (termination bug?)", what, stressTimeout)
	}
}

func testEmptyPop(t *testing.T, newQueue Factory) {
	q := newQueue(t, 2, 2)
	r := rng.New(1)
	if _, _, ok := q.Pop(r); ok {
		t.Fatal("Pop on empty queue returned ok")
	}
	if n := q.Len(); n != 0 {
		t.Fatalf("Len = %d on empty queue", n)
	}
	if nq := q.NumQueues(); nq < 1 {
		t.Fatalf("NumQueues = %d, want >= 1", nq)
	}
}

func testExactWhenUnrelaxed(t *testing.T, newQueue Factory) {
	// threads = 1, multiplier = 1 must degenerate to an exact queue under
	// sequential use: this anchors every backend's relaxation knob to the
	// same origin, so backend comparisons sweep from a common baseline.
	q := newQueue(t, 1, 1)
	r := rng.New(7)
	const n = 512
	for _, p := range r.Perm(n) {
		q.Push(r, int64(p), int64(p))
	}
	for want := 0; want < n; want++ {
		v, p, ok := q.Pop(r)
		if !ok {
			t.Fatalf("queue empty after %d of %d pops", want, n)
		}
		if p != int64(want) || v != int64(want) {
			t.Fatalf("pop %d returned (v=%d, p=%d), want (%d, %d)", want, v, p, want, want)
		}
	}
	if _, _, ok := q.Pop(r); ok {
		t.Fatal("pop after drain returned ok")
	}
}

func testValuesPreservedSequential(t *testing.T, newQueue Factory) {
	q := newQueue(t, 2, 2)
	r := rng.New(3)
	const n = 2000
	for i := 0; i < n; i++ {
		q.Push(r, int64(i), int64(i%7)) // duplicate priorities allowed
	}
	if q.Len() != n {
		t.Fatalf("Len = %d, want %d", q.Len(), n)
	}
	seen := make([]bool, n)
	for {
		v, _, ok := q.Pop(r)
		if !ok {
			break
		}
		if v < 0 || v >= n {
			t.Fatalf("popped alien value %d", v)
		}
		if seen[v] {
			t.Fatalf("value %d popped twice", v)
		}
		seen[v] = true
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("value %d lost", i)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
}

func testApproxMin(t *testing.T, newQueue Factory) {
	// A relaxed pop need not return the minimum, but it must return a
	// small-rank element. N/4 is an extremely generous bound: the
	// MultiQueue's 2-choice pop and the SprayList's spray both land within
	// O(poly(p) polylog(N)) of the front with overwhelming probability.
	const (
		n      = 4096
		trials = 3
	)
	for trial := 0; trial < trials; trial++ {
		q := newQueue(t, 4, 2)
		r := rng.New(100 + uint64(trial))
		for _, p := range r.Perm(n) {
			q.Push(r, int64(p), int64(p))
		}
		_, p, ok := q.Pop(r)
		if !ok {
			t.Fatal("pop of full queue returned !ok")
		}
		if p >= n/4 {
			t.Fatalf("trial %d: first pop rank %d of %d — not an approximate min", trial, p, n)
		}
	}
}

func testReservedPriorityPanics(t *testing.T, newQueue Factory) {
	q := newQueue(t, 1, 1)
	r := rng.New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Push(ReservedPriority) did not panic")
		}
	}()
	q.Push(r, 0, cq.ReservedPriority)
}

func testConcurrentValuesPreserved(t *testing.T, newQueue Factory) {
	// Mixed concurrent push/pop; afterwards every value must have been
	// popped exactly once. Run with -race for the full effect.
	const (
		goroutines = 8
		perG       = 4000
	)
	q := newQueue(t, goroutines, 2)
	seen := make([]atomic.Bool, goroutines*perG)
	var popped atomic.Int64
	record := func(v int64) {
		if seen[v].Swap(true) {
			t.Errorf("value %d popped twice", v)
		}
		popped.Add(1)
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rng.New(uint64(g) + 1)
			for i := 0; i < perG; i++ {
				q.Push(r, int64(g*perG+i), int64(r.Intn(1<<20)))
				if i%2 == 1 {
					if v, _, ok := q.Pop(r); ok {
						record(v)
					}
				}
			}
		}(g)
	}
	waitOrFatal(t, &wg, "concurrent push/pop stress")
	r := rng.New(99)
	for {
		v, _, ok := q.Pop(r)
		if !ok {
			break
		}
		record(v)
	}
	if got := popped.Load(); got != goroutines*perG {
		t.Fatalf("popped %d values total, want %d", got, goroutines*perG)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
}

func testRacingPushersTermination(t *testing.T, newQueue Factory) {
	// The empty-vs-racing-pusher edge: Pop may report empty while an
	// element is mid-push, so consumers terminate via an in-flight counter
	// (exactly core.ParallelRun's and sssp.Parallel's protocol). With that
	// protocol, poppers racing live pushers must still drain every element
	// and exit.
	const (
		pushers = 4
		poppers = 4
		perP    = 3000
		total   = pushers * perP
	)
	q := newQueue(t, poppers, 2)
	var pending atomic.Int64 // un-popped elements, counted up-front
	pending.Store(total)
	var popped atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < pushers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rng.New(uint64(g) + 1)
			for i := 0; i < perP; i++ {
				q.Push(r, int64(g*perP+i), int64(r.Intn(1<<16)))
			}
		}(g)
	}
	for g := 0; g < poppers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rng.New(uint64(1000 + g))
			for {
				_, _, ok := q.Pop(r)
				if !ok {
					if pending.Load() == 0 {
						return
					}
					// Transiently empty: elements are still in flight.
					continue
				}
				popped.Add(1)
				pending.Add(-1)
			}
		}(g)
	}
	waitOrFatal(t, &wg, "racing pushers/poppers")
	if got := popped.Load(); got != total {
		t.Fatalf("poppers drained %d of %d elements", got, total)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
}
